// multiprogramming studies context-switch effects: the same four-process
// mix is captured at several scheduling quanta, and each trace is run
// through a cache that flushes on context switch (mid-80s hardware
// without PID tags). Shorter quanta mean less time to re-warm the cache
// after each switch.
package main

import (
	"fmt"
	"log"

	"atum/internal/analysis"
	"atum/internal/atum"
	"atum/internal/cache"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/workload"
)

func capture(icr uint32) ([]trace.Record, error) {
	cfg := kernel.DefaultConfig()
	cfg.ICRCycles = icr
	cfg.QuantumTicks = 1
	sys, err := workload.BootMix(cfg, "sieve", "hash", "strops")
	if err != nil {
		return nil, err
	}
	cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(2_000_000_000)
		return err
	})
	if err != nil {
		return nil, err
	}
	return cap.All(), nil
}

func main() {
	ccfg := cache.Config{
		Label: "mp", SizeBytes: 64 << 10, BlockBytes: 16, Assoc: 1,
		Replacement: cache.LRU, WritePolicy: cache.WriteBack,
		WriteAllocate: true, FlushOnSwitch: true,
	}
	tagged := ccfg
	tagged.FlushOnSwitch = false
	tagged.PIDTags = true

	tb := &analysis.Table{
		Title: "Context-switch cost in a 64KB cache (three-process mix)",
		Headers: []string{"quantum (cycles)", "switches", "mean run (refs)",
			"miss rate (flush)", "miss rate (PID tags)"},
	}
	for _, icr := range []uint32{10_000, 40_000, 160_000, 640_000} {
		recs, err := capture(icr)
		if err != nil {
			log.Fatal(err)
		}
		s := trace.Summarize(recs)
		runs := analysis.RunLengths(recs)
		fres, err := cache.RunUnified(recs, ccfg, cache.RunOptions{IncludePTE: true})
		if err != nil {
			log.Fatal(err)
		}
		tres, err := cache.RunUnified(recs, tagged, cache.RunOptions{IncludePTE: true})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(analysis.N(icr), analysis.N(s.CtxSwitches),
			analysis.F(analysis.MeanU64(runs), 0),
			analysis.Pct(fres.Stats.MissRate()),
			analysis.Pct(tres.Stats.MissRate()))
	}
	fmt.Print(tb)
	fmt.Println("\nFlushing caches pay heavily at short quanta; PID-tagged caches")
	fmt.Println("retain each process's lines across switches. Multiprogramming")
	fmt.Println("effects like these are only measurable from full-system traces.")
}
