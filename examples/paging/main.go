// paging runs a memory-hungry workload on a deliberately small machine
// so the kernel's page stealer and swap device engage, then shows what
// the ATUM trace reveals: the pager's demand-zero loops, swap traffic,
// and an overwhelming system-reference share — OS behaviour that is
// invisible to every user-level tracing technique.
package main

import (
	"fmt"
	"log"

	"atum/internal/analysis"
	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 1 << 20       // 1 MB machine...
	cfg.Machine.ReservedSize = 64 << 10 // ...with a 64 KB trace buffer
	cfg.Machine.TBEntries = 64
	cfg.FreeFrameCap = 60 // offer only 60 frames: the 100-page workload must page

	sys, err := workload.BootMix(cfg, "pagestress")
	if err != nil {
		log.Fatal(err)
	}
	free, err := sys.FreeFrames()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d free frames offered; the workload's working set is 100 pages\n", free)

	capture, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(500_000_000)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload says: %q (data survived swap-out and swap-in)\n\n", sys.Console())
	reads, writes := sys.SwapActivity()
	fmt.Printf("swap traffic: %d page writes out, %d page reads back\n", writes, reads)

	recs := capture.All()
	s := trace.Summarize(recs)
	fmt.Printf("trace: %d records, %.1f%% made by the operating system\n\n",
		s.Total, s.PercentSystem())
	fmt.Print(analysis.PerPID(recs))

	fmt.Println("\nWhat the pager looks like in the trace (a fault's worth of records):")
	shown := 0
	for i, r := range recs {
		if r.Kind == trace.KindException && r.Extra == 0x24 { // TNV
			for _, rr := range recs[i : i+12] {
				fmt.Println("  ", rr)
			}
			shown++
			if shown == 1 {
				break
			}
		}
	}
	fmt.Println("\nEvery one of those kernel references — the page-table walk, the")
	fmt.Println("demand-zero loop, the PTE update — is real executed code, captured")
	fmt.Println("because the tracing lives in the microcode underneath everything.")
}
