; hello.s — bare-machine console output via the TXDB processor register.
; Assemble and vet:  vasm -lint examples/asm/hello.s
	.org	0x200
start:	moval	msg, r1
	movl	#14, r2
loop:	movzbl	(r1)+, r0
	mtpr	r0, #35		; TXDB: console transmit
	sobgtr	r2, loop
	halt
msg:	.ascii	"hello, world!\n"
