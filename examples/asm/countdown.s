; countdown.s — print the digits 9..0 using a balanced jsb routine.
; Demonstrates the stack discipline asmcheck verifies: putdig saves r1
; with pushr and restores it with a matching popr before rsb.
; Assemble and vet:  vasm -lint examples/asm/countdown.s
	.org	0x200
start:	movl	#9, r6
cloop:	movl	r6, r0
	jsb	putdig
	sobgeq	r6, cloop
	movl	#10, r0
	mtpr	r0, #35		; newline
	halt

putdig:	pushr	#0x02		; save r1
	addl3	#0x30, r0, r1	; ASCII digit
	mtpr	r1, #35		; TXDB: console transmit
	popr	#0x02
	rsb
