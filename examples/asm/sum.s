; sum.s — sum the integers 1..100 into r0, then halt.
; Assemble and vet:  vasm -lint examples/asm/sum.s
	.org	0x200
start:	clrl	r0
	movl	#100, r1
sloop:	addl2	r1, r0
	sobgtr	r1, sloop
	halt
