// Quickstart: assemble a tiny program, boot it under the simulated
// kernel, capture its complete address trace with ATUM, and print what
// the trace shows — including the kernel references no user-level tracer
// could see.
package main

import (
	"fmt"
	"log"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/vax"
)

const program = `
	.org	0x200
start:	movl	#10, r6		; sum the numbers 1..10
	clrl	r7
loop:	addl2	r6, r7
	sobgtr	r6, loop
	movl	r7, r0
	addl2	#0x30, r0	; cheap single-digit-ish marker
	moval	msg, r1
	movl	#4, r2
	chmk	#1		; write(msg, 4)
	chmk	#0		; exit
msg:	.ascii	"sum\n"
`

func main() {
	// 1. Assemble.
	prog, err := vax.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes at %#x\n", len(prog.Bytes), prog.Origin)

	// 2. Boot a system with the program as its only process.
	sys, err := kernel.NewSystem(kernel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Spawn("quickstart", prog, 8); err != nil {
		log.Fatal(err)
	}
	if err := sys.Finalize(); err != nil {
		log.Fatal(err)
	}

	// 3. Run it under the ATUM microcode patches.
	capture, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(10_000_000)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Look at what came out.
	recs := capture.All()
	fmt.Printf("console output: %q\n", sys.Console())
	fmt.Printf("captured %d trace records:\n\n", len(recs))
	fmt.Print(trace.Summarize(recs))

	fmt.Println("\nfirst ten records:")
	for _, r := range recs[:10] {
		fmt.Println("  ", r)
	}

	// The point of ATUM: the kernel is in the trace.
	sum := trace.Summarize(recs)
	fmt.Printf("\n%.1f%% of references were made by the operating system —\n",
		sum.PercentSystem())
	fmt.Println("references a user-level tracing tool would never have seen.")
}
