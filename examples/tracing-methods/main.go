// tracing-methods compares the three trace-collection techniques on the
// same workload: ATUM microcode patches, inline software
// instrumentation, and trap-driven (T-bit) single-stepping. Slowdowns
// are measured on the simulated machine's own clock, not assumed.
package main

import (
	"fmt"
	"log"

	"atum/internal/analysis"
	"atum/internal/baseline"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/workload"
)

func main() {
	factory := func() (*micro.Machine, func() error, error) {
		sys, err := workload.BootMix(kernel.DefaultConfig(), "sort", "sieve")
		if err != nil {
			return nil, nil, err
		}
		return sys.M, func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		}, nil
	}

	fmt.Println("measuring (each technique runs the identical workload)...")
	outcomes, err := baseline.Compare(factory,
		baseline.Atum{},
		baseline.Inline{},
		baseline.TrapDriven{},
	)
	if err != nil {
		log.Fatal(err)
	}

	tb := &analysis.Table{
		Title: "Trace-collection techniques (sort+sieve mix)",
		Headers: []string{"technique", "slowdown", "records",
			"OS refs", "PTE refs", "context switches"},
	}
	yn := func(b bool) string {
		if b {
			return "captured"
		}
		return "invisible"
	}
	for _, o := range outcomes {
		tb.AddRow(o.Name, fmt.Sprintf("%.1fx", o.Dilation()),
			analysis.N(o.Records), yn(o.SawKernel), yn(o.SawPTE), yn(o.SawMultiprog))
	}
	fmt.Print(tb)
	fmt.Println("\nATUM's bargain: near-instrumentation slowdown with complete")
	fmt.Println("system visibility; trap-driven methods pay orders of magnitude")
	fmt.Println("more and still see only user space.")
}
