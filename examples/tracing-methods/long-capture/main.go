// long-capture demonstrates the segmented capture pipeline: the paper's
// answer to a trace buffer that fills every few seconds. Instead of one
// oversized in-memory buffer, the kernel spill service bounds the
// reserved region to a small segment buffer and appends one segment to
// a file each time the watermark fires — the freeze/dump/resume
// protocol that turned a few megabytes of reserved memory into
// half-billion-reference traces.
//
// The example captures the same mix twice (segmented to disk, then
// monolithic in memory), replays the file through trace.OpenFile —
// which indexes the segments and decodes them in parallel — and checks
// that the stitched records are identical: segmenting is an I/O
// decision, invisible in the data.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/workload"
)

func main() {
	const segmentBytes = 32 << 10 // 4096 records per segment

	path := filepath.Join(os.TempDir(), "long-capture.trc")
	defer os.Remove(path)

	// --- Segmented: stream to disk through the spill service. ---
	sys, err := workload.BootMix(kernel.DefaultConfig(), "sort", "sieve")
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := kernel.StartSpill(sys, f, kernel.SpillConfig{
		SegmentBytes: segmentBytes,
		Codec:        trace.CodecDelta,
		Meta:         "example=long-capture workloads=sort,sieve",
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented:  %d records in %d segments (%d dropped) -> %s\n",
		svc.SpilledRecords(), svc.Segments(), svc.Collector().Dropped, path)

	// --- Reference: the classic in-memory capture (atum.Run's own
	// sample stitcher, bounded by host memory rather than disk). ---
	ref, err := workload.BootMix(kernel.DefaultConfig(), "sort", "sieve")
	if err != nil {
		log.Fatal(err)
	}
	cap, err := atum.Run(ref.M, atum.DefaultOptions(), func() error {
		_, err := ref.Run(2_000_000_000)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	mono := cap.All()
	fmt.Printf("in-memory:  %d records in %d sample(s) from the %d KB region\n",
		len(mono), len(cap.Samples), ref.M.Mem.ReservedSize()>>10)

	// --- Replay through the random-access fast path: OpenFile indexes
	// the segment headers without touching payloads, then decodes the
	// segments on a worker pool (0 = all cores). ---
	rd, err := trace.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rd.Close()
	recs, err := rd.Records(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range rd.Segments()[:3] {
		fmt.Println("  ", s)
	}
	fmt.Printf("   ... %d more segments\n", len(rd.Segments())-3)

	if len(recs) != len(mono) {
		log.Fatalf("stitched %d records, in-memory %d", len(recs), len(mono))
	}
	for i := range recs {
		if recs[i] != mono[i] {
			log.Fatalf("record %d differs: %v vs %v", i, recs[i], mono[i])
		}
	}
	fmt.Println("stitched stream is record-identical to the in-memory capture")
}
