// os-impact reproduces the paper's headline study: how much do
// operating-system references change cache miss rates? It captures a
// complete trace of a multiprogrammed workload, then simulates the same
// cache twice — once on the user-only subset (all that pre-ATUM traces
// contained) and once on the full system trace.
package main

import (
	"fmt"
	"log"

	"atum/internal/analysis"
	"atum/internal/atum"
	"atum/internal/cache"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/workload"
)

func main() {
	cfg := kernel.DefaultConfig()
	sys, err := workload.BootMix(cfg, workload.StandardMix...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %v under ATUM...\n", workload.StandardMix)
	capture, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(2_000_000_000)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	full := capture.All()
	userOnly := trace.FilterUser(full)
	fmt.Printf("full trace: %d records; user-only subset: %d records\n\n",
		len(full), len(userOnly))

	base := cache.Config{
		Label: "study", BlockBytes: 16, Assoc: 1,
		Replacement: cache.LRU, WritePolicy: cache.WriteBack,
		WriteAllocate: true, PIDTags: true,
	}
	sizes := []uint32{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}
	opts := cache.RunOptions{IncludePTE: true}

	fullRes, err := cache.SweepSizes(full, base, sizes, opts)
	if err != nil {
		log.Fatal(err)
	}
	userRes, err := cache.SweepSizes(userOnly, base, sizes, opts)
	if err != nil {
		log.Fatal(err)
	}

	tb := &analysis.Table{
		Title:   "Cache miss rate: what user-only traces hide",
		Headers: []string{"cache size", "user-only trace", "full system trace"},
	}
	for i, sz := range sizes {
		tb.AddRow(fmt.Sprintf("%dKB", sz>>10),
			analysis.Pct(userRes[i].Stats.MissRate()),
			analysis.Pct(fullRes[i].Stats.MissRate()))
	}
	fmt.Print(tb)
	fmt.Println("\nThe full-system miss rate stays high where the user-only curve")
	fmt.Println("has flattened: the OS working set keeps missing even in caches")
	fmt.Println("big enough for the user programs — the paper's central finding.")
}
