package repro

import (
	"bytes"
	"reflect"
	"testing"

	"atum/internal/atum"
	"atum/internal/baseline"
	"atum/internal/cache"
	"atum/internal/experiments"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/stackdist"
	"atum/internal/tlbsim"
	"atum/internal/trace"
	"atum/internal/workload"
)

// TestFullPipeline exercises the complete toolchain the way a user of
// the system would: boot a mix, capture with ATUM, serialize the trace,
// read it back, and run every analysis over it.
func TestFullPipeline(t *testing.T) {
	sys, err := workload.BootMix(benchConfigT(), "sort", "sieve")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		reason, err := sys.Run(2_000_000_000)
		if err != nil {
			return err
		}
		if reason != micro.StopHalt {
			t.Fatalf("mix did not finish: %v", reason)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := cap.All()
	if len(recs) < 10_000 {
		t.Fatalf("trace suspiciously small: %d records", len(recs))
	}

	// Workload correctness under tracing.
	console := sys.Console()
	for _, want := range []string{"sorted", "303"} {
		if !bytes.Contains([]byte(console), []byte(want)) {
			t.Errorf("console %q missing %q", console, want)
		}
	}

	// Serialize and restore through both codecs.
	for _, codec := range []uint16{trace.CodecRaw, trace.CodecDelta} {
		var buf bytes.Buffer
		if err := trace.WriteFile(&buf, recs, codec); err != nil {
			t.Fatal(err)
		}
		rd, err := trace.Open(&buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := rd.Records()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, recs) {
			t.Fatalf("codec %d round trip mismatch", codec)
		}
	}

	// Summary sanity.
	sum := trace.Summarize(recs)
	if sum.SystemRefs == 0 || sum.UserRefs == 0 || sum.CtxSwitches == 0 {
		t.Fatalf("trace incomplete: %+v", sum)
	}
	if sum.ByKind[trace.KindPTERead] == 0 {
		t.Error("no PTE reads captured")
	}

	// Cache study: user-only understates the full-system miss rate in
	// the band where the kernel rivals the cache.
	cfg := cache.Config{
		Label: "it", SizeBytes: 2 << 10, BlockBytes: 16, Assoc: 1,
		Replacement: cache.LRU, WriteAllocate: true, PIDTags: true,
	}
	fullRes, err := cache.RunUnified(recs, cfg, cache.RunOptions{IncludePTE: true})
	if err != nil {
		t.Fatal(err)
	}
	userRes, err := cache.RunUnified(trace.FilterUser(recs), cfg, cache.RunOptions{IncludePTE: true})
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.Stats.MissRate() <= userRes.Stats.MissRate() {
		t.Errorf("OS impact missing: full %.4f <= user %.4f",
			fullRes.Stats.MissRate(), userRes.Stats.MissRate())
	}

	// TLB study: flush-on-switch TB misses exceed user-only.
	tbFull, err := tlbsim.Run(recs, tlbsim.Config{
		Entries: 64, Assoc: 2, SplitSystem: true, FlushOnSwitch: true, IncludeSystem: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbUser, err := tlbsim.Run(recs, tlbsim.Config{
		Entries: 64, Assoc: 2, SplitSystem: true, PIDTags: true, IncludeSystem: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbFull.MissRate() <= tbUser.MissRate() {
		t.Errorf("TB effect missing: full %.5f <= user %.5f", tbFull.MissRate(), tbUser.MissRate())
	}

	// Stack-distance profile agrees with the explicit simulator at a
	// fully-associative point.
	prof := stackdist.FromTrace(recs, stackdist.Options{BlockBytes: 16, PIDTag: true, IncludePTE: true})
	fa := cfg
	fa.SizeBytes = 256 * 16
	fa.Assoc = 256
	faRes, err := cache.RunUnified(recs, fa, cache.RunOptions{IncludePTE: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Misses(256) != faRes.Stats.Misses {
		t.Errorf("stackdist %d != simulator %d", prof.Misses(256), faRes.Stats.Misses)
	}
}

// TestTechniquesEndToEnd runs the three-technique comparison as the T1
// experiment does and checks the orderings the paper reports.
func TestTechniquesEndToEnd(t *testing.T) {
	factory := func() (*micro.Machine, func() error, error) {
		sys, err := workload.BootMix(benchConfigT(), "hash")
		if err != nil {
			return nil, nil, err
		}
		return sys.M, func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		}, nil
	}
	outcomes, err := baseline.Compare(factory,
		baseline.Atum{}, baseline.Inline{}, baseline.TrapDriven{})
	if err != nil {
		t.Fatal(err)
	}
	var a, inl, trap baseline.Outcome
	for _, o := range outcomes {
		switch o.Name {
		case "ATUM":
			a = o
		case "instrumentation":
			inl = o
		case "trap-driven":
			trap = o
		}
	}
	if !(inl.Dilation() < a.Dilation() && a.Dilation() < trap.Dilation()) {
		t.Errorf("slowdown ordering broken: inl=%.1f atum=%.1f trap=%.1f",
			inl.Dilation(), a.Dilation(), trap.Dilation())
	}
	if a.Dilation() < 10 || a.Dilation() > 40 {
		t.Errorf("ATUM dilation %.1f outside the ~20x band", a.Dilation())
	}
	if !a.SawKernel || inl.SawKernel || trap.SawKernel {
		t.Error("kernel-visibility pattern wrong")
	}
}

// TestDeterministicEndToEnd: two full captures are byte-identical.
func TestDeterministicEndToEnd(t *testing.T) {
	capture := func() []trace.Record {
		sys, err := workload.BootMix(benchConfigT(), "queue", "grep")
		if err != nil {
			t.Fatal(err)
		}
		cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return cap.All()
	}
	a, b := capture(), capture()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical runs produced different traces")
	}
}

// TestSweepDeterminism extends TestDeterministicEndToEnd from capture to
// consumption: every experiment must render a byte-identical report from
// the serial reference path (workers == 1) and from a saturated worker
// pool, whatever the machine's core count — the parallel sweep engine is
// an implementation detail, never a result change.
func TestSweepDeterminism(t *testing.T) {
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			serial, err := e.Run(experiments.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := e.Run(experiments.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if s, p := serial.String(), parallel.String(); s != p {
				t.Errorf("report differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

func benchConfigT() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 8 << 20
	cfg.Machine.ReservedSize = 512 << 10
	return cfg
}
