// Package repro holds the top-level benchmark harness: one benchmark per
// table and figure of the reproduced evaluation (see DESIGN.md §4). Each
// benchmark regenerates its experiment's data series and reports the
// headline number as a custom metric, so `go test -bench=. -benchmem`
// reproduces the paper's result shapes alongside throughput numbers.
package repro

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"atum/internal/analysis"
	"atum/internal/atum"
	"atum/internal/baseline"
	"atum/internal/cache"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/sweep"
	"atum/internal/tlbsim"
	"atum/internal/trace"
	"atum/internal/workload"
)

// ---- shared fixtures ----

func benchConfig() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 8 << 20
	cfg.Machine.ReservedSize = 512 << 10
	return cfg
}

var (
	mixOnce  sync.Once
	mixTrace []trace.Record
	mixErr   error
)

// benchTrace captures the standard mix once and reuses it (deterministic).
func benchTrace(b *testing.B) []trace.Record {
	b.Helper()
	mixOnce.Do(func() {
		sys, err := workload.BootMix(benchConfig(), workload.StandardMix...)
		if err != nil {
			mixErr = err
			return
		}
		cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		})
		if err != nil {
			mixErr = err
			return
		}
		mixTrace = cap.All()
	})
	if mixErr != nil {
		b.Fatal(mixErr)
	}
	return mixTrace
}

func benchCacheCfg() cache.Config {
	return cache.Config{
		Label: "bench", SizeBytes: 8 << 10, BlockBytes: 16, Assoc: 1,
		Replacement: cache.LRU, WritePolicy: cache.WriteBack,
		WriteAllocate: true, PIDTags: true,
	}
}

func factory(names ...string) baseline.Factory {
	return func() (*micro.Machine, func() error, error) {
		sys, err := workload.BootMix(benchConfig(), names...)
		if err != nil {
			return nil, nil, err
		}
		return sys.M, func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		}, nil
	}
}

// ---- T1: technique comparison ----

func BenchmarkT1TechniqueComparison(b *testing.B) {
	var atumDil, trapDil float64
	for i := 0; i < b.N; i++ {
		outcomes, err := baseline.Compare(factory("sieve"),
			baseline.Atum{}, baseline.Inline{}, baseline.TrapDriven{})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			switch o.Name {
			case "ATUM":
				atumDil = o.Dilation()
			case "trap-driven":
				trapDil = o.Dilation()
			}
		}
	}
	b.ReportMetric(atumDil, "atum-slowdown-x")
	b.ReportMetric(trapDil, "trap-slowdown-x")
}

// ---- T2: trace characteristics ----

func BenchmarkT2TraceCharacteristics(b *testing.B) {
	recs := benchTrace(b)
	b.ResetTimer()
	var s trace.Summary
	for i := 0; i < b.N; i++ {
		s = trace.Summarize(recs)
	}
	b.ReportMetric(s.PercentSystem(), "system-refs-%")
	b.ReportMetric(float64(s.CtxSwitches), "ctx-switches")
	b.ReportMetric(float64(s.MemRefs)/float64(b.Elapsed().Seconds()+1e-9)/1e6*float64(b.N), "Mrefs/s")
}

// ---- F1: OS impact on miss rate ----

func BenchmarkF1OSImpact(b *testing.B) {
	recs := benchTrace(b)
	user := trace.FilterUser(recs)
	opts := cache.RunOptions{IncludePTE: true}
	// 2KB: the middle of the band where the kernel working set rivals
	// the cache (the F1 experiment sweeps 256B-8KB).
	cfg := benchCacheCfg()
	cfg.SizeBytes = 2 << 10
	b.ResetTimer()
	var full, userMR float64
	for i := 0; i < b.N; i++ {
		fres, err := cache.RunUnified(recs, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		ures, err := cache.RunUnified(user, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		full, userMR = fres.Stats.MissRate(), ures.Stats.MissRate()
	}
	b.ReportMetric(full*100, "full-miss-%")
	b.ReportMetric(userMR*100, "user-miss-%")
	b.ReportMetric(full/userMR, "os-impact-ratio")
}

// ---- F2: multiprogramming ----

func BenchmarkF2Multiprogramming(b *testing.B) {
	recs := benchTrace(b)
	opts := cache.RunOptions{IncludePTE: true}
	flush := benchCacheCfg()
	flush.PIDTags = false
	flush.FlushOnSwitch = true
	b.ResetTimer()
	var tagMR, flushMR float64
	for i := 0; i < b.N; i++ {
		tres, err := cache.RunUnified(recs, benchCacheCfg(), opts)
		if err != nil {
			b.Fatal(err)
		}
		fres, err := cache.RunUnified(recs, flush, opts)
		if err != nil {
			b.Fatal(err)
		}
		tagMR, flushMR = tres.Stats.MissRate(), fres.Stats.MissRate()
	}
	b.ReportMetric(tagMR*100, "pid-tag-miss-%")
	b.ReportMetric(flushMR*100, "flush-miss-%")
}

// ---- F3: block size ----

func BenchmarkF3BlockSize(b *testing.B) {
	recs := benchTrace(b)
	blocks := []uint32{4, 8, 16, 32, 64, 128}
	b.ResetTimer()
	var res []cache.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = cache.SweepBlocks(recs, benchCacheCfg(), blocks, cache.RunOptions{IncludePTE: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res[0].Stats.MissRate()*100, "4B-miss-%")
	b.ReportMetric(res[len(res)-1].Stats.MissRate()*100, "128B-miss-%")
}

// ---- F4: associativity ----

func BenchmarkF4Associativity(b *testing.B) {
	recs := benchTrace(b)
	ways := []uint32{1, 2, 4, 8}
	b.ResetTimer()
	var res []cache.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = cache.SweepAssoc(recs, benchCacheCfg(), ways, cache.RunOptions{IncludePTE: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res[0].Stats.MissRate()*100, "1way-miss-%")
	b.ReportMetric(res[3].Stats.MissRate()*100, "8way-miss-%")
}

// ---- F5: translation buffer ----

func BenchmarkF5TLB(b *testing.B) {
	recs := benchTrace(b)
	// Mirror the F5 experiment: the hardware-realistic flush-on-switch
	// TB on the full trace versus the PID-tagged user-only estimate.
	full := tlbsim.Config{Entries: 256, Assoc: 2, SplitSystem: true, FlushOnSwitch: true, IncludeSystem: true}
	user := tlbsim.Config{Entries: 256, Assoc: 2, SplitSystem: true, PIDTags: true, IncludeSystem: false}
	b.ResetTimer()
	var fullMR, userMR float64
	for i := 0; i < b.N; i++ {
		fs, err := tlbsim.Run(recs, full)
		if err != nil {
			b.Fatal(err)
		}
		us, err := tlbsim.Run(recs, user)
		if err != nil {
			b.Fatal(err)
		}
		fullMR, userMR = fs.MissRate(), us.MissRate()
	}
	b.ReportMetric(fullMR*100, "full-tbmiss-%")
	b.ReportMetric(userMR*100, "user-tbmiss-%")
}

// ---- F6: working sets ----

func BenchmarkF6WorkingSet(b *testing.B) {
	recs := benchTrace(b)
	user := trace.FilterUser(recs)
	taus := []uint32{1000, 100_000}
	b.ResetTimer()
	var wFull, wUser []float64
	for i := 0; i < b.N; i++ {
		wFull = analysis.WorkingSet(recs, taus)
		wUser = analysis.WorkingSet(user, taus)
	}
	b.ReportMetric(wFull[1], "full-W(100k)-pages")
	b.ReportMetric(wUser[1], "user-W(100k)-pages")
}

// ---- T3: sampling ----

func BenchmarkT3Sampling(b *testing.B) {
	recs := benchTrace(b)
	opts := cache.RunOptions{IncludePTE: true}
	per := int((128 << 10) / trace.RecordBytes)
	b.ResetTimer()
	var sampled, cont float64
	for i := 0; i < b.N; i++ {
		cres, err := cache.RunUnified(recs, benchCacheCfg(), opts)
		if err != nil {
			b.Fatal(err)
		}
		cont = cres.Stats.MissRate()
		var misses, accesses uint64
		for off := 0; off < len(recs); off += per {
			end := off + per
			if end > len(recs) {
				end = len(recs)
			}
			res, err := cache.RunUnified(recs[off:end], benchCacheCfg(), opts)
			if err != nil {
				b.Fatal(err)
			}
			misses += res.Stats.Misses
			accesses += res.Stats.Accesses
		}
		sampled = float64(misses) / float64(accesses)
	}
	b.ReportMetric(100*(sampled-cont)/cont, "coldstart-error-%")
}

// ---- A1: patch-cost ablation ----

func BenchmarkA1PatchCost(b *testing.B) {
	var dil float64
	for i := 0; i < b.N; i++ {
		res, err := atum.MeasureDilation(func() (*micro.Machine, func() error, error) {
			sys, err := workload.BootMix(benchConfig(), "sieve")
			if err != nil {
				return nil, nil, err
			}
			return sys.M, func() error {
				_, err := sys.Run(2_000_000_000)
				return err
			}, nil
		}, atum.Options{CostPerRecord: 56})
		if err != nil {
			b.Fatal(err)
		}
		dil = res.Factor()
	}
	b.ReportMetric(dil, "dilation-x")
}

// ---- A2: codec ablation ----

func BenchmarkA2Codec(b *testing.B) {
	recs := benchTrace(b)
	b.ResetTimer()
	var rawN, deltaN int
	for i := 0; i < b.N; i++ {
		var raw, delta bytes.Buffer
		if err := trace.WriteFile(&raw, recs, trace.CodecRaw); err != nil {
			b.Fatal(err)
		}
		if err := trace.WriteFile(&delta, recs, trace.CodecDelta); err != nil {
			b.Fatal(err)
		}
		rawN, deltaN = raw.Len(), delta.Len()
	}
	b.ReportMetric(float64(rawN)/float64(deltaN), "compression-ratio")
	b.ReportMetric(float64(deltaN)/float64(len(recs)), "delta-bytes/record")
}

// ---- sweep engine: serial vs parallel throughput ----

// sweepJSON, when set, makes BenchmarkSweepEngine record its serial and
// parallel throughput numbers (BENCH_sweep.json):
//
//	go test -bench=SweepEngine -benchtime=1x -sweep-json=BENCH_sweep.json
var sweepJSON = flag.String("sweep-json", "", "write sweep benchmark results to this JSON file")

// sweepBenchConfigs is the config grid the sweep benchmark fans out:
// six sizes by four associativities, the cross product the paper's size
// and associativity figures sample.
func sweepBenchConfigs() []cache.Config {
	var cfgs []cache.Config
	base := benchCacheCfg()
	for _, sized := range cache.SizeConfigs(base, []uint32{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}) {
		cfgs = append(cfgs, cache.AssocConfigs(sized, []uint32{1, 2, 4, 8})...)
	}
	return cfgs
}

// BenchmarkSweepEngine measures the parallel sweep engine against its
// serial reference path (workers == 1) over one shared arena, and
// verifies the two produce identical results while timing them.
func BenchmarkSweepEngine(b *testing.B) {
	src := trace.NewArena(benchTrace(b))
	cfgs := sweepBenchConfigs()
	opts := cache.RunOptions{IncludePTE: true}
	nrec := float64(src.NumRecords())
	b.ResetTimer()
	var serialSec, parallelSec float64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		serial, err := sweep.Caches(src, cfgs, opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		parallel, err := sweep.Caches(src, cfgs, opts, 0)
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		for j := range serial {
			if serial[j] != parallel[j] {
				b.Fatalf("config %s: serial and parallel results differ", cfgs[j].Name())
			}
		}
		serialSec, parallelSec = t1.Sub(t0).Seconds(), t2.Sub(t1).Seconds()
	}
	nc := float64(len(cfgs))
	b.ReportMetric(nc/serialSec, "serial-configs/s")
	b.ReportMetric(nc/parallelSec, "parallel-configs/s")
	b.ReportMetric(serialSec/parallelSec, "speedup-x")

	if *sweepJSON == "" {
		return
	}
	type lane struct {
		Workers       int     `json:"workers"`
		Seconds       float64 `json:"seconds"`
		ConfigsPerSec float64 `json:"configs_per_sec"`
		RecordsPerSec float64 `json:"records_per_sec"`
	}
	out := struct {
		GeneratedBy  string  `json:"generated_by"`
		Cores        int     `json:"cores"`
		GOMAXPROCS   int     `json:"gomaxprocs"`
		TraceRecords int     `json:"trace_records"`
		Configs      int     `json:"configs"`
		Serial       lane    `json:"serial"`
		Parallel     lane    `json:"parallel"`
		SpeedupX     float64 `json:"speedup_x"`
	}{
		GeneratedBy:  "go test -bench=SweepEngine -benchtime=1x -sweep-json=" + *sweepJSON,
		Cores:        runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		TraceRecords: src.NumRecords(),
		Configs:      len(cfgs),
		Serial:       lane{Workers: 1, Seconds: serialSec, ConfigsPerSec: nc / serialSec, RecordsPerSec: nc * nrec / serialSec},
		Parallel:     lane{Workers: sweep.Resolve(0), Seconds: parallelSec, ConfigsPerSec: nc / parallelSec, RecordsPerSec: nc * nrec / parallelSec},
		SpeedupX:     serialSec / parallelSec,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*sweepJSON, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// ---- simulator throughput (engineering metric) ----

func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := workload.BootMix(benchConfig(), "sieve")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sys.M.Instrs), "instrs/op")
	}
}

func BenchmarkSimulatorThroughputTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := workload.BootMix(benchConfig(), "sieve")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
			_, err := sys.Run(2_000_000_000)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}
