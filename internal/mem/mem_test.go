package mem

import "testing"

func mustNew(t *testing.T, size, reserved uint32) *Physical {
	t.Helper()
	p, err := NewPhysical(size, reserved)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstruction(t *testing.T) {
	if _, err := NewPhysical(0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewPhysical(1000, 0); err == nil {
		t.Error("non-page-multiple size accepted")
	}
	if _, err := NewPhysical(1<<20, 100); err == nil {
		t.Error("non-page-multiple reserved accepted")
	}
	if _, err := NewPhysical(1<<20, 2<<20); err == nil {
		t.Error("reserved > size accepted")
	}
	p := mustNew(t, 1<<20, 64<<10)
	if p.Size() != 1<<20 {
		t.Error("size")
	}
	if p.ReservedBase() != 1<<20-64<<10 {
		t.Error("reserved base")
	}
	if p.ReservedSize() != 64<<10 {
		t.Error("reserved size")
	}
	if p.Frames() != (1<<20-64<<10)/PageSize {
		t.Error("frames")
	}
}

func TestLoadStoreWidths(t *testing.T) {
	p := mustNew(t, 1<<16, 0)
	if err := p.Store32(0x100, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Load32(0x100); v != 0xDEADBEEF {
		t.Errorf("load32 %#x", v)
	}
	if v, _ := p.Load16(0x100); v != 0xBEEF {
		t.Errorf("load16 %#x", v)
	}
	if v, _ := p.Load8(0x103); v != 0xDE {
		t.Errorf("load8 %#x", v)
	}
	if err := p.Store16(0x200, 0x1234); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Load16(0x200); v != 0x1234 {
		t.Error("store16")
	}
	if err := p.Store8(0x300, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Load8(0x300); v != 0xAB {
		t.Error("store8")
	}
}

func TestBounds(t *testing.T) {
	p := mustNew(t, 1<<16, 0)
	if _, err := p.Load8(1 << 16); err == nil {
		t.Error("load8 out of bounds accepted")
	}
	if _, err := p.Load32(1<<16 - 2); err == nil {
		t.Error("straddling load32 accepted")
	}
	if err := p.Store32(0xFFFFFFFE, 1); err == nil {
		t.Error("wrapping store accepted")
	}
	var be *BoundsError
	if _, err := p.Load32(1 << 20); err == nil {
		t.Error("no error")
	} else if be, _ = err.(*BoundsError); be == nil || be.PA != 1<<20 {
		t.Errorf("error detail: %v", err)
	}
	if be.Error() == "" {
		t.Error("empty error string")
	}
}

func TestConsole(t *testing.T) {
	p := mustNew(t, 1<<16, 0)
	if err := p.Store8(ConsoleTX, 'h'); err != nil {
		t.Fatal(err)
	}
	if err := p.Store32(ConsoleTX, 'i'); err != nil {
		t.Fatal(err)
	}
	if string(p.Console()) != "hi" {
		t.Errorf("console %q", p.Console())
	}
	p.ResetConsole()
	if len(p.Console()) != 0 {
		t.Error("reset failed")
	}
}

func TestLoadBytesAndView(t *testing.T) {
	p := mustNew(t, 1<<16, 0)
	if err := p.LoadBytes(0x400, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, err := p.Bytes(0x400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 || b[2] != 3 {
		t.Error("view content")
	}
	if err := p.LoadBytes(1<<16-1, []byte{1, 2}); err == nil {
		t.Error("overflowing LoadBytes accepted")
	}
	if _, err := p.Bytes(1<<16-1, 2); err == nil {
		t.Error("overflowing Bytes accepted")
	}
}
