// Package mem models the physical memory of the simulated machine.
//
// Physical memory is a flat byte array with a small amount of structure on
// top: a reserved region at the top of memory that the ATUM microcode
// patches use as the trace buffer (the operating system is configured so
// it never allocates frames there), and a one-register memory-mapped
// console transmit port. All CPU and microcode accesses go through this
// package; it performs bounds checking only — protection is the MMU's job.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the VAX page size in bytes (2^PageShift).
const (
	PageShift = 9
	PageSize  = 1 << PageShift // 512
)

// ConsoleTX is the physical address of the memory-mapped console transmit
// register. A byte stored here is appended to the console output. It sits
// in I/O space, above any legal RAM size.
const ConsoleTX = 0xFFFF0000

// ErrBounds is returned (wrapped) for accesses outside physical memory.
type BoundsError struct {
	PA   uint32
	Size int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("mem: physical access out of bounds: pa=%#x size=%d", e.PA, e.Size)
}

// Physical is the machine's physical memory.
//
// The top ReservedBytes of RAM form the reserved region. Reads and writes
// there are legal (the ATUM patches and the extraction tool use them) but
// the kernel's frame allocator is built to exclude them.
type Physical struct {
	ram      []byte
	reserved uint32 // bytes reserved at top
	console  []byte // bytes written to ConsoleTX
}

// NewPhysical allocates size bytes of RAM with reserved bytes held back at
// the top for the trace region. size and reserved must be page multiples.
func NewPhysical(size, reserved uint32) (*Physical, error) {
	if size == 0 || size%PageSize != 0 {
		return nil, fmt.Errorf("mem: size %#x is not a positive page multiple", size)
	}
	if reserved%PageSize != 0 || reserved > size {
		return nil, fmt.Errorf("mem: reserved %#x invalid for size %#x", reserved, size)
	}
	return &Physical{ram: make([]byte, size), reserved: reserved}, nil
}

// Size returns the total RAM size in bytes.
func (p *Physical) Size() uint32 { return uint32(len(p.ram)) }

// ReservedBase returns the physical address where the reserved (trace)
// region begins.
func (p *Physical) ReservedBase() uint32 { return uint32(len(p.ram)) - p.reserved }

// ReservedSize returns the size in bytes of the reserved region.
func (p *Physical) ReservedSize() uint32 { return p.reserved }

// Frames returns the number of page frames of usable (non-reserved) RAM.
func (p *Physical) Frames() uint32 { return p.ReservedBase() / PageSize }

// Load8 loads one byte of physical memory.
func (p *Physical) Load8(pa uint32) (byte, error) {
	if pa >= uint32(len(p.ram)) {
		return 0, &BoundsError{PA: pa, Size: 1}
	}
	return p.ram[pa], nil
}

// Load16 loads a 16-bit little-endian word.
func (p *Physical) Load16(pa uint32) (uint16, error) {
	if pa+1 < pa || pa+2 > uint32(len(p.ram)) {
		return 0, &BoundsError{PA: pa, Size: 2}
	}
	return binary.LittleEndian.Uint16(p.ram[pa:]), nil
}

// Load32 loads a 32-bit little-endian longword.
func (p *Physical) Load32(pa uint32) (uint32, error) {
	if pa+3 < pa || pa+4 > uint32(len(p.ram)) {
		return 0, &BoundsError{PA: pa, Size: 4}
	}
	return binary.LittleEndian.Uint32(p.ram[pa:]), nil
}

// Store8 stores one byte. A store to ConsoleTX appends to the console.
func (p *Physical) Store8(pa uint32, v byte) error {
	if pa == ConsoleTX {
		p.console = append(p.console, v)
		return nil
	}
	if pa >= uint32(len(p.ram)) {
		return &BoundsError{PA: pa, Size: 1}
	}
	p.ram[pa] = v
	return nil
}

// Store16 stores a 16-bit little-endian word.
func (p *Physical) Store16(pa uint32, v uint16) error {
	if pa+1 < pa || pa+2 > uint32(len(p.ram)) {
		return &BoundsError{PA: pa, Size: 2}
	}
	binary.LittleEndian.PutUint16(p.ram[pa:], v)
	return nil
}

// Store32 stores a 32-bit little-endian longword.
func (p *Physical) Store32(pa uint32, v uint32) error {
	if pa == ConsoleTX { // longword store of a character code is tolerated
		p.console = append(p.console, byte(v))
		return nil
	}
	if pa+3 < pa || pa+4 > uint32(len(p.ram)) {
		return &BoundsError{PA: pa, Size: 4}
	}
	binary.LittleEndian.PutUint32(p.ram[pa:], v)
	return nil
}

// LoadBytes copies b into physical memory at pa (bootstrap/loader use).
func (p *Physical) LoadBytes(pa uint32, b []byte) error {
	if pa+uint32(len(b)) < pa || pa+uint32(len(b)) > uint32(len(p.ram)) {
		return &BoundsError{PA: pa, Size: len(b)}
	}
	copy(p.ram[pa:], b)
	return nil
}

// Bytes returns a read-only view of n bytes at pa (extraction-tool use).
func (p *Physical) Bytes(pa, n uint32) ([]byte, error) {
	if pa+n < pa || pa+n > uint32(len(p.ram)) {
		return nil, &BoundsError{PA: pa, Size: int(n)}
	}
	return p.ram[pa : pa+n : pa+n], nil
}

// Console returns everything written to the console transmit register.
func (p *Physical) Console() []byte { return p.console }

// ResetConsole clears captured console output.
func (p *Physical) ResetConsole() { p.console = nil }
