package mmu

import "atum/internal/mem"

// TB is the hardware translation buffer: a direct-mapped cache of PTEs,
// split into a process half (P0/P1 addresses) and a system half (S0
// addresses), as on the VAX 8200. The split matters for the OS studies:
// LDPCTX invalidates only the process half, so system translations
// survive context switches.
type TB struct {
	half    uint32 // entries per half
	entries []tbEntry

	// Counters for the TB behaviour itself (distinct from Unit.Stats,
	// which counts whole translations).
	ProcessFlushes uint64
	TotalFlushes   uint64
}

type tbEntry struct {
	valid bool
	vpn   uint32 // full VPN incl. region bits (va >> 9)
	pte   uint32
}

func (t *TB) init(entries int) {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("mmu: TB entries must be a positive power of two")
	}
	t.half = uint32(entries / 2)
	if t.half == 0 {
		t.half = 1
	}
	t.entries = make([]tbEntry, 2*t.half)
}

// slot maps a VA to its TB slot: system addresses use the upper half.
func (t *TB) slot(va uint32) *tbEntry {
	vpn := va >> mem.PageShift
	idx := vpn & (t.half - 1)
	if va>>30 == RegionS0 {
		idx += t.half
	}
	return &t.entries[idx]
}

func (t *TB) probe(va uint32) (uint32, bool) {
	e := t.slot(va)
	if e.valid && e.vpn == va>>mem.PageShift {
		return e.pte, true
	}
	return 0, false
}

func (t *TB) fill(va uint32, pte uint32) {
	e := t.slot(va)
	e.valid = true
	e.vpn = va >> mem.PageShift
	e.pte = pte
}

// update refreshes a cached PTE if present (modify-bit maintenance).
func (t *TB) update(va uint32, pte uint32) {
	e := t.slot(va)
	if e.valid && e.vpn == va>>mem.PageShift {
		e.pte = pte
	}
}

// InvalidateAll clears the entire TB (MTPR TBIA).
func (t *TB) InvalidateAll() {
	t.TotalFlushes++
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// InvalidateProcess clears only process-half entries (context switch).
func (t *TB) InvalidateProcess() {
	t.ProcessFlushes++
	for i := uint32(0); i < t.half; i++ {
		t.entries[i].valid = false
	}
}

// InvalidateSingle removes the entry covering va (MTPR TBIS).
func (t *TB) InvalidateSingle(va uint32) {
	e := t.slot(va)
	if e.valid && e.vpn == va>>mem.PageShift {
		e.valid = false
	}
}

// Entries returns the TB capacity.
func (t *TB) Entries() int { return len(t.entries) }
