// Package mmu implements VAX-style memory management: the P0/P1/S0
// virtual-address regions, 512-byte pages, page-table entries with
// valid/protection/modify bits, base/length registers, and the hardware
// translation buffer (TB).
//
// Translation follows the VAX scheme: system-region (S0) page tables are
// addressed physically via SBR, while per-process (P0/P1) page tables
// live in S0 *virtual* space, so a process-region TB miss can trigger a
// nested system-region walk. Every PTE read performed by the "microcode"
// walk is reported to an Observer — these are exactly the references the
// ATUM patches record alongside ordinary program references.
package mmu

import (
	"fmt"

	"atum/internal/mem"
)

// Virtual address regions (VA bits 31:30).
const (
	RegionP0 = 0 // 0x00000000..0x3FFFFFFF: program region (code, heap)
	RegionP1 = 1 // 0x40000000..0x7FFFFFFF: control region (user stack), grows down
	RegionS0 = 2 // 0x80000000..0xBFFFFFFF: system region
)

// Region size in pages (1 GB / 512 B).
const RegionPages = 1 << 21

// PTE layout.
const (
	PTEValid     uint32 = 1 << 31
	PTEProtShift        = 27
	PTEProtMask  uint32 = 0xF << PTEProtShift
	PTEModify    uint32 = 1 << 26
	PTEPFNMask   uint32 = 0x1FFFFF
)

// Protection codes (stored in the PTE prot field). A simplified but
// VAX-shaped lattice: kernel always has read access to valid pages;
// the code controls kernel write and user read/write.
const (
	ProtKW   uint32 = 0x2 // kernel read/write, user no access
	ProtKR   uint32 = 0x3 // kernel read-only, user no access
	ProtUR   uint32 = 0x6 // kernel read/write, user read-only
	ProtUW   uint32 = 0x4 // kernel and user read/write
	ProtURKR uint32 = 0x7 // kernel read-only, user read-only
)

// MakePTE builds a valid PTE for page frame pfn with protection prot.
func MakePTE(pfn uint32, prot uint32) uint32 {
	return PTEValid | (prot << PTEProtShift) | (pfn & PTEPFNMask)
}

// protAllows reports whether an access in the given mode is permitted.
func protAllows(prot uint32, userMode, write bool) bool {
	switch prot {
	case ProtKW:
		return !userMode
	case ProtKR:
		return !userMode && !write
	case ProtUR:
		if !userMode {
			return true
		}
		return !write
	case ProtUW:
		return true
	case ProtURKR:
		return !write
	default:
		return false
	}
}

// FaultKind distinguishes the two memory-management exceptions.
type FaultKind uint8

const (
	FaultACV FaultKind = iota // access violation (protection or length)
	FaultTNV                  // translation not valid (page fault)
)

func (k FaultKind) String() string {
	if k == FaultACV {
		return "ACV"
	}
	return "TNV"
}

// Fault describes a failed translation.
type Fault struct {
	Kind   FaultKind
	VA     uint32
	Write  bool
	PTERef bool // the fault occurred on a nested page-table reference
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s va=%#x write=%v pteRef=%v", f.Kind, f.VA, f.Write, f.PTERef)
}

// Observer receives the memory references made by the translation
// microcode itself (PTE reads, and PTE writes when setting modify bits).
// addr is a virtual address when virt is true (process-region PTEs, which
// live in S0 space), otherwise physical (system-region PTEs).
type Observer interface {
	PTERead(addr uint32, virt bool)
	PTEWrite(addr uint32, virt bool)
}

// Stats counts translation activity.
type Stats struct {
	Accesses uint64
	TBHits   uint64
	TBMisses uint64
	PTEReads uint64
	Faults   uint64
}

// Unit is the memory-management unit.
type Unit struct {
	Mem *mem.Physical
	Obs Observer // may be nil

	MapEn bool // MAPEN: when false, VAs are PAs

	// Base/length registers. P0BR/P1BR are S0 virtual addresses; SBR is
	// physical. Lengths are in pages. P1 is valid for vpn >= P1LR.
	P0BR, P0LR uint32
	P1BR, P1LR uint32
	SBR, SLR   uint32

	TB    TB
	Stats Stats
}

// New creates an MMU over physical memory with a TB of tbEntries
// (power of two, split evenly between process and system halves).
func New(m *mem.Physical, tbEntries int) *Unit {
	u := &Unit{Mem: m}
	u.TB.init(tbEntries)
	return u
}

// Translate maps a virtual address to a physical address for an access of
// the given kind. userMode selects protection checking; write selects
// write permission and modify-bit maintenance. On failure the returned
// fault is non-nil.
//
// Translation is per-access, not per-page-crossing: the micro engine
// performs one Translate per memory reference at the reference's address
// (unaligned references that cross a page boundary translate each
// affected page).
func (u *Unit) Translate(va uint32, userMode, write bool) (uint32, *Fault) {
	u.Stats.Accesses++
	if !u.MapEn {
		return va, nil
	}
	pte, fault := u.lookup(va, write)
	if fault != nil {
		u.Stats.Faults++
		return 0, fault
	}
	prot := (pte & PTEProtMask) >> PTEProtShift
	if !protAllows(prot, userMode, write) {
		u.Stats.Faults++
		return 0, &Fault{Kind: FaultACV, VA: va, Write: write}
	}
	if write && pte&PTEModify == 0 {
		u.setModify(va)
	}
	return (pte&PTEPFNMask)<<mem.PageShift | va&(mem.PageSize-1), nil
}

// lookup returns the PTE for va, consulting the TB first and walking the
// page tables on a miss.
func (u *Unit) lookup(va uint32, write bool) (uint32, *Fault) {
	if pte, ok := u.TB.probe(va); ok {
		u.Stats.TBHits++
		return pte, nil
	}
	u.Stats.TBMisses++
	pte, fault := u.walk(va, false)
	if fault != nil {
		return 0, fault
	}
	u.TB.fill(va, pte)
	return pte, nil
}

// walk performs the page-table walk for va. nested marks the inner system
// walk performed to translate a process page-table address.
func (u *Unit) walk(va uint32, nested bool) (uint32, *Fault) {
	region := va >> 30
	vpn := (va >> mem.PageShift) & (RegionPages - 1)

	switch region {
	case RegionS0:
		if vpn >= u.SLR {
			return 0, &Fault{Kind: FaultACV, VA: va, PTERef: nested}
		}
		pteAddr := u.SBR + 4*vpn // physical
		u.Stats.PTEReads++
		if u.Obs != nil {
			u.Obs.PTERead(pteAddr, false)
		}
		pte, err := u.Mem.Load32(pteAddr)
		if err != nil {
			return 0, &Fault{Kind: FaultACV, VA: va, PTERef: nested}
		}
		if pte&PTEValid == 0 {
			return 0, &Fault{Kind: FaultTNV, VA: va, PTERef: nested}
		}
		return pte, nil

	case RegionP0, RegionP1:
		if nested {
			// Process page tables must live in S0.
			return 0, &Fault{Kind: FaultACV, VA: va, PTERef: true}
		}
		var br uint32
		if region == RegionP0 {
			if vpn >= u.P0LR {
				return 0, &Fault{Kind: FaultACV, VA: va}
			}
			br = u.P0BR
		} else {
			if vpn < u.P1LR {
				return 0, &Fault{Kind: FaultACV, VA: va}
			}
			br = u.P1BR
		}
		pteVA := br + 4*vpn // S0 virtual address of the process PTE

		// The process PTE itself is reached through the system half of
		// the TB (a nested translation).
		sysPTE, ok := u.TB.probe(pteVA)
		if !ok {
			var fault *Fault
			sysPTE, fault = u.walk(pteVA, true)
			if fault != nil {
				// Report the original VA; the kernel sees a fault on the
				// user address with PTERef set.
				fault.VA = va
				fault.PTERef = true
				return 0, fault
			}
			u.TB.fill(pteVA, sysPTE)
		}
		ptePA := (sysPTE&PTEPFNMask)<<mem.PageShift | pteVA&(mem.PageSize-1)
		u.Stats.PTEReads++
		if u.Obs != nil {
			u.Obs.PTERead(pteVA, true)
		}
		pte, err := u.Mem.Load32(ptePA)
		if err != nil {
			return 0, &Fault{Kind: FaultACV, VA: va}
		}
		if pte&PTEValid == 0 {
			return 0, &Fault{Kind: FaultTNV, VA: va}
		}
		return pte, nil

	default:
		return 0, &Fault{Kind: FaultACV, VA: va, PTERef: nested}
	}
}

// setModify sets the modify bit in the PTE backing va. The PTE location
// is recomputed (it must be resident: the page was just translated). The
// TB entry is refreshed so subsequent writes don't repeat the store.
func (u *Unit) setModify(va uint32) {
	region := va >> 30
	vpn := (va >> mem.PageShift) & (RegionPages - 1)
	var ptePA, pteAddr uint32
	var virt bool
	switch region {
	case RegionS0:
		ptePA = u.SBR + 4*vpn
		pteAddr, virt = ptePA, false
	case RegionP0, RegionP1:
		var br uint32
		if region == RegionP0 {
			br = u.P0BR
		} else {
			br = u.P1BR
		}
		pteVA := br + 4*vpn
		sysPTE, ok := u.TB.probe(pteVA)
		if !ok {
			var fault *Fault
			sysPTE, fault = u.walk(pteVA, true)
			if fault != nil {
				return // cannot happen after a successful translate
			}
			u.TB.fill(pteVA, sysPTE)
		}
		ptePA = (sysPTE&PTEPFNMask)<<mem.PageShift | pteVA&(mem.PageSize-1)
		pteAddr, virt = pteVA, true
	default:
		return
	}
	pte, err := u.Mem.Load32(ptePA)
	if err != nil || pte&PTEValid == 0 {
		return
	}
	pte |= PTEModify
	if u.Obs != nil {
		u.Obs.PTEWrite(pteAddr, virt)
	}
	_ = u.Mem.Store32(ptePA, pte)
	u.TB.update(va, pte)
}

// Probe translates without side effects on the modify bit or statistics;
// used by debuggers and the Go-side loaders.
func (u *Unit) Probe(va uint32, userMode, write bool) (uint32, *Fault) {
	if !u.MapEn {
		return va, nil
	}
	// Walk directly (no TB fill), skip modify maintenance, and restore
	// observer and statistics so the probe leaves no trace.
	obs, stats := u.Obs, u.Stats
	u.Obs = nil
	defer func() { u.Obs, u.Stats = obs, stats }()
	pte, fault := u.walk(va, false)
	if fault != nil {
		return 0, fault
	}
	prot := (pte & PTEProtMask) >> PTEProtShift
	if !protAllows(prot, userMode, write) {
		return 0, &Fault{Kind: FaultACV, VA: va, Write: write}
	}
	return (pte&PTEPFNMask)<<mem.PageShift | va&(mem.PageSize-1), nil
}
