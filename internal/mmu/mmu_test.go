package mmu

import (
	"testing"

	"atum/internal/mem"
)

// testObserver records PTE reference callbacks.
type testObserver struct {
	reads  []uint32
	writes []uint32
	virts  []bool
}

func (o *testObserver) PTERead(addr uint32, virt bool) {
	o.reads = append(o.reads, addr)
	o.virts = append(o.virts, virt)
}
func (o *testObserver) PTEWrite(addr uint32, virt bool) { o.writes = append(o.writes, addr) }

// buildEnv wires up a 1 MB physical memory with:
//   - a system page table at physical 0x10000 mapping S0 VAs 0x80000000..
//     identity-style: S0 page n -> frame n (so S0 va maps to pa = va & offsetMask within first pages);
//   - a process P0 page table located in S0 space at va 0x80010000
//     (i.e. physical 0x10000 + ... placed inside a mapped S0 page).
func buildEnv(t *testing.T) (*Unit, *mem.Physical, *testObserver) {
	t.Helper()
	phys, err := mem.NewPhysical(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := New(phys, 64)
	obs := &testObserver{}
	u.Obs = obs

	// System page table at physical 0x8000, 256 entries: S0 page n -> frame n.
	const spt = 0x8000
	for n := uint32(0); n < 256; n++ {
		if err := phys.Store32(spt+4*n, MakePTE(n, ProtKW)); err != nil {
			t.Fatal(err)
		}
	}
	u.SBR = spt
	u.SLR = 256

	// Process page table for P0, 16 entries, stored in physical page 64
	// (pa 0x8000+... no — place it at pa 64*512 = 0x8000? that's the SPT).
	// Use physical frame 100 (pa 0xC800), reachable as S0 va 0x80000000+0xC800.
	const pptPA = 100 * mem.PageSize
	for n := uint32(0); n < 16; n++ {
		// P0 page n -> frame 200+n, user-writable.
		if err := phys.Store32(pptPA+4*n, MakePTE(200+n, ProtUW)); err != nil {
			t.Fatal(err)
		}
	}
	// Mark P0 page 5 invalid (for TNV) and page 6 kernel-only (for ACV).
	if err := phys.Store32(pptPA+4*5, 0); err != nil {
		t.Fatal(err)
	}
	if err := phys.Store32(pptPA+4*6, MakePTE(206, ProtKW)); err != nil {
		t.Fatal(err)
	}
	u.P0BR = 0x80000000 + pptPA // S0 virtual address of the table
	u.P0LR = 16
	u.MapEn = true
	return u, phys, obs
}

func TestTranslateS0(t *testing.T) {
	u, _, obs := buildEnv(t)
	pa, fault := u.Translate(0x80000000+3*mem.PageSize+12, false, false)
	if fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if want := uint32(3*mem.PageSize + 12); pa != want {
		t.Fatalf("pa = %#x, want %#x", pa, want)
	}
	if len(obs.reads) != 1 || obs.virts[0] != false {
		t.Fatalf("expected one physical PTE read, got %v", obs.reads)
	}
}

func TestTranslateP0NestedWalk(t *testing.T) {
	u, _, obs := buildEnv(t)
	va := uint32(2*mem.PageSize + 40)
	pa, fault := u.Translate(va, true, false)
	if fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	if want := uint32(202*mem.PageSize + 40); pa != want {
		t.Fatalf("pa = %#x, want %#x", pa, want)
	}
	// Cold TB: one system PTE read (for the process table page) + one
	// process PTE read (virtual).
	if len(obs.reads) != 2 {
		t.Fatalf("PTE reads = %d, want 2 (%#v)", len(obs.reads), obs.reads)
	}
	if obs.virts[0] != false || obs.virts[1] != true {
		t.Fatalf("walk order wrong: virts=%v", obs.virts)
	}

	// Second access to the same page hits the TB: no new PTE reads.
	n := len(obs.reads)
	if _, fault := u.Translate(va+4, true, false); fault != nil {
		t.Fatal(fault)
	}
	if len(obs.reads) != n {
		t.Fatalf("TB hit still walked: reads=%d", len(obs.reads))
	}
	if u.Stats.TBHits == 0 {
		t.Error("no TB hits recorded")
	}
}

func TestTranslateFaults(t *testing.T) {
	u, _, _ := buildEnv(t)

	// TNV on invalid page 5.
	_, fault := u.Translate(5*mem.PageSize, true, false)
	if fault == nil || fault.Kind != FaultTNV {
		t.Fatalf("want TNV, got %v", fault)
	}
	// ACV: user access to kernel-only page 6.
	_, fault = u.Translate(6*mem.PageSize, true, false)
	if fault == nil || fault.Kind != FaultACV {
		t.Fatalf("want ACV, got %v", fault)
	}
	// Kernel may access it.
	if _, fault = u.Translate(6*mem.PageSize, false, true); fault != nil {
		t.Fatalf("kernel access faulted: %v", fault)
	}
	// Length violation past P0LR.
	_, fault = u.Translate(20*mem.PageSize, true, false)
	if fault == nil || fault.Kind != FaultACV {
		t.Fatalf("want length ACV, got %v", fault)
	}
	// S0 length violation.
	_, fault = u.Translate(0x80000000+300*mem.PageSize, false, false)
	if fault == nil || fault.Kind != FaultACV {
		t.Fatalf("want S0 length ACV, got %v", fault)
	}
	// Region 3 is reserved.
	_, fault = u.Translate(0xC0000000, false, false)
	if fault == nil || fault.Kind != FaultACV {
		t.Fatalf("want region ACV, got %v", fault)
	}
}

func TestModifyBitMaintenance(t *testing.T) {
	u, phys, obs := buildEnv(t)
	const pptPA = 100 * mem.PageSize

	va := uint32(1 * mem.PageSize)
	if _, fault := u.Translate(va, true, true); fault != nil {
		t.Fatal(fault)
	}
	pte, _ := phys.Load32(pptPA + 4*1)
	if pte&PTEModify == 0 {
		t.Fatal("modify bit not set after write")
	}
	if len(obs.writes) != 1 {
		t.Fatalf("PTE writes = %d, want 1", len(obs.writes))
	}
	// A second write must not rewrite the PTE (TB now caches M=1).
	if _, fault := u.Translate(va+8, true, true); fault != nil {
		t.Fatal(fault)
	}
	if len(obs.writes) != 1 {
		t.Fatalf("modify bit rewritten: writes=%d", len(obs.writes))
	}
}

func TestMapDisabled(t *testing.T) {
	u, _, _ := buildEnv(t)
	u.MapEn = false
	pa, fault := u.Translate(0x1234, false, true)
	if fault != nil || pa != 0x1234 {
		t.Fatalf("identity mapping broken: pa=%#x fault=%v", pa, fault)
	}
}

func TestTBInvalidation(t *testing.T) {
	u, _, obs := buildEnv(t)
	va := uint32(2 * mem.PageSize)
	sva := uint32(0x80000000 + 3*mem.PageSize)
	if _, f := u.Translate(va, true, false); f != nil {
		t.Fatal(f)
	}
	if _, f := u.Translate(sva, false, false); f != nil {
		t.Fatal(f)
	}

	// Process flush drops P0 but keeps S0.
	u.TB.InvalidateProcess()
	n := len(obs.reads)
	if _, f := u.Translate(sva, false, false); f != nil {
		t.Fatal(f)
	}
	if len(obs.reads) != n {
		t.Error("system entry lost on process flush")
	}
	if _, f := u.Translate(va, true, false); f != nil {
		t.Fatal(f)
	}
	if len(obs.reads) == n {
		t.Error("process entry survived process flush")
	}

	// Single invalidate.
	u.TB.InvalidateSingle(sva)
	n = len(obs.reads)
	if _, f := u.Translate(sva, false, false); f != nil {
		t.Fatal(f)
	}
	if len(obs.reads) == n {
		t.Error("entry survived TBIS")
	}

	// Full flush.
	u.TB.InvalidateAll()
	n = len(obs.reads)
	if _, f := u.Translate(va, true, false); f != nil {
		t.Fatal(f)
	}
	if len(obs.reads) == n {
		t.Error("entry survived TBIA")
	}
}

func TestP1Region(t *testing.T) {
	u, phys, _ := buildEnv(t)
	// Map the top 4 pages of P1 (user stack) using a table in frame 101.
	const p1ptPA = 101 * mem.PageSize
	topVPN := uint32(RegionPages - 4) // first valid vpn
	// P1BR + 4*vpn must land on the 4 PTEs we store at p1ptPA.
	// Store PTEs for vpn topVPN..topVPN+3 at p1ptPA..p1ptPA+12.
	for i := uint32(0); i < 4; i++ {
		if err := phys.Store32(p1ptPA+4*i, MakePTE(300+i, ProtUW)); err != nil {
			t.Fatal(err)
		}
	}
	u.P1BR = 0x80000000 + p1ptPA - 4*topVPN
	u.P1LR = topVPN

	va := uint32(0x80000000 - 8) // top of P1, 8 bytes down
	pa, fault := u.Translate(va, true, true)
	if fault != nil {
		t.Fatalf("P1 translate fault: %v", fault)
	}
	want := uint32(303*mem.PageSize) + (mem.PageSize - 8)
	if pa != want {
		t.Fatalf("pa = %#x, want %#x", pa, want)
	}
	// Below the mapped window: length violation.
	_, fault = u.Translate(0x40000000, true, false)
	if fault == nil || fault.Kind != FaultACV {
		t.Fatalf("want P1 length ACV, got %v", fault)
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	u, _, obs := buildEnv(t)
	before := u.Stats
	pa, fault := u.Probe(2*mem.PageSize, true, false)
	if fault != nil {
		t.Fatal(fault)
	}
	if pa != 202*mem.PageSize {
		t.Fatalf("pa = %#x", pa)
	}
	if u.Stats != before {
		t.Errorf("probe changed stats: %+v -> %+v", before, u.Stats)
	}
	if len(obs.reads) != 0 {
		t.Errorf("probe fired observer callbacks")
	}
}

func TestProtectionLattice(t *testing.T) {
	cases := []struct {
		prot        uint32
		user, write bool
		want        bool
	}{
		{ProtKW, false, true, true},
		{ProtKW, true, false, false},
		{ProtKR, false, false, true},
		{ProtKR, false, true, false},
		{ProtUR, true, false, true},
		{ProtUR, true, true, false},
		{ProtUR, false, true, true},
		{ProtUW, true, true, true},
		{ProtURKR, true, false, true},
		{ProtURKR, false, true, false},
		{0, false, false, false},
	}
	for _, c := range cases {
		if got := protAllows(c.prot, c.user, c.write); got != c.want {
			t.Errorf("protAllows(%#x, user=%v, write=%v) = %v, want %v",
				c.prot, c.user, c.write, got, c.want)
		}
	}
}
