// Package stats provides the small counting and histogram helpers shared
// by the trace-analysis and experiment-harness packages.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a named monotonically increasing count.
type Counter struct {
	Name string
	N    uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.N += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.N++ }

// Ratio returns a/b as float64, 0 when b is 0.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Percent returns 100*a/b, 0 when b is 0.
func Percent(a, b uint64) float64 { return 100 * Ratio(a, b) }

// Histogram is a fixed-bucket histogram over uint64 samples. Bucket
// boundaries are the caller's; sample x lands in the first bucket whose
// upper bound is >= x, with an implicit overflow bucket at the end.
type Histogram struct {
	Bounds []uint64 // ascending upper bounds
	Counts []uint64 // len(Bounds)+1, last is overflow
	Total  uint64
	Sum    uint64
	Max    uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...uint64) *Histogram {
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x uint64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return h.Bounds[i] >= x })
	h.Counts[i]++
	h.Total++
	h.Sum += x
	if x > h.Max {
		h.Max = x
	}
}

// Mean returns the sample mean, 0 with no samples.
func (h *Histogram) Mean() float64 { return Ratio(h.Sum, h.Total) }

// String renders the histogram one bucket per line.
func (h *Histogram) String() string {
	s := ""
	for i, c := range h.Counts {
		label := "+inf"
		if i < len(h.Bounds) {
			label = fmt.Sprintf("%d", h.Bounds[i])
		}
		s += fmt.Sprintf("<=%-10s %10d (%5.1f%%)\n", label, c, Percent(c, h.Total))
	}
	return s
}

// Welford accumulates mean and variance online.
type Welford struct {
	N    uint64
	mean float64
	m2   float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.N++
	d := x - w.mean
	w.mean += d / float64(w.N)
	w.m2 += d * (x - w.mean)
}

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 {
	if w.N < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.N-1))
}
