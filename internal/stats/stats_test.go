package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterAndRatios(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Add(4)
	if c.N != 5 {
		t.Errorf("N = %d", c.N)
	}
	if Ratio(1, 0) != 0 || Percent(1, 0) != 0 {
		t.Error("division by zero not guarded")
	}
	if Ratio(1, 4) != 0.25 || Percent(1, 4) != 25 {
		t.Error("ratio math")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, x := range []uint64{5, 10, 11, 100, 5000} {
		h.Observe(x)
	}
	want := []uint64{2, 2, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total != 5 || h.Max != 5000 {
		t.Errorf("total=%d max=%d", h.Total, h.Max)
	}
	if got := h.Mean(); math.Abs(got-1025.2) > 0.01 {
		t.Errorf("mean = %f", got)
	}
	if !strings.Contains(h.String(), "+inf") {
		t.Error("overflow bucket missing from render")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("descending bounds accepted")
		}
	}()
	NewHistogram(10, 5)
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Errorf("mean = %f", w.Mean())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(w.StdDev()-2.13809) > 1e-4 {
		t.Errorf("stddev = %f", w.StdDev())
	}
	var w0 Welford
	w0.Observe(1)
	if w0.StdDev() != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

// Property: histogram total always equals the number of observations and
// bucket counts sum to total.
func TestHistogramInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram(8, 64, 512, 4096)
		n := 100 + r.Intn(400)
		for i := 0; i < n; i++ {
			h.Observe(uint64(r.Intn(10000)))
		}
		sum := uint64(0)
		for _, c := range h.Counts {
			sum += c
		}
		return sum == h.Total && h.Total == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
