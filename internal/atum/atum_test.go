package atum_test

import (
	"fmt"

	"atum/internal/atum"
	"testing"

	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/trace"
	"atum/internal/vax"
	"atum/internal/workload"
)

const helloSrc = `
	.org	0x200
start:	movl	#200, r6
loop:	addl3	r6, r7, r8
	movl	r8, scratch
	movl	scratch, r9
	sobgtr	r6, loop
	moval	msg, r1
	movl	#3, r2
	chmk	#1
	chmk	#0
msg:	.ascii	"ok\n"
scratch: .long	0
`

func buildSystem(t *testing.T, srcs ...string) *kernel.System {
	t.Helper()
	return buildSystemCfg(t, kernel.DefaultConfig(), srcs...)
}

func buildSystemCfg(t *testing.T, cfg kernel.Config, srcs ...string) *kernel.System {
	t.Helper()
	cfg.Machine.MemSize = 4 << 20
	cfg.Machine.ReservedSize = 256 << 10
	sys, err := kernel.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		prog, err := vax.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Spawn("w", prog, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Finalize(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCaptureBasics(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Console() != "ok\n" {
		t.Fatalf("workload broken under tracing: console=%q", sys.Console())
	}
	recs := cap.All()
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
	s := trace.Summarize(recs)
	if s.SystemRefs == 0 || s.UserRefs == 0 {
		t.Errorf("trace missing a mode: user=%d system=%d", s.UserRefs, s.SystemRefs)
	}
	if s.ByKind[trace.KindPTERead] == 0 {
		t.Error("no PTE reads in trace")
	}
	if s.CtxSwitches == 0 {
		t.Error("no context-switch marker in trace")
	}
	if s.Exceptions == 0 {
		t.Error("no exception markers in trace")
	}
	if s.IFetches == 0 || s.Reads == 0 || s.Writes == 0 {
		t.Errorf("reference mix incomplete: %+v", s)
	}
}

func TestTracingIsTransparent(t *testing.T) {
	// With the interval timer effectively disabled (its period longer
	// than the run), the traced and untraced machines must execute the
	// identical instruction stream: tracing is architecturally invisible
	// except as time. With the timer on, only elapsed cycles may differ
	// (time dilation shifts interrupt arrival) — the paper notes exactly
	// this effect on time-dependent behaviour.
	cfg := kernel.DefaultConfig()
	cfg.ICRCycles = 1 << 30

	sysA := buildSystemCfg(t, cfg, helloSrc)
	if _, err := sysA.Run(50_000_000); err != nil {
		t.Fatal(err)
	}

	sysB := buildSystemCfg(t, cfg, helloSrc)
	_, err := atum.Run(sysB.M, atum.DefaultOptions(), func() error {
		_, err := sysB.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sysA.Console() != sysB.Console() {
		t.Errorf("console differs: %q vs %q", sysA.Console(), sysB.Console())
	}
	if sysA.M.Instrs != sysB.M.Instrs {
		t.Errorf("instruction count differs: %d vs %d (tracing is architecturally visible!)",
			sysA.M.Instrs, sysB.M.Instrs)
	}
	if sysB.M.Cycles <= sysA.M.Cycles {
		t.Errorf("tracing cost no cycles: base=%d traced=%d", sysA.M.Cycles, sysB.M.Cycles)
	}

	// With the clock running, results still match even though timing
	// (and thus scheduling) differs.
	sysC := buildSystem(t, helloSrc)
	if _, err := sysC.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	sysD := buildSystem(t, helloSrc)
	if _, err := atum.Run(sysD.M, atum.DefaultOptions(), func() error {
		_, err := sysD.Run(50_000_000)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if sysC.Console() != sysD.Console() {
		t.Errorf("console differs under timer: %q vs %q", sysC.Console(), sysD.Console())
	}
}

func TestDilationMeasurement(t *testing.T) {
	factory := func() (*micro.Machine, func() error, error) {
		sys := buildSystem(t, helloSrc)
		return sys.M, func() error {
			_, err := sys.Run(50_000_000)
			return err
		}, nil
	}
	res, err := atum.MeasureDilation(factory, atum.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := res.Factor()
	// With the default 32-cycle record cost the machine should dilate by
	// roughly an order of magnitude — the paper reports about 20x. Allow
	// a broad band; the exact value is studied by the A1 ablation.
	if f < 5 || f > 60 {
		t.Errorf("dilation factor %.1f outside plausible band [5,60]", f)
	}
	if res.Records == 0 {
		t.Error("no records counted")
	}
}

func TestBufferFullSampling(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	opts.BufBytes = 4096 // tiny buffer: 512 records per sample
	fills := 0
	opts.OnFull = func(c *atum.Collector) { fills++ }
	cap, err := atum.Run(sys.M, opts, func() error {
		_, err := sys.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if fills == 0 {
		t.Fatal("buffer never filled")
	}
	if len(cap.Samples) < 2 {
		t.Fatalf("expected multiple samples, got %d", len(cap.Samples))
	}
	for i, s := range cap.Samples[:len(cap.Samples)-1] {
		if len(s) != 512 {
			t.Errorf("sample %d has %d records, want 512", i, len(s))
		}
	}
	if cap.Collector.Samples != uint64(fills) {
		t.Errorf("Samples=%d fills=%d", cap.Collector.Samples, fills)
	}
}

func TestPauseDropsReferences(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	col, err := atum.Install(sys.M, atum.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	col.Pause()
	if _, err := sys.Run(200); err != nil {
		t.Fatal(err)
	}
	if col.Recorded != 0 {
		t.Errorf("recorded %d while paused", col.Recorded)
	}
	if col.Dropped == 0 {
		t.Error("no drops counted while paused")
	}
	col.Resume()
	if _, err := sys.Run(200); err != nil {
		t.Fatal(err)
	}
	if col.Recorded == 0 {
		t.Error("nothing recorded after resume")
	}
}

func TestUninstallStopsTracingAndCost(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	col, err := atum.Install(sys.M, atum.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(10_000); err != nil {
		t.Fatal(err)
	}
	n := col.Recorded
	if n == 0 {
		t.Fatal("no records before uninstall")
	}
	col.Uninstall()
	before := sys.M.Cycles
	instr0 := sys.M.Instrs
	if _, err := sys.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if col.Recorded != n {
		t.Error("records written after uninstall")
	}
	// Rough cost check: cycles per instruction should be back near the
	// untraced rate (well under the traced rate).
	cpi := float64(sys.M.Cycles-before) / float64(sys.M.Instrs-instr0)
	if cpi > 60 {
		t.Errorf("post-uninstall CPI %.1f still looks traced", cpi)
	}
	col.Uninstall() // idempotent
}

func TestKindMaskFiltering(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	opts.KindMask = 1 << uint(micro.EvDWrite) // writes only
	cap, err := atum.Run(sys.M, opts, func() error {
		_, err := sys.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cap.All() {
		if r.Kind != trace.KindDWrite {
			t.Fatalf("unexpected record kind %v under write-only mask", r.Kind)
		}
	}
	if len(cap.All()) == 0 {
		t.Error("no writes captured")
	}
}

func TestTraceBufferIsInvisibleToOS(t *testing.T) {
	// The kernel's frame allocator must never hand out reserved frames:
	// run a paging-heavy workload under tracing and verify no trace
	// record was clobbered (ParseBuffer round-trips are internally
	// consistent) and the workload output is intact.
	src := `
	.org	0x200
start:	movl	#8, r1
	chmk	#2		; sbrk(8 pages)
	movl	r0, r7
	movl	#8, r6
fill:	movl	r6, (r7)
	addl2	#512, r7
	sobgtr	r6, fill
	moval	ok, r1
	movl	#2, r2
	chmk	#1
	chmk	#0
ok:	.ascii	"OK"
`
	sys := buildSystem(t, src)
	reserved := sys.M.Mem.ReservedBase()
	cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Console() != "OK" {
		t.Fatalf("console = %q", sys.Console())
	}
	for _, r := range cap.All() {
		if r.Phys && r.Addr >= reserved && r.Kind.IsMemRef() {
			t.Fatalf("OS/microcode touched the reserved region: %v", r)
		}
	}
}

func TestTimeSampling(t *testing.T) {
	// Full capture for reference.
	sysA := buildSystem(t, helloSrc)
	capA, err := atum.Run(sysA.M, atum.DefaultOptions(), func() error {
		_, err := sysA.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	full := len(capA.All())
	fullCycles := sysA.M.Cycles

	// 1-in-4 time sampling.
	sysB := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	opts.SampleOn = 1000
	opts.SampleOff = 3000
	capB, err := atum.Run(sysB.M, opts, func() error {
		_, err := sysB.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled := len(capB.All())
	if sysB.Console() != sysA.Console() {
		t.Error("sampling perturbed the workload result")
	}
	frac := float64(sampled) / float64(full)
	if frac < 0.15 || frac > 0.40 {
		t.Errorf("sampled fraction %.2f, want ~0.25", frac)
	}
	if capB.Collector.Dropped == 0 {
		t.Error("no events dropped in off-phases")
	}
	if sysB.M.Cycles >= fullCycles {
		t.Errorf("sampling did not reduce dilation: %d >= %d", sysB.M.Cycles, fullCycles)
	}
}

// TestDilationVisibleFromInside reproduces the paper's time-perturbation
// observation from the traced machine's own point of view: a workload
// that times itself with the kernel's wall-clock tick counter reports a
// much larger elapsed time when ATUM is installed, because the interval
// timer runs in real (micro)cycles while the work runs ~20x dilated.
func TestDilationVisibleFromInside(t *testing.T) {
	elapsed := func(traced bool) int {
		cfg := kernel.DefaultConfig()
		cfg.Machine.MemSize = 4 << 20
		cfg.Machine.ReservedSize = 512 << 10
		sys, err := workload.BootMix(cfg, "selftime")
		if err != nil {
			t.Fatal(err)
		}
		run := func() error {
			_, err := sys.Run(200_000_000)
			return err
		}
		if traced {
			if _, err := atum.Run(sys.M, atum.DefaultOptions(), run); err != nil {
				t.Fatal(err)
			}
		} else if err := run(); err != nil {
			t.Fatal(err)
		}
		var n int
		if _, err := fmt.Sscan(sys.Console(), &n); err != nil {
			t.Fatalf("console %q: %v", sys.Console(), err)
		}
		return n
	}
	bare := elapsed(false)
	traced := elapsed(true)
	if bare == 0 {
		t.Skip("workload too fast to self-time at this tick rate")
	}
	ratio := float64(traced) / float64(bare)
	if ratio < 5 {
		t.Errorf("self-measured dilation %.1fx (bare %d ticks, traced %d); the workload should feel the slowdown",
			ratio, bare, traced)
	}
}

func TestInstallErrors(t *testing.T) {
	m, err := micro.New(micro.Config{MemSize: 1 << 20, ReservedSize: 0, TBEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := atum.Install(m, atum.DefaultOptions()); err == nil {
		t.Error("install with no reserved region should fail")
	}
}

// TestCapturedTracesAreWellFormed runs the trace linter over real
// captures from several workload mixes: the microcode patches must
// produce structurally valid traces (this is the check that catches a
// broken patch long before miss rates look wrong).
func TestCapturedTracesAreWellFormed(t *testing.T) {
	for _, mix := range [][]string{
		{"sieve"},
		{"sort", "hash"},
		{"producer", "consumer"},
	} {
		cfg := kernel.DefaultConfig()
		cfg.Machine.MemSize = 4 << 20
		cfg.Machine.ReservedSize = 512 << 10
		sys, err := workload.BootMix(cfg, mix...)
		if err != nil {
			t.Fatal(err)
		}
		cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
			_, err := sys.Run(500_000_000)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if v := trace.Lint(cap.All()); len(v) != 0 {
			t.Errorf("mix %v produced malformed trace:\n%s", mix, v)
		}
	}
}

func TestDeterministicCapture(t *testing.T) {
	run := func() []trace.Record {
		sys := buildSystem(t, helloSrc)
		cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
			_, err := sys.Run(50_000_000)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return cap.All()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
