package atum_test

import (
	"math"
	"reflect"

	"atum/internal/atum"
	"testing"

	"atum/internal/trace"
)

// TestWatermarkFires: with a watermark armed, the callback fires while
// the collector is still recording, and a callback that drains the
// buffer keeps the capture loss-free (OnFull never reached).
func TestWatermarkFires(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	opts.BufBytes = 4096 // 512 records
	opts.Watermark = 0.5
	fires, fulls := 0, 0
	var segs [][]trace.Record
	opts.OnWatermark = func(c *atum.Collector) {
		fires++
		if !c.Recording() {
			t.Error("collector not recording inside OnWatermark")
		}
		recs, _, err := c.ExtractSegment()
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, recs)
	}
	opts.OnFull = func(c *atum.Collector) { fulls++ }
	col, err := atum.Install(sys.M, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if fires < 2 {
		t.Fatalf("watermark fired %d times, want several", fires)
	}
	if fulls != 0 {
		t.Errorf("OnFull fired %d times despite the spilling watermark", fulls)
	}
	if col.Dropped != 0 {
		t.Errorf("%d events dropped despite spilling", col.Dropped)
	}
	var total int
	for i, s := range segs {
		if len(s) != 256 {
			t.Errorf("segment %d has %d records, want 256 (0.5 watermark of 512)", i, len(s))
		}
		total += len(s)
	}
	if uint64(total)+uint64(col.BufferedRecords()) != col.Recorded {
		t.Errorf("segments (%d) + buffered (%d) != recorded (%d)",
			total, col.BufferedRecords(), col.Recorded)
	}
}

// TestWatermarkSpillMatchesMonolithic: a capture spilled at Watermark
// 1.0 must produce the identical record stream to the same workload
// captured into one big buffer — the collector-level half of the
// stitching guarantee (the kernel spill service tests the full path).
func TestWatermarkSpillMatchesMonolithic(t *testing.T) {
	runCapture := func(opts atum.Options) ([]trace.Record, *atum.Collector) {
		sys := buildSystem(t, helloSrc)
		var out []trace.Record
		opts.OnWatermark = func(c *atum.Collector) {
			recs, _, err := c.ExtractSegment()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, recs...)
		}
		col, err := atum.Install(sys.M, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		tail, _, err := col.ExtractSegment()
		if err != nil {
			t.Fatal(err)
		}
		return append(out, tail...), col
	}

	big := atum.DefaultOptions()
	want, _ := runCapture(big) // whole reserved region, never fills

	small := atum.DefaultOptions()
	small.BufBytes = 4096
	small.Watermark = 1.0
	got, col := runCapture(small)

	if col.Dropped != 0 {
		t.Fatalf("spilling capture dropped %d events", col.Dropped)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spilled capture (%d records) differs from monolithic (%d records)",
			len(got), len(want))
	}
}

// TestExtractSegmentStats: per-segment drop and dilation counters are
// deltas since the previous extraction, not running totals.
func TestExtractSegmentStats(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	col, err := atum.Install(sys.M, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Short instruction slices keep the workload mid-flight across all
	// three extractions.
	if _, err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	recs, st, err := col.ExtractSegment()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 0 {
		t.Errorf("segment 0 dropped=%d, want 0", st.Dropped)
	}
	if want := uint64(len(recs)) * uint64(opts.CostPerRecord); st.DilationCycles != want {
		t.Errorf("segment 0 dilation=%d, want %d", st.DilationCycles, want)
	}

	// Pause to force drops, then resume and capture a second segment.
	col.Pause()
	if _, err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	col.Resume()
	if _, err := sys.Run(300); err != nil {
		t.Fatal(err)
	}
	recs2, st2, err := col.ExtractSegment()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Dropped == 0 {
		t.Error("segment 1 shows no drops despite the pause")
	}
	if st2.Dropped != col.Dropped {
		t.Errorf("segment 1 dropped=%d, total=%d (first segment had none)", st2.Dropped, col.Dropped)
	}
	if want := uint64(len(recs2)) * uint64(opts.CostPerRecord); st2.DilationCycles != want {
		t.Errorf("segment 1 dilation=%d, want %d (delta, not total)", st2.DilationCycles, want)
	}

	// A third, immediate extraction is an empty segment with zero deltas.
	recs3, st3, err := col.ExtractSegment()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 0 || st3 != (atum.SegmentStats{}) {
		t.Errorf("immediate re-extract = %d records, %+v; want empty", len(recs3), st3)
	}
}

// TestWatermarkValidation: out-of-range watermarks are install errors.
// NaN is the regression case: it compares false against every bound, so
// validation that tested for the *invalid* interval let it through and
// armed a watermark of zero bytes.
func TestWatermarkValidation(t *testing.T) {
	sys := buildSystem(t, helloSrc)
	for _, wm := range []float64{-0.1, 1.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		opts := atum.DefaultOptions()
		opts.Watermark = wm
		if _, err := atum.Install(sys.M, opts); err == nil {
			t.Errorf("watermark %v accepted", wm)
		}
	}
}
