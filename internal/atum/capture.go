package atum

import (
	"atum/internal/micro"
	"atum/internal/trace"
)

// Capture is the result of a tracing run: the samples extracted each time
// the reserved buffer filled, in order, plus the final partial sample.
type Capture struct {
	Samples   [][]trace.Record
	Collector *Collector
}

// All stitches the samples into one continuous trace. Because extraction
// here is instantaneous (the "dump" does not execute on the machine), the
// stitched trace has no gaps; T3 studies gap effects by *discarding*
// inter-sample records instead.
func (c *Capture) All() []trace.Record {
	n := 0
	for _, s := range c.Samples {
		n += len(s)
	}
	out := make([]trace.Record, 0, n)
	for _, s := range c.Samples {
		out = append(out, s...)
	}
	return out
}

// Run executes run on machine m with ATUM installed, extracting a sample
// each time the buffer fills, and returns the full stitched capture. The
// collector is uninstalled before returning.
func Run(m *micro.Machine, opts Options, run func() error) (*Capture, error) {
	cap := &Capture{}
	inner := opts.OnFull
	opts.OnFull = func(c *Collector) {
		recs, err := c.Extract()
		if err != nil {
			panic(err) // reserved-region parse cannot fail on collector-written data
		}
		cap.Samples = append(cap.Samples, recs)
		if inner != nil {
			inner(c)
		}
	}
	col, err := Install(m, opts)
	if err != nil {
		return nil, err
	}
	cap.Collector = col
	defer col.Uninstall()
	if err := run(); err != nil {
		return nil, err
	}
	final, err := col.Extract()
	if err != nil {
		return nil, err
	}
	if len(final) > 0 {
		cap.Samples = append(cap.Samples, final)
	}
	return cap, nil
}

// DilationResult reports the measured slowdown of a tracing technique.
type DilationResult struct {
	BaseCycles   uint64
	TracedCycles uint64
	Instrs       uint64
	Records      uint64
}

// Factor returns TracedCycles/BaseCycles.
func (d DilationResult) Factor() float64 {
	if d.BaseCycles == 0 {
		return 0
	}
	return float64(d.TracedCycles) / float64(d.BaseCycles)
}

// MeasureDilation runs an identical deterministic workload twice — once
// bare, once under ATUM — and reports the slowdown. factory must build a
// fresh machine and runner each call (the machine is deterministic, so
// the two runs execute the same instruction stream).
func MeasureDilation(factory func() (*micro.Machine, func() error, error), opts Options) (DilationResult, error) {
	var res DilationResult

	m1, run1, err := factory()
	if err != nil {
		return res, err
	}
	if err := run1(); err != nil {
		return res, err
	}
	res.BaseCycles = m1.Cycles

	m2, run2, err := factory()
	if err != nil {
		return res, err
	}
	cap, err := Run(m2, opts, run2)
	if err != nil {
		return res, err
	}
	res.TracedCycles = m2.Cycles
	res.Instrs = m2.Instrs
	res.Records = cap.Collector.Recorded
	return res, nil
}
