package atum_test

import (
	"strconv"
	"strings"
	"testing"

	"atum/internal/atum"
	"atum/internal/obs"
)

// TestCaptureMetricsMirrorStatistics: the collector's obs counters must
// agree exactly with its exported statistics fields — total records,
// drops, fills — and the per-kind counters must sum to the total.
func TestCaptureMetricsMirrorStatistics(t *testing.T) {
	reg := obs.NewRegistry()
	sys := buildSystem(t, helloSrc)
	opts := atum.DefaultOptions()
	opts.BufBytes = 4096
	opts.Metrics = reg
	opts.OnFull = func(c *atum.Collector) {
		if _, err := c.Extract(); err != nil {
			t.Fatal(err)
		}
	}
	col, err := atum.Install(sys.M, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	col.Uninstall()

	if got := reg.Counter("atum_capture_records_total").Value(); got != col.Recorded {
		t.Errorf("records metric %d, collector %d", got, col.Recorded)
	}
	if got := reg.Counter("atum_capture_dropped_total").Value(); got != col.Dropped {
		t.Errorf("dropped metric %d, collector %d", got, col.Dropped)
	}
	if got := reg.Counter("atum_capture_fills_total").Value(); got != col.Samples {
		t.Errorf("fills metric %d, collector %d", got, col.Samples)
	}
	var perKind uint64
	for _, line := range strings.Split(reg.String(), "\n") {
		if strings.HasPrefix(line, "atum_capture_records_kind_total") {
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable line %q: %v", line, err)
			}
			perKind += v
		}
	}
	if perKind != col.Recorded {
		t.Errorf("per-kind counters sum to %d, collector recorded %d", perKind, col.Recorded)
	}
}

// TestMetricsOffMeasurementPath is the dilation contract from
// EXPERIMENTS: telemetry is Go-side bookkeeping and must never charge
// simulated cycles. Two identical runs — one instrumented into a fresh
// registry, one into another — must execute the same instruction
// stream, charge exactly CostPerRecord per record, and agree cycle for
// cycle with the collector's own dilation accounting.
func TestMetricsOffMeasurementPath(t *testing.T) {
	run := func(reg *obs.Registry) (cycles, instrs, recorded, dilation uint64) {
		sys := buildSystem(t, helloSrc)
		opts := atum.DefaultOptions()
		opts.Metrics = reg
		cap, err := atum.Run(sys.M, opts, func() error {
			_, err := sys.Run(50_000_000)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.M.Cycles, sys.M.Instrs, cap.Collector.Recorded, cap.Collector.DilationCycles
	}
	c1, i1, r1, d1 := run(obs.NewRegistry())
	c2, i2, r2, d2 := run(obs.NewRegistry())
	if c1 != c2 || i1 != i2 || r1 != r2 || d1 != d2 {
		t.Fatalf("telemetry perturbed the machine: run1 (c=%d i=%d r=%d d=%d) vs run2 (c=%d i=%d r=%d d=%d)",
			c1, i1, r1, d1, c2, i2, r2, d2)
	}
	if d1 != r1*56 {
		t.Errorf("dilation %d cycles != %d records x 56: something besides trace stores charged the clock", d1, r1)
	}
}
