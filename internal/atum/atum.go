// Package atum implements the paper's contribution: Address Tracing
// Using Microcode. Install patches the machine's microcode layer so
// that, as a side effect of normal execution, every memory reference —
// instruction fetch, operand read and write, the page-table references
// made by the translation-buffer miss microcode, plus context-switch and
// exception markers — is written as a packed record into a reserved
// region of physical main memory.
//
// Key properties preserved from the original system:
//
//   - Tracing lives below the architecture. The operating system and the
//     user programs execute unmodified and cannot observe tracing except
//     as slowdown; kernel references, interrupt activity, and
//     multiprogramming are all captured.
//   - The trace buffer is physical memory, written by "microcode" stores
//     that bypass address translation, exactly like the 8200 patches.
//     The OS is configured with that region held out of its frame pool.
//   - Tracing costs microcycles. Each record charges CostPerRecord to
//     the machine's clock, so the machine measurably dilates (about 20x
//     on the original hardware); dilation here is measured, not assumed.
//   - When the buffer fills, the sample ends: recording pauses and a
//     Go-side callback — playing the role of the paper's freeze/dump/
//     resume procedure — may extract the sample and restart tracing.
package atum

import (
	"fmt"

	"atum/internal/micro"
	"atum/internal/obs"
	"atum/internal/trace"
	"atum/internal/vax"
)

// Options configures a Collector.
type Options struct {
	// CostPerRecord is the microcycles each trace record costs. The
	// default (56) corresponds to a trace-store microcode sequence of a
	// few dozen microinstructions on a machine without spare scratch
	// registers — calibrated so the measured dilation on reference-dense
	// code lands near the factor of ~20 the paper reports for the 8200
	// patches. The A1 ablation sweeps this cost.
	CostPerRecord uint32

	// BufBytes bounds the trace buffer. Zero means the machine's whole
	// reserved region. It is rounded down to a record multiple.
	BufBytes uint32

	// BufOffset places the buffer BufOffset bytes into the reserved
	// region instead of at its base. An SMP capture slices the one
	// reserved region into per-CPU buffers this way — each core's
	// collector records into its own slice, so cores never contend for
	// a write pointer. Must be a record multiple.
	BufOffset uint32

	// OnFull, if non-nil, is called when the buffer fills (the sample is
	// complete). The callback typically calls Extract and lets tracing
	// continue; if it leaves the collector paused, subsequent references
	// are counted as dropped. If nil, the collector simply pauses.
	OnFull func(*Collector)

	// Watermark, in (0, 1], arms a buffer-full early warning: when the
	// write pointer crosses Watermark×capacity, OnWatermark fires once.
	// Unlike OnFull, the collector is still recording when it fires, so
	// a spill service can drain the buffer before anything is lost — a
	// Watermark of 1.0 spills exactly at capacity, ahead of the OnFull
	// pause/drop path. Zero disables the watermark.
	Watermark float64

	// OnWatermark, if non-nil, is called when the watermark is crossed
	// (typically to ExtractSegment and stream the sample out). It is
	// disarmed after firing and re-armed by Extract/ExtractSegment, so a
	// callback that does not drain the buffer falls through to the
	// OnFull behavior at capacity.
	OnWatermark func(*Collector)

	// KindMask selects which record kinds are captured; zero means all.
	KindMask uint16

	// SampleOn/SampleOff enable time sampling: capture SampleOn
	// consecutive events, then skip SampleOff events (at negligible
	// cost — the microcode branches around the trace store), repeating.
	// Both must be nonzero to take effect. Sampling stretches a fixed
	// reserved buffer over a longer execution at reduced dilation, at
	// the price of the inter-sample gaps T3 quantifies.
	SampleOn, SampleOff uint64

	// Metrics selects the registry the collector's live telemetry goes
	// to; nil means obs.Default(). Telemetry is Go-side only — it never
	// charges simulated cycles, so dilation is identical with any
	// registry (pinned by TestMetricsOffMeasurementPath).
	Metrics *obs.Registry
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{CostPerRecord: 56} }

// Collector is an installed ATUM patch set.
type Collector struct {
	m    *micro.Machine
	opts Options

	base uint32 // physical base of the trace buffer
	size uint32 // bytes
	ptr  uint32 // next write offset

	wmBytes uint32 // watermark write-pointer threshold (0 = disabled)
	wmArmed bool

	recording bool
	installed bool

	// Time-sampling phase state.
	sampleOn  bool
	phaseLeft uint64

	removes []func()

	// Statistics.
	Recorded       uint64 // records written
	Dropped        uint64 // events lost while paused/full
	Samples        uint64 // times the buffer filled
	DilationCycles uint64 // total microcycles charged for trace stores

	// Per-segment marks: the statistics values at the last extraction,
	// so ExtractSegment can report deltas.
	segDroppedMark uint64
	segCyclesMark  uint64

	met captureMetrics
}

// captureMetrics are the collector's live counters in the obs registry:
// what the capture has recorded (total and per kind), what it has lost,
// and how often the watermark and buffer-full interrupts fired. They
// shadow the exported statistics fields so a monitoring goroutine can
// watch a capture without touching the (unsynchronised) collector.
type captureMetrics struct {
	records   *obs.Counter
	dropped   *obs.Counter
	watermark *obs.Counter
	fills     *obs.Counter
	kind      [trace.NumKinds]*obs.Counter
}

// kindMetricNames spell each record kind into its metric label once, at
// install time — the hot path only indexes the resolved counter array.
var kindMetricNames = [trace.NumKinds]string{
	trace.KindIFetch:    "ifetch",
	trace.KindDRead:     "dread",
	trace.KindDWrite:    "dwrite",
	trace.KindPTERead:   "pteread",
	trace.KindPTEWrite:  "ptewrite",
	trace.KindCtxSwitch: "ctxswitch",
	trace.KindException: "exception",
}

func newCaptureMetrics(r *obs.Registry) captureMetrics {
	if r == nil {
		r = obs.Default()
	}
	m := captureMetrics{
		records:   r.Counter("atum_capture_records_total"),
		dropped:   r.Counter("atum_capture_dropped_total"),
		watermark: r.Counter("atum_capture_watermark_fires_total"),
		fills:     r.Counter("atum_capture_fills_total"),
	}
	for k, name := range kindMetricNames {
		if name == "" {
			name = fmt.Sprintf("kind%d", k)
		}
		m.kind[k] = r.Counter(fmt.Sprintf("atum_capture_records_kind_total{kind=%q}", name))
	}
	return m
}

// Install patches the machine. The machine's reserved region must be
// large enough for at least one record.
func Install(m *micro.Machine, opts Options) (*Collector, error) {
	if opts.CostPerRecord == 0 {
		opts.CostPerRecord = 56
	}
	base := m.Mem.ReservedBase()
	size := m.Mem.ReservedSize()
	if opts.BufOffset != 0 {
		if opts.BufOffset%trace.RecordBytes != 0 {
			return nil, fmt.Errorf("atum: buffer offset %d is not a record multiple", opts.BufOffset)
		}
		if opts.BufOffset >= size {
			return nil, fmt.Errorf("atum: buffer offset %d outside the %d-byte reserved region", opts.BufOffset, size)
		}
		base += opts.BufOffset
		size -= opts.BufOffset
	}
	if opts.BufBytes != 0 && opts.BufBytes < size {
		size = opts.BufBytes
	}
	size -= size % trace.RecordBytes
	if size < trace.RecordBytes {
		return nil, fmt.Errorf("atum: reserved region too small (%d bytes)", size)
	}
	c := &Collector{m: m, opts: opts, base: base, size: size, recording: true, installed: true,
		met: newCaptureMetrics(opts.Metrics)}
	if opts.Watermark != 0 {
		// NaN compares false against every bound, so test for the valid
		// interval and reject everything else — non-finite values
		// included — rather than testing for the invalid ones.
		if !(opts.Watermark > 0 && opts.Watermark <= 1) {
			return nil, fmt.Errorf("atum: watermark %v out of (0, 1]", opts.Watermark)
		}
		// Record-align the threshold (floats only at install time; the
		// per-record hot path compares integers).
		c.wmBytes = uint32(opts.Watermark * float64(size))
		c.wmBytes -= c.wmBytes % trace.RecordBytes
		if c.wmBytes < trace.RecordBytes {
			c.wmBytes = trace.RecordBytes
		}
		c.wmArmed = true
	}
	if opts.SampleOn > 0 && opts.SampleOff > 0 {
		c.sampleOn = true
		c.phaseLeft = opts.SampleOn
	}

	hook := func(ev micro.Event) micro.Hook {
		return func(mm *micro.Machine, a micro.Access) { c.record(a) }
	}
	for ev := micro.Event(0); ev < micro.NumEvents; ev++ {
		if opts.KindMask != 0 && opts.KindMask&(1<<uint(ev)) == 0 {
			continue
		}
		c.removes = append(c.removes, m.AddHook(ev, hook(ev)))
	}
	return c, nil
}

// record is the trace-store microcode: pack the record, store it into
// reserved physical memory, bump the pointer, charge the microcycles.
func (c *Collector) record(a micro.Access) {
	if !c.recording {
		c.Dropped++
		c.met.dropped.Inc()
		return
	}
	if c.opts.SampleOn > 0 && c.opts.SampleOff > 0 {
		if !c.sampleOn {
			c.Dropped++
			c.met.dropped.Inc()
			c.phaseLeft--
			if c.phaseLeft == 0 {
				c.sampleOn = true
				c.phaseLeft = c.opts.SampleOn
			}
			return
		}
		c.phaseLeft--
		if c.phaseLeft == 0 {
			c.sampleOn = false
			c.phaseLeft = c.opts.SampleOff
		}
	}
	c.m.ChargeCycles(c.opts.CostPerRecord)
	c.DilationCycles += uint64(c.opts.CostPerRecord)
	rec := toRecord(a)
	var b [trace.RecordBytes]byte
	rec.Encode(b[:])
	for i, by := range b {
		// Direct physical store, bypassing translation — the microcode
		// writes through the memory controller like the 8200 patches.
		if err := c.m.Mem.Store8(c.base+c.ptr+uint32(i), by); err != nil {
			// The reserved region is inside RAM by construction.
			panic(fmt.Sprintf("atum: trace store failed: %v", err))
		}
	}
	c.ptr += trace.RecordBytes
	c.Recorded++
	c.met.records.Inc()
	c.met.kind[rec.Kind].Inc()
	// The watermark interrupt fires before the full check so a spill
	// service draining at Watermark = 1.0 runs ahead of the pause/drop
	// path and loses nothing.
	if c.wmArmed && c.ptr >= c.wmBytes {
		c.wmArmed = false
		c.met.watermark.Inc()
		if c.opts.OnWatermark != nil {
			c.opts.OnWatermark(c)
		}
	}
	if c.ptr >= c.size {
		c.Samples++
		c.recording = false
		c.met.fills.Inc()
		if c.opts.OnFull != nil {
			c.opts.OnFull(c)
		}
	}
}

func toRecord(a micro.Access) trace.Record {
	var k trace.Kind
	switch a.Ev {
	case micro.EvIFetch:
		k = trace.KindIFetch
	case micro.EvDRead:
		k = trace.KindDRead
	case micro.EvDWrite:
		k = trace.KindDWrite
	case micro.EvPTERead:
		k = trace.KindPTERead
	case micro.EvPTEWrite:
		k = trace.KindPTEWrite
	case micro.EvCtxSwitch:
		k = trace.KindCtxSwitch
	case micro.EvException:
		k = trace.KindException
	}
	return trace.Record{
		Kind:  k,
		Addr:  a.VA,
		Width: a.Width,
		PID:   a.PID,
		User:  a.Mode == vax.ModeUser,
		Phys:  a.Phys,
		Extra: a.Extra,
	}
}

// SegmentStats carries the capture-side counters for one extracted
// segment: what was lost and what tracing cost while it accumulated.
// They are the per-segment metadata the segmented container stores.
type SegmentStats struct {
	Dropped        uint64 // events lost since the previous extraction
	DilationCycles uint64 // trace-store microcycles charged since then
}

// Extract parses the records accumulated so far, resets the buffer
// pointer, and resumes recording. It models the paper's procedure of
// freezing the machine, dumping the reserved region, and continuing.
func (c *Collector) Extract() ([]trace.Record, error) {
	recs, _, err := c.ExtractSegment()
	return recs, err
}

// ExtractSegment is Extract plus the per-segment accounting a spill
// service stores alongside the records: drops and dilation cycles
// accumulated since the previous extraction. It also re-arms the
// watermark.
func (c *Collector) ExtractSegment() ([]trace.Record, SegmentStats, error) {
	raw, err := c.m.Mem.Bytes(c.base, c.ptr)
	if err != nil {
		return nil, SegmentStats{}, err
	}
	recs, err := trace.ParseBuffer(raw)
	if err != nil {
		return nil, SegmentStats{}, err
	}
	st := SegmentStats{
		Dropped:        c.Dropped - c.segDroppedMark,
		DilationCycles: c.DilationCycles - c.segCyclesMark,
	}
	c.segDroppedMark = c.Dropped
	c.segCyclesMark = c.DilationCycles
	c.ptr = 0
	c.recording = true
	if c.wmBytes > 0 {
		c.wmArmed = true
	}
	return recs, st, nil
}

// Pause suspends recording (references are counted as dropped).
func (c *Collector) Pause() { c.recording = false }

// Resume restarts recording into the remaining buffer space.
func (c *Collector) Resume() {
	if c.ptr < c.size {
		c.recording = true
	}
}

// Recording reports whether references are currently captured.
func (c *Collector) Recording() bool { return c.recording }

// BufferedRecords returns the number of records currently in the buffer.
func (c *Collector) BufferedRecords() uint32 { return c.ptr / trace.RecordBytes }

// Capacity returns the buffer capacity in records.
func (c *Collector) Capacity() uint32 { return c.size / trace.RecordBytes }

// Uninstall removes the patches; the machine runs at full speed again.
func (c *Collector) Uninstall() {
	if !c.installed {
		return
	}
	c.installed = false
	c.recording = false
	for _, rm := range c.removes {
		rm()
	}
	c.removes = nil
}
