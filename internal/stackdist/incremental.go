package stackdist

import (
	"sort"

	"atum/internal/trace"
)

// Incremental stack-distance analysis for the streaming pipeline:
// Analyze needs the whole block stream up front because its Fenwick
// tree is indexed by reference time, which is unbounded. Incremental
// keeps the same time-stamp formulation but compacts the tree whenever
// the time index outruns its capacity: only *live* marks (one per
// distinct block, the block's most recent reference) carry information,
// and a reference's stack distance is the count of live marks strictly
// between its block's previous mark and now — a quantity invariant
// under any order-preserving renumbering of the marks. Compaction
// renumbers the live marks 1..m, so memory stays O(distinct blocks)
// however long the stream runs, and the resulting profile is identical
// to Analyze over the concatenated stream (equivalence-tested).

// defaultIncCap is the initial Fenwick capacity; compaction grows it to
// follow the live-mark count with headroom, so the amortised cost per
// reference stays O(log n).
const defaultIncCap = 1 << 16

// Incremental accumulates a stack-distance profile from block-address
// chunks fed in stream order.
type Incremental struct {
	p      Profile
	last   map[uint64]int // block -> 1-based time of its live mark
	fw     *fenwick
	t      int // last used time index
	marked int // live marks == len(last)
}

// NewIncremental returns an empty incremental analysis.
func NewIncremental() *Incremental { return newIncremental(defaultIncCap) }

func newIncremental(capacity int) *Incremental {
	if capacity < 2 {
		capacity = 2
	}
	return &Incremental{
		last: make(map[uint64]int, 1024),
		fw:   newFenwick(capacity),
	}
}

// Add observes one block reference.
func (inc *Incremental) Add(block uint64) {
	if inc.t+1 >= len(inc.fw.tree) {
		inc.compact()
	}
	inc.t++
	t1 := inc.t
	inc.p.Total++
	if t0, seen := inc.last[block]; seen {
		depth := int(inc.fw.sum(t1-1) - inc.fw.sum(t0))
		inc.p.observe(depth + 1)
		inc.fw.add(t0, ^uint64(0)) // remove the old mark (add -1)
		inc.marked--
	} else {
		inc.p.Cold++
	}
	inc.last[block] = t1
	inc.fw.add(t1, 1)
	inc.marked++
}

// compact renumbers the live marks 1..m in time order into a fresh
// Fenwick tree sized to the live-mark count plus headroom. Distances
// depend only on how many live marks sit between two times, so an
// order-preserving renumber changes nothing observable.
func (inc *Incremental) compact() {
	blocks := make([]uint64, 0, len(inc.last))
	for b := range inc.last {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return inc.last[blocks[i]] < inc.last[blocks[j]] })
	// Headroom guarantees many references between compactions even when
	// nearly every reference is cold, keeping the amortised cost low.
	capacity := 2*len(blocks) + defaultIncCap
	fw := newFenwick(capacity)
	for i, b := range blocks {
		inc.last[b] = i + 1
		fw.add(i+1, 1)
	}
	inc.fw = fw
	inc.t = len(blocks)
}

// Profile returns the accumulated profile. The returned value is the
// analysis's own state: read it after the final Add.
func (inc *Incremental) Profile() *Profile { return &inc.p }

// Stream is an incrementally-fed stack-distance analysis over trace
// records: the streaming counterpart of FromSource, consumed by the
// capture→decode→sweep pipeline (internal/sweep).
type Stream struct {
	inc *Incremental
	bm  blockMapper
}

// NewStream returns a record-fed analysis with the given conversion
// options.
func NewStream(opts Options) *Stream {
	return &Stream{inc: NewIncremental(), bm: newBlockMapper(opts)}
}

// Feed converts one chunk of records to block references and observes
// them. The chunk is only read; it may be reused after Feed returns.
func (s *Stream) Feed(chunk []trace.Record) error {
	for _, r := range chunk {
		if b, ok := s.bm.block(r); ok {
			s.inc.Add(b)
		}
	}
	return nil
}

// Result reports the profile accumulated so far.
func (s *Stream) Result() (*Profile, error) { return s.inc.Profile(), nil }
