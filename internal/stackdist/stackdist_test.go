package stackdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atum/internal/cache"
	"atum/internal/trace"
)

func TestSimpleDistances(t *testing.T) {
	// Stream: A B A C B A — distances: A cold, B cold, A=2, C cold,
	// B=3 (C,A above it), A=3 (B,C above it).
	p := Analyze([]uint64{1, 2, 1, 3, 2, 1})
	if p.Cold != 3 {
		t.Errorf("cold = %d, want 3", p.Cold)
	}
	if p.Total != 6 {
		t.Errorf("total = %d", p.Total)
	}
	// Depth histogram: one at depth 2, two at depth 3.
	if len(p.Depths) != 3 || p.Depths[1] != 1 || p.Depths[2] != 2 {
		t.Errorf("depths = %v", p.Depths)
	}
	// Capacity 3 holds everything: only cold misses.
	if p.Misses(3) != 3 {
		t.Errorf("misses(3) = %d", p.Misses(3))
	}
	// Capacity 2: the two depth-3 references also miss.
	if p.Misses(2) != 5 {
		t.Errorf("misses(2) = %d", p.Misses(2))
	}
	if p.MaxDepth() != 3 {
		t.Errorf("max depth = %d", p.MaxDepth())
	}
}

func TestRepeatedSingleBlock(t *testing.T) {
	stream := make([]uint64, 100)
	p := Analyze(stream)
	if p.Cold != 1 || p.Depths[0] != 99 {
		t.Errorf("cold=%d depths=%v", p.Cold, p.Depths)
	}
	if p.MissRate(1) != 0.01 {
		t.Errorf("miss rate = %f", p.MissRate(1))
	}
}

func TestLoopPattern(t *testing.T) {
	// Cyclic sweep over N blocks: with capacity >= N everything hits
	// after warmup; below N, LRU misses every time.
	const N = 16
	var stream []uint64
	for i := 0; i < 10*N; i++ {
		stream = append(stream, uint64(i%N))
	}
	p := Analyze(stream)
	if got := p.Misses(N); got != N {
		t.Errorf("misses(N) = %d, want %d (cold only)", got, N)
	}
	if got := p.Misses(N - 1); got != uint64(len(stream)) {
		t.Errorf("misses(N-1) = %d, want %d (LRU thrashes a cyclic scan)", got, len(stream))
	}
}

func TestMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		stream := make([]uint64, 2000)
		for i := range stream {
			stream[i] = uint64(r.Intn(200))
		}
		p := Analyze(stream)
		prev := uint64(1 << 62)
		for c := 1; c <= 256; c *= 2 {
			m := p.Misses(c)
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAgreesWithCacheSimulator is the cross-validation: the one-pass
// profile must predict exactly the miss counts the explicit
// fully-associative LRU cache simulator produces, at every size.
func TestAgreesWithCacheSimulator(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	recs := make([]trace.Record, 30000)
	for i := range recs {
		var addr uint32
		switch r.Intn(3) {
		case 0:
			addr = uint32(r.Intn(64)) * 16 // hot set
		case 1:
			addr = 0x10000 + uint32(r.Intn(1024))*16
		default:
			addr = uint32(r.Intn(1<<20)) &^ 15
		}
		recs[i] = trace.Record{Kind: trace.KindDRead, Addr: addr, Width: 4, User: true, PID: 1}
	}
	const blockBytes = 16
	prof := FromTrace(recs, Options{BlockBytes: blockBytes, PIDTag: true})

	for _, capacity := range []int{4, 16, 64, 256, 1024} {
		cfg := cache.Config{
			Label:         "fa",
			SizeBytes:     uint32(capacity) * blockBytes,
			BlockBytes:    blockBytes,
			Assoc:         uint32(capacity), // fully associative
			Replacement:   cache.LRU,
			WriteAllocate: true,
			PIDTags:       true,
		}
		res, err := cache.RunUnified(recs, cfg, cache.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := prof.Misses(capacity), res.Stats.Misses; got != want {
			t.Errorf("capacity %d: stackdist misses %d, simulator %d", capacity, got, want)
		}
	}
}

func TestBlocksFiltering(t *testing.T) {
	recs := []trace.Record{
		{Kind: trace.KindIFetch, Addr: 0x200, Width: 4, User: true, PID: 1},
		{Kind: trace.KindDRead, Addr: 0x80000200, Width: 4, User: false, PID: 1},
		{Kind: trace.KindPTERead, Addr: 0x80010000, Width: 4, PID: 1},
		{Kind: trace.KindCtxSwitch, Extra: 2, Width: 1},
		{Kind: trace.KindDRead, Addr: 0x200, Width: 4, User: true, PID: 2},
	}
	all := Blocks(recs, Options{BlockBytes: 16, PIDTag: true, IncludePTE: true})
	if len(all) != 4 {
		t.Errorf("blocks = %d, want 4", len(all))
	}
	user := Blocks(recs, Options{BlockBytes: 16, UserOnly: true})
	if len(user) != 2 {
		t.Errorf("user blocks = %d, want 2", len(user))
	}
	// PID tagging separates the same VA across processes.
	tagged := Blocks(recs[0:1], Options{BlockBytes: 16, PIDTag: true})
	tagged2 := Blocks(recs[4:5], Options{BlockBytes: 16, PIDTag: true})
	if tagged[0] == tagged2[0] {
		t.Error("PID tag did not separate address spaces")
	}
	// System addresses are shared regardless of PID.
	sysA := Blocks([]trace.Record{{Kind: trace.KindDRead, Addr: 0x80000200, Width: 4, PID: 1}},
		Options{BlockBytes: 16, PIDTag: true})
	sysB := Blocks([]trace.Record{{Kind: trace.KindDRead, Addr: 0x80000200, Width: 4, PID: 2}},
		Options{BlockBytes: 16, PIDTag: true})
	if sysA[0] != sysB[0] {
		t.Error("system space wrongly PID-tagged")
	}
}

func TestEmpty(t *testing.T) {
	p := Analyze(nil)
	if p.MissRate(16) != 0 || p.Total != 0 {
		t.Error("empty stream not handled")
	}
}
