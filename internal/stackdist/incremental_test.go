package stackdist

import (
	"reflect"
	"testing"

	"atum/internal/trace"
)

// incBlocks builds a block stream with heavy reuse plus a cold tail, so
// both re-references (live-mark moves) and first-ever references (mark
// inserts) cross compaction boundaries.
func incBlocks(n int) []uint64 {
	blocks := make([]uint64, 0, n)
	seed := uint64(0x853C49E6748FEA9B)
	for len(blocks) < n {
		seed = seed*6364136223846793005 + 1442695040888963407
		r := seed >> 33
		switch r % 8 {
		case 0, 1, 2, 3:
			blocks = append(blocks, r%64) // hot set
		case 4, 5:
			blocks = append(blocks, 1000+r%4096) // warm set
		default:
			blocks = append(blocks, 1<<20|r%(1<<18)) // mostly cold
		}
	}
	return blocks
}

// TestIncrementalMatchesAnalyze: the streaming analysis must produce a
// profile identical to the batch Analyze over the same block stream.
// A tiny Fenwick capacity forces many compactions, so the equivalence
// covers the renumbering path, not just the append path.
func TestIncrementalMatchesAnalyze(t *testing.T) {
	blocks := incBlocks(30_000)
	want := Analyze(blocks)
	for _, capacity := range []int{2, 64, 1 << 12, defaultIncCap} {
		inc := newIncremental(capacity)
		for _, b := range blocks {
			inc.Add(b)
		}
		if got := inc.Profile(); !reflect.DeepEqual(got, want) {
			t.Errorf("capacity=%d: incremental profile differs from Analyze (total=%d/%d cold=%d/%d maxdepth=%d/%d)",
				capacity, got.Total, want.Total, got.Cold, want.Cold, got.MaxDepth(), want.MaxDepth())
		}
	}
}

// TestIncrementalChunkingInvariance: how the stream is sliced into
// chunks must not matter — only the concatenated order does.
func TestIncrementalChunkingInvariance(t *testing.T) {
	blocks := incBlocks(10_000)
	want := Analyze(blocks)
	for _, chunk := range []int{1, 7, 1024} {
		inc := newIncremental(128)
		for off := 0; off < len(blocks); off += chunk {
			end := off + chunk
			if end > len(blocks) {
				end = len(blocks)
			}
			for _, b := range blocks[off:end] {
				inc.Add(b)
			}
		}
		if !reflect.DeepEqual(inc.Profile(), want) {
			t.Errorf("chunk=%d: profile differs from Analyze", chunk)
		}
	}
}

// TestStreamMatchesFromSource: the record-fed Stream must equal the
// batch FromSource over the same records, for the option combinations
// the experiments use.
func TestStreamMatchesFromSource(t *testing.T) {
	recs := make([]trace.Record, 0, 20_000)
	seed := uint32(0xB5297A4D)
	pid := uint8(1)
	for len(recs) < cap(recs) {
		seed = seed*1664525 + 1013904223
		r := seed
		if r%128 == 0 {
			pid = uint8(1 + r%3)
			recs = append(recs, trace.Record{Kind: trace.KindCtxSwitch, PID: pid, Extra: uint16(pid)})
			continue
		}
		rec := trace.Record{PID: pid, Width: 4, User: r%4 != 0}
		switch r % 8 {
		case 0:
			rec.Kind = trace.KindPTERead
			rec.Addr = 0x8000_8000 | (r % 512 * 4)
			rec.User = false
		case 1, 2:
			rec.Kind = trace.KindIFetch
			rec.Addr = 0x0001_0000 | uint32(pid)<<12 | (r % 2048 * 4)
		case 3:
			rec.Kind = trace.KindDWrite
			rec.Addr = uint32(pid)<<16 | (r % 4096 * 4)
			rec.Phys = r%32 == 3
		default:
			rec.Kind = trace.KindDRead
			rec.Addr = uint32(pid)<<16 | (r % 4096 * 4)
		}
		recs = append(recs, rec)
	}
	for _, opts := range []Options{
		{BlockBytes: 16, PIDTag: true, IncludePTE: true},
		{BlockBytes: 64, PIDTag: false, IncludePTE: false},
		{BlockBytes: 16, PIDTag: true, UserOnly: true},
	} {
		want := FromSource(trace.NewArena(recs), opts)
		s := NewStream(opts)
		for off := 0; off < len(recs); off += 777 {
			end := off + 777
			if end > len(recs) {
				end = len(recs)
			}
			if err := s.Feed(recs[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("opts=%+v: streamed profile differs from FromSource", opts)
		}
	}
}
