package stackdist_test

import (
	"fmt"
	"testing"

	"atum/internal/cache"
	"atum/internal/stackdist"
	"atum/internal/trace"
	"atum/internal/workload"
)

// TestProfileMatchesSimulator is the property the Mattson reformulation
// rests on: for every reference stream, the one-pass stack-distance
// profile must predict exactly the miss count an explicit
// fully-associative LRU simulator observes at every capacity. It is
// checked across randomized seeded synthetic workloads — sequential,
// cyclic, random working-set, Zipf, pointer-chase and a multi-process
// interleave with context-switch markers — so the two implementations
// cross-validate each other on access patterns none was written against.
func TestProfileMatchesSimulator(t *testing.T) {
	const blockBytes = 16
	capacities := []int{4, 16, 64}

	type gen struct {
		name  string
		build func(seed int64) []trace.Record
	}
	gens := []gen{
		{"sequential", func(seed int64) []trace.Record {
			return workload.Sequential(workload.SynthConfig{Seed: seed, Records: 4000, PID: 1, Base: 0x1000, WriteFrac: 30}, 4)
		}},
		{"loop", func(seed int64) []trace.Record {
			return workload.Loop(workload.SynthConfig{Seed: seed, Records: 4000, PID: 1, Base: 0x1000, WriteFrac: 10}, 2048, 8)
		}},
		{"working-set", func(seed int64) []trace.Record {
			return workload.WorkingSet(workload.SynthConfig{Seed: seed, Records: 4000, PID: 1, Base: 0x1000, WriteFrac: 50}, 4096)
		}},
		{"zipf", func(seed int64) []trace.Record {
			return workload.Zipf(workload.SynthConfig{Seed: seed, Records: 4000, PID: 1, Base: 0x1000}, 64, 1.3)
		}},
		{"pointer-chase", func(seed int64) []trace.Record {
			return workload.PointerChase(workload.SynthConfig{Seed: seed, Records: 4000, PID: 1, Base: 0x1000}, 300)
		}},
		{"interleave", func(seed int64) []trace.Record {
			a := workload.WorkingSet(workload.SynthConfig{Seed: seed, Records: 2000, PID: 1, Base: 0x1000, WriteFrac: 20}, 2048)
			b := workload.Loop(workload.SynthConfig{Seed: seed + 100, Records: 2000, PID: 2, Base: 0x1000, WriteFrac: 20}, 1024, 4)
			c := workload.Zipf(workload.SynthConfig{Seed: seed + 200, Records: 2000, PID: 3, Base: 0x9000}, 32, 1.5)
			return workload.Interleave(97, a, b, c)
		}},
	}

	for _, g := range gens {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", g.name, seed), func(t *testing.T) {
				recs := g.build(seed)
				prof := stackdist.FromTrace(recs, stackdist.Options{
					BlockBytes: blockBytes, PIDTag: true, IncludePTE: true,
				})
				for _, capBlocks := range capacities {
					cfg := cache.Config{
						Label:       "fa",
						SizeBytes:   uint32(capBlocks) * blockBytes,
						BlockBytes:  blockBytes,
						Assoc:       uint32(capBlocks),
						Replacement: cache.LRU, WriteAllocate: true,
						PIDTags: true,
					}
					res, err := cache.RunUnified(recs, cfg, cache.RunOptions{IncludePTE: true})
					if err != nil {
						t.Fatal(err)
					}
					if prof.Misses(capBlocks) != res.Stats.Misses {
						t.Errorf("capacity %d blocks: stackdist predicts %d misses, simulator saw %d",
							capBlocks, prof.Misses(capBlocks), res.Stats.Misses)
					}
					if prof.Total != res.Stats.Accesses {
						t.Errorf("capacity %d blocks: stackdist total %d != simulator accesses %d",
							capBlocks, prof.Total, res.Stats.Accesses)
					}
				}
			})
		}
	}
}
