// Package stackdist implements Mattson stack-distance analysis: a single
// pass over a reference stream that yields the miss rate of *every*
// fully-associative LRU cache size simultaneously. Trace processing was
// the whole purpose of collecting ATUM traces, and one-pass multi-
// configuration analysis was the era's standard technique for exactly
// the kind of size sweeps the paper's figures show.
//
// The implementation uses the classic time-stamp reformulation: the
// stack distance of a reference equals the number of distinct blocks
// referenced since this block's previous reference, which a Fenwick tree
// over reference time counts in O(log n) per reference.
package stackdist

import (
	"atum/internal/trace"
)

// Profile is the stack-distance histogram of a reference stream.
type Profile struct {
	// Depths[d] counts references with stack distance d+1 (d=0 is a
	// re-reference to the most recently used block).
	Depths []uint64
	// Cold counts first-ever references (infinite distance).
	Cold uint64
	// Total is the number of references analysed.
	Total uint64
}

// fenwick is a binary indexed tree of counts over 1..n.
type fenwick struct {
	tree []uint64
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]uint64, n+1)} }

func (f *fenwick) add(i int, d uint64) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += d
	}
}

func (f *fenwick) sum(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// Analyze computes the profile of a block-address stream.
func Analyze(blocks []uint64) *Profile {
	p := &Profile{}
	// Presized proportionally to the stream: real streams reuse blocks
	// heavily, so a quarter of the references is a generous bound on the
	// distinct-block count and spares the map most of its incremental
	// rehashes (which dominated Analyze on long traces).
	size := len(blocks) / 4
	if size < 1024 {
		size = 1024
	}
	last := make(map[uint64]int, size)
	fw := newFenwick(len(blocks))
	marked := 0 // live marks in the tree == current distinct-block count

	for t, b := range blocks {
		p.Total++
		t1 := t + 1 // Fenwick is 1-based
		if t0, seen := last[b]; seen {
			// Distance = distinct blocks referenced in (t0, t) plus one
			// (this block itself sits below them on the stack).
			depth := int(fw.sum(t1-1) - fw.sum(t0))
			p.observe(depth + 1)
			fw.add(t0, ^uint64(0)) // remove the old mark (add -1)
			marked--
		} else {
			p.Cold++
		}
		last[b] = t1
		fw.add(t1, 1)
		marked++
	}
	_ = marked
	return p
}

func (p *Profile) observe(depth int) {
	for len(p.Depths) < depth {
		p.Depths = append(p.Depths, 0)
	}
	p.Depths[depth-1]++
}

// Misses returns the miss count of a fully-associative LRU cache holding
// capacity blocks: cold misses plus every reference whose stack distance
// exceeds the capacity.
func (p *Profile) Misses(capacity int) uint64 {
	m := p.Cold
	for d := capacity; d < len(p.Depths); d++ {
		m += p.Depths[d]
	}
	return m
}

// MissRate returns Misses(capacity)/Total.
func (p *Profile) MissRate(capacity int) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Misses(capacity)) / float64(p.Total)
}

// MissCurve evaluates the full miss-rate curve at the given capacities
// (in blocks).
func (p *Profile) MissCurve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = p.MissRate(c)
	}
	return out
}

// MaxDepth returns the largest observed stack distance.
func (p *Profile) MaxDepth() int { return len(p.Depths) }

// Options control trace-to-block-stream conversion.
type Options struct {
	BlockBytes uint32 // line size (power of two)
	PIDTag     bool   // separate per-process address spaces
	IncludePTE bool   // include translation-microcode references
	UserOnly   bool   // drop kernel references
}

// blockMapper is the record-to-block conversion both the batch path
// (BlocksSource) and the streaming path (Stream) share, so the two
// cannot drift.
type blockMapper struct {
	opts  Options
	shift uint
}

func newBlockMapper(opts Options) blockMapper {
	if opts.BlockBytes == 0 {
		opts.BlockBytes = 16
	}
	m := blockMapper{opts: opts}
	for opts.BlockBytes>>m.shift != 1 {
		m.shift++
	}
	return m
}

// block converts one record, reporting whether it contributes a
// reference at all.
func (m blockMapper) block(r trace.Record) (uint64, bool) {
	switch r.Kind {
	case trace.KindIFetch, trace.KindDRead, trace.KindDWrite:
	case trace.KindPTERead, trace.KindPTEWrite:
		if !m.opts.IncludePTE {
			return 0, false
		}
	default:
		return 0, false
	}
	if m.opts.UserOnly && !r.User {
		return 0, false
	}
	b := uint64(r.Addr) >> m.shift
	if m.opts.PIDTag && !r.Phys && r.Addr>>30 != 2 {
		b |= uint64(r.PID) << 40
	}
	return b, true
}

// Blocks converts a trace into the block-address stream Analyze expects.
func Blocks(recs []trace.Record, opts Options) []uint64 {
	return BlocksSource(trace.Records(recs), opts)
}

// BlocksSource is Blocks over any record source, built in one streaming
// pass.
func BlocksSource(src trace.Source, opts Options) []uint64 {
	m := newBlockMapper(opts)
	out := make([]uint64, 0, src.NumRecords())
	_ = src.EachChunk(func(chunk []trace.Record) error {
		for _, r := range chunk {
			if b, ok := m.block(r); ok {
				out = append(out, b)
			}
		}
		return nil
	})
	return out
}

// FromTrace is the convenience composition of Blocks and Analyze.
func FromTrace(recs []trace.Record, opts Options) *Profile {
	return Analyze(Blocks(recs, opts))
}

// FromSource is FromTrace over any record source.
func FromSource(src trace.Source, opts Options) *Profile {
	return Analyze(BlocksSource(src, opts))
}
