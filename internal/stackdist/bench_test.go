package stackdist

import (
	"math/rand"
	"testing"
)

func benchStream(n int) []uint64 {
	r := rand.New(rand.NewSource(3))
	out := make([]uint64, n)
	for i := range out {
		if r.Intn(4) > 0 {
			out[i] = uint64(r.Intn(256)) // hot
		} else {
			out[i] = uint64(r.Intn(1 << 16))
		}
	}
	return out
}

// BenchmarkAnalyze measures the one-pass profile build (O(n log n)).
func BenchmarkAnalyze(b *testing.B) {
	stream := benchStream(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(stream)
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
}

// BenchmarkMissCurve measures curve evaluation from a built profile.
func BenchmarkMissCurve(b *testing.B) {
	p := Analyze(benchStream(200_000))
	caps := []int{16, 64, 256, 1024, 4096}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MissCurve(caps)
	}
}
