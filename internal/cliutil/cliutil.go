// Package cliutil holds the flag plumbing the atum commands share: one
// validator for the worker-count flags (so -workers and -decode-workers
// reject nonsense identically everywhere instead of each command
// clamping its own way), one for segment sizing, and the
// -metrics-addr/-metrics-dump wiring that exposes the obs registry from
// any command.
package cliutil

import (
	"flag"
	"fmt"
	"io"

	"atum/internal/obs"
	"atum/internal/trace"
)

// Workers validates a worker-count flag value: 0 means "all available
// cores" (the documented default), positive values size the pool, and
// negative values are a usage error — before this helper they silently
// resolved to all cores, which reads like a typo being guessed at.
// name is the flag's name for the error message.
func Workers(name string, v int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("-%s %d: worker count cannot be negative (0 = all cores, 1 = serial)", name, v)
	}
	return v, nil
}

// SegmentBytes validates a segment-buffer-size flag value: 0 disables
// segmenting, anything else must hold at least one record — a smaller
// buffer would fail deep inside the collector install with a confusing
// "reserved region too small" long after flag parsing.
func SegmentBytes(name string, v uint) (uint32, error) {
	if v != 0 && v < trace.RecordBytes {
		return 0, fmt.Errorf("-%s %d: segment buffer must hold at least one %d-byte record (0 disables segmenting)",
			name, v, trace.RecordBytes)
	}
	return uint32(v), nil
}

// Metrics wires the shared observability flags: -metrics-addr serves
// the registry over HTTP for the lifetime of the command, -metrics-dump
// prints the plain-text exposition when the command finishes.
type Metrics struct {
	Addr string
	Dump bool

	reg  *obs.Registry
	stop func() error
}

// AddFlags registers -metrics-addr and -metrics-dump on fs.
func (m *Metrics) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&m.Addr, "metrics-addr", "", "serve live metrics over HTTP on this address (e.g. :9090)")
	fs.BoolVar(&m.Dump, "metrics-dump", false, "print the metrics registry on exit")
}

// Start begins serving the default registry if -metrics-addr was given,
// logging the bound address to w.
func (m *Metrics) Start(w io.Writer) error {
	m.reg = obs.Default()
	if m.Addr == "" {
		return nil
	}
	bound, stop, err := m.reg.Serve(m.Addr)
	if err != nil {
		return err
	}
	m.stop = stop
	fmt.Fprintf(w, "metrics: serving on http://%s/metrics\n", bound)
	return nil
}

// Finish prints the registry if -metrics-dump was given and stops the
// server. Call it on every exit path that should report telemetry.
func (m *Metrics) Finish(w io.Writer) {
	if m.reg == nil {
		m.reg = obs.Default()
	}
	if m.Dump {
		m.reg.WriteText(w)
	}
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}
