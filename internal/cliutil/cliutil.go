// Package cliutil holds the flag plumbing the atum commands share.
// CommonOptions is the one registration + validation surface: a command
// says which of the shared flags it takes (workers, decode-workers,
// segment-bytes, sample-sets, metrics-addr/-dump, remote) and gets
// identical help text, identical validation and the conventional exit
// codes everywhere, instead of each command clamping its own way.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atum/internal/obs"
	"atum/internal/trace"
)

// Flag selects which shared flags a command registers; commands OR
// together the ones they take.
type Flag uint

const (
	FlagWorkers       Flag = 1 << iota // -workers: simulation/section fan-out
	FlagDecodeWorkers                  // -decode-workers: segment decode fan-out
	FlagSegmentBytes                   // -segment-bytes: spill buffer sizing
	FlagSampleSets                     // -sample-sets: 1-in-K set sampling
	FlagMetrics                        // -metrics-addr / -metrics-dump
	FlagRemote                         // -remote: run against an atum-serve daemon
)

// CommonOptions carries the shared flag values. Register with AddFlags,
// then call Validate exactly once after fs.Parse; Validate checks only
// the flags that were registered, so a command never rejects input on a
// flag it does not expose.
type CommonOptions struct {
	Workers       int
	DecodeWorkers int
	SegmentBytes  uint
	SampleSets    uint
	Remote        string
	Metrics       Metrics

	registered Flag
	segBytes   uint32
}

// AddFlags registers the selected flags on fs with the shared help
// strings.
func (o *CommonOptions) AddFlags(fs *flag.FlagSet, which Flag) {
	o.registered |= which
	if which&FlagWorkers != 0 {
		fs.IntVar(&o.Workers, "workers", 0, "worker goroutines (0 = all cores, 1 = serial reference path)")
	}
	if which&FlagDecodeWorkers != 0 {
		fs.IntVar(&o.DecodeWorkers, "decode-workers", 0, "segment decode goroutines (0 = all cores, 1 = serial reference path)")
	}
	if which&FlagSegmentBytes != 0 {
		fs.UintVar(&o.SegmentBytes, "segment-bytes", 0, "stream segments of this buffer size (0 = buffer whole trace in memory)")
	}
	if which&FlagSampleSets != 0 {
		fs.UintVar(&o.SampleSets, "sample-sets", 0, "simulate only 1 in K cache sets (0 or 1 = all sets; cheap previews)")
	}
	if which&FlagMetrics != 0 {
		o.Metrics.AddFlags(fs)
	}
	if which&FlagRemote != 0 {
		fs.StringVar(&o.Remote, "remote", "", "run against an atum-serve daemon at this base URL or host:port instead of locally")
	}
}

// Validate checks every registered flag's parsed value; the first error
// is returned with the offending flag named, ready for Exit2.
func (o *CommonOptions) Validate() error {
	if o.registered&FlagWorkers != 0 {
		if _, err := Workers("workers", o.Workers); err != nil {
			return err
		}
	}
	if o.registered&FlagDecodeWorkers != 0 {
		if _, err := Workers("decode-workers", o.DecodeWorkers); err != nil {
			return err
		}
	}
	if o.registered&FlagSegmentBytes != 0 {
		sb, err := SegmentBytes("segment-bytes", o.SegmentBytes)
		if err != nil {
			return err
		}
		o.segBytes = sb
	}
	return nil
}

// SegBytes returns the validated segment-buffer size; valid only after
// Validate has succeeded.
func (o *CommonOptions) SegBytes() uint32 { return o.segBytes }

// osExit is swapped out by the cliutil tests so exit-code behavior is
// testable in-process.
var osExit = os.Exit

// Exit2 reports a flag-validation error the conventional way: the
// command name, the error, exit status 2 — distinct from runtime
// failures (status 1).
func Exit2(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	osExit(2)
}

// Workers validates a worker-count flag value: 0 means "all available
// cores" (the documented default), positive values size the pool, and
// negative values are a usage error — before this helper they silently
// resolved to all cores, which reads like a typo being guessed at.
// name is the flag's name for the error message.
func Workers(name string, v int) (int, error) {
	if v < 0 {
		return 0, fmt.Errorf("-%s %d: worker count cannot be negative (0 = all cores, 1 = serial)", name, v)
	}
	return v, nil
}

// SegmentBytes validates a segment-buffer-size flag value: 0 disables
// segmenting, anything else must hold at least one record — a smaller
// buffer would fail deep inside the collector install with a confusing
// "reserved region too small" long after flag parsing.
func SegmentBytes(name string, v uint) (uint32, error) {
	if v != 0 && v < trace.RecordBytes {
		return 0, fmt.Errorf("-%s %d: segment buffer must hold at least one %d-byte record (0 disables segmenting)",
			name, v, trace.RecordBytes)
	}
	return uint32(v), nil
}

// Metrics wires the shared observability flags: -metrics-addr serves
// the registry over HTTP for the lifetime of the command, -metrics-dump
// prints the plain-text exposition when the command finishes.
type Metrics struct {
	Addr string
	Dump bool

	reg  *obs.Registry
	stop func() error
}

// AddFlags registers -metrics-addr and -metrics-dump on fs.
func (m *Metrics) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&m.Addr, "metrics-addr", "", "serve live metrics over HTTP on this address (e.g. :9090)")
	fs.BoolVar(&m.Dump, "metrics-dump", false, "print the metrics registry on exit")
}

// Start begins serving the default registry if -metrics-addr was given,
// logging the bound address to w.
func (m *Metrics) Start(w io.Writer) error {
	m.reg = obs.Default()
	if m.Addr == "" {
		return nil
	}
	bound, stop, err := m.reg.Serve(m.Addr)
	if err != nil {
		return err
	}
	m.stop = stop
	fmt.Fprintf(w, "metrics: serving on http://%s/metrics\n", bound)
	return nil
}

// Finish prints the registry if -metrics-dump was given and stops the
// server. Call it on every exit path that should report telemetry.
func (m *Metrics) Finish(w io.Writer) {
	if m.reg == nil {
		m.reg = obs.Default()
	}
	if m.Dump {
		m.reg.WriteText(w)
	}
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}
