package cliutil

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"

	"atum/internal/obs"
	"atum/internal/trace"
)

// TestCommonOptionsRegistration pins which flags each mask registers: a
// command asking for a subset must get exactly that subset, so no
// command grows (or loses) a shared flag by accident.
func TestCommonOptionsRegistration(t *testing.T) {
	all := []string{"workers", "decode-workers", "segment-bytes", "sample-sets", "metrics-addr", "metrics-dump", "remote"}
	cases := []struct {
		name string
		mask Flag
		want []string
	}{
		{"none", 0, nil},
		{"workers-only", FlagWorkers, []string{"workers"}},
		{"capture", FlagSegmentBytes | FlagMetrics, []string{"segment-bytes", "metrics-addr", "metrics-dump"}},
		{"stats", FlagWorkers | FlagDecodeWorkers | FlagRemote, []string{"workers", "decode-workers", "remote"}},
		{"cachesim", FlagWorkers | FlagDecodeWorkers | FlagSampleSets | FlagMetrics | FlagRemote,
			[]string{"workers", "decode-workers", "sample-sets", "metrics-addr", "metrics-dump", "remote"}},
		{"everything", FlagWorkers | FlagDecodeWorkers | FlagSegmentBytes | FlagSampleSets | FlagMetrics | FlagRemote, all},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet(c.name, flag.ContinueOnError)
			var o CommonOptions
			o.AddFlags(fs, c.mask)
			got := map[string]bool{}
			fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
			if len(got) != len(c.want) {
				t.Errorf("registered %d flags, want %d (%v)", len(got), len(c.want), got)
			}
			for _, name := range c.want {
				if !got[name] {
					t.Errorf("flag -%s not registered", name)
				}
			}
			for _, name := range all {
				wanted := false
				for _, w := range c.want {
					if w == name {
						wanted = true
					}
				}
				if got[name] && !wanted {
					t.Errorf("flag -%s registered but not requested", name)
				}
			}
		})
	}
}

// TestCommonOptionsValidate is the one validation table for every
// command: good values pass, bad values fail with the flag named, and
// flags that were not registered are never validated.
func TestCommonOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mask    Flag
		args    []string
		wantErr string // substring; "" = valid
		segOut  uint32
	}{
		{"defaults", FlagWorkers | FlagDecodeWorkers | FlagSegmentBytes, nil, "", 0},
		{"workers-ok", FlagWorkers, []string{"-workers", "8"}, "", 0},
		{"workers-negative", FlagWorkers, []string{"-workers", "-1"}, "-workers -1", 0},
		{"decode-workers-negative", FlagDecodeWorkers, []string{"-decode-workers", "-3"}, "-decode-workers -3", 0},
		{"segment-too-small", FlagSegmentBytes, []string{"-segment-bytes", "5"}, "-segment-bytes 5", 0},
		{"segment-ok", FlagSegmentBytes, []string{"-segment-bytes", "65536"}, "", 65536},
		{"segment-zero-disables", FlagSegmentBytes, []string{"-segment-bytes", "0"}, "", 0},
		{"unregistered-not-validated", FlagSampleSets, nil, "", 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fs := flag.NewFlagSet(c.name, flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			var o CommonOptions
			o.AddFlags(fs, c.mask)
			if err := fs.Parse(c.args); err != nil {
				t.Fatal(err)
			}
			err := o.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if o.SegBytes() != c.segOut {
					t.Errorf("SegBytes() = %d, want %d", o.SegBytes(), c.segOut)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Validate() = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestExit2 pins the usage exit code: flag-validation failures exit 2
// (usage), never 1 (runtime failure).
func TestExit2(t *testing.T) {
	orig := osExit
	defer func() { osExit = orig }()
	code := -1
	osExit = func(c int) { code = c }
	Exit2("testcmd", errors.New("boom"))
	if code != 2 {
		t.Fatalf("Exit2 exited with %d, want 2", code)
	}
}

func TestWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   int
		out  int
		fail bool
	}{
		{0, 0, false},
		{1, 1, false},
		{8, 8, false},
		{-1, 0, true},
		{-100, 0, true},
	} {
		got, err := Workers("workers", tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("Workers(%d): error expected", tc.in)
			} else if !strings.Contains(err.Error(), "-workers") {
				t.Errorf("Workers(%d): error %q does not name the flag", tc.in, err)
			}
			continue
		}
		if err != nil || got != tc.out {
			t.Errorf("Workers(%d) = %d, %v; want %d", tc.in, got, err, tc.out)
		}
	}
}

func TestSegmentBytes(t *testing.T) {
	if _, err := SegmentBytes("segment-bytes", trace.RecordBytes-1); err == nil {
		t.Error("sub-record segment size accepted")
	}
	if got, err := SegmentBytes("segment-bytes", 0); err != nil || got != 0 {
		t.Errorf("0 must stay the disabled sentinel: %d, %v", got, err)
	}
	if got, err := SegmentBytes("segment-bytes", trace.RecordBytes); err != nil || got != trace.RecordBytes {
		t.Errorf("one-record segment rejected: %d, %v", got, err)
	}
}

func TestMetricsFlagsAndLifecycle(t *testing.T) {
	var m Metrics
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m.AddFlags(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0", "-metrics-dump"}); err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	if err := m.Start(&log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "/metrics") {
		t.Errorf("Start did not announce the endpoint: %q", log.String())
	}
	obs.Default().Counter("cliutil_test_total").Inc()
	var dump strings.Builder
	m.Finish(&dump)
	if !strings.Contains(dump.String(), "cliutil_test_total") {
		t.Errorf("-metrics-dump output missing registry content: %q", dump.String())
	}
	// Finish with no server and no dump is a no-op.
	(&Metrics{}).Finish(io.Discard)
}
