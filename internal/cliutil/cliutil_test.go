package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"

	"atum/internal/obs"
	"atum/internal/trace"
)

func TestWorkers(t *testing.T) {
	for _, tc := range []struct {
		in   int
		out  int
		fail bool
	}{
		{0, 0, false},
		{1, 1, false},
		{8, 8, false},
		{-1, 0, true},
		{-100, 0, true},
	} {
		got, err := Workers("workers", tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("Workers(%d): error expected", tc.in)
			} else if !strings.Contains(err.Error(), "-workers") {
				t.Errorf("Workers(%d): error %q does not name the flag", tc.in, err)
			}
			continue
		}
		if err != nil || got != tc.out {
			t.Errorf("Workers(%d) = %d, %v; want %d", tc.in, got, err, tc.out)
		}
	}
}

func TestSegmentBytes(t *testing.T) {
	if _, err := SegmentBytes("segment-bytes", trace.RecordBytes-1); err == nil {
		t.Error("sub-record segment size accepted")
	}
	if got, err := SegmentBytes("segment-bytes", 0); err != nil || got != 0 {
		t.Errorf("0 must stay the disabled sentinel: %d, %v", got, err)
	}
	if got, err := SegmentBytes("segment-bytes", trace.RecordBytes); err != nil || got != trace.RecordBytes {
		t.Errorf("one-record segment rejected: %d, %v", got, err)
	}
}

func TestMetricsFlagsAndLifecycle(t *testing.T) {
	var m Metrics
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	m.AddFlags(fs)
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0", "-metrics-dump"}); err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	if err := m.Start(&log); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "/metrics") {
		t.Errorf("Start did not announce the endpoint: %q", log.String())
	}
	obs.Default().Counter("cliutil_test_total").Inc()
	var dump strings.Builder
	m.Finish(&dump)
	if !strings.Contains(dump.String(), "cliutil_test_total") {
		t.Errorf("-metrics-dump output missing registry content: %q", dump.String())
	}
	// Finish with no server and no dump is a no-op.
	(&Metrics{}).Finish(io.Discard)
}
