package serve

import (
	"container/list"
	"sync"

	"atum/internal/obs"
	"atum/internal/par"
	"atum/internal/trace"
)

// Arena cache telemetry, on the global registry: the cache is shared
// across tenants (decoded segments are immutable, so sharing leaks no
// data — keys carry the tenant name, and a tenant can only ask for its
// own traces), and its effectiveness is a property of the daemon, not
// of any one tenant.
var (
	mArenaHits  = obs.Default().Counter("atum_serve_arena_cache_hits_total")
	mArenaMiss  = obs.Default().Counter("atum_serve_arena_cache_misses_total")
	mArenaEvict = obs.Default().Counter("atum_serve_arena_cache_evictions_total")
	mArenaBytes = obs.Default().Gauge("atum_serve_arena_cache_bytes")
)

// arenaKey identifies one decoded unit: a single segment of a stored
// trace, or the whole record block of a monolithic capture (seg == -1).
// The generation distinguishes re-uploads under the same name, so a
// stale decode can never be served for new bytes. The payload encoding
// is part of the key: a decoded slice cached from a compressed segment
// must never satisfy a lookup that believes the segment is raw (or
// vice versa) — the generation usually separates them already, but the
// key makes the separation structural.
type arenaKey struct {
	tenant string
	trace  string
	gen    uint64
	seg    int
	enc    uint8
}

// arenaCache is a byte-budgeted LRU of decoded record slices. Analyses
// over stored traces decode each segment at most once while it stays
// resident; repeated sweeps over the same trace — the daemon's hot path
// — skip decode entirely.
type arenaCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // front = most recent; values are *arenaEntry
	byKey  map[arenaKey]*list.Element
}

type arenaEntry struct {
	key   arenaKey
	recs  []trace.Record
	bytes int64
}

func newArenaCache(budgetBytes int64) *arenaCache {
	return &arenaCache{budget: budgetBytes, lru: list.New(), byKey: map[arenaKey]*list.Element{}}
}

// get returns the cached slice (callers must treat it as immutable) or
// nil on miss.
func (c *arenaCache) get(k arenaKey) []trace.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.byKey[k]; el != nil {
		c.lru.MoveToFront(el)
		mArenaHits.Inc()
		return el.Value.(*arenaEntry).recs
	}
	mArenaMiss.Inc()
	return nil
}

// put inserts a decoded slice and evicts from the cold end until the
// budget holds again. A slice larger than the whole budget is not
// cached at all (it would only evict everything to be evicted next).
func (c *arenaCache) put(k arenaKey, recs []trace.Record) {
	sz := int64(len(recs)) * trace.RecordBytes
	if sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[k]; ok {
		return // racing decoders; first one wins
	}
	for c.used+sz > c.budget {
		el := c.lru.Back()
		if el == nil {
			break
		}
		ent := el.Value.(*arenaEntry)
		c.lru.Remove(el)
		delete(c.byKey, ent.key)
		c.used -= ent.bytes
		mArenaEvict.Inc()
	}
	ent := &arenaEntry{key: k, recs: recs, bytes: sz}
	c.byKey[k] = c.lru.PushFront(ent)
	c.used += sz
	mArenaBytes.Set(float64(c.used))
}

// segments assembles the decoded chunks of every segment of f — cache
// hits as-is, misses decoded via f.Segment (in parallel across workers)
// and inserted — in segment order. For a monolithic file the whole
// record block is one chunk under seg == -1.
func (c *arenaCache) segments(k arenaKey, f *trace.File, workers int) ([][]trace.Record, error) {
	if !f.Segmented() {
		mk := k
		mk.seg = -1
		if recs := c.get(mk); recs != nil {
			return [][]trace.Record{recs}, nil
		}
		recs, err := f.Records(workers)
		if err != nil {
			return nil, err
		}
		c.put(mk, recs)
		return [][]trace.Record{recs}, nil
	}
	segs := f.Segments()
	n := len(segs)
	chunks := make([][]trace.Record, n)
	var miss []int
	for i := 0; i < n; i++ {
		sk := k
		sk.seg = i
		sk.enc = segs[i].Encoding
		if recs := c.get(sk); recs != nil {
			chunks[i] = recs
			continue
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return chunks, nil
	}
	decoded, err := par.Map(workers, len(miss), func(j int) ([]trace.Record, error) {
		return f.Segment(miss[j])
	})
	if err != nil {
		return nil, err
	}
	for j, recs := range decoded {
		sk := k
		sk.seg = miss[j]
		sk.enc = segs[miss[j]].Encoding
		c.put(sk, recs)
		chunks[miss[j]] = recs
	}
	return chunks, nil
}
