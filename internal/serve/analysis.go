package serve

import (
	"bytes"
	"fmt"

	"atum/internal/cache"
	"atum/internal/serve/api"
	"atum/internal/stackdist"
	"atum/internal/sweep"
	"atum/internal/tlbsim"
	"atum/internal/trace"
)

// runAnalysis executes one analysis request against a stored trace.
// The trace must be complete: a live capture's spool can end mid-byte
// of anything, and the point of a stored analysis is a reproducible
// answer over fixed bytes. Results are exactly what the local tools
// produce over the same trace — the sweeps run the very same functions
// over the very same decoded records, so a -remote run marshals
// byte-identical reports.
func (s *Server) runAnalysis(t *tenant, req api.AnalysisRequest) (*api.AnalysisResponse, error) {
	st, err := t.trace(req.Trace)
	if err != nil {
		return nil, err
	}
	buf, complete := st.snapshot()
	if !complete {
		return nil, fmt.Errorf("trace %q is still capturing; analyses need a complete trace", req.Trace)
	}
	f, err := trace.OpenReaderAt(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		return nil, fmt.Errorf("trace %q: %w", req.Trace, err)
	}
	defer f.Close()

	chunks, err := s.arenas.segments(arenaKey{tenant: t.name, trace: st.name, gen: st.gen}, f, req.DecodeWorkers)
	if err != nil {
		return nil, fmt.Errorf("trace %q: %w", req.Trace, err)
	}
	if req.CPU != nil {
		if !f.SeqStamped() {
			return nil, fmt.Errorf("trace %q is not sequence-stamped; no per-CPU attribution to filter on", req.Trace)
		}
		var sel [][]trace.Record
		for i, info := range f.Segments() {
			if int(info.CPU) == *req.CPU {
				sel = append(sel, chunks[i])
			}
		}
		chunks = sel
	}
	var src trace.Source = trace.NewArenaFromChunks(chunks)
	if req.UserOnly {
		src = src.(*trace.Arena).FilterUser()
	}

	resp := &api.AnalysisResponse{Trace: req.Trace, Kind: req.Kind}
	switch req.Kind {
	case api.KindCaches:
		if len(req.Caches) == 0 {
			return nil, fmt.Errorf("kind %q needs at least one cache config", req.Kind)
		}
		if req.Stream {
			resp.Caches, resp.DroppedRecords, err = streamSweep(src, req, req.Caches, func(cfg cache.Config) (namedSim[cache.Result], error) {
				sim, err := cache.NewUnifiedSim(cfg, req.Run)
				return namedSim[cache.Result]{cfg.Name(), sim}, err
			})
		} else {
			resp.Caches, err = sweep.Caches(src, req.Caches, req.Run, req.Workers)
		}
	case api.KindHierarchies:
		if len(req.Hierarchies) == 0 {
			return nil, fmt.Errorf("kind %q needs at least one hierarchy config", req.Kind)
		}
		if req.Stream {
			resp.Hierarchies, resp.DroppedRecords, err = streamSweep(src, req, req.Hierarchies, func(cfg cache.HierarchyConfig) (namedSim[cache.HierarchyResult], error) {
				sim, err := cache.NewHierarchySim(cfg, req.Run)
				return namedSim[cache.HierarchyResult]{cfg.Name(), sim}, err
			})
		} else {
			resp.Hierarchies, err = sweep.Hierarchies(src, req.Hierarchies, req.Run, req.Workers)
		}
	case api.KindTBs:
		if len(req.TBs) == 0 {
			return nil, fmt.Errorf("kind %q needs at least one TB config", req.Kind)
		}
		if req.Stream {
			resp.TBs, resp.DroppedRecords, err = streamSweep(src, req, req.TBs, func(cfg tlbsim.Config) (namedSim[tlbsim.Stats], error) {
				sim, err := tlbsim.NewSim(cfg)
				return namedSim[tlbsim.Stats]{cfg.Name(), sim}, err
			})
		} else {
			resp.TBs, err = sweep.TBs(src, req.TBs, req.Workers)
		}
	case api.KindStackdist:
		opts := stackdist.Options{}
		if req.Stackdist != nil {
			opts = *req.Stackdist
		}
		resp.Stackdist = stackdist.FromSource(src, opts)
	case api.KindSummary:
		sum := trace.SummarizeSource(src)
		resp.Summary = &sum
	default:
		return nil, fmt.Errorf("unknown analysis kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// namedSim pairs a simulator with its config label for pipeline
// registration.
type namedSim[R any] struct {
	name string
	sim  sweep.Sim[R]
}

// streamSweep is the push-mode sweep with the request's backpressure
// policy applied: Block replays every record (results identical to the
// arena sweep); Drop sheds counted records when the bounded queue backs
// up — the same degrade-never-stall stance the capture side takes.
func streamSweep[R any, C any](src trace.Source, req api.AnalysisRequest, cfgs []C, mk func(C) (namedSim[R], error)) ([]R, uint64, error) {
	policy, err := sweep.ParseBackpressure(req.Backpressure)
	if err != nil {
		return nil, 0, err
	}
	p := sweep.NewPipeline(req.Workers)
	collect := make([]func() (R, error), len(cfgs))
	for i, cfg := range cfgs {
		ns, err := mk(cfg)
		if err != nil {
			return nil, 0, err
		}
		collect[i] = sweep.AddSim[R](p, ns.name, ns.sim)
	}
	p.SetBackpressure(policy, req.QueueChunks)
	p.FeedSource(src)
	if err := p.Drain(); err != nil {
		return nil, 0, err
	}
	out := make([]R, len(collect))
	for i, c := range collect {
		r, err := c()
		if err != nil {
			return nil, 0, err
		}
		out[i] = r
	}
	return out, p.DroppedRecords(), nil
}
