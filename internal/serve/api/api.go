// Package api defines the versioned JSON request/response types of the
// atum-serve daemon — the one public surface the HTTP handlers, the Go
// client (serve.Client) and the CLIs' -remote modes all share, so there
// is exactly one dialect of "create a capture session", "describe a
// stored trace" or "run this sweep" in the repository.
//
// Versioning policy (DESIGN §11): every route is mounted under the
// Version prefix. Within a version the types only grow — new optional
// fields with omitempty, never renamed or re-typed fields — so old
// clients keep working against new daemons; a breaking change mints
// /v2 alongside /v1. The simulator configuration and result structs
// (cache.Config, cache.Result, tlbsim.Config, …) are embedded directly
// rather than mirrored: their exported fields are part of the v1 wire
// contract and are frozen by the same rule, which is also what makes
// remote analyses byte-identical to local ones — both sides marshal the
// very same structs.
package api

import (
	"atum/internal/cache"
	"atum/internal/findings"
	"atum/internal/stackdist"
	"atum/internal/tlbsim"
	"atum/internal/trace"
)

// Version is the wire-protocol version and the URL prefix every route
// lives under (e.g. /v1/tenants/alpha/sessions).
const Version = "v1"

// Analysis kinds accepted by AnalysisRequest.Kind.
const (
	KindCaches      = "caches"
	KindHierarchies = "hierarchies"
	KindTBs         = "tbs"
	KindStackdist   = "stackdist"
	KindSummary     = "summary"
)

// CreateSessionRequest starts a named capture session: the daemon boots
// a fresh simulated machine with the workload mix, installs the ATUM
// patches with a kernel spill service behind them, and streams segments
// into a stored trace (readable — and live-streamable — while the
// capture runs).
type CreateSessionRequest struct {
	// Name identifies the session within the tenant; it is also the
	// stored trace's name unless StoreAs overrides it.
	Name    string `json:"name"`
	StoreAs string `json:"store_as,omitempty"`

	// Workloads is the mix to boot; empty means the standard four-way
	// mix the paper's multiprogramming tables use.
	Workloads []string `json:"workloads,omitempty"`

	// SegmentBytes bounds the reserved capture buffer per segment; zero
	// picks the server's default. Watermark in (0, 1] overrides the
	// spill threshold (zero = spill exactly at capacity).
	SegmentBytes uint32  `json:"segment_bytes,omitempty"`
	Watermark    float64 `json:"watermark,omitempty"`

	// Codec is "raw" or "delta" (default).
	Codec string `json:"codec,omitempty"`

	// Compress stores each spilled segment flate-compressed (the
	// container v2 per-segment encoding). Decode and analysis results
	// are byte-identical to an uncompressed capture; only the stored
	// bytes shrink.
	Compress bool `json:"compress,omitempty"`

	// CostPerRecord overrides the per-record microcycle cost (default
	// 56, the paper's measured dilation). Budget bounds the run in
	// instructions; zero picks the server's default.
	CostPerRecord uint32 `json:"cost_per_record,omitempty"`
	Budget        uint64 `json:"budget,omitempty"`
}

// Session states reported by SessionInfo.State.
const (
	SessionRunning = "running"
	SessionDone    = "done"   // workload halted, stream complete
	SessionFailed  = "failed" // boot or run error; Error says why
)

// SessionInfo describes one capture session. The accounting triple is
// the spill service's invariant surfaced per session: once the session
// has left the running state, Recorded == Spilled + Lost always holds
// (and Lost is zero unless the sink stalled).
type SessionInfo struct {
	Name      string   `json:"name"`
	Tenant    string   `json:"tenant"`
	State     string   `json:"state"`
	Workloads []string `json:"workloads"`
	Trace     string   `json:"trace"` // stored trace receiving segments

	Recorded uint64 `json:"recorded"`
	Spilled  uint64 `json:"spilled"`
	Lost     uint64 `json:"lost"`
	Dropped  uint64 `json:"dropped"`
	Segments uint32 `json:"segments"`

	Error string `json:"error,omitempty"`
}

// TraceInfo describes one stored trace from its header-only segment
// index — no payload is decoded to serve it.
type TraceInfo struct {
	Name      string `json:"name"`
	Tenant    string `json:"tenant"`
	Meta      string `json:"meta"`
	Bytes     uint64 `json:"bytes"`
	Records   uint64 `json:"records"` // per stream headers
	Segmented bool   `json:"segmented"`
	// Complete is false while a capture session is still appending.
	Complete bool                `json:"complete"`
	Segments []trace.SegmentInfo `json:"segments,omitempty"`
}

// AnalysisRequest names a stored trace and the sweep to run over it.
// Exactly the config slice matching Kind is consulted. The execution
// knobs (Stream, Workers, DecodeWorkers, Backpressure) never change
// results — except Backpressure "drop", which may shed records under
// load and reports what it shed.
type AnalysisRequest struct {
	Trace string `json:"trace"`
	Kind  string `json:"kind"`

	Caches      []cache.Config          `json:"caches,omitempty"`
	Hierarchies []cache.HierarchyConfig `json:"hierarchies,omitempty"`
	TBs         []tlbsim.Config         `json:"tbs,omitempty"`
	Stackdist   *stackdist.Options      `json:"stackdist,omitempty"`

	// Run carries the shared cache run options (PTE refs, set
	// sampling); UserOnly restricts every kind to the user-mode subset.
	Run      cache.RunOptions `json:"run,omitempty"`
	UserOnly bool             `json:"user_only,omitempty"`

	// CPU, when set, replays only the segments the given processor
	// captured — meaningful for sequence-stamped (container v3) SMP
	// traces, whose segments carry per-CPU attribution. Nil replays
	// the whole machine-wide interleave. Requests naming a CPU against
	// an unstamped trace fail rather than silently analysing nothing.
	CPU *int `json:"cpu,omitempty"`

	Stream        bool   `json:"stream,omitempty"`
	Workers       int    `json:"workers,omitempty"`
	DecodeWorkers int    `json:"decode_workers,omitempty"`
	Backpressure  string `json:"backpressure,omitempty"` // "block" (default) or "drop"
	QueueChunks   int    `json:"queue_chunks,omitempty"`
}

// AnalysisResponse carries the result matching the request's Kind; the
// other fields stay empty. DroppedRecords is nonzero only under the
// "drop" backpressure policy.
type AnalysisResponse struct {
	Trace string `json:"trace"`
	Kind  string `json:"kind"`

	Caches      []cache.Result          `json:"caches,omitempty"`
	Hierarchies []cache.HierarchyResult `json:"hierarchies,omitempty"`
	TBs         []tlbsim.Stats          `json:"tbs,omitempty"`
	Stackdist   *stackdist.Profile      `json:"stackdist,omitempty"`
	Summary     *trace.Summary          `json:"summary,omitempty"`

	DroppedRecords uint64 `json:"dropped_records,omitempty"`
}

// LintResponse is the stored-trace lint endpoint's body: the shared
// findings schema, identical to atum-vet -json and trace.LintFindings.
type LintResponse struct {
	Trace    string             `json:"trace"`
	Findings []findings.Finding `json:"findings"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}
