package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"atum/internal/serve/api"
)

// Client is the Go face of the daemon's API: every method is one
// endpoint, every payload one of the api package's types — the same
// structs the server marshals, which is what makes remote results
// byte-identical to local ones.
type Client struct {
	base   string // http://host:port, no trailing slash
	tenant string
	hc     *http.Client
}

// NewClient targets one tenant on one daemon. addr is host:port or a
// full http:// URL.
func NewClient(addr, tenant string) *Client {
	base := strings.TrimRight(addr, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	return &Client{base: base, tenant: tenant, hc: http.DefaultClient}
}

// url joins the tenant-scoped path parts under the version prefix.
func (c *Client) url(parts ...string) string {
	u := c.base + "/" + api.Version + "/tenants/" + c.tenant
	for _, p := range parts {
		u += "/" + p
	}
	return u
}

// do runs one request, decoding a 2xx JSON body into out (skipped when
// out is nil) and a non-2xx body into the API's error envelope.
func (c *Client) do(method, url string, body io.Reader, ctype string, out any) error {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e api.Error
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, url, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON marshals in and decodes the response into out.
func (c *Client) postJSON(url string, in, out any) error {
	b, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do("POST", url, bytes.NewReader(b), "application/json", out)
}

// CreateSession starts a capture session and returns its initial state.
func (c *Client) CreateSession(req api.CreateSessionRequest) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.postJSON(c.url("sessions"), req, &info)
	return info, err
}

// Sessions lists the tenant's sessions.
func (c *Client) Sessions() ([]api.SessionInfo, error) {
	var infos []api.SessionInfo
	err := c.do("GET", c.url("sessions"), nil, "", &infos)
	return infos, err
}

// Session fetches one session's current state.
func (c *Client) Session(name string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do("GET", c.url("sessions", name), nil, "", &info)
	return info, err
}

// CloseSession stops a capture and returns its final accounting
// (Recorded == Spilled + Lost by the time this returns).
func (c *Client) CloseSession(name string) (api.SessionInfo, error) {
	var info api.SessionInfo
	err := c.do("DELETE", c.url("sessions", name), nil, "", &info)
	return info, err
}

// StreamSegments opens the live byte stream of a session's trace; the
// reader ends when the capture closes. While open, the caller is part
// of the capture's backpressure accounting: drain promptly or the
// capture degrades to counted drops.
func (c *Client) StreamSegments(name string) (io.ReadCloser, error) {
	resp, err := c.hc.Get(c.url("sessions", name, "segments"))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		var e api.Error
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return nil, fmt.Errorf("stream %s: %s", name, e.Error)
		}
		return nil, fmt.Errorf("stream %s: HTTP %d", name, resp.StatusCode)
	}
	return resp.Body, nil
}

// UploadTrace stores complete trace bytes under name.
func (c *Client) UploadTrace(name string, data []byte) (api.TraceInfo, error) {
	var info api.TraceInfo
	err := c.do("PUT", c.url("traces", name), bytes.NewReader(data), "application/octet-stream", &info)
	return info, err
}

// Traces lists the tenant's stored traces.
func (c *Client) Traces() ([]api.TraceInfo, error) {
	var infos []api.TraceInfo
	err := c.do("GET", c.url("traces"), nil, "", &infos)
	return infos, err
}

// Trace fetches one stored trace's header-only description.
func (c *Client) Trace(name string) (api.TraceInfo, error) {
	var info api.TraceInfo
	err := c.do("GET", c.url("traces", name), nil, "", &info)
	return info, err
}

// TraceData downloads the stored bytes.
func (c *Client) TraceData(name string) ([]byte, error) {
	resp, err := c.hc.Get(c.url("traces", name, "data"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("trace data %s: HTTP %d", name, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Analyze runs one sweep/profile/summary on the daemon.
func (c *Client) Analyze(req api.AnalysisRequest) (api.AnalysisResponse, error) {
	var resp api.AnalysisResponse
	err := c.postJSON(c.url("analyses"), req, &resp)
	return resp, err
}

// Lint runs the stored-trace lint checks on the daemon.
func (c *Client) Lint(traceName string) (api.LintResponse, error) {
	var resp api.LintResponse
	err := c.do("GET", c.url("traces", traceName, "lint"), nil, "", &resp)
	return resp, err
}

// MetricsText fetches the tenant's isolated metrics page.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.hc.Get(c.url("metrics"))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
