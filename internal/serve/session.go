package serve

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/serve/api"
	"atum/internal/trace"
	"atum/internal/workload"
)

// session is one live (or finished) capture: a booted machine running a
// workload mix with the ATUM patches installed, spilling segments into
// a stored trace. The machine runs on the session's own goroutine in
// bounded slices; between slices — the only moments the machine is
// quiescent — the goroutine snapshots the collector's plain counters
// under the mutex, which is what HTTP handlers read. Handlers never
// touch the collector directly while the machine may be running.
type session struct {
	name      string
	tenant    string
	workloads []string
	traceName string

	svc *kernel.SpillService
	st  *storedTrace

	mu       sync.Mutex
	state    string
	recorded uint64
	dropped  uint64
	errMsg   string

	stopReq atomic.Bool
	done    chan struct{}
}

// startSession validates the request, boots the mix, installs the spill
// service with the tenant's stored trace as its sink and launches the
// run goroutine. It returns once the capture is actually running.
func (t *tenant) startSession(req api.CreateSessionRequest, opts Options) (*session, error) {
	if err := validName(req.Name); err != nil {
		return nil, fmt.Errorf("session name: %w", err)
	}
	traceName := req.StoreAs
	if traceName == "" {
		traceName = req.Name
	}
	if err := validName(traceName); err != nil {
		return nil, fmt.Errorf("store_as: %w", err)
	}
	codec := trace.CodecDelta
	switch req.Codec {
	case "", "delta":
	case "raw":
		codec = trace.CodecRaw
	default:
		return nil, fmt.Errorf("unknown codec %q (want raw or delta)", req.Codec)
	}
	enc := trace.SegEncRaw
	if req.Compress {
		enc = trace.SegEncFlate
	}
	if req.Watermark < 0 || req.Watermark > 1 {
		return nil, fmt.Errorf("watermark %v out of (0, 1]", req.Watermark)
	}
	mix := req.Workloads
	if len(mix) == 0 {
		mix = workload.StandardMix
	}

	t.mu.Lock()
	if prev := t.sessions[req.Name]; prev != nil {
		if prev.info().State == api.SessionRunning {
			t.mu.Unlock()
			return nil, fmt.Errorf("session %q already running", req.Name)
		}
	}
	t.mu.Unlock()

	sys, err := workload.BootMix(kernel.DefaultConfig(), mix...)
	if err != nil {
		return nil, fmt.Errorf("boot %v: %w", mix, err)
	}

	st := t.createTrace(traceName, opts.SpoolBytes)
	aopts := atum.DefaultOptions()
	if req.CostPerRecord != 0 {
		aopts.CostPerRecord = req.CostPerRecord
	}
	segBytes := req.SegmentBytes
	if segBytes == 0 {
		segBytes = opts.SegmentBytes
	}
	svc, err := kernel.StartSpill(sys, st, kernel.SpillConfig{
		Options:      aopts,
		SegmentBytes: segBytes,
		Watermark:    req.Watermark,
		Codec:        codec,
		Encoding:     enc,
		Meta:         fmt.Sprintf("atum-serve tenant=%s session=%s mix=%s", t.name, req.Name, strings.Join(mix, ",")),
		Metrics:      t.reg,
	})
	if err != nil {
		st.finish()
		return nil, err
	}

	s := &session{
		name:      req.Name,
		tenant:    t.name,
		workloads: mix,
		traceName: traceName,
		svc:       svc,
		st:        st,
		state:     api.SessionRunning,
		done:      make(chan struct{}),
	}
	t.mu.Lock()
	t.sessions[req.Name] = s
	t.mu.Unlock()

	budget := req.Budget
	if budget == 0 {
		budget = opts.Budget
	}
	go s.run(sys, budget)
	return s, nil
}

// runSlice bounds how many instructions execute between collector
// snapshots (and stop-flag checks): small enough that DELETE responds
// promptly and SessionInfo stays fresh, large enough that slicing costs
// nothing against the capture itself.
const runSlice = 200_000

// run drives the machine to halt, budget exhaustion or a requested
// stop, then closes the spill service — which flushes the final partial
// segment and establishes Recorded == Spilled + Lost — and completes
// the stored trace.
func (s *session) run(sys *kernel.System, budget uint64) {
	defer close(s.done)
	var runErr error
	var ran uint64
loop:
	for runErr == nil && !s.stopReq.Load() {
		step := uint64(runSlice)
		if budget > 0 {
			if ran >= budget {
				break
			}
			if left := budget - ran; left < step {
				step = left
			}
		}
		reason, err := sys.Run(step)
		ran += step
		s.snapshot()
		if err != nil {
			runErr = err
			break
		}
		switch reason {
		case micro.StopHalt, micro.StopRequested:
			break loop
		}
	}
	closeErr := s.svc.Close()
	s.st.finish()
	s.snapshot()
	s.mu.Lock()
	switch {
	case runErr != nil:
		s.state = api.SessionFailed
		s.errMsg = runErr.Error()
	default:
		s.state = api.SessionDone
		if closeErr != nil {
			// Capture degraded (e.g. slow live consumers tripped the spool
			// budget) but the stream is complete and the accounting holds;
			// surface the diagnosis without failing the session.
			s.errMsg = closeErr.Error()
		}
	}
	s.mu.Unlock()
}

// snapshot copies the collector's plain counters while the machine is
// quiescent. Only the run goroutine calls it.
func (s *session) snapshot() {
	col := s.svc.Collector()
	s.mu.Lock()
	s.recorded = col.Recorded
	s.dropped = col.Dropped
	s.mu.Unlock()
}

// requestStop asks the run goroutine to wind down at the next slice
// boundary and waits until the capture is fully closed.
func (s *session) requestStop() {
	s.stopReq.Store(true)
	<-s.done
}

// info reports the session's current state. The spill counters are the
// service's atomics (safe live); recorded/dropped are the last
// quiescent-point snapshot.
func (s *session) info() api.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return api.SessionInfo{
		Name:      s.name,
		Tenant:    s.tenant,
		State:     s.state,
		Workloads: s.workloads,
		Trace:     s.traceName,
		Recorded:  s.recorded,
		Spilled:   s.svc.SpilledRecords(),
		Lost:      s.svc.LostRecords(),
		Dropped:   s.dropped,
		Segments:  s.svc.Segments(),
		Error:     s.errMsg,
	}
}

// validName accepts the path-segment-safe names sessions, traces and
// tenants share: nonempty, letters/digits plus -_. only.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("empty name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("name %q: character %q not allowed", name, r)
		}
	}
	return nil
}
