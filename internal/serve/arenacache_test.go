package serve

import (
	"testing"

	"atum/internal/trace"
)

func slice(n int) []trace.Record { return make([]trace.Record, n) }

// TestArenaCacheLRU exercises the cache against its internal state:
// budget adherence, cold-end eviction order, recency promotion on hit,
// oversize rejection, and generation-key separation.
func TestArenaCacheLRU(t *testing.T) {
	key := func(name string, gen uint64, seg int) arenaKey {
		return arenaKey{tenant: "t", trace: name, gen: gen, seg: seg}
	}
	// Budget for exactly three 100-record slices.
	c := newArenaCache(3 * 100 * trace.RecordBytes)

	for i := 0; i < 3; i++ {
		c.put(key("a", 1, i), slice(100))
	}
	if c.used != 3*100*trace.RecordBytes {
		t.Fatalf("used = %d after three inserts", c.used)
	}

	// Touch segment 0 so segment 1 becomes the cold end, then insert a
	// fourth slice: 1 must be evicted, 0 and 2 must survive.
	if c.get(key("a", 1, 0)) == nil {
		t.Fatal("miss on resident entry")
	}
	c.put(key("a", 1, 3), slice(100))
	if c.get(key("a", 1, 1)) != nil {
		t.Fatal("cold entry survived eviction")
	}
	for _, seg := range []int{0, 2, 3} {
		if c.get(key("a", 1, seg)) == nil {
			t.Fatalf("warm entry %d was evicted", seg)
		}
	}
	if c.used > c.budget {
		t.Fatalf("used %d exceeds budget %d", c.used, c.budget)
	}

	// A slice larger than the whole budget is rejected without touching
	// residents.
	c.put(key("huge", 1, 0), slice(400))
	if c.get(key("huge", 1, 0)) != nil {
		t.Fatal("oversize slice was cached")
	}
	if c.get(key("a", 1, 0)) == nil {
		t.Fatal("oversize insert disturbed residents")
	}

	// A re-upload bumps the generation; the old decode must not answer
	// for the new bytes.
	if c.get(key("a", 2, 0)) != nil {
		t.Fatal("stale generation served")
	}

	// Racing decoders: a second put under a live key is a no-op and the
	// original slice keeps being served.
	first := slice(50)
	first[0].Addr = 0xdead
	c.put(key("b", 1, 0), first)
	c.put(key("b", 1, 0), slice(50))
	if got := c.get(key("b", 1, 0)); got[0].Addr != 0xdead {
		t.Fatal("second racing put replaced the first decode")
	}
}

// TestArenaCacheEncodingKey: the payload encoding is part of the cache
// key — a slice decoded from a raw segment must never satisfy a lookup
// for the same segment re-stored compressed (or vice versa).
func TestArenaCacheEncodingKey(t *testing.T) {
	c := newArenaCache(1 << 20)
	raw := arenaKey{tenant: "t", trace: "x", gen: 1, seg: 0, enc: trace.SegEncRaw}
	c.put(raw, slice(10))
	comp := raw
	comp.enc = trace.SegEncFlate
	if c.get(comp) != nil {
		t.Fatal("flate-keyed lookup served a raw-keyed entry")
	}
	if c.get(raw) == nil {
		t.Fatal("raw-keyed entry lost")
	}
	c.put(comp, slice(20))
	if got := c.get(comp); len(got) != 20 {
		t.Fatalf("flate-keyed entry has %d records, want 20", len(got))
	}
	if got := c.get(raw); len(got) != 10 {
		t.Fatalf("raw-keyed entry has %d records, want 10", len(got))
	}
}
