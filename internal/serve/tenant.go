package serve

import (
	"fmt"
	"io"
	"sync"

	"atum/internal/obs"
)

// tenant is one isolation domain: its own metrics registry (capture and
// spill telemetry for its sessions lands here, never in another
// tenant's), its own session table and its own trace namespace. Nothing
// a tenant stores or measures is reachable through another tenant's
// routes — the isolation the lifecycle tests pin.
type tenant struct {
	name string
	reg  *obs.Registry

	mu       sync.Mutex
	sessions map[string]*session
	traces   map[string]*storedTrace
	gen      uint64 // bumped per stored-trace (re)creation; arena cache key part
}

func newTenant(name string) *tenant {
	return &tenant{
		name:     name,
		reg:      obs.NewRegistry(),
		sessions: map[string]*session{},
		traces:   map[string]*storedTrace{},
	}
}

// trace returns the named stored trace or an error.
func (t *tenant) trace(name string) (*storedTrace, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.traces[name]
	if st == nil {
		return nil, fmt.Errorf("tenant %s has no trace %q", t.name, name)
	}
	return st, nil
}

// createTrace installs a new stored trace under name, replacing any
// previous trace of that name (the generation bump keeps stale arena
// cache entries from ever being served for the new bytes).
func (t *tenant) createTrace(name string, spoolBytes int) *storedTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	st := newStoredTrace(name, t.gen, spoolBytes)
	t.traces[name] = st
	return st
}

// traceNames returns the tenant's trace names, unsorted.
func (t *tenant) traceNames() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.traces))
	for n := range t.traces {
		out = append(out, n)
	}
	return out
}

// storedTrace is one trace's bytes: an append-only in-memory spool a
// capture session writes into (as the spill service's sink) and any
// number of clients read out of, concurrently, while it grows.
//
// Backpressure: a live segment streamer registers its read offset;
// when every streamer has fallen more than spoolBytes behind the head,
// Write fails — which the spill service treats exactly like a stalled
// disk: the collector degrades to counted-drop mode and the stream
// stays valid up to the last complete segment. This is the PR 3
// watermark/degrade protocol reused at the request level; slow clients
// cost accounted records, never unbounded memory and never a corrupt
// stream.
type storedTrace struct {
	name string
	gen  uint64

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte
	complete bool
	err      error // sink-side failure, if any

	spoolBytes int
	readers    map[*traceReader]struct{}
}

func newStoredTrace(name string, gen uint64, spoolBytes int) *storedTrace {
	st := &storedTrace{name: name, gen: gen, spoolBytes: spoolBytes, readers: map[*traceReader]struct{}{}}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// errSlowConsumer is the sink error handed to the spill service when
// live streamers cannot keep up; it surfaces in SessionInfo.Error.
type errSlowConsumer struct{ lag int }

func (e errSlowConsumer) Error() string {
	return fmt.Sprintf("serve: live segment consumer %d bytes behind spool budget; capture degraded to drop mode", e.lag)
}

// Write implements io.Writer for the spill service's sink.
func (st *storedTrace) Write(p []byte) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return 0, st.err
	}
	if lag := st.maxLagLocked(); st.spoolBytes > 0 && lag > st.spoolBytes {
		st.err = errSlowConsumer{lag: lag}
		st.cond.Broadcast()
		return 0, st.err
	}
	st.buf = append(st.buf, p...)
	st.cond.Broadcast()
	return len(p), nil
}

// maxLagLocked returns how far the slowest live reader trails the head;
// 0 when no readers are attached (an unattended capture spools freely —
// storage, not backpressure).
func (st *storedTrace) maxLagLocked() int {
	lag := 0
	for r := range st.readers {
		if l := len(st.buf) - r.off; l > lag {
			lag = l
		}
	}
	return lag
}

// finish marks the trace complete (no more bytes will arrive) and wakes
// every reader.
func (st *storedTrace) finish() {
	st.mu.Lock()
	st.complete = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// snapshot returns the current bytes (aliasing the spool: callers must
// not mutate), whether the trace is complete, and the generation.
func (st *storedTrace) snapshot() ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.buf[:len(st.buf):len(st.buf)], st.complete
}

// setBytes installs a complete uploaded trace in one shot.
func (st *storedTrace) setBytes(b []byte) {
	st.mu.Lock()
	st.buf = b
	st.complete = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// traceReader streams the spool from the beginning, blocking for more
// bytes until the trace completes; it participates in the lag
// accounting while attached.
type traceReader struct {
	st  *storedTrace
	off int
}

// newReader attaches a live reader.
func (st *storedTrace) newReader() *traceReader {
	r := &traceReader{st: st}
	st.mu.Lock()
	st.readers[r] = struct{}{}
	st.mu.Unlock()
	return r
}

// Read blocks until bytes are available past the reader's offset or the
// trace completes (io.EOF) — the contract http.ServeContent-style
// copies expect. A sink failure does not fail the read: the spool up to
// the last complete segment is still a valid stream.
func (r *traceReader) Read(p []byte) (int, error) {
	st := r.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for r.off >= len(st.buf) && !st.complete {
		st.cond.Wait()
	}
	if r.off >= len(st.buf) {
		return 0, io.EOF
	}
	n := copy(p, st.buf[r.off:])
	r.off += n
	return n, nil
}

// Close detaches the reader from the lag accounting.
func (r *traceReader) Close() error {
	st := r.st
	st.mu.Lock()
	delete(st.readers, r)
	st.mu.Unlock()
	return nil
}
