// Package serve is the atum-serve daemon: one long-running process
// holding many tenants' captures and traces behind the versioned JSON
// API in internal/serve/api. Each tenant gets isolated capture
// sessions (its own kernel spill services and obs registry) and an
// isolated trace namespace; all tenants share one byte-budgeted cache
// of decoded segment arenas, so repeated sweeps over hot traces skip
// decode entirely. The same request/response structs drive the HTTP
// handlers here, the Go Client below, and the CLIs' -remote modes —
// one public surface, no parallel dialects.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"atum/internal/findings"
	"atum/internal/obs"
	"atum/internal/serve/api"
	"atum/internal/trace"
)

// Request telemetry, global: per-tenant capture/spill metrics live on
// each tenant's registry; the daemon's own traffic is daemon-wide.
var (
	mReqs    = obs.Default().Counter("atum_serve_requests_total")
	mReqErrs = obs.Default().Counter("atum_serve_request_errors_total")
)

// Options tunes the daemon. The zero value picks sane defaults.
type Options struct {
	// ArenaCacheBytes budgets the shared decoded-segment cache
	// (default 256 MB).
	ArenaCacheBytes int64

	// SpoolBytes is how far the slowest live segment streamer may trail
	// a capture before the capture degrades to counted drops (default
	// 8 MB). Captures with no attached streamer spool without limit.
	SpoolBytes int

	// SegmentBytes is the default per-segment capture buffer when a
	// session doesn't choose one (default 64 KB).
	SegmentBytes uint32

	// Budget is the default instruction budget per capture session when
	// the request doesn't set one (default 50M instructions).
	Budget uint64
}

func (o Options) withDefaults() Options {
	if o.ArenaCacheBytes == 0 {
		o.ArenaCacheBytes = 256 << 20
	}
	if o.SpoolBytes == 0 {
		o.SpoolBytes = 8 << 20
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 10
	}
	if o.Budget == 0 {
		o.Budget = 50_000_000
	}
	return o
}

// Server implements http.Handler for the whole API surface.
type Server struct {
	opts   Options
	mux    *http.ServeMux
	arenas *arenaCache

	mu      sync.Mutex
	tenants map[string]*tenant
}

// NewServer builds a daemon with no tenants yet; tenants materialise on
// first use of their name.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		mux:     http.NewServeMux(),
		arenas:  newArenaCache(opts.withDefaults().ArenaCacheBytes),
		tenants: map[string]*tenant{},
	}
	s.routes()
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mReqs.Inc()
	s.mux.ServeHTTP(w, r)
}

// routes mounts every endpoint under the api.Version prefix, plus the
// global metrics pages. Per-tenant metrics are a route like any other —
// the same mux serves a tenant's isolated registry and the daemon-wide
// one.
func (s *Server) routes() {
	p := "/" + api.Version + "/tenants/{tenant}"
	s.mux.HandleFunc("POST "+p+"/sessions", s.tenantHandler(s.handleCreateSession))
	s.mux.HandleFunc("GET "+p+"/sessions", s.tenantHandler(s.handleListSessions))
	s.mux.HandleFunc("GET "+p+"/sessions/{name}", s.tenantHandler(s.handleGetSession))
	s.mux.HandleFunc("DELETE "+p+"/sessions/{name}", s.tenantHandler(s.handleCloseSession))
	s.mux.HandleFunc("GET "+p+"/sessions/{name}/segments", s.tenantHandler(s.handleStreamSegments))
	s.mux.HandleFunc("PUT "+p+"/traces/{name}", s.tenantHandler(s.handlePutTrace))
	s.mux.HandleFunc("GET "+p+"/traces", s.tenantHandler(s.handleListTraces))
	s.mux.HandleFunc("GET "+p+"/traces/{name}", s.tenantHandler(s.handleGetTrace))
	s.mux.HandleFunc("GET "+p+"/traces/{name}/data", s.tenantHandler(s.handleTraceData))
	s.mux.HandleFunc("GET "+p+"/traces/{name}/lint", s.tenantHandler(s.handleLintTrace))
	s.mux.HandleFunc("POST "+p+"/analyses", s.tenantHandler(s.handleAnalyze))
	s.mux.HandleFunc("GET "+p+"/metrics", s.tenantHandler(func(w http.ResponseWriter, r *http.Request, t *tenant) {
		t.reg.Handler().ServeHTTP(w, r)
	}))
	s.mux.Handle("GET /metrics", obs.Default().Handler())
	s.mux.Handle("GET /debug/vars", obs.Default().Handler())
}

// tenantHandler resolves (creating on first use) the tenant named in
// the path.
func (s *Server) tenantHandler(fn func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if err := validName(name); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("tenant: %w", err))
			return
		}
		s.mu.Lock()
		t := s.tenants[name]
		if t == nil {
			t = newTenant(name)
			s.tenants[name] = t
		}
		s.mu.Unlock()
		fn(w, r, t)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	mReqErrs.Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(api.Error{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req api.CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	sess, err := t.startSession(req, s.opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, sess.info())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request, t *tenant) {
	t.mu.Lock()
	infos := make([]api.SessionInfo, 0, len(t.sessions))
	for _, sess := range t.sessions {
		infos = append(infos, sess.info())
	}
	t.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, infos)
}

func (s *Server) session(t *tenant, name string) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sess := t.sessions[name]
	if sess == nil {
		return nil, fmt.Errorf("tenant %s has no session %q", t.name, name)
	}
	return sess, nil
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request, t *tenant) {
	sess, err := s.session(t, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, sess.info())
}

// handleCloseSession requests a stop and waits for the capture to drain
// fully, so the info it returns carries the final accounting:
// Recorded == Spilled + Lost, always.
func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request, t *tenant) {
	sess, err := s.session(t, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	sess.requestStop()
	writeJSON(w, sess.info())
}

// handleStreamSegments streams the session's backing trace bytes from
// the start, live: bytes flush as segments spill, and the stream ends
// when the capture closes. While attached, the client participates in
// the spool-lag accounting — draining too slowly degrades the capture
// to counted drops rather than stalling it or buffering without bound.
func (s *Server) handleStreamSegments(w http.ResponseWriter, r *http.Request, t *tenant) {
	sess, err := s.session(t, r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	rd := sess.st.newReader()
	defer rd.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 64<<10)
	for {
		n, err := rd.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away; Close detaches us from lag accounting
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handlePutTrace stores an uploaded complete trace (either container
// format) under the given name, validating the header before accepting.
func (s *Server) handlePutTrace(w http.ResponseWriter, r *http.Request, t *tenant) {
	name := r.PathValue("name")
	if err := validName(name); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	f, err := trace.OpenReaderAt(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("not a valid trace: %w", err))
		return
	}
	f.Close()
	st := t.createTrace(name, s.opts.SpoolBytes)
	st.setBytes(body)
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, s.traceInfo(t, st))
}

// traceInfo builds the header-only description of a stored trace: the
// segment index comes from walking 40-byte headers, no payload decode.
// A live capture's spool can end mid-anything, so open errors on an
// incomplete trace degrade to a bytes-only answer instead of failing.
func (s *Server) traceInfo(t *tenant, st *storedTrace) api.TraceInfo {
	buf, complete := st.snapshot()
	info := api.TraceInfo{Name: st.name, Tenant: t.name, Bytes: uint64(len(buf)), Complete: complete}
	f, err := trace.OpenReaderAt(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		return info
	}
	defer f.Close()
	info.Meta = f.Meta()
	info.Records = f.NumRecords()
	info.Segmented = f.Segmented()
	info.Segments = f.Segments()
	return info
}

func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request, t *tenant) {
	names := t.traceNames()
	sort.Strings(names)
	infos := make([]api.TraceInfo, 0, len(names))
	for _, n := range names {
		st, err := t.trace(n)
		if err != nil {
			continue // raced a concurrent replace
		}
		infos = append(infos, s.traceInfo(t, st))
	}
	writeJSON(w, infos)
}

func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request, t *tenant) {
	st, err := t.trace(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, s.traceInfo(t, st))
}

// handleTraceData returns the trace bytes as stored right now (the
// whole file for a complete trace; the spool so far for a live one).
func (s *Server) handleTraceData(w http.ResponseWriter, r *http.Request, t *tenant) {
	st, err := t.trace(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	buf, _ := st.snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(buf)
}

// handleLintTrace decodes the stored trace and runs the shared lint
// checks over it — the same findings schema atum-vet -json emits.
func (s *Server) handleLintTrace(w http.ResponseWriter, r *http.Request, t *tenant) {
	st, err := t.trace(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	buf, complete := st.snapshot()
	if !complete {
		httpError(w, http.StatusConflict, fmt.Errorf("trace %q is still capturing", st.name))
		return
	}
	f, err := trace.OpenReaderAt(bytes.NewReader(buf), int64(len(buf)))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer f.Close()
	chunks, err := s.arenas.segments(arenaKey{tenant: t.name, trace: st.name, gen: st.gen}, f, 0)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	recs := trace.NewArenaFromChunks(chunks).Flatten()
	fs := trace.LintFindings(recs)
	// Container-framing checks (declared-vs-inflated length on
	// compressed segments) ride along: they audit the bytes, not the
	// records, so the record lint alone would miss them.
	fs = append(fs, f.LintContainer()...)
	if fs == nil {
		fs = []findings.Finding{}
	}
	writeJSON(w, api.LintResponse{Trace: st.name, Findings: fs})
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, t *tenant) {
	var req api.AnalysisRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := s.runAnalysis(t, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, resp)
}
