package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"atum/internal/cache"
	"atum/internal/obs"
	"atum/internal/serve/api"
	"atum/internal/sweep"
	"atum/internal/trace"
)

// makeRecords builds a plausible synthetic trace: mostly user ifetches
// and data refs over a few pages, with context switches between two
// PIDs so summaries and PID-tagged sims have something to chew on.
func makeRecords(n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	pid := uint8(1)
	for i := 0; len(recs) < n; i++ {
		if i%257 == 0 {
			pid = 1 + pid%2
			recs = append(recs, trace.Record{Kind: trace.KindCtxSwitch, PID: pid, Extra: uint16(pid)})
			continue
		}
		r := trace.Record{Kind: trace.KindIFetch, Addr: uint32(0x1000 + (i%512)*4), Width: 4, User: true, PID: pid}
		switch i % 5 {
		case 1:
			r.Kind, r.Addr = trace.KindDRead, uint32(0x40000+(i%128)*4)
		case 3:
			r.Kind, r.Addr = trace.KindDWrite, uint32(0x48000+(i%64)*4)
		case 4:
			r.Kind, r.User = trace.KindPTERead, false
		}
		recs = append(recs, r)
	}
	return recs
}

// makeSegmentedTrace encodes recs as a segmented stream image with
// segsize records per segment.
func makeSegmentedTrace(t *testing.T, recs []trace.Record, segsize int) []byte {
	t.Helper()
	return makeSegmentedTraceEnc(t, recs, segsize, trace.SegEncRaw)
}

// makeSegmentedTraceEnc is makeSegmentedTrace with a chosen per-segment
// payload encoding.
func makeSegmentedTraceEnc(t *testing.T, recs []trace.Record, segsize int, enc uint8) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := trace.NewSegmentWriter(&buf, trace.CodecDelta, "synthetic test trace")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetEncoding(enc); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(recs); lo += segsize {
		hi := lo + segsize
		if hi > len(recs) {
			hi = len(recs)
		}
		if _, err := sw.WriteSegment(recs[lo:hi], 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// waitDone polls a session until it leaves the running state.
func waitDone(t *testing.T, c *Client, name string) api.SessionInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := c.Session(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != api.SessionRunning {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s still running after 60s: %+v", name, info)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionLifecycle drives the full loop on one tenant: create a
// capture with a live segment streamer attached, let it run out its
// budget, and check the accounting identity, the streamed bytes, the
// stored trace and an analysis over it all agree.
func TestSessionLifecycle(t *testing.T) {
	ts, _ := testServer(t, Options{Budget: 400_000, SegmentBytes: 16 << 10})
	c := NewClient(ts.URL, "alpha")

	info, err := c.CreateSession(api.CreateSessionRequest{Name: "cap", Workloads: []string{"sieve"}})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != api.SessionRunning && info.State != api.SessionDone {
		t.Fatalf("fresh session in state %q", info.State)
	}
	if info.Trace != "cap" || info.Tenant != "alpha" {
		t.Fatalf("session misdescribed: %+v", info)
	}

	// Live streamer: read the segment stream to EOF while the capture
	// runs; the bytes must equal the stored trace afterwards.
	streamed := make(chan []byte, 1)
	go func() {
		rd, err := c.StreamSegments("cap")
		if err != nil {
			streamed <- nil
			return
		}
		b, _ := io.ReadAll(rd)
		rd.Close()
		streamed <- b
	}()

	final := waitDone(t, c, "cap")
	if final.State != api.SessionDone {
		t.Fatalf("session ended in state %q (error %q)", final.State, final.Error)
	}
	if final.Recorded != final.Spilled+final.Lost {
		t.Fatalf("accounting broken: recorded %d != spilled %d + lost %d",
			final.Recorded, final.Spilled, final.Lost)
	}
	if final.Spilled == 0 || final.Segments == 0 {
		t.Fatalf("capture produced nothing: %+v", final)
	}

	live := <-streamed
	stored, err := c.TraceData("cap")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, stored) {
		t.Fatalf("live stream (%d bytes) != stored trace (%d bytes)", len(live), len(stored))
	}

	// The stored trace decodes to exactly the spilled records.
	f, err := trace.OpenReaderAt(bytes.NewReader(stored), int64(len(stored)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumRecords() != final.Spilled {
		t.Fatalf("stored trace holds %d records, session spilled %d", f.NumRecords(), final.Spilled)
	}

	ti, err := c.Trace("cap")
	if err != nil {
		t.Fatal(err)
	}
	if !ti.Complete || !ti.Segmented || ti.Records != final.Spilled || uint32(len(ti.Segments)) != final.Segments {
		t.Fatalf("trace info disagrees with session: %+v vs %+v", ti, final)
	}

	resp, err := c.Analyze(api.AnalysisRequest{Trace: "cap", Kind: api.KindSummary})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(resp.Summary.Total) != final.Spilled {
		t.Fatalf("summary total %d != spilled %d", resp.Summary.Total, final.Spilled)
	}

	// Closing an already-finished session is a no-op returning the same
	// final accounting.
	again, err := c.CloseSession("cap")
	if err != nil {
		t.Fatal(err)
	}
	if again.Recorded != final.Recorded || again.Spilled != final.Spilled {
		t.Fatalf("re-close changed the accounting: %+v vs %+v", again, final)
	}
}

// TestCloseDuringCapture stops a long-budget session mid-flight; the
// stream must still footer cleanly and the identity must hold.
func TestCloseDuringCapture(t *testing.T) {
	ts, _ := testServer(t, Options{Budget: 2_000_000_000, SegmentBytes: 16 << 10})
	c := NewClient(ts.URL, "alpha")
	if _, err := c.CreateSession(api.CreateSessionRequest{Name: "longcap", Workloads: []string{"sieve", "list"}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let it capture something
	final, err := c.CloseSession("longcap")
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.SessionDone {
		t.Fatalf("stopped session in state %q (error %q)", final.State, final.Error)
	}
	if final.Recorded != final.Spilled+final.Lost {
		t.Fatalf("accounting broken after mid-flight close: %+v", final)
	}
	stored, err := c.TraceData("longcap")
	if err != nil {
		t.Fatal(err)
	}
	f, err := trace.OpenReaderAt(bytes.NewReader(stored), int64(len(stored)))
	if err != nil {
		t.Fatalf("mid-flight close left an invalid stream: %v", err)
	}
	f.Close()
}

// TestTenantIsolation pins that names and metrics do not leak across
// tenants: beta cannot see alpha's traces or sessions, and alpha's
// capture telemetry appears only on alpha's metrics page.
func TestTenantIsolation(t *testing.T) {
	ts, _ := testServer(t, Options{Budget: 300_000, SegmentBytes: 16 << 10})
	alpha := NewClient(ts.URL, "alpha")
	beta := NewClient(ts.URL, "beta")

	data := makeSegmentedTrace(t, makeRecords(5000), 1000)
	if _, err := alpha.UploadTrace("mine", data); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.Trace("mine"); err == nil {
		t.Fatal("beta can read alpha's trace")
	}
	if _, err := beta.TraceData("mine"); err == nil {
		t.Fatal("beta can read alpha's trace bytes")
	}

	if _, err := alpha.CreateSession(api.CreateSessionRequest{Name: "iso", Workloads: []string{"sieve"}}); err != nil {
		t.Fatal(err)
	}
	waitDone(t, alpha, "iso")
	if _, err := beta.Session("iso"); err == nil {
		t.Fatal("beta can read alpha's session")
	}

	am, err := alpha.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := beta.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(am, "atum_spill_records_total") {
		t.Fatalf("alpha's capture metrics missing from alpha's page:\n%s", am)
	}
	if strings.Contains(bm, "atum_spill_records_total") {
		t.Fatalf("alpha's capture metrics leaked into beta's page:\n%s", bm)
	}

	// The global page serves daemon-wide counters on the same mux.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "atum_serve_requests_total") {
		t.Fatal("global metrics page missing daemon counters")
	}
}

// TestAnalysisRemoteVsLocal uploads a synthetic trace and checks the
// daemon's sweep results — plain, streamed, and their JSON wire forms —
// are identical to running the same sweep functions locally over the
// same bytes.
func TestAnalysisRemoteVsLocal(t *testing.T) {
	ts, _ := testServer(t, Options{})
	c := NewClient(ts.URL, "alpha")

	recs := makeRecords(30_000)
	data := makeSegmentedTrace(t, recs, 7000)
	if _, err := c.UploadTrace("syn", data); err != nil {
		t.Fatal(err)
	}

	cfgs := []cache.Config{
		{Label: "a", SizeBytes: 1 << 10, BlockBytes: 16, Assoc: 1, Replacement: cache.LRU, WriteAllocate: true, PIDTags: true},
		{Label: "b", SizeBytes: 4 << 10, BlockBytes: 16, Assoc: 2, Replacement: cache.LRU, WriteAllocate: true, PIDTags: true},
	}
	run := cache.RunOptions{IncludePTE: true}

	f, err := trace.OpenReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	arena, err := f.Arena(0)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.Caches(arena, cfgs, run, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, stream := range []bool{false, true} {
		resp, err := c.Analyze(api.AnalysisRequest{Trace: "syn", Kind: api.KindCaches, Caches: cfgs, Run: run, Stream: stream})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Caches, local) {
			t.Fatalf("stream=%v: remote results differ from local:\n%+v\nvs\n%+v", stream, resp.Caches, local)
		}
		lj, _ := json.Marshal(local)
		rj, _ := json.Marshal(resp.Caches)
		if !bytes.Equal(lj, rj) {
			t.Fatalf("stream=%v: wire forms differ", stream)
		}
	}

	// The drop policy must still produce a response (possibly shedding);
	// with no contention on a small trace it typically sheds nothing.
	resp, err := c.Analyze(api.AnalysisRequest{Trace: "syn", Kind: api.KindCaches, Caches: cfgs[:1], Run: run,
		Stream: true, Backpressure: "drop", QueueChunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Caches[0].Stats.Accesses+resp.DroppedRecords == 0 {
		t.Fatal("drop-policy analysis neither fed nor dropped anything")
	}

	// UserOnly filtering matches the local FilterUser path.
	userLocal, err := sweep.Caches(arena.FilterUser(), cfgs[:1], run, 0)
	if err != nil {
		t.Fatal(err)
	}
	uresp, err := c.Analyze(api.AnalysisRequest{Trace: "syn", Kind: api.KindCaches, Caches: cfgs[:1], Run: run, UserOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uresp.Caches, userLocal) {
		t.Fatalf("user-only remote differs from local FilterUser sweep")
	}
}

// TestLintEndpoint checks the lint route returns the shared findings
// schema over the daemon's decoded arena.
func TestLintEndpoint(t *testing.T) {
	ts, _ := testServer(t, Options{})
	c := NewClient(ts.URL, "alpha")
	data := makeSegmentedTrace(t, makeRecords(4000), 1000)
	if _, err := c.UploadTrace("ok", data); err != nil {
		t.Fatal(err)
	}
	lr, err := c.Lint("ok")
	if err != nil {
		t.Fatal(err)
	}
	if lr.Trace != "ok" || lr.Findings == nil {
		t.Fatalf("lint response malformed: %+v", lr)
	}
	for _, f := range lr.Findings {
		if f.Plane != "trace" {
			t.Fatalf("lint finding on wrong plane: %+v", f)
		}
	}
}

// TestArenaCacheMetricsOverHTTP pins the acceptance criterion: after
// repeated analyses over stored traces on a byte-budgeted server, the
// hit counter moved and the budget forced evictions.
func TestArenaCacheMetricsOverHTTP(t *testing.T) {
	recs := makeRecords(40_000)
	data := makeSegmentedTrace(t, recs, 4000) // 10 segments
	// Budget ~ a third of the decoded trace: analyses must evict.
	budget := int64(len(recs)) * trace.RecordBytes / 3
	ts, _ := testServer(t, Options{ArenaCacheBytes: budget})
	c := NewClient(ts.URL, "alpha")
	if _, err := c.UploadTrace("big", data); err != nil {
		t.Fatal(err)
	}
	hits0, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")
	evict0, _ := obs.Default().PeekCounter("atum_serve_arena_cache_evictions_total")
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(api.AnalysisRequest{Trace: "big", Kind: api.KindSummary}); err != nil {
			t.Fatal(err)
		}
	}
	hits1, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")
	evict1, _ := obs.Default().PeekCounter("atum_serve_arena_cache_evictions_total")
	if hits1 == hits0 {
		t.Fatal("repeated analyses produced no arena cache hits")
	}
	if evict1 == evict0 {
		t.Fatal("undersized arena cache never evicted")
	}
}

// TestServeLoad is the concurrency pin: 4 tenants x 25 clients querying
// and analysing concurrently (run under -race), plus one real capture
// session per tenant with a live streamer attached. Every session's
// accounting identity must hold, the shared arena cache must be serving
// hits, and a remote sweep must equal its local counterpart while all
// of it is in flight.
func TestServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	ts, _ := testServer(t, Options{Budget: 250_000, SegmentBytes: 16 << 10})
	tenants := []string{"t0", "t1", "t2", "t3"}

	recs := makeRecords(20_000)
	data := makeSegmentedTrace(t, recs, 4000)
	cfg := cache.Config{Label: "ld", SizeBytes: 2 << 10, BlockBytes: 16, Assoc: 1,
		Replacement: cache.LRU, WriteAllocate: true, PIDTags: true}
	run := cache.RunOptions{IncludePTE: true}

	f, err := trace.OpenReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	arena, err := f.Arena(0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.Caches(arena, []cache.Config{cfg}, run, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, tn := range tenants {
		if _, err := NewClient(ts.URL, tn).UploadTrace("shared", data); err != nil {
			t.Fatal(err)
		}
	}
	hits0, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")

	// One live capture per tenant, each with a streamer draining it.
	type capture struct {
		tenant   string
		client   *Client
		streamed chan []byte
	}
	caps := make([]capture, len(tenants))
	for i, tn := range tenants {
		c := NewClient(ts.URL, tn)
		if _, err := c.CreateSession(api.CreateSessionRequest{Name: "cap", Workloads: []string{"sieve"}}); err != nil {
			t.Fatal(err)
		}
		ch := make(chan []byte, 1)
		go func() {
			rd, err := c.StreamSegments("cap")
			if err != nil {
				ch <- nil
				return
			}
			b, _ := io.ReadAll(rd)
			rd.Close()
			ch <- b
		}()
		caps[i] = capture{tenant: tn, client: c, streamed: ch}
	}

	// 100 concurrent query clients across the 4 tenants.
	const perTenant = 25
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*perTenant)
	for _, tn := range tenants {
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func(tn string, k int) {
				defer wg.Done()
				c := NewClient(ts.URL, tn)
				for iter := 0; iter < 3; iter++ {
					switch (k + iter) % 4 {
					case 0:
						if _, err := c.Traces(); err != nil {
							errs <- fmt.Errorf("%s list: %w", tn, err)
							return
						}
					case 1:
						info, err := c.Trace("shared")
						if err != nil || !info.Complete {
							errs <- fmt.Errorf("%s info: %v %+v", tn, err, info)
							return
						}
					case 2:
						resp, err := c.Analyze(api.AnalysisRequest{Trace: "shared", Kind: api.KindCaches,
							Caches: []cache.Config{cfg}, Run: run})
						if err != nil {
							errs <- fmt.Errorf("%s analyze: %w", tn, err)
							return
						}
						if !reflect.DeepEqual(resp.Caches, local) {
							errs <- fmt.Errorf("%s: remote sweep diverged from local under load", tn)
							return
						}
					case 3:
						if _, err := c.MetricsText(); err != nil {
							errs <- fmt.Errorf("%s metrics: %w", tn, err)
							return
						}
					}
				}
			}(tn, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every capture ends with the identity intact and a valid stream.
	for _, cp := range caps {
		final, err := cp.client.CloseSession("cap")
		if err != nil {
			t.Fatalf("%s close: %v", cp.tenant, err)
		}
		if final.State != api.SessionDone {
			t.Errorf("%s: session state %q (error %q)", cp.tenant, final.State, final.Error)
		}
		if final.Recorded != final.Spilled+final.Lost {
			t.Errorf("%s: recorded %d != spilled %d + lost %d",
				cp.tenant, final.Recorded, final.Spilled, final.Lost)
		}
		live := <-cp.streamed
		stored, err := cp.client.TraceData("cap")
		if err != nil {
			t.Fatalf("%s data: %v", cp.tenant, err)
		}
		if !bytes.Equal(live, stored) {
			t.Errorf("%s: live stream != stored trace", cp.tenant)
		}
	}

	hits1, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")
	if hits1 <= hits0 {
		t.Error("load produced no arena cache hits")
	}
}

// TestValidation pins the obvious request rejections.
func TestValidation(t *testing.T) {
	ts, _ := testServer(t, Options{})
	c := NewClient(ts.URL, "alpha")
	if _, err := c.CreateSession(api.CreateSessionRequest{Name: "../evil"}); err == nil {
		t.Error("path-hostile session name accepted")
	}
	if _, err := c.CreateSession(api.CreateSessionRequest{Name: "x", Codec: "bogus"}); err == nil {
		t.Error("bogus codec accepted")
	}
	if _, err := c.UploadTrace("junk", []byte("not a trace at all")); err == nil {
		t.Error("junk upload accepted")
	}
	if _, err := c.Analyze(api.AnalysisRequest{Trace: "absent", Kind: api.KindSummary}); err == nil {
		t.Error("analysis over missing trace accepted")
	}
	data := makeSegmentedTrace(t, makeRecords(100), 50)
	if _, err := c.UploadTrace("tiny", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(api.AnalysisRequest{Trace: "tiny", Kind: "nonsense"}); err == nil {
		t.Error("unknown analysis kind accepted")
	}
	if _, err := c.Analyze(api.AnalysisRequest{Trace: "tiny", Kind: api.KindCaches}); err == nil {
		t.Error("caches analysis with no configs accepted")
	}
}

// TestCompressedStoredTrace pins the serve half of the container-v2
// lane: a flate-encoded stored trace must analyse byte-identically to
// a local sweep over the same bytes, repeated analyses must hit the
// arena cache (decoded segments are cached post-inflate, so the
// inflate cost is paid once), and a capture session created with
// Compress must actually store compressed segments that lint clean.
func TestCompressedStoredTrace(t *testing.T) {
	ts, _ := testServer(t, Options{Budget: 400_000, SegmentBytes: 16 << 10})
	c := NewClient(ts.URL, "alpha")

	recs := makeRecords(30_000)
	data := makeSegmentedTraceEnc(t, recs, 5000, trace.SegEncFlate)
	f, err := trace.OpenReaderAt(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	nseg := len(f.Segments())
	compressed := 0
	for _, s := range f.Segments() {
		if s.Encoding == trace.SegEncFlate {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatal("test trace has no compressed segments")
	}
	if _, err := c.UploadTrace("comp", data); err != nil {
		t.Fatal(err)
	}

	cfgs := []cache.Config{
		{Label: "a", SizeBytes: 1 << 10, BlockBytes: 16, Assoc: 1, Replacement: cache.LRU, WriteAllocate: true, PIDTags: true},
	}
	run := cache.RunOptions{IncludePTE: true}
	arena, err := f.Arena(0)
	if err != nil {
		t.Fatal(err)
	}
	local, err := sweep.Caches(arena, cfgs, run, 0)
	if err != nil {
		t.Fatal(err)
	}

	hits0, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")
	miss0, _ := obs.Default().PeekCounter("atum_serve_arena_cache_misses_total")
	for i := 0; i < 2; i++ {
		resp, err := c.Analyze(api.AnalysisRequest{Trace: "comp", Kind: api.KindCaches, Caches: cfgs, Run: run})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Caches, local) {
			t.Fatalf("analysis %d over compressed trace differs from local sweep", i)
		}
	}
	hits1, _ := obs.Default().PeekCounter("atum_serve_arena_cache_hits_total")
	miss1, _ := obs.Default().PeekCounter("atum_serve_arena_cache_misses_total")
	if miss1-miss0 < uint64(nseg) {
		t.Errorf("first analysis missed %d times, want >= %d (one per segment)", miss1-miss0, nseg)
	}
	if hits1-hits0 < uint64(nseg) {
		t.Errorf("second analysis hit %d times, want >= %d (one per segment)", hits1-hits0, nseg)
	}
	if miss1-miss0 >= 2*uint64(nseg) {
		t.Errorf("repeat analysis re-missed (%d total misses for %d segments): encoding key churned", miss1-miss0, nseg)
	}

	// A capture session with Compress set stores compressed segments.
	if _, err := c.CreateSession(api.CreateSessionRequest{Name: "capc", Workloads: []string{"sieve"}, Compress: true}); err != nil {
		t.Fatal(err)
	}
	info := waitDone(t, c, "capc")
	if info.State != api.SessionDone {
		t.Fatalf("compressed capture ended %q: %s", info.State, info.Error)
	}
	stored, err := c.TraceData("capc")
	if err != nil {
		t.Fatal(err)
	}
	sf, err := trace.OpenReaderAt(bytes.NewReader(stored), int64(len(stored)))
	if err != nil {
		t.Fatalf("stored compressed capture unreadable: %v", err)
	}
	var storedPay, storedRaw uint64
	capComp := 0
	for _, s := range sf.Segments() {
		storedPay += s.PayloadBytes
		storedRaw += s.RawBytes
		if s.Encoding == trace.SegEncFlate {
			capComp++
		}
	}
	if capComp == 0 {
		t.Fatalf("Compress session stored no compressed segments (%d segments)", len(sf.Segments()))
	}
	if storedPay >= storedRaw {
		t.Errorf("compressed capture stored %d bytes for %d raw", storedPay, storedRaw)
	}
	if got, err := sf.Records(0); err != nil || uint64(len(got)) != info.Spilled {
		t.Fatalf("stored compressed capture decode: %d records, err %v, want %d", len(got), err, info.Spilled)
	}
	// The lint endpoint runs the container checks over it without
	// complaint (a well-formed writer never trips seg-raw-len).
	lr, err := c.Lint("capc")
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range lr.Findings {
		if fd.Check == trace.LintSegRawLen {
			t.Fatalf("well-formed compressed capture flagged by container lint: %+v", fd)
		}
	}
	// And the tenant registry accounted the compressed stored bytes.
	mt, err := c.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	var compBytes uint64
	for _, line := range strings.Split(mt, "\n") {
		if n, _ := fmt.Sscanf(line, "atum_spill_compressed_bytes_total %d", &compBytes); n == 1 {
			break
		}
	}
	if compBytes == 0 {
		t.Error("atum_spill_compressed_bytes_total never moved on a compressed capture")
	}
}
