package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// Exposition. Two formats over one registry walk:
//
// WriteText renders the Prometheus-style plain-text form — one
// `name value` line per counter/gauge, and for each histogram the
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count` —
// sorted by metric name, so output is byte-deterministic for a given
// set of metric values (the golden test pins it).
//
// WriteJSON renders the expvar convention: one top-level JSON object,
// metric names as keys, scalar values for counters/gauges and a
// {count, sum, buckets} object for histograms. Handler serves text by
// default and JSON when the request asks for it (expvar's /debug/vars
// shape), so standard expvar scrapers work unmodified.

// WriteText writes the plain-text exposition of every metric, sorted by
// name.
func (r *Registry) WriteText(w io.Writer) error {
	for _, name := range r.names() {
		switch m := r.get(name).(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			bounds, cum := m.Buckets()
			for i, b := range bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(m.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// String returns the plain-text exposition.
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// histogramJSON is the JSON shape of one histogram.
type histogramJSON struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
}

// WriteJSON writes the expvar-compatible JSON object form.
func (r *Registry) WriteJSON(w io.Writer) error {
	names := r.names()
	obj := make(map[string]any, len(names))
	for _, name := range names {
		switch m := r.get(name).(type) {
		case *Counter:
			obj[name] = m.Value()
		case *Gauge:
			obj[name] = m.Value()
		case *Histogram:
			bounds, cum := m.Buckets()
			bk := make(map[string]uint64, len(cum))
			for i, b := range bounds {
				bk[formatFloat(b)] = cum[i]
			}
			bk["+Inf"] = cum[len(cum)-1]
			obj[name] = histogramJSON{Count: m.Count(), Sum: m.Sum(), Buckets: bk}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// Handler serves the registry over HTTP: plain text by default, the
// expvar JSON object when the client asks for JSON (Accept header or
// ?format=json), so the same endpoint satisfies both a human with curl
// and an expvar scraper.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// Serve starts an HTTP server exposing the registry at /metrics (text
// or JSON by negotiation) and /debug/vars (always JSON, the expvar
// path). It returns the bound address — addr may use port 0 — and a
// stop function. The server runs until stopped; it never blocks the
// caller.
func (r *Registry) Serve(addr string) (bound string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
