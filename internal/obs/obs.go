// Package obs is the observability layer for the capture/spill/decode/
// replay pipeline: atomic counters, gauges and fixed-bucket histograms
// in a named registry, with a deterministic plain-text exposition format
// and an expvar-compatible HTTP handler.
//
// The paper's credibility rests on accounting for what tracing itself
// costs — slowdown, trace loss at buffer-full, dilation — and a
// production capture has to report those numbers *while it runs*, not
// post-mortem. Every metric here is therefore safe to read from a
// polling goroutine while the capture loop writes it: counters and
// gauges are single atomics, histogram buckets are atomics, and the
// registry itself is a mutex-guarded name table that is only locked on
// registration and exposition, never on the increment hot path.
//
// The package is a leaf — stdlib only — so every layer of the pipeline
// (collector, kernel spill service, trace decode, sweep engine) can
// import it without cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (a level, not a total):
// worker occupancy, replay rate, queue depth. The zero value is ready
// to use; all methods are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (CAS loop; deltas never get lost).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges of each bucket, strictly increasing; an
// implicit +Inf bucket catches the overflow, so every observation lands
// somewhere. Observe is lock-free: one atomic add for the bucket, one
// for the count, a CAS loop for the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a free-standing histogram (registries build their
// own via Registry.Histogram). Bounds must be strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: v <= bounds[i]
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the cumulative count at each upper bound, ending with
// the +Inf bucket (== Count up to concurrent skew).
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	cumulative = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return h.bounds, cumulative
}

// DefSecondsBuckets is the default latency bucket layout (seconds),
// spanning microseconds to single-digit seconds.
var DefSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// DefSizeBuckets is the default size bucket layout (bytes), spanning
// one record to hundreds of megabytes.
var DefSizeBuckets = []float64{
	64, 1 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20,
}

// Registry is a named set of metrics. Lookups get-or-create, so any
// layer can resolve the same metric by name without coordination; the
// exposition walk is sorted by name, so output is deterministic.
type Registry struct {
	mu   sync.Mutex
	vars map[string]any // guarded by mu; *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{vars: map[string]any{}} }

// defaultRegistry is the process-wide registry the pipeline layers
// instrument into; commands expose it via -metrics-addr/-metrics-dump.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// lookup get-or-creates name, building a missing metric with mk. A name
// registered under a different metric type panics: that is a programming
// error, not runtime input.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		return v
	}
	v := mk()
	r.vars[name] = v
	return v
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	v := r.lookup(name, func() any { return new(Counter) })
	c, ok := v.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, not counter", name, v))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	v := r.lookup(name, func() any { return new(Gauge) })
	g, ok := v.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, not gauge", name, v))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls reuse the
// existing buckets regardless of bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	v := r.lookup(name, func() any { return NewHistogram(bounds) })
	h, ok := v.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q registered as %T, not histogram", name, v))
	}
	return h
}

// names returns the sorted metric names.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.vars))
	for n := range r.vars {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// get returns the metric under name, or nil.
func (r *Registry) get(name string) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.vars[name]
}

// PeekCounter reads the counter registered under name without creating
// it; ok reports whether such a counter exists. For consumers (like the
// monitor's status view) that must not pollute the registry with
// metrics nothing is producing.
func (r *Registry) PeekCounter(name string) (v uint64, ok bool) {
	if c, isC := r.get(name).(*Counter); isC {
		return c.Value(), true
	}
	return 0, false
}

// PeekGauge reads the gauge registered under name without creating it;
// ok reports whether such a gauge exists.
func (r *Registry) PeekGauge(name string) (v float64, ok bool) {
	if g, isG := r.get(name).(*Gauge); isG {
		return g.Value(), true
	}
	return 0, false
}

// formatFloat renders a float the same way everywhere (shortest
// round-trip form), so the exposition format is stable enough to pin
// with a golden test.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
