package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket edge convention: bounds
// are inclusive upper edges, values above the last bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0, 1, 1.0000001, 10, 99.9, 100, 101, 1e9} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds=%v cum=%v", bounds, cum)
	}
	// <=1: {0, 1}; <=10: +{1.0000001, 10}; <=100: +{99.9, 100}; +Inf: +{101, 1e9}.
	want := []uint64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d (cum=%v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.0+1+1.0000001+10+99.9+100+101+1e9; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds accepted")
		}
	}()
	NewHistogram([]float64{1, 1})
}

// TestConcurrentTotals is the determinism contract: N goroutines each
// incrementing M times must always total exactly N*M — no lost updates
// on counters, gauges, or histogram counts/sums.
func TestConcurrentTotals(t *testing.T) {
	const goroutines, per = 16, 10_000
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.5, 1.5})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * per
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %v, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if h.Sum() != want {
		t.Errorf("histogram sum = %v, want %d", h.Sum(), want)
	}
	_, cum := h.Buckets()
	if cum[1] != want || cum[0] != 0 || cum[2] != want {
		t.Errorf("cumulative buckets = %v", cum)
	}
}

// TestRegistryGetOrCreate: two lookups of one name share the metric;
// cross-type reuse of a name panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("second lookup lost the count: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type name reuse accepted")
		}
	}()
	r.Gauge("x")
}

// TestExpositionGolden pins the plain-text format byte for byte: sorted
// names, integer counters, shortest-form floats, cumulative histogram
// buckets with _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("atum_capture_records_total").Add(12345)
	r.Gauge("atum_sweep_replay_rate_recs_per_sec").Set(2.5e6)
	h := r.Histogram("atum_spill_latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.02)
	r.Counter("aaa_first").Inc()

	const want = `aaa_first 1
atum_capture_records_total 12345
atum_spill_latency_seconds_bucket{le="0.001"} 2
atum_spill_latency_seconds_bucket{le="0.01"} 2
atum_spill_latency_seconds_bucket{le="+Inf"} 3
atum_spill_latency_seconds_sum 0.021
atum_spill_latency_seconds_count 3
atum_sweep_replay_rate_recs_per_sec 2.5e+06
`
	if got := r.String(); got != want {
		t.Errorf("exposition format drifted:\n got: %q\nwant: %q", got, want)
	}
}

// TestJSONRoundTrip checks the expvar-shaped object form.
func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("not a JSON object: %v\n%s", err, b.String())
	}
	if string(obj["c"]) != "7" {
		t.Errorf("c = %s", obj["c"])
	}
	var hist histogramJSON
	if err := json.Unmarshal(obj["h"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 || hist.Buckets["1"] != 1 || hist.Buckets["+Inf"] != 1 {
		t.Errorf("histogram JSON = %+v", hist)
	}
}

// TestServe drives the HTTP surface end to end: text at /metrics, JSON
// via content negotiation and at /debug/vars.
func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(9)
	addr, stop, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest("GET", "http://"+addr+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/metrics", ""); !strings.Contains(body, "served_total 9") || !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics text: ct=%q body=%q", ct, body)
	}
	if body, ct := get("/metrics?format=json", ""); !strings.Contains(body, `"served_total": 9`) || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics json: ct=%q body=%q", ct, body)
	}
	if body, _ := get("/metrics", "application/json"); !strings.Contains(body, `"served_total": 9`) {
		t.Errorf("accept-negotiated json: %q", body)
	}
	if body, ct := get("/debug/vars", ""); !strings.Contains(body, `"served_total": 9`) || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/vars: ct=%q body=%q", ct, body)
	}
}
