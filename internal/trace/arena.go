package trace

import (
	"io"
	"sync"
)

// Source is a read-only, in-order stream of trace records that can be
// consumed by any number of goroutines concurrently — the contract the
// parallel sweep engine (internal/sweep) relies on to replay one decoded
// trace through many simulator configurations at once. Implementations
// must not mutate the chunks they hand out, and callers must not either.
type Source interface {
	// NumRecords returns the total record count.
	NumRecords() int
	// EachChunk calls fn with successive non-empty sub-slices of the
	// trace, in record order, until the trace is exhausted or fn errors.
	EachChunk(fn func([]Record) error) error
}

// Records adapts a plain record slice to Source (one chunk, no copy).
type Records []Record

// NumRecords implements Source.
func (r Records) NumRecords() int { return len(r) }

// EachChunk implements Source.
func (r Records) EachChunk(fn func([]Record) error) error {
	if len(r) == 0 {
		return nil
	}
	return fn(r)
}

// arenaChunkRecords sizes the chunks Reader.Arena and Arena.Filter
// decode into: 64K records (768 KB) keeps allocation spikes bounded — the
// append-doubling of a contiguous decode transiently holds a trace
// twice — while staying far above per-chunk overhead.
const arenaChunkRecords = 1 << 16

// Arena is a shared, read-only record store decoded (or captured) once
// and replayed many times: the fan-out side of the one-pass-many-configs
// methodology. Records live in fixed-size chunks so a streaming decode
// never re-copies what it has already decoded. An Arena is safe for
// concurrent readers; it has no mutating methods after construction.
type Arena struct {
	chunks [][]Record
	n      int

	flattenOnce sync.Once
	flat        []Record
}

// NewArena wraps an existing record slice as a single-chunk arena
// without copying. The caller must not mutate recs afterwards.
func NewArena(recs []Record) *Arena {
	a := &Arena{}
	if len(recs) > 0 {
		a.chunks = [][]Record{recs}
		a.n = len(recs)
	}
	return a
}

// Arena decodes the remainder of the stream directly into arena chunks.
// Unlike Records it never holds the trace twice: each chunk is decoded
// in place and kept, with no growing contiguous slice behind it.
func (r *Reader) Arena() (*Arena, error) {
	a := &Arena{}
	for {
		size := r.d.Remaining() // untrusted: cap each allocation at one chunk
		if size == 0 && !r.d.segmented {
			break
		}
		if size == 0 || size > arenaChunkRecords {
			// Segmented streams read segment headers lazily, so Remaining
			// is 0 at every segment boundary even when records remain;
			// allocate a full chunk and let Decode right-size it.
			size = arenaChunkRecords
		}
		chunk := make([]Record, size)
		n, err := r.d.Next(chunk)
		if n > 0 {
			a.chunks = append(a.chunks, chunk[:n:n])
			a.n += n
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// NewArenaFromChunks wraps pre-decoded record chunks as an arena
// without copying: the fan-in side for callers (like the serve layer's
// segment cache) that already hold per-segment slices and want the
// one-pass-many-configs replay contract over them. Empty chunks are
// skipped; the caller must not mutate any chunk afterwards.
func NewArenaFromChunks(chunks [][]Record) *Arena {
	a := &Arena{}
	for _, c := range chunks {
		if len(c) == 0 {
			continue
		}
		a.chunks = append(a.chunks, c)
		a.n += len(c)
	}
	return a
}

// NumRecords implements Source.
func (a *Arena) NumRecords() int { return a.n }

// EachChunk implements Source.
func (a *Arena) EachChunk(fn func([]Record) error) error {
	for _, c := range a.chunks {
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns a new arena holding only the records keep accepts,
// built chunk by chunk. The receiver is not modified.
func (a *Arena) Filter(keep func(Record) bool) *Arena {
	out := &Arena{}
	cur := make([]Record, 0, arenaChunkRecords)
	for _, c := range a.chunks {
		for _, r := range c {
			if !keep(r) {
				continue
			}
			cur = append(cur, r)
			if len(cur) == cap(cur) {
				out.chunks = append(out.chunks, cur)
				out.n += len(cur)
				cur = make([]Record, 0, arenaChunkRecords)
			}
		}
	}
	if len(cur) > 0 {
		out.chunks = append(out.chunks, cur[:len(cur):len(cur)])
		out.n += len(cur)
	}
	return out
}

// FilterUser returns the user-mode subset (see FilterUser on slices).
func (a *Arena) FilterUser() *Arena {
	return a.Filter(func(r Record) bool {
		return r.User && r.Kind != KindPTERead && r.Kind != KindPTEWrite
	})
}

// Flatten returns the records as one contiguous slice. A single-chunk
// arena returns its chunk directly; otherwise the flattening is done
// once and cached (so analyses that need a slice pay the copy at most
// once). The result is read-only like the arena itself. Safe for
// concurrent callers.
func (a *Arena) Flatten() []Record {
	if len(a.chunks) == 1 {
		return a.chunks[0]
	}
	a.flattenOnce.Do(func() {
		flat := make([]Record, 0, a.n)
		for _, c := range a.chunks {
			flat = append(flat, c...)
		}
		a.flat = flat
	})
	return a.flat
}
