package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// captureSegments writes recs as n segments and returns deep copies of
// every teed StreamSegment (the writer reuses its encode buffer, so the
// tee's payload must be copied to outlive the call) plus the on-disk
// stream bytes.
func captureSegments(t *testing.T, recs []Record, n int, codec uint16) ([]StreamSegment, []byte) {
	t.Helper()
	var segs []StreamSegment
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, codec, "segdecode")
	if err != nil {
		t.Fatal(err)
	}
	sw.Tee(func(s StreamSegment) {
		segs = append(segs, StreamSegment{
			Codec:   s.Codec,
			Info:    s.Info,
			Payload: append([]byte(nil), s.Payload...),
		})
	})
	per := (len(recs) + n - 1) / n
	if per == 0 {
		per = 1
	}
	for off := 0; off < len(recs); off += per {
		end := off + per
		if end > len(recs) {
			end = len(recs)
		}
		if _, err := sw.WriteSegment(recs[off:end], 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return segs, buf.Bytes()
}

// TestDecodeSegmentRoundTrip: decoding every teed segment and
// concatenating must reproduce the written records exactly, for both
// codecs, reusing one dst buffer across segments the way the streaming
// pipeline does.
func TestDecodeSegmentRoundTrip(t *testing.T) {
	recs := makeTrace(5000, 21)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		segs, _ := captureSegments(t, recs, 4, codec)
		var got []Record
		var dst []Record
		var base uint64
		for _, s := range segs {
			out, err := DecodeSegment(s.Codec, s.Info, s.Payload, dst, base)
			if err != nil {
				t.Fatalf("codec=%d segment %d: %v", codec, s.Info.Index, err)
			}
			if uint64(len(out)) != s.Info.Records {
				t.Fatalf("codec=%d segment %d: decoded %d records, header says %d",
					codec, s.Info.Index, len(out), s.Info.Records)
			}
			got = append(got, out...)
			base += uint64(len(out))
			dst = out // reuse: steady-state decoding allocates once
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("codec=%d: round trip differs", codec)
		}
	}
}

// TestDecodeSegmentTruncation: a payload cut short must deliver the
// decoded prefix alongside the identical record-indexed unexpected-EOF
// the streaming Decoder reports reading the equally-truncated file.
func TestDecodeSegmentTruncation(t *testing.T) {
	recs := makeTrace(600, 33)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		for _, cut := range []int{1, 5, 17} {
			segs, stream := captureSegments(t, recs, 1, codec)
			s := segs[0]
			if cut >= len(s.Payload) {
				t.Fatalf("cut %d exceeds payload %d", cut, len(s.Payload))
			}
			prefix, gotErr := DecodeSegment(s.Codec, s.Info, s.Payload[:len(s.Payload)-cut], nil, 0)
			if gotErr == nil {
				t.Fatalf("codec=%d cut=%d: truncation not reported", codec, cut)
			}
			if !errors.Is(gotErr, io.ErrUnexpectedEOF) {
				t.Fatalf("codec=%d cut=%d: error %v does not wrap io.ErrUnexpectedEOF", codec, cut, gotErr)
			}
			if !reflect.DeepEqual(prefix, recs[:len(prefix)]) {
				t.Fatalf("codec=%d cut=%d: decoded prefix diverges from written records", codec, cut)
			}

			// Oracle: the streaming Decoder over the truncated file.
			rd, err := Open(bytes.NewReader(stream[:len(stream)-cut]))
			if err != nil {
				t.Fatal(err)
			}
			var wantRecs []Record
			var wantErr error
			buf := make([]Record, 128)
			for {
				n, derr := rd.Decode(buf)
				wantRecs = append(wantRecs, buf[:n]...)
				if derr == io.EOF {
					break
				}
				if derr != nil {
					wantErr = derr
					break
				}
			}
			if wantErr == nil {
				t.Fatalf("codec=%d cut=%d: file oracle saw no error", codec, cut)
			}
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("codec=%d cut=%d: segment error %q != file error %q", codec, cut, gotErr, wantErr)
			}
			if !reflect.DeepEqual(prefix, wantRecs) {
				t.Fatalf("codec=%d cut=%d: segment prefix (%d) differs from file prefix (%d)",
					codec, cut, len(prefix), len(wantRecs))
			}
		}
	}
}

// TestDecodeSegmentBaseIndex: errors are indexed from base, so a
// mid-stream segment reports the same absolute record number a batch
// read of the whole stream would.
func TestDecodeSegmentBaseIndex(t *testing.T) {
	recs := makeTrace(100, 8)
	segs, _ := captureSegments(t, recs, 1, CodecRaw)
	s := segs[0]
	_, err0 := DecodeSegment(s.Codec, s.Info, s.Payload[:len(s.Payload)-4], nil, 0)
	_, err1000 := DecodeSegment(s.Codec, s.Info, s.Payload[:len(s.Payload)-4], nil, 1000)
	if err0 == nil || err1000 == nil {
		t.Fatal("truncation not reported")
	}
	if err0.Error() == err1000.Error() {
		t.Fatalf("base ignored: %q == %q", err0, err1000)
	}
}

// TestDecodeSegmentEdges: empty segments, unknown codecs, and payloads
// longer than the header promises.
func TestDecodeSegmentEdges(t *testing.T) {
	// Empty segment: no records, no error.
	out, err := DecodeSegment(CodecDelta, SegmentInfo{}, nil, nil, 0)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty segment: %d records, err %v", len(out), err)
	}
	// Empty segment whose header promises payload that never arrived.
	if _, err := DecodeSegment(CodecDelta, SegmentInfo{Index: 3, PayloadBytes: 10}, nil, nil, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short empty segment: err %v, want unexpected EOF", err)
	}
	// Unknown codec.
	if _, err := DecodeSegment(99, SegmentInfo{Records: 1, PayloadBytes: 8}, make([]byte, 8), nil, 0); err == nil {
		t.Fatal("unknown codec accepted")
	}
	// A payload slice longer than the header promises is clamped to the
	// framing, never decoded past it.
	recs := makeTrace(64, 5)
	segs, _ := captureSegments(t, recs, 1, CodecRaw)
	s := segs[0]
	long := append(append([]byte(nil), s.Payload...), 0xAA, 0xBB, 0xCC, 0xDD, 1, 2, 3, 4)
	out, err = DecodeSegment(s.Codec, s.Info, long, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, recs) {
		t.Fatal("overlong payload decoded past the framing")
	}
}
