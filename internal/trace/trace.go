// Package trace defines the ATUM trace record — the unit the microcode
// patches write into reserved physical memory — together with the packed
// in-memory encoding, an on-disk stream format with an optional
// delta-compressed codec, filters, and summary statistics.
package trace

import (
	"encoding/binary"
	"fmt"
)

// Kind classifies a trace record.
type Kind uint8

const (
	KindIFetch    Kind = iota // instruction-stream fetch (aligned longword)
	KindDRead                 // data read
	KindDWrite                // data write
	KindPTERead               // PTE read by translation microcode
	KindPTEWrite              // PTE modify-bit write
	KindCtxSwitch             // context switch; Extra = incoming PID
	KindException             // exception/interrupt; Extra = SCB vector
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case KindIFetch:
		return "ifetch"
	case KindDRead:
		return "dread"
	case KindDWrite:
		return "dwrite"
	case KindPTERead:
		return "pteread"
	case KindPTEWrite:
		return "ptewrite"
	case KindCtxSwitch:
		return "ctxswitch"
	case KindException:
		return "exception"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMemRef reports whether the record is an actual memory reference (as
// opposed to a marker record).
func (k Kind) IsMemRef() bool { return k <= KindPTEWrite }

// Record is one decoded trace entry.
type Record struct {
	Kind  Kind
	Addr  uint32 // virtual address (physical when Phys)
	Width uint8  // reference width in bytes (1, 2 or 4); 0 for marker records
	PID   uint8
	User  bool // access made in user mode
	Phys  bool // Addr is physical (system PTE and PCB references)
	Extra uint16
}

func (r Record) String() string {
	mode := "k"
	if r.User {
		mode = "u"
	}
	space := ""
	if r.Phys {
		space = " phys"
	}
	s := fmt.Sprintf("%-9s pid=%-2d %s %08x w%d%s", r.Kind, r.PID, mode, r.Addr, r.Width, space)
	if r.Kind == KindCtxSwitch || r.Kind == KindException {
		s += fmt.Sprintf(" extra=%#x", r.Extra)
	}
	return s
}

// RecordBytes is the packed record size in the reserved physical buffer.
const RecordBytes = 8

// Packed layout:
//
//	byte 0: kind(3) | widthLog2(2) | user(1) | phys(1) | reserved(1)
//	byte 1: PID
//	bytes 2-3: Extra, little endian
//	bytes 4-7: Addr, little endian
const (
	flagUser = 1 << 5
	flagPhys = 1 << 6
)

// Encode packs the record into b (at least RecordBytes long).
func (r Record) Encode(b []byte) {
	var wl byte
	switch r.Width {
	case 2:
		wl = 1
	case 4:
		wl = 2
	}
	b0 := byte(r.Kind)&7 | wl<<3
	if r.User {
		b0 |= flagUser
	}
	if r.Phys {
		b0 |= flagPhys
	}
	b[0] = b0
	b[1] = r.PID
	binary.LittleEndian.PutUint16(b[2:], r.Extra)
	binary.LittleEndian.PutUint32(b[4:], r.Addr)
}

// DecodeRecord unpacks one record from b. The packed width field cannot
// represent 0, so marker kinds — which carry no reference width — decode
// to Width 0 by fiat rather than a phantom 1-byte width.
func DecodeRecord(b []byte) Record {
	b0 := b[0]
	k := Kind(b0 & 7)
	var w uint8
	if k.IsMemRef() {
		w = 1 << (b0 >> 3 & 3)
	}
	return Record{
		Kind:  k,
		Width: w,
		User:  b0&flagUser != 0,
		Phys:  b0&flagPhys != 0,
		PID:   b[1],
		Extra: binary.LittleEndian.Uint16(b[2:]),
		Addr:  binary.LittleEndian.Uint32(b[4:]),
	}
}

// ParseBuffer decodes the packed records in a raw trace-buffer image
// (length must be a multiple of RecordBytes).
func ParseBuffer(buf []byte) ([]Record, error) {
	if len(buf)%RecordBytes != 0 {
		return nil, fmt.Errorf("trace: buffer length %d not a record multiple", len(buf))
	}
	out := make([]Record, 0, len(buf)/RecordBytes)
	for i := 0; i < len(buf); i += RecordBytes {
		out = append(out, DecodeRecord(buf[i:i+RecordBytes]))
	}
	return out, nil
}

// FilterUser returns only user-mode references — what a user-level
// tracing tool would have seen. Marker records from user context are
// retained; kernel references, PTE references and kernel markers drop.
func FilterUser(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.User && r.Kind != KindPTERead && r.Kind != KindPTEWrite {
			out = append(out, r)
		}
	}
	return out
}

// FilterPID returns only records attributed to one process.
func FilterPID(recs []Record, pid uint8) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.PID == pid {
			out = append(out, r)
		}
	}
	return out
}

// FilterMemRefs drops marker records, keeping actual references.
func FilterMemRefs(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Kind.IsMemRef() {
			out = append(out, r)
		}
	}
	return out
}
