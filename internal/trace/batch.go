package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Batch codec layer: both containers decode through the two batch
// functions below, which scan an in-memory payload window with index
// arithmetic — no per-byte reader calls, no per-record error wrapping —
// and commit complete records only. The streaming Decoder feeds them
// buffered windows (file.go); the random-access File feeds them whole
// segment payloads (readerat.go). One code path, so the two entry
// points are byte-identical by construction.

// deltaState is the delta codec's inter-record state: the last address
// seen per kind and the last PID. It resets at every segment boundary,
// which is what makes segments independently decodable.
type deltaState struct {
	lastAddr [NumKinds]uint32
	lastPID  uint8
}

// maxEncRecordBytes bounds one delta-encoded record: header byte, PID
// byte, zigzag-varint address, uvarint extra. Any window at least this
// long that still truncates mid-record is truncating the final record
// of its payload.
const maxEncRecordBytes = 2 + 2*binary.MaxVarintLen64

// Batch decode error causes. A batch function stops at the first
// problem record and reports which field failed through one of these;
// the caller owns the record numbering and wraps accordingly (see
// recordError). Truncation is not necessarily fatal to a streaming
// caller — the window may simply end mid-record and grow on refill.
type batchError struct {
	field     string // "", " pid", " addr", " extra"
	truncated bool   // window ended inside the record
	msg       string // malformed-record detail when !truncated
}

func (e *batchError) Error() string {
	if e.truncated {
		return "truncated record" + e.field
	}
	return e.msg
}

// recordError renders a batch error the way the decoder has always
// reported per-record failures: "trace: record N[ field]: cause", with
// truncation wrapping io.ErrUnexpectedEOF.
func recordError(e *batchError, index uint64) error {
	if e.truncated {
		return fmt.Errorf("trace: record %d%s: %w", index, e.field, io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("trace: record %d%s: %s", index, e.field, e.msg)
}

// decodeRawBatch decodes as many whole raw records as dst and payload
// allow and returns how many records it wrote and how many payload
// bytes they consumed. The raw codec cannot be malformed, only short.
func decodeRawBatch(dst []Record, payload []byte) (nrec, consumed int) {
	n := len(payload) / RecordBytes
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = DecodeRecord(payload[i*RecordBytes:])
	}
	return n, n * RecordBytes
}

// decodeDeltaBatch decodes delta records from payload into dst until
// dst fills, the payload ends, or a record is malformed. It returns the
// records written, the bytes they consumed, and — when it stopped short
// of filling dst — the batch error describing the record at
// payload[consumed:]. State is committed per complete record: a record
// that fails mid-decode leaves st and dst untouched by it, so the
// caller can retry the same bytes against a longer window.
func decodeDeltaBatch(dst []Record, payload []byte, st *deltaState) (nrec, consumed int, err *batchError) {
	// The inter-record state lives in locals for the scan (the pointer
	// loads would otherwise sit on the critical path of every record) and
	// flushes back to st at every return. Both are committed only after a
	// record decodes completely, so a failed record leaves no trace.
	lastAddr := st.lastAddr
	lastPID := st.lastPID
	pos := 0
	for nrec < len(dst) {
		start := pos
		if pos >= len(payload) {
			st.lastAddr, st.lastPID = lastAddr, lastPID
			return nrec, start, &batchError{truncated: true}
		}
		h := payload[pos]
		pos++
		k := Kind(h & 7)
		if k >= NumKinds {
			st.lastAddr, st.lastPID = lastAddr, lastPID
			return nrec, start, &batchError{msg: fmt.Sprintf("invalid kind %d", h&7)}
		}
		rec := Record{
			Kind: k,
			User: h&flagUser != 0,
			Phys: h&flagPhys != 0,
		}
		// Markers carry no reference width (see DecodeRecord).
		if k.IsMemRef() {
			rec.Width = 1 << (h >> 3 & 3)
		}
		pid := lastPID
		if h&deltaPIDChanged != 0 {
			if pos >= len(payload) {
				st.lastAddr, st.lastPID = lastAddr, lastPID
				return nrec, start, &batchError{field: " pid", truncated: true}
			}
			pid = payload[pos]
			pos++
		}
		rec.PID = pid
		// Address delta: zigzag varint. Within-kind deltas are small in
		// real traces (sequential fetches, strided data), so one- and
		// two-byte encodings are the hot cases; decode them inline and
		// leave the general loop to binary.Varint.
		var delta int64
		if pos < len(payload) {
			if b0 := payload[pos]; b0 < 0x80 {
				u := uint64(b0)
				delta = int64(u>>1) ^ -int64(u&1)
				pos++
			} else if pos+1 < len(payload) && payload[pos+1] < 0x80 {
				u := uint64(b0&0x7f) | uint64(payload[pos+1])<<7
				delta = int64(u>>1) ^ -int64(u&1)
				pos += 2
			} else {
				v, vn := binary.Varint(payload[pos:])
				if vn == 0 {
					st.lastAddr, st.lastPID = lastAddr, lastPID
					return nrec, start, &batchError{field: " addr", truncated: true}
				}
				if vn < 0 {
					st.lastAddr, st.lastPID = lastAddr, lastPID
					return nrec, start, &batchError{field: " addr", msg: "varint overflows a 64-bit integer"}
				}
				delta = v
				pos += vn
			}
		} else {
			st.lastAddr, st.lastPID = lastAddr, lastPID
			return nrec, start, &batchError{field: " addr", truncated: true}
		}
		rec.Addr = uint32(int64(lastAddr[k]) + delta)
		if k == KindCtxSwitch || k == KindException {
			var x uint64
			if pos < len(payload) && payload[pos] < 0x80 {
				x = uint64(payload[pos])
				pos++
			} else {
				var un int
				x, un = binary.Uvarint(payload[pos:])
				if un == 0 {
					st.lastAddr, st.lastPID = lastAddr, lastPID
					return nrec, start, &batchError{field: " extra", truncated: true}
				}
				if un < 0 {
					st.lastAddr, st.lastPID = lastAddr, lastPID
					return nrec, start, &batchError{field: " extra", msg: "varint overflows a 64-bit integer"}
				}
				pos += un
			}
			rec.Extra = uint16(x)
		}
		lastPID = pid
		lastAddr[k] = rec.Addr
		dst[nrec] = rec
		nrec++
	}
	st.lastAddr, st.lastPID = lastAddr, lastPID
	return nrec, pos, nil
}
