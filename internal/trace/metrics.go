package trace

import (
	"atum/internal/obs"
	"atum/internal/par"
)

// Decode-path telemetry, resolved once into the process-wide registry:
// the decoders have no per-call options struct to thread a registry
// through, and a live view of "how fast is this capture being read
// back" is exactly what the default registry is for. Counters are
// bumped per batch or per segment, never per record, so the zero-
// allocation hot path (batch.go) stays untouched.
var (
	mDecodeSegments    = obs.Default().Counter("atum_decode_segments_total")
	mDecodeRecords     = obs.Default().Counter("atum_decode_records_total")
	mDecodeBytes       = obs.Default().Counter("atum_decode_payload_bytes_total")
	mDecodeSegSecs     = obs.Default().Histogram("atum_decode_segment_seconds", obs.DefSecondsBuckets)
	mDecodeInflateSecs = obs.Default().Histogram("atum_decode_inflate_seconds", obs.DefSecondsBuckets)
)

// init wires the worker pool's occupancy hook to a gauge. This runs
// before any pool can start (package init precedes main and tests), so
// the hook variable is never written concurrently with a pool read.
func init() {
	g := obs.Default().Gauge("atum_par_workers_active")
	par.Occupancy = func(delta int) { g.Add(float64(delta)) }
}
