package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"atum/internal/par"
)

// Random-access read path. Open (file.go) streams: it reads segment
// headers lazily and decodes records in order, which is the right shape
// for pipes and network streams but serialises the whole decode. When
// the container sits in a file (or any io.ReaderAt), OpenFile /
// OpenReaderAt instead walk the length-prefixed "ASEG" framing once —
// headers only, no payload reads — to build a segment index, and then
// decode segments concurrently: the delta codec resets at every segment
// boundary, so each segment is an independent decode job. The result is
// byte-identical to the streaming path (test-enforced, including
// truncation errors), because both feed the same batch codec layer.

// File is a random-access trace handle: the stream header plus a
// segment index built without touching record payloads. Metadata
// queries (Meta, Segments, NumRecords) are free; Arena decodes the
// payloads, fanning segments out over a worker pool.
type File struct {
	ra     io.ReaderAt
	size   int64
	closer io.Closer
	mapped []byte // whole container, when memory-mapped (OpenFileMapped)

	codec      uint16
	meta       string
	segmented  bool
	seqStamped bool   // v3 stream: segments carry cpu/seq marks
	segHdr     int    // per-segment header size for the stream's version
	count      uint64 // records promised by every header in the index

	segs    []SegmentInfo // segmented: per-segment metadata
	segOff  []int64       // file offset of each segment's payload
	segBase []uint64      // record index of each segment's first record
}

// OpenFile opens path and builds its segment index; Close releases the
// underlying file.
func OpenFile(path string) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, err
	}
	f, err := OpenReaderAt(osf, st.Size())
	if err != nil {
		osf.Close()
		return nil, err
	}
	f.closer = osf
	return f, nil
}

// OpenFileMapped opens path like OpenFile but memory-maps the container
// when the platform supports it, so raw segment payloads are scanned by
// the batch codec in place — file pages, zero copies — and compressed
// ones inflate straight from the mapping into pooled buffers. Where
// mapping is unavailable (or fails, e.g. on an empty file) it falls
// back to the plain os.File path; Mapped reports which one the handle
// got. Close unmaps, so record slices returned by Segment remain valid
// but payload slices from SegmentPayload do not.
//
// The index is built from the file first and only then is the mapping
// established, private (copy-on-write) and covering exactly the prefix
// the index describes. A capture still appending to the file therefore
// cannot leak bytes past the open-time index into SegmentPayload
// aliases: the appended tail is outside the mapping entirely, not
// hiding in the page-rounded slack of a shared whole-file map.
func OpenFileMapped(path string) (*File, error) {
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := osf.Stat()
	if err != nil {
		osf.Close()
		return nil, err
	}
	f, err := OpenReaderAt(osf, st.Size())
	if err != nil {
		osf.Close()
		return nil, err
	}
	f.closer = osf
	data, merr := mmapFile(osf, f.indexedPrefix())
	if merr != nil {
		return f, nil // unmappable (empty file, exotic fs): plain file path
	}
	f.ra = bytes.NewReader(data)
	f.mapped = data
	f.closer = &mappedCloser{f: osf, data: data}
	return f, nil
}

// indexedPrefix returns how many leading bytes of the file the open-time
// header index accounts for: everything up to the end of the last
// segment's promised payload, clamped to the file size seen at open (a
// truncated final payload is still the index's business — the error
// surfaces at decode). For monolithic streams the whole file is the
// index's coverage.
func (f *File) indexedPrefix() int64 {
	if !f.segmented || len(f.segs) == 0 {
		return f.size
	}
	last := len(f.segs) - 1
	end := f.segOff[last] + int64(f.segs[last].PayloadBytes)
	if end > f.size {
		end = f.size
	}
	return end
}

// Mapped reports whether the handle serves payloads from a memory
// mapping (OpenFileMapped on a supporting platform).
func (f *File) Mapped() bool { return f.mapped != nil }

// mappedCloser releases the mapping before the file.
type mappedCloser struct {
	f    *os.File
	data []byte
}

func (m *mappedCloser) Close() error {
	err := munmap(m.data)
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenReaderAt validates the stream header of either container and
// builds the segment index from ra, which must serve size bytes.
// bytes.Reader and os.File both satisfy io.ReaderAt, so in-memory
// captures get the same fast path as on-disk ones.
func OpenReaderAt(ra io.ReaderAt, size int64) (*File, error) {
	f := &File{ra: ra, size: size}
	if size == 0 {
		// Distinguish "nothing there at all" from a stream cut off
		// mid-header; callers match with errors.Is(err, ErrEmpty).
		return nil, fmt.Errorf("trace: reading magic: %w", ErrEmpty)
	}
	var m [8]byte
	if err := f.readAt(m[:], 0, "trace: reading magic"); err != nil {
		return nil, err
	}
	switch m {
	case magic:
		return f, f.openMonolithic()
	case segMagic:
		return f, f.openSegmented()
	}
	return nil, fmt.Errorf("trace: bad magic %q", m)
}

// readAt fills buf from offset off, mapping short reads to the same
// errors the streaming header reads produce.
func (f *File) readAt(buf []byte, off int64, what string) error {
	n, err := f.ra.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil || err == io.EOF {
		if n == 0 && off >= f.size {
			err = io.EOF
		} else {
			err = io.ErrUnexpectedEOF
		}
	}
	return fmt.Errorf("%s: %w", what, err)
}

func (f *File) openMonolithic() error {
	var hdr [16]byte
	if err := f.readAt(hdr[:], 8, "trace: reading header"); err != nil {
		return err
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != version {
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	f.codec = binary.LittleEndian.Uint16(hdr[2:])
	f.count = binary.LittleEndian.Uint64(hdr[4:])
	if f.codec != CodecRaw && f.codec != CodecDelta {
		return fmt.Errorf("trace: unknown codec %d", f.codec)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[12:])
	if err := f.readMetaAt(metaLen, 8+16); err != nil {
		return err
	}
	if f.count > maxRecordCount {
		return fmt.Errorf("trace: implausible record count %d", f.count)
	}
	return nil
}

func (f *File) openSegmented() error {
	var hdr [8]byte
	if err := f.readAt(hdr[:], 8, "trace: reading segment-stream header"); err != nil {
		return err
	}
	v := binary.LittleEndian.Uint16(hdr[0:])
	if v != segVersion && v != segVersionV1 && v != segVersion3 {
		return fmt.Errorf("trace: unsupported segment-stream version %d", v)
	}
	f.codec = binary.LittleEndian.Uint16(hdr[2:])
	f.segmented = true
	f.seqStamped = v == segVersion3
	f.segHdr = segHdrLen(v)
	if f.codec != CodecRaw && f.codec != CodecDelta {
		return fmt.Errorf("trace: unknown codec %d", f.codec)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[4:])
	if err := f.readMetaAt(metaLen, 8+8); err != nil {
		return err
	}
	return f.walkSegments(8 + 8 + int64(metaLen))
}

func (f *File) readMetaAt(metaLen uint32, off int64) error {
	if metaLen > maxMetaLen {
		return fmt.Errorf("trace: implausible metadata length %d", metaLen)
	}
	buf := make([]byte, metaLen)
	if err := f.readAt(buf, off, "trace: reading metadata"); err != nil {
		return err
	}
	f.meta = string(buf)
	return nil
}

// walkSegments builds the segment index by hopping header to header:
// each hop reads one fixed-size header and skips PayloadBytes, so
// indexing cost is per segment, not per record — cheap enough that
// metadata-only tools (atum-stats -meta-only) never touch a payload,
// compressed or not (headers are never compressed). A final segment
// whose payload overruns the file stays in the index; the truncation
// surfaces, with its record position, when that segment is decoded.
func (f *File) walkSegments(off int64) error {
	hdr := make([]byte, 4+f.segHdr)
	for off < f.size {
		n, err := f.ra.ReadAt(hdr[:], off)
		if n < len(hdr) {
			if err == nil || err == io.EOF {
				return fmt.Errorf("trace: segment %d header: %w", len(f.segs), io.ErrUnexpectedEOF)
			}
			return fmt.Errorf("trace: segment %d header: %w", len(f.segs), err)
		}
		if [4]byte(hdr[:4]) != segMarker {
			return fmt.Errorf("trace: segment %d: bad marker %q", len(f.segs), hdr[:4])
		}
		info, err := parseSegmentHeader(hdr[4:], len(f.segs), f.codec)
		if err != nil {
			return err
		}
		if f.seqStamped {
			last := uint64(0)
			if n := len(f.segs); n > 0 {
				last = f.segs[n-1].Seq
			}
			if info.Seq <= last {
				return fmt.Errorf("trace: segment %d: sequence mark %d not above previous %d",
					info.Index, info.Seq, last)
			}
		}
		f.segBase = append(f.segBase, f.count)
		f.segOff = append(f.segOff, off+int64(len(hdr)))
		f.segs = append(f.segs, info)
		f.count += info.Records
		off += int64(len(hdr)) + int64(info.PayloadBytes)
	}
	return nil
}

// Meta returns the stream's provenance string.
func (f *File) Meta() string { return f.meta }

// Segmented reports whether the underlying stream is a segment
// container rather than a monolithic file.
func (f *File) Segmented() bool { return f.segmented }

// SeqStamped reports whether the stream's segments carry cpu/seq marks
// (a version-3 container: a per-CPU SMP stream or a MergeCPUs output).
func (f *File) SeqStamped() bool { return f.seqStamped }

// Codec returns the stream's record codec (CodecRaw or CodecDelta).
func (f *File) Codec() uint16 { return f.codec }

// Segments returns the full per-segment metadata index (nil for
// monolithic streams). Unlike the streaming Reader, the index is
// complete before any record is decoded.
func (f *File) Segments() []SegmentInfo { return f.segs }

// NumRecords returns the record count promised by the stream's headers.
// The count is untrusted until a decode succeeds: a truncated stream
// errors from Arena before delivering it.
func (f *File) NumRecords() uint64 { return f.count }

// Close releases the underlying file when the handle came from
// OpenFile; it is a no-op for OpenReaderAt handles.
func (f *File) Close() error {
	if f.closer == nil {
		return nil
	}
	return f.closer.Close()
}

// payBufPool recycles segment payload buffers across decode jobs (and
// across Arena calls): a worker checks a buffer out, reads one
// segment's payload into it, decodes, and returns it.
var payBufPool = sync.Pool{New: func() any { return new([]byte) }}

// Arena decodes the whole stream into a chunked read-only arena.
// Segmented streams decode one segment per worker-pool job (workers <=
// 0 means all cores; 1 is the serial reference path) with results
// stitched in segment order, so every workers value yields identical
// records and — on a truncated or corrupt stream — the identical
// lowest-index error the streaming path reports.
func (f *File) Arena(workers int) (*Arena, error) {
	if !f.segmented {
		// A monolithic payload has no reset points to fan out over;
		// delegate to the streaming batch decoder.
		rd, err := Open(io.NewSectionReader(f.ra, 0, f.size))
		if err != nil {
			return nil, err
		}
		return rd.Arena()
	}
	chunks, err := par.Map(workers, len(f.segs), f.Segment)
	if err != nil {
		return nil, err
	}
	a := &Arena{}
	for _, c := range chunks {
		if len(c) > 0 {
			a.chunks = append(a.chunks, c)
			a.n += len(c)
		}
	}
	return a, nil
}

// ArenaCPU decodes only the segments captured by one processor of a
// sequence-stamped (v3) stream into a chunked arena — a single core's
// replay out of a per-CPU or merged SMP trace. cpu < 0 selects every
// segment (identical to Arena). Chunk order follows segment order, so
// the result is deterministic for any worker count.
func (f *File) ArenaCPU(workers, cpu int) (*Arena, error) {
	if cpu < 0 {
		return f.Arena(workers)
	}
	if !f.seqStamped {
		return nil, fmt.Errorf("trace: stream is not sequence-stamped; no per-CPU attribution to filter on")
	}
	var idx []int
	for i, s := range f.segs {
		if int(s.CPU) == cpu {
			idx = append(idx, i)
		}
	}
	chunks, err := par.Map(workers, len(idx), func(i int) ([]Record, error) {
		return f.Segment(idx[i])
	})
	if err != nil {
		return nil, err
	}
	a := &Arena{}
	for _, c := range chunks {
		if len(c) > 0 {
			a.chunks = append(a.chunks, c)
			a.n += len(c)
		}
	}
	return a, nil
}

// Records decodes the whole stream into one contiguous slice; Arena
// does the work, Flatten stitches.
func (f *File) Records(workers int) ([]Record, error) {
	a, err := f.Arena(workers)
	if err != nil {
		return nil, err
	}
	return a.Flatten(), nil
}

// minEncRecordBytes is the smallest possible encoded record (delta:
// header byte + 1-byte varint); it bounds how many records a payload of
// known length can hold, so a forged count cannot force a giant
// allocation.
const minEncRecordBytes = 2

// Segment decodes segment i (0-based in Segments() order) into a fresh
// record slice, reporting errors exactly as the streaming decoder
// would: truncation wraps io.ErrUnexpectedEOF and names the absolute
// record index. Each segment is an independent decode job (the delta
// codec resets at segment boundaries), which is what makes per-segment
// caching sound: a cached slice is identical to a fresh decode. Safe
// for concurrent callers.
func (f *File) Segment(i int) ([]Record, error) {
	start := time.Now()
	defer func() { mDecodeSegSecs.Observe(time.Since(start).Seconds()) }()
	info := f.segs[i]
	// avail is what the file actually holds of the promised payload;
	// only the final segment can come up short (walkSegments stops
	// there).
	avail := f.size - f.segOff[i]
	if avail < 0 {
		avail = 0
	}
	want := int64(info.PayloadBytes)
	short := want > avail
	if short {
		want = avail
	}
	if info.Records == 0 && info.Encoding == SegEncRaw {
		if short {
			return nil, fmt.Errorf("trace: segment %d payload: %w", info.Index, io.ErrUnexpectedEOF)
		}
		return nil, nil
	}

	// Fetch the stored payload: in place from the mapping when there is
	// one (the zero-copy path — the batch codec then scans file pages
	// directly), via a pooled buffer otherwise.
	var stored []byte
	if f.mapped != nil {
		stored = f.mapped[f.segOff[i] : f.segOff[i]+want]
	} else if want > 0 {
		pb := payBufPool.Get().(*[]byte)
		defer payBufPool.Put(pb)
		if int64(cap(*pb)) < want {
			*pb = make([]byte, want)
		}
		stored = (*pb)[:want]
		if err := f.readAt(stored, f.segOff[i], fmt.Sprintf("trace: segment %d payload", info.Index)); err != nil {
			return nil, err
		}
	}

	// Compressed segments inflate into a pooled buffer; from here on the
	// two encodings share one decode.
	payload := stored
	if info.Encoding != SegEncRaw {
		ib := infBufPool.Get().(*[]byte)
		defer infBufPool.Put(ib)
		data, infShort, err := inflateSegment(info, stored, short, ib)
		if err != nil {
			return nil, err
		}
		payload, short = data, infShort
	}
	if info.Records == 0 {
		if short {
			return nil, fmt.Errorf("trace: segment %d payload: %w", info.Index, io.ErrUnexpectedEOF)
		}
		return nil, nil
	}

	// The header's record count sizes the chunk, clamped by what the
	// payload could possibly encode (counts are untrusted input).
	alloc := info.Records
	if max := uint64(len(payload))/minEncRecordBytes + 1; alloc > max {
		alloc = max
	}
	dst := make([]Record, alloc)
	base := f.segBase[i]

	var nrec int
	var derr *batchError
	if f.codec == CodecRaw {
		nrec, _ = decodeRawBatch(dst, payload)
	} else {
		var st deltaState
		nrec, _, derr = decodeDeltaBatch(dst, payload, &st)
	}
	if derr != nil && !derr.truncated {
		return nil, recordError(derr, base+uint64(nrec))
	}
	if uint64(nrec) < info.Records {
		// The payload ran out before the count was met — the same
		// record-indexed truncation the streaming window reports.
		field := ""
		if derr != nil {
			field = derr.field
		}
		return nil, recordError(&batchError{field: field, truncated: true}, base+uint64(nrec))
	}
	if short {
		// All records decoded but the framing promised more payload
		// than the file holds; the streaming path fails discarding the
		// tail, and so do we.
		return nil, fmt.Errorf("trace: segment %d payload: %w", info.Index, io.ErrUnexpectedEOF)
	}
	mDecodeSegments.Inc()
	mDecodeRecords.Add(uint64(nrec))
	mDecodeBytes.Add(uint64(len(payload)))
	return dst[:nrec:nrec], nil
}

// SegmentPayload returns segment i's stored payload exactly as the
// container holds it — still deflated for flate segments — possibly
// shorter than the header's PayloadBytes when the file is truncated
// (DecodeSegment detects and reports that). On a mapped handle the
// slice aliases the mapping: zero copies, read-only, invalid after
// Close. Pair it with Segments()[i] and DecodeSegment for a decode loop
// that allocates nothing per segment in steady state.
func (f *File) SegmentPayload(i int) ([]byte, error) {
	info := f.segs[i]
	avail := f.size - f.segOff[i]
	if avail < 0 {
		avail = 0
	}
	want := int64(info.PayloadBytes)
	if want > avail {
		want = avail
	}
	if f.mapped != nil {
		return f.mapped[f.segOff[i] : f.segOff[i]+want], nil
	}
	buf := make([]byte, want)
	if err := f.readAt(buf, f.segOff[i], fmt.Sprintf("trace: segment %d payload", info.Index)); err != nil {
		return nil, err
	}
	return buf, nil
}
