package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Segment container. ATUM's reserved buffer holds a few seconds of
// execution; long traces are an append-only stream of buffer dumps. The
// segmented container mirrors that: after the stream header (see
// file.go) come zero or more length-prefixed segments, each one
// buffer's worth of records plus the capture-side metadata the OS knew
// at spill time:
//
//	marker  [4]byte  "ASEG"
//	index   uint32   0, 1, 2, ... (strictly sequential)
//	count   uint64   records in this segment
//	dropped uint64   records lost while this segment was being captured
//	cycles  uint64   dilation cycles charged during this segment
//	payLen  uint64   stored payload bytes that follow
//	enc     uint8    payload encoding (SegEncRaw / SegEncFlate); v2 only
//	rawLen  uint64   payload bytes after inflation; v2 only (== payLen
//	                 for raw segments)
//	cpu     uint16   capturing processor id; v3 only
//	seq     uint64   global sequence mark (machine-wide spill order,
//	                 strictly increasing within a stream); v3 only
//	payload [payLen]byte   count records in the stream's codec,
//	                       stored per enc
//
// Every field is little endian. Stream version 1 lacks the enc/rawLen
// fields (every v1 payload is stored raw); version 3 appends the SMP
// cpu/seq stamps; readers accept all three. Headers are never
// compressed, so the index walk stays header-only. The delta codec's
// inter-record state resets at each segment boundary, so any segment
// can be decoded knowing only the stream codec — and the concatenation
// of all segments' records is byte-identical to the same capture
// written monolithically, whatever each segment's encoding.
//
// The cpu/seq pair is what makes multiprocessor capture mergeable: each
// core spills into its own stream, every spill draws the next value
// from one machine-wide sequence counter, and trace.MergeCPUs later
// interleaves the per-CPU segments back into global spill order by seq
// alone — no cross-core clock needed, exactly the "global sequence
// mark" the roadmap's MP tracing lineage calls for.

// segMarker guards each segment header; a payload/payLen mismatch (or
// corrupt payload) desynchronises the stream and is caught here rather
// than silently decoding garbage.
var segMarker = [4]byte{'A', 'S', 'E', 'G'}

// segHeaderBytes is the fixed v2 header size after the marker;
// segHeaderBytesV1 is the version-1 size (no enc/rawLen fields);
// segHeaderBytesV3 appends the cpu/seq stamps.
const (
	segHeaderBytes   = 45
	segHeaderBytesV1 = 36
	segHeaderBytesV3 = 55
)

// maxSegPayload bounds one segment's payload length from an untrusted
// header.
const maxSegPayload = maxRecordCount * RecordBytes

// SegmentInfo is the per-segment metadata carried by the segmented
// container.
type SegmentInfo struct {
	Index          uint32
	Records        uint64 // records stored in the segment
	Dropped        uint64 // records lost during the segment's capture interval
	DilationCycles uint64 // dilation cycles charged while capturing it
	PayloadBytes   uint64 // stored payload size (compressed for flate segments)
	Encoding       uint8  // payload encoding (SegEncRaw / SegEncFlate)
	RawBytes       uint64 // payload size after inflation (== PayloadBytes when raw)
	CPU            uint16 // capturing processor (v3 streams; 0 otherwise)
	Seq            uint64 // global sequence mark (v3 streams; sequence marks start at 1, so 0 means unstamped)
}

func (s SegmentInfo) String() string {
	base := fmt.Sprintf("segment %d: %d records, %d dropped, %d dilation cycles, %d bytes",
		s.Index, s.Records, s.Dropped, s.DilationCycles, s.PayloadBytes)
	if s.Encoding != SegEncRaw {
		base += fmt.Sprintf(" (%s, %d bytes uncompressed)", EncodingName(s.Encoding), s.RawBytes)
	}
	if s.Seq != 0 {
		base += fmt.Sprintf(" [cpu %d seq %d]", s.CPU, s.Seq)
	}
	return base
}

// SegmentWriter appends buffer dumps to a segmented trace stream. The
// stream header is written immediately; each WriteSegment appends one
// length-prefixed segment and flushes, so the output file is a valid
// (if still growing) trace after every spill — a capture killed
// mid-run loses at most the records still in the reserved buffer.
type SegmentWriter struct {
	w       *bufio.Writer
	codec   uint16
	enc     uint8
	next    uint32
	seqOn   bool         // v3 stream: segments carry cpu/seq stamps
	lastSeq uint64       // last stamp written (stamps must strictly increase)
	pay     bytes.Buffer // per-segment encode buffer, reused
	comp    bytes.Buffer // per-segment compression buffer, reused
	closed  bool
	err     error // first write error; sticky

	tee func(StreamSegment) // observes segments after they reach the sink
}

// SetEncoding selects the payload encoding for subsequently written
// segments. The default is SegEncRaw. A flate segment that fails to
// shrink below its raw form is stored raw anyway — the flag is a
// per-segment fact, not a stream-wide promise — so enabling compression
// never grows a stream.
func (sw *SegmentWriter) SetEncoding(enc uint8) error {
	if enc > segEncMax {
		return fmt.Errorf("trace: unknown payload encoding %d", enc)
	}
	sw.enc = enc
	return nil
}

// Tee arranges for fn to observe every subsequently written segment,
// invoked after the segment has reached the sink — so fn only ever sees
// data a re-read of the file would also see. The StreamSegment's
// payload aliases the writer's reusable encode buffer and is valid only
// during the call; fn must decode or copy before returning. The tee is
// observational: its behaviour never affects the stream, and a slow fn
// only delays the writer (the capture side already freezes the machine
// during a spill, so the delay costs no simulated time).
func (sw *SegmentWriter) Tee(fn func(StreamSegment)) { sw.tee = fn }

// NewSegmentWriter writes the segmented stream header to w and returns
// the writer positioned for the first segment.
func NewSegmentWriter(w io.Writer, codec uint16, meta string) (*SegmentWriter, error) {
	return newSegmentWriter(w, codec, meta, segVersion)
}

// NewSegmentWriterV3 opens a version-3 (sequence-stamped) stream:
// every segment must be written through WriteSegmentSeq with a CPU id
// and a strictly increasing global sequence mark. Per-CPU SMP spill
// services and MergeCPUs write these; uniprocessor captures keep
// writing v2 so their bytes are unchanged.
func NewSegmentWriterV3(w io.Writer, codec uint16, meta string) (*SegmentWriter, error) {
	sw, err := newSegmentWriter(w, codec, meta, segVersion3)
	if err != nil {
		return nil, err
	}
	sw.seqOn = true
	return sw, nil
}

func newSegmentWriter(w io.Writer, codec uint16, meta string, version uint16) (*SegmentWriter, error) {
	if codec != CodecRaw && codec != CodecDelta {
		return nil, fmt.Errorf("trace: unknown codec %d", codec)
	}
	if len(meta) > maxMetaLen {
		return nil, fmt.Errorf("trace: metadata too long (%d bytes)", len(meta))
	}
	sw := &SegmentWriter{w: bufio.NewWriter(w), codec: codec}
	if _, err := sw.w.Write(segMagic[:]); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], codec)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(meta)))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := sw.w.WriteString(meta); err != nil {
		return nil, err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteSegment appends one buffer dump with its capture-side counters
// and flushes it to the sink, returning the header it wrote (stored and
// uncompressed sizes, the encoding actually used). Empty segments are
// legal (a spill can race an already-drained buffer) and always stored
// raw. Errors are sticky: once the sink fails, every later call reports
// the same error so a capture loop can fall back to counted-drop mode.
func (sw *SegmentWriter) WriteSegment(recs []Record, dropped, dilationCycles uint64) (SegmentInfo, error) {
	if sw.seqOn {
		return SegmentInfo{}, fmt.Errorf("trace: sequence-stamped (v3) stream: use WriteSegmentSeq")
	}
	return sw.writeSegment(recs, dropped, dilationCycles, 0, 0)
}

// WriteSegmentSeq appends one buffer dump to a v3 stream, stamped with
// the capturing CPU and a global sequence mark. Marks start at 1 and
// must strictly increase within the stream (per-CPU streams drawing
// from one shared counter satisfy this naturally; so does a merged
// stream, whose marks are the union).
func (sw *SegmentWriter) WriteSegmentSeq(recs []Record, dropped, dilationCycles uint64, cpu uint16, seq uint64) (SegmentInfo, error) {
	if !sw.seqOn {
		return SegmentInfo{}, fmt.Errorf("trace: not a sequence-stamped stream: use WriteSegment")
	}
	if seq <= sw.lastSeq {
		return SegmentInfo{}, fmt.Errorf("trace: sequence mark %d not above previous %d", seq, sw.lastSeq)
	}
	info, err := sw.writeSegment(recs, dropped, dilationCycles, cpu, seq)
	if err == nil {
		sw.lastSeq = seq
	}
	return info, err
}

func (sw *SegmentWriter) writeSegment(recs []Record, dropped, dilationCycles uint64, cpu uint16, seq uint64) (SegmentInfo, error) {
	if sw.err != nil {
		return SegmentInfo{}, sw.err
	}
	if sw.closed {
		return SegmentInfo{}, fmt.Errorf("trace: segment writer closed")
	}
	// Encode to memory first: payLen must precede the payload, and a
	// sink error mid-segment must not leave a half-written segment
	// unaccounted for.
	sw.pay.Reset()
	var encErr error
	switch sw.codec {
	case CodecRaw:
		encErr = writeRaw(&sw.pay, recs)
	case CodecDelta:
		encErr = writeDelta(&sw.pay, recs)
	}
	if encErr != nil {
		return SegmentInfo{}, encErr
	}
	raw := sw.pay.Bytes()
	enc := SegEncRaw
	stored := raw
	if sw.enc == SegEncFlate && len(raw) > 0 {
		sw.comp.Reset()
		if err := deflateInto(&sw.comp, raw); err != nil {
			return SegmentInfo{}, err
		}
		if sw.comp.Len() < len(raw) {
			enc, stored = SegEncFlate, sw.comp.Bytes()
		}
	}
	info := SegmentInfo{
		Index:          sw.next,
		Records:        uint64(len(recs)),
		Dropped:        dropped,
		DilationCycles: dilationCycles,
		PayloadBytes:   uint64(len(stored)),
		Encoding:       enc,
		RawBytes:       uint64(len(raw)),
		CPU:            cpu,
		Seq:            seq,
	}
	var hdr [4 + segHeaderBytesV3]byte
	copy(hdr[:4], segMarker[:])
	binary.LittleEndian.PutUint32(hdr[4:], info.Index)
	binary.LittleEndian.PutUint64(hdr[8:], info.Records)
	binary.LittleEndian.PutUint64(hdr[16:], dropped)
	binary.LittleEndian.PutUint64(hdr[24:], dilationCycles)
	binary.LittleEndian.PutUint64(hdr[32:], info.PayloadBytes)
	hdr[40] = enc
	binary.LittleEndian.PutUint64(hdr[41:], info.RawBytes)
	hdrLen := 4 + segHeaderBytes
	if sw.seqOn {
		binary.LittleEndian.PutUint16(hdr[49:], cpu)
		binary.LittleEndian.PutUint64(hdr[51:], seq)
		hdrLen = 4 + segHeaderBytesV3
	}
	if _, err := sw.w.Write(hdr[:hdrLen]); err != nil {
		return SegmentInfo{}, sw.fail(err)
	}
	if _, err := sw.w.Write(stored); err != nil {
		return SegmentInfo{}, sw.fail(err)
	}
	if err := sw.w.Flush(); err != nil {
		return SegmentInfo{}, sw.fail(err)
	}
	if sw.tee != nil {
		sw.tee(StreamSegment{Codec: sw.codec, Info: info, Payload: stored})
	}
	sw.next++
	return info, nil
}

func (sw *SegmentWriter) fail(err error) error {
	sw.err = err
	return err
}

// Segments returns how many segments have been written.
func (sw *SegmentWriter) Segments() uint32 { return sw.next }

// Err returns the sticky sink error, if any.
func (sw *SegmentWriter) Err() error { return sw.err }

// Close flushes the stream. The container is append-only, so there is
// no trailer to write; Close exists to surface buffered sink errors and
// to fence off further writes.
func (sw *SegmentWriter) Close() error {
	if sw.closed {
		return sw.err
	}
	sw.closed = true
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// nextSegment reads the next segment header, appends its metadata to
// d.segs and credits its record count to d.count. A clean EOF at the
// marker is the normal end of stream (io.EOF); anything shorter is a
// truncated stream.
func (d *Decoder) nextSegment() error {
	var mk [4]byte
	if _, err := io.ReadFull(d.br, mk[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: segment %d header: %w", len(d.segs), promisedEOF(err))
	}
	if mk != segMarker {
		return fmt.Errorf("trace: segment %d: bad marker %q", len(d.segs), mk)
	}
	var hdr [segHeaderBytesV3]byte
	if _, err := io.ReadFull(d.br, hdr[:d.segHdr]); err != nil {
		return fmt.Errorf("trace: segment %d header: %w", len(d.segs), promisedEOF(err))
	}
	info, err := parseSegmentHeader(hdr[:d.segHdr], len(d.segs), d.codec)
	if err != nil {
		return err
	}
	if d.segHdr == segHeaderBytesV3 {
		last := uint64(0)
		if n := len(d.segs); n > 0 {
			last = d.segs[n-1].Seq
		}
		if info.Seq <= last {
			return fmt.Errorf("trace: segment %d: sequence mark %d not above previous %d",
				info.Index, info.Seq, last)
		}
	}
	d.segs = append(d.segs, info)
	d.count += info.Records
	d.segPay = info.PayloadBytes
	mDecodeSegments.Inc()
	// Segments are independently encoded: reset the delta codec state.
	d.st = deltaState{}
	if info.Encoding != SegEncRaw {
		return d.enterCompressedSegment(info)
	}
	return nil
}

// parseSegmentHeader decodes and validates the fixed fields after the
// "ASEG" marker; hdr's length selects the stream version (36 bytes for
// v1, 45 for v2, 55 for v3). Both readers share it — the streaming
// decoder above and the random-access index walk (readerat.go) — so a
// malformed header fails with the same message from either entry point.
func parseSegmentHeader(hdr []byte, at int, codec uint16) (SegmentInfo, error) {
	info := SegmentInfo{
		Index:          binary.LittleEndian.Uint32(hdr[0:]),
		Records:        binary.LittleEndian.Uint64(hdr[4:]),
		Dropped:        binary.LittleEndian.Uint64(hdr[12:]),
		DilationCycles: binary.LittleEndian.Uint64(hdr[20:]),
		PayloadBytes:   binary.LittleEndian.Uint64(hdr[28:]),
	}
	if len(hdr) >= segHeaderBytes {
		info.Encoding = hdr[36]
		info.RawBytes = binary.LittleEndian.Uint64(hdr[37:])
	}
	if len(hdr) >= segHeaderBytesV3 {
		info.CPU = binary.LittleEndian.Uint16(hdr[45:])
		info.Seq = binary.LittleEndian.Uint64(hdr[47:])
		if info.Seq == 0 {
			return info, fmt.Errorf("trace: segment %d: zero sequence mark in a stamped stream", info.Index)
		}
	}
	if info.Encoding == SegEncRaw {
		// The raw payload IS the codec stream; rawLen is informational
		// there, so normalise rather than trusting a field with nothing
		// to say (v1 headers do not carry it at all).
		info.RawBytes = info.PayloadBytes
	}
	if info.Index != uint32(at) {
		return info, fmt.Errorf("trace: segment %d: out-of-order index %d", at, info.Index)
	}
	if info.Encoding > segEncMax {
		return info, fmt.Errorf("trace: segment %d: unknown payload encoding %d", info.Index, info.Encoding)
	}
	if info.Records > maxRecordCount {
		return info, fmt.Errorf("trace: segment %d: implausible record count %d", info.Index, info.Records)
	}
	if info.PayloadBytes > maxSegPayload {
		return info, fmt.Errorf("trace: segment %d: implausible payload length %d", info.Index, info.PayloadBytes)
	}
	if info.RawBytes > maxSegPayload {
		return info, fmt.Errorf("trace: segment %d: implausible uncompressed length %d", info.Index, info.RawBytes)
	}
	if codec == CodecRaw && info.RawBytes != info.Records*RecordBytes {
		return info, fmt.Errorf("trace: segment %d: payload length %d does not match %d raw records",
			info.Index, info.RawBytes, info.Records)
	}
	return info, nil
}
