package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// buildSegmented assembles a segmented stream header followed by raw
// segment material the test shapes by hand.
func buildSegmented(codec uint16, tail []byte) []byte {
	var b bytes.Buffer
	b.Write(segMagic[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], segVersion)
	binary.LittleEndian.PutUint16(hdr[2:], codec)
	b.Write(hdr[:])
	b.Write(tail)
	return b.Bytes()
}

// segmentBlob encodes one segment (header + payload) with an arbitrary
// declared payload length, letting tests declare more than they attach.
func segmentBlob(index uint32, records uint64, payload []byte, declaredLen uint64) []byte {
	var b bytes.Buffer
	b.Write(segMarker[:])
	var hdr [segHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], index)
	binary.LittleEndian.PutUint64(hdr[4:], records)
	binary.LittleEndian.PutUint64(hdr[28:], declaredLen)
	b.Write(hdr[:])
	b.Write(payload)
	return b.Bytes()
}

// TestOpenDegenerateInputs drives both read paths — streaming Open and
// random-access OpenReaderAt — over the degenerate inputs a capture
// pipeline actually produces when it is killed or misconfigured, and
// pins that each failure is distinguishable: empty input is ErrEmpty,
// truncations are record- or segment-indexed wrapped
// io.ErrUnexpectedEOF, and a bare stream header is a legal zero-record
// trace, not an error.
func TestOpenDegenerateInputs(t *testing.T) {
	// A monolithic header promising one record with no payload.
	var mono bytes.Buffer
	if err := WriteFile(&mono, []Record{{Kind: KindIFetch, Addr: 0x200, Width: 4}}, CodecRaw); err != nil {
		t.Fatal(err)
	}
	monoTruncated := mono.Bytes()[:8+16] // magic + header, payload gone

	// A segmented stream whose only segment declares 8 payload bytes
	// but the file ends after 4.
	rec := make([]byte, RecordBytes)
	Record{Kind: KindIFetch, Addr: 0x200, Width: 4}.Encode(rec)
	overrun := buildSegmented(CodecRaw, segmentBlob(0, 1, rec[:4], RecordBytes))

	// A segmented stream with zero records whose declared payload
	// overruns the file: the truncation must still be segment-indexed.
	// (Delta codec: raw's records↔payload consistency check would
	// reject the header before the truncation is even reached.)
	emptyOverrun := buildSegmented(CodecDelta, segmentBlob(0, 0, nil, 0)[:4+segHeaderBytes])
	// Declare 16 payload bytes, attach none (payLen sits at header
	// offset 28, after the marker).
	binary.LittleEndian.PutUint64(emptyOverrun[len(emptyOverrun)-segHeaderBytes+28:], 16)

	// A segment header cut off halfway.
	shortHeader := buildSegmented(CodecDelta, segmentBlob(0, 0, nil, 0)[:10])

	cases := []struct {
		name    string
		in      []byte
		records int    // when wantErr == nil
		wantErr error  // matched with errors.Is
		substr  string // and the message names the failing record/segment
	}{
		{name: "empty file", in: nil, wantErr: ErrEmpty},
		{name: "truncated magic", in: magic[:3], wantErr: io.ErrUnexpectedEOF, substr: "magic"},
		{name: "bare segmented header zero segments", in: buildSegmented(CodecDelta, nil), records: 0},
		{name: "monolithic header no payload", in: monoTruncated, wantErr: io.ErrUnexpectedEOF, substr: "record 0"},
		{name: "segment payload overruns file", in: overrun, wantErr: io.ErrUnexpectedEOF, substr: "record 0"},
		{name: "empty segment payload overruns file", in: emptyOverrun, wantErr: io.ErrUnexpectedEOF, substr: "segment 0"},
		{name: "segment header cut short", in: shortHeader, wantErr: io.ErrUnexpectedEOF, substr: "segment 0 header"},
	}

	type path struct {
		name string
		read func([]byte) ([]Record, error)
	}
	paths := []path{
		{"streaming", func(in []byte) ([]Record, error) {
			rd, err := Open(bytes.NewReader(in))
			if err != nil {
				return nil, err
			}
			return rd.Records()
		}},
		{"readerat", func(in []byte) ([]Record, error) {
			f, err := OpenReaderAt(bytes.NewReader(in), int64(len(in)))
			if err != nil {
				return nil, err
			}
			return f.Records(2)
		}},
	}

	for _, tc := range cases {
		for _, p := range paths {
			t.Run(tc.name+"/"+p.name, func(t *testing.T) {
				recs, err := p.read(tc.in)
				if tc.wantErr == nil {
					if err != nil {
						t.Fatalf("unexpected error: %v", err)
					}
					if len(recs) != tc.records {
						t.Fatalf("decoded %d records, want %d", len(recs), tc.records)
					}
					return
				}
				if err == nil {
					t.Fatalf("decoded %d records, want error %v", len(recs), tc.wantErr)
				}
				if !errors.Is(err, tc.wantErr) {
					t.Errorf("error %q does not wrap %v", err, tc.wantErr)
				}
				if tc.substr != "" && !strings.Contains(err.Error(), tc.substr) {
					t.Errorf("error %q does not name %q", err, tc.substr)
				}
				// ErrEmpty is reserved for genuinely empty input; a
				// truncated stream must never read as merely empty.
				if tc.wantErr != ErrEmpty && errors.Is(err, ErrEmpty) {
					t.Errorf("truncated input misreported as empty: %q", err)
				}
			})
		}
	}
}

// TestErrEmptyDistinguishable pins the motivating property directly:
// before the fix both an empty file and some truncations surfaced as a
// bare io.EOF wrap, so callers could not tell "no trace yet" from "half
// a trace".
func TestErrEmptyDistinguishable(t *testing.T) {
	_, err := Open(bytes.NewReader(nil))
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("streaming open of empty input: %v, want ErrEmpty", err)
	}
	_, err = OpenReaderAt(bytes.NewReader(nil), 0)
	if !errors.Is(err, ErrEmpty) {
		t.Errorf("random-access open of empty input: %v, want ErrEmpty", err)
	}
	_, err = Open(bytes.NewReader(magic[:5]))
	if errors.Is(err, ErrEmpty) {
		t.Errorf("truncated magic misreported as empty: %v", err)
	}
}
