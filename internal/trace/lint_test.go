package trace

import (
	"strings"
	"testing"
)

func TestLintCleanTrace(t *testing.T) {
	recs := []Record{
		{Kind: KindIFetch, Addr: 0x80000000, Width: 4, User: false, PID: 0},
		{Kind: KindCtxSwitch, Extra: 1, PID: 1},
		{Kind: KindException, Extra: 0x40, PID: 1},
		{Kind: KindIFetch, Addr: 0x200, Width: 4, User: true, PID: 1},
		{Kind: KindDRead, Addr: 0x1000, Width: 4, User: true, PID: 1},
		{Kind: KindPTERead, Addr: 0x80010000, Width: 4, PID: 1},
		{Kind: KindPTERead, Addr: 0x8000, Width: 4, PID: 1, Phys: true},
		{Kind: KindIFetch, Addr: 0x80000040, Width: 4, User: false, PID: 1},
	}
	if v := Lint(recs); len(v) != 0 {
		t.Errorf("clean trace flagged: %v", v)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want string
	}{
		{"misaligned ifetch", Record{Kind: KindIFetch, Addr: 0x201, Width: 4, User: true, PID: 1}, "aligned"},
		{"short ifetch", Record{Kind: KindIFetch, Addr: 0x200, Width: 1, User: true, PID: 1}, "aligned"},
		{"user ifetch from S0", Record{Kind: KindIFetch, Addr: 0x80000200, Width: 4, User: true, PID: 1}, "system space"},
		{"kernel ifetch from P0", Record{Kind: KindIFetch, Addr: 0x200, Width: 4, User: false, PID: 1}, "process space"},
		{"virtual PTE outside S0", Record{Kind: KindPTERead, Addr: 0x1000, Width: 4, PID: 1}, "outside system space"},
		{"pid drift", Record{Kind: KindDRead, Addr: 0x1000, Width: 4, User: true, PID: 9}, "last switch installed"},
		{"bad width", Record{Kind: KindDRead, Addr: 0x1000, Width: 3, User: true, PID: 1}, "invalid width"},
	}
	for _, c := range cases {
		recs := []Record{
			{Kind: KindCtxSwitch, Extra: 1, PID: 1},
			c.rec,
		}
		v := Lint(recs)
		if len(v) == 0 {
			t.Errorf("%s: not flagged", c.name)
			continue
		}
		if !strings.Contains(strings.Join(v, "\n"), c.want) {
			t.Errorf("%s: violations %v missing %q", c.name, v, c.want)
		}
	}
}

func TestLintBadSwitchMarker(t *testing.T) {
	recs := []Record{{Kind: KindCtxSwitch, Extra: 2, PID: 3}}
	v := Lint(recs)
	if len(v) == 0 || !strings.Contains(v[0], "announces pid 2 but carries 3") {
		t.Errorf("violations: %v", v)
	}
}

// TestLintMarkerClasses covers the marker-specific violation classes:
// exception records emitted through the memory-reference path (nonzero
// width) and context-switch markers that announce the already-current
// PID (a patch firing on context load rather than context change).
func TestLintMarkerClasses(t *testing.T) {
	sw := func(pid uint8) Record { return Record{Kind: KindCtxSwitch, Extra: uint16(pid), PID: pid} }
	cases := []struct {
		name string
		recs []Record
		want string // "" means clean
	}{
		{
			"exception with width",
			[]Record{sw(1), {Kind: KindException, Extra: 0x40, PID: 1, Width: 4}},
			"exception marker carries width 4",
		},
		{
			"exception clean",
			[]Record{sw(1), {Kind: KindException, Extra: 0x40, PID: 1}},
			"",
		},
		{
			"redundant switch",
			[]Record{sw(1), sw(1)},
			"announces already-current pid 1",
		},
		{
			"alternating switches clean",
			[]Record{sw(1), sw(2), sw(1)},
			"",
		},
		{
			"first switch never redundant",
			[]Record{sw(0)}, // PID 0 matches the zero value; curPID starts unknown
			"",
		},
	}
	for _, c := range cases {
		v := Lint(c.recs)
		joined := strings.Join(v, "\n")
		if c.want == "" {
			if len(v) != 0 {
				t.Errorf("%s: flagged clean trace: %v", c.name, v)
			}
		} else if !strings.Contains(joined, c.want) {
			t.Errorf("%s: violations %v missing %q", c.name, v, c.want)
		}
	}
}

// TestLintOrderNumeric pins the report ordering: by first-offending
// record index as a number, not as a string (which would put record 10
// before record 9).
func TestLintOrderNumeric(t *testing.T) {
	recs := make([]Record, 12)
	for i := range recs {
		recs[i] = Record{Kind: KindIFetch, Addr: 0x200, Width: 4, User: true, PID: 0}
	}
	// First violation class appears at record 9, second at record 10.
	recs[9] = Record{Kind: KindIFetch, Addr: 0x201, Width: 4, User: true, PID: 0}
	recs[10] = Record{Kind: KindDRead, Addr: 0x1000, Width: 3, User: true, PID: 0}
	v := Lint(recs)
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	if !strings.HasPrefix(v[0], "record 9:") || !strings.HasPrefix(v[1], "record 10:") {
		t.Errorf("violations out of numeric order: %v", v)
	}
}

// TestLintFloodCapPerClass: a corrupt trace tripping several classes
// many times still yields exactly one line per class, each tagged with
// its stable ID.
func TestLintFloodCapPerClass(t *testing.T) {
	var recs []Record
	for i := 0; i < 40; i++ {
		recs = append(recs,
			Record{Kind: KindIFetch, Addr: 0x201, Width: 4, User: true, PID: 0}, // ifetch-align
			Record{Kind: KindDRead, Addr: 0x1000, Width: 3, User: true, PID: 0}, // width
			Record{Kind: KindPTERead, Addr: 0x1000, Width: 4, PID: 0},           // pte-space
		)
	}
	v := Lint(recs)
	if len(v) != 3 {
		t.Fatalf("want one line per violation class (3), got %d: %v", len(v), v)
	}
	for _, class := range []string{LintIFetchAlign, LintWidth, LintPTESpace} {
		tag := "[" + class + "]"
		n := strings.Count(strings.Join(v, "\n"), tag)
		if n != 1 {
			t.Errorf("class %s rendered %d times, want exactly 1: %v", class, n, v)
		}
	}
	for _, line := range v {
		if !strings.Contains(line, "40 occurrence(s)") {
			t.Errorf("aggregated count missing from %q", line)
		}
	}
}

// TestLintClassIDsStable: every emitted tag is a registered class ID,
// and the exported list stays in sync with what Lint can produce.
func TestLintClassIDsStable(t *testing.T) {
	recs := []Record{
		{Kind: NumKinds, PID: 0},                                           // kind
		{Kind: KindCtxSwitch, Extra: 2, PID: 3},                            // switch-pid
		{Kind: KindCtxSwitch, Extra: 3, PID: 3},                            // switch-redundant
		{Kind: KindException, Width: 4, PID: 3},                            // exception-width
		{Kind: KindDRead, Addr: 0x1000, Width: 3, User: true, PID: 9},      // width, pid-drift
		{Kind: KindIFetch, Addr: 0x201, Width: 4, User: true, PID: 3},      // ifetch-align
		{Kind: KindIFetch, Addr: 0x200, Width: 4, Phys: true, PID: 3},      // ifetch-phys, ifetch-kern-p0
		{Kind: KindIFetch, Addr: 0x80000200, Width: 4, User: true, PID: 3}, // ifetch-user-s0
		{Kind: KindPTERead, Addr: 0x1000, Width: 4, PID: 3},                // pte-space
	}
	joined := strings.Join(Lint(recs), "\n")
	// seg-raw-len is a container-framing class (LintContainer, which
	// needs a *File); its coverage lives in TestLintSegRawLen.
	for _, class := range LintClasses() {
		if class == LintSegRawLen {
			continue
		}
		if !strings.Contains(joined, "["+class+"]") {
			t.Errorf("class %s not exercised: %s", class, joined)
		}
	}
}

func TestLintAggregatesCounts(t *testing.T) {
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, Record{Kind: KindIFetch, Addr: 0x201, Width: 4, User: true, PID: 0})
	}
	v := Lint(recs)
	if len(v) != 1 {
		t.Fatalf("want one aggregated violation, got %d", len(v))
	}
	if !strings.Contains(v[0], "50 occurrence(s)") {
		t.Errorf("count missing: %v", v)
	}
}
