//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The caller falls back to
// plain reads on any error (zero-size files cannot be mapped, and some
// filesystems refuse).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
