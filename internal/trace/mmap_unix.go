//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The caller falls back to
// plain reads on any error (zero-size files cannot be mapped, and some
// filesystems refuse). The mapping is private: a MAP_SHARED map of a
// file a spill service is still appending to would expose concurrent
// writes landing in the final page's rounded-up slack, so payload
// aliases could see bytes the open-time index never promised.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(data []byte) error { return syscall.Munmap(data) }
