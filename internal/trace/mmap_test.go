package trace

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestOpenFileMappedAppendIsolation: the mapping covers only the
// indexed prefix, privately. A spill service appending segments to the
// same file after the reader opened it must not change what the open
// handle decodes — the regression was a MAP_SHARED map of the whole
// (page-rounded) file, through which late writes landing in the final
// page's slack became visible to payload aliases the open-time index
// never promised.
func TestOpenFileMappedAppendIsolation(t *testing.T) {
	recs := makeTrace(4000, 71)
	b := writeSegmentedEnc(t, recs, 5, CodecDelta, SegEncFlate, "append-iso")
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFileMapped(path)
	if err != nil {
		t.Fatalf("OpenFileMapped: %v", err)
	}
	defer f.Close()
	if runtime.GOOS == "linux" && !f.Mapped() {
		t.Fatal("mapping unexpectedly unavailable on linux")
	}
	if f.Mapped() {
		if want := f.indexedPrefix(); int64(len(f.mapped)) != want {
			t.Fatalf("mapped %d bytes, want the indexed prefix (%d)", len(f.mapped), want)
		}
	}

	// Another writer appends to the trace file behind the reader's back —
	// first junk that would corrupt any payload alias into the tail page,
	// then enough to grow the file past the next page boundary.
	w, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 8192)
	for i := range junk {
		junk[i] = 0xAA
	}
	if _, err := w.Write(junk); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := f.Records(3)
	if err != nil {
		t.Fatalf("Records after append: %v", err)
	}
	compareRecords(t, got, recs)
}
