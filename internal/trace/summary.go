package trace

import (
	"fmt"
	"sort"
	"strings"

	"atum/internal/mem"
)

// Summary aggregates the headline statistics of a trace — the columns of
// the paper's trace-characteristics table.
type Summary struct {
	Total   uint64 // all records
	MemRefs uint64 // actual memory references
	ByKind  [NumKinds]uint64

	UserRefs   uint64 // memory references made in user mode
	SystemRefs uint64 // memory references made in kernel mode

	IFetches uint64
	Reads    uint64 // data reads (incl. PTE reads)
	Writes   uint64 // data writes (incl. PTE writes)

	CtxSwitches   uint64
	Exceptions    uint64
	DistinctPIDs  int
	DistinctPages int // distinct virtual pages referenced
}

// Summarize scans a trace once and computes its Summary.
func Summarize(recs []Record) Summary { return SummarizeSource(Records(recs)) }

// SummarizeSource computes the Summary of any record source (e.g. an
// Arena) in one streaming pass.
func SummarizeSource(src Source) Summary {
	var s Summary
	pids := map[uint8]bool{}
	pages := map[uint64]bool{}
	_ = src.EachChunk(func(chunk []Record) error {
		for _, r := range chunk {
			s.add(r, pids, pages)
		}
		return nil
	})
	s.DistinctPIDs = len(pids)
	s.DistinctPages = len(pages)
	return s
}

func (s *Summary) add(r Record, pids map[uint8]bool, pages map[uint64]bool) {
	s.Total++
	s.ByKind[r.Kind]++
	switch r.Kind {
	case KindCtxSwitch:
		s.CtxSwitches++
		return
	case KindException:
		s.Exceptions++
		return
	}
	s.MemRefs++
	if r.User {
		s.UserRefs++
	} else {
		s.SystemRefs++
	}
	switch r.Kind {
	case KindIFetch:
		s.IFetches++
	case KindDRead, KindPTERead:
		s.Reads++
	case KindDWrite, KindPTEWrite:
		s.Writes++
	}
	pids[r.PID] = true
	// Distinct pages are counted per PID per address space: tag the
	// page with the PID for process-space addresses, not for system
	// or physical ones.
	key := uint64(r.Addr >> mem.PageShift)
	if !r.Phys && r.Addr>>30 != 2 {
		key |= uint64(r.PID) << 32
	}
	pages[key] = true
}

// PercentUser returns user references as a percentage of memory refs.
func (s Summary) PercentUser() float64 {
	if s.MemRefs == 0 {
		return 0
	}
	return 100 * float64(s.UserRefs) / float64(s.MemRefs)
}

// PercentSystem returns system references as a percentage of memory refs.
func (s Summary) PercentSystem() float64 {
	if s.MemRefs == 0 {
		return 0
	}
	return 100 * float64(s.SystemRefs) / float64(s.MemRefs)
}

// String renders a multi-line report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records:      %d (memrefs %d)\n", s.Total, s.MemRefs)
	fmt.Fprintf(&b, "ifetch/read/write: %d / %d / %d\n", s.IFetches, s.Reads, s.Writes)
	fmt.Fprintf(&b, "user/system:  %d (%.1f%%) / %d (%.1f%%)\n",
		s.UserRefs, s.PercentUser(), s.SystemRefs, s.PercentSystem())
	fmt.Fprintf(&b, "ctx switches: %d, exceptions: %d, pids: %d, pages: %d\n",
		s.CtxSwitches, s.Exceptions, s.DistinctPIDs, s.DistinctPages)
	kinds := make([]string, 0, int(NumKinds))
	for k := Kind(0); k < NumKinds; k++ {
		if s.ByKind[k] > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, s.ByKind[k]))
		}
	}
	sort.Strings(kinds)
	fmt.Fprintf(&b, "by kind:      %s\n", strings.Join(kinds, " "))
	return b.String()
}
