package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// decodeStreaming runs the full streaming pipeline (Open + Records) and
// returns its outcome; the random-access pipeline must match it bit for
// bit, error strings included.
func decodeStreaming(b []byte) ([]Record, error) {
	rd, err := Open(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return rd.Records()
}

// decodeRandomAccess runs the full random-access pipeline (OpenReaderAt
// + parallel Arena + Flatten).
func decodeRandomAccess(b []byte, workers int) ([]Record, error) {
	f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		return nil, err
	}
	return f.Records(workers)
}

// TestOpenReaderAtMatchesOpen: the same stream served through io.Reader
// and io.ReaderAt must yield identical records, metadata and segment
// index, for both codecs in both containers.
func TestOpenReaderAtMatchesOpen(t *testing.T) {
	recs := makeTrace(4000, 11)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		var mono bytes.Buffer
		if err := WriteFileMeta(&mono, recs, codec, "readerat-test"); err != nil {
			t.Fatalf("WriteFileMeta: %v", err)
		}
		streams := map[string][]byte{
			"monolithic": mono.Bytes(),
			"segmented":  writeSegmented(t, recs, 5, codec, "readerat-test"),
		}
		for name, b := range streams {
			rd, err := Open(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("codec %d %s: Open: %v", codec, name, err)
			}
			want, err := rd.Records()
			if err != nil {
				t.Fatalf("codec %d %s: Records: %v", codec, name, err)
			}
			f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatalf("codec %d %s: OpenReaderAt: %v", codec, name, err)
			}
			if f.Meta() != rd.Meta() {
				t.Errorf("codec %d %s: meta %q vs %q", codec, name, f.Meta(), rd.Meta())
			}
			if f.Segmented() != rd.Segmented() {
				t.Errorf("codec %d %s: segmented %v vs %v", codec, name, f.Segmented(), rd.Segmented())
			}
			if f.NumRecords() != uint64(len(want)) {
				t.Errorf("codec %d %s: NumRecords %d, want %d", codec, name, f.NumRecords(), len(want))
			}
			// The streaming reader's index is complete after the full
			// decode; the random-access index is complete at Open.
			if len(f.Segments()) != len(rd.Segments()) {
				t.Fatalf("codec %d %s: %d segments vs %d", codec, name, len(f.Segments()), len(rd.Segments()))
			}
			for i, s := range f.Segments() {
				if s != rd.Segments()[i] {
					t.Errorf("codec %d %s: segment %d: %+v vs %+v", codec, name, i, s, rd.Segments()[i])
				}
			}
			got, err := f.Records(4)
			if err != nil {
				t.Fatalf("codec %d %s: File.Records: %v", codec, name, err)
			}
			compareRecords(t, got, want)
		}
	}
}

func compareRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDecodeParallelVsSerialByteIdentical: every worker count must
// produce the records the serial reference path (workers == 1, inline,
// no goroutines) produces.
func TestDecodeParallelVsSerialByteIdentical(t *testing.T) {
	recs := makeTrace(9000, 23)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		b := writeSegmented(t, recs, 8, codec, "parallel-test")
		want, err := decodeRandomAccess(b, 1)
		if err != nil {
			t.Fatalf("codec %d: serial decode: %v", codec, err)
		}
		compareRecords(t, want, recs)
		for _, workers := range []int{0, 2, 4, 8} {
			got, err := decodeRandomAccess(b, workers)
			if err != nil {
				t.Fatalf("codec %d workers=%d: %v", codec, workers, err)
			}
			compareRecords(t, got, want)
		}
	}
}

// TestDecodeTruncationEquivalence cuts a segmented stream at every
// possible byte offset and checks that the streaming and random-access
// pipelines agree exactly: same records on success, same error string
// on failure — including the wrapped io.ErrUnexpectedEOF with the
// record index for mid-segment truncation. The sweep runs over both
// payload encodings: a cut inside a flate payload truncates the
// deflate stream itself, and both pipelines must classify that as the
// same segment-indexed truncation, never as corruption.
func TestDecodeTruncationEquivalence(t *testing.T) {
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		for _, enc := range []uint8{SegEncRaw, SegEncFlate} {
			full := writeSegmentedEnc(t, makeTrace(120, 31), 3, codec, enc, "cut")
			for cut := 0; cut <= len(full); cut++ {
				b := full[:cut]
				sRecs, sErr := decodeStreaming(b)
				for _, workers := range []int{1, 4} {
					rRecs, rErr := decodeRandomAccess(b, workers)
					switch {
					case sErr == nil && rErr == nil:
						compareRecords(t, rRecs, sRecs)
					case sErr == nil || rErr == nil:
						t.Fatalf("codec %d enc %d cut %d workers %d: streaming err %v, random-access err %v",
							codec, enc, cut, workers, sErr, rErr)
					case sErr.Error() != rErr.Error():
						t.Fatalf("codec %d enc %d cut %d workers %d: error mismatch:\n  streaming:     %v\n  random-access: %v",
							codec, enc, cut, workers, sErr, rErr)
					}
				}
				if cut < len(full) && sErr != nil && !errors.Is(sErr, io.ErrUnexpectedEOF) &&
					cut > 16 { // container headers fail with their own messages
					t.Fatalf("codec %d enc %d cut %d: error %v does not wrap io.ErrUnexpectedEOF", codec, enc, cut, sErr)
				}
			}
		}
	}
}

// TestOpenFileRoundTrip: the path-based entry point serves the same
// data and owns the file handle.
func TestOpenFileRoundTrip(t *testing.T) {
	recs := makeTrace(2000, 47)
	b := writeSegmented(t, recs, 4, CodecDelta, "openfile-test")
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	got, err := f.Records(0)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	compareRecords(t, got, recs)
	if f.Meta() != "openfile-test" || len(f.Segments()) != 4 {
		t.Errorf("meta %q, %d segments", f.Meta(), len(f.Segments()))
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("OpenFile on a missing path did not error")
	}
}

// TestDecodeBatchAllocs: the streaming batch path must stay
// allocation-free per decoded chunk once warm (the ISSUE gate is <= 1
// alloc per chunk; the occasional segment-index append is amortised).
func TestDecodeBatchAllocs(t *testing.T) {
	recs := makeTrace(200_000, 3)
	b := writeSegmented(t, recs, 16, CodecDelta, "")
	rd, err := Open(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]Record, 4096)
	if _, err := rd.Decode(dst); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := rd.Decode(dst); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("streaming batch decode: %.1f allocs per %d-record chunk, want <= 1", allocs, len(dst))
	}
}

// TestSegmentPayloadOverrunEquivalence: a segment header promising more
// payload than the file holds — with a record count the truncated
// payload still satisfies — must fail identically from both pipelines
// (the streaming path trips discarding the tail).
func TestSegmentPayloadOverrunEquivalence(t *testing.T) {
	recs := makeTrace(64, 9)
	full := writeSegmented(t, recs, 1, CodecDelta, "")
	// Inflate the lone segment's payLen beyond the file end; the
	// records themselves remain intact. Field layout after the 16-byte
	// stream header (no meta): marker(4) index(4) count(8) dropped(8)
	// cycles(8) payLen(8).
	b := bytes.Clone(full)
	const payLenOff = 16 + 4 + 4 + 8 + 8 + 8
	pay := uint64(len(b) - (16 + 4 + segHeaderBytes))
	binary.LittleEndian.PutUint64(b[payLenOff:], pay+1000)
	sRecs, sErr := decodeStreaming(b)
	rRecs, rErr := decodeRandomAccess(b, 1)
	if sErr == nil || rErr == nil {
		t.Fatalf("overrun stream decoded cleanly: streaming (%d recs, %v), random-access (%d recs, %v)",
			len(sRecs), sErr, len(rRecs), rErr)
	}
	if sErr.Error() != rErr.Error() {
		t.Fatalf("error mismatch:\n  streaming:     %v\n  random-access: %v", sErr, rErr)
	}
	if !errors.Is(sErr, io.ErrUnexpectedEOF) {
		t.Fatalf("overrun error %v does not wrap io.ErrUnexpectedEOF", sErr)
	}
}
