package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// trackingReaderAt records every ReadAt range so tests can pin exactly
// which parts of a container an operation touched.
type trackingReaderAt struct {
	ra io.ReaderAt

	mu    sync.Mutex
	reads [][2]int64 // [offset, length)
	total int64
}

func (t *trackingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := t.ra.ReadAt(p, off)
	t.mu.Lock()
	t.reads = append(t.reads, [2]int64{off, int64(n)})
	t.total += int64(n)
	t.mu.Unlock()
	return n, err
}

// TestHeaderOnlyIndexReadsNoPayload: building the segment index over a
// compressed stream — and every metadata query after it — must read
// stream and segment headers only, never a stored payload byte. This is
// the contract that keeps atum-stats -meta-only O(segments) whatever
// the encoding: headers are never compressed, so indexing never
// inflates.
func TestHeaderOnlyIndexReadsNoPayload(t *testing.T) {
	const meta = "header-only"
	recs := makeTrace(4000, 17)
	b := writeSegmentedEnc(t, recs, 5, CodecDelta, SegEncFlate, meta)
	tr := &trackingReaderAt{ra: bytes.NewReader(b)}
	f, err := OpenReaderAt(tr, int64(len(b)))
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	// Metadata queries must not add reads.
	_ = f.Meta()
	_ = f.NumRecords()
	segs := f.Segments()
	if len(segs) != 5 {
		t.Fatalf("%d segments indexed", len(segs))
	}
	wantTotal := int64(8 + 8 + len(meta) + 5*(4+segHeaderBytes))
	if tr.total != wantTotal {
		t.Errorf("index build read %d bytes, want %d (headers only)", tr.total, wantTotal)
	}
	// No read range may intersect a payload extent.
	for i := range segs {
		lo, hi := f.segOff[i], f.segOff[i]+int64(segs[i].PayloadBytes)
		for _, r := range tr.reads {
			if r[0] < hi && r[0]+r[1] > lo {
				t.Errorf("read [%d,%d) overlaps segment %d payload [%d,%d)", r[0], r[0]+r[1], i, lo, hi)
			}
		}
	}
	// Sanity: the payloads do decode once asked for.
	got, err := f.Records(2)
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	compareRecords(t, got, recs)
}

// TestSegmentedV1BackCompat: a hand-assembled version-1 container (the
// 36-byte pre-encoding header) must still decode on both pipelines,
// with every segment reporting the raw encoding and RawBytes mirroring
// PayloadBytes.
func TestSegmentedV1BackCompat(t *testing.T) {
	recs := makeTrace(200, 29)
	// Delta payload for a fresh codec state: a monolithic metadata-free
	// stream is magic(8) + header(16) + payload.
	var mono bytes.Buffer
	if err := WriteFile(&mono, recs, CodecDelta); err != nil {
		t.Fatal(err)
	}
	payload := mono.Bytes()[8+16:]

	var b bytes.Buffer
	b.Write(segMagic[:])
	var sh [8]byte
	binary.LittleEndian.PutUint16(sh[0:], segVersionV1)
	binary.LittleEndian.PutUint16(sh[2:], CodecDelta)
	b.Write(sh[:]) // metaLen 0
	b.Write(segMarker[:])
	var hdr [segHeaderBytesV1]byte
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(recs)))
	binary.LittleEndian.PutUint64(hdr[12:], 7)    // dropped
	binary.LittleEndian.PutUint64(hdr[20:], 9000) // cycles
	binary.LittleEndian.PutUint64(hdr[28:], uint64(len(payload)))
	b.Write(hdr[:])
	b.Write(payload)

	sRecs, sErr := decodeStreaming(b.Bytes())
	rRecs, rErr := decodeRandomAccess(b.Bytes(), 2)
	if sErr != nil || rErr != nil {
		t.Fatalf("v1 decode: streaming %v, random-access %v", sErr, rErr)
	}
	compareRecords(t, sRecs, recs)
	compareRecords(t, rRecs, recs)

	f, err := OpenReaderAt(bytes.NewReader(b.Bytes()), int64(b.Len()))
	if err != nil {
		t.Fatal(err)
	}
	info := f.Segments()[0]
	if info.Encoding != SegEncRaw {
		t.Errorf("v1 segment decoded with encoding %d, want raw", info.Encoding)
	}
	if info.RawBytes != info.PayloadBytes {
		t.Errorf("v1 segment RawBytes %d != PayloadBytes %d", info.RawBytes, info.PayloadBytes)
	}
	if info.Dropped != 7 || info.DilationCycles != 9000 {
		t.Errorf("v1 segment metadata not preserved: %+v", info)
	}
}

// buildFlateSegment assembles a single-segment v2 stream whose header
// fields the test controls completely.
func buildFlateSegment(t *testing.T, codec uint16, records uint64, stored []byte, rawLen uint64) []byte {
	t.Helper()
	var b bytes.Buffer
	b.Write(segMagic[:])
	var sh [8]byte
	binary.LittleEndian.PutUint16(sh[0:], segVersion)
	binary.LittleEndian.PutUint16(sh[2:], codec)
	b.Write(sh[:])
	b.Write(segMarker[:])
	var hdr [segHeaderBytes]byte
	binary.LittleEndian.PutUint64(hdr[4:], records)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(len(stored)))
	hdr[36] = SegEncFlate
	binary.LittleEndian.PutUint64(hdr[37:], rawLen)
	b.Write(hdr[:])
	b.Write(stored)
	return b.Bytes()
}

// TestLintSegRawLen: a compressed segment whose header understates the
// inflated length still decodes (output is capped at RawBytes, and the
// delta codec stops at the declared record count), which is exactly why
// the container lint must flag the lie — no decode error ever will.
func TestLintSegRawLen(t *testing.T) {
	recs := makeTrace(100, 41)
	var mono bytes.Buffer
	if err := WriteFile(&mono, recs, CodecDelta); err != nil {
		t.Fatal(err)
	}
	payload := mono.Bytes()[8+16:]

	// A clean compressed stream lints clean.
	clean := writeSegmentedEnc(t, recs, 2, CodecDelta, SegEncFlate, "")
	cf, err := OpenReaderAt(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	if fs := cf.LintContainer(); len(fs) != 0 {
		t.Fatalf("clean compressed stream flagged: %v", fs)
	}

	// Deflate the codec bytes plus a trailing tail the header will hide:
	// declared RawBytes covers the records and a sliver of the tail, so
	// decode succeeds but the stream inflates past its declaration.
	tail := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42, 0x42, 0x42}
	var comp bytes.Buffer
	if err := deflateInto(&comp, append(append([]byte{}, payload...), tail...)); err != nil {
		t.Fatal(err)
	}
	declared := uint64(len(payload)) + 3
	b := buildFlateSegment(t, CodecDelta, uint64(len(recs)), comp.Bytes(), declared)

	sRecs, sErr := decodeStreaming(b)
	if sErr != nil {
		t.Fatalf("understating stream must still decode, got %v", sErr)
	}
	compareRecords(t, sRecs, recs)
	rRecs, rErr := decodeRandomAccess(b, 1)
	if rErr != nil {
		t.Fatalf("random-access decode: %v", rErr)
	}
	compareRecords(t, rRecs, recs)

	f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	fs := f.LintContainer()
	if len(fs) != 1 {
		t.Fatalf("want exactly one finding, got %v", fs)
	}
	if fs[0].Check != LintSegRawLen {
		t.Errorf("finding class %q, want %q", fs[0].Check, LintSegRawLen)
	}
	wantInflated := uint64(len(payload) + len(tail))
	msg := fs[0].Message
	if !strings.Contains(msg, "declares") || !strings.Contains(msg, "inflates") {
		t.Errorf("message %q does not describe the length mismatch", msg)
	}
	if !strings.Contains(msg, fmtUint(declared)) || !strings.Contains(msg, fmtUint(wantInflated)) {
		t.Errorf("message %q missing lengths %d/%d", msg, declared, wantInflated)
	}

	// A stored payload that is not deflate at all: decode fails hard, and
	// lint reports the inflate failure rather than a length.
	junk := buildFlateSegment(t, CodecDelta, uint64(len(recs)), bytes.Repeat([]byte{0xA5}, 64), declared)
	jf, err := OpenReaderAt(bytes.NewReader(junk), int64(len(junk)))
	if err != nil {
		t.Fatal(err)
	}
	jfs := jf.LintContainer()
	if len(jfs) != 1 || !strings.Contains(jfs[0].Message, "does not inflate") {
		t.Fatalf("corrupt deflate findings: %v", jfs)
	}
}

func fmtUint(v uint64) string { return strconv.FormatUint(v, 10) }

// TestOpenFileMapped: the mapped handle decodes identically to the
// plain one — compressed segments included — serves stored payloads
// zero-copy, and survives Close.
func TestOpenFileMapped(t *testing.T) {
	recs := makeTrace(3000, 53)
	for _, enc := range []uint8{SegEncRaw, SegEncFlate} {
		b := writeSegmentedEnc(t, recs, 4, CodecDelta, enc, "mapped-test")
		path := filepath.Join(t.TempDir(), "t.trc")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFileMapped(path)
		if err != nil {
			t.Fatalf("enc %d: OpenFileMapped: %v", enc, err)
		}
		if runtime.GOOS == "linux" && !f.Mapped() {
			t.Fatalf("enc %d: mapping unexpectedly unavailable on linux", enc)
		}
		got, err := f.Records(3)
		if err != nil {
			t.Fatalf("enc %d: Records: %v", enc, err)
		}
		compareRecords(t, got, recs)
		if f.Meta() != "mapped-test" {
			t.Errorf("enc %d: meta %q", enc, f.Meta())
		}
		if f.Mapped() {
			// Stored payloads must alias the mapping: zero copies.
			p, err := f.SegmentPayload(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(p) > 0 && &p[0] != &f.mapped[f.segOff[0]] {
				t.Errorf("enc %d: SegmentPayload copied instead of aliasing the mapping", enc)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatalf("enc %d: Close: %v", enc, err)
		}
	}
	// Mapping an empty file must fall back, not fail.
	empty := filepath.Join(t.TempDir(), "empty.trc")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileMapped(empty); err == nil {
		t.Error("empty container did not surface ErrEmpty through the fallback")
	}
}

// TestMappedDecodeAllocs: the ISSUE gate for the zero-copy lane — a
// raw-encoded mapped container must decode with no per-record
// allocation: SegmentPayload aliases the mapping and DecodeSegment
// reuses the caller's record buffer, so a full sweep of the file
// allocates nothing in steady state.
func TestMappedDecodeAllocs(t *testing.T) {
	recs := makeTrace(100_000, 3)
	b := writeSegmented(t, recs, 16, CodecDelta, "")
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFileMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Mapped() {
		t.Skip("memory mapping unavailable on this platform")
	}
	segs := f.Segments()
	var dst []Record
	sweep := func() {
		var base uint64
		for i, info := range segs {
			p, err := f.SegmentPayload(i)
			if err != nil {
				t.Fatal(err)
			}
			dst, err = DecodeSegment(f.codec, info, p, dst, base)
			if err != nil {
				t.Fatal(err)
			}
			base += uint64(len(dst))
		}
	}
	sweep() // warm the pools and size dst
	allocs := testing.AllocsPerRun(10, sweep)
	if allocs > 0 {
		t.Errorf("mapped raw-lane sweep: %.1f allocs per full decode, want 0", allocs)
	}
}

// TestSetEncodingValidation: unknown encodings are rejected up front,
// before any segment is framed with them.
func TestSetEncodingValidation(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, CodecDelta, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetEncoding(7); err == nil {
		t.Error("SetEncoding(7) accepted")
	}
	if err := sw.SetEncoding(SegEncFlate); err != nil {
		t.Errorf("SetEncoding(flate): %v", err)
	}
	if err := sw.SetEncoding(SegEncRaw); err != nil {
		t.Errorf("SetEncoding(raw): %v", err)
	}
}

// TestIncompressibleSegmentStoredRaw: when deflate does not strictly
// shrink a payload (a one-record segment is all framing), the writer
// stores it raw — the flag byte is per segment, not per stream, so a
// compressed capture never pays to store a segment bigger than its
// input.
func TestIncompressibleSegmentStoredRaw(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, CodecDelta, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetEncoding(SegEncFlate); err != nil {
		t.Fatal(err)
	}
	one := makeTrace(1, 61)
	info, err := sw.WriteSegment(one, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Encoding != SegEncRaw {
		t.Errorf("one-record segment stored with encoding %d (%d bytes for %d raw), want raw fallback",
			info.Encoding, info.PayloadBytes, info.RawBytes)
	}
	// An empty segment is always raw, never a deflate header for nothing.
	einfo, err := sw.WriteSegment(nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if einfo.Encoding != SegEncRaw || einfo.PayloadBytes != 0 {
		t.Errorf("empty segment framed as %+v, want raw zero-byte payload", einfo)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, one) {
		t.Fatal("fallback stream decode differs from input")
	}
}
