//go:build !unix

package trace

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("memory mapping unsupported on this platform")

// mmapFile always fails here; OpenFileMapped degrades to plain reads.
func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmap(data []byte) error { return nil }
