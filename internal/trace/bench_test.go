package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// makeBenchTrace synthesises a workload-shaped trace for the decode and
// capture benchmarks: four processes round-robin on a timer quantum,
// each alternating tight loop phases (strided ifetches with data and
// stack references) with irregular pointer-chasing phases, plus
// occasional PTE references. Unlike makeTrace's random walk, this has
// the regularity real captures have — repeated loop bodies, sequential
// data streams — which is exactly the structure the delta codec and the
// flate segment encoding exploit, so compression ratios measured here
// transfer to real captures (a sieve capture compresses harder still).
func makeBenchTrace(n, seed int) []Record {
	r := rand.New(rand.NewSource(int64(seed)))
	type proc struct{ pc, data, sp uint32 }
	procs := []proc{
		{0x0400, 0x00010000, 0x7FFFF000},
		{0x2400, 0x00050000, 0x7FFFE000},
		{0x4400, 0x00090000, 0x7FFFD000},
		{0x6400, 0x000D0000, 0x7FFFC000},
	}
	recs := make([]Record, 0, n)
	cur := 0
	quantum := 0
	for len(recs) < n {
		if quantum <= 0 {
			cur = (cur + 1) % len(procs)
			quantum = 1500 + r.Intn(1000)
			recs = append(recs, Record{Kind: KindCtxSwitch, PID: uint8(cur), Extra: uint16(cur)})
			continue
		}
		p := &procs[cur]
		pid := uint8(cur)
		if r.Intn(3) == 0 {
			// Irregular phase: short forward strides over code, scattered
			// reads from a large working set.
			for k := 0; k < 200 && len(recs) < n; k++ {
				p.pc += uint32(r.Intn(3)) * 4
				recs = append(recs, Record{Kind: KindIFetch, Addr: p.pc, Width: 4, User: true, PID: pid})
				if k%3 == 1 {
					addr := 0x00100000 + uint32(r.Intn(1<<18))&^uint32(3)
					recs = append(recs, Record{Kind: KindDRead, Addr: addr, Width: 4, User: true, PID: pid})
				}
				quantum--
			}
		} else {
			// Loop phase: the same body re-executed, walking a data stream
			// and touching the stack.
			body := 8 + r.Intn(32)
			iters := 4 + r.Intn(12)
			start := p.pc
			for it := 0; it < iters && len(recs) < n; it++ {
				p.pc = start
				for bi := 0; bi < body && len(recs) < n; bi++ {
					recs = append(recs, Record{Kind: KindIFetch, Addr: p.pc, Width: 4, User: true, PID: pid})
					p.pc += 4
					switch bi % 5 {
					case 1:
						recs = append(recs, Record{Kind: KindDRead, Addr: p.data, Width: 4, User: true, PID: pid})
						p.data += 4
					case 3:
						recs = append(recs, Record{Kind: KindDWrite, Addr: p.sp - uint32(bi), Width: 4, User: true, PID: pid})
					}
					quantum--
				}
			}
			p.pc = start + uint32(body)*4
		}
		if r.Intn(20) == 0 {
			recs = append(recs, Record{Kind: KindPTERead, Addr: 0x80010000 + (p.data>>9)&^uint32(3), Width: 4, PID: pid})
		}
	}
	return recs[:n]
}

func BenchmarkEncodeRaw(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecRaw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

func BenchmarkEncodeDelta(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecDelta); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

// benchStream encodes recs as a segmented stream of nseg segments with
// the given payload encoding (the shape the spill service writes).
func benchStream(b *testing.B, recs []Record, nseg int, codec uint16, enc uint8) []byte {
	b.Helper()
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, codec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.SetEncoding(enc); err != nil {
		b.Fatal(err)
	}
	n := len(recs)
	per := (n + nseg - 1) / nseg
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		if _, err := sw.WriteSegment(recs[lo:hi], 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchDecodeMonolithic times the batch streaming path on a monolithic
// container against the preserved per-record reference decoder.
func benchDecodeMonolithic(b *testing.B, codec uint16) {
	recs := makeTrace(100_000, 5)
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs, codec); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("reference-pr3", func(b *testing.B) {
		b.SetBytes(int64(len(recs) * RecordBytes))
		for i := 0; i < b.N; i++ {
			if _, err := referenceReadAll(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(len(recs) * RecordBytes))
		for i := 0; i < b.N; i++ {
			rd, err := Open(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rd.Records(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeRaw(b *testing.B)   { benchDecodeMonolithic(b, CodecRaw) }
func BenchmarkDecodeDelta(b *testing.B) { benchDecodeMonolithic(b, CodecDelta) }

// decodeJSON, when set, makes BenchmarkDecodeSegmented record its
// reference / serial-batch / parallel lane numbers (BENCH_decode.json).
// From the repo root:
//
//	go test -C internal/trace -bench=DecodeSegmented -benchtime=10x -run '^$' -decode-json=../../BENCH_decode.json
var decodeJSON = flag.String("decode-json", "", "write decode benchmark results to this JSON file")

// decodeLane runs one full-stream decode and reports wall time plus
// heap allocations.
func decodeLane(b *testing.B, fn func() int) (sec float64, allocs uint64, nrec int) {
	b.Helper()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	nrec = fn()
	sec = time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return sec, m1.Mallocs - m0.Mallocs, nrec
}

// BenchmarkDecodeSegmented measures the segmented delta decode five
// ways on the same records — the preserved PR 3 per-record path, the
// serial batch path (workers == 1), the parallel batch path (4
// workers), the flate-encoded stream (container v2, parallel decode
// pays the inflate), and the memory-mapped zero-copy lane
// (OpenFileMapped + SegmentPayload + DecodeSegment) — verifying
// record-identical output while timing, and optionally records the
// lanes to BENCH_decode.json. Two gates run every time: the flate
// stream must hold at least 2x fewer bytes per record than the raw
// one, and the mapped lane must not allocate per record.
func BenchmarkDecodeSegmented(b *testing.B) {
	const nrec = 400_000
	const nseg = 32
	recs := makeBenchTrace(nrec, 5)
	data := benchStream(b, recs, nseg, CodecDelta, SegEncRaw)
	flateData := benchStream(b, recs, nseg, CodecDelta, SegEncFlate)
	if len(data) < 2*len(flateData) {
		b.Fatalf("flate stream %d bytes vs raw %d: below the 2x compression gate", len(flateData), len(data))
	}
	mmapPath := filepath.Join(b.TempDir(), "bench.trc")
	if err := os.WriteFile(mmapPath, data, 0o644); err != nil {
		b.Fatal(err)
	}
	mf, err := OpenFileMapped(mmapPath)
	if err != nil {
		b.Fatal(err)
	}
	defer mf.Close()
	b.SetBytes(int64(nrec * RecordBytes))
	b.ResetTimer()

	var refSec, serialSec, parSec, flateSec, mmapSec float64
	var refAllocs, serialAllocs, parAllocs, flateAllocs, mmapAllocs uint64
	// batchLane times one random-access decode to the Arena — the
	// chunked form the consumers (atum-stats, cachesim, the sweep
	// engine) iterate — so the lane measures decode work, not a
	// flattening copy the real pipeline never performs. The equality
	// check against the reference runs outside the clock, and the lane's
	// results are dropped before the next lane so no lane pays GC for a
	// predecessor's live set.
	batchLane := func(workers int, stream []byte, ref []Record) (float64, uint64) {
		var a *Arena
		sec, allocs, n := decodeLane(b, func() int {
			f, err := OpenReaderAt(bytes.NewReader(stream), int64(len(stream)))
			if err != nil {
				b.Fatal(err)
			}
			a, err = f.Arena(workers)
			if err != nil {
				b.Fatal(err)
			}
			return a.NumRecords()
		})
		if n != nrec {
			b.Fatalf("workers=%d decoded %d records, want %d", workers, n, nrec)
		}
		got := a.Flatten()
		for j := range ref {
			if got[j] != ref[j] {
				b.Fatalf("workers=%d record %d: %v, want %v", workers, j, got[j], ref[j])
			}
		}
		return sec, allocs
	}
	// mmapSweep decodes the whole mapped file segment by segment through
	// the zero-copy path, reusing dst across segments and iterations.
	segs := mf.Segments()
	var mmapDst []Record
	mmapSweep := func() int {
		var base uint64
		total := 0
		for i, info := range segs {
			p, err := mf.SegmentPayload(i)
			if err != nil {
				b.Fatal(err)
			}
			mmapDst, err = DecodeSegment(mf.codec, info, p, mmapDst, base)
			if err != nil {
				b.Fatal(err)
			}
			base += uint64(len(mmapDst))
			total += len(mmapDst)
		}
		return total
	}
	for i := 0; i < b.N; i++ {
		var ref []Record
		sec, allocs, n := decodeLane(b, func() int {
			var err error
			ref, err = referenceReadAll(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			return len(ref)
		})
		if n != nrec {
			b.Fatalf("reference decoded %d records, want %d", n, nrec)
		}
		refSec += sec
		refAllocs = allocs
		sec, serialAllocs = batchLane(1, data, ref)
		serialSec += sec
		sec, parAllocs = batchLane(4, data, ref)
		parSec += sec
		sec, flateAllocs = batchLane(4, flateData, ref)
		flateSec += sec
		if i == 0 {
			// Verify the mapped path once, outside the clock, then warm dst
			// so the timed sweeps run in steady state.
			var base uint64
			for si, info := range segs {
				p, err := mf.SegmentPayload(si)
				if err != nil {
					b.Fatal(err)
				}
				mmapDst, err = DecodeSegment(mf.codec, info, p, mmapDst, base)
				if err != nil {
					b.Fatal(err)
				}
				for j, r := range mmapDst {
					if r != ref[base+uint64(j)] {
						b.Fatalf("mapped segment %d record %d: %v, want %v", si, j, r, ref[base+uint64(j)])
					}
				}
				base += uint64(len(mmapDst))
			}
			if base != nrec {
				b.Fatalf("mapped sweep decoded %d records, want %d", base, nrec)
			}
		}
		sec, mmapAllocs, n = decodeLane(b, mmapSweep)
		if n != nrec {
			b.Fatalf("mapped sweep decoded %d records, want %d", n, nrec)
		}
		mmapSec += sec
	}
	if mf.Mapped() && float64(mmapAllocs)/float64(nrec) > 0.01 {
		b.Fatalf("mapped raw lane allocated %d times for %d records; zero-copy gate requires allocation-free decode", mmapAllocs, nrec)
	}
	total := float64(nrec) * float64(b.N)
	b.ReportMetric(total/refSec, "reference-recs/s")
	b.ReportMetric(total/serialSec, "serial-recs/s")
	b.ReportMetric(total/parSec, "parallel4-recs/s")
	b.ReportMetric(total/flateSec, "flate4-recs/s")
	b.ReportMetric(total/mmapSec, "mmap-recs/s")
	b.ReportMetric(refSec/parSec, "speedup-x")
	b.ReportMetric(float64(len(data))/float64(len(flateData)), "compression-x")

	if *decodeJSON == "" {
		return
	}
	type lane struct {
		Workers         int     `json:"workers"`
		Seconds         float64 `json:"seconds"`
		RecordsPerSec   float64 `json:"records_per_sec"`
		AllocsPerRecord float64 `json:"allocs_per_record"`
		BytesPerRecord  float64 `json:"bytes_per_record"`
	}
	rawBPR := float64(len(data)) / nrec
	flateBPR := float64(len(flateData)) / nrec
	out := struct {
		GeneratedBy      string  `json:"generated_by"`
		Cores            int     `json:"cores"`
		GOMAXPROCS       int     `json:"gomaxprocs"`
		TraceRecords     int     `json:"trace_records"`
		Segments         int     `json:"segments"`
		Codec            string  `json:"codec"`
		StreamBytes      int     `json:"stream_bytes"`
		FlateStreamBytes int     `json:"flate_stream_bytes"`
		CompressionX     float64 `json:"compression_x"`
		Mapped           bool    `json:"mmap_active"`
		ReferencePR3     lane    `json:"reference_pr3"`
		SerialBatch      lane    `json:"serial_batch"`
		Parallel         lane    `json:"parallel"`
		Flate            lane    `json:"flate"`
		Mmap             lane    `json:"mmap"`
		SpeedupSerialX   float64 `json:"speedup_serial_vs_reference_x"`
		SpeedupParallel  float64 `json:"speedup_parallel_vs_reference_x"`
	}{
		GeneratedBy:      "go test -C internal/trace -bench=DecodeSegmented -benchtime=10x -run '^$' -decode-json=" + *decodeJSON,
		Cores:            runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		TraceRecords:     nrec,
		Segments:         nseg,
		Codec:            "delta",
		StreamBytes:      len(data),
		FlateStreamBytes: len(flateData),
		CompressionX:     float64(len(data)) / float64(len(flateData)),
		Mapped:           mf.Mapped(),
		ReferencePR3: lane{Workers: 1, Seconds: refSec / float64(b.N),
			RecordsPerSec: total / refSec, AllocsPerRecord: float64(refAllocs) / nrec, BytesPerRecord: rawBPR},
		SerialBatch: lane{Workers: 1, Seconds: serialSec / float64(b.N),
			RecordsPerSec: total / serialSec, AllocsPerRecord: float64(serialAllocs) / nrec, BytesPerRecord: rawBPR},
		Parallel: lane{Workers: 4, Seconds: parSec / float64(b.N),
			RecordsPerSec: total / parSec, AllocsPerRecord: float64(parAllocs) / nrec, BytesPerRecord: rawBPR},
		Flate: lane{Workers: 4, Seconds: flateSec / float64(b.N),
			RecordsPerSec: total / flateSec, AllocsPerRecord: float64(flateAllocs) / nrec, BytesPerRecord: flateBPR},
		Mmap: lane{Workers: 1, Seconds: mmapSec / float64(b.N),
			RecordsPerSec: total / mmapSec, AllocsPerRecord: float64(mmapAllocs) / nrec, BytesPerRecord: rawBPR},
		SpeedupSerialX:  refSec / serialSec,
		SpeedupParallel: refSec / parSec,
	}
	data2, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*decodeJSON, append(data2, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// captureJSON, when set, makes BenchmarkCaptureSegmented record its
// raw / flate write-lane numbers (BENCH_capture.json). From the repo
// root:
//
//	go test -C internal/trace -bench=CaptureSegmented -benchtime=10x -run '^$' -capture-json=../../BENCH_capture.json
var captureJSON = flag.String("capture-json", "", "write capture benchmark results to this JSON file")

// BenchmarkCaptureSegmented measures the segment-writer side of the
// container: the same records written as a segmented delta stream raw
// and flate-encoded, reporting write throughput and stored bytes per
// record for each. This is the cost -compress adds at capture time; the
// decode side of the trade is BenchmarkDecodeSegmented's flate lane.
func BenchmarkCaptureSegmented(b *testing.B) {
	const nrec = 400_000
	const nseg = 32
	recs := makeBenchTrace(nrec, 5)
	var rawSec, flateSec float64
	var rawBytes, flateBytes int
	writeLane := func(enc uint8) (float64, int) {
		t0 := time.Now()
		stream := benchStream(b, recs, nseg, CodecDelta, enc)
		return time.Since(t0).Seconds(), len(stream)
	}
	b.SetBytes(int64(nrec * RecordBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sec, n := writeLane(SegEncRaw)
		rawSec, rawBytes = rawSec+sec, n
		sec, n = writeLane(SegEncFlate)
		flateSec, flateBytes = flateSec+sec, n
	}
	total := float64(nrec) * float64(b.N)
	b.ReportMetric(total/rawSec, "raw-recs/s")
	b.ReportMetric(total/flateSec, "flate-recs/s")
	b.ReportMetric(float64(rawBytes)/float64(flateBytes), "compression-x")

	if *captureJSON == "" {
		return
	}
	type lane struct {
		Seconds        float64 `json:"seconds"`
		RecordsPerSec  float64 `json:"records_per_sec"`
		StoredBytes    int     `json:"stored_bytes"`
		BytesPerRecord float64 `json:"bytes_per_record"`
	}
	out := struct {
		GeneratedBy  string  `json:"generated_by"`
		Cores        int     `json:"cores"`
		GOMAXPROCS   int     `json:"gomaxprocs"`
		TraceRecords int     `json:"trace_records"`
		Segments     int     `json:"segments"`
		Codec        string  `json:"codec"`
		Raw          lane    `json:"raw"`
		Flate        lane    `json:"flate"`
		CompressionX float64 `json:"compression_x"`
		WriteSlowedX float64 `json:"flate_write_slowdown_x"`
	}{
		GeneratedBy:  "go test -C internal/trace -bench=CaptureSegmented -benchtime=10x -run '^$' -capture-json=" + *captureJSON,
		Cores:        runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		TraceRecords: nrec,
		Segments:     nseg,
		Codec:        "delta",
		Raw: lane{Seconds: rawSec / float64(b.N), RecordsPerSec: total / rawSec,
			StoredBytes: rawBytes, BytesPerRecord: float64(rawBytes) / nrec},
		Flate: lane{Seconds: flateSec / float64(b.N), RecordsPerSec: total / flateSec,
			StoredBytes: flateBytes, BytesPerRecord: float64(flateBytes) / nrec},
		CompressionX: float64(rawBytes) / float64(flateBytes),
		WriteSlowedX: (flateSec / rawSec),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*captureJSON, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSummarize(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(recs)
	}
}
