package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

func BenchmarkEncodeRaw(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecRaw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

func BenchmarkEncodeDelta(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecDelta); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

// benchSegmented encodes n records as a segmented stream of nseg
// segments (the shape the spill service writes).
func benchSegmented(b *testing.B, n, nseg int, codec uint16) []byte {
	b.Helper()
	recs := makeTrace(n, 5)
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, codec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	per := (n + nseg - 1) / nseg
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		if err := sw.WriteSegment(recs[lo:hi], 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchDecodeMonolithic times the batch streaming path on a monolithic
// container against the preserved per-record reference decoder.
func benchDecodeMonolithic(b *testing.B, codec uint16) {
	recs := makeTrace(100_000, 5)
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs, codec); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("reference-pr3", func(b *testing.B) {
		b.SetBytes(int64(len(recs) * RecordBytes))
		for i := 0; i < b.N; i++ {
			if _, err := referenceReadAll(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(len(recs) * RecordBytes))
		for i := 0; i < b.N; i++ {
			rd, err := Open(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := rd.Records(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeRaw(b *testing.B)   { benchDecodeMonolithic(b, CodecRaw) }
func BenchmarkDecodeDelta(b *testing.B) { benchDecodeMonolithic(b, CodecDelta) }

// decodeJSON, when set, makes BenchmarkDecodeSegmented record its
// reference / serial-batch / parallel lane numbers (BENCH_decode.json).
// From the repo root:
//
//	go test -C internal/trace -bench=DecodeSegmented -benchtime=10x -run '^$' -decode-json=../../BENCH_decode.json
var decodeJSON = flag.String("decode-json", "", "write decode benchmark results to this JSON file")

// decodeLane runs one full-stream decode and reports wall time plus
// heap allocations.
func decodeLane(b *testing.B, fn func() int) (sec float64, allocs uint64, nrec int) {
	b.Helper()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	nrec = fn()
	sec = time.Since(t0).Seconds()
	runtime.ReadMemStats(&m1)
	return sec, m1.Mallocs - m0.Mallocs, nrec
}

// BenchmarkDecodeSegmented measures the segmented delta decode three
// ways on the same stream — the preserved PR 3 per-record path, the
// serial batch path (workers == 1) and the parallel batch path (4
// workers) — verifying record-identical output while timing, and
// optionally records the lanes to BENCH_decode.json.
func BenchmarkDecodeSegmented(b *testing.B) {
	const nrec = 400_000
	const nseg = 32
	data := benchSegmented(b, nrec, nseg, CodecDelta)
	b.SetBytes(int64(nrec * RecordBytes))
	b.ResetTimer()

	var refSec, serialSec, parSec float64
	var refAllocs, serialAllocs, parAllocs uint64
	// batchLane times one random-access decode to the Arena — the
	// chunked form the consumers (atum-stats, cachesim, the sweep
	// engine) iterate — so the lane measures decode work, not a
	// flattening copy the real pipeline never performs. The equality
	// check against the reference runs outside the clock, and the lane's
	// results are dropped before the next lane so no lane pays GC for a
	// predecessor's live set.
	batchLane := func(workers int, ref []Record) (float64, uint64) {
		var a *Arena
		sec, allocs, n := decodeLane(b, func() int {
			f, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				b.Fatal(err)
			}
			a, err = f.Arena(workers)
			if err != nil {
				b.Fatal(err)
			}
			return a.NumRecords()
		})
		if n != nrec {
			b.Fatalf("workers=%d decoded %d records, want %d", workers, n, nrec)
		}
		got := a.Flatten()
		for j := range ref {
			if got[j] != ref[j] {
				b.Fatalf("workers=%d record %d: %v, want %v", workers, j, got[j], ref[j])
			}
		}
		return sec, allocs
	}
	for i := 0; i < b.N; i++ {
		var ref []Record
		sec, allocs, n := decodeLane(b, func() int {
			var err error
			ref, err = referenceReadAll(bytes.NewReader(data))
			if err != nil {
				b.Fatal(err)
			}
			return len(ref)
		})
		if n != nrec {
			b.Fatalf("reference decoded %d records, want %d", n, nrec)
		}
		refSec += sec
		refAllocs = allocs
		sec, serialAllocs = batchLane(1, ref)
		serialSec += sec
		sec, parAllocs = batchLane(4, ref)
		parSec += sec
	}
	total := float64(nrec) * float64(b.N)
	b.ReportMetric(total/refSec, "reference-recs/s")
	b.ReportMetric(total/serialSec, "serial-recs/s")
	b.ReportMetric(total/parSec, "parallel4-recs/s")
	b.ReportMetric(refSec/parSec, "speedup-x")

	if *decodeJSON == "" {
		return
	}
	type lane struct {
		Workers         int     `json:"workers"`
		Seconds         float64 `json:"seconds"`
		RecordsPerSec   float64 `json:"records_per_sec"`
		AllocsPerRecord float64 `json:"allocs_per_record"`
	}
	out := struct {
		GeneratedBy     string  `json:"generated_by"`
		Cores           int     `json:"cores"`
		GOMAXPROCS      int     `json:"gomaxprocs"`
		TraceRecords    int     `json:"trace_records"`
		Segments        int     `json:"segments"`
		Codec           string  `json:"codec"`
		StreamBytes     int     `json:"stream_bytes"`
		ReferencePR3    lane    `json:"reference_pr3"`
		SerialBatch     lane    `json:"serial_batch"`
		Parallel        lane    `json:"parallel"`
		SpeedupSerialX  float64 `json:"speedup_serial_vs_reference_x"`
		SpeedupParallel float64 `json:"speedup_parallel_vs_reference_x"`
	}{
		GeneratedBy:  "go test -C internal/trace -bench=DecodeSegmented -benchtime=10x -run '^$' -decode-json=" + *decodeJSON,
		Cores:        runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		TraceRecords: nrec,
		Segments:     nseg,
		Codec:        "delta",
		StreamBytes:  len(data),
		ReferencePR3: lane{Workers: 1, Seconds: refSec / float64(b.N),
			RecordsPerSec: total / refSec, AllocsPerRecord: float64(refAllocs) / nrec},
		SerialBatch: lane{Workers: 1, Seconds: serialSec / float64(b.N),
			RecordsPerSec: total / serialSec, AllocsPerRecord: float64(serialAllocs) / nrec},
		Parallel: lane{Workers: 4, Seconds: parSec / float64(b.N),
			RecordsPerSec: total / parSec, AllocsPerRecord: float64(parAllocs) / nrec},
		SpeedupSerialX:  refSec / serialSec,
		SpeedupParallel: refSec / parSec,
	}
	data2, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*decodeJSON, append(data2, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSummarize(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(recs)
	}
}
