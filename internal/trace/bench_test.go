package trace

import (
	"bytes"
	"io"
	"testing"
)

func BenchmarkEncodeRaw(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecRaw); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

func BenchmarkEncodeDelta(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFile(io.Discard, recs, CodecDelta); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

func BenchmarkDecodeDelta(b *testing.B) {
	recs := makeTrace(100_000, 5)
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs, CodecDelta); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFile(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs) * RecordBytes))
}

func BenchmarkSummarize(b *testing.B) {
	recs := makeTrace(100_000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(recs)
	}
}
