package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// readAll / readAllMeta are the one-call decode helpers the tests in
// this package share now that the public surface is Open-only: Open
// then Records (plus Meta), exactly what callers write.
func readAll(r io.Reader) ([]Record, error) {
	rd, err := Open(r)
	if err != nil {
		return nil, err
	}
	return rd.Records()
}

func readAllMeta(r io.Reader) ([]Record, string, error) {
	rd, err := Open(r)
	if err != nil {
		return nil, "", err
	}
	recs, err := rd.Records()
	if err != nil {
		return nil, "", err
	}
	return recs, rd.Meta(), nil
}

// randomRecord generates structurally valid records for property tests:
// memory references carry width 1/2/4, markers carry width 0.
func randomRecord(r *rand.Rand) Record {
	widths := []uint8{1, 2, 4}
	k := Kind(r.Intn(int(NumKinds)))
	rec := Record{
		Kind: k,
		Addr: r.Uint32(),
		PID:  uint8(r.Intn(16)),
		User: r.Intn(2) == 0,
		Phys: r.Intn(4) == 0,
	}
	if k.IsMemRef() {
		rec.Width = widths[r.Intn(3)]
	} else {
		rec.Extra = uint16(r.Intn(1 << 16))
	}
	return rec
}

func TestPackedRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := randomRecord(r)
		var b [RecordBytes]byte
		rec.Encode(b[:])
		return DecodeRecord(b[:]) == rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseBuffer(t *testing.T) {
	recs := []Record{
		{Kind: KindIFetch, Addr: 0x200, Width: 4, User: true, PID: 1},
		{Kind: KindDWrite, Addr: 0x7FFFFFFC, Width: 4, User: true, PID: 1},
		{Kind: KindCtxSwitch, Extra: 2, PID: 2},
	}
	buf := make([]byte, len(recs)*RecordBytes)
	for i, r := range recs {
		r.Encode(buf[i*RecordBytes:])
	}
	got, err := ParseBuffer(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch: %v vs %v", got, recs)
	}
	if _, err := ParseBuffer(buf[:5]); err == nil {
		t.Error("odd-length buffer should error")
	}
}

func makeTrace(n int, seed int64) []Record {
	r := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	pc := uint32(0x200)
	for i := range recs {
		switch r.Intn(10) {
		case 0:
			recs[i] = Record{Kind: KindDRead, Addr: 0x1000 + uint32(r.Intn(4096)), Width: 4, User: true, PID: 1}
		case 1:
			recs[i] = Record{Kind: KindDWrite, Addr: 0x7FFFF000 + uint32(r.Intn(512)), Width: 4, User: true, PID: 1}
		case 2:
			recs[i] = Record{Kind: KindPTERead, Addr: 0x80010000 + uint32(r.Intn(64))*4, Width: 4, PID: 1}
		case 3:
			recs[i] = Record{Kind: KindCtxSwitch, Extra: uint16(r.Intn(4)), PID: uint8(r.Intn(4))}
		default:
			pc += uint32(r.Intn(3)) * 4
			recs[i] = Record{Kind: KindIFetch, Addr: pc, Width: 4, User: r.Intn(3) > 0, PID: 1}
		}
	}
	return recs
}

func TestFileRoundTripBothCodecs(t *testing.T) {
	recs := makeTrace(5000, 42)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		var buf bytes.Buffer
		if err := WriteFile(&buf, recs, codec); err != nil {
			t.Fatalf("codec %d write: %v", codec, err)
		}
		got, err := readAll(&buf)
		if err != nil {
			t.Fatalf("codec %d read: %v", codec, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("codec %d: round trip mismatch", codec)
		}
	}
}

func TestFileMetadataRoundTrip(t *testing.T) {
	recs := makeTrace(100, 4)
	var buf bytes.Buffer
	meta := "workloads=sieve cost=56"
	if err := WriteFileMeta(&buf, recs, CodecDelta, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := readAllMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta = %q, want %q", gotMeta, meta)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Error("records differ")
	}
	// Empty metadata path still round-trips.
	buf.Reset()
	if err := WriteFile(&buf, recs, CodecRaw); err != nil {
		t.Fatal(err)
	}
	if _, err := readAll(&buf); err != nil {
		t.Fatal(err)
	}
	// Oversized metadata rejected on write.
	if err := WriteFileMeta(&buf, recs, CodecRaw, strings.Repeat("x", maxMetaLen+1)); err == nil {
		t.Error("oversized metadata accepted")
	}
}

func TestDeltaCodecCompresses(t *testing.T) {
	recs := makeTrace(20000, 7)
	var raw, delta bytes.Buffer
	if err := WriteFile(&raw, recs, CodecRaw); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(&delta, recs, CodecDelta); err != nil {
		t.Fatal(err)
	}
	ratio := float64(raw.Len()) / float64(delta.Len())
	if ratio < 1.5 {
		t.Errorf("delta codec ratio %.2f, want >= 1.5 (raw=%d delta=%d)",
			ratio, raw.Len(), delta.Len())
	}
}

func TestFileErrors(t *testing.T) {
	if _, err := readAll(strings.NewReader("not a trace")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, nil, 99); err == nil {
		t.Error("unknown codec accepted")
	}
	// Truncated payload.
	var ok bytes.Buffer
	if err := WriteFile(&ok, makeTrace(100, 1), CodecRaw); err != nil {
		t.Fatal(err)
	}
	trunc := ok.Bytes()[:ok.Len()-4]
	if _, err := readAll(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestDeltaRejectsInvalidKind(t *testing.T) {
	// Regression (found by fuzzing): a forged header byte with kind=7
	// must be rejected, not index past the per-kind delta state.
	var buf bytes.Buffer
	if err := WriteFile(&buf, makeTrace(3, 1), CodecDelta); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] |= 0x07 // corrupt the first record's kind bits
	if _, err := readAll(bytes.NewReader(data)); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestReadFileHugeCountDoesNotPreallocate(t *testing.T) {
	// Regression (found by fuzzing): the header's record count is
	// untrusted; a forged huge count must fail on truncated payload
	// rather than attempting a giant allocation.
	var buf bytes.Buffer
	if err := WriteFile(&buf, makeTrace(2, 1), CodecRaw); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	binary.LittleEndian.PutUint64(data[12:], 1<<33) // count field
	if _, err := readAll(bytes.NewReader(data)); err == nil {
		t.Error("truncated huge-count stream accepted")
	}
}

func TestFilters(t *testing.T) {
	recs := []Record{
		{Kind: KindIFetch, User: true, PID: 1, Width: 4},
		{Kind: KindIFetch, User: false, PID: 1, Width: 4},
		{Kind: KindPTERead, User: true, PID: 1, Width: 4},
		{Kind: KindDRead, User: true, PID: 2, Width: 4},
		{Kind: KindCtxSwitch, User: true, PID: 2},
	}
	u := FilterUser(recs)
	if len(u) != 3 { // user ifetch, user dread, user ctxswitch; PTE excluded
		t.Errorf("FilterUser kept %d, want 3: %v", len(u), u)
	}
	p := FilterPID(recs, 2)
	if len(p) != 2 {
		t.Errorf("FilterPID kept %d, want 2", len(p))
	}
	m := FilterMemRefs(recs)
	if len(m) != 4 {
		t.Errorf("FilterMemRefs kept %d, want 4", len(m))
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Kind: KindIFetch, Addr: 0x200, Width: 4, User: true, PID: 1},
		{Kind: KindIFetch, Addr: 0x80000200, Width: 4, User: false, PID: 1},
		{Kind: KindDRead, Addr: 0x1000, Width: 4, User: true, PID: 1},
		{Kind: KindDWrite, Addr: 0x1004, Width: 4, User: true, PID: 1},
		{Kind: KindPTERead, Addr: 0x80010000, Width: 4, User: false, PID: 1},
		{Kind: KindCtxSwitch, Extra: 2, PID: 2},
		{Kind: KindException, Extra: 0xC0, PID: 2},
		{Kind: KindDRead, Addr: 0x1000, Width: 4, User: true, PID: 2},
	}
	s := Summarize(recs)
	if s.Total != 8 || s.MemRefs != 6 {
		t.Errorf("total=%d memrefs=%d", s.Total, s.MemRefs)
	}
	if s.UserRefs != 4 || s.SystemRefs != 2 {
		t.Errorf("user=%d system=%d", s.UserRefs, s.SystemRefs)
	}
	if s.CtxSwitches != 1 || s.Exceptions != 1 {
		t.Errorf("switches=%d exceptions=%d", s.CtxSwitches, s.Exceptions)
	}
	if s.DistinctPIDs != 2 {
		t.Errorf("pids=%d", s.DistinctPIDs)
	}
	// Pages: pid1:{0x200>>9=1? (0x200>>9=1), 0x1000>>9=8}, shared sys
	// pages for 0x80000200 and 0x80010000, pid2:{8}. = 5 distinct.
	if s.DistinctPages != 5 {
		t.Errorf("pages=%d, want 5", s.DistinctPages)
	}
	if s.PercentUser()+s.PercentSystem() < 99.9 {
		t.Error("percentages do not sum")
	}
	if !strings.Contains(s.String(), "ctx switches: 1") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Kind: KindCtxSwitch, PID: 3, Extra: 4}
	if s := r.String(); !strings.Contains(s, "ctxswitch") || !strings.Contains(s, "extra=0x4") {
		t.Errorf("String() = %q", s)
	}
}
