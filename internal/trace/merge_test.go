package trace

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// cpuSeg is one spilled segment of a synthetic SMP capture.
type cpuSeg struct {
	recs []Record
	cpu  uint16
	seq  uint64
}

// splitSMP deals recs into nseg segments round-robin over ncpu CPUs,
// drawing sequence marks from one shared counter — the same shape the
// kernel's per-CPU spill services produce.
func splitSMP(recs []Record, ncpu, nseg int) [][]cpuSeg {
	var ctr SeqCounter
	per := (len(recs) + nseg - 1) / nseg
	out := make([][]cpuSeg, ncpu)
	for i := 0; i < nseg; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > len(recs) {
			hi = len(recs)
		}
		c := i % ncpu
		out[c] = append(out[c], cpuSeg{recs: recs[lo:hi], cpu: uint16(c), seq: ctr.Next()})
	}
	return out
}

// writeCPUStream writes one CPU's segments as a sequence-stamped (v3)
// stream.
func writeCPUStream(t *testing.T, segs []cpuSeg, codec uint16, enc uint8, meta string) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewSegmentWriterV3(&buf, codec, meta)
	if err != nil {
		t.Fatalf("NewSegmentWriterV3: %v", err)
	}
	if err := sw.SetEncoding(enc); err != nil {
		t.Fatalf("SetEncoding: %v", err)
	}
	for _, s := range segs {
		if _, err := sw.WriteSegmentSeq(s.recs, 0, 0, s.cpu, s.seq); err != nil {
			t.Fatalf("WriteSegmentSeq: %v", err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func openStream(t *testing.T, b []byte) *File {
	t.Helper()
	f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	return f
}

func mergeStreams(t *testing.T, meta string, streams [][]byte, order []int) []byte {
	t.Helper()
	files := make([]*File, len(order))
	for i, idx := range order {
		files[i] = openStream(t, streams[idx])
	}
	var buf bytes.Buffer
	if err := MergeCPUs(&buf, meta, files...); err != nil {
		t.Fatalf("MergeCPUs: %v", err)
	}
	return buf.Bytes()
}

// TestMergeCPUsDeterminism: for every CPU count, codec and payload
// encoding, the merged stream is byte-identical regardless of the
// order the per-CPU inputs are presented in, decodes identically for
// any decode-worker count, replays as the global sequence order, and
// gives each core's records back unchanged through ArenaCPU.
func TestMergeCPUsDeterminism(t *testing.T) {
	recs := makeTrace(6000, 11)
	for _, ncpu := range []int{1, 2, 4} {
		for _, codec := range []uint16{CodecRaw, CodecDelta} {
			for _, enc := range []uint8{SegEncRaw, SegEncFlate} {
				name := fmt.Sprintf("cpus=%d/codec=%d/enc=%d", ncpu, codec, enc)
				perCPU := splitSMP(recs, ncpu, 4*ncpu)
				streams := make([][]byte, ncpu)
				for c, segs := range perCPU {
					streams[c] = writeCPUStream(t, segs, codec, enc, "smp")
				}

				fwd := make([]int, ncpu)
				rev := make([]int, ncpu)
				rot := make([]int, ncpu)
				for i := range fwd {
					fwd[i] = i
					rev[i] = ncpu - 1 - i
					rot[i] = (i + 1) % ncpu
				}
				merged := mergeStreams(t, "merged", streams, fwd)
				for _, order := range [][]int{rev, rot} {
					if other := mergeStreams(t, "merged", streams, order); !bytes.Equal(merged, other) {
						t.Fatalf("%s: merge order %v changed the output bytes", name, order)
					}
				}

				f := openStream(t, merged)
				if !f.SeqStamped() {
					t.Fatalf("%s: merged stream is not sequence-stamped", name)
				}
				serial, err := f.Records(1)
				if err != nil {
					t.Fatalf("%s: decode: %v", name, err)
				}
				parallel, err := f.Records(8)
				if err != nil {
					t.Fatalf("%s: parallel decode: %v", name, err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("%s: 1-worker and 8-worker decodes differ", name)
				}
				// Segments were dealt out in seq order, so the merged
				// replay is the original record stream.
				if !reflect.DeepEqual(serial, recs) {
					t.Fatalf("%s: merged replay is not the global sequence order", name)
				}

				for c, segs := range perCPU {
					a, err := f.ArenaCPU(2, c)
					if err != nil {
						t.Fatalf("%s: ArenaCPU(%d): %v", name, c, err)
					}
					var want []Record
					for _, s := range segs {
						want = append(want, s.recs...)
					}
					if got := a.Flatten(); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: cpu %d replay has %d records, want %d (or content differs)",
							name, c, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestMergeCPUsRejects: inputs that are not one capture's coherent set
// of sequence-stamped streams are errors, not silent corruption.
func TestMergeCPUsRejects(t *testing.T) {
	recs := makeTrace(600, 5)
	perCPU := splitSMP(recs, 2, 4)
	s0 := writeCPUStream(t, perCPU[0], CodecDelta, SegEncRaw, "smp")
	s1 := writeCPUStream(t, perCPU[1], CodecDelta, SegEncRaw, "smp")
	var buf bytes.Buffer

	if err := MergeCPUs(&buf, "m"); err == nil {
		t.Error("merge of zero inputs accepted")
	}

	// Unstamped (v2) input.
	v2 := writeSegmented(t, recs, 3, CodecDelta, "v2")
	if err := MergeCPUs(&buf, "m", openStream(t, v2)); err == nil {
		t.Error("merge accepted an unstamped v2 stream")
	}

	// Codec mismatch.
	raw0 := writeCPUStream(t, perCPU[0], CodecRaw, SegEncRaw, "smp")
	if err := MergeCPUs(&buf, "m", openStream(t, raw0), openStream(t, s1)); err == nil {
		t.Error("merge accepted mixed codecs")
	}

	// Duplicate sequence marks (the same stream twice is not a capture's
	// per-CPU set).
	if err := MergeCPUs(&buf, "m", openStream(t, s0), openStream(t, s0)); err == nil {
		t.Error("merge accepted duplicate sequence marks")
	}
}
