package trace

import "fmt"

// Lint checks a trace for well-formedness — the sanity pass the original
// project would have run while debugging microcode patches, since a bad
// patch produces subtly malformed records long before it produces wrong
// miss rates. It returns one message per violation class (not per
// record), capped so a corrupt trace cannot flood the caller.
//
// Checks:
//   - record kinds and widths are valid;
//   - instruction fetches are longword-aligned longwords;
//   - the PID field follows the last context-switch marker;
//   - kernel-mode instruction fetches come from system space (the
//     kernel executes from S0) and user-mode fetches never do;
//   - virtual PTE references lie in system space;
//   - context-switch markers carry the PID they announce.
func Lint(recs []Record) []string {
	type violation struct {
		count int
		first int
		msg   string
	}
	seen := map[string]*violation{}
	report := func(i int, key, format string, args ...any) {
		v := seen[key]
		if v == nil {
			v = &violation{first: i, msg: fmt.Sprintf(format, args...)}
			seen[key] = v
		}
		v.count++
	}

	curPID := -1 // unknown until the first switch
	for i, r := range recs {
		if r.Kind >= NumKinds {
			report(i, "kind", "invalid record kind %d", r.Kind)
			continue
		}
		switch r.Width {
		case 1, 2, 4:
		default:
			report(i, "width", "invalid width %d", r.Width)
		}

		switch r.Kind {
		case KindCtxSwitch:
			if r.PID != uint8(r.Extra) {
				report(i, "switch-pid", "context switch announces pid %d but carries %d", r.Extra, r.PID)
			}
			curPID = int(r.PID)
			continue
		case KindException:
			continue
		}

		if curPID >= 0 && int(r.PID) != curPID {
			report(i, "pid-drift", "record pid %d but last switch installed %d", r.PID, curPID)
		}

		switch r.Kind {
		case KindIFetch:
			if r.Addr%4 != 0 || r.Width != 4 {
				report(i, "ifetch-align", "ifetch not an aligned longword: %08x w%d", r.Addr, r.Width)
			}
			if r.Phys {
				report(i, "ifetch-phys", "physical ifetch")
			}
			system := r.Addr>>30 == 2
			if r.User && system {
				report(i, "ifetch-user-s0", "user-mode ifetch from system space %08x", r.Addr)
			}
			if !r.User && !system {
				report(i, "ifetch-kern-p0", "kernel-mode ifetch from process space %08x", r.Addr)
			}
		case KindPTERead, KindPTEWrite:
			if !r.Phys && r.Addr>>30 != 2 {
				report(i, "pte-space", "virtual PTE reference outside system space: %08x", r.Addr)
			}
		}
	}

	out := make([]string, 0, len(seen))
	for _, v := range seen {
		out = append(out, fmt.Sprintf("record %d: %s (%d occurrence(s))", v.first, v.msg, v.count))
	}
	// Deterministic order for tests and tooling.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
