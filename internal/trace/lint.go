package trace

import (
	"fmt"
	"sort"

	"atum/internal/findings"
)

// Lint violation class IDs. Each rendered violation carries its class
// in brackets ("record 9: [ifetch-align] ..."), and every class
// aggregates into at most one line per run — the flood cap — so tooling
// can match on stable identifiers rather than message prose.
const (
	LintKind            = "kind"             // invalid record kind
	LintWidth           = "width"            // memory reference width not 1, 2 or 4
	LintSwitchPID       = "switch-pid"       // switch marker PID/Extra disagree
	LintSwitchRedundant = "switch-redundant" // switch to the already-current PID
	LintExceptionWidth  = "exception-width"  // exception marker with nonzero width
	LintPIDDrift        = "pid-drift"        // record PID differs from last switch
	LintIFetchAlign     = "ifetch-align"     // ifetch not an aligned longword
	LintIFetchPhys      = "ifetch-phys"      // physical ifetch
	LintIFetchUserS0    = "ifetch-user-s0"   // user-mode ifetch from system space
	LintIFetchKernP0    = "ifetch-kern-p0"   // kernel-mode ifetch from process space
	LintPTESpace        = "pte-space"        // virtual PTE reference outside system space
	LintSegRawLen       = "seg-raw-len"      // declared uncompressed length disagrees with the inflated payload
)

// LintClasses lists every violation class ID the lint passes can emit
// (Lint over records, LintContainer over segment framing).
func LintClasses() []string {
	return []string{
		LintKind, LintWidth, LintSwitchPID, LintSwitchRedundant,
		LintExceptionWidth, LintPIDDrift, LintIFetchAlign, LintIFetchPhys,
		LintIFetchUserS0, LintIFetchKernP0, LintPTESpace, LintSegRawLen,
	}
}

// Lint checks a trace for well-formedness — the sanity pass the original
// project would have run while debugging microcode patches, since a bad
// patch produces subtly malformed records long before it produces wrong
// miss rates. It returns one message per violation class (not per
// record), capped so a corrupt trace cannot flood the caller.
//
// Checks:
//   - record kinds are valid and memory references have width 1, 2 or 4;
//   - marker records (exceptions in particular) carry width 0 — a
//     nonzero width means a patch emitted a marker through the
//     memory-reference path;
//   - instruction fetches are longword-aligned longwords;
//   - the PID field follows the last context-switch marker;
//   - kernel-mode instruction fetches come from system space (the
//     kernel executes from S0) and user-mode fetches never do;
//   - virtual PTE references lie in system space;
//   - context-switch markers carry the PID they announce and actually
//     switch — a marker announcing the already-current PID means the
//     patch fired on a context *load*, not a context *change*, double-
//     counting switches and splitting one process's stream in two.
func Lint(recs []Record) []string {
	fs := LintFindings(recs)
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// LintFindings is Lint in the shared findings schema
// (internal/findings): one trace-plane finding per violation class,
// carrying the class ID as Check, the first offending record index and
// the occurrence count. Lint renders exactly these findings, so the
// string and structured forms cannot drift; atum-vet, atum-stats
// -check and atum-serve's lint endpoint all emit this shape.
func LintFindings(recs []Record) []findings.Finding {
	type violation struct {
		class string
		count int
		first int
		msg   string
	}
	seen := map[string]*violation{}
	report := func(i int, key, format string, args ...any) {
		v := seen[key]
		if v == nil {
			v = &violation{class: key, first: i, msg: fmt.Sprintf(format, args...)}
			seen[key] = v
		}
		v.count++
	}

	curPID := -1 // unknown until the first switch
	for i, r := range recs {
		if r.Kind >= NumKinds {
			report(i, LintKind, "invalid record kind %d", r.Kind)
			continue
		}
		if r.Kind.IsMemRef() {
			switch r.Width {
			case 1, 2, 4:
			default:
				report(i, LintWidth, "invalid width %d", r.Width)
			}
		}

		switch r.Kind {
		case KindCtxSwitch:
			if r.PID != uint8(r.Extra) {
				report(i, LintSwitchPID, "context switch announces pid %d but carries %d", r.Extra, r.PID)
			}
			if curPID >= 0 && int(r.PID) == curPID {
				report(i, LintSwitchRedundant, "context switch announces already-current pid %d", r.PID)
			}
			curPID = int(r.PID)
			continue
		case KindException:
			if r.Width != 0 {
				report(i, LintExceptionWidth, "exception marker carries width %d", r.Width)
			}
			continue
		}

		if curPID >= 0 && int(r.PID) != curPID {
			report(i, LintPIDDrift, "record pid %d but last switch installed %d", r.PID, curPID)
		}

		switch r.Kind {
		case KindIFetch:
			if r.Addr%4 != 0 || r.Width != 4 {
				report(i, LintIFetchAlign, "ifetch not an aligned longword: %08x w%d", r.Addr, r.Width)
			}
			if r.Phys {
				report(i, LintIFetchPhys, "physical ifetch")
			}
			system := r.Addr>>30 == 2
			if r.User && system {
				report(i, LintIFetchUserS0, "user-mode ifetch from system space %08x", r.Addr)
			}
			if !r.User && !system {
				report(i, LintIFetchKernP0, "kernel-mode ifetch from process space %08x", r.Addr)
			}
		case KindPTERead, KindPTEWrite:
			if !r.Phys && r.Addr>>30 != 2 {
				report(i, LintPTESpace, "virtual PTE reference outside system space: %08x", r.Addr)
			}
		}
	}

	// Deterministic order for tests and tooling: by first-offending
	// record index, then message. (Sorting the rendered strings would
	// order "record 10" before "record 9".)
	vs := make([]*violation, 0, len(seen))
	for _, v := range seen {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].first != vs[j].first {
			return vs[i].first < vs[j].first
		}
		return vs[i].msg < vs[j].msg
	})
	out := make([]findings.Finding, len(vs))
	for i, v := range vs {
		out[i] = findings.Finding{
			Plane:    findings.PlaneTrace,
			Check:    v.class,
			Record:   findings.RecordIndex(uint64(v.first)),
			Count:    uint64(v.count),
			Severity: "error",
			Message:  v.msg,
		}
	}
	return out
}

// LintContainer checks framing-level invariants the record lint cannot
// see: every compressed segment's payload must inflate to exactly the
// uncompressed length its header declares. Decode tolerates a tail the
// header hides (output is capped at RawBytes), which is precisely why a
// lying header deserves a finding — it is the one corruption the decode
// path will not surface on its own. One finding per offending segment,
// anchored at the segment's first record index; truncated segments are
// skipped (the decode error already covers them).
func (f *File) LintContainer() []findings.Finding {
	var out []findings.Finding
	for i, info := range f.segs {
		if info.Encoding == SegEncRaw {
			continue
		}
		stored, err := f.SegmentPayload(i)
		if err != nil || uint64(len(stored)) < info.PayloadBytes {
			continue
		}
		n, ierr := inflatedLen(stored)
		var msg string
		switch {
		case ierr != nil:
			msg = fmt.Sprintf("segment %d compressed payload does not inflate: %v", info.Index, ierr)
		case n != info.RawBytes:
			msg = fmt.Sprintf("segment %d declares %d uncompressed bytes but payload inflates to %d",
				info.Index, info.RawBytes, n)
		default:
			continue
		}
		out = append(out, findings.Finding{
			Plane:    findings.PlaneTrace,
			Check:    LintSegRawLen,
			Record:   findings.RecordIndex(f.segBase[i]),
			Count:    1,
			Severity: "error",
			Message:  msg,
		})
	}
	return out
}
