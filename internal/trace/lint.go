package trace

import (
	"fmt"
	"sort"
)

// Lint checks a trace for well-formedness — the sanity pass the original
// project would have run while debugging microcode patches, since a bad
// patch produces subtly malformed records long before it produces wrong
// miss rates. It returns one message per violation class (not per
// record), capped so a corrupt trace cannot flood the caller.
//
// Checks:
//   - record kinds are valid and memory references have width 1, 2 or 4;
//   - marker records (exceptions in particular) carry width 0 — a
//     nonzero width means a patch emitted a marker through the
//     memory-reference path;
//   - instruction fetches are longword-aligned longwords;
//   - the PID field follows the last context-switch marker;
//   - kernel-mode instruction fetches come from system space (the
//     kernel executes from S0) and user-mode fetches never do;
//   - virtual PTE references lie in system space;
//   - context-switch markers carry the PID they announce and actually
//     switch — a marker announcing the already-current PID means the
//     patch fired on a context *load*, not a context *change*, double-
//     counting switches and splitting one process's stream in two.
func Lint(recs []Record) []string {
	type violation struct {
		count int
		first int
		msg   string
	}
	seen := map[string]*violation{}
	report := func(i int, key, format string, args ...any) {
		v := seen[key]
		if v == nil {
			v = &violation{first: i, msg: fmt.Sprintf(format, args...)}
			seen[key] = v
		}
		v.count++
	}

	curPID := -1 // unknown until the first switch
	for i, r := range recs {
		if r.Kind >= NumKinds {
			report(i, "kind", "invalid record kind %d", r.Kind)
			continue
		}
		if r.Kind.IsMemRef() {
			switch r.Width {
			case 1, 2, 4:
			default:
				report(i, "width", "invalid width %d", r.Width)
			}
		}

		switch r.Kind {
		case KindCtxSwitch:
			if r.PID != uint8(r.Extra) {
				report(i, "switch-pid", "context switch announces pid %d but carries %d", r.Extra, r.PID)
			}
			if curPID >= 0 && int(r.PID) == curPID {
				report(i, "switch-redundant", "context switch announces already-current pid %d", r.PID)
			}
			curPID = int(r.PID)
			continue
		case KindException:
			if r.Width != 0 {
				report(i, "exception-width", "exception marker carries width %d", r.Width)
			}
			continue
		}

		if curPID >= 0 && int(r.PID) != curPID {
			report(i, "pid-drift", "record pid %d but last switch installed %d", r.PID, curPID)
		}

		switch r.Kind {
		case KindIFetch:
			if r.Addr%4 != 0 || r.Width != 4 {
				report(i, "ifetch-align", "ifetch not an aligned longword: %08x w%d", r.Addr, r.Width)
			}
			if r.Phys {
				report(i, "ifetch-phys", "physical ifetch")
			}
			system := r.Addr>>30 == 2
			if r.User && system {
				report(i, "ifetch-user-s0", "user-mode ifetch from system space %08x", r.Addr)
			}
			if !r.User && !system {
				report(i, "ifetch-kern-p0", "kernel-mode ifetch from process space %08x", r.Addr)
			}
		case KindPTERead, KindPTEWrite:
			if !r.Phys && r.Addr>>30 != 2 {
				report(i, "pte-space", "virtual PTE reference outside system space: %08x", r.Addr)
			}
		}
	}

	// Deterministic order for tests and tooling: by first-offending
	// record index, then message. (Sorting the rendered strings would
	// order "record 10" before "record 9".)
	vs := make([]*violation, 0, len(seen))
	for _, v := range seen {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].first != vs[j].first {
			return vs[i].first < vs[j].first
		}
		return vs[i].msg < vs[j].msg
	})
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("record %d: %s (%d occurrence(s))", v.first, v.msg, v.count)
	}
	return out
}
