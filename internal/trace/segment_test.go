package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
)

// writeSegmented splits recs into n roughly equal segments and writes
// them through a SegmentWriter.
func writeSegmented(t *testing.T, recs []Record, n int, codec uint16, meta string) []byte {
	t.Helper()
	return writeSegmentedEnc(t, recs, n, codec, SegEncRaw, meta)
}

// writeSegmentedEnc is writeSegmented with an explicit per-segment
// payload encoding.
func writeSegmentedEnc(t *testing.T, recs []Record, n int, codec uint16, enc uint8, meta string) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, codec, meta)
	if err != nil {
		t.Fatalf("NewSegmentWriter: %v", err)
	}
	if err := sw.SetEncoding(enc); err != nil {
		t.Fatalf("SetEncoding: %v", err)
	}
	per := (len(recs) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(recs) {
			lo = len(recs)
		}
		if hi > len(recs) {
			hi = len(recs)
		}
		if _, err := sw.WriteSegment(recs[lo:hi], uint64(i), uint64(i)*1000); err != nil {
			t.Fatalf("WriteSegment %d: %v", i, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

// TestSegmentStitchingDeterminism: the same records written as N
// segments must decode identically to the monolithic container, for
// both codecs and both payload encodings — the container-level half of
// the stitching guarantee. The compressed lane must be byte-identical
// to the uncompressed one: flate changes what is on disk, never what
// decodes.
func TestSegmentStitchingDeterminism(t *testing.T) {
	recs := makeTrace(5000, 7)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		var mono bytes.Buffer
		if err := WriteFileMeta(&mono, recs, codec, "stitch-test"); err != nil {
			t.Fatalf("WriteFileMeta: %v", err)
		}
		want, wantMeta, err := readAllMeta(bytes.NewReader(mono.Bytes()))
		if err != nil {
			t.Fatalf("monolithic decode: %v", err)
		}
		for _, enc := range []uint8{SegEncRaw, SegEncFlate} {
			for _, n := range []int{1, 3, 8} {
				b := writeSegmentedEnc(t, recs, n, codec, enc, "stitch-test")
				rd, err := Open(bytes.NewReader(b))
				if err != nil {
					t.Fatalf("codec %d enc %d n=%d: Open: %v", codec, enc, n, err)
				}
				if !rd.Segmented() {
					t.Fatalf("codec %d enc %d n=%d: stream not recognised as segmented", codec, enc, n)
				}
				got, err := rd.Records()
				if err != nil {
					t.Fatalf("codec %d enc %d n=%d: Records: %v", codec, enc, n, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("codec %d enc %d n=%d: segmented decode differs from monolithic", codec, enc, n)
				}
				if rd.Meta() != wantMeta {
					t.Fatalf("codec %d enc %d n=%d: meta %q != %q", codec, enc, n, rd.Meta(), wantMeta)
				}
				segs := rd.Segments()
				if len(segs) != n {
					t.Fatalf("codec %d enc %d n=%d: %d segments reported", codec, enc, n, len(segs))
				}
				var total uint64
				compressed := 0
				for i, s := range segs {
					if s.Index != uint32(i) {
						t.Fatalf("segment %d has index %d", i, s.Index)
					}
					if s.Dropped != uint64(i) || s.DilationCycles != uint64(i)*1000 {
						t.Fatalf("segment %d metadata not preserved: %+v", i, s)
					}
					switch s.Encoding {
					case SegEncRaw:
						if s.RawBytes != s.PayloadBytes {
							t.Fatalf("raw segment %d: RawBytes %d != PayloadBytes %d", i, s.RawBytes, s.PayloadBytes)
						}
					case SegEncFlate:
						compressed++
						if s.PayloadBytes >= s.RawBytes {
							t.Fatalf("flate segment %d stored %d bytes for %d raw — writer should have fallen back",
								i, s.PayloadBytes, s.RawBytes)
						}
					default:
						t.Fatalf("segment %d has unexpected encoding %d", i, s.Encoding)
					}
					total += s.Records
				}
				if enc == SegEncRaw && compressed != 0 {
					t.Fatalf("codec %d n=%d: raw-encoded stream reports %d compressed segments", codec, n, compressed)
				}
				if enc == SegEncFlate && compressed == 0 {
					t.Fatalf("codec %d n=%d: no segment actually compressed", codec, n)
				}
				if total != uint64(len(recs)) {
					t.Fatalf("codec %d enc %d n=%d: segment counts sum to %d, want %d", codec, enc, n, total, len(recs))
				}
			}
		}
	}
}

// TestSegmentedArena: Reader.Arena must terminate and return every
// record for segmented streams, where Remaining is 0 at each segment
// boundary.
func TestSegmentedArena(t *testing.T) {
	recs := makeTrace(3000, 9)
	b := writeSegmented(t, recs, 4, CodecDelta, "")
	rd, err := Open(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	a, err := rd.Arena()
	if err != nil {
		t.Fatalf("Arena: %v", err)
	}
	if a.NumRecords() != len(recs) {
		t.Fatalf("arena has %d records, want %d", a.NumRecords(), len(recs))
	}
	if !reflect.DeepEqual(a.Flatten(), recs) {
		t.Fatal("arena records differ from input")
	}
}

// TestSegmentedStreamingDecode: Decode batches that straddle segment
// boundaries must come back seamless, and the stream must end with a
// clean io.EOF.
func TestSegmentedStreamingDecode(t *testing.T) {
	recs := makeTrace(1000, 3)
	b := writeSegmented(t, recs, 8, CodecDelta, "")
	rd, err := Open(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	buf := make([]Record, 77) // deliberately coprime with the segment size
	for {
		n, err := rd.Decode(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Decode after %d records: %v", len(got), err)
		}
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("streamed %d records, want %d identical", len(got), len(recs))
	}
	// Further decodes keep reporting a clean EOF.
	if n, err := rd.Decode(buf); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF Decode = (%d, %v), want (0, io.EOF)", n, err)
	}
}

// TestSegmentEmptySegments: zero-record segments (a spill racing an
// already-drained buffer) are legal and skipped transparently.
func TestSegmentEmptySegments(t *testing.T) {
	recs := makeTrace(10, 1)
	var buf bytes.Buffer
	sw, err := NewSegmentWriter(&buf, CodecRaw, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range [][]Record{nil, recs[:4], nil, recs[4:], nil} {
		if _, err := sw.WriteSegment(seg, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("got %d records through empty segments, want %d", len(got), len(recs))
	}
}

// TestTruncatedMonolithic: a monolithic stream cut mid-payload must
// fail with a wrapped io.ErrUnexpectedEOF naming the record index —
// including the boundary case where the cut lands exactly between
// records, which io.ReadFull reports as a bare io.EOF.
func TestTruncatedMonolithic(t *testing.T) {
	recs := makeTrace(100, 5)
	for _, codec := range []uint16{CodecRaw, CodecDelta} {
		var buf bytes.Buffer
		if err := WriteFile(&buf, recs, codec); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		payloadStart := len(full)
		switch codec {
		case CodecRaw:
			payloadStart = len(full) - len(recs)*RecordBytes
		case CodecDelta:
			payloadStart = 8 + 16 // magic + fixed header, no meta
		}
		for _, cut := range []int{payloadStart, payloadStart + 1, payloadStart + RecordBytes, len(full) - 1} {
			rd, err := Open(bytes.NewReader(full[:cut]))
			if err != nil {
				t.Fatalf("codec %d cut=%d: header rejected: %v", codec, cut, err)
			}
			_, err = rd.Records()
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("codec %d cut=%d: err = %v, want io.ErrUnexpectedEOF", codec, cut, err)
			}
		}
	}
}

// TestTruncatedErrorNamesRecordIndex: the truncation error must
// identify which record the stream died in.
func TestTruncatedErrorNamesRecordIndex(t *testing.T) {
	recs := makeTrace(100, 5)
	var buf bytes.Buffer
	if err := WriteFile(&buf, recs, CodecRaw); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	payloadStart := len(full) - len(recs)*RecordBytes
	// Cut mid-way through record 3.
	rd, err := Open(bytes.NewReader(full[:payloadStart+3*RecordBytes+2]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Records()
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	if want := "record 3"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("err %q does not name %q", err, want)
	}
}

// TestTruncatedSegmented: cuts inside a segment header, at a record
// boundary inside a payload, and mid-record must all surface
// io.ErrUnexpectedEOF; a cut exactly at the start of a would-be next
// segment is a clean EOF (the container is append-only, so that is a
// complete stream).
func TestTruncatedSegmented(t *testing.T) {
	recs := makeTrace(64, 11)
	b := writeSegmented(t, recs, 2, CodecRaw, "")
	hdrLen := 8 + 8 // segMagic + stream header, no meta
	seg0 := hdrLen + 4 + segHeaderBytes + 32*RecordBytes
	cuts := map[int]bool{ // cut offset -> want clean records up to there
		hdrLen + 2:                                false, // inside segment 0's marker
		hdrLen + 4 + 10:                           false, // inside segment 0's header
		hdrLen + 4 + segHeaderBytes + 12:          false, // mid-record in segment 0
		seg0 + 4 + segHeaderBytes - 1:             false, // inside segment 1's header
		seg0 + 4 + segHeaderBytes + 8*RecordBytes: false, // record boundary, count unmet
	}
	for cut, wantClean := range cuts {
		rd, err := Open(bytes.NewReader(b[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: header rejected: %v", cut, err)
		}
		_, err = rd.Records()
		if wantClean {
			if err != nil {
				t.Fatalf("cut=%d: err = %v, want nil", cut, err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// Cut exactly at the end of segment 0: a valid, complete stream.
	rd, err := Open(bytes.NewReader(b[:seg0]))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Records()
	if err != nil {
		t.Fatalf("clean one-segment prefix: %v", err)
	}
	if !reflect.DeepEqual(got, recs[:32]) {
		t.Fatalf("one-segment prefix decoded %d records, want 32", len(got))
	}
}

// TestSegmentHeaderValidation: corrupt segment headers error rather
// than desync or over-allocate.
func TestSegmentHeaderValidation(t *testing.T) {
	recs := makeTrace(16, 2)
	base := writeSegmented(t, recs, 1, CodecRaw, "")
	hdrLen := 8 + 8
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), base...)
		mutate(b)
		rd, err := Open(bytes.NewReader(b))
		if err != nil {
			return err
		}
		_, err = rd.Records()
		return err
	}
	cases := map[string]func(b []byte){
		"bad marker":    func(b []byte) { b[hdrLen] = 'X' },
		"bad index":     func(b []byte) { b[hdrLen+4] = 9 },
		"huge count":    func(b []byte) { b[hdrLen+8+4] = 0xFF; b[hdrLen+8+5] = 0xFF },
		"count too big": func(b []byte) { b[hdrLen+8] = 17 }, // 17 raw records in a 16-record payload
	}
	for name, mutate := range cases {
		if err := corrupt(mutate); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestSegmentWriterStickyError: a failing sink poisons the writer so a
// capture loop can detect it once and fall back to counted-drop mode.
func TestSegmentWriterStickyError(t *testing.T) {
	recs := makeTrace(32, 4)
	sink := &failAfter{n: 64}
	sw, err := NewSegmentWriter(sink, CodecRaw, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.WriteSegment(recs, 0, 0); err == nil {
		t.Fatal("write into failing sink succeeded")
	}
	if sw.Err() == nil {
		t.Fatal("Err() nil after sink failure")
	}
	if _, err := sw.WriteSegment(recs, 0, 0); err == nil {
		t.Fatal("sticky error not reported on retry")
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close did not surface the sink error")
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("sink stalled")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, fmt.Errorf("sink stalled")
	}
	f.n -= len(p)
	return len(p), nil
}

// TestOpenMonolithic: the unified Reader serves the legacy container.
func TestOpenMonolithic(t *testing.T) {
	recs := makeTrace(500, 6)
	var buf bytes.Buffer
	if err := WriteFileMeta(&buf, recs, CodecDelta, "mono"); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Segmented() {
		t.Fatal("monolithic stream reported as segmented")
	}
	if rd.Meta() != "mono" {
		t.Fatalf("meta %q", rd.Meta())
	}
	if rd.Remaining() != 500 {
		t.Fatalf("Remaining = %d", rd.Remaining())
	}
	if len(rd.Segments()) != 0 {
		t.Fatal("monolithic stream reported segments")
	}
	got, err := rd.Records()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("Records differ from input")
	}
}
