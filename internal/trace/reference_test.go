package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file preserves the pre-batch decoder — one record at a time
// through bufio.Reader, per-byte varint reads, per-record error
// wrapping — as a test-only artifact. It is the benchmark baseline the
// batch path is measured against (BENCH_decode.json) and an independent
// oracle for the decode-equivalence tests: three implementations now
// agree on every stream, two of which share no scanning code.

type referenceDecoder struct {
	br        *bufio.Reader
	codec     uint16
	count     uint64
	read      uint64
	segmented bool
	segs      int
	lastAddr  [NumKinds]uint32
	lastPID   uint8
}

// referenceReadAll decodes a whole stream with the per-record reference
// path.
func referenceReadAll(r io.Reader) ([]Record, error) {
	d := &referenceDecoder{br: bufio.NewReader(r)}
	var m [8]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	var metaLen uint32
	switch m {
	case magic:
		var hdr [16]byte
		if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
		d.codec = binary.LittleEndian.Uint16(hdr[2:])
		d.count = binary.LittleEndian.Uint64(hdr[4:])
		metaLen = binary.LittleEndian.Uint32(hdr[12:])
	case segMagic:
		var hdr [8]byte
		if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: reading segment-stream header: %w", err)
		}
		d.codec = binary.LittleEndian.Uint16(hdr[2:])
		metaLen = binary.LittleEndian.Uint32(hdr[4:])
		d.segmented = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	if d.count > maxRecordCount || metaLen > maxMetaLen {
		return nil, fmt.Errorf("trace: implausible header")
	}
	if _, err := io.CopyN(io.Discard, d.br, int64(metaLen)); err != nil {
		return nil, fmt.Errorf("trace: reading metadata: %w", promisedEOF(err))
	}
	var recs []Record
	for {
		if d.read == d.count {
			if !d.segmented {
				return recs, nil
			}
			err := d.refNextSegment()
			if err == io.EOF {
				return recs, nil
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		rec, err := d.refDecodeOne()
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

func (d *referenceDecoder) refNextSegment() error {
	var mk [4]byte
	if _, err := io.ReadFull(d.br, mk[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: segment %d header: %w", d.segs, promisedEOF(err))
	}
	if mk != segMarker {
		return fmt.Errorf("trace: segment %d: bad marker %q", d.segs, mk)
	}
	var hdr [segHeaderBytes]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		return fmt.Errorf("trace: segment %d header: %w", d.segs, promisedEOF(err))
	}
	info, err := parseSegmentHeader(hdr[:], d.segs, d.codec)
	if err != nil {
		return err
	}
	d.segs++
	d.count += info.Records
	d.lastAddr = [NumKinds]uint32{}
	d.lastPID = 0
	return nil
}

func (d *referenceDecoder) refDecodeOne() (Record, error) {
	i := d.read
	if d.codec == CodecRaw {
		var b [RecordBytes]byte
		if _, err := io.ReadFull(d.br, b[:]); err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, promisedEOF(err))
		}
		d.read++
		return DecodeRecord(b[:]), nil
	}
	h, err := d.br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d: %w", i, promisedEOF(err))
	}
	k := Kind(h & 7)
	if k >= NumKinds {
		return Record{}, fmt.Errorf("trace: record %d: invalid kind %d", i, h&7)
	}
	rec := Record{Kind: k, User: h&flagUser != 0, Phys: h&flagPhys != 0}
	if k.IsMemRef() {
		rec.Width = 1 << (h >> 3 & 3)
	}
	if h&deltaPIDChanged != 0 {
		p, err := d.br.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d pid: %w", i, promisedEOF(err))
		}
		d.lastPID = p
	}
	rec.PID = d.lastPID
	delta, err := binary.ReadVarint(d.br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d addr: %w", i, promisedEOF(err))
	}
	rec.Addr = uint32(int64(d.lastAddr[rec.Kind]) + delta)
	d.lastAddr[rec.Kind] = rec.Addr
	if rec.Kind == KindCtxSwitch || rec.Kind == KindException {
		x, err := binary.ReadUvarint(d.br)
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d extra: %w", i, promisedEOF(err))
		}
		rec.Extra = uint16(x)
	}
	d.read++
	return rec, nil
}
