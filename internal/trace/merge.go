package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// SeqCounter issues the machine-wide sequence marks that stamp SMP
// segments. One counter is shared by every CPU's spill service; marks
// start at 1 (0 means "unstamped" in SegmentInfo) and each spill takes
// the next one at the moment its segment is written, so the marks are
// the global spill order by construction. The counter is atomic so
// spill paths need no extra lock even if cores ever spill from
// concurrent goroutines.
type SeqCounter struct {
	n atomic.Uint64
}

// Next returns the next sequence mark (1, 2, 3, ...).
func (c *SeqCounter) Next() uint64 { return c.n.Add(1) }

// MergeCPUs interleaves the per-CPU streams of one SMP capture into a
// single sequence-stamped stream on w, ordered by global sequence mark.
// Every input must be a sequence-stamped (v3) segmented stream and all
// must share one codec; segments keep their cpu/seq stamps and
// per-segment counters, and each is re-encoded with its original
// payload encoding. Because marks are unique across a capture (one
// shared SeqCounter) the output is a pure function of the input
// segments: any permutation of files yields byte-identical output, so
// a merged trace is a stable artifact to diff, hash, or cache.
//
// The merged stream replays exactly the machine-wide spill order —
// trace.Open / OpenFile consumers see one stream whose segments carry
// per-CPU attribution, and ArenaCPU recovers any single core's replay
// from it.
func MergeCPUs(w io.Writer, meta string, files ...*File) error {
	if len(files) == 0 {
		return fmt.Errorf("trace: merge: no input streams")
	}
	codec := files[0].codec
	for i, f := range files {
		if !f.segmented || !f.seqStamped {
			return fmt.Errorf("trace: merge: input %d is not a sequence-stamped segmented stream", i)
		}
		if f.codec != codec {
			return fmt.Errorf("trace: merge: input %d codec %d differs from input 0 codec %d", i, f.codec, codec)
		}
	}

	type slot struct {
		file int
		seg  int
		seq  uint64
	}
	var slots []slot
	seen := make(map[uint64]int, 64)
	for fi, f := range files {
		for si, info := range f.segs {
			if prev, dup := seen[info.Seq]; dup {
				return fmt.Errorf("trace: merge: sequence mark %d appears in inputs %d and %d (streams are not one capture's set)",
					info.Seq, prev, fi)
			}
			seen[info.Seq] = fi
			slots = append(slots, slot{file: fi, seg: si, seq: info.Seq})
		}
	}
	// Marks are unique (checked above), so this order — and therefore
	// the output bytes — is independent of the argument order.
	sort.Slice(slots, func(i, j int) bool { return slots[i].seq < slots[j].seq })

	sw, err := NewSegmentWriterV3(w, codec, meta)
	if err != nil {
		return err
	}
	for _, s := range slots {
		f := files[s.file]
		info := f.segs[s.seg]
		recs, err := f.Segment(s.seg)
		if err != nil {
			return fmt.Errorf("trace: merge: input %d: %w", s.file, err)
		}
		if err := sw.SetEncoding(info.Encoding); err != nil {
			return err
		}
		if _, err := sw.WriteSegmentSeq(recs, info.Dropped, info.DilationCycles, info.CPU, info.Seq); err != nil {
			return fmt.Errorf("trace: merge: input %d segment %d: %w", s.file, s.seg, err)
		}
	}
	return sw.Close()
}
