package trace

import (
	"fmt"
	"io"
)

// Segment-granular decode entry point for the streaming analysis
// pipeline (internal/sweep). The spill service tees every segment it
// writes (SegmentWriter.Tee) to a consumer that decodes it immediately
// with DecodeSegment — the same batch codec layer (batch.go) behind the
// streaming Decoder and the random-access File, so a streamed decode is
// byte-identical to re-reading the file, including the record-indexed
// truncation errors.

// StreamSegment is one written segment handed to a SegmentWriter tee:
// the stream codec, the segment's header metadata, and its encoded
// payload. The payload aliases the writer's reusable encode buffer, so
// it is valid only for the duration of the tee call — consumers must
// decode (or copy) before returning.
type StreamSegment struct {
	Codec   uint16
	Info    SegmentInfo
	Payload []byte
}

// DecodeSegment decodes one segment payload into records, reusing dst's
// capacity when it suffices (pass the previous call's result to decode
// a whole stream with one steady-state allocation). base is the
// absolute index of the segment's first record; errors name record
// indexes relative to it, exactly as the file-reading decoders would.
//
// The payload is the segment's stored form: when info.Encoding says the
// segment is compressed, DecodeSegment inflates it (into a pooled
// buffer) before decoding, so consumers are encoding-agnostic. The
// payload may be shorter than Info.PayloadBytes promises (a capture
// cut off mid-spill): the decoded prefix is returned alongside a
// wrapped io.ErrUnexpectedEOF — the same partial-delivery contract as
// Reader.Decode, so a streamed consumer and a batch re-read of the
// truncated file observe identical records and identical errors.
func DecodeSegment(codec uint16, info SegmentInfo, payload []byte, dst []Record, base uint64) ([]Record, error) {
	if codec != CodecRaw && codec != CodecDelta {
		return dst[:0], fmt.Errorf("trace: unknown codec %d", codec)
	}
	short := uint64(len(payload)) < info.PayloadBytes
	if !short {
		// Never decode past the framing: a payload slice longer than the
		// header promises would desynchronise against the file readers.
		payload = payload[:info.PayloadBytes]
	}
	if info.Encoding != SegEncRaw {
		// The payload is the stored (compressed) form — inflate it into
		// a pooled buffer before the codec sees it. Records never alias
		// the inflated bytes, so returning the buffer on exit is safe.
		ib := infBufPool.Get().(*[]byte)
		defer infBufPool.Put(ib)
		data, infShort, err := inflateSegment(info, payload, short, ib)
		if err != nil {
			return dst[:0], err
		}
		payload, short = data, infShort
	}
	if info.Records == 0 {
		if short {
			return dst[:0], fmt.Errorf("trace: segment %d payload: %w", info.Index, io.ErrUnexpectedEOF)
		}
		return dst[:0], nil
	}

	// The header's record count sizes the buffer, clamped by what the
	// payload could possibly encode (counts are untrusted input).
	alloc := info.Records
	if max := uint64(len(payload))/minEncRecordBytes + 1; alloc > max {
		alloc = max
	}
	if uint64(cap(dst)) < alloc {
		dst = make([]Record, alloc)
	} else {
		dst = dst[:alloc]
	}

	var nrec int
	var derr *batchError
	if codec == CodecRaw {
		nrec, _ = decodeRawBatch(dst, payload)
	} else {
		var st deltaState
		nrec, _, derr = decodeDeltaBatch(dst, payload, &st)
	}
	out := dst[:nrec]
	if derr != nil && !derr.truncated {
		return out, recordError(derr, base+uint64(nrec))
	}
	if uint64(nrec) < info.Records {
		// The payload ran out before the count was met — the same
		// record-indexed truncation the file readers report.
		field := ""
		if derr != nil {
			field = derr.field
		}
		return out, recordError(&batchError{field: field, truncated: true}, base+uint64(nrec))
	}
	if short {
		// All records decoded but the framing promised more payload than
		// arrived; the file readers fail discarding the tail, and so do we.
		return out, fmt.Errorf("trace: segment %d payload: %w", info.Index, io.ErrUnexpectedEOF)
	}
	mDecodeSegments.Inc()
	mDecodeRecords.Add(uint64(nrec))
	mDecodeBytes.Add(uint64(len(payload)))
	return out, nil
}
