package trace

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
	"time"
)

// Per-segment payload encodings (container v2). The codec field picks
// how records become bytes (raw or delta); the encoding byte picks how
// those bytes are stored in the segment. The two compose: a flate
// segment holds the deflated codec stream, and rawLen in the header
// declares how many codec bytes it inflates back to. Headers are never
// encoded, so the segment index stays seekable without inflating a
// single payload byte.
//
// The flag is a full byte so later encodings — an ETM-style
// atom/address-register codec, say — slot in as new values without
// another container revision; readers reject values they do not know.
const (
	SegEncRaw   uint8 = 0 // payload stored exactly as the codec emitted it
	SegEncFlate uint8 = 1 // payload deflated (RFC 1951) after codec encoding

	segEncMax = SegEncFlate
)

// EncodingName renders a payload encoding for tools (atum-stats).
func EncodingName(enc uint8) string {
	switch enc {
	case SegEncRaw:
		return "raw"
	case SegEncFlate:
		return "flate"
	}
	return fmt.Sprintf("enc%d", enc)
}

// spillFlateLevel is the writer's compression level. The spill path
// runs with the machine frozen, so compression time is capture-visible
// dilation: BestSpeed already shrinks the delta stream several-fold
// (the structure-aware codec has done the hard work) and higher levels
// buy little for triple the CPU.
const spillFlateLevel = flate.BestSpeed

// flateWriterPool recycles deflaters across segments and writers; a
// flate.Writer carries large internal tables that would otherwise be
// reallocated per spill.
var flateWriterPool = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, spillFlateLevel)
		return w
	},
}

// deflateInto compresses src into dst (which the caller has reset).
func deflateInto(dst *bytes.Buffer, src []byte) error {
	fw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(fw)
	fw.Reset(dst)
	if _, err := fw.Write(src); err != nil {
		return err
	}
	return fw.Close()
}

// inflater pairs a pooled flate reader with the bytes.Reader it resets
// onto, so steady-state inflation allocates nothing.
type inflater struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var inflaterPool = sync.Pool{
	New: func() any {
		inf := &inflater{}
		inf.fr = flate.NewReader(&inf.src)
		return inf
	},
}

// infBufPool recycles inflated-payload buffers across segment decodes,
// the compressed-lane counterpart of payBufPool.
var infBufPool = sync.Pool{New: func() any { return new([]byte) }}

// inflateChunk bounds how much inflateSegment grows its output per
// read, so a forged rawLen cannot force a giant up-front allocation —
// memory grows only as fast as the deflate stream actually produces
// bytes.
const inflateChunk = 64 << 10

// inflateSegment decodes a segment's stored payload back into codec
// bytes. stored is what the container actually holds (possibly cut
// short of PayloadBytes: storedShort); the result aliases *buf, which
// is grown as needed and handed back for reuse. Output is capped at the
// header's RawBytes — whether the deflate stream agrees with that
// declaration is the container lint's question (LintSegRawLen), not a
// decode error.
//
// short reports that the inflated bytes fall short of RawBytes: the
// stored payload was truncated, or the deflate stream ended (or failed)
// early. A deflate error in a fully-present payload is instead a hard
// error, worded identically on every read path so the streaming and
// random-access decoders stay byte-equivalent.
func inflateSegment(info SegmentInfo, stored []byte, storedShort bool, buf *[]byte) (data []byte, short bool, err error) {
	if info.Encoding != SegEncFlate {
		return nil, false, fmt.Errorf("trace: segment %d: unknown payload encoding %d", info.Index, info.Encoding)
	}
	start := time.Now()
	defer func() { mDecodeInflateSecs.Observe(time.Since(start).Seconds()) }()

	inf := inflaterPool.Get().(*inflater)
	defer inflaterPool.Put(inf)
	inf.src.Reset(stored)
	if err := inf.fr.(flate.Resetter).Reset(&inf.src, nil); err != nil {
		return nil, false, fmt.Errorf("trace: segment %d payload: inflate: %v", info.Index, err)
	}

	want := info.RawBytes
	out := (*buf)[:0]
	var ferr error
	for uint64(len(out)) < want && ferr == nil {
		chunk := want - uint64(len(out))
		if chunk > inflateChunk {
			chunk = inflateChunk
		}
		need := len(out) + int(chunk)
		if cap(out) < need {
			grown := make([]byte, len(out), max(need, 2*cap(out)))
			copy(grown, out)
			out = grown
		}
		var n int
		n, ferr = inf.fr.Read(out[len(out):need])
		out = out[:len(out)+n]
	}
	*buf = out
	switch {
	case uint64(len(out)) == want:
		// Everything the header promised arrived; the stored payload may
		// still be short of its own framing, which the caller's framing
		// check reports.
		return out, storedShort, nil
	case ferr == io.EOF || ferr == io.ErrUnexpectedEOF:
		return out, true, nil
	case storedShort:
		// A deflate stream cut off mid-block can fail arbitrarily; the
		// truncation explains it, so report it as such rather than as
		// corruption.
		return out, true, nil
	default:
		return nil, false, fmt.Errorf("trace: segment %d payload: inflate: %v", info.Index, ferr)
	}
}

// inflatedLen inflates stored completely and returns the output byte
// count, for checking a header's RawBytes declaration. The count is
// clamped just past the container's payload bound so a deflate bomb
// cannot run away.
func inflatedLen(stored []byte) (uint64, error) {
	inf := inflaterPool.Get().(*inflater)
	defer inflaterPool.Put(inf)
	inf.src.Reset(stored)
	if err := inf.fr.(flate.Resetter).Reset(&inf.src, nil); err != nil {
		return 0, err
	}
	var total uint64
	var scratch [inflateChunk]byte
	for total <= maxSegPayload {
		n, err := inf.fr.Read(scratch[:])
		total += uint64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
