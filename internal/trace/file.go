package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrEmpty reports a zero-length input: not a trace stream at all, as
// opposed to one truncated mid-header (which stays an
// io.ErrUnexpectedEOF naming what was being read). Both Open and
// OpenReaderAt wrap it, so callers distinguish the two with
// errors.Is(err, ErrEmpty).
var ErrEmpty = errors.New("empty trace stream")

// Stream file formats. Two on-disk containers share the record codecs:
//
// Monolithic ("ATUMTRC"), one contiguous payload:
//
//	magic   [8]byte  "ATUMTRC\x00"
//	version uint16   (2)
//	codec   uint16   (CodecRaw or CodecDelta)
//	count   uint64   record count
//	metaLen uint32   length of the metadata string (may be 0)
//	meta    [metaLen]byte   free-form capture provenance (UTF-8)
//	payload
//
// Segmented ("ATUMSEG"), an append-only stream of length-prefixed
// segments written as the reserved buffer spills (see SegmentWriter):
//
//	magic   [8]byte  "ATUMSEG\x00"
//	version uint16   (2; readers also accept 1)
//	codec   uint16
//	metaLen uint32
//	meta    [metaLen]byte
//	segment*   (see segment.go for the per-segment header; v2 headers
//	            carry a payload-encoding byte and an uncompressed
//	            length, so segments can be individually flate-packed)
//
// Open reads either container through one Reader; a segmented stream
// decodes to the exact concatenation of its segments' records, so
// consumers never see the difference. CodecRaw stores RecordBytes per
// record. CodecDelta stores, per record, a header byte
// (kind/user/phys/width), the PID only when it changes, and the address
// as a zigzag varint delta against the previous address of the same
// kind — instruction fetches and stack references are highly
// sequential, so this typically compresses 3-4x. Delta state resets at
// every segment boundary: each segment is independently decodable.
const (
	CodecRaw uint16 = iota
	CodecDelta
)

var (
	magic    = [8]byte{'A', 'T', 'U', 'M', 'T', 'R', 'C', 0}
	segMagic = [8]byte{'A', 'T', 'U', 'M', 'S', 'E', 'G', 0}
)

const (
	version      = 2
	segVersion   = 2 // default written; v1 (no per-segment encoding) still readable
	segVersionV1 = 1
	segVersion3  = 3 // sequence-stamped (SMP per-CPU / merged) streams
)

// segHdrLen returns the per-segment header size (after the marker) for
// a segment-stream version.
func segHdrLen(v uint16) int {
	switch v {
	case segVersionV1:
		return segHeaderBytesV1
	case segVersion3:
		return segHeaderBytesV3
	}
	return segHeaderBytes
}

// maxMetaLen bounds the provenance string (untrusted input on read).
const maxMetaLen = 1 << 16

// maxRecordCount bounds a (per-stream or per-segment) record count from
// an untrusted header.
const maxRecordCount = 1 << 34

// WriteFile encodes recs to w using the given codec, with no metadata.
func WriteFile(w io.Writer, recs []Record, codec uint16) error {
	return WriteFileMeta(w, recs, codec, "")
}

// WriteFileMeta encodes recs with a provenance string (workload names,
// machine configuration, capture options) that tools display.
func WriteFileMeta(w io.Writer, recs []Record, codec uint16, meta string) error {
	if len(meta) > maxMetaLen {
		return fmt.Errorf("trace: metadata too long (%d bytes)", len(meta))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], codec)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(recs)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(meta)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(meta); err != nil {
		return err
	}
	switch codec {
	case CodecRaw:
		if err := writeRaw(bw, recs); err != nil {
			return err
		}
	case CodecDelta:
		if err := writeDelta(bw, recs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unknown codec %d", codec)
	}
	return bw.Flush()
}

// Reader is the single read handle for trace streams: Open validates
// the header of either container format and the Reader then serves
// whichever access pattern the caller needs — streaming batches
// (Decode), a chunked shared arena (Arena), or one contiguous slice
// (Records). The three are alternatives over one underlying stream
// position, not independent views: pick one, or mix Decode with a final
// Arena/Records call for the remainder.
type Reader struct {
	d *Decoder
}

// Open reads and validates a trace stream header (monolithic or
// segmented) and returns the read handle positioned at the first
// record. It is the only streaming entry point: one-call decodes that
// used to go through ReadFile/ReadFileMeta/ReadArena are Open followed
// by Records/Arena (plus Meta for the provenance string), and the
// batch-pulling loop the old NewDecoder served is Open followed by
// Decode. For random access over an io.ReaderAt, use OpenReaderAt. The
// traceopen analyzer keeps this the case repo-wide: reintroducing a
// wrapper (or calling one) is a vet finding.
func Open(r io.Reader) (*Reader, error) {
	d, err := newDecoder(r)
	if err != nil {
		return nil, err
	}
	return &Reader{d: d}, nil
}

// Meta returns the stream's provenance string.
func (r *Reader) Meta() string { return r.d.meta }

// Segmented reports whether the underlying stream is a segment
// container (written by SegmentWriter) rather than a monolithic file.
func (r *Reader) Segmented() bool { return r.d.segmented }

// Segments returns the per-segment metadata encountered so far; after a
// full decode it covers the whole stream. Monolithic streams have none.
func (r *Reader) Segments() []SegmentInfo { return r.d.Segments() }

// Remaining returns how many records are still undecoded according to
// the headers read so far. For segmented streams this only counts the
// current segment (later segment headers are read lazily), so treat it
// as a lower bound and rely on Decode's io.EOF for termination.
func (r *Reader) Remaining() uint64 { return r.d.Remaining() }

// Decode streams up to len(dst) records into dst and returns how many
// it wrote. It returns io.EOF once the stream is exhausted (possibly
// alongside the final batch). Truncated streams fail with a wrapped
// io.ErrUnexpectedEOF naming the record index.
func (r *Reader) Decode(dst []Record) (int, error) { return r.d.Next(dst) }

// Records decodes the remainder of the stream into one contiguous
// slice. For large traces prefer Arena, which decodes in fixed-size
// chunks and never re-copies records while a contiguous slice grows.
func (r *Reader) Records() ([]Record, error) {
	// Header counts are untrusted input: cap the up-front allocation and
	// let append grow the slice if the stream really is that long.
	capHint := r.d.Remaining()
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	recs := make([]Record, 0, capHint)
	for {
		if len(recs) == cap(recs) {
			recs = append(recs, Record{})[:len(recs)]
		}
		n, err := r.d.Next(recs[len(recs):cap(recs)])
		recs = recs[:len(recs)+n]
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// decodeBufBytes sizes the streaming decoder's read buffer. Batches
// decode from Peek windows of up to this size, so it is also the unit
// of work between refills; 64KB keeps the window well above the largest
// encoded record while staying cache-resident.
const decodeBufBytes = 64 << 10

// Decoder streams records out of a trace stream without materialising
// the whole payload: callers pull batches with Next into buffers they
// size themselves. Reader is built on it.
//
// Decoding is batched: Next peeks a buffered window, hands it to the
// batch codec layer (batch.go) which scans it with index arithmetic,
// then discards the consumed bytes — no per-byte reads, no per-record
// error wrapping on the happy path.
type Decoder struct {
	br    *bufio.Reader
	codec uint16
	meta  string
	count uint64 // total records promised by headers read so far
	read  uint64 // records decoded so far

	// Segment-container state. segPay counts the current segment's
	// undecoded payload bytes so a batch window never crosses the
	// segment framing. segHdr is the per-segment header size for the
	// stream's version.
	segmented bool
	segHdr    int
	segs      []SegmentInfo
	segPay    uint64

	// Compressed-segment state: a flate segment's stored payload is
	// read whole and inflated up front (the deflate stream is not
	// seekable), then batches are served from inf — the same batch
	// codec, one extra buffer. infShort records that the inflated bytes
	// fell short of the header's promise.
	infActive bool
	inf       []byte
	infPos    int
	infShort  bool
	payBuf    []byte // stored-payload scratch, reused across segments
	infBuf    []byte // inflated-payload scratch, reused across segments

	// Delta-codec inter-record state (reset at segment boundaries).
	st deltaState
}

func newDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReaderSize(r, decodeBufBytes)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		if err == io.EOF {
			// ReadFull reports a bare EOF only when not a single byte
			// arrived: the input is empty, not truncated.
			return nil, fmt.Errorf("trace: reading magic: %w", ErrEmpty)
		}
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	switch m {
	case magic:
		return newMonolithicDecoder(br)
	case segMagic:
		return newSegmentedDecoder(br)
	}
	return nil, fmt.Errorf("trace: bad magic %q", m)
}

func newMonolithicDecoder(br *bufio.Reader) (*Decoder, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	d := &Decoder{
		br:    br,
		codec: binary.LittleEndian.Uint16(hdr[2:]),
		count: binary.LittleEndian.Uint64(hdr[4:]),
	}
	if d.codec != CodecRaw && d.codec != CodecDelta {
		return nil, fmt.Errorf("trace: unknown codec %d", d.codec)
	}
	if err := d.readMeta(binary.LittleEndian.Uint32(hdr[12:])); err != nil {
		return nil, err
	}
	if d.count > maxRecordCount {
		return nil, fmt.Errorf("trace: implausible record count %d", d.count)
	}
	return d, nil
}

func newSegmentedDecoder(br *bufio.Reader) (*Decoder, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading segment-stream header: %w", err)
	}
	v := binary.LittleEndian.Uint16(hdr[0:])
	if v != segVersion && v != segVersionV1 && v != segVersion3 {
		return nil, fmt.Errorf("trace: unsupported segment-stream version %d", v)
	}
	d := &Decoder{
		br:        br,
		codec:     binary.LittleEndian.Uint16(hdr[2:]),
		segmented: true,
		segHdr:    segHdrLen(v),
	}
	if d.codec != CodecRaw && d.codec != CodecDelta {
		return nil, fmt.Errorf("trace: unknown codec %d", d.codec)
	}
	if err := d.readMeta(binary.LittleEndian.Uint32(hdr[4:])); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Decoder) readMeta(metaLen uint32) error {
	if metaLen > maxMetaLen {
		return fmt.Errorf("trace: implausible metadata length %d", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(d.br, metaBuf); err != nil {
		return fmt.Errorf("trace: reading metadata: %w", err)
	}
	d.meta = string(metaBuf)
	return nil
}

// Meta returns the stream's provenance string.
func (d *Decoder) Meta() string { return d.meta }

// Segments returns the per-segment metadata read so far (nil for
// monolithic streams).
func (d *Decoder) Segments() []SegmentInfo { return d.segs }

// Remaining returns how many records are still undecoded according to
// the (untrusted) headers read so far; a truncated stream errors from
// Next before delivering that many. Segmented streams read segment
// headers lazily, so Remaining only counts the current segment.
func (d *Decoder) Remaining() uint64 { return d.count - d.read }

// Next decodes up to len(dst) records into dst and returns how many it
// wrote. It returns io.EOF once the stream is exhausted (possibly
// alongside the final batch). A stream that ends before delivering the
// records its headers promised fails with a wrapped io.ErrUnexpectedEOF
// identifying the record index.
func (d *Decoder) Next(dst []Record) (int, error) {
	n := 0
	for n < len(dst) {
		if d.Remaining() == 0 {
			if !d.segmented {
				return n, io.EOF
			}
			// A segment's payload may legally outlast its record count
			// (framing is length-prefixed); skip to the boundary before
			// reading the next header.
			if err := d.discardSegmentTail(); err != nil {
				return n, err
			}
			if err := d.nextSegment(); err != nil {
				return n, err
			}
			continue // the new segment may itself be empty
		}
		k, err := d.decodeBatch(dst[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	if !d.segmented && d.Remaining() == 0 {
		return n, io.EOF
	}
	return n, nil
}

// promisedEOF upgrades a clean EOF to ErrUnexpectedEOF: the stream
// header promised data the reader did not deliver.
func promisedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeBatch decodes one window's worth of records into dst (at least
// one, unless dst is empty or the stream fails). It refills the buffer
// only when the window is too short to finish a record, so the common
// path is pure in-memory scanning.
func (d *Decoder) decodeBatch(dst []Record) (int, error) {
	if rem := d.Remaining(); uint64(len(dst)) > rem {
		dst = dst[:rem]
	}
	for {
		var window []byte
		var readErr error
		var hard bool
		if d.infActive {
			// Compressed segment: the whole inflated payload is on hand,
			// so the window is always complete and always hard.
			window, readErr, hard = d.inf[d.infPos:], io.EOF, true
		} else {
			window, readErr = d.peekWindow()
			// hard: the window cannot grow — it already spans the rest of
			// the segment payload, or the underlying stream is done. A
			// record truncated at a hard edge is a real error; at a soft
			// edge it just waits for the next refill.
			hard = readErr != nil
			if d.segmented && uint64(len(window)) >= d.segPay {
				window = window[:d.segPay]
				hard = true
			}
		}

		if d.codec == CodecRaw {
			nrec, consumed := decodeRawBatch(dst, window)
			if nrec == 0 {
				if hard {
					return 0, d.windowError(&batchError{truncated: true}, readErr)
				}
				continue
			}
			d.consume(consumed)
			d.read += uint64(nrec)
			mDecodeRecords.Add(uint64(nrec))
			return nrec, nil
		}

		nrec, consumed, derr := decodeDeltaBatch(dst, window, &d.st)
		d.consume(consumed)
		d.read += uint64(nrec)
		mDecodeRecords.Add(uint64(nrec))
		if derr == nil {
			return nrec, nil
		}
		if derr.truncated && !hard {
			if nrec > 0 {
				return nrec, nil // deliver; the next call refills
			}
			continue
		}
		if derr.truncated {
			return nrec, d.windowError(derr, readErr)
		}
		return nrec, recordError(derr, d.read)
	}
}

// windowError reports a record cut off at a hard window edge. A real
// read error (not EOF) takes precedence over the truncation diagnosis.
func (d *Decoder) windowError(derr *batchError, readErr error) error {
	if readErr != nil && readErr != io.EOF {
		return fmt.Errorf("trace: record %d%s: %w", d.read, derr.field, readErr)
	}
	return recordError(derr, d.read)
}

// peekWindow returns the buffered bytes, refilling from the underlying
// reader only when fewer than one maximal record's worth are on hand.
// A non-nil error (io.EOF included) means the window cannot grow.
func (d *Decoder) peekWindow() ([]byte, error) {
	if d.br.Buffered() >= maxEncRecordBytes {
		return d.br.Peek(d.br.Buffered())
	}
	w, err := d.br.Peek(decodeBufBytes)
	if len(w) >= maxEncRecordBytes {
		// A full record is available; whether the stream ends after it
		// is the next iteration's question.
		return w, nil
	}
	return w, err
}

// consume discards decoded payload bytes from the buffer (all of them
// just peeked, so Discard cannot fail) and charges them to the current
// segment. For a compressed segment the bytes come from the inflated
// buffer instead; the stored bytes were consumed when the segment was
// entered.
func (d *Decoder) consume(n int) {
	if n == 0 {
		return
	}
	if d.infActive {
		d.infPos += n
		mDecodeBytes.Add(uint64(n))
		return
	}
	d.br.Discard(n)
	mDecodeBytes.Add(uint64(n))
	if d.segmented {
		d.segPay -= uint64(n)
	}
}

// discardSegmentTail skips payload bytes left after the current
// segment's records were all decoded. For a compressed segment the
// stored bytes are already consumed; what remains is to drop the
// inflated tail and surface a short payload the way the raw lane's
// Discard-at-EOF would.
func (d *Decoder) discardSegmentTail() error {
	if d.infActive {
		short := d.infShort
		d.infActive, d.inf, d.infPos, d.infShort = false, nil, 0, false
		if short {
			return fmt.Errorf("trace: segment %d payload: %w", len(d.segs)-1, io.ErrUnexpectedEOF)
		}
		return nil
	}
	for d.segPay > 0 {
		n := d.segPay
		if n > decodeBufBytes {
			n = decodeBufBytes
		}
		k, err := d.br.Discard(int(n))
		d.segPay -= uint64(k)
		if err != nil {
			return fmt.Errorf("trace: segment %d payload: %w", len(d.segs)-1, promisedEOF(err))
		}
	}
	return nil
}

// enterCompressedSegment reads the just-parsed segment's stored payload
// off the stream and inflates it, arming the inf window decodeBatch
// serves from. Truncation is not an error here — the segment decodes as
// far as it goes and the shortfall surfaces, record-indexed, from the
// batch loop — but a corrupt deflate stream in a fully-present payload
// is.
func (d *Decoder) enterCompressedSegment(info SegmentInfo) error {
	stored, short, err := d.readStoredPayload(info)
	if err != nil {
		return err
	}
	data, infShort, err := inflateSegment(info, stored, short, &d.infBuf)
	if err != nil {
		return err
	}
	d.inf, d.infPos, d.infShort, d.infActive = data, 0, infShort, true
	d.segPay = 0
	return nil
}

// readStoredPayload reads the current segment's stored payload (up to
// PayloadBytes bytes) into the decoder's scratch buffer, stopping early
// — without error — if the stream ends first. The buffer grows only as
// bytes actually arrive, so a forged length cannot force a giant
// allocation.
func (d *Decoder) readStoredPayload(info SegmentInfo) (stored []byte, short bool, err error) {
	want := info.PayloadBytes
	buf := d.payBuf[:0]
	for uint64(len(buf)) < want {
		chunk := want - uint64(len(buf))
		if chunk > decodeBufBytes {
			chunk = decodeBufBytes
		}
		need := len(buf) + int(chunk)
		if cap(buf) < need {
			grown := make([]byte, len(buf), max(need, 2*cap(buf)))
			copy(grown, buf)
			buf = grown
		}
		n, rerr := io.ReadFull(d.br, buf[len(buf):need])
		buf = buf[:len(buf)+n]
		if rerr != nil {
			d.payBuf = buf
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return buf, true, nil
			}
			return buf, false, fmt.Errorf("trace: segment %d payload: %w", info.Index, rerr)
		}
	}
	d.payBuf = buf
	return buf, false, nil
}

// byteWriter is the sink the codec encoders write to; both bufio.Writer
// and bytes.Buffer satisfy it.
type byteWriter interface {
	io.Writer
	WriteByte(byte) error
}

func writeRaw(w byteWriter, recs []Record) error {
	var b [RecordBytes]byte
	for _, r := range recs {
		r.Encode(b[:])
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

// Delta codec header byte: kind(3) | widthLog2(2) | user(1) | phys(1) |
// pidChanged(1).
const deltaPIDChanged = 1 << 7

func writeDelta(w byteWriter, recs []Record) error {
	var lastAddr [NumKinds]uint32
	lastPID := uint8(0)
	var buf [binary.MaxVarintLen64]byte
	for _, r := range recs {
		var wl byte
		switch r.Width {
		case 2:
			wl = 1
		case 4:
			wl = 2
		}
		h := byte(r.Kind)&7 | wl<<3
		if r.User {
			h |= flagUser
		}
		if r.Phys {
			h |= flagPhys
		}
		if r.PID != lastPID {
			h |= deltaPIDChanged
		}
		if err := w.WriteByte(h); err != nil {
			return err
		}
		if r.PID != lastPID {
			if err := w.WriteByte(r.PID); err != nil {
				return err
			}
			lastPID = r.PID
		}
		delta := int64(r.Addr) - int64(lastAddr[r.Kind])
		n := binary.PutVarint(buf[:], delta)
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		lastAddr[r.Kind] = r.Addr
		if r.Kind == KindCtxSwitch || r.Kind == KindException {
			n = binary.PutUvarint(buf[:], uint64(r.Extra))
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}
