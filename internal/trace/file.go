package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Stream file format:
//
//	magic   [8]byte  "ATUMTRC\x00"
//	version uint16   (2)
//	codec   uint16   (CodecRaw or CodecDelta)
//	count   uint64   record count
//	metaLen uint32   length of the metadata string (may be 0)
//	meta    [metaLen]byte   free-form capture provenance (UTF-8)
//	payload
//
// CodecRaw stores RecordBytes per record. CodecDelta stores, per record,
// a header byte (kind/user/phys/width), the PID only when it changes, and
// the address as a zigzag varint delta against the previous address of
// the same kind — instruction fetches and stack references are highly
// sequential, so this typically compresses 3-4x.
const (
	CodecRaw uint16 = iota
	CodecDelta
)

var magic = [8]byte{'A', 'T', 'U', 'M', 'T', 'R', 'C', 0}

const version = 2

// maxMetaLen bounds the provenance string (untrusted input on read).
const maxMetaLen = 1 << 16

// WriteFile encodes recs to w using the given codec, with no metadata.
func WriteFile(w io.Writer, recs []Record, codec uint16) error {
	return WriteFileMeta(w, recs, codec, "")
}

// WriteFileMeta encodes recs with a provenance string (workload names,
// machine configuration, capture options) that tools display.
func WriteFileMeta(w io.Writer, recs []Record, codec uint16, meta string) error {
	if len(meta) > maxMetaLen {
		return fmt.Errorf("trace: metadata too long (%d bytes)", len(meta))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint16(hdr[2:], codec)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(recs)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(meta)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(meta); err != nil {
		return err
	}
	switch codec {
	case CodecRaw:
		var b [RecordBytes]byte
		for _, r := range recs {
			r.Encode(b[:])
			if _, err := bw.Write(b[:]); err != nil {
				return err
			}
		}
	case CodecDelta:
		if err := writeDelta(bw, recs); err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unknown codec %d", codec)
	}
	return bw.Flush()
}

// ReadFile decodes a trace stream written by WriteFile, discarding any
// metadata.
func ReadFile(r io.Reader) ([]Record, error) {
	recs, _, err := ReadFileMeta(r)
	return recs, err
}

// ReadFileMeta decodes a trace stream into one contiguous slice and
// returns its provenance string. For large traces prefer ReadArena,
// which decodes in fixed-size chunks and never re-copies records while
// the slice below grows.
func ReadFileMeta(r io.Reader) ([]Record, string, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, "", err
	}
	// The count is untrusted input: cap the up-front allocation and let
	// append grow the slice if the stream really is that long.
	capHint := d.Remaining()
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	recs := make([]Record, 0, capHint)
	for {
		if len(recs) == cap(recs) {
			recs = append(recs, Record{})[:len(recs)]
		}
		n, err := d.Next(recs[len(recs):cap(recs)])
		recs = recs[:len(recs)+n]
		if err == io.EOF {
			return recs, d.Meta(), nil
		}
		if err != nil {
			return nil, "", err
		}
	}
}

// Decoder streams records out of a trace file without materialising the
// whole payload: callers pull batches with Next into buffers they size
// themselves. ReadFileMeta and ReadArena are both built on it.
type Decoder struct {
	br    *bufio.Reader
	codec uint16
	meta  string
	count uint64 // total records per the header
	read  uint64 // records decoded so far

	// Delta-codec inter-record state.
	lastAddr [NumKinds]uint32
	lastPID  uint8
}

// NewDecoder reads and validates the stream header, leaving the decoder
// positioned at the first record.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	d := &Decoder{
		br:    br,
		codec: binary.LittleEndian.Uint16(hdr[2:]),
		count: binary.LittleEndian.Uint64(hdr[4:]),
	}
	if d.codec != CodecRaw && d.codec != CodecDelta {
		return nil, fmt.Errorf("trace: unknown codec %d", d.codec)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[12:])
	if metaLen > maxMetaLen {
		return nil, fmt.Errorf("trace: implausible metadata length %d", metaLen)
	}
	metaBuf := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaBuf); err != nil {
		return nil, fmt.Errorf("trace: reading metadata: %w", err)
	}
	d.meta = string(metaBuf)
	if d.count > 1<<34 {
		return nil, fmt.Errorf("trace: implausible record count %d", d.count)
	}
	return d, nil
}

// Meta returns the stream's provenance string.
func (d *Decoder) Meta() string { return d.meta }

// Remaining returns how many records are still undecoded. The value
// comes from the (untrusted) header; a truncated stream errors from Next
// before delivering that many.
func (d *Decoder) Remaining() uint64 { return d.count - d.read }

// Next decodes up to len(dst) records into dst and returns how many it
// wrote. It returns io.EOF once the stream is exhausted (possibly
// alongside the final batch).
func (d *Decoder) Next(dst []Record) (int, error) {
	want := uint64(len(dst))
	if rem := d.Remaining(); want > rem {
		want = rem
	}
	n := 0
	for uint64(n) < want {
		rec, err := d.decodeOne()
		if err != nil {
			return n, err
		}
		dst[n] = rec
		n++
	}
	if d.Remaining() == 0 {
		return n, io.EOF
	}
	return n, nil
}

func (d *Decoder) decodeOne() (Record, error) {
	i := d.read
	switch d.codec {
	case CodecRaw:
		var b [RecordBytes]byte
		if _, err := io.ReadFull(d.br, b[:]); err != nil {
			return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
		}
		d.read++
		return DecodeRecord(b[:]), nil
	case CodecDelta:
		rec, err := d.decodeDelta(i)
		if err != nil {
			return Record{}, err
		}
		d.read++
		return rec, nil
	}
	return Record{}, fmt.Errorf("trace: unknown codec %d", d.codec)
}

// Delta codec header byte: kind(3) | widthLog2(2) | user(1) | phys(1) |
// pidChanged(1).
const deltaPIDChanged = 1 << 7

func writeDelta(w *bufio.Writer, recs []Record) error {
	var lastAddr [NumKinds]uint32
	lastPID := uint8(0)
	var buf [binary.MaxVarintLen64]byte
	for _, r := range recs {
		var wl byte
		switch r.Width {
		case 2:
			wl = 1
		case 4:
			wl = 2
		}
		h := byte(r.Kind)&7 | wl<<3
		if r.User {
			h |= flagUser
		}
		if r.Phys {
			h |= flagPhys
		}
		if r.PID != lastPID {
			h |= deltaPIDChanged
		}
		if err := w.WriteByte(h); err != nil {
			return err
		}
		if r.PID != lastPID {
			if err := w.WriteByte(r.PID); err != nil {
				return err
			}
			lastPID = r.PID
		}
		delta := int64(r.Addr) - int64(lastAddr[r.Kind])
		n := binary.PutVarint(buf[:], delta)
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		lastAddr[r.Kind] = r.Addr
		if r.Kind == KindCtxSwitch || r.Kind == KindException {
			n = binary.PutUvarint(buf[:], uint64(r.Extra))
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Decoder) decodeDelta(i uint64) (Record, error) {
	h, err := d.br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d: %w", i, err)
	}
	k := Kind(h & 7)
	if k >= NumKinds {
		return Record{}, fmt.Errorf("trace: record %d: invalid kind %d", i, h&7)
	}
	rec := Record{
		Kind: k,
		User: h&flagUser != 0,
		Phys: h&flagPhys != 0,
	}
	// Markers carry no reference width (see DecodeRecord).
	if k.IsMemRef() {
		rec.Width = 1 << (h >> 3 & 3)
	}
	if h&deltaPIDChanged != 0 {
		p, err := d.br.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d pid: %w", i, err)
		}
		d.lastPID = p
	}
	rec.PID = d.lastPID
	delta, err := binary.ReadVarint(d.br)
	if err != nil {
		return Record{}, fmt.Errorf("trace: record %d addr: %w", i, err)
	}
	rec.Addr = uint32(int64(d.lastAddr[rec.Kind]) + delta)
	d.lastAddr[rec.Kind] = rec.Addr
	if rec.Kind == KindCtxSwitch || rec.Kind == KindException {
		x, err := binary.ReadUvarint(d.br)
		if err != nil {
			return Record{}, fmt.Errorf("trace: record %d extra: %w", i, err)
		}
		rec.Extra = uint16(x)
	}
	return rec, nil
}
