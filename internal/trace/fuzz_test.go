package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFile: arbitrary bytes must parse or error, never panic or
// allocate unboundedly.
func FuzzReadFile(f *testing.F) {
	var good bytes.Buffer
	_ = WriteFile(&good, makeTrace(50, 1), CodecDelta)
	f.Add(good.Bytes())
	var raw bytes.Buffer
	_ = WriteFile(&raw, makeTrace(50, 2), CodecRaw)
	f.Add(raw.Bytes())
	f.Add([]byte("ATUMTRC\x00garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := ReadFile(bytes.NewReader(b))
		if err != nil {
			return
		}
		// A successful parse must round-trip through the raw codec.
		var out bytes.Buffer
		if err := WriteFile(&out, recs, CodecRaw); err != nil {
			t.Fatalf("re-encode of parsed trace failed: %v", err)
		}
	})
}

// FuzzParseBuffer: raw trace-buffer images of any content decode without
// panicking, and re-encode to the identical bytes (the packed format is
// a bijection on its 8-byte records up to reserved bits).
func FuzzParseBuffer(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		b = b[:len(b)-len(b)%RecordBytes]
		recs, err := ParseBuffer(b)
		if err != nil {
			t.Fatalf("aligned buffer rejected: %v", err)
		}
		if len(recs) != len(b)/RecordBytes {
			t.Fatalf("record count %d for %d bytes", len(recs), len(b))
		}
	})
}
