package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFile: arbitrary bytes must parse or error, never panic or
// allocate unboundedly.
func FuzzReadFile(f *testing.F) {
	var good bytes.Buffer
	_ = WriteFile(&good, makeTrace(50, 1), CodecDelta)
	f.Add(good.Bytes())
	var raw bytes.Buffer
	_ = WriteFile(&raw, makeTrace(50, 2), CodecRaw)
	f.Add(raw.Bytes())
	f.Add([]byte("ATUMTRC\x00garbage"))
	f.Add([]byte{})
	// Segmented container seeds: a valid two-segment stream, plus
	// truncations cutting a segment header and a record in half — the
	// mid-record truncation regression.
	var seg bytes.Buffer
	if sw, err := NewSegmentWriter(&seg, CodecDelta, "fuzz"); err == nil {
		_, _ = sw.WriteSegment(makeTrace(30, 3), 1, 100)
		_, _ = sw.WriteSegment(makeTrace(30, 4), 0, 90)
		_ = sw.Close()
	}
	f.Add(seg.Bytes())
	f.Add(seg.Bytes()[:len(seg.Bytes())/2])
	f.Add(seg.Bytes()[:8+8+4+10]) // cut inside the first segment header
	f.Add([]byte("ATUMSEG\x00garbage"))
	var rawMono bytes.Buffer
	_ = WriteFile(&rawMono, makeTrace(10, 5), CodecRaw)
	f.Add(rawMono.Bytes()[:len(rawMono.Bytes())-3]) // mid-record truncation
	// Batch/parallel decode path seeds: a segmented raw stream, a delta
	// stream cut inside a record's address varint, and a segment whose
	// payLen field overruns the stream (records intact).
	var segRaw bytes.Buffer
	if sw, err := NewSegmentWriter(&segRaw, CodecRaw, ""); err == nil {
		_, _ = sw.WriteSegment(makeTrace(20, 6), 0, 10)
		_, _ = sw.WriteSegment(makeTrace(20, 7), 0, 20)
		_ = sw.Close()
	}
	f.Add(segRaw.Bytes())
	f.Add(seg.Bytes()[:len(seg.Bytes())-1]) // cut mid-varint in the last record
	overrun := bytes.Clone(seg.Bytes())
	// payLen sits after magic(8) hdr(8) meta(4) marker(4) index(4)
	// count(8) dropped(8) cycles(8).
	overrun[8+8+4+4+4+8+8+8] ^= 0x40
	f.Add(overrun)
	// Container v2 seeds: a compressed two-segment stream, a truncation
	// cutting its deflate payload, and a flipped rawLen byte (the
	// declared-length field the container lint audits).
	var comp bytes.Buffer
	if sw, err := NewSegmentWriter(&comp, CodecDelta, "fuzz"); err == nil {
		_ = sw.SetEncoding(SegEncFlate)
		_, _ = sw.WriteSegment(makeTrace(60, 8), 0, 50)
		_, _ = sw.WriteSegment(makeTrace(60, 9), 2, 60)
		_ = sw.Close()
	}
	f.Add(comp.Bytes())
	f.Add(comp.Bytes()[:len(comp.Bytes())*2/3])
	rawLenFlip := bytes.Clone(comp.Bytes())
	// rawLen sits at header offset 37, after magic(8) hdr(8) meta(4)
	// marker(4).
	rawLenFlip[8+8+4+4+37] ^= 0x01
	f.Add(rawLenFlip)
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := readAll(bytes.NewReader(b))
		// The random-access pipeline must agree with the streaming one
		// on every input: both succeed with identical records, or both
		// fail.
		fl, ferr := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
		var frecs []Record
		if ferr == nil {
			frecs, ferr = fl.Records(2)
		}
		if (err == nil) != (ferr == nil) {
			t.Fatalf("pipelines disagree: streaming err %v, random-access err %v", err, ferr)
		}
		if err != nil {
			return
		}
		if len(frecs) != len(recs) {
			t.Fatalf("random-access decoded %d records, streaming %d", len(frecs), len(recs))
		}
		for i := range recs {
			if frecs[i] != recs[i] {
				t.Fatalf("record %d: random-access %v, streaming %v", i, frecs[i], recs[i])
			}
		}
		// A successful parse must round-trip through the raw codec.
		var out bytes.Buffer
		if err := WriteFile(&out, recs, CodecRaw); err != nil {
			t.Fatalf("re-encode of parsed trace failed: %v", err)
		}
	})
}

// FuzzCompressedSegmentRoundTrip: record sequences derived from fuzzed
// bytes must survive the compressed container exactly — written with
// the flate encoding, decoded by both pipelines, byte-identical to the
// records that went in — and the segment index must agree with what the
// writer framed.
func FuzzCompressedSegmentRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64), uint8(1))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint8(3))
	f.Add([]byte{0x05, 0x02, 0x07, 0x00, 0x00, 0x10, 0x00, 0x80}, uint8(2))
	seed := make([]byte, 41*RecordBytes)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed, uint8(5))
	f.Fuzz(func(t *testing.T, b []byte, nseg uint8) {
		b = b[:len(b)-len(b)%RecordBytes]
		recs, err := ParseBuffer(b)
		if err != nil {
			t.Fatalf("aligned buffer rejected: %v", err)
		}
		// Canonicalise to the domain the delta codec preserves (see
		// FuzzDeltaRoundTrip).
		for i := range recs {
			r := &recs[i]
			if r.Kind >= NumKinds {
				r.Kind = KindIFetch
				r.Width = 4
			}
			if r.Kind.IsMemRef() {
				r.Extra = 0
				switch r.Width {
				case 1, 2, 4:
				default:
					r.Width = 4
				}
			}
		}
		n := int(nseg%8) + 1
		var buf bytes.Buffer
		sw, err := NewSegmentWriter(&buf, CodecDelta, "fuzz-comp")
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.SetEncoding(SegEncFlate); err != nil {
			t.Fatal(err)
		}
		per := (len(recs) + n - 1) / n
		if per == 0 {
			per = 1
		}
		for lo := 0; lo < len(recs) || lo == 0; lo += per {
			hi := lo + per
			if hi > len(recs) {
				hi = len(recs)
			}
			if _, err := sw.WriteSegment(recs[lo:hi], 0, 0); err != nil {
				t.Fatalf("WriteSegment: %v", err)
			}
			if lo == 0 && len(recs) == 0 {
				break
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		stream := buf.Bytes()

		back, err := readAll(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("streaming decode of own output: %v", err)
		}
		fl, err := OpenReaderAt(bytes.NewReader(stream), int64(len(stream)))
		if err != nil {
			t.Fatalf("OpenReaderAt of own output: %v", err)
		}
		fback, err := fl.Records(2)
		if err != nil {
			t.Fatalf("random-access decode of own output: %v", err)
		}
		if len(back) != len(recs) || len(fback) != len(recs) {
			t.Fatalf("round trip length %d/%d != %d", len(back), len(fback), len(recs))
		}
		for i := range recs {
			if back[i] != recs[i] || fback[i] != recs[i] {
				t.Fatalf("record %d: %+v round-tripped to %+v / %+v", i, recs[i], back[i], fback[i])
			}
		}
		for i, info := range fl.Segments() {
			switch info.Encoding {
			case SegEncRaw:
				if info.RawBytes != info.PayloadBytes {
					t.Fatalf("segment %d: raw RawBytes %d != PayloadBytes %d", i, info.RawBytes, info.PayloadBytes)
				}
			case SegEncFlate:
				if info.PayloadBytes >= info.RawBytes {
					t.Fatalf("segment %d: flate stored %d for %d raw bytes", i, info.PayloadBytes, info.RawBytes)
				}
			default:
				t.Fatalf("segment %d: unexpected encoding %d", i, info.Encoding)
			}
		}
	})
}

// FuzzDeltaRoundTrip: every canonical record sequence must survive the
// delta codec encode→decode cycle exactly. Records are derived from the
// fuzzed bytes via the packed format, then canonicalised to the values a
// real capture can produce — the delta format is deliberately lossy
// outside that domain (memref Extra is not stored, the 2-bit width field
// cannot express 8, and kind 7 is reserved).
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x05, 0x02, 0x07, 0x00, 0x00, 0x10, 0x00, 0x80}) // ctx switch, extra
	f.Fuzz(func(t *testing.T, b []byte) {
		b = b[:len(b)-len(b)%RecordBytes]
		recs, err := ParseBuffer(b)
		if err != nil {
			t.Fatalf("aligned buffer rejected: %v", err)
		}
		for i := range recs {
			r := &recs[i]
			if r.Kind >= NumKinds {
				r.Kind = KindIFetch
				r.Width = 4
			}
			if r.Kind.IsMemRef() {
				r.Extra = 0
				switch r.Width {
				case 1, 2, 4:
				default:
					r.Width = 4
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteFile(&buf, recs, CodecDelta); err != nil {
			t.Fatalf("delta encode: %v", err)
		}
		back, err := readAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("delta decode of own output: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip length %d != %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("record %d: %+v round-tripped to %+v", i, recs[i], back[i])
			}
		}
	})
}

// FuzzParseBuffer: raw trace-buffer images of any content decode without
// panicking, and re-encode to the identical bytes (the packed format is
// a bijection on its 8-byte records up to reserved bits).
func FuzzParseBuffer(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		b = b[:len(b)-len(b)%RecordBytes]
		recs, err := ParseBuffer(b)
		if err != nil {
			t.Fatalf("aligned buffer rejected: %v", err)
		}
		if len(recs) != len(b)/RecordBytes {
			t.Fatalf("record count %d for %d bytes", len(recs), len(b))
		}
	})
}
