package vax

import (
	"strings"
	"testing"
)

func TestOperandStringAllModes(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{Operand{Mode: ModeLiteral, Lit: 33}, "#33"},
		{Operand{Mode: ModeRegister, Reg: 3}, "r3"},
		{Operand{Mode: ModeRegDeferred, Reg: 14}, "(sp)"},
		{Operand{Mode: ModeAutoDec, Reg: 14}, "-(sp)"},
		{Operand{Mode: ModeAutoInc, Reg: 1}, "(r1)+"},
		{Operand{Mode: ModeAutoIncDeferred, Reg: 2}, "@(r2)+"},
		{Operand{Mode: ModeByteDisp, Reg: 4, Disp: -8}, "-8(r4)"},
		{Operand{Mode: ModeWordDispDef, Reg: 5, Disp: 300}, "@300(r5)"},
		{Operand{Mode: ModeImmediate, Imm: 0x1234}, "#0x1234"},
		{Operand{Mode: ModeAbsolute, Imm: 0x80000000}, "@#0x80000000"},
		{Operand{Mode: ModeBranch, Disp: -4}, ".-4"},
		{Operand{Mode: ModeLongDisp, Reg: 6, Disp: 4, Indexed: true, Xreg: 7}, "4(r6)[r7]"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestHasEffectiveAddress(t *testing.T) {
	if (Operand{Mode: ModeLiteral}).HasEffectiveAddress() {
		t.Error("literal has no EA")
	}
	if (Operand{Mode: ModeRegister}).HasEffectiveAddress() {
		t.Error("register has no EA")
	}
	if !(Operand{Mode: ModeRegDeferred}).HasEffectiveAddress() {
		t.Error("(rn) has an EA")
	}
	if !(Operand{Mode: ModeAbsolute}).HasEffectiveAddress() {
		t.Error("@# has an EA")
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated instruction stream.
	if _, err := DecodeBytes([]byte{OpMOVL}, 0); err == nil {
		t.Error("truncated movl accepted")
	}
	// Reserved opcode.
	if _, err := DecodeBytes([]byte{0xFF, 0x00}, 0); err == nil {
		t.Error("reserved opcode accepted")
	}
	// Nested index: 4x 4x.
	if _, err := DecodeBytes([]byte{OpTSTL, 0x41, 0x42, 0x63}, 0); err == nil {
		t.Error("nested index accepted")
	}
	// Index on literal base.
	if _, err := DecodeBytes([]byte{OpTSTL, 0x41, 0x05}, 0); err == nil {
		t.Error("indexed literal accepted")
	}
	// PC as index register.
	if _, err := DecodeBytes([]byte{OpTSTL, 0x4F, 0x63}, 0); err == nil {
		t.Error("PC index register accepted")
	}
}

func TestDecodedStringTargets(t *testing.T) {
	// brb .+4 from address 0x100: opcode at 0x100, disp byte at 0x101,
	// PC after displacement = 0x102, target = 0x102+disp.
	d, err := DecodeBytes([]byte{OpBRB, 0x10}, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "0x112") {
		t.Errorf("branch target: %s", d.String())
	}

	// PC-relative longword displacement resolves to absolute.
	p, err := Assemble("\t.org 0x400\nstart:\tmovl\tdata, r0\ndata:\t.long 7\n")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeBytes(p.Bytes, 0x400)
	if err != nil {
		t.Fatal(err)
	}
	dataAddr := p.MustSymbol("data")
	if !strings.Contains(d2.String(), "0x407") || dataAddr != 0x407 {
		t.Errorf("PC-relative target: %s (data=%#x)", d2.String(), dataAddr)
	}
}

func TestDisassembleSkipsBadBytes(t *testing.T) {
	lines := Disassemble([]byte{0xFF, OpNOP, OpHALT}, 0)
	if len(lines) != 3 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[0], ".byte") {
		t.Errorf("bad byte not rendered: %s", lines[0])
	}
	if !strings.Contains(lines[1], "nop") || !strings.Contains(lines[2], "halt") {
		t.Errorf("resync failed: %v", lines)
	}
}

func TestWidthAndAccessStrings(t *testing.T) {
	if B.String() != "byte" || W.String() != "word" || L.String() != "long" {
		t.Error("width strings")
	}
	if AccRead.String() != "r" || AccWrite.String() != "w" || AccModify.String() != "m" ||
		AccAddr.String() != "a" || AccBranch.String() != "b" || AccVField.String() != "v" {
		t.Error("access strings")
	}
}

func TestProgramHelpers(t *testing.T) {
	p, err := Assemble("\t.org 0x100\na:\tnop\nb:\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.End() != 0x102 {
		t.Errorf("End = %#x", p.End())
	}
	if _, ok := p.Symbol("nope"); ok {
		t.Error("phantom symbol")
	}
	names := p.SymbolsSorted()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("sorted symbols: %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol on missing symbol should panic")
		}
	}()
	p.MustSymbol("missing")
}
