package vax

import (
	"strings"
	"testing"
)

// FuzzAssemble: arbitrary source must produce a program or an error,
// never a panic, and any produced program must have consistent symbols.
func FuzzAssemble(f *testing.F) {
	f.Add("\t.org 0x200\nstart:\tmovl #1, r0\n\thalt\n")
	f.Add("x = 1+2*3\n\t.long x\n")
	f.Add("\tmovl (r1)+, -(sp)\n")
	f.Add("a:\tbrb a\n")
	f.Add("\t.ascii \"hi\\n\"\n")
	f.Add("\t.space 10\n\t.align 4\n")
	f.Add("\tmovl @#0x80000000, r0\n")
	f.Add("\tcalls #2, @8(r1)[r2]\n")
	f.Add("\t.byte 'a', 'b'\n")
	f.Add(";;; comment only")
	f.Add("\t.org\nstart = \n")
	f.Add("\tmovl #-1, r0\n\tashl #-31, r0, r1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		for name, v := range p.Symbols {
			if name == "" {
				t.Fatal("empty symbol name accepted")
			}
			_ = v
		}
		for _, li := range p.Lines {
			if li.Addr < p.Origin || li.Addr+uint32(li.Len) > p.End() {
				t.Fatalf("line info out of image: %+v (origin %#x end %#x)", li, p.Origin, p.End())
			}
		}
	})
}

// FuzzDecodeBytes: arbitrary bytes must decode or error, never panic,
// and a successful decode must report a length within the input.
func FuzzDecodeBytes(f *testing.F) {
	f.Add([]byte{0xD0, 0x01, 0x50})
	f.Add([]byte{0x28, 0x8F, 0x00, 0x01, 0x61, 0x62})
	f.Add([]byte{0xFB, 0x01, 0xEF, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x41, 0x42, 0x43})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeBytes(b, 0x1000)
		if err != nil {
			return
		}
		if d.Len <= 0 || d.Len > len(b) {
			t.Fatalf("decoded length %d out of range (input %d)", d.Len, len(b))
		}
		// Rendering must not panic either.
		_ = d.String()
	})
}

// FuzzDisassemble: the resynchronizing disassembler must terminate and
// cover every input byte exactly once.
func FuzzDisassemble(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0xFF, 0xD0, 0x01, 0x50})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > 4096 {
			return
		}
		lines := Disassemble(b, 0)
		if len(b) > 0 && len(lines) == 0 {
			t.Fatal("no output for non-empty input")
		}
		if !strings.HasPrefix(strings.TrimSpace(strings.Join(lines, "\n")), "0") && len(b) > 0 {
			t.Fatalf("first line lacks address: %v", lines[:1])
		}
	})
}
