package vax

import (
	"strings"
	"testing"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestAssembleBasicEncoding(t *testing.T) {
	p := mustAssemble(t, `
	.org 0x200
start:	movl	#10, r0
	nop
`)
	if p.Origin != 0x200 {
		t.Fatalf("origin = %#x, want 0x200", p.Origin)
	}
	// movl #10, r0 => D0 0A 50 ; nop => 01
	want := []byte{0xD0, 0x0A, 0x50, 0x01}
	if len(p.Bytes) != len(want) {
		t.Fatalf("bytes = % x, want % x", p.Bytes, want)
	}
	for i := range want {
		if p.Bytes[i] != want[i] {
			t.Fatalf("bytes = % x, want % x", p.Bytes, want)
		}
	}
	if v := p.MustSymbol("start"); v != 0x200 {
		t.Fatalf("start = %#x, want 0x200", v)
	}
}

func TestAssembleShortLiteralVsImmediate(t *testing.T) {
	p := mustAssemble(t, `
	movl	#63, r0
	movl	#64, r1
`)
	// #63 -> short literal 0x3F; #64 -> 8F 40 00 00 00 immediate
	if p.Bytes[1] != 0x3F {
		t.Errorf("short literal byte = %#x, want 0x3f", p.Bytes[1])
	}
	if p.Bytes[4] != 0x8F || p.Bytes[5] != 0x40 {
		t.Errorf("immediate encoding = % x", p.Bytes[3:10])
	}
}

func TestAssembleAddressingModes(t *testing.T) {
	src := `
	.org 0x1000
	movl	(r1), r2
	movl	(r3)+, r4
	movl	-(r5), r6
	movl	@(r7)+, r8
	movl	4(r9), r10
	movl	@8(r11), r0
	movl	300(r1), r2
	movl	0x10000(r1), r2
	movb	(r1)+, -(sp)
	clrl	tab[r3]
	movl	@#0x80000000, r0
tab:	.long	0
`
	p := mustAssemble(t, src)
	// Spot-check a few specifier bytes by decoding the stream back.
	lines := Disassemble(p.Bytes, p.Origin)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"(r1)", "(r3)+", "-(r5)", "@(r7)+", "4(r9)", "@8(r11)",
		"300(r1)", "65536(r1)", "-(sp)", "[r3]", "@#0x80000000",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("disassembly missing %q:\n%s", want, joined)
		}
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	p := mustAssemble(t, `
	.org 0
top:	decl	r0
	bneq	top
	brw	far
	.space	200
far:	halt
`)
	d, err := DecodeBytes(p.Bytes[2:], 2)
	if err != nil {
		t.Fatalf("decode bneq: %v", err)
	}
	if d.Info.Name != "bneq" {
		t.Fatalf("opcode = %s, want bneq", d.Info.Name)
	}
	// bneq at 2, displacement field 1 byte: target = 4 + disp = 0 -> disp = -4
	if d.Operands[0].Disp != -4 {
		t.Errorf("bneq disp = %d, want -4", d.Operands[0].Disp)
	}
}

func TestAssembleBranchOutOfRange(t *testing.T) {
	_, err := Assemble(`
	brb	far
	.space	500
far:	halt
`)
	if err == nil || !strings.Contains(err.Error(), "out of byte range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestAssembleEquatesAndExpressions(t *testing.T) {
	p := mustAssemble(t, `
base	=	0x1000
size	=	8*4
	.org	base
	movl	#base+size, r0
	.long	size<<2, size|1, ~0
`)
	if p.Origin != 0x1000 {
		t.Fatalf("origin = %#x", p.Origin)
	}
	// movl #0x1020, r0 => D0 8F 20 10 00 00 50
	if p.Bytes[0] != 0xD0 || p.Bytes[1] != 0x8F {
		t.Fatalf("immediate form not used: % x", p.Bytes[:7])
	}
	got := uint32(p.Bytes[2]) | uint32(p.Bytes[3])<<8
	if got != 0x1020 {
		t.Errorf("immediate = %#x, want 0x1020", got)
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
	.byte	1, 2, 3
	.align	4
	.word	0x1234
	.long	0xdeadbeef
	.asciz	"hi\n"
	.space	5
`)
	if p.Bytes[0] != 1 || p.Bytes[1] != 2 || p.Bytes[2] != 3 {
		t.Errorf("bytes: % x", p.Bytes[:3])
	}
	if p.Bytes[3] != 0 { // align padding
		t.Errorf("align pad: % x", p.Bytes[:4])
	}
	if p.Bytes[4] != 0x34 || p.Bytes[5] != 0x12 {
		t.Errorf("word: % x", p.Bytes[4:6])
	}
	if p.Bytes[6] != 0xEF || p.Bytes[9] != 0xDE {
		t.Errorf("long: % x", p.Bytes[6:10])
	}
	if string(p.Bytes[10:13]) != "hi\n" || p.Bytes[13] != 0 {
		t.Errorf("asciz: % x", p.Bytes[10:14])
	}
	if len(p.Bytes) != 19 {
		t.Errorf("total len = %d, want 19", len(p.Bytes))
	}
}

func TestListing(t *testing.T) {
	src := `; a comment line
	.org 0x1000
start:	movl	#1, r0
	halt
msg:	.ascii	"hi"
`
	p := mustAssemble(t, src)
	if len(p.Lines) != 3 {
		t.Fatalf("Lines = %v, want 3 emitting lines", p.Lines)
	}
	if p.Lines[0].Addr != 0x1000 || p.Lines[0].Len != 3 {
		t.Errorf("first line info = %+v", p.Lines[0])
	}
	lst := Listing(p, src)
	if !strings.Contains(lst, "00001000  d0 01 50") {
		t.Errorf("listing missing movl bytes:\n%s", lst)
	}
	if !strings.Contains(lst, "; a comment line") {
		t.Errorf("listing dropped non-emitting lines:\n%s", lst)
	}
	if !strings.Contains(lst, `.ascii	"hi"`) {
		t.Errorf("listing missing data line:\n%s", lst)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"\tfrobnicate r0\n", "unknown instruction"},
		{"\tmovl r0\n", "takes 2 operands"},
		{"\tmovl #1, #2\n", "write context"},
		{"\tmovl r0, undefined_sym\n", "undefined symbol"},
		{"x = 1\nx = 2\n", "redefined"},
		{"\t.align 3\n", "power of two"},
		{"\tmovl (r1)[pc], r0\n", "bad index register"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestRoundTripDecode(t *testing.T) {
	src := `
	.org 0x400
	addl3	r1, r2, r3
	subl2	#5, r4
	mull3	8(r0), r1, -(sp)
	ashl	#2, r1, r2
	movc3	#16, (r1), (r2)
	calls	#0, next
next:	ret
	chmk	#4
	rei
	halt
`
	p := mustAssemble(t, src)
	off := 0
	names := []string{"addl3", "subl2", "mull3", "ashl", "movc3", "calls", "ret", "chmk", "rei", "halt"}
	for _, want := range names {
		d, err := DecodeBytes(p.Bytes[off:], p.Origin+uint32(off))
		if err != nil {
			t.Fatalf("decode at %#x: %v", p.Origin+uint32(off), err)
		}
		if d.Info.Name != want {
			t.Fatalf("decoded %s, want %s", d.Info.Name, want)
		}
		off += d.Len
	}
	if off != len(p.Bytes) {
		t.Errorf("consumed %d of %d bytes", off, len(p.Bytes))
	}
}

func TestOperandAccessorsAndNames(t *testing.T) {
	if RegName(14) != "sp" || RegName(15) != "pc" || RegName(2) != "r2" {
		t.Error("RegName wrong")
	}
	if CurMode(0) != ModeKernel {
		t.Error("CurMode(0) not kernel")
	}
	psl := uint32(ModeUser) << PSLCurModShift
	if CurMode(psl) != ModeUser {
		t.Error("CurMode user wrong")
	}
	if IPL(22<<PSLIPLShift) != 22 {
		t.Error("IPL extraction wrong")
	}
}

func TestInstructionTableConsistency(t *testing.T) {
	n := 0
	for op, ii := range Instructions {
		if ii == nil {
			continue
		}
		n++
		if int(ii.Opcode) != op {
			t.Errorf("%s: table slot %#x holds opcode %#x", ii.Name, op, ii.Opcode)
		}
		if ByName[ii.Name] != ii {
			t.Errorf("%s: ByName mismatch", ii.Name)
		}
		for _, spec := range ii.Operands {
			if spec.Access == AccBranch && spec.Width == L {
				t.Errorf("%s: longword branch displacement not supported", ii.Name)
			}
		}
	}
	if n < 90 {
		t.Errorf("only %d opcodes defined, want >= 90", n)
	}
	// ByName may exceed the table count by the alias mnemonics.
	if len(ByName) < n {
		t.Errorf("ByName has %d entries, table has %d", len(ByName), n)
	}
	if ByName["bgequ"] != ByName["bcc"] || ByName["blssu"] != ByName["bcs"] {
		t.Error("unsigned branch aliases missing")
	}
}
