package vax

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a byte image with a load origin
// and the symbol table. The simulator's loaders place Bytes at virtual
// address Origin.
type Program struct {
	Origin  uint32
	Bytes   []byte
	Symbols map[string]uint32
	// Lines maps emitting source lines to their image bytes (listings).
	Lines []LineInfo
}

// LineInfo records the bytes one source line emitted.
type LineInfo struct {
	Line int    // 1-based source line number
	Addr uint32 // virtual address of the first byte
	Len  int    // bytes emitted
}

// Symbol returns the value of a defined symbol.
func (p *Program) Symbol(name string) (uint32, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// MustSymbol returns the value of a symbol, panicking if undefined. It is
// intended for loaders wiring up well-known entry points.
func (p *Program) MustSymbol(name string) uint32 {
	v, ok := p.Symbols[name]
	if !ok {
		panic("vax: undefined symbol " + name)
	}
	return v
}

// End returns the first virtual address past the image.
func (p *Program) End() uint32 { return p.Origin + uint32(len(p.Bytes)) }

// AsmError is an assembly error tagged with its source line.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

// AsmErrors collects all errors from an assembly run.
type AsmErrors []*AsmError

func (es AsmErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d assembly errors:", len(es))
	for i, e := range es {
		if i == 8 {
			fmt.Fprintf(&b, "\n\t... and %d more", len(es)-8)
			break
		}
		b.WriteString("\n\t" + e.Error())
	}
	return b.String()
}

// Assemble translates VAX-subset assembly source into a Program.
//
// Syntax summary (a pragmatic MACRO-32 subset):
//
//	label:  mnemonic  operand, operand, ...   ; comment
//	sym     =         expression
//	        .org     expr        set the location counter (once, at the top)
//	        .byte    e, e, ...   emit bytes
//	        .word    e, ...      emit 16-bit words
//	        .long    e, ...      emit 32-bit longwords
//	        .ascii   "text"      emit characters
//	        .asciz   "text"      emit characters + NUL
//	        .space   expr        emit zero bytes
//	        .align   expr        pad with zeros to a power-of-two boundary
//
// Operand forms: #expr (immediate; becomes a short literal when the
// expression is a plain constant 0..63 and the operand is read-access),
// Rn/ap/fp/sp/pc, (Rn), (Rn)+, -(Rn), @(Rn)+, expr(Rn), @expr(Rn),
// @#expr (absolute), bare expr (PC-relative), and any memory form with an
// [Rx] index suffix. Branch operands take a bare expression.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		symbols: map[string]uint32{},
		known:   map[string]bool{},
	}
	// Pass 1 sizes everything and collects label values; pass 2 emits.
	var lines []LineInfo
	for pass := 1; pass <= 2; pass++ {
		a.pass = pass
		a.loc = 0
		a.orgSet = false
		a.out = a.out[:0]
		a.errs = a.errs[:0]
		for i, line := range strings.Split(src, "\n") {
			a.line = i + 1
			before := a.loc
			emitted := len(a.out)
			a.doLine(line)
			if pass == 2 && len(a.out) > emitted {
				lines = append(lines, LineInfo{Line: i + 1, Addr: before, Len: len(a.out) - emitted})
			}
		}
		if len(a.errs) > 0 {
			return nil, a.errs
		}
		// After pass 1 every label is known.
		for s := range a.symbols {
			a.known[s] = true
		}
	}
	return &Program{Origin: a.origin, Bytes: append([]byte(nil), a.out...), Symbols: a.symbols, Lines: lines}, nil
}

// Listing renders a MACRO-style assembly listing: address, emitted
// bytes, and the source line. src must be the source the program was
// assembled from.
func Listing(p *Program, src string) string {
	srcLines := strings.Split(src, "\n")
	byLine := map[int]LineInfo{}
	for _, li := range p.Lines {
		byLine[li.Line] = li
	}
	var b strings.Builder
	for i, text := range srcLines {
		li, ok := byLine[i+1]
		if !ok {
			fmt.Fprintf(&b, "%8s  %-24s %s\n", "", "", text)
			continue
		}
		bytes := p.Bytes[li.Addr-p.Origin : li.Addr-p.Origin+uint32(li.Len)]
		hex := ""
		for j, by := range bytes {
			if j == 8 {
				hex += "..."
				break
			}
			hex += fmt.Sprintf("%02x ", by)
		}
		fmt.Fprintf(&b, "%08x  %-24s %s\n", li.Addr, hex, text)
	}
	return b.String()
}

type assembler struct {
	pass    int
	line    int
	loc     uint32 // current virtual address
	origin  uint32
	orgSet  bool
	out     []byte
	symbols map[string]uint32
	known   map[string]bool // defined by the end of pass 1
	errs    AsmErrors
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, &AsmError{Line: a.line, Msg: fmt.Sprintf(format, args...)})
}

func (a *assembler) emit(b ...byte) {
	a.out = append(a.out, b...)
	a.loc += uint32(len(b))
}

func (a *assembler) emitWord(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	a.emit(b[:]...)
}

func (a *assembler) emitLong(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	a.emit(b[:]...)
}

func (a *assembler) doLine(raw string) {
	line := stripComment(raw)
	if strings.TrimSpace(line) == "" {
		return
	}

	// Equate: "sym = expr" (sym at line start, no colon).
	if name, expr, ok := splitEquate(line); ok {
		v, known := a.eval(expr)
		if a.pass == 1 && !known {
			a.errorf("equate %s uses undefined symbols", name)
			return
		}
		a.define(name, v)
		return
	}

	// Optional label.
	rest := line
	for {
		trimmed := strings.TrimSpace(rest)
		idx := labelEnd(trimmed)
		if idx < 0 {
			rest = trimmed
			break
		}
		name := trimmed[:idx]
		a.defineLabel(name)
		rest = trimmed[idx+1:]
	}
	if rest == "" {
		return
	}

	mnemonic, args := splitMnemonic(rest)
	if strings.HasPrefix(mnemonic, ".") {
		a.doDirective(mnemonic, args)
		return
	}
	a.doInstruction(mnemonic, args)
}

func (a *assembler) define(name string, v uint32) {
	if a.pass == 1 {
		if _, dup := a.symbols[name]; dup {
			a.errorf("symbol %q redefined", name)
			return
		}
	}
	a.symbols[name] = v
}

func (a *assembler) defineLabel(name string) {
	if !isIdent(name) {
		a.errorf("bad label %q", name)
		return
	}
	if a.pass == 1 {
		a.define(name, a.loc)
	} else if a.symbols[name] != a.loc {
		// Phase error: pass 1 sizing disagreed with pass 2. The sizing
		// rules are deterministic, so this indicates an assembler bug.
		a.errorf("phase error at label %q: pass1=%#x pass2=%#x", name, a.symbols[name], a.loc)
	}
}

func (a *assembler) doDirective(d, args string) {
	switch d {
	case ".org":
		v, known := a.eval(args)
		if !known {
			a.errorf(".org requires a constant expression")
			return
		}
		if len(a.out) != 0 {
			a.errorf(".org must precede emitted code")
			return
		}
		a.origin = v
		a.loc = v
		a.orgSet = true

	case ".byte", ".word", ".long":
		for _, f := range splitArgs(args) {
			v, known := a.eval(f)
			if a.pass == 2 && !known {
				a.errorf("undefined symbol in %s operand %q", d, f)
			}
			switch d {
			case ".byte":
				a.emit(byte(v))
			case ".word":
				a.emitWord(uint16(v))
			default:
				a.emitLong(v)
			}
		}

	case ".ascii", ".asciz":
		s, err := parseString(strings.TrimSpace(args))
		if err != nil {
			a.errorf("%s: %v", d, err)
			return
		}
		a.emit([]byte(s)...)
		if d == ".asciz" {
			a.emit(0)
		}

	case ".space":
		v, known := a.eval(args)
		if !known {
			a.errorf(".space requires a constant expression")
			return
		}
		a.emit(make([]byte, v)...)

	case ".align":
		v, known := a.eval(args)
		if !known || v == 0 || v&(v-1) != 0 {
			a.errorf(".align requires a constant power of two")
			return
		}
		for a.loc%v != 0 {
			a.emit(0)
		}

	default:
		a.errorf("unknown directive %q", d)
	}
}

func (a *assembler) doInstruction(mnemonic, args string) {
	info, ok := ByName[strings.ToLower(mnemonic)]
	if !ok {
		a.errorf("unknown instruction %q", mnemonic)
		return
	}
	fields := splitArgs(args)
	if len(fields) != len(info.Operands) {
		a.errorf("%s takes %d operands, got %d", info.Name, len(info.Operands), len(fields))
		return
	}
	a.emit(info.Opcode)
	for i, f := range fields {
		a.encodeOperand(f, info.Operands[i], info.Name)
	}
}

// encodeOperand assembles one operand. Sizing rules are pass-independent:
//   - short literal only for plain constants 0..63 in read context;
//   - displacement width chosen by constant value, long for symbolic;
//   - bare-symbol operands are PC-relative with longword displacement;
//   - branch displacements have the width fixed by the opcode.
func (a *assembler) encodeOperand(text string, spec OperandSpec, mnemonic string) {
	text = strings.TrimSpace(text)
	if text == "" {
		a.errorf("%s: empty operand", mnemonic)
		return
	}

	if spec.Access == AccBranch {
		target, known := a.eval(text)
		disp := int64(0)
		if known {
			// Displacement is relative to the PC after the displacement field.
			disp = int64(int32(target)) - int64(int32(a.loc+uint32(spec.Width)))
		} else if a.pass == 2 {
			a.errorf("%s: undefined branch target %q", mnemonic, text)
		}
		switch spec.Width {
		case B:
			if a.pass == 2 && (disp < -128 || disp > 127) {
				a.errorf("%s: branch to %q out of byte range (%d)", mnemonic, text, disp)
			}
			a.emit(byte(disp))
		case W:
			if a.pass == 2 && (disp < -32768 || disp > 32767) {
				a.errorf("%s: branch to %q out of word range (%d)", mnemonic, text, disp)
			}
			a.emitWord(uint16(disp))
		}
		return
	}

	// Index suffix: base[rx].
	var xreg = -1
	if strings.HasSuffix(text, "]") {
		i := strings.LastIndex(text, "[")
		if i < 0 {
			a.errorf("%s: malformed index suffix in %q", mnemonic, text)
			return
		}
		r, ok := regNum(text[i+1 : len(text)-1])
		if !ok || r == PC {
			a.errorf("%s: bad index register in %q", mnemonic, text)
			return
		}
		xreg = r
		text = strings.TrimSpace(text[:i])
	}
	if xreg >= 0 {
		a.emit(byte(0x40 | xreg))
	}

	switch {
	case strings.HasPrefix(text, "#"):
		if xreg >= 0 {
			a.errorf("%s: immediate may not be indexed", mnemonic)
			return
		}
		if spec.Access == AccWrite || spec.Access == AccModify {
			a.errorf("%s: immediate operand %q in write context", mnemonic, text)
			return
		}
		expr := text[1:]
		v, known := a.eval(expr)
		if a.pass == 2 && !known {
			a.errorf("%s: undefined symbol in %q", mnemonic, text)
		}
		if c, isConst := a.plainConst(expr); isConst && c <= 63 && spec.Access == AccRead {
			a.emit(byte(c)) // short literal
			return
		}
		a.emit(0x80 | PC) // (PC)+ immediate
		switch spec.Width {
		case B:
			a.emit(byte(v))
		case W:
			a.emitWord(uint16(v))
		default:
			a.emitLong(v)
		}

	case strings.HasPrefix(text, "@#"):
		v, known := a.eval(text[2:])
		if a.pass == 2 && !known {
			a.errorf("%s: undefined symbol in %q", mnemonic, text)
		}
		a.emit(0x90 | PC)
		a.emitLong(v)

	case strings.HasPrefix(text, "-(") && strings.HasSuffix(text, ")"):
		r, ok := regNum(text[2 : len(text)-1])
		if !ok {
			a.errorf("%s: bad register in %q", mnemonic, text)
			return
		}
		a.emit(byte(0x70 | r))

	case strings.HasPrefix(text, "@(") && strings.HasSuffix(text, ")+"):
		r, ok := regNum(text[2 : len(text)-2])
		if !ok {
			a.errorf("%s: bad register in %q", mnemonic, text)
			return
		}
		a.emit(byte(0x90 | r))

	case strings.HasPrefix(text, "(") && strings.HasSuffix(text, ")+"):
		r, ok := regNum(text[1 : len(text)-2])
		if !ok {
			a.errorf("%s: bad register in %q", mnemonic, text)
			return
		}
		a.emit(byte(0x80 | r))

	case strings.HasPrefix(text, "(") && strings.HasSuffix(text, ")"):
		r, ok := regNum(text[1 : len(text)-1])
		if !ok {
			a.errorf("%s: bad register in %q", mnemonic, text)
			return
		}
		a.emit(byte(0x60 | r))

	case strings.HasSuffix(text, ")") && strings.Contains(text, "("):
		// expr(Rn) or @expr(Rn)
		deferred := strings.HasPrefix(text, "@")
		body := text
		if deferred {
			body = text[1:]
		}
		i := strings.LastIndex(body, "(")
		r, ok := regNum(body[i+1 : len(body)-1])
		if !ok {
			a.errorf("%s: bad register in %q", mnemonic, text)
			return
		}
		expr := strings.TrimSpace(body[:i])
		v, known := a.eval(expr)
		if a.pass == 2 && !known {
			a.errorf("%s: undefined symbol in %q", mnemonic, text)
		}
		a.emitDisp(int32(v), byte(r), deferred, a.dispIsConst(expr))

	default:
		if r, ok := regNum(text); ok {
			if xreg >= 0 {
				a.errorf("%s: register may not be indexed", mnemonic)
				return
			}
			a.emit(byte(0x50 | r))
			return
		}
		if strings.HasPrefix(text, "@") {
			// @expr: PC-relative deferred.
			v, known := a.eval(text[1:])
			a.emitPCRel(v, known, true, mnemonic, text)
			return
		}
		// Bare expression: PC-relative.
		v, known := a.eval(text)
		a.emitPCRel(v, known, false, mnemonic, text)
	}
}

// dispIsConst reports whether a displacement expression is a plain
// constant, which permits byte/word compression deterministically across
// passes.
func (a *assembler) dispIsConst(expr string) bool {
	_, ok := a.plainConst(expr)
	return ok
}

func (a *assembler) emitDisp(v int32, reg byte, deferred, compressible bool) {
	mode := byte(0xE0) // longword displacement
	if compressible {
		switch {
		case v >= -128 && v <= 127:
			mode = 0xA0
		case v >= -32768 && v <= 32767:
			mode = 0xC0
		}
	}
	if deferred {
		mode |= 0x10
	}
	a.emit(mode | reg)
	switch mode &^ 0x1F {
	case 0xA0:
		a.emit(byte(v))
	case 0xC0:
		a.emitWord(uint16(v))
	default:
		a.emitLong(uint32(v))
	}
}

func (a *assembler) emitPCRel(target uint32, known bool, deferred bool, mnemonic, text string) {
	if a.pass == 2 && !known {
		a.errorf("%s: undefined symbol in %q", mnemonic, text)
	}
	mode := byte(0xE0 | PC)
	if deferred {
		mode = 0xF0 | PC
	}
	a.emit(mode)
	// Displacement relative to PC after the 4-byte field.
	disp := int64(int32(target)) - int64(int32(a.loc+4))
	a.emitLong(uint32(int32(disp)))
}

// ---- expression evaluation ----

// plainConst evaluates expr if it is a pure constant expression (no
// symbols); used for sizing decisions that must not depend on pass.
func (a *assembler) plainConst(expr string) (uint32, bool) {
	p := &exprParser{s: expr}
	v, err := p.parse()
	if err != nil || p.usedSymbol {
		return 0, false
	}
	return v, true
}

// eval evaluates an expression; known is false if it referenced a symbol
// not yet defined (only possible during pass 1).
func (a *assembler) eval(expr string) (v uint32, known bool) {
	p := &exprParser{s: expr, sym: a.symbols, defined: a.known, pass: a.pass, dot: a.loc}
	v, err := p.parse()
	if err != nil {
		a.errorf("%v in %q", err, expr)
		return 0, false
	}
	return v, !p.unknown
}

type exprParser struct {
	s          string
	i          int
	sym        map[string]uint32
	defined    map[string]bool
	pass       int
	dot        uint32
	unknown    bool
	usedSymbol bool
}

func (p *exprParser) parse() (uint32, error) {
	v, err := p.expr()
	if err != nil {
		return 0, err
	}
	p.skipWS()
	if p.i != len(p.s) {
		return 0, fmt.Errorf("trailing %q", p.s[p.i:])
	}
	return v, nil
}

func (p *exprParser) skipWS() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *exprParser) peek() byte {
	if p.i < len(p.s) {
		return p.s[p.i]
	}
	return 0
}

// expr := shift (('|'|'&'|'^') shift)*
func (p *exprParser) expr() (uint32, error) {
	v, err := p.shift()
	if err != nil {
		return 0, err
	}
	for {
		p.skipWS()
		switch p.peek() {
		case '|':
			p.i++
			r, err := p.shift()
			if err != nil {
				return 0, err
			}
			v |= r
		case '&':
			p.i++
			r, err := p.shift()
			if err != nil {
				return 0, err
			}
			v &= r
		case '^':
			p.i++
			r, err := p.shift()
			if err != nil {
				return 0, err
			}
			v ^= r
		default:
			return v, nil
		}
	}
}

// shift := sum (('<<'|'>>') sum)*
func (p *exprParser) shift() (uint32, error) {
	v, err := p.sum()
	if err != nil {
		return 0, err
	}
	for {
		p.skipWS()
		if strings.HasPrefix(p.s[p.i:], "<<") {
			p.i += 2
			r, err := p.sum()
			if err != nil {
				return 0, err
			}
			v <<= r & 31
		} else if strings.HasPrefix(p.s[p.i:], ">>") {
			p.i += 2
			r, err := p.sum()
			if err != nil {
				return 0, err
			}
			v >>= r & 31
		} else {
			return v, nil
		}
	}
}

// sum := term (('+'|'-') term)*
func (p *exprParser) sum() (uint32, error) {
	v, err := p.term()
	if err != nil {
		return 0, err
	}
	for {
		p.skipWS()
		switch p.peek() {
		case '+':
			p.i++
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.i++
			r, err := p.term()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

// term := atom (('*'|'/') atom)*
func (p *exprParser) term() (uint32, error) {
	v, err := p.atom()
	if err != nil {
		return 0, err
	}
	for {
		p.skipWS()
		switch p.peek() {
		case '*':
			p.i++
			r, err := p.atom()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.i++
			r, err := p.atom()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) atom() (uint32, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '-':
		p.i++
		v, err := p.atom()
		return -v, err
	case c == '~':
		p.i++
		v, err := p.atom()
		return ^v, err
	case c == '(':
		p.i++
		v, err := p.expr()
		if err != nil {
			return 0, err
		}
		p.skipWS()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing )")
		}
		p.i++
		return v, nil
	case c == '\'':
		if p.i+2 < len(p.s) && p.s[p.i+2] == '\'' {
			v := uint32(p.s[p.i+1])
			p.i += 3
			return v, nil
		}
		return 0, fmt.Errorf("bad character literal")
	case c == '.':
		p.i++
		p.usedSymbol = true
		return p.dot, nil
	case c >= '0' && c <= '9':
		return p.number()
	case isIdentStart(c):
		return p.symbol()
	default:
		return 0, fmt.Errorf("unexpected %q", string(c))
	}
}

func (p *exprParser) number() (uint32, error) {
	start := p.i
	for p.i < len(p.s) && (isAlnum(p.s[p.i])) {
		p.i++
	}
	text := p.s[start:p.i]
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", text)
	}
	return uint32(v), nil
}

func (p *exprParser) symbol() (uint32, error) {
	start := p.i
	for p.i < len(p.s) && isIdentChar(p.s[p.i]) {
		p.i++
	}
	name := p.s[start:p.i]
	p.usedSymbol = true
	if v, ok := p.sym[name]; ok {
		return v, nil
	}
	if p.pass == 1 && !p.defined[name] {
		p.unknown = true
		return 0, nil
	}
	p.unknown = true
	return 0, nil
}

// ---- lexical helpers ----

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case ';':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func splitEquate(line string) (name, expr string, ok bool) {
	i := strings.IndexByte(line, '=')
	if i < 0 || strings.Contains(line[:i], ":") {
		return "", "", false
	}
	// "<<" or ">>" or "==" in an instruction line can't reach here because
	// instruction lines never contain '=' outside of expressions in
	// operands, which always follow a mnemonic; require the left side to
	// be a single identifier.
	name = strings.TrimSpace(line[:i])
	if !isIdent(name) {
		return "", "", false
	}
	return name, strings.TrimSpace(line[i+1:]), true
}

// labelEnd returns the index of the colon ending a leading label, or -1.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if i == 0 && !isIdentStart(c) {
			return -1
		}
		if i > 0 && !isIdentChar(c) {
			return -1
		}
	}
	return -1
}

func splitMnemonic(s string) (mnemonic, args string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// splitArgs splits on commas that are not inside quotes, parens or
// brackets.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(', '[':
			if !inStr {
				depth++
			}
		case ')', ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseString(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\', '"':
			b.WriteByte(body[i])
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

func regNum(s string) (int, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ap":
		return AP, true
	case "fp":
		return FP, true
	case "sp":
		return SP, true
	case "pc":
		return PC, true
	}
	s = strings.ToLower(strings.TrimSpace(s))
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return n, true
		}
	}
	return 0, false
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isAlnum(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	// Reject register names so "sp = 4" style typos fail loudly.
	if _, isReg := regNum(s); isReg {
		return false
	}
	return true
}

// SymbolsSorted returns symbol names in address order (for listings).
func (p *Program) SymbolsSorted() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
