package vax

import "fmt"

// AddrMode is a decoded VAX addressing mode. The raw specifier byte's high
// nibble selects the mode; PC-based variants of autoincrement and
// displacement modes get their own decoded values because their semantics
// differ (immediate, absolute, relative).
type AddrMode uint8

const (
	ModeLiteral         AddrMode = iota // S^#0..63, high nibble 0-3
	ModeIndexed                         // [Rx] prefix, nibble 4 (wraps a base operand)
	ModeRegister                        // Rn, nibble 5
	ModeRegDeferred                     // (Rn), nibble 6
	ModeAutoDec                         // -(Rn), nibble 7
	ModeAutoInc                         // (Rn)+, nibble 8
	ModeAutoIncDeferred                 // @(Rn)+, nibble 9
	ModeByteDisp                        // B^d(Rn), nibble A
	ModeByteDispDef                     // @B^d(Rn), nibble B
	ModeWordDisp                        // W^d(Rn), nibble C
	ModeWordDispDef                     // @W^d(Rn), nibble D
	ModeLongDisp                        // L^d(Rn), nibble E
	ModeLongDispDef                     // @L^d(Rn), nibble F
	ModeImmediate                       // #imm       = (PC)+
	ModeAbsolute                        // @#addr     = @(PC)+
	ModeBranch                          // branch displacement (not specifier-coded)
)

// Operand is one decoded operand specifier.
type Operand struct {
	Mode AddrMode
	Reg  byte // base register (not meaningful for literal/immediate/absolute/branch)

	Indexed bool // an index prefix [Xreg] was present
	Xreg    byte

	Lit  byte   // ModeLiteral: the 6-bit value
	Disp int32  // displacement or branch displacement (sign-extended)
	Imm  uint32 // ModeImmediate: constant; ModeAbsolute: address

	// Len is the number of instruction-stream bytes the specifier
	// consumed (for disassembly and PC arithmetic checks).
	Len int
}

// Fetcher supplies consecutive instruction-stream bytes. The CPU's
// implementation charges microcycles and fires I-fetch events; the
// disassembler's reads from a slice.
type Fetcher interface {
	Byte() (byte, error)
	Word() (uint16, error)
	Long() (uint32, error)
}

// DecodeOperand decodes one operand specifier for an operand of the given
// spec. Branch operands (AccBranch) are displacement-coded, not
// specifier-coded.
func DecodeOperand(f Fetcher, spec OperandSpec) (Operand, error) {
	if spec.Access == AccBranch {
		return decodeBranch(f, spec.Width)
	}
	return decodeSpecifier(f, spec, false)
}

func decodeBranch(f Fetcher, w Width) (Operand, error) {
	switch w {
	case B:
		b, err := f.Byte()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mode: ModeBranch, Disp: int32(int8(b)), Len: 1}, nil
	case W:
		v, err := f.Word()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mode: ModeBranch, Disp: int32(int16(v)), Len: 2}, nil
	default:
		return Operand{}, fmt.Errorf("vax: invalid branch displacement width %v", w)
	}
}

func decodeSpecifier(f Fetcher, spec OperandSpec, inIndex bool) (Operand, error) {
	sb, err := f.Byte()
	if err != nil {
		return Operand{}, err
	}
	mode := sb >> 4
	reg := sb & 0x0F
	op := Operand{Reg: reg, Len: 1}

	switch mode {
	case 0, 1, 2, 3: // short literal
		op.Mode = ModeLiteral
		op.Lit = sb & 0x3F
		return op, nil

	case 4: // index prefix
		if inIndex {
			return Operand{}, fmt.Errorf("vax: nested index mode")
		}
		if reg == PC {
			return Operand{}, fmt.Errorf("vax: PC may not be an index register")
		}
		base, err := decodeSpecifier(f, spec, true)
		if err != nil {
			return Operand{}, err
		}
		switch base.Mode {
		case ModeLiteral, ModeRegister, ModeImmediate, ModeIndexed:
			return Operand{}, fmt.Errorf("vax: illegal base mode %v for index mode", base.Mode)
		}
		base.Indexed = true
		base.Xreg = reg
		base.Len++
		return base, nil

	case 5:
		op.Mode = ModeRegister
		return op, nil
	case 6:
		op.Mode = ModeRegDeferred
		return op, nil
	case 7:
		op.Mode = ModeAutoDec
		return op, nil

	case 8:
		if reg == PC { // immediate: constant of operand width follows
			op.Mode = ModeImmediate
			switch spec.Width {
			case B:
				b, err := f.Byte()
				if err != nil {
					return Operand{}, err
				}
				op.Imm = uint32(b)
				op.Len += 1
			case W:
				v, err := f.Word()
				if err != nil {
					return Operand{}, err
				}
				op.Imm = uint32(v)
				op.Len += 2
			default:
				v, err := f.Long()
				if err != nil {
					return Operand{}, err
				}
				op.Imm = v
				op.Len += 4
			}
			return op, nil
		}
		op.Mode = ModeAutoInc
		return op, nil

	case 9:
		if reg == PC { // absolute: 32-bit address follows
			v, err := f.Long()
			if err != nil {
				return Operand{}, err
			}
			op.Mode = ModeAbsolute
			op.Imm = v
			op.Len += 4
			return op, nil
		}
		op.Mode = ModeAutoIncDeferred
		return op, nil

	case 0xA, 0xB:
		b, err := f.Byte()
		if err != nil {
			return Operand{}, err
		}
		op.Disp = int32(int8(b))
		op.Len += 1
		if mode == 0xA {
			op.Mode = ModeByteDisp
		} else {
			op.Mode = ModeByteDispDef
		}
		return op, nil

	case 0xC, 0xD:
		v, err := f.Word()
		if err != nil {
			return Operand{}, err
		}
		op.Disp = int32(int16(v))
		op.Len += 2
		if mode == 0xC {
			op.Mode = ModeWordDisp
		} else {
			op.Mode = ModeWordDispDef
		}
		return op, nil

	default: // 0xE, 0xF
		v, err := f.Long()
		if err != nil {
			return Operand{}, err
		}
		op.Disp = int32(v)
		op.Len += 4
		if mode == 0xE {
			op.Mode = ModeLongDisp
		} else {
			op.Mode = ModeLongDispDef
		}
		return op, nil
	}
}

// String renders the operand in assembler syntax. PC-relative
// displacements render with the raw displacement since the operand does
// not know its own address.
func (o Operand) String() string {
	s := o.base()
	if o.Indexed {
		s += "[" + RegName(int(o.Xreg)) + "]"
	}
	return s
}

func (o Operand) base() string {
	r := RegName(int(o.Reg))
	switch o.Mode {
	case ModeLiteral:
		return fmt.Sprintf("#%d", o.Lit)
	case ModeRegister:
		return r
	case ModeRegDeferred:
		return "(" + r + ")"
	case ModeAutoDec:
		return "-(" + r + ")"
	case ModeAutoInc:
		return "(" + r + ")+"
	case ModeAutoIncDeferred:
		return "@(" + r + ")+"
	case ModeByteDisp, ModeWordDisp, ModeLongDisp:
		return fmt.Sprintf("%d(%s)", o.Disp, r)
	case ModeByteDispDef, ModeWordDispDef, ModeLongDispDef:
		return fmt.Sprintf("@%d(%s)", o.Disp, r)
	case ModeImmediate:
		return fmt.Sprintf("#%#x", o.Imm)
	case ModeAbsolute:
		return fmt.Sprintf("@#%#x", o.Imm)
	case ModeBranch:
		return fmt.Sprintf(".%+d", o.Disp)
	}
	return "?"
}

// HasEffectiveAddress reports whether the operand names a memory location
// (as opposed to a register, literal, immediate or branch displacement).
func (o Operand) HasEffectiveAddress() bool {
	switch o.Mode {
	case ModeLiteral, ModeRegister, ModeImmediate, ModeBranch:
		return o.Indexed && o.Mode != ModeBranch // indexed literals/registers are illegal anyway
	default:
		return true
	}
}
