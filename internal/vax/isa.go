// Package vax defines the instruction-set architecture of the simulated
// machine: a faithful subset of the VAX — real opcode encodings, the full
// operand-specifier (addressing-mode) scheme, condition codes and the PSL
// layout — together with a two-pass assembler and a disassembler.
//
// The execution engine lives in internal/micro; this package is pure ISA
// description plus tooling, so the assembler, disassembler, decoder and
// CPU all share one opcode table.
package vax

import "fmt"

// Register numbers. R12..R15 have architectural roles.
const (
	R0 = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	AP // R12, argument pointer
	FP // R13, frame pointer
	SP // R14, stack pointer
	PC // R15, program counter
)

// RegName returns the conventional name of register n.
func RegName(n int) string {
	switch n {
	case AP:
		return "ap"
	case FP:
		return "fp"
	case SP:
		return "sp"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", n)
	}
}

// PSL (processor status longword) bits. Only the fields the simulator
// uses are defined; the layout matches the VAX architecture handbook.
const (
	PSLC uint32 = 1 << 0 // carry
	PSLV uint32 = 1 << 1 // overflow
	PSLZ uint32 = 1 << 2 // zero
	PSLN uint32 = 1 << 3 // negative
	PSLT uint32 = 1 << 4 // trace (T-bit): trace-trap pending after each instruction

	PSLIPLShift        = 16
	PSLIPLMask  uint32 = 0x1F << PSLIPLShift // interrupt priority level

	PSLPrvModShift        = 22
	PSLPrvModMask  uint32 = 3 << PSLPrvModShift
	PSLCurModShift        = 24
	PSLCurModMask  uint32 = 3 << PSLCurModShift

	PSLIS  uint32 = 1 << 26 // executing on the interrupt stack
	PSLFPD uint32 = 1 << 27 // first part done (restartable string instructions)
)

// Access modes (the two the simulator distinguishes; the VAX's E and S
// modes are folded into kernel).
const (
	ModeKernel = 0
	ModeUser   = 3
)

// CurMode extracts the current access mode from a PSL value.
func CurMode(psl uint32) int { return int(psl&PSLCurModMask) >> PSLCurModShift }

// IPL extracts the interrupt priority level from a PSL value.
func IPL(psl uint32) int { return int(psl&PSLIPLMask) >> PSLIPLShift }

// Width is an operand data width in bytes.
type Width uint8

const (
	B Width = 1 // byte
	W Width = 2 // word
	L Width = 4 // longword
)

func (w Width) String() string {
	switch w {
	case B:
		return "byte"
	case W:
		return "word"
	case L:
		return "long"
	}
	return fmt.Sprintf("Width(%d)", uint8(w))
}

// Access describes how an instruction uses an operand, following the VAX
// architecture handbook's notation (r/w/m/a/b/v).
type Access uint8

const (
	AccRead   Access = iota // r: operand value is read
	AccWrite                // w: operand location is written
	AccModify               // m: read then written
	AccAddr                 // a: address of operand is used (no reference)
	AccBranch               // b: branch displacement of Width bytes in the instruction stream
	AccVField               // v: bit-field base (treated as address here)
)

func (a Access) String() string {
	switch a {
	case AccRead:
		return "r"
	case AccWrite:
		return "w"
	case AccModify:
		return "m"
	case AccAddr:
		return "a"
	case AccBranch:
		return "b"
	case AccVField:
		return "v"
	}
	return "?"
}

// OperandSpec is one operand's access type and width.
type OperandSpec struct {
	Access Access
	Width  Width
}

// InstrInfo describes one opcode.
type InstrInfo struct {
	Name     string
	Opcode   byte
	Operands []OperandSpec
	// Cost is the base microroutine cost in microcycles, excluding
	// per-memory-reference costs charged by the micro engine.
	Cost uint32
	// Priv marks instructions that fault in user mode.
	Priv bool
}

func ops(specs ...OperandSpec) []OperandSpec { return specs }

func rb() OperandSpec { return OperandSpec{AccRead, B} }
func rw() OperandSpec { return OperandSpec{AccRead, W} }
func rl() OperandSpec { return OperandSpec{AccRead, L} }
func wb() OperandSpec { return OperandSpec{AccWrite, B} }
func ww() OperandSpec { return OperandSpec{AccWrite, W} }
func wl() OperandSpec { return OperandSpec{AccWrite, L} }
func mb() OperandSpec { return OperandSpec{AccModify, B} }
func mw() OperandSpec { return OperandSpec{AccModify, W} }
func ml() OperandSpec { return OperandSpec{AccModify, L} }
func ab() OperandSpec { return OperandSpec{AccAddr, B} }
func al() OperandSpec { return OperandSpec{AccAddr, L} }
func bb() OperandSpec { return OperandSpec{AccBranch, B} }
func bw() OperandSpec { return OperandSpec{AccBranch, W} }
func vb() OperandSpec { return OperandSpec{AccVField, B} }

// Real VAX opcode values. The subset implemented covers the integer,
// address, control-flow, procedure, queue-free subset a systems kernel
// and integer workloads need, plus MOVC3 (microcoded block copy), the
// privileged MTPR/MFPR/LDPCTX/SVPCTX/REI group, and CHMK for syscalls.
const (
	OpHALT   byte = 0x00
	OpNOP    byte = 0x01
	OpREI    byte = 0x02
	OpBPT    byte = 0x03
	OpRET    byte = 0x04
	OpRSB    byte = 0x05
	OpLDPCTX byte = 0x06
	OpSVPCTX byte = 0x07

	OpINSQUE byte = 0x0E
	OpREMQUE byte = 0x0F

	OpBSBB  byte = 0x10
	OpBRB   byte = 0x11
	OpBNEQ  byte = 0x12
	OpBEQL  byte = 0x13
	OpBGTR  byte = 0x14
	OpBLEQ  byte = 0x15
	OpJSB   byte = 0x16
	OpJMP   byte = 0x17
	OpBGEQ  byte = 0x18
	OpBLSS  byte = 0x19
	OpBGTRU byte = 0x1A
	OpBLEQU byte = 0x1B
	OpBVC   byte = 0x1C
	OpBVS   byte = 0x1D
	OpBCC   byte = 0x1E // a.k.a. BGEQU
	OpBCS   byte = 0x1F // a.k.a. BLSSU

	OpMOVC3 byte = 0x28
	OpCMPC3 byte = 0x29
	OpMOVC5 byte = 0x2C

	OpBSBW   byte = 0x30
	OpBRW    byte = 0x31
	OpCVTWL  byte = 0x32
	OpCVTWB  byte = 0x33
	OpLOCC   byte = 0x3A
	OpSKPC   byte = 0x3B
	OpMOVZWL byte = 0x3C

	OpASHL byte = 0x78
	OpEMUL byte = 0x7A
	OpEDIV byte = 0x7B

	OpADDB2  byte = 0x80
	OpADDB3  byte = 0x81
	OpSUBB2  byte = 0x82
	OpSUBB3  byte = 0x83
	OpBISB2  byte = 0x88
	OpBISB3  byte = 0x89
	OpBICB2  byte = 0x8A
	OpBICB3  byte = 0x8B
	OpXORB2  byte = 0x8C
	OpXORB3  byte = 0x8D
	OpMNEGB  byte = 0x8E
	OpMOVB   byte = 0x90
	OpCMPB   byte = 0x91
	OpMCOMB  byte = 0x92
	OpBITB   byte = 0x93
	OpCLRB   byte = 0x94
	OpTSTB   byte = 0x95
	OpINCB   byte = 0x96
	OpDECB   byte = 0x97
	OpCVTBL  byte = 0x98
	OpCVTBW  byte = 0x99
	OpMOVZBL byte = 0x9A
	OpMOVZBW byte = 0x9B
	OpROTL   byte = 0x9C
	OpMOVAB  byte = 0x9E
	OpPUSHAB byte = 0x9F

	OpADDW2  byte = 0xA0
	OpADDW3  byte = 0xA1
	OpSUBW2  byte = 0xA2
	OpSUBW3  byte = 0xA3
	OpBISW2  byte = 0xA8
	OpBISW3  byte = 0xA9
	OpBICW2  byte = 0xAA
	OpBICW3  byte = 0xAB
	OpXORW2  byte = 0xAC
	OpXORW3  byte = 0xAD
	OpMNEGW  byte = 0xAE
	OpMOVW   byte = 0xB0
	OpCMPW   byte = 0xB1
	OpMCOMW  byte = 0xB2
	OpBITW   byte = 0xB3
	OpCLRW   byte = 0xB4
	OpTSTW   byte = 0xB5
	OpINCW   byte = 0xB6
	OpDECW   byte = 0xB7
	OpBISPSW byte = 0xB8
	OpBICPSW byte = 0xB9
	OpPOPR   byte = 0xBA
	OpPUSHR  byte = 0xBB
	OpCHMK   byte = 0xBC

	OpADDL2  byte = 0xC0
	OpADDL3  byte = 0xC1
	OpSUBL2  byte = 0xC2
	OpSUBL3  byte = 0xC3
	OpMULL2  byte = 0xC4
	OpMULL3  byte = 0xC5
	OpDIVL2  byte = 0xC6
	OpDIVL3  byte = 0xC7
	OpBISL2  byte = 0xC8
	OpBISL3  byte = 0xC9
	OpBICL2  byte = 0xCA
	OpBICL3  byte = 0xCB
	OpXORL2  byte = 0xCC
	OpXORL3  byte = 0xCD
	OpMNEGL  byte = 0xCE
	OpCASEL  byte = 0xCF
	OpMOVL   byte = 0xD0
	OpCMPL   byte = 0xD1
	OpMCOML  byte = 0xD2
	OpBITL   byte = 0xD3
	OpCLRL   byte = 0xD4
	OpTSTL   byte = 0xD5
	OpINCL   byte = 0xD6
	OpDECL   byte = 0xD7
	OpADWC   byte = 0xD8
	OpSBWC   byte = 0xD9
	OpMTPR   byte = 0xDA
	OpMFPR   byte = 0xDB
	OpMOVPSL byte = 0xDC
	OpPUSHL  byte = 0xDD
	OpMOVAL  byte = 0xDE
	OpPUSHAL byte = 0xDF

	OpBBS   byte = 0xE0
	OpBBC   byte = 0xE1
	OpBBSSI byte = 0xE6
	OpBBCCI byte = 0xE7
	OpBLBS  byte = 0xE8
	OpBLBC  byte = 0xE9

	OpACBL   byte = 0xF1
	OpAOBLSS byte = 0xF2
	OpAOBLEQ byte = 0xF3
	OpSOBGEQ byte = 0xF4
	OpSOBGTR byte = 0xF5
	OpCVTLB  byte = 0xF6
	OpCVTLW  byte = 0xF7

	OpCALLS byte = 0xFB
)

// Instructions is the opcode table, indexed by opcode byte. Nil entries
// are unimplemented opcodes (reserved-instruction fault at run time).
var Instructions [256]*InstrInfo

// ByName maps lower-case mnemonics to their InstrInfo.
var ByName = map[string]*InstrInfo{}

func def(op byte, name string, cost uint32, priv bool, specs ...OperandSpec) {
	ii := &InstrInfo{Name: name, Opcode: op, Operands: specs, Cost: cost, Priv: priv}
	if Instructions[op] != nil {
		panic("vax: duplicate opcode " + name)
	}
	Instructions[op] = ii
	ByName[name] = ii
}

func init() {
	def(OpHALT, "halt", 4, true)
	def(OpNOP, "nop", 2, false)
	def(OpREI, "rei", 12, true)
	def(OpBPT, "bpt", 8, false)
	def(OpRET, "ret", 14, false)
	def(OpRSB, "rsb", 4, false)
	def(OpLDPCTX, "ldpctx", 40, true)
	def(OpSVPCTX, "svpctx", 36, true)

	def(OpINSQUE, "insque", 10, false, ops(ab(), ab())...)
	def(OpREMQUE, "remque", 10, false, ops(ab(), wl())...)

	def(OpBSBB, "bsbb", 5, false, ops(bb())...)
	def(OpBRB, "brb", 3, false, ops(bb())...)
	def(OpBNEQ, "bneq", 3, false, ops(bb())...)
	def(OpBEQL, "beql", 3, false, ops(bb())...)
	def(OpBGTR, "bgtr", 3, false, ops(bb())...)
	def(OpBLEQ, "bleq", 3, false, ops(bb())...)
	def(OpJSB, "jsb", 6, false, ops(al())...)
	def(OpJMP, "jmp", 4, false, ops(al())...)
	def(OpBGEQ, "bgeq", 3, false, ops(bb())...)
	def(OpBLSS, "blss", 3, false, ops(bb())...)
	def(OpBGTRU, "bgtru", 3, false, ops(bb())...)
	def(OpBLEQU, "blequ", 3, false, ops(bb())...)
	def(OpBVC, "bvc", 3, false, ops(bb())...)
	def(OpBVS, "bvs", 3, false, ops(bb())...)
	def(OpBCC, "bcc", 3, false, ops(bb())...)
	def(OpBCS, "bcs", 3, false, ops(bb())...)

	def(OpMOVC3, "movc3", 20, false, ops(rw(), ab(), ab())...)
	def(OpCMPC3, "cmpc3", 20, false, ops(rw(), ab(), ab())...)
	def(OpMOVC5, "movc5", 24, false, ops(rw(), ab(), rb(), rw(), ab())...)

	def(OpBSBW, "bsbw", 5, false, ops(bw())...)
	def(OpBRW, "brw", 3, false, ops(bw())...)
	def(OpCVTWL, "cvtwl", 3, false, ops(rw(), wl())...)
	def(OpCVTWB, "cvtwb", 3, false, ops(rw(), wb())...)
	def(OpLOCC, "locc", 16, false, ops(rb(), rw(), ab())...)
	def(OpSKPC, "skpc", 16, false, ops(rb(), rw(), ab())...)
	def(OpMOVZWL, "movzwl", 3, false, ops(rw(), wl())...)

	def(OpASHL, "ashl", 6, false, ops(rb(), rl(), wl())...)
	def(OpEMUL, "emul", 14, false, ops(rl(), rl(), rl(), wl())...)
	def(OpEDIV, "ediv", 20, false, ops(rl(), rl(), wl(), wl())...)

	def(OpADDB2, "addb2", 3, false, ops(rb(), mb())...)
	def(OpADDB3, "addb3", 3, false, ops(rb(), rb(), wb())...)
	def(OpSUBB2, "subb2", 3, false, ops(rb(), mb())...)
	def(OpSUBB3, "subb3", 3, false, ops(rb(), rb(), wb())...)
	def(OpMOVB, "movb", 2, false, ops(rb(), wb())...)
	def(OpCMPB, "cmpb", 3, false, ops(rb(), rb())...)
	def(OpMCOMB, "mcomb", 3, false, ops(rb(), wb())...)
	def(OpBITB, "bitb", 3, false, ops(rb(), rb())...)
	def(OpCLRB, "clrb", 2, false, ops(wb())...)
	def(OpTSTB, "tstb", 2, false, ops(rb())...)
	def(OpINCB, "incb", 3, false, ops(mb())...)
	def(OpDECB, "decb", 3, false, ops(mb())...)
	def(OpBISB2, "bisb2", 3, false, ops(rb(), mb())...)
	def(OpBISB3, "bisb3", 3, false, ops(rb(), rb(), wb())...)
	def(OpBICB2, "bicb2", 3, false, ops(rb(), mb())...)
	def(OpBICB3, "bicb3", 3, false, ops(rb(), rb(), wb())...)
	def(OpXORB2, "xorb2", 3, false, ops(rb(), mb())...)
	def(OpXORB3, "xorb3", 3, false, ops(rb(), rb(), wb())...)
	def(OpMNEGB, "mnegb", 3, false, ops(rb(), wb())...)
	def(OpCVTBL, "cvtbl", 3, false, ops(rb(), wl())...)
	def(OpCVTBW, "cvtbw", 3, false, ops(rb(), ww())...)
	def(OpMOVZBL, "movzbl", 3, false, ops(rb(), wl())...)
	def(OpMOVZBW, "movzbw", 3, false, ops(rb(), ww())...)
	def(OpROTL, "rotl", 6, false, ops(rb(), rl(), wl())...)
	def(OpMOVAB, "movab", 3, false, ops(ab(), wl())...)
	def(OpPUSHAB, "pushab", 4, false, ops(ab())...)

	def(OpADDW2, "addw2", 3, false, ops(rw(), mw())...)
	def(OpADDW3, "addw3", 3, false, ops(rw(), rw(), ww())...)
	def(OpSUBW2, "subw2", 3, false, ops(rw(), mw())...)
	def(OpSUBW3, "subw3", 3, false, ops(rw(), rw(), ww())...)
	def(OpBISW2, "bisw2", 3, false, ops(rw(), mw())...)
	def(OpBISW3, "bisw3", 3, false, ops(rw(), rw(), ww())...)
	def(OpBICW2, "bicw2", 3, false, ops(rw(), mw())...)
	def(OpBICW3, "bicw3", 3, false, ops(rw(), rw(), ww())...)
	def(OpXORW2, "xorw2", 3, false, ops(rw(), mw())...)
	def(OpXORW3, "xorw3", 3, false, ops(rw(), rw(), ww())...)
	def(OpMNEGW, "mnegw", 3, false, ops(rw(), ww())...)
	def(OpMOVW, "movw", 2, false, ops(rw(), ww())...)
	def(OpCMPW, "cmpw", 3, false, ops(rw(), rw())...)
	def(OpMCOMW, "mcomw", 3, false, ops(rw(), ww())...)
	def(OpBITW, "bitw", 3, false, ops(rw(), rw())...)
	def(OpCLRW, "clrw", 2, false, ops(ww())...)
	def(OpTSTW, "tstw", 2, false, ops(rw())...)
	def(OpINCW, "incw", 3, false, ops(mw())...)
	def(OpDECW, "decw", 3, false, ops(mw())...)
	def(OpBISPSW, "bispsw", 4, false, ops(rw())...)
	def(OpBICPSW, "bicpsw", 4, false, ops(rw())...)
	def(OpPOPR, "popr", 8, false, ops(rw())...)
	def(OpPUSHR, "pushr", 8, false, ops(rw())...)
	def(OpCHMK, "chmk", 16, false, ops(rw())...)

	def(OpADDL2, "addl2", 3, false, ops(rl(), ml())...)
	def(OpADDL3, "addl3", 3, false, ops(rl(), rl(), wl())...)
	def(OpSUBL2, "subl2", 3, false, ops(rl(), ml())...)
	def(OpSUBL3, "subl3", 3, false, ops(rl(), rl(), wl())...)
	def(OpMULL2, "mull2", 12, false, ops(rl(), ml())...)
	def(OpMULL3, "mull3", 12, false, ops(rl(), rl(), wl())...)
	def(OpDIVL2, "divl2", 18, false, ops(rl(), ml())...)
	def(OpDIVL3, "divl3", 18, false, ops(rl(), rl(), wl())...)
	def(OpBISL2, "bisl2", 3, false, ops(rl(), ml())...)
	def(OpBISL3, "bisl3", 3, false, ops(rl(), rl(), wl())...)
	def(OpBICL2, "bicl2", 3, false, ops(rl(), ml())...)
	def(OpBICL3, "bicl3", 3, false, ops(rl(), rl(), wl())...)
	def(OpXORL2, "xorl2", 3, false, ops(rl(), ml())...)
	def(OpXORL3, "xorl3", 3, false, ops(rl(), rl(), wl())...)
	def(OpMNEGL, "mnegl", 3, false, ops(rl(), wl())...)
	def(OpCASEL, "casel", 10, false, ops(rl(), rl(), rl())...)
	def(OpMOVL, "movl", 2, false, ops(rl(), wl())...)
	def(OpCMPL, "cmpl", 3, false, ops(rl(), rl())...)
	def(OpMCOML, "mcoml", 3, false, ops(rl(), wl())...)
	def(OpBITL, "bitl", 3, false, ops(rl(), rl())...)
	def(OpCLRL, "clrl", 2, false, ops(wl())...)
	def(OpTSTL, "tstl", 2, false, ops(rl())...)
	def(OpINCL, "incl", 3, false, ops(ml())...)
	def(OpDECL, "decl", 3, false, ops(ml())...)
	def(OpADWC, "adwc", 3, false, ops(rl(), ml())...)
	def(OpSBWC, "sbwc", 3, false, ops(rl(), ml())...)
	def(OpMTPR, "mtpr", 10, true, ops(rl(), rl())...)
	def(OpMFPR, "mfpr", 8, true, ops(rl(), wl())...)
	def(OpMOVPSL, "movpsl", 4, false, ops(wl())...)
	def(OpPUSHL, "pushl", 3, false, ops(rl())...)
	def(OpMOVAL, "moval", 3, false, ops(al(), wl())...)
	def(OpPUSHAL, "pushal", 4, false, ops(al())...)

	def(OpBBS, "bbs", 6, false, ops(rl(), vb(), bb())...)
	def(OpBBC, "bbc", 6, false, ops(rl(), vb(), bb())...)
	// Interlocked branch-on-bit: test, then set (BBSSI) or clear
	// (BBCCI) the bit as one indivisible access — the architecture's
	// multiprocessor spinlock primitives.
	def(OpBBSSI, "bbssi", 8, false, ops(rl(), vb(), bb())...)
	def(OpBBCCI, "bbcci", 8, false, ops(rl(), vb(), bb())...)
	def(OpBLBS, "blbs", 4, false, ops(rl(), bb())...)
	def(OpBLBC, "blbc", 4, false, ops(rl(), bb())...)

	def(OpACBL, "acbl", 8, false, ops(rl(), rl(), ml(), bw())...)
	def(OpAOBLSS, "aoblss", 5, false, ops(rl(), ml(), bb())...)
	def(OpAOBLEQ, "aobleq", 5, false, ops(rl(), ml(), bb())...)
	def(OpSOBGEQ, "sobgeq", 5, false, ops(ml(), bb())...)
	def(OpSOBGTR, "sobgtr", 5, false, ops(ml(), bb())...)
	def(OpCVTLB, "cvtlb", 3, false, ops(rl(), wb())...)
	def(OpCVTLW, "cvtlw", 3, false, ops(rl(), ww())...)

	def(OpCALLS, "calls", 24, false, ops(rl(), al())...)

	// Assembler aliases (the architecture's alternate mnemonics).
	ByName["bgequ"] = ByName["bcc"]
	ByName["blssu"] = ByName["bcs"]
}

// Privileged processor registers (MTPR/MFPR register numbers, the VAX
// architecture's values where they exist).
const (
	PrKSP   = 0  // kernel stack pointer
	PrUSP   = 3  // user stack pointer
	PrP0BR  = 8  // P0 base register (system-space virtual address)
	PrP0LR  = 9  // P0 length register (pages)
	PrP1BR  = 10 // P1 base register
	PrP1LR  = 11 // P1 length register
	PrSBR   = 12 // system base register (physical address)
	PrSLR   = 13 // system length register (pages)
	PrPCBB  = 16 // process control block base (physical)
	PrSCBB  = 17 // system control block base (physical)
	PrIPL   = 18 // interrupt priority level
	PrSIRR  = 20 // software interrupt request (write)
	PrSISR  = 21 // software interrupt summary
	PrICCS  = 24 // interval clock control/status (bit 6 = run/enable)
	PrICR   = 26 // interval count register (microcycles per tick)
	PrTXDB  = 35 // console transmit data buffer (write a character)
	PrMAPEN = 56 // memory mapping enable
	PrTBIA  = 57 // translation buffer invalidate all
	PrTBIS  = 58 // translation buffer invalidate single (by VA)
	PrCPUID = 62 // identity of the executing processor (read-only)
)

// Exception and interrupt vectors (offsets into the system control block).
const (
	VecMachineCheck        = 0x04
	VecKernelStackNotValid = 0x08
	VecReserved            = 0x10 // reserved/privileged instruction fault
	VecAccessViolation     = 0x20 // protection violation: pushes VA, then PC/PSL
	VecTranslationNotValid = 0x24 // page fault: pushes VA, then PC/PSL
	VecTraceTrap           = 0x28 // T-bit trace trap
	VecBreakpoint          = 0x2C
	VecArithmetic          = 0x34 // integer overflow / divide by zero
	VecCHMK                = 0x40 // change-mode-to-kernel: pushes code, then PC/PSL
	VecSoftware1           = 0x84 // software interrupt level 1 (rescheduling)
	VecIntervalTimer       = 0xC0 // interval timer interrupt, IPL 22
)

// Interrupt priority levels used by the simulator.
const (
	IPLTimer    = 22
	IPLSoftware = 1
)
