package vax

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Decoded is a fully decoded instruction.
type Decoded struct {
	Addr     uint32 // virtual address of the opcode byte
	Info     *InstrInfo
	Operands []Operand
	Len      int // total instruction length in bytes
}

// String renders the instruction in assembler syntax. Branch and
// PC-relative operands resolve to absolute targets because the
// instruction knows its own address.
func (d Decoded) String() string {
	var b strings.Builder
	b.WriteString(d.Info.Name)
	end := d.Addr + uint32(d.Len)
	for i, op := range d.Operands {
		if i == 0 {
			b.WriteString("\t")
		} else {
			b.WriteString(", ")
		}
		switch {
		case op.Mode == ModeBranch:
			fmt.Fprintf(&b, "%#x", opTarget(d, i, end))
		case (op.Mode == ModeLongDisp || op.Mode == ModeLongDispDef) && op.Reg == PC:
			pfx := ""
			if op.Mode == ModeLongDispDef {
				pfx = "@"
			}
			fmt.Fprintf(&b, "%s%#x", pfx, opTarget(d, i, end))
			if op.Indexed {
				fmt.Fprintf(&b, "[%s]", RegName(int(op.Xreg)))
			}
		default:
			b.WriteString(op.String())
		}
	}
	return b.String()
}

// opTarget computes the absolute target of a PC-based operand. VAX
// PC-relative displacements are relative to the PC value after the
// operand specifier; branch displacements likewise. Both coincide with
// "address after this operand's bytes", which we reconstruct by summing
// operand lengths.
func opTarget(d Decoded, idx int, end uint32) uint32 {
	_ = end
	t, _ := d.OperandTarget(idx)
	return t
}

// OperandTarget returns the absolute address operand idx statically
// refers to, when that address is computable from the instruction alone:
// branch displacements, PC-relative displacement modes (plain and
// deferred), and absolute (@#) operands. For register-based and dynamic
// modes it returns ok=false. For deferred modes the returned address is
// the location of the pointer, not the final target.
func (d Decoded) OperandTarget(idx int) (addr uint32, ok bool) {
	op := d.Operands[idx]
	switch {
	case op.Mode == ModeBranch:
		// fall through to PC arithmetic below
	case op.Mode == ModeAbsolute:
		return op.Imm, true
	case op.Reg == PC && (op.Mode == ModeByteDisp || op.Mode == ModeWordDisp ||
		op.Mode == ModeLongDisp || op.Mode == ModeByteDispDef ||
		op.Mode == ModeWordDispDef || op.Mode == ModeLongDispDef):
		// fall through to PC arithmetic below
	default:
		return 0, false
	}
	// PC after this operand = addr + 1 (opcode) + lengths of operands 0..idx.
	pc := d.Addr + 1
	for i := 0; i <= idx; i++ {
		pc += uint32(d.Operands[i].Len)
	}
	return pc + uint32(op.Disp), true
}

// sliceFetcher implements Fetcher over a byte slice.
type sliceFetcher struct {
	b []byte
	i int
}

func (f *sliceFetcher) Byte() (byte, error) {
	if f.i >= len(f.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := f.b[f.i]
	f.i++
	return v, nil
}

func (f *sliceFetcher) Word() (uint16, error) {
	if f.i+2 > len(f.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint16(f.b[f.i:])
	f.i += 2
	return v, nil
}

func (f *sliceFetcher) Long() (uint32, error) {
	if f.i+4 > len(f.b) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(f.b[f.i:])
	f.i += 4
	return v, nil
}

// DecodeBytes decodes the instruction at the start of b, which is located
// at virtual address addr.
func DecodeBytes(b []byte, addr uint32) (Decoded, error) {
	f := &sliceFetcher{b: b}
	opc, err := f.Byte()
	if err != nil {
		return Decoded{}, err
	}
	info := Instructions[opc]
	if info == nil {
		return Decoded{}, fmt.Errorf("vax: reserved opcode %#02x at %#x", opc, addr)
	}
	d := Decoded{Addr: addr, Info: info}
	for _, spec := range info.Operands {
		op, err := DecodeOperand(f, spec)
		if err != nil {
			return Decoded{}, fmt.Errorf("vax: decoding %s at %#x: %w", info.Name, addr, err)
		}
		d.Operands = append(d.Operands, op)
	}
	d.Len = f.i
	return d, nil
}

// Disassemble renders instructions from b (loaded at addr) until the
// buffer is exhausted or an undecodable byte is reached, returning one
// line per instruction.
func Disassemble(b []byte, addr uint32) []string {
	var lines []string
	off := 0
	for off < len(b) {
		d, err := DecodeBytes(b[off:], addr+uint32(off))
		if err != nil {
			lines = append(lines, fmt.Sprintf("%08x:\t.byte %#02x", addr+uint32(off), b[off]))
			off++
			continue
		}
		lines = append(lines, fmt.Sprintf("%08x:\t%s", d.Addr, d.String()))
		off += d.Len
	}
	return lines
}
