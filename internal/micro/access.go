package micro

import (
	"atum/internal/mmu"
	"atum/internal/vax"
)

// ---- instruction stream ----

// refillIBuf loads the aligned longword containing va into the prefetch
// buffer, firing an EvIFetch micro-event. Aligned longwords never cross a
// 512-byte page, so one translation suffices.
func (m *Machine) refillIBuf(va uint32) {
	aligned := va &^ 3
	pa, fault := m.MMU.Translate(aligned, m.userMode(), false)
	if fault != nil {
		raiseFault(fault)
	}
	m.Cycles += uint64(m.Costs.IFetchRefill)
	m.fire(Access{Ev: EvIFetch, VA: aligned, Width: 4, Mode: m.mode(), PID: m.CurPID})
	for i := uint32(0); i < 4; i++ {
		b, err := m.Mem.Load8(pa + i)
		if err != nil {
			raise(vax.VecMachineCheck, true)
		}
		m.ibufData[i] = b
	}
	m.ibufAddr = aligned
	m.ibufValid = true
}

// fetchByte consumes the next instruction-stream byte at PC.
func (m *Machine) fetchByte() byte {
	pc := m.CPU.R[vax.PC]
	if !m.ibufValid || pc&^3 != m.ibufAddr {
		m.refillIBuf(pc)
	}
	b := m.ibufData[pc&3]
	m.CPU.R[vax.PC] = pc + 1
	return b
}

func (m *Machine) fetchWord() uint16 {
	lo := uint16(m.fetchByte())
	hi := uint16(m.fetchByte())
	return hi<<8 | lo
}

func (m *Machine) fetchLong() uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(m.fetchByte()) << (8 * i)
	}
	return v
}

// flushIBuf invalidates the prefetch buffer (taken branches, REI, ...).
func (m *Machine) flushIBuf() { m.ibufValid = false }

// cpuFetcher adapts the machine to vax.Fetcher for operand decoding.
type cpuFetcher Machine

func (f *cpuFetcher) Byte() (byte, error)   { return (*Machine)(f).fetchByte(), nil }
func (f *cpuFetcher) Word() (uint16, error) { return (*Machine)(f).fetchWord(), nil }
func (f *cpuFetcher) Long() (uint32, error) { return (*Machine)(f).fetchLong(), nil }

// ---- data references ----

// raiseFault converts an MMU fault into the architectural exception. The
// handler receives two parameters: an info longword (bit0 = write access,
// bit1 = fault was on a page-table reference) and the faulting VA.
func raiseFault(f *mmu.Fault) {
	vec := uint16(vax.VecTranslationNotValid)
	if f.Kind == mmu.FaultACV {
		vec = vax.VecAccessViolation
	}
	var info uint32
	if f.Write {
		info |= 1
	}
	if f.PTERef {
		info |= 2
	}
	raise(vec, true, info, f.VA)
}

// translate maps va for a data access, raising the architectural fault on
// failure.
func (m *Machine) translate(va uint32, write bool) uint32 {
	pa, fault := m.MMU.Translate(va, m.userMode(), write)
	if fault == nil {
		return pa
	}
	raiseFault(fault)
	return 0
}

// readVirt performs a data read of width bytes at va, firing EvDRead.
// Unaligned accesses that cross a page boundary translate per byte.
func (m *Machine) readVirt(va uint32, width uint8) uint32 {
	m.Cycles += uint64(m.Costs.DataRead)
	m.fire(Access{Ev: EvDRead, VA: va, Width: width, Mode: m.mode(), PID: m.CurPID})
	return m.readNoEvent(va, width)
}

// readNoEvent is readVirt without the micro-event (second half of a
// modify access, which the 8200 recorded once).
func (m *Machine) readNoEvent(va uint32, width uint8) uint32 {
	if crossesPage(va, width) {
		var v uint32
		for i := uint32(0); i < uint32(width); i++ {
			pa := m.translate(va+i, false)
			b, err := m.Mem.Load8(pa)
			if err != nil {
				raise(vax.VecMachineCheck, true)
			}
			v |= uint32(b) << (8 * i)
		}
		return v
	}
	pa := m.translate(va, false)
	switch width {
	case 1:
		b, err := m.Mem.Load8(pa)
		if err != nil {
			raise(vax.VecMachineCheck, true)
		}
		return uint32(b)
	case 2:
		v, err := m.Mem.Load16(pa)
		if err != nil {
			raise(vax.VecMachineCheck, true)
		}
		return uint32(v)
	default:
		v, err := m.Mem.Load32(pa)
		if err != nil {
			raise(vax.VecMachineCheck, true)
		}
		return v
	}
}

// writeVirt performs a data write, firing EvDWrite.
func (m *Machine) writeVirt(va uint32, width uint8, v uint32) {
	m.Cycles += uint64(m.Costs.DataWrite)
	m.fire(Access{Ev: EvDWrite, VA: va, Width: width, Mode: m.mode(), PID: m.CurPID})
	if crossesPage(va, width) {
		for i := uint32(0); i < uint32(width); i++ {
			pa := m.translate(va+i, true)
			if err := m.Mem.Store8(pa, byte(v>>(8*i))); err != nil {
				raise(vax.VecMachineCheck, true)
			}
		}
		return
	}
	pa := m.translate(va, true)
	var err error
	switch width {
	case 1:
		err = m.Mem.Store8(pa, byte(v))
	case 2:
		err = m.Mem.Store16(pa, uint16(v))
	default:
		err = m.Mem.Store32(pa, v)
	}
	if err != nil {
		raise(vax.VecMachineCheck, true)
	}
}

func crossesPage(va uint32, width uint8) bool {
	return va>>9 != (va+uint32(width)-1)>>9
}

// push/pop operate on the current stack (R[SP]).
func (m *Machine) push(v uint32) {
	m.CPU.R[vax.SP] -= 4
	m.writeVirt(m.CPU.R[vax.SP], 4, v)
}

func (m *Machine) pop() uint32 {
	v := m.readVirt(m.CPU.R[vax.SP], 4)
	m.CPU.R[vax.SP] += 4
	return v
}

// ---- operand evaluation ----

// opRef is an evaluated operand location.
type opRef struct {
	kind opKind
	reg  byte   // register operand
	addr uint32 // memory operand effective address
	val  uint32 // literal / immediate value
}

type opKind uint8

const (
	refReg opKind = iota
	refMem
	refImm
)

// setReg mutates a register recording the old value for fault restart.
func (m *Machine) setReg(r byte, v uint32) {
	m.undoLog = append(m.undoLog, regDelta{reg: r, old: m.CPU.R[r]})
	m.CPU.R[r] = v
}

// skimOperand parses the next operand specifier only to advance PC past
// it, without performing side effects or memory references. Restartable
// string instructions use it when resuming with FPD set: their operands
// were already evaluated (progress lives in R0-R5), but the instruction
// must still end with PC at its successor.
func (m *Machine) skimOperand(spec vax.OperandSpec) {
	if _, err := vax.DecodeOperand((*cpuFetcher)(m), spec); err != nil {
		raise(vax.VecReserved, true)
	}
}

// evalOperand decodes the next operand specifier from the instruction
// stream and computes its location, performing the architectural side
// effects (autoincrement/autodecrement, deferred pointer reads).
func (m *Machine) evalOperand(spec vax.OperandSpec) opRef {
	op, err := vax.DecodeOperand((*cpuFetcher)(m), spec)
	if err != nil {
		raise(vax.VecReserved, true)
	}
	return m.resolve(op, spec)
}

func (m *Machine) resolve(op vax.Operand, spec vax.OperandSpec) opRef {
	width := uint32(spec.Width)
	var ea uint32
	switch op.Mode {
	case vax.ModeLiteral:
		return opRef{kind: refImm, val: uint32(op.Lit)}
	case vax.ModeImmediate:
		return opRef{kind: refImm, val: op.Imm}
	case vax.ModeRegister:
		if op.Reg == vax.PC {
			raise(vax.VecReserved, true)
		}
		return opRef{kind: refReg, reg: op.Reg}
	case vax.ModeRegDeferred:
		ea = m.CPU.R[op.Reg]
	case vax.ModeAutoDec:
		m.setReg(op.Reg, m.CPU.R[op.Reg]-width)
		ea = m.CPU.R[op.Reg]
	case vax.ModeAutoInc:
		ea = m.CPU.R[op.Reg]
		m.setReg(op.Reg, ea+width)
	case vax.ModeAutoIncDeferred:
		ptr := m.CPU.R[op.Reg]
		m.setReg(op.Reg, ptr+4)
		ea = m.readVirt(ptr, 4)
	case vax.ModeAbsolute:
		ea = op.Imm
	case vax.ModeByteDisp, vax.ModeWordDisp, vax.ModeLongDisp:
		ea = m.CPU.R[op.Reg] + uint32(op.Disp)
	case vax.ModeByteDispDef, vax.ModeWordDispDef, vax.ModeLongDispDef:
		ea = m.readVirt(m.CPU.R[op.Reg]+uint32(op.Disp), 4)
	default:
		raise(vax.VecReserved, true)
	}
	if op.Indexed {
		ea += m.CPU.R[op.Xreg] * width
	}
	return opRef{kind: refMem, addr: ea}
}

// readRef reads the operand's value (width-sized, zero-extended raw bits).
func (m *Machine) readRef(r opRef, w vax.Width) uint32 {
	switch r.kind {
	case refImm:
		return truncate(r.val, w)
	case refReg:
		return truncate(m.CPU.R[r.reg], w)
	default:
		return m.readVirt(r.addr, uint8(w))
	}
}

// readRefModify is the read half of a modify operand: the subsequent
// writeRef to the same location is the traced reference (matching the
// single read-modify-write bus transaction of the hardware for
// registers; memory modifies trace both halves via readVirt/writeVirt).
func (m *Machine) readRefModify(r opRef, w vax.Width) uint32 {
	return m.readRef(r, w)
}

// writeRef stores a width-sized value into the operand location.
// Register byte/word writes merge into the low bits (VAX semantics).
func (m *Machine) writeRef(r opRef, w vax.Width, v uint32) {
	switch r.kind {
	case refImm:
		raise(vax.VecReserved, true)
	case refReg:
		switch w {
		case vax.B:
			m.CPU.R[r.reg] = m.CPU.R[r.reg]&^0xFF | v&0xFF
		case vax.W:
			m.CPU.R[r.reg] = m.CPU.R[r.reg]&^0xFFFF | v&0xFFFF
		default:
			m.CPU.R[r.reg] = v
		}
	default:
		m.writeVirt(r.addr, uint8(w), truncate(v, w))
	}
}

// effectiveAddr returns the address of a memory operand (address-access
// operands like MOVAL/JMP destinations).
func (m *Machine) effectiveAddr(r opRef) uint32 {
	if r.kind != refMem {
		raise(vax.VecReserved, true)
	}
	return r.addr
}

func truncate(v uint32, w vax.Width) uint32 {
	switch w {
	case vax.B:
		return v & 0xFF
	case vax.W:
		return v & 0xFFFF
	default:
		return v
	}
}

func signExtend(v uint32, w vax.Width) int32 {
	switch w {
	case vax.B:
		return int32(int8(v))
	case vax.W:
		return int32(int16(v))
	default:
		return int32(v)
	}
}
