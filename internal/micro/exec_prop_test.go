package micro

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"atum/internal/vax"
)

// ccMachine builds a machine ready to run short register-only snippets.
func ccMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.CPU.R[vax.SP] = 0xF000
	return m
}

// runSnippet assembles src at 0x1000 and executes until HALT.
func runSnippet(t *testing.T, m *Machine, src string) {
	t.Helper()
	prog, err := vax.Assemble("\t.org 0x1000\n" + src + "\thalt\n")
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	if err := m.Mem.LoadBytes(prog.Origin, prog.Bytes); err != nil {
		t.Fatal(err)
	}
	m.CPU.R[vax.PC] = prog.Origin
	m.halted = false
	if _, err := m.Run(1000); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestAddCCDifferential checks ADDL2's condition codes against a 64-bit
// reference model on random operands.
func TestAddCCDifferential(t *testing.T) {
	m := ccMachine(t)
	f := func(a, b uint32) bool {
		m.CPU.R[0] = a
		m.CPU.R[1] = b
		runSnippet(t, m, "\taddl2\tr1, r0\n")
		r := m.CPU.R[0]
		if r != a+b {
			return false
		}
		psl := m.CPU.PSL
		wide := uint64(a) + uint64(b)
		wantC := wide > 0xFFFFFFFF
		wantZ := uint32(wide) == 0
		wantN := int32(wide) < 0
		sa, sb, sr := int32(a) < 0, int32(b) < 0, int32(r) < 0
		wantV := sa == sb && sr != sa
		return (psl&vax.PSLC != 0) == wantC &&
			(psl&vax.PSLZ != 0) == wantZ &&
			(psl&vax.PSLN != 0) == wantN &&
			(psl&vax.PSLV != 0) == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSubCCDifferential does the same for SUBL2 (r0 = r0 - r1).
func TestSubCCDifferential(t *testing.T) {
	m := ccMachine(t)
	f := func(a, b uint32) bool {
		m.CPU.R[0] = a
		m.CPU.R[1] = b
		runSnippet(t, m, "\tsubl2\tr1, r0\n")
		r := m.CPU.R[0]
		if r != a-b {
			return false
		}
		psl := m.CPU.PSL
		wantC := b > a // borrow
		wantZ := r == 0
		wantN := int32(r) < 0
		sa, sb, sr := int32(a) < 0, int32(b) < 0, int32(r) < 0
		wantV := sa != sb && sr != sa
		return (psl&vax.PSLC != 0) == wantC &&
			(psl&vax.PSLZ != 0) == wantZ &&
			(psl&vax.PSLN != 0) == wantN &&
			(psl&vax.PSLV != 0) == wantV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCmpBranchesDifferential verifies that the full set of signed and
// unsigned conditional branches agrees with Go's comparison operators.
func TestCmpBranchesDifferential(t *testing.T) {
	m := ccMachine(t)
	branches := []struct {
		mnem string
		ref  func(a, b uint32) bool
	}{
		{"beql", func(a, b uint32) bool { return a == b }},
		{"bneq", func(a, b uint32) bool { return a != b }},
		{"bgtr", func(a, b uint32) bool { return int32(a) > int32(b) }},
		{"bgeq", func(a, b uint32) bool { return int32(a) >= int32(b) }},
		{"blss", func(a, b uint32) bool { return int32(a) < int32(b) }},
		{"bleq", func(a, b uint32) bool { return int32(a) <= int32(b) }},
		{"bgtru", func(a, b uint32) bool { return a > b }},
		{"bgequ", func(a, b uint32) bool { return a >= b }},
		{"blssu", func(a, b uint32) bool { return a < b }},
		{"blequ", func(a, b uint32) bool { return a <= b }},
	}
	r := rand.New(rand.NewSource(99))
	interesting := []uint32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	for i := 0; i < 200; i++ {
		var a, b uint32
		if i < len(interesting)*len(interesting) {
			a = interesting[i%len(interesting)]
			b = interesting[i/len(interesting)]
		} else {
			a, b = r.Uint32(), r.Uint32()
		}
		for _, br := range branches {
			m.CPU.R[0] = a
			m.CPU.R[1] = b
			src := fmt.Sprintf("\tclrl r2\n\tcmpl r0, r1\n\t%s took\n\tbrb done\ntook:\tmovl #1, r2\ndone:\n", br.mnem)
			runSnippet(t, m, src)
			got := m.CPU.R[2] == 1
			if got != br.ref(a, b) {
				t.Fatalf("%s after cmpl %#x,%#x: took=%v, want %v", br.mnem, a, b, got, br.ref(a, b))
			}
		}
	}
}

// TestAsmDisasmRoundTrip assembles a corpus of instructions, decodes the
// bytes, re-renders, re-assembles, and requires identical bytes — the
// assembler and disassembler are inverses up to encoding choices the
// disassembler reproduces exactly.
func TestAsmDisasmRoundTrip(t *testing.T) {
	// Fixed-point corpus: disassembler output must re-assemble to the
	// same bytes. PC-relative forms are rendered as absolute targets,
	// which re-assemble as PC-relative again (same mode, same length).
	src := `
	.org 0x2000
start:	movl	#63, r0
	movl	#64, r1
	addl3	r1, r2, r3
	movb	(r1), r2
	movw	(r3)+, r4
	movl	-(r5), r6
	movl	@(r7)+, r8
	movl	4(r9), r10
	movl	@8(r11), r0
	movl	1000(r1), r2
	clrl	(r1)[r3]
	tstl	r4
	incl	r5
	pushl	r6
	pushr	#0x3e
	rotl	#4, r1, r2
	ashl	#-2, r3, r4
	rsb
	nop
	halt
`
	p1, err := vax.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := vax.Disassemble(p1.Bytes, p1.Origin)
	re := "\t.org 0x2000\n"
	for _, l := range lines {
		// Strip the "address:\t" prefix.
		i := 0
		for l[i] != '\t' {
			i++
		}
		re += "\t" + l[i+1:] + "\n"
	}
	p2, err := vax.Assemble(re)
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, re)
	}
	if len(p1.Bytes) != len(p2.Bytes) {
		t.Fatalf("length changed: %d -> %d\n%s", len(p1.Bytes), len(p2.Bytes), re)
	}
	for i := range p1.Bytes {
		if p1.Bytes[i] != p2.Bytes[i] {
			t.Fatalf("byte %d differs: %#x vs %#x\n%s", i, p1.Bytes[i], p2.Bytes[i], re)
		}
	}
}
