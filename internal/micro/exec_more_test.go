package micro

import (
	"testing"

	"atum/internal/vax"
)

func TestACBL(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	clrl	r0
	movl	#2, r1		; index
aloop:	incl	r0
	acbl	#10, #3, r1, aloop	; index += 3 while <= 10
	halt
`)
	// index: 2 -> 5 -> 8 -> 11(stop): body runs 1 + 3 times? acbl adds
	// then tests: iterations where branch taken: 5,8,11<=10? 11>10 no.
	// body executes: initial pass + taken branches = 1+2 = ... count:
	// r0 increments before each acbl: passes with index 2,5,8 -> 3.
	if m.CPU.R[0] != 3 {
		t.Errorf("acbl iterations = %d, want 3", m.CPU.R[0])
	}
	if m.CPU.R[1] != 11 {
		t.Errorf("acbl final index = %d, want 11", m.CPU.R[1])
	}
}

func TestACBLNegativeStep(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	clrl	r0
	movl	#9, r1
bloop:	incl	r0
	acbl	#1, #-4, r1, bloop	; index -= 4 while >= 1
	halt
`)
	// index: 9 -> 5 -> 1 -> -3(stop): 3 passes.
	if m.CPU.R[0] != 3 {
		t.Errorf("iterations = %d, want 3", m.CPU.R[0])
	}
}

func TestCaselOutOfRange(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#9, r0
	casel	r0, #0, #1
ctab:	.word	c0-ctab
	.word	c1-ctab
	movl	#77, r1		; out-of-range falls through here
	halt
c0:	movl	#100, r1
	halt
c1:	movl	#101, r1
	halt
`)
	if m.CPU.R[1] != 77 {
		t.Errorf("fall-through r1 = %d, want 77", m.CPU.R[1])
	}
}

func TestRegisterByteWordMerge(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0x11223344, r0
	movb	#0x55, r0	; only low byte
	movl	#0x11223344, r1
	movw	#0x6677, r1	; only low word
	halt
`)
	if m.CPU.R[0] != 0x11223355 {
		t.Errorf("byte merge: %#x", m.CPU.R[0])
	}
	if m.CPU.R[1] != 0x11226677 {
		t.Errorf("word merge: %#x", m.CPU.R[1])
	}
}

func TestAutoIncDeferredAdvancesByFour(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	moval	tab, r1
	movb	@(r1)+, r2	; byte via pointer; r1 += 4 regardless
	movb	@(r1)+, r3
	halt
tab:	.long	c1, c2
c1:	.byte	0xAA
c2:	.byte	0xBB
`)
	if m.CPU.R[2]&0xFF != 0xAA || m.CPU.R[3]&0xFF != 0xBB {
		t.Errorf("deferred values: %#x %#x", m.CPU.R[2], m.CPU.R[3])
	}
}

func TestMTPRStackPointerBanking(t *testing.T) {
	// Setting USP from kernel mode must not disturb the active kernel
	// SP; entering user mode activates it.
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0xd000, r6
	mtpr	r6, #3		; USP = 0xd000
	mfpr	#3, r7		; read it back (banked)
	movl	sp, r8		; kernel SP unchanged
	halt
`)
	if m.CPU.R[7] != 0xD000 {
		t.Errorf("USP readback = %#x", m.CPU.R[7])
	}
	if m.CPU.R[8] != 0xF000 {
		t.Errorf("kernel SP disturbed: %#x", m.CPU.R[8])
	}
}

func TestUnalignedCrossPageAccess(t *testing.T) {
	// A longword spanning a 512-byte page boundary, mapping off: plain
	// memory, but exercises the byte-split path.
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0xdeadbeef, val
	movl	val, r0
	halt
val	=	0x21fe	; 2 bytes below a page boundary
`)
	if m.CPU.R[0] != 0xDEADBEEF {
		t.Errorf("cross-page longword = %#x", m.CPU.R[0])
	}
}

func TestSPAutoIncrementUndoneOnFault(t *testing.T) {
	// A faulting instruction with an autoincrement side effect must
	// restore the register before the handler sees it; this validates
	// the undo log with a reserved-operand fault (write to immediate
	// is caught at decode... use PC-register operand instead).
	m := load(t, `
	.org 0x1000
start:	moval	data, r1
	movl	(r1)+, pc	; reserved: PC as register operand faults
	halt
handler: movl	r1, r9		; observe r1 in the handler
	halt
data:	.long	4
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	moval	data, r1
	movl	(r1)+, pc
	halt
handler: movl	r1, r9
	halt
data:	.long	4
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecReserved: prog.MustSymbol("handler")})
	run(t, m)
	want := prog.MustSymbol("data")
	if m.CPU.R[9] != want {
		t.Errorf("r1 in handler = %#x, want %#x (autoincrement not undone)", m.CPU.R[9], want)
	}
}

func TestJmpIndexed(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#1, r2
	jmp	@jtab[r2]	; jump through table entry 1
	halt
t0:	movl	#10, r0
	halt
t1:	movl	#11, r0
	halt
	.align	4
jtab:	.long	t0, t1
`)
	if m.CPU.R[0] != 11 {
		t.Errorf("indexed jump landed wrong: r0=%d", m.CPU.R[0])
	}
}

func TestDiskDeviceRoundTrip(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	; write a pattern into frame 8 (pa 0x1000.. wait that's code;
	; use frame 16 = pa 0x2000)
	movl	#0x2000, r1
	movl	#128, r2
	movl	#0xcafe0000, r3
w:	movl	r3, (r1)+
	incl	r3
	sobgtr	r2, w
	; write frame 16 to disk block 5
	mtpr	#5, #40
	mtpr	#0x2000, #41
	mtpr	#1, #42
	; clobber the frame
	movl	#0x2000, r1
	movl	#128, r2
c:	clrl	(r1)+
	sobgtr	r2, c
	; read it back
	mtpr	#5, #40
	mtpr	#0x2000, #41
	mtpr	#2, #42
	movl	@#0x2000, r4
	movl	@#0x21fc, r5
	halt
`)
	if m.CPU.R[4] != 0xCAFE0000 {
		t.Errorf("disk readback first = %#x", m.CPU.R[4])
	}
	if m.CPU.R[5] != 0xCAFE0000+127 {
		t.Errorf("disk readback last = %#x", m.CPU.R[5])
	}
	r, w := m.DiskStats()
	if r != 1 || w != 1 {
		t.Errorf("disk stats r=%d w=%d", r, w)
	}
}

func TestReadingNeverWrittenDiskBlockYieldsZeros(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0xffffffff, @#0x2000
	mtpr	#99, #40
	mtpr	#0x2000, #41
	mtpr	#2, #42		; read untouched block
	movl	@#0x2000, r0
	halt
`)
	if m.CPU.R[0] != 0 {
		t.Errorf("unwritten block = %#x, want 0", m.CPU.R[0])
	}
}
