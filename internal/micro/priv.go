package micro

import (
	"atum/internal/mem"
	"atum/internal/vax"
)

// readPhys performs a physical data read by microcode (PCB access). It is
// a real memory reference and fires the data-read event with Phys set.
func (m *Machine) readPhys(pa uint32) uint32 {
	m.Cycles += uint64(m.Costs.DataRead)
	m.fire(Access{Ev: EvDRead, VA: pa, Width: 4, Mode: m.mode(), PID: m.CurPID, Phys: true})
	v, err := m.Mem.Load32(pa)
	if err != nil {
		raise(vax.VecMachineCheck, true)
	}
	return v
}

func (m *Machine) writePhys(pa uint32, v uint32) {
	m.Cycles += uint64(m.Costs.DataWrite)
	m.fire(Access{Ev: EvDWrite, VA: pa, Width: 4, Mode: m.mode(), PID: m.CurPID, Phys: true})
	if err := m.Mem.Store32(pa, v); err != nil {
		raise(vax.VecMachineCheck, true)
	}
}

// PCB longword slot indices. The layout is a compaction of the VAX
// hardware process control block (no ESP/SSP since only two modes exist).
const (
	PCBKSP  = 0
	PCBUSP  = 1
	PCBR0   = 2 // R0..R11 occupy slots 2..13
	PCBAP   = 14
	PCBFP   = 15
	PCBPC   = 16
	PCBPSL  = 17
	PCBP0BR = 18
	PCBP0LR = 19
	PCBP1BR = 20
	PCBP1LR = 21
	PCBPID  = 22
	PCBSize = 23 * 4 // bytes
)

// execREI pops PC and PSL from the current stack and resumes. Returning
// to a more privileged mode is a reserved-operand fault.
func execREI(m *Machine) {
	newPC := m.pop()
	newPSL := m.pop()
	if vax.CurMode(newPSL) < vax.CurMode(m.CPU.PSL) {
		raise(vax.VecReserved, true)
	}
	m.setMode(vax.CurMode(newPSL))
	m.CPU.PSL = newPSL
	m.CPU.R[vax.PC] = newPC
	m.flushIBuf()
}

// execLDPCTX loads process context from the PCB at PCBB, invalidates the
// process half of the TB, and pushes the process PC/PSL for the REI that
// follows. All PCB references are physical microcode references.
func execLDPCTX(m *Machine) {
	b := m.PCBB
	m.CPU.KSP = m.readPhys(b + 4*PCBKSP)
	m.CPU.USP = m.readPhys(b + 4*PCBUSP)
	for i := 0; i < 12; i++ {
		m.CPU.R[i] = m.readPhys(b + 4*uint32(PCBR0+i))
	}
	m.CPU.R[vax.AP] = m.readPhys(b + 4*PCBAP)
	m.CPU.R[vax.FP] = m.readPhys(b + 4*PCBFP)
	pc := m.readPhys(b + 4*PCBPC)
	psl := m.readPhys(b + 4*PCBPSL)
	m.MMU.P0BR = m.readPhys(b + 4*PCBP0BR)
	m.MMU.P0LR = m.readPhys(b + 4*PCBP0LR)
	m.MMU.P1BR = m.readPhys(b + 4*PCBP1BR)
	m.MMU.P1LR = m.readPhys(b + 4*PCBP1LR)
	pid := uint8(m.readPhys(b + 4*PCBPID))

	m.MMU.TB.InvalidateProcess()
	prev := m.CurPID
	m.CurPID = pid

	// The switch marker delimits the two processes' reference streams:
	// everything before it (the PCB reads above) belongs to the old
	// context, everything after — including the PC/PSL pushes onto the
	// incoming process's kernel stack — to the new one. When the
	// scheduler re-loads the context it just saved (same PID), the stream
	// does not change hands and no marker is emitted: a marker announcing
	// the already-current PID would double-count switches downstream.
	m.Cycles += uint64(m.Costs.CtxSwitch)
	if pid != prev {
		m.fire(Access{Ev: EvCtxSwitch, VA: b, Mode: m.mode(), PID: pid, Extra: uint16(pid), Phys: true})
	}

	// Executing in kernel mode: refresh the active SP from the new KSP.
	m.CPU.R[vax.SP] = m.CPU.KSP
	m.push(psl)
	m.push(pc)
}

// execSVPCTX saves process context into the PCB at PCBB. The interrupted
// PC/PSL are popped from the kernel stack (they were pushed by the
// exception that entered the kernel).
func execSVPCTX(m *Machine) {
	pc := m.pop()
	psl := m.pop()
	b := m.PCBB
	m.writePhys(b+4*PCBKSP, m.CPU.R[vax.SP]) // kernel SP after the pops
	m.writePhys(b+4*PCBUSP, m.CPU.USP)
	for i := 0; i < 12; i++ {
		m.writePhys(b+4*uint32(PCBR0+i), m.CPU.R[i])
	}
	m.writePhys(b+4*PCBAP, m.CPU.R[vax.AP])
	m.writePhys(b+4*PCBFP, m.CPU.R[vax.FP])
	m.writePhys(b+4*PCBPC, pc)
	m.writePhys(b+4*PCBPSL, psl)
	m.writePhys(b+4*PCBP0BR, m.MMU.P0BR)
	m.writePhys(b+4*PCBP0LR, m.MMU.P0LR)
	m.writePhys(b+4*PCBP1BR, m.MMU.P1BR)
	m.writePhys(b+4*PCBP1LR, m.MMU.P1LR)
}

// execMTPR implements MTPR src, #reg.
func execMTPR(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		v := m.readRef(m.evalOperand(op[0]), vax.L)
		reg := m.readRef(m.evalOperand(op[1]), vax.L)
		switch reg {
		case vax.PrKSP:
			if vax.CurMode(m.CPU.PSL) == vax.ModeKernel {
				m.CPU.R[vax.SP] = v
			} else {
				m.CPU.KSP = v
			}
		case vax.PrUSP:
			if vax.CurMode(m.CPU.PSL) == vax.ModeUser {
				m.CPU.R[vax.SP] = v
			} else {
				m.CPU.USP = v
			}
		case vax.PrP0BR:
			m.MMU.P0BR = v
			m.MMU.TB.InvalidateProcess()
		case vax.PrP0LR:
			m.MMU.P0LR = v
			m.MMU.TB.InvalidateProcess()
		case vax.PrP1BR:
			m.MMU.P1BR = v
			m.MMU.TB.InvalidateProcess()
		case vax.PrP1LR:
			m.MMU.P1LR = v
			m.MMU.TB.InvalidateProcess()
		case vax.PrSBR:
			m.MMU.SBR = v
			m.MMU.TB.InvalidateAll()
		case vax.PrSLR:
			m.MMU.SLR = v
			m.MMU.TB.InvalidateAll()
		case vax.PrPCBB:
			m.PCBB = v
		case vax.PrSCBB:
			m.SCBB = v
		case vax.PrIPL:
			m.CPU.PSL = m.CPU.PSL&^vax.PSLIPLMask | (v&0x1F)<<vax.PSLIPLShift
		case vax.PrSIRR:
			if v >= 1 && v <= 15 {
				m.SISR |= 1 << v
			}
		case vax.PrSISR:
			m.SISR = uint16(v) & 0xFFFE
		case vax.PrICCS:
			m.ICCS = v
			m.nextTick = 0
		case vax.PrICR:
			m.ICR = v
			m.nextTick = 0
		case vax.PrMAPEN:
			m.MMU.MapEn = v&1 != 0
			m.MMU.TB.InvalidateAll()
			m.flushIBuf()
		case vax.PrTBIA:
			// Explicit invalidates broadcast to sibling cores (the
			// shootdown bus): the kernel issues TBIA after changing a
			// shared mapping, and every core's TB must drop it.
			m.MMU.TB.InvalidateAll()
			for _, tb := range m.TBPeers {
				tb.TB.InvalidateAll()
			}
		case vax.PrTBIS:
			m.MMU.TB.InvalidateSingle(v)
			for _, tb := range m.TBPeers {
				tb.TB.InvalidateSingle(v)
			}
		case vax.PrTXDB:
			if err := m.Mem.Store8(mem.ConsoleTX, byte(v)); err != nil {
				raise(vax.VecMachineCheck, true)
			}
		case PrDISKBLK:
			m.disk.blk = v
		case PrDISKADDR:
			m.disk.addr = v
		case PrDISKOP:
			m.diskOp(v)
		default:
			raise(vax.VecReserved, true)
		}
	}
}

// execMFPR implements MFPR #reg, dst.
func execMFPR(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		reg := m.readRef(m.evalOperand(op[0]), vax.L)
		dst := m.evalOperand(op[1])
		var v uint32
		switch reg {
		case vax.PrKSP:
			if vax.CurMode(m.CPU.PSL) == vax.ModeKernel {
				v = m.CPU.R[vax.SP]
			} else {
				v = m.CPU.KSP
			}
		case vax.PrUSP:
			if vax.CurMode(m.CPU.PSL) == vax.ModeUser {
				v = m.CPU.R[vax.SP]
			} else {
				v = m.CPU.USP
			}
		case vax.PrP0BR:
			v = m.MMU.P0BR
		case vax.PrP0LR:
			v = m.MMU.P0LR
		case vax.PrP1BR:
			v = m.MMU.P1BR
		case vax.PrP1LR:
			v = m.MMU.P1LR
		case vax.PrSBR:
			v = m.MMU.SBR
		case vax.PrSLR:
			v = m.MMU.SLR
		case vax.PrPCBB:
			v = m.PCBB
		case vax.PrSCBB:
			v = m.SCBB
		case vax.PrIPL:
			v = uint32(vax.IPL(m.CPU.PSL))
		case vax.PrSISR:
			v = uint32(m.SISR)
		case vax.PrICCS:
			v = m.ICCS
		case vax.PrICR:
			v = m.ICR
		case vax.PrMAPEN:
			if m.MMU.MapEn {
				v = 1
			}
		case vax.PrCPUID:
			v = uint32(m.CPUID)
		default:
			raise(vax.VecReserved, true)
		}
		m.writeRef(dst, vax.L, v)
	}
}

// execMOVC3 implements the microcoded block copy with first-part-done
// restart: a page fault mid-copy leaves progress in R0/R1/R3 and the FPD
// bit set in the pushed PSL, so the re-executed instruction resumes
// instead of restarting.
func execMOVC3(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		if m.CPU.PSL&vax.PSLFPD == 0 {
			length := m.readRef(m.evalOperand(op[0]), vax.W)
			src := m.effectiveAddr(m.evalOperand(op[1]))
			dst := m.effectiveAddr(m.evalOperand(op[2]))
			m.CPU.R[0] = length
			m.CPU.R[1] = src
			m.CPU.R[2] = 0
			m.CPU.R[3] = dst
			m.CPU.R[4] = 0
			m.CPU.R[5] = 0
			m.CPU.PSL |= vax.PSLFPD
		} else {
			// Resuming: progress lives in R0/R1/R3; advance PC past
			// the already-evaluated specifiers.
			for _, s := range op {
				m.skimOperand(s)
			}
		}
		for m.CPU.R[0] != 0 {
			b := m.readVirt(m.CPU.R[1], 1)
			m.writeVirt(m.CPU.R[3], 1, b)
			m.CPU.R[1]++
			m.CPU.R[3]++
			m.CPU.R[0]--
		}
		m.CPU.PSL &^= vax.PSLFPD
		m.ccNZ(0, vax.L) // Z set, N/V clear
		m.CPU.PSL &^= vax.PSLC
	}
}

// execCALLS implements the VAX call-with-stack-args procedure linkage.
// Stack frame (from FP upward): condition handler (0), status longword
// (entry mask in bits 16..27, saved condition codes in bits 0..3), saved
// AP, saved FP, return PC, then the registers named by the entry mask.
func execCALLS(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		n := m.readRef(m.evalOperand(op[0]), vax.L)
		proc := m.effectiveAddr(m.evalOperand(op[1]))

		m.push(n)
		apVal := m.CPU.R[vax.SP] // AP will point at the argument count

		// The entry mask prefixes the procedure's first instruction.
		mask := m.readVirt(proc, 2)
		for r := 11; r >= 0; r-- {
			if mask&(1<<uint(r)) != 0 {
				m.push(m.CPU.R[r])
			}
		}
		m.push(m.CPU.R[vax.PC]) // return address
		m.push(m.CPU.R[vax.FP])
		m.push(m.CPU.R[vax.AP])
		status := mask<<16 | m.CPU.PSL&(vax.PSLN|vax.PSLZ|vax.PSLV|vax.PSLC)
		m.push(status)
		m.push(0) // condition handler

		m.CPU.R[vax.FP] = m.CPU.R[vax.SP]
		m.CPU.R[vax.AP] = apVal
		m.CPU.R[vax.PC] = proc + 2
		m.CPU.PSL &^= vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC
		m.flushIBuf()
	}
}

// execRET unwinds a CALLS frame.
func execRET(m *Machine) {
	m.CPU.R[vax.SP] = m.CPU.R[vax.FP]
	_ = m.pop() // condition handler
	status := m.pop()
	m.CPU.R[vax.AP] = m.pop()
	m.CPU.R[vax.FP] = m.pop()
	m.CPU.R[vax.PC] = m.pop()
	mask := status >> 16 & 0xFFF
	for r := 0; r <= 11; r++ {
		if mask&(1<<uint(r)) != 0 {
			m.CPU.R[r] = m.pop()
		}
	}
	n := m.pop() // argument count pushed by CALLS
	m.CPU.R[vax.SP] += 4 * n
	m.CPU.PSL = m.CPU.PSL&^(vax.PSLN|vax.PSLZ|vax.PSLV|vax.PSLC) |
		status&(vax.PSLN|vax.PSLZ|vax.PSLV|vax.PSLC)
	m.flushIBuf()
}
