package micro

import (
	"testing"

	"atum/internal/vax"
)

func TestQueueInstructions(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	; build header + insert two elements, then remove one
	moval	hdr, r1
	movl	r1, (r1)	; header points at itself (empty)
	movl	r1, 4(r1)
	insque	e1, hdr		; first insertion into empty queue: Z set
	movpsl	r2
	insque	e2, hdr		; insert at head, before e1
	remque	e1, r3		; remove tail element (queue keeps e2)
	movpsl	r4
	remque	e2, r5		; remove last element: queue empty, Z set
	movpsl	r6
	halt
	.align	4
hdr:	.long	0, 0
e1:	.long	0, 0
e2:	.long	0, 0
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	moval	hdr, r1
	movl	r1, (r1)
	movl	r1, 4(r1)
	insque	e1, hdr
	movpsl	r2
	insque	e2, hdr
	remque	e1, r3
	movpsl	r4
	remque	e2, r5
	movpsl	r6
	halt
	.align	4
hdr:	.long	0, 0
e1:	.long	0, 0
e2:	.long	0, 0
`)
	hdr := prog.MustSymbol("hdr")
	e1 := prog.MustSymbol("e1")
	e2 := prog.MustSymbol("e2")

	if m.CPU.R[2]&vax.PSLZ == 0 {
		t.Error("Z not set inserting into empty queue")
	}
	if m.CPU.R[3] != e1 {
		t.Errorf("remque address = %#x, want e1 %#x", m.CPU.R[3], e1)
	}
	// Removing e1 left e2 in the queue: not empty, Z clear.
	if m.CPU.R[4]&vax.PSLZ != 0 {
		t.Error("Z set although the queue still held e2")
	}
	if m.CPU.R[5] != e2 {
		t.Errorf("second remque address = %#x, want e2 %#x", m.CPU.R[5], e2)
	}
	// Removing e2 emptied the queue: Z set, header self-linked.
	if m.CPU.R[6]&vax.PSLZ == 0 {
		t.Error("Z not set when queue became empty")
	}
	flink, _ := m.DebugRead(hdr, 4)
	blink, _ := m.DebugRead(hdr+4, 4)
	if flink != hdr || blink != hdr {
		t.Errorf("header links: flink=%#x blink=%#x, want self %#x", flink, blink, hdr)
	}
}

func TestRemqueEmptySetsV(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	moval	hdr, r1
	movl	r1, (r1)
	movl	r1, 4(r1)
	remque	hdr, r3		; removing from empty queue: V set
	movpsl	r5
	halt
	.align	4
hdr:	.long	0, 0
`)
	if m.CPU.R[5]&vax.PSLV == 0 {
		t.Error("V not set removing from empty queue")
	}
}

func TestAdwcSbwc(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	; 64-bit add: 0xFFFFFFFF_00000001 + 0x00000001_00000003
	movl	#1, r0		; low a
	movl	#0xffffffff, r1	; high a
	addl2	#3, r0		; low sum, sets C=0 (1+3)
	adwc	#1, r1		; high sum with carry
	; now force a carry: low parts 0xFFFFFFFF + 2
	movl	#0xffffffff, r2
	clrl	r3
	addl2	#2, r2		; carry out
	adwc	#0, r3		; r3 = 1
	; borrow chain: 0x00000000_00000000 - 1
	clrl	r4
	clrl	r5
	subl2	#1, r4		; borrow
	sbwc	#0, r5		; r5 = 0xFFFFFFFF
	halt
`)
	if m.CPU.R[1] != 0 { // 0xffffffff + 1 + carry(0) = 0 with carry out
		t.Errorf("adwc high = %#x, want 0", m.CPU.R[1])
	}
	if m.CPU.R[3] != 1 {
		t.Errorf("carry not propagated: r3=%d", m.CPU.R[3])
	}
	if m.CPU.R[5] != 0xFFFFFFFF {
		t.Errorf("borrow not propagated: r5=%#x", m.CPU.R[5])
	}
}

func TestRotl(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	rotl	#8, #0x12345678, r0	; 0x34567812
	rotl	#-8, #0x12345678, r1	; 0x78123456
	rotl	#0, #0xdead, r2
	halt
`)
	if m.CPU.R[0] != 0x34567812 {
		t.Errorf("rotl 8 = %#x", m.CPU.R[0])
	}
	if m.CPU.R[1] != 0x78123456 {
		t.Errorf("rotl -8 = %#x", m.CPU.R[1])
	}
	if m.CPU.R[2] != 0xDEAD {
		t.Errorf("rotl 0 = %#x", m.CPU.R[2])
	}
}

func TestByteWordLogicals(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0xffffffff, r0
	bicb2	#0x0f, r0	; clears low nibble only (byte op)
	movl	#0x00ff, r1
	bisw2	#0xff00, r1	; word or
	movw	#0x0f0f, r2
	xorw2	#0xffff, r2	; word xor -> 0xf0f0 in low word
	mnegb	#5, r3		; low byte = 0xfb
	mcomw	#0, r4		; low word = 0xffff
	movzbw	#0xff, r5
	cvtbw	#0xff, r6	; sign-extends into word
	halt
`)
	if m.CPU.R[0] != 0xFFFFFFF0 {
		t.Errorf("bicb2 = %#x", m.CPU.R[0])
	}
	if m.CPU.R[1]&0xFFFF != 0xFFFF {
		t.Errorf("bisw2 = %#x", m.CPU.R[1])
	}
	if m.CPU.R[2]&0xFFFF != 0xF0F0 {
		t.Errorf("xorw2 = %#x", m.CPU.R[2])
	}
	if m.CPU.R[3]&0xFF != 0xFB {
		t.Errorf("mnegb = %#x", m.CPU.R[3])
	}
	if m.CPU.R[4]&0xFFFF != 0xFFFF {
		t.Errorf("mcomw = %#x", m.CPU.R[4])
	}
	if m.CPU.R[5]&0xFFFF != 0x00FF {
		t.Errorf("movzbw = %#x", m.CPU.R[5])
	}
	if m.CPU.R[6]&0xFFFF != 0xFFFF {
		t.Errorf("cvtbw = %#x", m.CPU.R[6])
	}
}

func TestBispswBicpsw(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	bispsw	#0x0f		; set all cc
	movpsl	r0
	bicpsw	#0x0c		; clear N,Z
	movpsl	r1
	halt
`)
	if m.CPU.R[0]&0xF != 0xF {
		t.Errorf("bispsw psl=%#x", m.CPU.R[0])
	}
	if m.CPU.R[1]&0xF != 0x3 {
		t.Errorf("bicpsw psl=%#x", m.CPU.R[1])
	}
}

func TestCMPC3(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	cmpc3	#5, sa, sb	; equal
	movpsl	r6
	cmpc3	#5, sa, sc	; differ at byte 3 ('l' vs 'x')
	movpsl	r7
	halt
sa:	.ascii	"hello"
sb:	.ascii	"hello"
sc:	.ascii	"helxo"
`)
	if m.CPU.R[6]&vax.PSLZ == 0 {
		t.Error("equal strings: Z not set")
	}
	if m.CPU.R[7]&vax.PSLZ != 0 {
		t.Error("unequal strings: Z set")
	}
	// 'l' (0x6C) < 'x' (0x78): N and C set.
	if m.CPU.R[7]&vax.PSLN == 0 || m.CPU.R[7]&vax.PSLC == 0 {
		t.Errorf("compare cc = %#x", m.CPU.R[7])
	}
	// R0 = remaining bytes including the unequal one (5-3=2).
	if m.CPU.R[0] != 2 {
		t.Errorf("r0 = %d, want 2", m.CPU.R[0])
	}
}

func TestMOVC5(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movc5	#5, srcs, #'x', #9, dsts	; copy 5, fill 4 with 'x'
	movpsl	r6
	movc5	#0, srcs, #0, #8, zbuf		; pure fill: zero 8 bytes
	movpsl	r7
	movc5	#6, longs, #'-', #3, shorts	; truncating copy
	movpsl	r8
	halt
srcs:	.ascii	"hello"
longs:	.ascii	"abcdef"
dsts:	.ascii	"........."
zbuf:	.ascii	"????????"
shorts:	.ascii	"..."
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	movc5	#5, srcs, #'x', #9, dsts
	movpsl	r6
	movc5	#0, srcs, #0, #8, zbuf
	movpsl	r7
	movc5	#6, longs, #'-', #3, shorts
	movpsl	r8
	halt
srcs:	.ascii	"hello"
longs:	.ascii	"abcdef"
dsts:	.ascii	"........."
zbuf:	.ascii	"????????"
shorts:	.ascii	"..."
`)
	readStr := func(sym string, n int) string {
		addr := prog.MustSymbol(sym)
		b := make([]byte, n)
		for i := range b {
			v, err := m.DebugRead(addr+uint32(i), 1)
			if err != nil {
				t.Fatal(err)
			}
			b[i] = byte(v)
		}
		return string(b)
	}
	if got := readStr("dsts", 9); got != "helloxxxx" {
		t.Errorf("copy+fill = %q", got)
	}
	if got := readStr("zbuf", 8); got != "\x00\x00\x00\x00\x00\x00\x00\x00" {
		t.Errorf("zero fill = %q", got)
	}
	if got := readStr("shorts", 3); got != "abc" {
		t.Errorf("truncating copy = %q", got)
	}
	// cc: srclen<dstlen -> N,C; srclen<dstlen again; srclen>dstlen -> none; and
	// the truncating copy leaves residual source count in r0.
	if m.CPU.R[6]&(vax.PSLN|vax.PSLC) != vax.PSLN|vax.PSLC {
		t.Errorf("first movc5 cc = %#x", m.CPU.R[6])
	}
	if m.CPU.R[8]&(vax.PSLN|vax.PSLZ|vax.PSLC) != 0 {
		t.Errorf("truncating movc5 cc = %#x", m.CPU.R[8])
	}
	if m.CPU.R[0] != 3 {
		t.Errorf("residual source count = %d, want 3", m.CPU.R[0])
	}
}

func TestLOCCAndSKPC(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	locc	#'l', #5, str	; find first 'l'
	movl	r0, r6		; remaining = 3 (llo)
	movl	r1, r7		; address of the 'l'
	locc	#'z', #5, str	; absent: r0=0, Z set
	movpsl	r8
	skpc	#'h', #5, str	; skip leading 'h': lands on 'e'
	movl	r1, r9
	halt
str:	.ascii	"hello"
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	locc	#'l', #5, str
	movl	r0, r6
	movl	r1, r7
	locc	#'z', #5, str
	movpsl	r8
	skpc	#'h', #5, str
	movl	r1, r9
	halt
str:	.ascii	"hello"
`)
	str := prog.MustSymbol("str")
	if m.CPU.R[6] != 3 {
		t.Errorf("locc remaining = %d, want 3", m.CPU.R[6])
	}
	if m.CPU.R[7] != str+2 {
		t.Errorf("locc addr = %#x, want %#x", m.CPU.R[7], str+2)
	}
	if m.CPU.R[8]&vax.PSLZ == 0 {
		t.Error("locc miss: Z not set")
	}
	if m.CPU.R[9] != str+1 {
		t.Errorf("skpc addr = %#x, want %#x", m.CPU.R[9], str+1)
	}
}
