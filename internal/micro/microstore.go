package micro

import (
	"fmt"

	"atum/internal/vax"
)

// Microroutine is one control-store entry: the microcode that implements
// a macro-instruction. The stock entries come from the opcode table; a
// tool like ATUM replaces or wraps entries to change what an instruction
// does below the architecture.
type Microroutine struct {
	Name string
	Cost uint32 // base microcycles charged at dispatch
	Priv bool   // faults in user mode
	Exec func(m *Machine)
}

// Microstore is the writable control store: the opcode dispatch table.
type Microstore struct {
	slots [256]*Microroutine
}

// Lookup returns the microroutine for an opcode (nil = reserved).
func (s *Microstore) Lookup(op byte) *Microroutine { return s.slots[op] }

// Replace installs r for opcode op and returns the previous entry. This
// is the microcode-patching primitive.
func (s *Microstore) Replace(op byte, r *Microroutine) *Microroutine {
	old := s.slots[op]
	s.slots[op] = r
	return old
}

// Wrap replaces the microroutine for op with one that calls around(old).
// It returns a restore function. Wrapping a reserved opcode is an error.
func (s *Microstore) Wrap(op byte, name string, extraCost uint32, around func(m *Machine, old *Microroutine)) (restore func(), err error) {
	old := s.slots[op]
	if old == nil {
		return nil, fmt.Errorf("micro: cannot wrap reserved opcode %#02x", op)
	}
	s.slots[op] = &Microroutine{
		Name: name,
		Cost: old.Cost + extraCost,
		Priv: old.Priv,
		Exec: func(m *Machine) { around(m, old) },
	}
	return func() { s.slots[op] = old }, nil
}

// loadStock populates the control store from the opcode table.
func (s *Microstore) loadStock() {
	for op := 0; op < 256; op++ {
		info := vax.Instructions[op]
		if info == nil {
			s.slots[op] = nil
			continue
		}
		s.slots[op] = &Microroutine{
			Name: info.Name,
			Cost: info.Cost,
			Priv: info.Priv,
			Exec: stockExec(info),
		}
	}
}
