// Package micro implements the simulated machine: a VAX-subset CPU whose
// instructions execute as microroutines dispatched from a mutable
// microstore, over the mmu and mem substrates.
//
// The design mirrors what made ATUM possible on the VAX 8200: every
// architectural event — instruction-buffer refill, operand read/write,
// page-table reference, exception dispatch, context switch — funnels
// through a small set of micro-event points, and the microstore itself is
// writable. internal/atum installs its tracing by hooking those points
// and swapping microroutines, exactly as the original patched the 8200's
// control store; nothing above this layer (kernel or user code) can tell
// tracing is on, except that the machine runs slower.
package micro

import (
	"fmt"

	"atum/internal/mem"
	"atum/internal/mmu"
	"atum/internal/vax"
)

// Event identifies a micro-event class that hooks can observe.
type Event uint8

const (
	EvIFetch    Event = iota // instruction-buffer refill (aligned longword)
	EvDRead                  // data read
	EvDWrite                 // data write
	EvPTERead                // page-table entry read by translation microcode
	EvPTEWrite               // PTE modify-bit write by translation microcode
	EvCtxSwitch              // LDPCTX completed; Extra = incoming PID
	EvException              // exception/interrupt dispatch; Extra = SCB vector
	NumEvents
)

func (e Event) String() string {
	switch e {
	case EvIFetch:
		return "ifetch"
	case EvDRead:
		return "dread"
	case EvDWrite:
		return "dwrite"
	case EvPTERead:
		return "pteread"
	case EvPTEWrite:
		return "ptewrite"
	case EvCtxSwitch:
		return "ctxswitch"
	case EvException:
		return "exception"
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Access describes one micro-event occurrence.
type Access struct {
	Ev    Event
	VA    uint32 // virtual address (physical when Phys is set)
	Width uint8  // reference width in bytes
	Mode  uint8  // vax.ModeKernel or vax.ModeUser at the time of access
	PID   uint8  // current process id
	Phys  bool   // address is physical (system PTE refs, PCB refs)
	Extra uint16 // vector (exception) or incoming PID (context switch)
}

// Hook observes micro-events. Hooks run synchronously inside the
// microcycle that generated the event and may charge extra cycles via
// Machine.ChargeCycles — that is how tracing overhead becomes measurable
// dilation.
type Hook func(m *Machine, a Access)

// CostModel holds the microcycle costs of the memory system and
// exception microcode. Instruction base costs live in the opcode table.
type CostModel struct {
	IFetchRefill uint32
	DataRead     uint32
	DataWrite    uint32
	PTERead      uint32
	PTEWrite     uint32
	Exception    uint32
	CtxSwitch    uint32
}

// DefaultCosts approximates a microcoded mid-1980s minicomputer.
func DefaultCosts() CostModel {
	return CostModel{
		IFetchRefill: 2,
		DataRead:     2,
		DataWrite:    2,
		PTERead:      3,
		PTEWrite:     3,
		Exception:    16,
		CtxSwitch:    24,
	}
}

// Config parameterises machine construction.
type Config struct {
	MemSize      uint32 // physical memory bytes (page multiple)
	ReservedSize uint32 // trace region bytes at top of memory
	TBEntries    int    // hardware translation-buffer entries (power of two)
	Costs        CostModel
}

// DefaultConfig returns the standard 8 MB machine with a 512 KB reserved
// trace region (the paper reserved about half a megabyte) and a
// 512-entry TB.
func DefaultConfig() Config {
	return Config{
		MemSize:      8 << 20,
		ReservedSize: 512 << 10,
		TBEntries:    512,
		Costs:        DefaultCosts(),
	}
}

// StopReason reports why Run returned.
type StopReason int

const (
	StopHalt       StopReason = iota // HALT executed in kernel mode
	StopInstrLimit                   // instruction budget exhausted
	StopRequested                    // a hook called RequestStop
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopInstrLimit:
		return "instruction limit"
	case StopRequested:
		return "stop requested"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// MachineCheck is a fatal simulation error: the software below the trap
// handlers (kernel or microcode model) did something unrecoverable, e.g.
// faulted while dispatching an exception.
type MachineCheck struct {
	PC     uint32
	Reason string
}

func (e *MachineCheck) Error() string {
	return fmt.Sprintf("machine check at pc=%#x: %s", e.PC, e.Reason)
}

// CPU is the architectural register state.
type CPU struct {
	R   [16]uint32
	PSL uint32

	// Banked stack pointers. R[SP] always holds the active one; these
	// hold the inactive modes' values.
	KSP, USP uint32
}

// Machine is the simulated computer.
type Machine struct {
	Mem *mem.Physical
	MMU *mmu.Unit
	CPU CPU

	Microstore Microstore

	Costs CostModel

	// Privileged register state.
	PCBB, SCBB uint32
	SISR       uint16 // software interrupt summary (bits 1..15)
	ICCS       uint32 // bit 6 = run/interrupt enable
	ICR        uint32 // microcycles per interval-timer tick

	CurPID uint8

	// CPUID identifies this processor on an SMP machine (0 on a
	// uniprocessor); MFPR PrCPUID reads it. TBPeers lists the sibling
	// cores' translation buffers: MTPR to TBIA/TBIS broadcasts the
	// invalidate to them, modelling a hardware shootdown bus, while
	// context-local invalidations (LDPCTX, base-register writes) stay
	// on this core's TB.
	CPUID   uint8
	TBPeers []*mmu.Unit

	// Clocks and counters.
	Cycles   uint64
	Instrs   uint64
	nextTick uint64

	halted      bool
	stopRequest bool

	hooks [NumEvents][]Hook

	// Per-instruction state for restartable faults.
	instrPC  uint32 // address of current instruction's opcode
	savedCC  uint32 // PSL condition codes at instruction start
	undoLog  []regDelta
	inExcept bool // dispatching an exception (nested fault = machine check)

	// Instruction prefetch buffer: one aligned longword.
	ibufAddr  uint32
	ibufValid bool
	ibufData  [4]byte

	pendingTimer bool

	disk disk
}

type regDelta struct {
	reg byte
	old uint32
}

// New constructs a machine. Mapping starts disabled; memory and registers
// are zero; the microstore holds the stock microroutines.
func New(cfg Config) (*Machine, error) {
	phys, err := mem.NewPhysical(cfg.MemSize, cfg.ReservedSize)
	if err != nil {
		return nil, err
	}
	return newOn(cfg, phys, &diskStore{blocks: make(map[uint32][]byte)}), nil
}

// NewOnMemory constructs an additional processor of an SMP machine: a
// full CPU (own registers, MMU/TB, microstore, clocks) sharing the
// given physical memory and the primary's swap disk. Each core has its
// own microstore, so tracing microcode is installed per CPU — exactly
// the per-processor patching the paper's successors needed for
// multiprocessor ATUM.
func NewOnMemory(cfg Config, primary *Machine) *Machine {
	return newOn(cfg, primary.Mem, primary.disk.store)
}

func newOn(cfg Config, phys *mem.Physical, store *diskStore) *Machine {
	if cfg.TBEntries == 0 {
		cfg.TBEntries = 512
	}
	m := &Machine{
		Mem:   phys,
		MMU:   mmu.New(phys, cfg.TBEntries),
		Costs: cfg.Costs,
	}
	m.disk.store = store
	m.MMU.Obs = (*mmuObserver)(m)
	m.Microstore.loadStock()
	m.CPU.PSL = uint32(vax.ModeKernel) << vax.PSLCurModShift
	return m
}

// mmuObserver adapts the machine to mmu.Observer without exporting the
// methods on Machine itself.
type mmuObserver Machine

func (o *mmuObserver) PTERead(addr uint32, virt bool) {
	m := (*Machine)(o)
	m.Cycles += uint64(m.Costs.PTERead)
	m.fire(Access{Ev: EvPTERead, VA: addr, Width: 4, Mode: m.mode(), PID: m.CurPID, Phys: !virt})
}

func (o *mmuObserver) PTEWrite(addr uint32, virt bool) {
	m := (*Machine)(o)
	m.Cycles += uint64(m.Costs.PTEWrite)
	m.fire(Access{Ev: EvPTEWrite, VA: addr, Width: 4, Mode: m.mode(), PID: m.CurPID, Phys: !virt})
}

// AddHook registers a hook for an event class and returns a function that
// removes it. Hooks run in installation order.
func (m *Machine) AddHook(ev Event, h Hook) (remove func()) {
	m.hooks[ev] = append(m.hooks[ev], h)
	idx := len(m.hooks[ev]) - 1
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		m.hooks[ev][idx] = nil
	}
}

func (m *Machine) fire(a Access) {
	for _, h := range m.hooks[a.Ev] {
		if h != nil {
			h(m, a)
		}
	}
}

// ChargeCycles adds n microcycles to the clock; hooks use it to make
// their overhead visible in measured time.
func (m *Machine) ChargeCycles(n uint32) { m.Cycles += uint64(n) }

// RequestStop asks the run loop to return after the current instruction.
func (m *Machine) RequestStop() { m.stopRequest = true }

// Halted reports whether the machine executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// TakeStopRequest reports whether a hook requested a stop and clears
// the flag. External run loops (the SMP driver steps cores itself
// instead of delegating to Run) poll it between instructions.
func (m *Machine) TakeStopRequest() bool {
	r := m.stopRequest
	m.stopRequest = false
	return r
}

func (m *Machine) mode() uint8 { return uint8(vax.CurMode(m.CPU.PSL)) }

func (m *Machine) userMode() bool { return vax.CurMode(m.CPU.PSL) == vax.ModeUser }

// trap is the internal exception carrier (panic/recover within Step).
type trap struct {
	vector  uint16
	params  []uint32
	restart bool // fault: push instruction-start PC (else next PC)
}

// raise throws an exception out of microroutine code.
func raise(vector uint16, restart bool, params ...uint32) {
	panic(&trap{vector: vector, params: params, restart: restart})
}

// Step executes one instruction (possibly preceded by an interrupt
// dispatch). It returns a MachineCheck error for unrecoverable faults.
func (m *Machine) Step() (err error) {
	if m.halted {
		return &MachineCheck{PC: m.CPU.R[vax.PC], Reason: "step after halt"}
	}
	m.pollTimer()
	if m.takeInterrupt() {
		return nil
	}

	m.instrPC = m.CPU.R[vax.PC]
	m.savedCC = m.CPU.PSL & (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	m.undoLog = m.undoLog[:0]
	traceBit := m.CPU.PSL&vax.PSLT != 0

	defer func() {
		if r := recover(); r != nil {
			t, ok := r.(*trap)
			if !ok {
				panic(r)
			}
			err = m.deliver(t)
		}
	}()

	opc := m.fetchByte()
	routine := m.Microstore.Lookup(opc)
	if routine == nil {
		raise(vax.VecReserved, true)
	}
	if routine.Priv && m.userMode() {
		raise(vax.VecReserved, true)
	}
	m.Cycles += uint64(routine.Cost)
	routine.Exec(m)
	m.Instrs++

	if traceBit && !m.halted {
		// T-bit trace trap after the instruction completes.
		return m.deliver(&trap{vector: vax.VecTraceTrap})
	}
	return nil
}

// deliver performs the exception microroutine for t. Faulting inside
// delivery is a machine check.
func (m *Machine) deliver(t *trap) error {
	if m.inExcept {
		m.halted = true
		return &MachineCheck{PC: m.instrPC, Reason: "exception during exception dispatch (vector " + fmt.Sprintf("%#x", t.vector) + ")"}
	}
	m.inExcept = true
	defer func() { m.inExcept = false }()

	// Restore pre-instruction state for restartable faults.
	pushPC := m.CPU.R[vax.PC]
	if t.restart {
		for i := len(m.undoLog) - 1; i >= 0; i-- {
			d := m.undoLog[i]
			m.CPU.R[d.reg] = d.old
		}
		m.CPU.PSL = m.CPU.PSL&^(vax.PSLN|vax.PSLZ|vax.PSLV|vax.PSLC) | m.savedCC
		pushPC = m.instrPC
	}

	oldPSL := m.CPU.PSL

	// Read the handler address from the SCB (physical).
	handler, err := m.Mem.Load32(m.SCBB + uint32(t.vector))
	if err != nil || handler == 0 {
		m.halted = true
		return &MachineCheck{PC: m.instrPC, Reason: fmt.Sprintf("no SCB handler for vector %#x", t.vector)}
	}

	// Switch to kernel mode.
	m.setMode(vax.ModeKernel)
	m.CPU.PSL = m.CPU.PSL&^(vax.PSLPrvModMask|vax.PSLT) |
		(uint32(vax.CurMode(oldPSL)) << vax.PSLPrvModShift)

	// Push PSL, PC, then parameters (params end up lowest, at (SP)).
	ok := func() (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, isTrap := r.(*trap); isTrap {
					ok = false
					return
				}
				panic(r)
			}
		}()
		m.push(oldPSL)
		m.push(pushPC)
		for i := len(t.params) - 1; i >= 0; i-- {
			m.push(t.params[i])
		}
		return true
	}()
	if !ok {
		m.halted = true
		return &MachineCheck{PC: m.instrPC, Reason: "kernel stack not valid"}
	}

	m.CPU.R[vax.PC] = handler
	m.ibufValid = false
	m.Cycles += uint64(m.Costs.Exception)
	m.fire(Access{Ev: EvException, VA: pushPC, Mode: m.mode(), PID: m.CurPID, Extra: t.vector})
	return nil
}

// setMode banks the stack pointer and changes the current mode field.
func (m *Machine) setMode(newMode int) {
	cur := vax.CurMode(m.CPU.PSL)
	if cur == newMode {
		return
	}
	switch cur {
	case vax.ModeKernel:
		m.CPU.KSP = m.CPU.R[vax.SP]
	case vax.ModeUser:
		m.CPU.USP = m.CPU.R[vax.SP]
	}
	switch newMode {
	case vax.ModeKernel:
		m.CPU.R[vax.SP] = m.CPU.KSP
	case vax.ModeUser:
		m.CPU.R[vax.SP] = m.CPU.USP
	}
	m.CPU.PSL = m.CPU.PSL&^vax.PSLCurModMask | uint32(newMode)<<vax.PSLCurModShift
}

// pollTimer latches a pending interval-timer interrupt when due.
func (m *Machine) pollTimer() {
	if m.ICCS&(1<<6) == 0 || m.ICR == 0 {
		return
	}
	if m.nextTick == 0 {
		m.nextTick = m.Cycles + uint64(m.ICR)
	}
	if m.Cycles >= m.nextTick {
		m.pendingTimer = true
		m.nextTick += uint64(m.ICR)
		if m.nextTick <= m.Cycles {
			m.nextTick = m.Cycles + uint64(m.ICR)
		}
	}
}

// takeInterrupt dispatches the highest-priority pending interrupt above
// the current IPL. Returns true if one was dispatched.
func (m *Machine) takeInterrupt() bool {
	cur := vax.IPL(m.CPU.PSL)
	if m.pendingTimer && vax.IPLTimer > cur {
		m.pendingTimer = false
		m.dispatchInterrupt(vax.VecIntervalTimer, vax.IPLTimer)
		return true
	}
	if m.SISR != 0 {
		// Highest set software level.
		for lvl := 15; lvl >= 1; lvl-- {
			if m.SISR&(1<<lvl) != 0 {
				if lvl <= cur {
					return false
				}
				m.SISR &^= 1 << lvl
				m.dispatchInterrupt(uint16(0x80+4*lvl), lvl)
				return true
			}
		}
	}
	return false
}

func (m *Machine) dispatchInterrupt(vector uint16, ipl int) {
	err := m.deliver(&trap{vector: vector})
	if err == nil {
		m.CPU.PSL = m.CPU.PSL&^vax.PSLIPLMask | uint32(ipl)<<vax.PSLIPLShift
	}
}

// Run executes instructions until HALT, the instruction budget is
// exhausted, or a hook requests a stop.
func (m *Machine) Run(maxInstrs uint64) (StopReason, error) {
	start := m.Instrs
	for {
		if m.halted {
			return StopHalt, nil
		}
		if m.stopRequest {
			m.stopRequest = false
			return StopRequested, nil
		}
		if maxInstrs > 0 && m.Instrs-start >= maxInstrs {
			return StopInstrLimit, nil
		}
		if err := m.Step(); err != nil {
			return StopHalt, err
		}
	}
}
