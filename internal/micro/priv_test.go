package micro

import (
	"strings"
	"testing"

	"atum/internal/mmu"
	"atum/internal/vax"
)

// TestContextSwitchRoundTrip exercises LDPCTX/SVPCTX/REI without the
// kernel package: two hand-built PCBs, a syscall handler that switches
// between them, mapping off (identity addressing).
func TestContextSwitchRoundTrip(t *testing.T) {
	src := `
	.org	0x1000
	; kernel-ish: start process A, on CHMK save it and start B.
boot:	mtpr	#pcba, #16
	ldpctx
	rei
h_chmk:	movl	(sp)+, r0	; discard code
	svpctx
	mtpr	#pcbb, #16
	ldpctx
	rei

proca:	movl	#0xaaaa, r6
	chmk	#1
	halt			; A never resumes in this test
procb:	movl	#0xbbbb, r7
	halt

	.align	4
pcba:	.space	23*4
pcbb:	.space	23*4
`
	prog, err := vax.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.LoadBytes(prog.Origin, prog.Bytes); err != nil {
		t.Fatal(err)
	}
	setupSCB(t, m, map[uint16]uint32{vax.VecCHMK: prog.MustSymbol("h_chmk")})

	// Build the PCBs: both run in kernel mode (mapping is off) with
	// their own stacks and entry points.
	fill := func(pcb, entry, ksp uint32, pid uint32) {
		base := pcb
		m.Mem.Store32(base+4*PCBKSP, ksp)
		m.Mem.Store32(base+4*PCBUSP, ksp-0x400)
		m.Mem.Store32(base+4*PCBPC, entry)
		m.Mem.Store32(base+4*PCBPSL, 0) // kernel, IPL 0
		m.Mem.Store32(base+4*PCBPID, pid)
	}
	fill(prog.MustSymbol("pcba"), prog.MustSymbol("proca"), 0xE000, 7)
	fill(prog.MustSymbol("pcbb"), prog.MustSymbol("procb"), 0xD000, 8)

	var switches []uint16
	m.AddHook(EvCtxSwitch, func(_ *Machine, a Access) { switches = append(switches, a.Extra) })

	m.CPU.R[vax.PC] = prog.MustSymbol("boot")
	m.CPU.R[vax.SP] = 0xF000
	run(t, m)

	if m.CPU.R[7] != 0xBBBB {
		t.Errorf("process B never ran: r7=%#x", m.CPU.R[7])
	}
	if len(switches) != 2 || switches[0] != 7 || switches[1] != 8 {
		t.Errorf("switch markers = %v, want [7 8]", switches)
	}
	if m.CurPID != 8 {
		t.Errorf("CurPID = %d, want 8", m.CurPID)
	}
	// SVPCTX stored A's state: r6 and the resume PC must be in pcba.
	r6, _ := m.Mem.Load32(prog.MustSymbol("pcba") + 4*(PCBR0+6))
	if r6 != 0xAAAA {
		t.Errorf("saved r6 = %#x, want 0xaaaa", r6)
	}
}

// TestPageFaultPath drives a real TNV through the MMU with a handler
// that records the faulting address (covering raiseFault/translate),
// booting with mapping already enabled the way the kernel builder does.
func TestPageFaultPath(t *testing.T) {
	prog, err := vax.Assemble(`
	.org	0x80001000
start:	movl	@#0x80010000, r0 ; unmapped system page -> TNV
	halt
h_tnv:	movl	(sp)+, r8	; info
	movl	(sp)+, r9	; faulting va
	halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Image at physical 0x1000 = S0 va 0x80001000 under the identity map.
	if err := m.Mem.LoadBytes(0x1000, prog.Bytes); err != nil {
		t.Fatal(err)
	}
	setupSCB(t, m, map[uint16]uint32{vax.VecTranslationNotValid: prog.MustSymbol("h_tnv")})

	// System page table: identity-map the first 128 S0 pages (code,
	// stack, SCB); pages 128..255 invalid; SLR covers the faulting page
	// so the walk reaches an invalid PTE rather than a length violation.
	const spt = 0x20000
	for n := uint32(0); n < 128; n++ {
		m.Mem.Store32(spt+4*n, mmu.MakePTE(n, mmu.ProtKW))
	}
	m.MMU.SBR = spt
	m.MMU.SLR = 256
	m.MMU.MapEn = true

	m.CPU.R[vax.PC] = prog.MustSymbol("start")
	m.CPU.R[vax.SP] = 0x80000000 + 0xF000
	m.CPU.KSP = m.CPU.R[vax.SP]

	run(t, m)
	if m.CPU.R[9] != 0x80010000 {
		t.Errorf("faulting va = %#x, want 0x80010000", m.CPU.R[9])
	}
	if m.MMU.Stats.Faults == 0 {
		t.Error("no MMU fault recorded")
	}
}

func TestRequestStopAndHalted(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	incl	r0
	brb	start
`)
	m.AddHook(EvIFetch, func(mm *Machine, _ Access) {
		if mm.Instrs > 10 {
			mm.RequestStop()
		}
	})
	reason, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopRequested {
		t.Errorf("reason = %v, want StopRequested", reason)
	}
	if m.Halted() {
		t.Error("machine halted unexpectedly")
	}
	if StopHalt.String() != "halt" || StopRequested.String() != "stop requested" {
		t.Error("StopReason strings")
	}
	for ev := Event(0); ev < NumEvents; ev++ {
		if ev.String() == "" || strings.HasPrefix(ev.String(), "Event(") {
			t.Errorf("event %d lacks a name", ev)
		}
	}
}

func TestMicrostoreReplace(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	nop
	halt
`)
	old := m.Microstore.Replace(vax.OpNOP, &Microroutine{
		Name: "nop-counted",
		Cost: 1,
		Exec: func(mm *Machine) { mm.CPU.R[11] = 0x1234 },
	})
	if old.Name != "nop" {
		t.Errorf("replaced entry = %q", old.Name)
	}
	run(t, m)
	if m.CPU.R[11] != 0x1234 {
		t.Error("replacement microroutine did not run")
	}
	m.Microstore.Replace(vax.OpNOP, old)
}

func TestDebugWrite(t *testing.T) {
	m := load(t, "\t.org 0x1000\nstart: halt\n")
	if err := m.DebugWrite(0x2000, 4, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := m.DebugRead(0x2000, 4)
	if err != nil || v != 0xCAFEBABE {
		t.Errorf("debug rw: %#x %v", v, err)
	}
}

func TestMFPRReadbacks(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	mtpr	#31, #18	; raise IPL: block the software interrupt below
	mtpr	#0x3000, #8	; P0BR
	mfpr	#8, r0
	mtpr	#64, #9		; P0LR
	mfpr	#9, r1
	mtpr	#0x4000, #12	; SBR
	mfpr	#12, r2
	mtpr	#0x500, #17	; SCBB
	mfpr	#17, r3
	mtpr	#0x600, #16	; PCBB
	mfpr	#16, r4
	mtpr	#5, #20		; SIRR -> SISR bit 5 (pending, blocked)
	mfpr	#21, r5
	mtpr	#0, #21		; clear it again so nothing fires later
	mtpr	#1234, #26	; ICR
	mfpr	#26, r6
	mfpr	#56, r7		; MAPEN (off)
	mtpr	#10, #18	; IPL
	mfpr	#18, r8
	mtpr	#31, #18
	halt
`)
	want := map[int]uint32{0: 0x3000, 1: 64, 2: 0x4000, 3: 0x500, 4: 0x600,
		5: 1 << 5, 6: 1234, 7: 0, 8: 10}
	for r, v := range want {
		if m.CPU.R[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, m.CPU.R[r], v)
		}
	}
}

func TestMachineCheckOnDoubleFault(t *testing.T) {
	// An SCB full of zeros: the first fault cannot dispatch -> machine
	// check, not an infinite loop.
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.Mem.Store8(0x1000, 0xFF) // reserved opcode
	m.SCBB = 0x400             // SCB entries are all zero
	m.CPU.R[vax.PC] = 0x1000
	m.CPU.R[vax.SP] = 0xF000
	_, err = m.Run(10)
	if err == nil {
		t.Fatal("expected machine check")
	}
	if !strings.Contains(err.Error(), "machine check") {
		t.Errorf("error = %v", err)
	}
	if !m.Halted() {
		t.Error("machine not halted after check")
	}
}
