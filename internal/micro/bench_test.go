package micro

import (
	"testing"

	"atum/internal/vax"
)

// benchLoop is a register/memory workout: ~10 instructions per
// iteration of the inner loop, mixing ALU, loads and stores.
const benchLoop = `
	.org 0x1000
start:	movl	#1000, r6
outer:	moval	buf, r1
	movl	#16, r2
inner:	movl	(r1), r3
	addl2	r6, r3
	movl	r3, (r1)+
	sobgtr	r2, inner
	sobgtr	r6, outer
	halt
	.align	4
buf:	.space	64
`

func benchMachine(b *testing.B) *Machine {
	b.Helper()
	prog, err := vax.Assemble(benchLoop)
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Mem.LoadBytes(prog.Origin, prog.Bytes); err != nil {
		b.Fatal(err)
	}
	m.CPU.R[vax.PC] = prog.MustSymbol("start")
	m.CPU.R[vax.SP] = 0xF000
	return m
}

// BenchmarkInterpreter measures raw simulation speed in simulated
// instructions per second (reported as instrs/op for one full program).
func BenchmarkInterpreter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMachine(b)
		b.StartTimer()
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Instrs), "instrs/op")
	}
}

// BenchmarkInterpreterWithHooks measures the hook-dispatch overhead with
// a counting hook on every event class.
func BenchmarkInterpreterWithHooks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := benchMachine(b)
		var n uint64
		for ev := Event(0); ev < NumEvents; ev++ {
			m.AddHook(ev, func(_ *Machine, _ Access) { n++ })
		}
		b.StartTimer()
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n), "events/op")
	}
}

// BenchmarkStepOverhead isolates the per-instruction dispatch cost.
func BenchmarkStepOverhead(b *testing.B) {
	prog, err := vax.Assemble("\t.org 0x1000\nstart:\tbrb start\n")
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Mem.LoadBytes(prog.Origin, prog.Bytes); err != nil {
		b.Fatal(err)
	}
	m.CPU.R[vax.PC] = prog.Origin
	m.CPU.R[vax.SP] = 0xF000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
