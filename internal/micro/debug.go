package micro

import (
	"fmt"

	"atum/internal/vax"
)

// DebugRead reads width bytes at virtual address va without firing
// events, charging cycles, or perturbing the TB — for tests, loaders and
// tooling. The access is performed with kernel privileges.
func (m *Machine) DebugRead(va uint32, width uint8) (uint32, error) {
	var v uint32
	for i := uint32(0); i < uint32(width); i++ {
		pa, fault := m.MMU.Probe(va+i, false, false)
		if fault != nil {
			return 0, fault
		}
		b, err := m.Mem.Load8(pa)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// DebugWrite writes width bytes at virtual address va without firing
// events (kernel privileges).
func (m *Machine) DebugWrite(va uint32, width uint8, v uint32) error {
	for i := uint32(0); i < uint32(width); i++ {
		pa, fault := m.MMU.Probe(va+i, false, true)
		if fault != nil {
			return fault
		}
		if err := m.Mem.Store8(pa, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// State renders a one-line register dump for diagnostics.
func (m *Machine) State() string {
	c := &m.CPU
	return fmt.Sprintf(
		"pc=%08x sp=%08x fp=%08x ap=%08x psl=%08x mode=%d pid=%d cyc=%d instr=%d\n"+
			"r0=%08x r1=%08x r2=%08x r3=%08x r4=%08x r5=%08x",
		c.R[vax.PC], c.R[vax.SP], c.R[vax.FP], c.R[vax.AP], c.PSL,
		vax.CurMode(c.PSL), m.CurPID, m.Cycles, m.Instrs,
		c.R[0], c.R[1], c.R[2], c.R[3], c.R[4], c.R[5])
}
