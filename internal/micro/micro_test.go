package micro

import (
	"strings"
	"testing"

	"atum/internal/vax"
)

// testConfig is a small machine for unit tests: 1 MB, mapping off.
func testConfig() Config {
	return Config{MemSize: 1 << 20, ReservedSize: 0, TBEntries: 64, Costs: DefaultCosts()}
}

// load assembles src and loads it into a fresh machine at its origin,
// with PC at the "start" symbol (or the origin) and SP in free memory.
func load(t *testing.T, src string) *Machine {
	t.Helper()
	prog, err := vax.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.LoadBytes(prog.Origin, prog.Bytes); err != nil {
		t.Fatal(err)
	}
	entry := prog.Origin
	if s, ok := prog.Symbol("start"); ok {
		entry = s
	}
	m.CPU.R[vax.PC] = entry
	m.CPU.R[vax.SP] = 0xF000
	return m
}

// run executes until HALT, failing the test on machine checks or budget
// exhaustion.
func run(t *testing.T, m *Machine) {
	t.Helper()
	reason, err := m.Run(1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m.State())
	}
	if reason != StopHalt {
		t.Fatalf("run stopped: %v\n%s", reason, m.State())
	}
}

// runSrc is the common assemble+load+run helper.
func runSrc(t *testing.T, src string) *Machine {
	t.Helper()
	m := load(t, src)
	run(t, m)
	return m
}

func TestMovAndArithmetic(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#100, r0
	addl3	r0, #23, r1	; r1 = 123
	subl3	#23, r1, r2	; r2 = 100
	mull3	r2, #3, r3	; r3 = 300
	divl3	#4, r3, r4	; r4 = 75
	mnegl	r4, r5		; r5 = -75
	mcoml	#0, r6		; r6 = 0xFFFFFFFF
	halt
`)
	neg75 := ^uint32(75) + 1
	want := map[int]uint32{0: 100, 1: 123, 2: 100, 3: 300, 4: 75, 5: neg75, 6: 0xFFFFFFFF}
	for r, v := range want {
		if m.CPU.R[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, m.CPU.R[r], v)
		}
	}
}

func TestConditionCodes(t *testing.T) {
	// Carry from unsigned overflow.
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0xffffffff, r0
	addl2	#1, r0
	movpsl	r1
	movl	#0x7fffffff, r2
	addl2	#1, r2		; signed overflow
	movpsl	r3
	cmpl	#3, #5
	movpsl	r4
	halt
`)
	if m.CPU.R[1]&(vax.PSLC|vax.PSLZ) != vax.PSLC|vax.PSLZ {
		t.Errorf("add carry/zero psl = %#x", m.CPU.R[1])
	}
	if m.CPU.R[3]&vax.PSLV == 0 || m.CPU.R[3]&vax.PSLN == 0 {
		t.Errorf("signed overflow psl = %#x", m.CPU.R[3])
	}
	// 3 < 5: N (signed less) and C (unsigned less).
	if m.CPU.R[4]&vax.PSLN == 0 || m.CPU.R[4]&vax.PSLC == 0 {
		t.Errorf("cmp psl = %#x", m.CPU.R[4])
	}
}

func TestAddressingModes(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	moval	data, r1
	movl	(r1), r2	; 11
	movl	4(r1), r3	; 22
	moval	data, r4
	movl	(r4)+, r5	; 11, r4 advances
	movl	(r4)+, r6	; 22
	moval	data+16, r7
	movl	-(r7), r8	; 44 (data+12)
	movl	#2, r9
	movl	data[r9], r10	; 33
	moval	ptr, r11
	movl	@(r11)+, r0	; *ptr = data -> 11
	halt
data:	.long	11, 22, 33, 44
ptr:	.long	data
`)
	checks := map[int]uint32{2: 11, 3: 22, 5: 11, 6: 22, 8: 44, 10: 33, 0: 11}
	for r, v := range checks {
		if m.CPU.R[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.CPU.R[r], v)
		}
	}
}

func TestDeferredDisplacement(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	moval	cell, r1
	movl	@0(r1), r2	; *(cell) -> value at data = 77
	halt
cell:	.long	data
data:	.long	77
`)
	if m.CPU.R[2] != 77 {
		t.Errorf("r2 = %d, want 77", m.CPU.R[2])
	}
}

func TestByteWordOps(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movb	#0xff, r0	; r0 low byte only
	movzbl	#0xff, r1	; 255
	cvtbl	#0xff, r2	; wait: literal 0xff won't fit short literal; immediate byte -1 -> sign extends
	movw	#0x8000, r3
	movzwl	r3, r4		; 0x8000
	cvtwl	r3, r5		; 0xffff8000
	cvtlb	#0x1ff, r6	; truncates to 0xff, V set
	movpsl	r7
	halt
`)
	if m.CPU.R[1] != 255 {
		t.Errorf("movzbl = %#x", m.CPU.R[1])
	}
	if m.CPU.R[2] != 0xFFFFFFFF {
		t.Errorf("cvtbl = %#x, want 0xffffffff", m.CPU.R[2])
	}
	if m.CPU.R[4] != 0x8000 {
		t.Errorf("movzwl = %#x", m.CPU.R[4])
	}
	if m.CPU.R[5] != 0xFFFF8000 {
		t.Errorf("cvtwl = %#x", m.CPU.R[5])
	}
	if m.CPU.R[6]&0xFF != 0xFF {
		t.Errorf("cvtlb = %#x", m.CPU.R[6])
	}
	if m.CPU.R[7]&vax.PSLV == 0 {
		t.Errorf("cvtlb overflow not flagged: psl=%#x", m.CPU.R[7])
	}
}

func TestLoopsAndBranches(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	clrl	r0
	movl	#10, r1
loop:	addl2	r1, r0
	sobgtr	r1, loop	; r0 = 10+9+...+1 = 55
	clrl	r2
	clrl	r3
lp2:	addl2	#1, r2
	aoblss	#5, r3, lp2	; r3 counts to 5
	halt
`)
	if m.CPU.R[0] != 55 {
		t.Errorf("sum = %d, want 55", m.CPU.R[0])
	}
	if m.CPU.R[3] != 5 || m.CPU.R[2] != 5 {
		t.Errorf("aoblss: r2=%d r3=%d, want 5,5", m.CPU.R[2], m.CPU.R[3])
	}
}

func TestUnsignedBranches(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	clrl	r0
	cmpl	#0xf0000000, #1	; unsigned: greater; signed: less
	bgtru	u_ok
	halt
u_ok:	incl	r0
	cmpl	#0xf0000000, #1
	blss	s_ok		; signed less
	halt
s_ok:	incl	r0
	halt
`)
	if m.CPU.R[0] != 2 {
		t.Errorf("branch path r0 = %d, want 2", m.CPU.R[0])
	}
}

func TestSubroutines(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#5, r0
	bsbw	double
	bsbw	double		; r0 = 20
	jsb	addone		; r0 = 21
	halt
double:	addl2	r0, r0
	rsb
addone:	incl	r0
	rsb
`)
	if m.CPU.R[0] != 21 {
		t.Errorf("r0 = %d, want 21", m.CPU.R[0])
	}
}

func TestCallsRet(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#111, r2	; should survive the call (in entry mask)
	movl	#7, r6		; caller's r6 also in mask
	pushl	#30
	pushl	#12
	calls	#2, sum2
	halt

; sum2(a, b) returns a+b in r0; uses r2, r6 internally.
sum2:	.word	0x44	; entry mask: save r2, r6
	movl	4(ap), r2	; first arg
	movl	8(ap), r6	; second arg
	addl3	r2, r6, r0
	ret
`)
	if m.CPU.R[0] != 42 {
		t.Errorf("sum2 = %d, want 42", m.CPU.R[0])
	}
	if m.CPU.R[2] != 111 || m.CPU.R[6] != 7 {
		t.Errorf("saved registers clobbered: r2=%d r6=%d", m.CPU.R[2], m.CPU.R[6])
	}
	if m.CPU.R[vax.SP] != 0xF000 {
		t.Errorf("stack not balanced: sp=%#x want 0xf000", m.CPU.R[vax.SP])
	}
}

func TestPushrPopr(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#1, r1
	movl	#2, r2
	movl	#3, r3
	pushr	#0x0e		; push r1,r2,r3
	clrl	r1
	clrl	r2
	clrl	r3
	popr	#0x0e
	halt
`)
	if m.CPU.R[1] != 1 || m.CPU.R[2] != 2 || m.CPU.R[3] != 3 {
		t.Errorf("popr restored r1=%d r2=%d r3=%d", m.CPU.R[1], m.CPU.R[2], m.CPU.R[3])
	}
	if m.CPU.R[vax.SP] != 0xF000 {
		t.Errorf("sp = %#x, want 0xf000", m.CPU.R[vax.SP])
	}
}

func TestMOVC3(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movc3	#13, src, dst
	halt
src:	.ascii	"hello, world!"
dst:	.space	16
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	movc3	#13, src, dst
	halt
src:	.ascii	"hello, world!"
dst:	.space	16
`)
	dst := prog.MustSymbol("dst")
	var got []byte
	for i := uint32(0); i < 13; i++ {
		b, err := m.DebugRead(dst+i, 1)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, byte(b))
	}
	if string(got) != "hello, world!" {
		t.Errorf("movc3 copied %q", got)
	}
	if m.CPU.R[0] != 0 {
		t.Errorf("r0 = %d after movc3, want 0", m.CPU.R[0])
	}
	if m.CPU.PSL&vax.PSLZ == 0 {
		t.Error("Z not set after movc3")
	}
}

func TestCasel(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#2, r0
	casel	r0, #0, #3
table:	.word	c0-table
	.word	c1-table
	.word	c2-table
	.word	c3-table
	halt			; out of range falls through here
c0:	movl	#100, r1
	halt
c1:	movl	#101, r1
	halt
c2:	movl	#102, r1
	halt
c3:	movl	#103, r1
	halt
`)
	if m.CPU.R[1] != 102 {
		t.Errorf("casel selected %d, want 102", m.CPU.R[1])
	}
}

func TestBitBranches(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	clrl	r0
	movl	#0x10, r1
	bbs	#4, r1, ok1
	halt
ok1:	incl	r0
	bbc	#3, r1, ok2
	halt
ok2:	incl	r0
	movl	#1, r2
	blbs	r2, ok3
	halt
ok3:	incl	r0
	moval	flags, r3
	bbs	#9, (r3), ok4	; bit 9 of memory field = byte 1 bit 1
	halt
ok4:	incl	r0
	halt
flags:	.byte	0, 2
`)
	if m.CPU.R[0] != 4 {
		t.Errorf("bit branch path r0 = %d, want 4", m.CPU.R[0])
	}
}

func TestAshl(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	ashl	#4, #1, r0	; 16
	ashl	#-2, #64, r1	; 16
	movl	#-64, r2
	ashl	#-3, r2, r3	; -8
	halt
`)
	if m.CPU.R[0] != 16 || m.CPU.R[1] != 16 {
		t.Errorf("ashl: r0=%d r1=%d", m.CPU.R[0], m.CPU.R[1])
	}
	if int32(m.CPU.R[3]) != -8 {
		t.Errorf("arithmetic right shift = %d, want -8", int32(m.CPU.R[3]))
	}
}

func TestLogicalOps(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	movl	#0x0f0f, r0
	bisl2	#0xf000, r0	; 0xff0f
	bicl2	#0x000f, r0	; 0xff00
	xorl3	#0x0ff0, r0, r1	; 0xf0f0
	halt
`)
	if m.CPU.R[0] != 0xFF00 {
		t.Errorf("r0 = %#x, want 0xff00", m.CPU.R[0])
	}
	if m.CPU.R[1] != 0xF0F0 {
		t.Errorf("r1 = %#x, want 0xf0f0", m.CPU.R[1])
	}
}

func TestEmulEdiv(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	emul	#1000, #1000, #5, r0	; 1000005
	ediv	#7, #100, r1, r2	; q=14 r=2
	halt
`)
	if m.CPU.R[0] != 1000005 {
		t.Errorf("emul = %d", m.CPU.R[0])
	}
	if m.CPU.R[1] != 14 || m.CPU.R[2] != 2 {
		t.Errorf("ediv q=%d r=%d, want 14,2", m.CPU.R[1], m.CPU.R[2])
	}
}

// setupSCB installs a minimal SCB whose vectors all point at HALT, except
// any the caller overrides. Returns the SCB physical base.
func setupSCB(t *testing.T, m *Machine, overrides map[uint16]uint32) uint32 {
	t.Helper()
	const scb = 0x400
	haltAddr := uint32(0x500)
	if err := m.Mem.Store8(haltAddr, vax.OpHALT); err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 0x100; v += 4 {
		if err := m.Mem.Store32(scb+v, haltAddr); err != nil {
			t.Fatal(err)
		}
	}
	for v, h := range overrides {
		if err := m.Mem.Store32(scb+uint32(v), h); err != nil {
			t.Fatal(err)
		}
	}
	m.SCBB = scb
	return scb
}

func TestCHMKDispatchAndREI(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	chmk	#42
	movl	#1, r5		; resumed here after rei
	halt

; kernel handler: r4 = syscall code from stack, pop it, rei
handler: movl	(sp)+, r4
	rei
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	chmk	#42
	movl	#1, r5
	halt
handler: movl	(sp)+, r4
	rei
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecCHMK: prog.MustSymbol("handler")})
	run(t, m)
	if m.CPU.R[4] != 42 {
		t.Errorf("syscall code = %d, want 42", m.CPU.R[4])
	}
	if m.CPU.R[5] != 1 {
		t.Errorf("did not resume after rei: r5=%d", m.CPU.R[5])
	}
}

func TestReservedOpcodeFaults(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 0xFF is unimplemented.
	if err := m.Mem.Store8(0x1000, 0xFF); err != nil {
		t.Fatal(err)
	}
	setupSCB(t, m, nil)
	m.CPU.R[vax.PC] = 0x1000
	m.CPU.R[vax.SP] = 0xF000
	reason, err := m.Run(100)
	if err != nil || reason != StopHalt {
		t.Fatalf("reason=%v err=%v", reason, err)
	}
	// The SCB handler (halt) ran; the pushed PC should be the faulting
	// instruction (restartable fault).
	pushed, _ := m.DebugRead(m.CPU.R[vax.SP], 4)
	if pushed != 0x1000 {
		t.Errorf("pushed PC = %#x, want 0x1000", pushed)
	}
}

func TestArithmeticTrapDivZero(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	divl3	#0, #10, r0
	movl	#9, r9		; resumes here if handler returns
	halt
handler: movl	(sp)+, r8	; trap code
	rei
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	divl3	#0, #10, r0
	movl	#9, r9
	halt
handler: movl	(sp)+, r8
	rei
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecArithmetic: prog.MustSymbol("handler")})
	run(t, m)
	if m.CPU.R[8] != 1 {
		t.Errorf("trap code = %d, want 1", m.CPU.R[8])
	}
	if m.CPU.R[9] != 9 {
		t.Error("did not resume after divide-by-zero trap")
	}
}

func TestMicrostorePatchWrap(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	incl	r0
	incl	r0
	halt
`)
	count := 0
	restore, err := m.Microstore.Wrap(vax.OpINCL, "incl-patched", 5, func(mm *Machine, old *Microroutine) {
		count++
		old.Exec(mm)
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, m)
	if count != 2 {
		t.Errorf("wrapped microroutine ran %d times, want 2", count)
	}
	if m.CPU.R[0] != 2 {
		t.Errorf("semantics broken by wrap: r0=%d", m.CPU.R[0])
	}
	restore()
	if m.Microstore.Lookup(vax.OpINCL).Name != "incl" {
		t.Error("restore did not reinstall stock microroutine")
	}
	if _, err := m.Microstore.Wrap(0xFF, "x", 0, nil); err == nil {
		t.Error("wrapping reserved opcode should fail")
	}
}

func TestHooksSeeReferences(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	movl	val, r0		; one data read
	movl	r0, val		; one data write
	halt
val:	.long	7
`)
	var reads, writes, fetches int
	m.AddHook(EvDRead, func(_ *Machine, a Access) { reads++ })
	m.AddHook(EvDWrite, func(_ *Machine, a Access) { writes++ })
	m.AddHook(EvIFetch, func(_ *Machine, a Access) {
		fetches++
		if a.VA%4 != 0 {
			t.Errorf("ifetch not longword aligned: %#x", a.VA)
		}
	})
	run(t, m)
	if reads != 1 || writes != 1 {
		t.Errorf("reads=%d writes=%d, want 1,1", reads, writes)
	}
	if fetches == 0 {
		t.Error("no ifetch events")
	}
}

func TestHookRemoveAndCycleCharging(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	incl	r0
	halt
`)
	remove := m.AddHook(EvIFetch, func(mm *Machine, a Access) { mm.ChargeCycles(100) })
	m.Step() // incl (1 ifetch refill at least)
	base := m.Cycles
	if base < 100 {
		t.Fatalf("hook cycles not charged: %d", base)
	}
	remove()
	remove() // idempotent
	m.Step()
	if m.Cycles-base >= 100 {
		t.Error("removed hook still charging")
	}
}

func TestIntervalTimerInterrupt(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	mtpr	#200, #26	; ICR: tick every 200 cycles
	mtpr	#0x40, #24	; ICCS: run
loop:	incl	r0
	brb	loop
tick:	movl	#1, r11
	mtpr	#0, #24		; stop clock
	halt
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	mtpr	#200, #26
	mtpr	#0x40, #24
loop:	incl	r0
	brb	loop
tick:	movl	#1, r11
	mtpr	#0, #24
	halt
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecIntervalTimer: prog.MustSymbol("tick")})
	run(t, m)
	if m.CPU.R[11] != 1 {
		t.Error("timer interrupt never delivered")
	}
	if m.CPU.R[0] == 0 {
		t.Error("loop body never ran before interrupt")
	}
	if ipl := vax.IPL(m.CPU.PSL); ipl != vax.IPLTimer {
		t.Errorf("IPL in handler = %d, want %d", ipl, vax.IPLTimer)
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	mtpr	#3, #20		; SIRR level 3
	incl	r1		; runs before the interrupt? no: interrupt
				; is taken at the next instruction boundary
	halt
soft:	movl	#1, r10
	halt
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	mtpr	#3, #20
	incl	r1
	halt
soft:	movl	#1, r10
	halt
`)
	setupSCB(t, m, map[uint16]uint32{uint16(0x80 + 4*3): prog.MustSymbol("soft")})
	run(t, m)
	if m.CPU.R[10] != 1 {
		t.Error("software interrupt not delivered")
	}
}

func TestTraceTrapTbit(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	incl	r0
	incl	r0
	incl	r0
	halt
trace:	incl	r9
	rei
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	incl	r0
	incl	r0
	incl	r0
	halt
trace:	incl	r9
	rei
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecTraceTrap: prog.MustSymbol("trace")})
	m.CPU.PSL |= vax.PSLT
	run(t, m)
	if m.CPU.R[0] != 3 {
		t.Errorf("r0 = %d, want 3", m.CPU.R[0])
	}
	// One trace trap per traced instruction (the handler itself runs with
	// T clear; REI restores T).
	if m.CPU.R[9] != 3 {
		t.Errorf("trace traps = %d, want 3", m.CPU.R[9])
	}
}

func TestUserModeProtection(t *testing.T) {
	// Enter user mode via REI, then attempt a privileged instruction.
	m := load(t, `
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3		; set USP
	pushl	#0x03000000	; PSL: user mode
	pushl	#user		; PC
	rei
user:	incl	r1
	mtpr	#0, #57		; TBIA: privileged -> fault
	incl	r2		; must not run
	halt
resfault: movl	#1, r10
	halt
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3
	pushl	#0x03000000
	pushl	#user
	rei
user:	incl	r1
	mtpr	#0, #57
	incl	r2
	halt
resfault: movl	#1, r10
	halt
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecReserved: prog.MustSymbol("resfault")})
	run(t, m)
	if m.CPU.R[1] != 1 {
		t.Error("user code did not run")
	}
	if m.CPU.R[10] != 1 {
		t.Error("privileged instruction fault not taken")
	}
	if m.CPU.R[2] != 0 {
		t.Error("instruction after fault executed")
	}
	// After the fault we are back in kernel mode on the kernel stack.
	if vax.CurMode(m.CPU.PSL) != vax.ModeKernel {
		t.Error("not in kernel mode after fault")
	}
}

func TestHaltInUserModeFaults(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3
	pushl	#0x03000000
	pushl	#user
	rei
user:	halt			; privileged in user mode
resfault: movl	#7, r7
	halt
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3
	pushl	#0x03000000
	pushl	#user
	rei
user:	halt
resfault: movl	#7, r7
	halt
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecReserved: prog.MustSymbol("resfault")})
	run(t, m)
	if m.CPU.R[7] != 7 {
		t.Error("user-mode HALT did not fault")
	}
}

func TestREIToMorePrivilegedFaults(t *testing.T) {
	m := load(t, `
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3
	pushl	#0x03000000	; to user mode
	pushl	#user
	rei
user:	pushl	#0		; forged kernel PSL
	pushl	#0x2000		; PC
	rei			; must fault
	halt
resfault: movl	#3, r3
	halt
`)
	prog, _ := vax.Assemble(`
	.org 0x1000
start:	movl	#0xe000, r0
	mtpr	r0, #3
	pushl	#0x03000000
	pushl	#user
	rei
user:	pushl	#0
	pushl	#0x2000
	rei
	halt
resfault: movl	#3, r3
	halt
`)
	setupSCB(t, m, map[uint16]uint32{vax.VecReserved: prog.MustSymbol("resfault")})
	run(t, m)
	if m.CPU.R[3] != 3 {
		t.Error("REI to kernel from user did not fault")
	}
}

func TestConsoleOutputViaTXDB(t *testing.T) {
	m := runSrc(t, `
	.org 0x1000
start:	mtpr	#'h', #35
	mtpr	#'i', #35
	halt
`)
	if got := string(m.Mem.Console()); got != "hi" {
		t.Errorf("console = %q, want %q", got, "hi")
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	.org 0x1000
start:	movl	#50, r1
	clrl	r0
loop:	addl2	r1, r0
	movl	r0, scratch
	movl	scratch, r2
	sobgtr	r1, loop
	halt
scratch: .long	0
`
	run1 := runSrc(t, src)
	run2 := runSrc(t, src)
	if run1.Cycles != run2.Cycles || run1.Instrs != run2.Instrs {
		t.Errorf("nondeterministic: cycles %d vs %d, instrs %d vs %d",
			run1.Cycles, run2.Cycles, run1.Instrs, run2.Instrs)
	}
	if run1.CPU != run2.CPU {
		t.Error("register state differs between identical runs")
	}
}

func TestStateString(t *testing.T) {
	m := load(t, "\t.org 0x1000\nstart: halt\n")
	if s := m.State(); !strings.Contains(s, "pc=00001000") {
		t.Errorf("State() = %q", s)
	}
}
