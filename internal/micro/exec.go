package micro

import (
	"math/bits"

	"atum/internal/vax"
)

// stockExec builds the semantic body of the stock microroutine for one
// opcode. Operand specs (and therefore widths) come from the opcode
// table, so the same body implements the B/W/L variants of a family.
func stockExec(info *vax.InstrInfo) func(*Machine) {
	op := info.Operands
	switch info.Opcode {
	case vax.OpHALT:
		return func(m *Machine) { m.halted = true }
	case vax.OpNOP:
		return func(m *Machine) {}
	case vax.OpBPT:
		return func(m *Machine) { raise(vax.VecBreakpoint, false) }
	case vax.OpREI:
		return execREI
	case vax.OpRET:
		return execRET
	case vax.OpRSB:
		return func(m *Machine) {
			m.CPU.R[vax.PC] = m.pop()
			m.flushIBuf()
		}
	case vax.OpLDPCTX:
		return execLDPCTX
	case vax.OpSVPCTX:
		return execSVPCTX

	case vax.OpBRB, vax.OpBRW:
		return func(m *Machine) {
			d := m.evalBranch(op[0])
			m.branch(d)
		}
	case vax.OpBSBB, vax.OpBSBW:
		return func(m *Machine) {
			d := m.evalBranch(op[0])
			m.push(m.CPU.R[vax.PC])
			m.branch(d)
		}
	case vax.OpBNEQ:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLZ == 0 })
	case vax.OpBEQL:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLZ != 0 })
	case vax.OpBGTR:
		return condBranch(op[0], func(p uint32) bool { return p&(vax.PSLN|vax.PSLZ) == 0 })
	case vax.OpBLEQ:
		return condBranch(op[0], func(p uint32) bool { return p&(vax.PSLN|vax.PSLZ) != 0 })
	case vax.OpBGEQ:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLN == 0 })
	case vax.OpBLSS:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLN != 0 })
	case vax.OpBGTRU:
		return condBranch(op[0], func(p uint32) bool { return p&(vax.PSLC|vax.PSLZ) == 0 })
	case vax.OpBLEQU:
		return condBranch(op[0], func(p uint32) bool { return p&(vax.PSLC|vax.PSLZ) != 0 })
	case vax.OpBVC:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLV == 0 })
	case vax.OpBVS:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLV != 0 })
	case vax.OpBCC:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLC == 0 })
	case vax.OpBCS:
		return condBranch(op[0], func(p uint32) bool { return p&vax.PSLC != 0 })

	case vax.OpJMP:
		return func(m *Machine) {
			ea := m.effectiveAddr(m.evalOperand(op[0]))
			m.CPU.R[vax.PC] = ea
			m.flushIBuf()
		}
	case vax.OpJSB:
		return func(m *Machine) {
			ea := m.effectiveAddr(m.evalOperand(op[0]))
			m.push(m.CPU.R[vax.PC])
			m.CPU.R[vax.PC] = ea
			m.flushIBuf()
		}

	case vax.OpMOVB, vax.OpMOVW, vax.OpMOVL:
		w := op[0].Width
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), w)
			dst := m.evalOperand(op[1])
			m.writeRef(dst, w, v)
			m.ccNZ(v, w)
		}
	case vax.OpMOVZBL, vax.OpMOVZWL, vax.OpMOVZBW:
		sw, dw := op[0].Width, op[1].Width
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), sw) // already zero-extended
			dst := m.evalOperand(op[1])
			m.writeRef(dst, dw, v)
			m.ccNZ(v, dw)
		}
	case vax.OpCVTBL, vax.OpCVTWL, vax.OpCVTBW:
		sw, dw := op[0].Width, op[1].Width
		return func(m *Machine) {
			v := uint32(signExtend(m.readRef(m.evalOperand(op[0]), sw), sw))
			dst := m.evalOperand(op[1])
			m.writeRef(dst, dw, v)
			m.ccNZ(v, dw)
			m.CPU.PSL &^= vax.PSLC
		}
	case vax.OpCVTLB, vax.OpCVTLW, vax.OpCVTWB:
		sw, dw := op[0].Width, op[1].Width
		return func(m *Machine) {
			v := uint32(signExtend(m.readRef(m.evalOperand(op[0]), sw), sw))
			dst := m.evalOperand(op[1])
			r := truncate(v, dw)
			m.writeRef(dst, dw, r)
			m.ccNZ(r, dw)
			m.CPU.PSL &^= vax.PSLC
			if uint32(signExtend(r, dw)) != v {
				m.CPU.PSL |= vax.PSLV
			}
		}
	case vax.OpMCOMB, vax.OpMCOMW, vax.OpMCOML:
		w := op[0].Width
		return func(m *Machine) {
			v := truncate(^m.readRef(m.evalOperand(op[0]), w), w)
			dst := m.evalOperand(op[1])
			m.writeRef(dst, w, v)
			m.ccNZ(v, w)
		}
	case vax.OpMNEGB, vax.OpMNEGW, vax.OpMNEGL:
		w := op[0].Width
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), w)
			dst := m.evalOperand(op[1])
			r := m.subCC(0, v, w)
			m.writeRef(dst, w, r)
		}
	case vax.OpCLRB, vax.OpCLRW, vax.OpCLRL:
		w := op[0].Width
		return func(m *Machine) {
			dst := m.evalOperand(op[0])
			m.writeRef(dst, w, 0)
			m.ccNZ(0, w)
		}
	case vax.OpTSTB, vax.OpTSTW, vax.OpTSTL:
		w := op[0].Width
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), w)
			m.ccNZ(v, w)
			m.CPU.PSL &^= vax.PSLC
		}
	case vax.OpCMPB, vax.OpCMPW, vax.OpCMPL:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w)
			b := m.readRef(m.evalOperand(op[1]), w)
			m.cmpCC(a, b, w)
		}
	case vax.OpBITB, vax.OpBITW, vax.OpBITL:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w)
			b := m.readRef(m.evalOperand(op[1]), w)
			m.ccNZ(a&b, w)
		}

	case vax.OpADDB2, vax.OpADDW2, vax.OpADDL2:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w)
			dst := m.evalOperand(op[1])
			b := m.readRefModify(dst, w)
			m.writeRef(dst, w, m.addCC(b, a, w))
		}
	case vax.OpADDB3, vax.OpADDW3, vax.OpADDL3:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w)
			b := m.readRef(m.evalOperand(op[1]), w)
			dst := m.evalOperand(op[2])
			m.writeRef(dst, w, m.addCC(b, a, w))
		}
	case vax.OpSUBB2, vax.OpSUBW2, vax.OpSUBL2:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w)
			dst := m.evalOperand(op[1])
			b := m.readRefModify(dst, w)
			m.writeRef(dst, w, m.subCC(b, a, w))
		}
	case vax.OpSUBB3, vax.OpSUBW3, vax.OpSUBL3:
		w := op[0].Width
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), w) // subtrahend
			b := m.readRef(m.evalOperand(op[1]), w) // minuend
			dst := m.evalOperand(op[2])
			m.writeRef(dst, w, m.subCC(b, a, w))
		}
	case vax.OpINCB, vax.OpINCW, vax.OpINCL:
		w := op[0].Width
		return func(m *Machine) {
			dst := m.evalOperand(op[0])
			v := m.readRefModify(dst, w)
			m.writeRef(dst, w, m.addCC(v, 1, w))
		}
	case vax.OpDECB, vax.OpDECW, vax.OpDECL:
		w := op[0].Width
		return func(m *Machine) {
			dst := m.evalOperand(op[0])
			v := m.readRefModify(dst, w)
			m.writeRef(dst, w, m.subCC(v, 1, w))
		}

	case vax.OpMULL2:
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), vax.L)
			dst := m.evalOperand(op[1])
			b := m.readRefModify(dst, vax.L)
			m.writeRef(dst, vax.L, m.mulCC(a, b))
		}
	case vax.OpMULL3:
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), vax.L)
			b := m.readRef(m.evalOperand(op[1]), vax.L)
			dst := m.evalOperand(op[2])
			m.writeRef(dst, vax.L, m.mulCC(a, b))
		}
	case vax.OpDIVL2:
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), vax.L) // divisor
			dst := m.evalOperand(op[1])
			b := m.readRefModify(dst, vax.L)
			m.writeRef(dst, vax.L, m.divCC(b, a))
		}
	case vax.OpDIVL3:
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), vax.L) // divisor
			b := m.readRef(m.evalOperand(op[1]), vax.L) // dividend
			dst := m.evalOperand(op[2])
			m.writeRef(dst, vax.L, m.divCC(b, a))
		}
	case vax.OpEMUL:
		return func(m *Machine) {
			a := int64(int32(m.readRef(m.evalOperand(op[0]), vax.L)))
			b := int64(int32(m.readRef(m.evalOperand(op[1]), vax.L)))
			c := int64(int32(m.readRef(m.evalOperand(op[2]), vax.L)))
			dst := m.evalOperand(op[3])
			// Deviation from the VAX: the product destination is a
			// longword, not a quadword; the low 32 bits are stored.
			r := uint32(a*b + c)
			m.writeRef(dst, vax.L, r)
			m.ccNZ(r, vax.L)
		}
	case vax.OpEDIV:
		return func(m *Machine) {
			divisor := int32(m.readRef(m.evalOperand(op[0]), vax.L))
			dividend := int32(m.readRef(m.evalOperand(op[1]), vax.L))
			qdst := m.evalOperand(op[2])
			rdst := m.evalOperand(op[3])
			if divisor == 0 {
				m.CPU.PSL |= vax.PSLV
				raise(vax.VecArithmetic, false, 1) // divide by zero
			}
			q := dividend / divisor
			r := dividend % divisor
			m.writeRef(qdst, vax.L, uint32(q))
			m.writeRef(rdst, vax.L, uint32(r))
			m.ccNZ(uint32(q), vax.L)
		}

	case vax.OpBISB2, vax.OpBISW2, vax.OpBISL2:
		return logic2(op, func(a, b uint32) uint32 { return b | a })
	case vax.OpBISB3, vax.OpBISW3, vax.OpBISL3:
		return logic3(op, func(a, b uint32) uint32 { return b | a })
	case vax.OpBICB2, vax.OpBICW2, vax.OpBICL2:
		return logic2(op, func(a, b uint32) uint32 { return b &^ a })
	case vax.OpBICB3, vax.OpBICW3, vax.OpBICL3:
		return logic3(op, func(a, b uint32) uint32 { return b &^ a })
	case vax.OpXORB2, vax.OpXORW2, vax.OpXORL2:
		return logic2(op, func(a, b uint32) uint32 { return b ^ a })
	case vax.OpXORB3, vax.OpXORW3, vax.OpXORL3:
		return logic3(op, func(a, b uint32) uint32 { return b ^ a })

	case vax.OpADWC, vax.OpSBWC:
		subtract := info.Opcode == vax.OpSBWC
		return func(m *Machine) {
			a := m.readRef(m.evalOperand(op[0]), vax.L)
			dst := m.evalOperand(op[1])
			b := m.readRefModify(dst, vax.L)
			m.writeRef(dst, vax.L, m.carryChainCC(b, a, subtract))
		}

	case vax.OpROTL:
		return func(m *Machine) {
			cnt := int(int8(m.readRef(m.evalOperand(op[0]), vax.B)))
			src := m.readRef(m.evalOperand(op[1]), vax.L)
			dst := m.evalOperand(op[2])
			r := bits.RotateLeft32(src, cnt)
			m.writeRef(dst, vax.L, r)
			m.ccNZ(r, vax.L)
		}

	case vax.OpBISPSW, vax.OpBICPSW:
		clear := info.Opcode == vax.OpBICPSW
		return func(m *Machine) {
			mask := m.readRef(m.evalOperand(op[0]), vax.W)
			if mask&^0xFF != 0 {
				raise(vax.VecReserved, true)
			}
			if clear {
				m.CPU.PSL &^= mask & 0xFF
			} else {
				m.CPU.PSL |= mask & 0xFF
			}
		}

	case vax.OpINSQUE:
		return execINSQUE(op)
	case vax.OpREMQUE:
		return execREMQUE(op)
	case vax.OpCMPC3:
		return execCMPC3(op)
	case vax.OpMOVC5:
		return execMOVC5(op)
	case vax.OpLOCC, vax.OpSKPC:
		return execLOCC(op, info.Opcode == vax.OpSKPC)

	case vax.OpASHL:
		return func(m *Machine) {
			cnt := int32(int8(m.readRef(m.evalOperand(op[0]), vax.B)))
			src := m.readRef(m.evalOperand(op[1]), vax.L)
			dst := m.evalOperand(op[2])
			var r uint32
			overflow := false
			switch {
			case cnt >= 32:
				r = 0
				overflow = src != 0
			case cnt >= 0:
				r = src << uint(cnt)
				overflow = int32(r)>>uint(cnt) != int32(src)
			case cnt <= -32:
				r = uint32(int32(src) >> 31)
			default:
				r = uint32(int32(src) >> uint(-cnt))
			}
			m.writeRef(dst, vax.L, r)
			m.ccNZ(r, vax.L)
			if overflow {
				m.CPU.PSL |= vax.PSLV
			}
		}

	case vax.OpMOVAB, vax.OpMOVAL:
		return func(m *Machine) {
			ea := m.effectiveAddr(m.evalOperand(op[0]))
			dst := m.evalOperand(op[1])
			m.writeRef(dst, vax.L, ea)
			m.ccNZ(ea, vax.L)
		}
	case vax.OpPUSHAB, vax.OpPUSHAL:
		return func(m *Machine) {
			ea := m.effectiveAddr(m.evalOperand(op[0]))
			m.push(ea)
			m.ccNZ(ea, vax.L)
		}
	case vax.OpPUSHL:
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), vax.L)
			m.push(v)
			m.ccNZ(v, vax.L)
		}
	case vax.OpMOVPSL:
		return func(m *Machine) {
			dst := m.evalOperand(op[0])
			m.writeRef(dst, vax.L, m.CPU.PSL)
		}

	case vax.OpPUSHR:
		return func(m *Machine) {
			mask := m.readRef(m.evalOperand(op[0]), vax.W)
			for r := 14; r >= 0; r-- {
				if mask&(1<<uint(r)) != 0 {
					m.push(m.CPU.R[r])
				}
			}
		}
	case vax.OpPOPR:
		return func(m *Machine) {
			mask := m.readRef(m.evalOperand(op[0]), vax.W)
			for r := 0; r <= 14; r++ {
				if mask&(1<<uint(r)) != 0 {
					m.CPU.R[r] = m.pop()
				}
			}
		}

	case vax.OpBLBS:
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), vax.L)
			d := m.evalBranch(op[1])
			if v&1 != 0 {
				m.branch(d)
			}
		}
	case vax.OpBLBC:
		return func(m *Machine) {
			v := m.readRef(m.evalOperand(op[0]), vax.L)
			d := m.evalBranch(op[1])
			if v&1 == 0 {
				m.branch(d)
			}
		}
	case vax.OpBBS, vax.OpBBC:
		wantSet := info.Opcode == vax.OpBBS
		return func(m *Machine) {
			pos := m.readRef(m.evalOperand(op[0]), vax.L)
			base := m.evalOperand(op[1])
			d := m.evalBranch(op[2])
			var bit uint32
			if base.kind == refReg {
				if pos > 31 {
					raise(vax.VecReserved, true)
				}
				bit = m.CPU.R[base.reg] >> pos & 1
			} else {
				b := m.readVirt(base.addr+pos>>3, 1)
				bit = b >> (pos & 7) & 1
			}
			if (bit != 0) == wantSet {
				m.branch(d)
			}
		}

	case vax.OpBBSSI, vax.OpBBCCI:
		// Interlocked test-and-set/clear. Instructions are atomic in
		// this simulator (the SMP driver interleaves whole
		// instructions), so the read-modify-write below is indivisible
		// with respect to other CPUs by construction; the distinct
		// opcodes exist so kernel spinlocks are explicit in the source
		// and carry the architecture's interlocked cost.
		setBit := info.Opcode == vax.OpBBSSI
		return func(m *Machine) {
			pos := m.readRef(m.evalOperand(op[0]), vax.L)
			base := m.evalOperand(op[1])
			d := m.evalBranch(op[2])
			var bit uint32
			if base.kind == refReg {
				if pos > 31 {
					raise(vax.VecReserved, true)
				}
				bit = m.CPU.R[base.reg] >> pos & 1
				if setBit {
					m.CPU.R[base.reg] |= 1 << pos
				} else {
					m.CPU.R[base.reg] &^= 1 << pos
				}
			} else {
				addr := base.addr + pos>>3
				b := m.readVirt(addr, 1)
				bit = b >> (pos & 7) & 1
				if setBit {
					b |= 1 << (pos & 7)
				} else {
					b &^= 1 << (pos & 7)
				}
				m.writeVirt(addr, 1, b)
			}
			// BBSSI branches when the bit WAS set, BBCCI when it was
			// clear — i.e. when the interlocked attempt failed to
			// change the lock's state in the caller's favour.
			if (bit != 0) == setBit {
				m.branch(d)
			}
		}

	case vax.OpAOBLSS, vax.OpAOBLEQ:
		orEqual := info.Opcode == vax.OpAOBLEQ
		return func(m *Machine) {
			limit := int32(m.readRef(m.evalOperand(op[0]), vax.L))
			idx := m.evalOperand(op[1])
			d := m.evalBranch(op[2])
			v := m.addCC(m.readRefModify(idx, vax.L), 1, vax.L)
			m.writeRef(idx, vax.L, v)
			if int32(v) < limit || (orEqual && int32(v) == limit) {
				m.branch(d)
			}
		}
	case vax.OpSOBGEQ, vax.OpSOBGTR:
		strict := info.Opcode == vax.OpSOBGTR
		return func(m *Machine) {
			idx := m.evalOperand(op[0])
			d := m.evalBranch(op[1])
			v := m.subCC(m.readRefModify(idx, vax.L), 1, vax.L)
			m.writeRef(idx, vax.L, v)
			if int32(v) > 0 || (!strict && int32(v) == 0) {
				m.branch(d)
			}
		}
	case vax.OpACBL:
		return func(m *Machine) {
			limit := int32(m.readRef(m.evalOperand(op[0]), vax.L))
			add := int32(m.readRef(m.evalOperand(op[1]), vax.L))
			idx := m.evalOperand(op[2])
			d := m.evalBranch(op[3])
			v := m.addCC(m.readRefModify(idx, vax.L), uint32(add), vax.L)
			m.writeRef(idx, vax.L, v)
			if (add >= 0 && int32(v) <= limit) || (add < 0 && int32(v) >= limit) {
				m.branch(d)
			}
		}
	case vax.OpCASEL:
		return func(m *Machine) {
			sel := m.readRef(m.evalOperand(op[0]), vax.L)
			base := m.readRef(m.evalOperand(op[1]), vax.L)
			limit := m.readRef(m.evalOperand(op[2]), vax.L)
			tbl := m.CPU.R[vax.PC]
			idx := sel - base
			if idx <= limit {
				// The displacement table lives in the instruction
				// stream; the microcode reads it as data.
				disp := m.readVirt(tbl+2*idx, 2)
				m.CPU.R[vax.PC] = tbl + uint32(int32(int16(disp)))
			} else {
				m.CPU.R[vax.PC] = tbl + 2*(limit+1)
			}
			m.flushIBuf()
		}

	case vax.OpMOVC3:
		return execMOVC3(op)
	case vax.OpCALLS:
		return execCALLS(op)
	case vax.OpCHMK:
		return func(m *Machine) {
			code := m.readRef(m.evalOperand(op[0]), vax.W)
			raise(vax.VecCHMK, false, code)
		}
	case vax.OpMTPR:
		return execMTPR(op)
	case vax.OpMFPR:
		return execMFPR(op)

	default:
		// Table entries without semantics would be a programming error;
		// fail at microstore load time, not at run time.
		panic("micro: no stock microroutine for " + info.Name)
	}
}

func condBranch(spec vax.OperandSpec, cond func(psl uint32) bool) func(*Machine) {
	return func(m *Machine) {
		d := m.evalBranch(spec)
		if cond(m.CPU.PSL) {
			m.branch(d)
		}
	}
}

func logic2(op []vax.OperandSpec, f func(a, b uint32) uint32) func(*Machine) {
	w := op[0].Width
	return func(m *Machine) {
		a := m.readRef(m.evalOperand(op[0]), w)
		dst := m.evalOperand(op[1])
		b := m.readRefModify(dst, w)
		r := truncate(f(a, b), w)
		m.writeRef(dst, w, r)
		m.ccNZ(r, w)
	}
}

func logic3(op []vax.OperandSpec, f func(a, b uint32) uint32) func(*Machine) {
	w := op[0].Width
	return func(m *Machine) {
		a := m.readRef(m.evalOperand(op[0]), w)
		b := m.readRef(m.evalOperand(op[1]), w)
		dst := m.evalOperand(op[2])
		r := truncate(f(a, b), w)
		m.writeRef(dst, w, r)
		m.ccNZ(r, w)
	}
}

// carryChainCC implements ADWC/SBWC: add/subtract with the carry bit as
// a third operand, setting the full condition codes.
func (m *Machine) carryChainCC(a, b uint32, subtract bool) uint32 {
	cin := uint64(0)
	if m.CPU.PSL&vax.PSLC != 0 {
		cin = 1
	}
	var r uint32
	psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	if subtract {
		r = a - b - uint32(cin)
		if uint64(b)+cin > uint64(a) {
			psl |= vax.PSLC
		}
		if ((a^b)&(a^r))>>31 != 0 {
			psl |= vax.PSLV
		}
	} else {
		sum := uint64(a) + uint64(b) + cin
		r = uint32(sum)
		if sum > 0xFFFFFFFF {
			psl |= vax.PSLC
		}
		if (^(a^b)&(a^r))>>31 != 0 {
			psl |= vax.PSLV
		}
	}
	if r == 0 {
		psl |= vax.PSLZ
	}
	if int32(r) < 0 {
		psl |= vax.PSLN
	}
	m.CPU.PSL = psl
	return r
}

// evalBranch decodes a branch displacement operand.
func (m *Machine) evalBranch(spec vax.OperandSpec) int32 {
	op, err := vax.DecodeOperand((*cpuFetcher)(m), spec)
	if err != nil {
		raise(vax.VecReserved, true)
	}
	return op.Disp
}

// branch adjusts PC by a taken branch displacement.
func (m *Machine) branch(disp int32) {
	m.CPU.R[vax.PC] += uint32(disp)
	m.flushIBuf()
}

// ---- condition-code helpers ----

func (m *Machine) ccNZ(v uint32, w vax.Width) {
	psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV)
	if truncate(v, w) == 0 {
		psl |= vax.PSLZ
	}
	if signExtend(v, w) < 0 {
		psl |= vax.PSLN
	}
	m.CPU.PSL = psl
}

func (m *Machine) addCC(a, b uint32, w vax.Width) uint32 {
	mask := widthMask(w)
	a, b = a&mask, b&mask
	sum := uint64(a) + uint64(b)
	r := uint32(sum) & mask
	psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	if r == 0 {
		psl |= vax.PSLZ
	}
	if signExtend(r, w) < 0 {
		psl |= vax.PSLN
	}
	if sum > uint64(mask) {
		psl |= vax.PSLC
	}
	sa, sb, sr := signExtend(a, w) < 0, signExtend(b, w) < 0, signExtend(r, w) < 0
	if sa == sb && sr != sa {
		psl |= vax.PSLV
	}
	m.CPU.PSL = psl
	return r
}

// subCC computes a-b with VAX SUB/DEC/MNEG condition codes (C = borrow).
func (m *Machine) subCC(a, b uint32, w vax.Width) uint32 {
	mask := widthMask(w)
	a, b = a&mask, b&mask
	r := (a - b) & mask
	psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	if r == 0 {
		psl |= vax.PSLZ
	}
	if signExtend(r, w) < 0 {
		psl |= vax.PSLN
	}
	if b > a {
		psl |= vax.PSLC
	}
	sa, sb, sr := signExtend(a, w) < 0, signExtend(b, w) < 0, signExtend(r, w) < 0
	if sa != sb && sr != sa {
		psl |= vax.PSLV
	}
	m.CPU.PSL = psl
	return r
}

// cmpCC sets codes for CMP (V cleared, C = unsigned less).
func (m *Machine) cmpCC(a, b uint32, w vax.Width) {
	mask := widthMask(w)
	a, b = a&mask, b&mask
	psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
	if a == b {
		psl |= vax.PSLZ
	}
	if signExtend(a, w) < signExtend(b, w) {
		psl |= vax.PSLN
	}
	if a < b {
		psl |= vax.PSLC
	}
	m.CPU.PSL = psl
}

func (m *Machine) mulCC(a, b uint32) uint32 {
	prod := int64(int32(a)) * int64(int32(b))
	r := uint32(prod)
	m.ccNZ(r, vax.L)
	m.CPU.PSL &^= vax.PSLC
	if prod != int64(int32(r)) {
		m.CPU.PSL |= vax.PSLV
	}
	return r
}

func (m *Machine) divCC(dividend, divisor uint32) uint32 {
	if divisor == 0 {
		m.CPU.PSL |= vax.PSLV
		raise(vax.VecArithmetic, false, 1) // divide by zero
	}
	if dividend == 0x80000000 && divisor == 0xFFFFFFFF {
		m.CPU.PSL |= vax.PSLV
		raise(vax.VecArithmetic, false, 2) // integer overflow
	}
	r := uint32(int32(dividend) / int32(divisor))
	m.ccNZ(r, vax.L)
	m.CPU.PSL &^= vax.PSLC
	return r
}

func widthMask(w vax.Width) uint32 {
	switch w {
	case vax.B:
		return 0xFF
	case vax.W:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}
