package micro

import "atum/internal/vax"

// The swap disk. The paper's machines paged to disk through an I/O
// subsystem whose DMA transfers did not pass through processor microcode
// (and so were not traced by ATUM); we model the same property with a
// simple frame-at-a-time controller driven by three privileged
// registers:
//
//	DISKBLK  (MTPR) select the 512-byte disk block
//	DISKADDR (MTPR) select the physical frame address
//	DISKOP   (MTPR) 1 = write frame to block, 2 = read block to frame
//
// Operations are synchronous (the kernel spins zero time) but charge
// DiskOpCycles to model transfer latency. Blocks are allocated lazily;
// reading a never-written block yields zeros.
//
// On an SMP machine the block store is one shared device (every core
// pages to the same swap), while the block/address registers are
// per-processor: each core's controller port holds its own transfer
// parameters, so two cores programming a transfer concurrently do not
// clobber each other's registers.
const (
	PrDISKBLK  = 40
	PrDISKADDR = 41
	PrDISKOP   = 42

	DiskWrite = 1
	DiskRead  = 2

	// DiskOpCycles is charged per 512-byte transfer.
	DiskOpCycles = 2500
)

// diskStore is the shared block store (and traffic counters) behind
// every core's controller port.
type diskStore struct {
	blocks map[uint32][]byte
	// Ops counts transfers (paging-activity statistics).
	reads, writes uint64
}

// disk is one core's controller port: private transfer registers over
// the shared store.
type disk struct {
	blk   uint32
	addr  uint32
	store *diskStore
}

// DiskStats reports swap traffic. The counters live on the shared
// store, so on an SMP machine every core reports machine-wide totals.
func (m *Machine) DiskStats() (reads, writes uint64) {
	return m.disk.store.reads, m.disk.store.writes
}

// diskOp executes a transfer; invalid parameters are machine checks
// (only the kernel drives this device).
func (m *Machine) diskOp(op uint32) {
	m.Cycles += DiskOpCycles
	st := m.disk.store
	switch op {
	case DiskWrite:
		buf, err := m.Mem.Bytes(m.disk.addr, 512)
		if err != nil {
			raise(vax.VecMachineCheck, true)
		}
		st.blocks[m.disk.blk] = append([]byte(nil), buf...)
		st.writes++
	case DiskRead:
		data := st.blocks[m.disk.blk]
		if data == nil {
			data = make([]byte, 512)
		}
		if err := m.Mem.LoadBytes(m.disk.addr, data); err != nil {
			raise(vax.VecMachineCheck, true)
		}
		st.reads++
	default:
		raise(vax.VecReserved, true)
	}
}
