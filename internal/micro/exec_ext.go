package micro

import "atum/internal/vax"

// Queue instructions operate on the VAX's doubly linked absolute queues:
// each element starts with a forward link (flink) at offset 0 and a
// backward link (blink) at offset 4, both absolute addresses. A queue
// header is an element whose links point at itself when empty. These are
// the primitives VMS built its scheduler and I/O queues on, and they are
// microcoded multi-reference instructions — rich trace material.

// execINSQUE implements INSQUE entry, pred: insert entry after pred.
func execINSQUE(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		entry := m.effectiveAddr(m.evalOperand(op[0]))
		pred := m.effectiveAddr(m.evalOperand(op[1]))

		succ := m.readVirt(pred, 4) // pred.flink
		m.writeVirt(entry, 4, succ) // entry.flink = succ
		m.writeVirt(entry+4, 4, pred)
		m.writeVirt(succ+4, 4, entry) // succ.blink = entry
		m.writeVirt(pred, 4, entry)   // pred.flink = entry

		psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
		if succ == pred {
			// The entry is now the sole element (queue was empty).
			psl |= vax.PSLZ
		}
		m.CPU.PSL = psl
	}
}

// execREMQUE implements REMQUE entry, addr: remove entry from its queue
// and store its address. V is set when the queue was empty (the "entry"
// was a self-linked header, nothing to remove); Z when the queue became
// empty.
func execREMQUE(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		entry := m.effectiveAddr(m.evalOperand(op[0]))
		dst := m.evalOperand(op[1])

		flink := m.readVirt(entry, 4)
		blink := m.readVirt(entry+4, 4)

		psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
		if flink == entry {
			psl |= vax.PSLV // empty queue
		} else {
			m.writeVirt(blink, 4, flink)   // pred.flink = succ
			m.writeVirt(flink+4, 4, blink) // succ.blink = pred
			if flink == blink {
				psl |= vax.PSLZ // queue now empty
			}
		}
		m.CPU.PSL = psl
		m.writeRef(dst, vax.L, entry)
	}
}

// execCMPC3 implements the microcoded string compare, restartable via
// FPD like MOVC3. Progress registers follow the VAX convention:
// R0 = bytes remaining in string 1 (including the unequal byte when the
// strings differ), R1 = address in string 1, R3 = address in string 2.
// Condition codes compare the first unequal bytes (unsigned), Z set when
// the strings are equal.
func execCMPC3(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		if m.CPU.PSL&vax.PSLFPD == 0 {
			length := m.readRef(m.evalOperand(op[0]), vax.W)
			s1 := m.effectiveAddr(m.evalOperand(op[1]))
			s2 := m.effectiveAddr(m.evalOperand(op[2]))
			m.CPU.R[0] = length
			m.CPU.R[1] = s1
			m.CPU.R[2] = 0
			m.CPU.R[3] = s2
			m.CPU.PSL |= vax.PSLFPD
		} else {
			for _, s := range op {
				m.skimOperand(s)
			}
		}
		for m.CPU.R[0] != 0 {
			b1 := m.readVirt(m.CPU.R[1], 1)
			b2 := m.readVirt(m.CPU.R[3], 1)
			if b1 != b2 {
				m.CPU.PSL &^= vax.PSLFPD
				m.cmpCC(b1, b2, vax.B)
				return
			}
			m.CPU.R[1]++
			m.CPU.R[3]++
			m.CPU.R[0]--
		}
		m.CPU.PSL &^= vax.PSLFPD
		m.cmpCC(0, 0, vax.B) // equal: Z set
	}
}

// execMOVC5 implements the microcoded copy-with-fill: move
// min(srclen,dstlen) bytes, pad the remaining destination with the fill
// character. The workhorse of period kernels (zeroing pages, padding
// buffers). Restartable via FPD; progress registers follow the VAX
// convention (R0 residual source count, R1 source position, R3
// destination position) with the remaining destination count in R2, the
// fill byte in R4 and the length-comparison outcome in R5 across
// restarts (all are in the instruction's destroyed-register set; the
// real machine kept the latter three in non-architectural state).
func execMOVC5(op []vax.OperandSpec) func(*Machine) {
	return func(m *Machine) {
		if m.CPU.PSL&vax.PSLFPD == 0 {
			srclen := m.readRef(m.evalOperand(op[0]), vax.W)
			src := m.effectiveAddr(m.evalOperand(op[1]))
			fill := m.readRef(m.evalOperand(op[2]), vax.B)
			dstlen := m.readRef(m.evalOperand(op[3]), vax.W)
			dst := m.effectiveAddr(m.evalOperand(op[4]))
			m.CPU.R[0] = srclen
			m.CPU.R[1] = src
			m.CPU.R[2] = dstlen
			m.CPU.R[3] = dst
			m.CPU.R[4] = fill
			switch {
			case srclen == dstlen:
				m.CPU.R[5] = 0
			case int16(srclen) < int16(dstlen):
				m.CPU.R[5] = 1
			default:
				m.CPU.R[5] = 2
			}
			m.CPU.PSL |= vax.PSLFPD
		} else {
			for _, s := range op {
				m.skimOperand(s)
			}
		}
		for m.CPU.R[2] != 0 {
			var b uint32
			if m.CPU.R[0] != 0 {
				b = m.readVirt(m.CPU.R[1], 1)
				m.CPU.R[1]++
				m.CPU.R[0]--
			} else {
				b = m.CPU.R[4] & 0xFF
			}
			m.writeVirt(m.CPU.R[3], 1, b)
			m.CPU.R[3]++
			m.CPU.R[2]--
		}
		m.CPU.PSL &^= vax.PSLFPD
		// Condition codes reflect the original srclen:dstlen comparison.
		psl := m.CPU.PSL &^ (vax.PSLN | vax.PSLZ | vax.PSLV | vax.PSLC)
		switch m.CPU.R[5] {
		case 0:
			psl |= vax.PSLZ
		case 1:
			psl |= vax.PSLN | vax.PSLC
		}
		m.CPU.PSL = psl
		m.CPU.R[4] = 0
		m.CPU.R[5] = 0
	}
}

// execLOCC implements LOCC (and SKPC when skip is true): scan a byte
// string for the first byte equal (LOCC) or unequal (SKPC) to the given
// character. R0 = bytes remaining (0 if exhausted), R1 = address of the
// located byte (or one past the end). Z is set when the scan exhausts
// the string. The character is held in R2 across FPD restarts (the real
// machine kept it in a non-architectural register; exposing it in R2 is
// this implementation's documented deviation — R2 is in the
// instruction's official destroyed-register set anyway).
func execLOCC(op []vax.OperandSpec, skip bool) func(*Machine) {
	return func(m *Machine) {
		if m.CPU.PSL&vax.PSLFPD == 0 {
			ch := m.readRef(m.evalOperand(op[0]), vax.B)
			length := m.readRef(m.evalOperand(op[1]), vax.W)
			addr := m.effectiveAddr(m.evalOperand(op[2]))
			m.CPU.R[0] = length
			m.CPU.R[1] = addr
			m.CPU.R[2] = ch
			m.CPU.PSL |= vax.PSLFPD
		} else {
			for _, s := range op {
				m.skimOperand(s)
			}
		}
		ch := m.CPU.R[2] & 0xFF
		for m.CPU.R[0] != 0 {
			b := m.readVirt(m.CPU.R[1], 1)
			if (b == ch) != skip {
				break
			}
			m.CPU.R[1]++
			m.CPU.R[0]--
		}
		m.CPU.PSL &^= vax.PSLFPD
		m.ccNZ(m.CPU.R[0], vax.L)
		m.CPU.PSL &^= vax.PSLN | vax.PSLV | vax.PSLC
		if m.CPU.R[0] == 0 {
			m.CPU.PSL |= vax.PSLZ
		} else {
			m.CPU.PSL &^= vax.PSLZ
		}
	}
}
