package analyzers

import (
	"go/ast"
)

// TraceRecord checks keyed trace.Record composite literals: every literal
// must say what Kind it is, memory-reference kinds must carry a Width
// (the packed encoding has no "unset" width — omitting it silently
// encodes a 1-byte reference), and marker kinds must not carry one
// (markers decode to Width 0; a literal claiming otherwise cannot
// round-trip through the trace buffer).
var TraceRecord = &Analyzer{
	Name: "tracerecord",
	Doc:  "trace.Record literals set Kind, and Width exactly when the kind is a memory reference",
	Run:  runTraceRecord,
}

var markerKinds = map[string]bool{
	"KindCtxSwitch": true,
	"KindException": true,
}

var memrefKinds = map[string]bool{
	"KindIFetch":   true,
	"KindDRead":    true,
	"KindDWrite":   true,
	"KindPTERead":  true,
	"KindPTEWrite": true,
}

func runTraceRecord(p *Pass) {
	for _, f := range p.Files {
		inTracePkg := f.Name.Name == "trace"
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isRecordType(lit.Type, inTracePkg) {
				return true
			}
			if len(lit.Elts) == 0 {
				return true
			}
			var kind ast.Expr
			var width ast.Expr
			keyed := false
			for _, e := range lit.Elts {
				kv, ok := e.(*ast.KeyValueExpr)
				if !ok {
					continue // positional literal: all fields present
				}
				keyed = true
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Kind":
					kind = kv.Value
				case "Width":
					width = kv.Value
				}
			}
			if !keyed {
				return true
			}
			if kind == nil {
				p.Reportf(lit.Pos(), "trace.Record literal does not set Kind (zero value is KindIFetch; say so if meant)")
				return true
			}
			name, constant := kindName(kind)
			if !constant {
				return true // dynamic kind: width requirements depend on runtime value
			}
			if memrefKinds[name] && width == nil {
				p.Reportf(lit.Pos(), "trace.Record literal with Kind %s does not set Width (encodes as a phantom 1-byte reference)", name)
			}
			if markerKinds[name] && width != nil && !isZeroLit(width) {
				p.Reportf(width.Pos(), "trace.Record marker %s sets Width (markers carry Width 0; this cannot round-trip the packed encoding)", name)
			}
			return true
		})
	}
}

func isRecordType(t ast.Expr, inTracePkg bool) bool {
	switch t := t.(type) {
	case *ast.SelectorExpr:
		x, ok := t.X.(*ast.Ident)
		return ok && x.Name == "trace" && t.Sel.Name == "Record"
	case *ast.Ident:
		return inTracePkg && t.Name == "Record"
	}
	return false
}

// kindName extracts the constant name from a Kind value expression
// (trace.KindDRead or bare KindDRead). ok=false for anything dynamic.
func kindName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok && x.Name == "trace" {
			return e.Sel.Name, true
		}
	case *ast.Ident:
		if markerKinds[e.Name] || memrefKinds[e.Name] {
			return e.Name, true
		}
	}
	return "", false
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
