package analyzers

import (
	"go/ast"
	"go/types"
)

// TraceRecord checks keyed trace.Record composite literals: every literal
// must say what Kind it is, memory-reference kinds must carry a Width
// (the packed encoding has no "unset" width — omitting it silently
// encodes a 1-byte reference), and marker kinds must not carry one
// (markers decode to Width 0; a literal claiming otherwise cannot
// round-trip through the trace buffer).
//
// The pass is type-aware: literals are matched by the named type
// internal/trace.Record (aliases and local names included), and Kind
// values resolve to the constant object they denote, so a renamed
// import or a constant reached through a local alias is still judged.
var TraceRecord = &Analyzer{
	Name: "tracerecord",
	Doc:  "trace.Record literals set Kind, and Width exactly when the kind is a memory reference",
	Run:  runTraceRecord,
}

var markerKinds = map[string]bool{
	"KindCtxSwitch": true,
	"KindException": true,
}

var memrefKinds = map[string]bool{
	"KindIFetch":   true,
	"KindDRead":    true,
	"KindDWrite":   true,
	"KindPTERead":  true,
	"KindPTEWrite": true,
}

func runTraceRecord(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isNamedType(p.typeOf(lit), "internal/trace", "Record") {
				return true
			}
			if len(lit.Elts) == 0 {
				return true
			}
			var kind ast.Expr
			var width ast.Expr
			keyed := false
			for _, e := range lit.Elts {
				kv, ok := e.(*ast.KeyValueExpr)
				if !ok {
					continue // positional literal: all fields present
				}
				keyed = true
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Kind":
					kind = kv.Value
				case "Width":
					width = kv.Value
				}
			}
			if !keyed {
				return true
			}
			if kind == nil {
				p.Reportf(lit.Pos(), "trace.Record literal does not set Kind (zero value is KindIFetch; say so if meant)")
				return true
			}
			name, constant := p.kindConstName(kind)
			if !constant {
				return true // dynamic kind: width requirements depend on runtime value
			}
			if memrefKinds[name] && width == nil {
				p.Reportf(lit.Pos(), "trace.Record literal with Kind %s does not set Width (encodes as a phantom 1-byte reference)", name)
			}
			if markerKinds[name] && width != nil && !isZeroLit(width) {
				p.Reportf(width.Pos(), "trace.Record marker %s sets Width (markers carry Width 0; this cannot round-trip the packed encoding)", name)
			}
			return true
		})
	}
}

// kindConstName resolves a Kind value expression to the trace-package
// constant it denotes (through any import alias or local renaming).
// ok=false for anything dynamic.
func (p *Pass) kindConstName(e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	if p.Info == nil {
		return "", false
	}
	c, ok := p.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || !pathHasSuffix(c.Pkg().Path(), "internal/trace") {
		return "", false
	}
	return c.Name(), true
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
