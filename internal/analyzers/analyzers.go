// Package analyzers contains static vet passes for this codebase itself,
// enforcing repo-specific invariants the Go compiler cannot: trace.Record
// literals set the fields the packed encoding requires, only the tracing
// layers touch the reserved-region accessor, and PIDs are never silently
// truncated to uint8.
//
// The framework is a deliberately small, stdlib-only analogue of
// golang.org/x/tools/go/analysis (which is not vendored here): analyzers
// receive parsed files and report position-tagged findings. Passes are
// purely syntactic — they see the AST, not types — which keeps them
// dependency-free and fast; the invariants they check are naming-level
// ones where syntax is sufficient.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one vet pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Dir is the slash-separated package directory relative to the
	// module root (e.g. "internal/cache"); analyzers use it for
	// package-allowlist rules.
	Dir   string
	Files []*ast.File

	findings *[]Finding
	analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Analyzer)
}

// All returns every registered analyzer.
func All() []*Analyzer {
	return []*Analyzer{TraceRecord, ReservedAccessor, PIDTrunc, TraceOpen}
}

// RunDir parses every non-test .go file under root (recursively, skipping
// testdata and hidden directories) and applies the analyzers
// package-by-package. root should be the module root so that package
// allowlists, which are expressed as module-relative directories, line up.
func RunDir(root string, analyzers []*Analyzer) ([]Finding, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var findings []Finding
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		fset := token.NewFileSet()
		var files []*ast.File
		sort.Strings(byDir[dir])
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		runPass(fset, filepath.ToSlash(rel), files, analyzers, &findings)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func runPass(fset *token.FileSet, dir string, files []*ast.File, analyzers []*Analyzer, out *[]Finding) {
	for _, a := range analyzers {
		a.Run(&Pass{Fset: fset, Dir: dir, Files: files, findings: out, analyzer: a.Name})
	}
}
