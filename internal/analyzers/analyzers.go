// Package analyzers contains static vet passes for this codebase itself,
// enforcing repo-specific invariants the Go compiler cannot: trace.Record
// literals set the fields the packed encoding requires, only the tracing
// layers touch the reserved-region accessor, PIDs are never silently
// truncated to uint8, every caller reads traces through trace.Open, and
// — since PR 5 proved the point at runtime — the concurrency invariants
// of the capture pipeline hold by construction: fields touched through
// sync/atomic are never accessed plainly, mutex-guarded fields are only
// reached under their lock, and no code reachable from the telemetry
// layer can charge simulated cycles.
//
// The framework is a deliberately small, stdlib-only analogue of
// golang.org/x/tools/go/analysis (which is not vendored here). Unlike
// the original syntactic version, passes now run over *typed* ASTs: a
// loader (load.go) type-checks the whole module in dependency order,
// resolving module-internal imports from source and the standard
// library through go/importer, so analyzers match objects and types
// rather than names. Per-package passes run concurrently (one goroutine
// per package once type checking is done); module passes see every
// package at once for call-graph reasoning.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"sync"
)

// Analyzer is one vet pass. Exactly one of Run (per-package) or
// RunModule (whole-module, for call-graph passes) must be set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// RunModule analyzes every package of the module at once; passes
	// that need cross-package reachability (cyclepurity) use it.
	RunModule func(*ModulePass)
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Dir is the slash-separated package directory relative to the
	// module root (e.g. "internal/cache"); analyzers use it for
	// package-allowlist rules.
	Dir   string
	Files []*ast.File
	// Pkg and Info are the go/types results for this package. Type
	// checking is tolerant, so objects that failed to resolve are
	// simply absent: passes treat missing information as unknown.
	Pkg  *types.Package
	Info *types.Info

	findings *[]Finding
	analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// ModulePass hands a module analyzer every package at once.
type ModulePass struct {
	Fset *token.FileSet
	Pkgs []*Package

	findings *[]Finding
	analyzer string
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Finding is one diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Analyzer)
}

// All returns every registered analyzer. Drivers (cmd/atum-vet) derive
// their usage text from this list, so it cannot go stale.
func All() []*Analyzer {
	return []*Analyzer{
		TraceRecord, ReservedAccessor, PIDTrunc, TraceOpen,
		AtomicField, GuardedBy, CyclePurity,
	}
}

// RunDir loads and type-checks the module rooted at root and applies
// the analyzers: per-package passes concurrently across packages,
// module passes over the whole set. root should be the module root so
// that package allowlists, which are expressed as module-relative
// directories, line up. Findings come back sorted by file, line, then
// analyzer.
func RunDir(root string, analyzers []*Analyzer) ([]Finding, error) {
	m, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunModule(m, analyzers), nil
}

// RunModule applies the analyzers to an already-loaded module.
func RunModule(m *Module, analyzers []*Analyzer) []Finding {
	// Per-package passes are independent once type checking is done:
	// fan them out one goroutine per package, each appending to its own
	// slice. (The -race CI run of this package exercises exactly this.)
	perPkg := make([][]Finding, len(m.Pkgs))
	var wg sync.WaitGroup
	for i, pkg := range m.Pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			runPackagePasses(m.Fset, pkg, analyzers, &perPkg[i])
		}(i, pkg)
	}
	wg.Wait()

	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Fset: m.Fset, Pkgs: m.Pkgs, findings: &findings, analyzer: a.Name})
		}
	}
	sortFindings(findings)
	return findings
}

func runPackagePasses(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, out *[]Finding) {
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		a.Run(&Pass{
			Fset: fset, Dir: pkg.Dir, Files: pkg.Files,
			Pkg: pkg.Types, Info: pkg.Info,
			findings: out, analyzer: a.Name,
		})
	}
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
}

// ---- shared type-query helpers ----

// typeOf returns the type of e, or nil when type checking did not
// resolve it.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// namedFrom unwraps pointers and aliases down to a named type, or nil.
func namedFrom(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgSuffix.name, where pkgSuffix matches the end of the declaring
// package path ("internal/trace" matches "atum/internal/trace").
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pathHasSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// shortFile trims a file path to its base name for compact diagnostics.
func shortFile(path string) string {
	return filepath.Base(path)
}

// pathHasSuffix reports whether import path p ends with the given
// slash-separated suffix on a path-component boundary.
func pathHasSuffix(p, suffix string) bool {
	if p == suffix {
		return true
	}
	return len(p) > len(suffix) && p[len(p)-len(suffix)-1] == '/' && p[len(p)-len(suffix):] == suffix
}

// calleeFunc resolves the function or method a call expression invokes,
// when it is a direct (non-function-value) call.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	if info == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// fieldVarOf resolves a selector expression to the struct field it
// selects, or nil when it is not a field selection.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if info == nil {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified field access (pkg.Global.Field) resolves through
	// Uses rather than Selections only for the ident case; selectors on
	// package names select objects, not fields.
	return nil
}
