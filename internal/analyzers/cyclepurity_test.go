package analyzers

import (
	"go/ast"
	"go/parser"
	"path/filepath"
	"strings"
	"testing"
)

// TestCyclePurityCrossPackage exercises the part of the pass the golden
// fixtures cannot: a cycle write reached from internal/obs through a
// call into a different package. The helper package is registered in
// the module's import cache so the obs-posing package resolves it to
// real type objects, exactly as module-internal imports do.
func TestCyclePurityCrossPackage(t *testing.T) {
	mod, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	const helperSrc = `package simhelper

import "atum/internal/micro"

func Charge(m *micro.Machine) { m.Cycles += 8 }
`
	hf, err := parser.ParseFile(mod.Fset, "simhelper_fixture.go", helperSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	helper := mod.CheckExtra("internal/simhelper", []*ast.File{hf})
	mod.cache["atum/internal/simhelper"] = helper.Types

	const obsSrc = `package obshook

import (
	"atum/internal/micro"
	"atum/internal/simhelper"
)

func Observe(m *micro.Machine) { simhelper.Charge(m) }
`
	of, err := parser.ParseFile(mod.Fset, "obshook_fixture.go", obsSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	obs := mod.CheckExtra("internal/obs", []*ast.File{of})

	var findings []Finding
	CyclePurity.RunModule(&ModulePass{
		Fset: mod.Fset, Pkgs: []*Package{obs, helper},
		findings: &findings, analyzer: CyclePurity.Name,
	})

	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	msg := findings[0].Msg
	if !strings.Contains(msg, "write to Machine.Cycles reachable from internal/obs") {
		t.Errorf("finding message %q does not name the invariant", msg)
	}
	if !strings.Contains(msg, "path: Observe -> Charge") {
		t.Errorf("finding message %q does not show the call chain Observe -> Charge", msg)
	}
}
