package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// AtomicField enforces the first concurrency invariant PR 5 had to fix
// at runtime: a struct field that is ever accessed through sync/atomic
// (atomic.AddUint64(&s.n, 1), atomic.LoadUint64(&s.n), ...) must never
// be read or written plainly. The pre-fix SpillService kept its spilled/
// lost counters as plain uint64 fields, incremented them directly on the
// spill path and read them atomically (or not at all) from the polling
// path — a data race the -race detector only catches when a test happens
// to poll mid-capture. Mixed atomic/plain access is statically visible,
// and this pass flags every plain access to a field the same package
// also touches atomically.
//
// The pass needs type information twice over: to resolve the callee to
// the real sync/atomic package (not a same-named import), and to track
// field identity through any selector chain (s.counters.n and c.n are
// the same field object).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed through sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

func runAtomicField(p *Pass) {
	if p.Info == nil {
		return
	}
	// Phase 1: find every &s.f handed to a sync/atomic function. The
	// selector nodes themselves are remembered so phase 2 does not flag
	// the atomic access sites.
	atomicFields := map[*types.Var][]ast.Node{} // field -> atomic-use selector nodes
	atomicSites := map[ast.Node]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Every address-taking sync/atomic function (Add*, Load*,
			// Store*, Swap*, CompareAndSwap*) takes the address first.
			if len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := fieldVarOf(p.Info, sel); v != nil {
				atomicFields[v] = append(atomicFields[v], sel)
				atomicSites[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Phase 2: every other occurrence of those fields is a plain access
	// racing with the atomic sites.
	type plain struct {
		sel   *ast.SelectorExpr
		field *types.Var
	}
	var plains []plain
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			v := fieldVarOf(p.Info, sel)
			if v == nil {
				return true
			}
			if _, tracked := atomicFields[v]; tracked {
				plains = append(plains, plain{sel, v})
			}
			return true
		})
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i].sel.Pos() < plains[j].sel.Pos() })
	for _, pl := range plains {
		p.Reportf(pl.sel.Pos(),
			"plain access to field %s, which is accessed via sync/atomic %s; every access must be atomic (or migrate the field to an atomic.* type)",
			fieldDesc(pl.field), posHint(p, atomicFields[pl.field][0]))
	}
}

// fieldDesc renders Struct.field for diagnostics.
func fieldDesc(v *types.Var) string {
	name := v.Name()
	// The owning struct is not directly recorded on the field var; the
	// package plus name is unambiguous enough for a diagnostic.
	if v.Pkg() != nil {
		return fmt.Sprintf("%s (package %s)", name, v.Pkg().Name())
	}
	return name
}

// posHint renders the first atomic access site ("at spill.go:191").
func posHint(p *Pass, n ast.Node) string {
	pos := p.Fset.Position(n.Pos())
	return fmt.Sprintf("at %s:%d", shortFile(pos.Filename), pos.Line)
}
