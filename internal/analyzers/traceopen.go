package analyzers

import (
	"go/ast"
	"strconv"
	"strings"
)

// TraceOpen flags calls to the deprecated trace read entry points —
// ReadFile, ReadFileMeta, ReadArena, NewDecoder — outside
// internal/trace itself. They survive as one-line wrappers for
// compatibility, but every caller in this repository goes through
// trace.Open, which serves both the monolithic and the segmented
// container; a caller on a wrapper is a caller that silently predates
// segmented streams.
var TraceOpen = &Analyzer{
	Name: "traceopen",
	Doc:  "deprecated trace read entry points (ReadFile/ReadFileMeta/ReadArena/NewDecoder); use trace.Open",
	Run:  runTraceOpen,
}

var deprecatedTraceReaders = map[string]bool{
	"ReadFile":     true,
	"ReadFileMeta": true,
	"ReadArena":    true,
	"NewDecoder":   true,
}

func runTraceOpen(p *Pass) {
	// The wrappers themselves (and their direct tests) live here.
	if p.Dir == "internal/trace" {
		return
	}
	for _, f := range p.Files {
		// Resolve the local name of the trace import; skip files that
		// don't import it (the method names are too generic to flag
		// unqualified).
		alias := traceImportName(f)
		if alias == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !deprecatedTraceReaders[sel.Sel.Name] {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != alias {
				return true
			}
			p.Reportf(call.Pos(), "deprecated trace.%s; use trace.Open (reads segmented captures too)", sel.Sel.Name)
			return true
		})
	}
}

// traceImportName returns the name the file refers to internal/trace
// by ("trace" unless aliased), or "" if the file does not import it.
func traceImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.HasSuffix(path, "internal/trace") {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "trace"
	}
	return ""
}
