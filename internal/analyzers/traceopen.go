package analyzers

import (
	"go/ast"
	"go/types"
)

// TraceOpen flags calls to the deprecated trace read entry points —
// ReadFile, ReadFileMeta, ReadArena, NewDecoder — outside
// internal/trace itself. They survive as one-line wrappers for
// compatibility, but every caller in this repository goes through
// trace.Open, which serves both the monolithic and the segmented
// container; a caller on a wrapper is a caller that silently predates
// segmented streams.
//
// The pass is type-aware: the callee must resolve to a function
// declared in internal/trace, so import aliasing is handled by object
// identity rather than import-name scanning, and a same-named function
// or method anywhere else is out of scope.
var TraceOpen = &Analyzer{
	Name: "traceopen",
	Doc:  "deprecated trace read entry points (ReadFile/ReadFileMeta/ReadArena/NewDecoder); use trace.Open",
	Run:  runTraceOpen,
}

var deprecatedTraceReaders = map[string]bool{
	"ReadFile":     true,
	"ReadFileMeta": true,
	"ReadArena":    true,
	"NewDecoder":   true,
}

func runTraceOpen(p *Pass) {
	// The wrappers themselves (and their direct tests) live here.
	if p.Dir == "internal/trace" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !deprecatedTraceReaders[fn.Name()] {
				return true
			}
			if fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/trace") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // a method sharing the name is not the wrapper
			}
			p.Reportf(call.Pos(), "deprecated trace.%s; use trace.Open (reads segmented captures too)", fn.Name())
			return true
		})
	}
}
