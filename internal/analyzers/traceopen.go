package analyzers

import (
	"go/ast"
	"go/types"
)

// TraceOpen keeps trace reading on the one public entry point. The
// deprecated one-call wrappers — ReadFile, ReadFileMeta, ReadArena,
// NewDecoder — were deleted once every caller had migrated to
// trace.Open (which serves both the monolithic and the segmented
// container); this pass makes the deletion stick in both directions:
//
//   - outside internal/trace, any call that resolves to a function with
//     one of those names declared in internal/trace is flagged — a
//     caller on a wrapper is a caller that silently predates segmented
//     streams;
//   - inside internal/trace, any top-level function *declaration* with
//     one of those names is flagged, so the wrappers cannot quietly
//     come back.
//
// The call check is type-aware: the callee must resolve to a function
// declared in internal/trace, so import aliasing is handled by object
// identity rather than import-name scanning, and a same-named function
// or method anywhere else is out of scope.
var TraceOpen = &Analyzer{
	Name: "traceopen",
	Doc:  "deleted trace read entry points (ReadFile/ReadFileMeta/ReadArena/NewDecoder); use trace.Open",
	Run:  runTraceOpen,
}

var deprecatedTraceReaders = map[string]bool{
	"ReadFile":     true,
	"ReadFileMeta": true,
	"ReadArena":    true,
	"NewDecoder":   true,
}

func runTraceOpen(p *Pass) {
	if p.Dir == "internal/trace" {
		// Inside the package the wrappers can only reappear as
		// declarations; flag those instead of call sites (package-local
		// helpers may legitimately share a name in tests).
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !deprecatedTraceReaders[fd.Name.Name] {
					continue
				}
				p.Reportf(fd.Name.Pos(), "reintroduced deleted entry point %s; fold it into trace.Open", fd.Name.Name)
			}
		}
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !deprecatedTraceReaders[fn.Name()] {
				return true
			}
			if fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/trace") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // a method sharing the name is not the wrapper
			}
			p.Reportf(call.Pos(), "deleted trace.%s; use trace.Open (reads segmented captures too)", fn.Name())
			return true
		})
	}
}
