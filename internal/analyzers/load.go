package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Dir is the slash-separated package directory relative to the
	// module root (e.g. "internal/trace"); analyzers use it for
	// package-allowlist rules and fixtures override it with // vet:dir.
	Dir string
	// Path is the import path (module path + "/" + Dir).
	Path  string
	Files []*ast.File
	// Types and Info carry the go/types results. Type checking is
	// tolerant — a package that does not fully check still yields
	// whatever objects resolved — so passes must treat missing type
	// information as "unknown", never as proof of cleanliness.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, type-checked module: every package under the
// root, checked in dependency order so that module-internal imports
// resolve to real type objects rather than stubs.
//
// The loader keeps the framework's zero-dependency rule: module
// packages are resolved from source by the loader itself, and standard
// library imports go through go/importer's source resolution (the
// stdlib analogue of golang.org/x/tools/go/packages, which is not
// vendored here). When a standard library package cannot be imported
// (no GOROOT source on a stripped machine), the loader substitutes an
// empty stub and type checking degrades gracefully: module-internal
// types still resolve, and the passes report only what they can prove.
type Module struct {
	Root string // absolute module root
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package

	cache map[string]*types.Package // import path -> checked package
	std   types.Importer
}

// LoadModule parses and type-checks every non-test package under root
// (recursively, skipping testdata and hidden directories), resolving
// module-internal imports in dependency order.
func LoadModule(root string) (*Module, error) {
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(absRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Root:  absRoot,
		Path:  modPath,
		Fset:  fset,
		cache: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil),
	}

	byDir, err := sourceFilesByDir(root)
	if err != nil {
		return nil, err
	}

	// Parse everything first so the import graph is known before any
	// type checking starts.
	type parsed struct {
		dir     string // module-relative, slash-separated
		files   []*ast.File
		imports map[string]bool // module-internal import paths
	}
	var pkgs []*parsed
	byPath := map[string]*parsed{}
	dirs := make([]string, 0, len(byDir))
	for d := range byDir {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		rel = filepath.ToSlash(rel)
		p := &parsed{dir: rel, imports: map[string]bool{}}
		sort.Strings(byDir[dir])
		for _, path := range byDir[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					p.imports[ip] = true
				}
			}
		}
		pkgs = append(pkgs, p)
		byPath[importPath(modPath, rel)] = p
	}

	// Topological order over module-internal imports (DFS postorder).
	// An import cycle would not compile, so it is a hard error here.
	const (
		white = iota
		grey
		black
	)
	state := map[*parsed]int{}
	var order []*parsed
	var visit func(p *parsed) error
	visit = func(p *parsed) error {
		switch state[p] {
		case grey:
			return fmt.Errorf("analyzers: import cycle through %s", p.dir)
		case black:
			return nil
		}
		state[p] = grey
		deps := make([]string, 0, len(p.imports))
		for ip := range p.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	for _, p := range order {
		pkg := m.check(importPath(modPath, p.dir), p.dir, p.files)
		m.Pkgs = append(m.Pkgs, pkg)
	}
	// Present packages in directory order regardless of check order, so
	// finding output is stable.
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Dir < m.Pkgs[j].Dir })
	return m, nil
}

// check type-checks one package tolerantly and registers it in the
// import cache under path.
func (m *Module) check(path, dir string, files []*ast.File) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: m,
		// Tolerant: collect nothing, keep checking. The build gate
		// (tier-1 go build) owns compile errors; the analyzers only
		// need whatever type information resolves.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(path, "_")
	}
	m.cache[path] = tpkg
	return &Package{Dir: dir, Path: path, Files: files, Types: tpkg, Info: info}
}

// CheckExtra type-checks a standalone package (analyzer fixtures)
// against the module: imports of module packages resolve to the real,
// already-loaded types. dir poses as the package's module-relative
// directory for allowlist rules. The package is not added to the
// module or its import cache.
func (m *Module) CheckExtra(dir string, files []*ast.File) *Package {
	// The synthetic import path must not collide with a real module
	// package: a fixture posing as internal/trace still imports the real
	// atum/internal/trace, and go/types treats a same-path import as a
	// self-import error.
	path := importPath(m.Path, dir) + "__fixture"
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: m, Error: func(error) {}}
	tpkg, _ := conf.Check(path, m.Fset, files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(path, "_")
	}
	return &Package{Dir: dir, Path: path, Files: files, Types: tpkg, Info: info}
}

// Import implements types.Importer: module packages come from the
// dependency-ordered cache, everything else from the stdlib source
// importer, degrading to an empty stub if that fails.
func (m *Module) Import(path string) (*types.Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		// Module package outside the walked tree (or a load-order bug):
		// stub it rather than abort the whole analysis.
		return m.stub(path), nil
	}
	pkg, err := m.std.Import(path)
	if err != nil {
		return m.stub(path), nil
	}
	m.cache[path] = pkg
	return pkg, nil
}

func (m *Module) stub(path string) *types.Package {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	m.cache[path] = pkg
	return pkg
}

func importPath(modPath, rel string) string {
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + rel
}

// modulePath reads the module path from go.mod at root.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analyzers: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyzers: no module line in %s/go.mod", root)
}

// sourceFilesByDir walks root and groups every non-test .go file by
// directory, skipping testdata and hidden directories.
func sourceFilesByDir(root string) (map[string][]string, error) {
	byDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		byDir[dir] = append(byDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return byDir, nil
}
