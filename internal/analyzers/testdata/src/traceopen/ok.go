// Clean fixtures for the traceopen analyzer.
package fixtures

import (
	"os"

	"atum/internal/trace"
)

func okOpen(f *os.File) {
	rd, _ := trace.Open(f)
	rd.Arena()
	rd.Records()
}

// A same-named method on an unrelated receiver is out of scope: only
// selector calls through the trace import are flagged.
type store struct{}

func (store) ReadFile(string) {}

func okNotTrace(s store) {
	s.ReadFile("x")
}
