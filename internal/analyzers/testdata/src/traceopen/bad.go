// vet:dir internal/trace
//
// Reintroducing a deleted one-call wrapper inside internal/trace is the
// only way a caller could come to exist again (a call to a function
// that does not exist is a build error, not an analyzer finding), so
// the declaration itself is the thing flagged.
package trace

import "io"

type rec struct{}

func ReadFile(r io.Reader) ([]rec, error) { // want "reintroduced deleted entry point ReadFile"
	return nil, nil
}

func ReadFileMeta(r io.Reader) ([]rec, string, error) { // want "reintroduced deleted entry point ReadFileMeta"
	return nil, "", nil
}

func ReadArena(r io.Reader) (any, string, error) { // want "reintroduced deleted entry point ReadArena"
	return nil, "", nil
}

func NewDecoder(r io.Reader) (any, error) { // want "reintroduced deleted entry point NewDecoder"
	return nil, nil
}
