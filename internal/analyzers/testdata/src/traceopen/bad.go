// Fixtures for the traceopen analyzer: deprecated trace read entry
// points called outside internal/trace.
package fixtures

import (
	"os"

	"atum/internal/trace"
)

func badReadFile(f *os.File) {
	trace.ReadFile(f)     // want "deprecated trace.ReadFile"
	trace.ReadFileMeta(f) // want "deprecated trace.ReadFileMeta"
	trace.ReadArena(f)    // want "deprecated trace.ReadArena"
	trace.NewDecoder(f)   // want "deprecated trace.NewDecoder"
}
