// Without the trace import, the names alone prove nothing: some other
// package's ReadFile is not our deprecated wrapper.
package fixtures

import "os"

func okOtherPackage() {
	os.ReadFile("x")
}
