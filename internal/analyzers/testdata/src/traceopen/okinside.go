// vet:dir internal/trace
//
// Inside internal/trace only declarations are checked: calls to
// same-named functions elsewhere (os.ReadFile here) and test helpers
// that merely wrap Open under a different name are fine.
package trace

import (
	"io"
	"os"

	"atum/internal/trace"
)

func okSamePackage(r io.Reader) {
	os.ReadFile("x")
	trace.Open(r)
}
