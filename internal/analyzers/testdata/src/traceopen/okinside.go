// vet:dir internal/trace
//
// The wrappers call each other inside internal/trace; the package is
// exempt so the deprecated implementations themselves don't trip the
// gate.
package trace

import (
	"os"

	"atum/internal/trace"
)

func okSamePackage(f *os.File) {
	trace.ReadFile(f)
	trace.ReadArena(f)
}
