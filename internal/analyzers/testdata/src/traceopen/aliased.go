// The analyzer resolves the local import name, so an aliased import
// of internal/trace is still caught.
package fixtures

import (
	"os"

	trc "atum/internal/trace"
)

func badAliased(f *os.File) {
	trc.ReadFile(f) // want "deprecated trace.ReadFile"
	trc.Open(f)     // fine: the unified entry point
}
