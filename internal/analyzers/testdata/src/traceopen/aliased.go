// vet:dir internal/trace
//
// A method sharing a deleted wrapper's name is not a reintroduction:
// the declaration check exempts receivers, mirroring the call check's
// method exemption outside the package.
package trace

import "io"

type store struct{}

func (store) ReadFile(string) {}
func (store) NewDecoder(r io.Reader) (any, error) {
	return nil, nil
}
