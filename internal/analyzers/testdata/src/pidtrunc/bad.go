// Fixtures for the pidtrunc analyzer: unguarded PID truncations.
package fixtures

func bad(pid int) uint8 {
	return uint8(pid) // want "truncates silently"
}

func badFlag(opts struct{ PID uint64 }) uint8 {
	return uint8(opts.PID) // want "truncates silently"
}

func badDeref(pid *int) uint8 {
	return uint8(*pid) // want "truncates silently"
}
