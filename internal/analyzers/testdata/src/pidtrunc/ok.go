// Clean fixtures for the pidtrunc analyzer.
package fixtures

func okMask(pid int) uint8 {
	return uint8(pid & 0xFF)
}

func okGuard(pid int) uint8 {
	if pid < 0 || pid > 255 {
		panic("pid out of range")
	}
	return uint8(pid)
}

func okGuardMax(pid uint64) uint8 {
	if pid > math.MaxUint8 {
		return 0
	}
	return uint8(pid)
}

func okNotPID(n int) uint8 {
	return uint8(n) // not PID-shaped: out of scope
}
