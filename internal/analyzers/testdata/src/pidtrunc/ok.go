// Clean fixtures for the pidtrunc analyzer.
package fixtures

import "math"

func okMask(pid int) uint8 {
	return uint8(pid & 0xFF)
}

func okGuard(pid int) uint8 {
	if pid < 0 || pid > 255 {
		panic("pid out of range")
	}
	return uint8(pid)
}

func okGuardMax(pid uint64) uint8 {
	if pid > math.MaxUint8 {
		return 0
	}
	return uint8(pid)
}

func okNotPID(n int) uint8 {
	return uint8(n) // not PID-shaped: out of scope
}

// With type information the pass now knows a uint8 operand cannot
// truncate, guard or no guard.
func okAlreadyNarrow(pid uint8) uint8 {
	return uint8(pid)
}
