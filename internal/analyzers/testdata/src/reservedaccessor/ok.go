// vet:dir internal/atum
// The collector itself is allowed to locate the reserved region.
package fixtures

import "atum/internal/micro"

func ok(m *micro.Machine) uint32 {
	return m.Mem.ReservedBase()
}
