// vet:dir internal/cache
// A simulation package peeking at the reserved trace region.
package fixtures

import "atum/internal/micro"

func bad(m *micro.Machine) uint32 {
	return m.Mem.ReservedBase() // want "outside the tracing layers"
}
