// vet:dir internal/cache
// A same-named method on an unrelated receiver is out of scope: the
// pass matches the ReservedBase method of internal/mem.Physical by
// object identity, not by name.
package fixtures

type fakeMem struct{}

func (fakeMem) ReservedBase() uint32 { return 0 }

func okUnrelated(f fakeMem) uint32 {
	return f.ReservedBase()
}
