// Fixtures for the tracerecord analyzer: literals that violate the
// Record field conventions. Type-checked against the real module, so
// the literal type is the genuine trace.Record.
package fixtures

import "atum/internal/trace"

func bad() {
	_ = trace.Record{Addr: 4, Width: 4}                             // want "does not set Kind"
	_ = trace.Record{Kind: trace.KindDRead, Addr: 4}                // want "does not set Width"
	_ = trace.Record{Kind: trace.KindIFetch, Addr: 0x200, PID: 1}   // want "does not set Width"
	_ = trace.Record{Kind: trace.KindCtxSwitch, Width: 1, Extra: 2} // want "markers carry Width 0"
	_ = trace.Record{Kind: trace.KindException, Width: 4}           // want "markers carry Width 0"
}
