// Clean fixtures for the tracerecord analyzer.
package fixtures

import "atum/internal/trace"

func ok(k trace.Kind, w uint8) {
	_ = trace.Record{Kind: trace.KindDRead, Addr: 4, Width: 4}
	_ = trace.Record{Kind: trace.KindCtxSwitch, PID: 1, Extra: 1}
	_ = trace.Record{Kind: trace.KindException, Width: 0, Extra: 0x40}
	_ = trace.Record{Kind: k, Addr: 4, Width: w}               // dynamic kind: not judged
	_ = trace.Record{}                                         // empty zero value: explicit enough
	_ = trace.Record{trace.KindDRead, 4, 4, 1, true, false, 0} // positional: all fields present
}

// A same-named type elsewhere is out of scope now that matching is by
// type identity, not by literal syntax.
type Record struct {
	Kind  int
	Addr  uint32
	Width uint8
}

func okOtherRecord() {
	_ = Record{Addr: 4, Width: 4} // no trace.Kind here: not ours
}
