// Clean fixtures for the guardedby analyzer.
package fixtures

import "sync"

type service struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	err   error // guarded by mu
	gauge int   // guarded by rw
	free  int   // unguarded: out of scope
}

func (s *service) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.err = err
}

func (s *service) snapshot() (error, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rw.RLock() // RLock counts: read-side access is still under the lock
	defer s.rw.RUnlock()
	return s.err, s.gauge
}

func (s *service) bumpFree() {
	s.free++ // no annotation, no complaint
}
