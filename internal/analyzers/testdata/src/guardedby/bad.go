// Fixtures for the guardedby analyzer: annotated fields reached
// without their lock. This mirrors SpillService's sinkErr/closed
// state, which is meaningful only under its mutex.
package fixtures

import "sync"

type service struct {
	mu     sync.Mutex
	err    error // guarded by mu
	closed bool  // guarded by mu
}

func (s *service) fail(err error) {
	s.err = err // want "access to s.err outside s.mu.Lock"
}

func (s *service) isClosed() bool {
	return s.closed // want "access to s.closed outside s.mu.Lock"
}

type typoed struct {
	mu  sync.Mutex
	err error // guarded by lock // want "not a sibling field"
}
