// vet:dir internal/sim
// A package outside internal/obs may charge cycles freely — that is
// what the machine's cost model is for.
package fixtures

import "atum/internal/micro"

func step(m *micro.Machine) {
	m.Cycles += 2
	m.ChargeCycles(3)
}
