// vet:dir internal/obs
// Clean fixtures for the cyclepurity analyzer: reading the clock is
// fine — observation must be free, not blind.
package fixtures

import "atum/internal/micro"

type gauge struct{ m *micro.Machine }

func (g *gauge) sample() uint64 {
	return g.m.Cycles // reads are pure
}

func (g *gauge) drift(base uint64) uint64 {
	d := g.m.Cycles - base
	return d
}
