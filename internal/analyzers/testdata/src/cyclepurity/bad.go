// vet:dir internal/obs
// Fixtures for the cyclepurity analyzer: telemetry code that charges
// simulated cycles, directly and through a helper chain.
package fixtures

import "atum/internal/micro"

type hook struct{ m *micro.Machine }

func (h *hook) observe() {
	h.m.Cycles += 4 // want "write to Machine.Cycles reachable from internal/obs"
}

func (h *hook) tick() {
	h.m.ChargeCycles(1) // want "call to Machine.ChargeCycles reachable from internal/obs"
}

func (h *hook) indirect() {
	chargeViaHelper(h.m)
}

// Every function declared here is itself an obs root, so the path is
// one name deep; TestCyclePurityCrossPackage covers multi-hop chains
// into another package.
func chargeViaHelper(m *micro.Machine) {
	m.Cycles++ // want "write to Machine.Cycles reachable from internal/obs .path: chargeViaHelper"
}
