// Fixtures for the atomicfield analyzer. This is the exact shape
// SpillService had before PR 5 migrated its counters to atomic.Uint64:
// plain uint64 fields incremented directly on the spill path and read
// through sync/atomic from the polling path. The race detector needs a
// test to poll mid-capture to see it; the analyzer sees it statically.
package fixtures

import "sync/atomic"

type spillService struct {
	spilled uint64
	lost    uint64
}

func (s *spillService) spillOne(dropped bool) {
	s.spilled++ // want "plain access to field spilled"
	if dropped {
		s.lost += 1 // want "plain access to field lost"
	}
}

func (s *spillService) stats() (uint64, uint64) {
	return atomic.LoadUint64(&s.spilled), atomic.LoadUint64(&s.lost)
}

func (s *spillService) reset() {
	s.spilled = 0 // want "plain access to field spilled"
	s.lost = 0    // want "plain access to field lost"
}
