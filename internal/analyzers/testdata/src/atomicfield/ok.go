// Clean fixtures for the atomicfield analyzer.
package fixtures

import "sync/atomic"

// Consistently atomic plain-typed fields are fine: the pass objects to
// mixing, not to the sync/atomic call style itself.
type consistent struct {
	n uint64
}

func (c *consistent) add()           { atomic.AddUint64(&c.n, 1) }
func (c *consistent) load() uint64   { return atomic.LoadUint64(&c.n) }
func (c *consistent) store(v uint64) { atomic.StoreUint64(&c.n, v) }

// The post-PR-5 shape: atomic.* typed fields are always safe — every
// access goes through the type's methods, so phase 1 never tracks them.
type migrated struct {
	n atomic.Uint64
}

func (m *migrated) add()         { m.n.Add(1) }
func (m *migrated) load() uint64 { return m.n.Load() }

// A field never touched atomically is out of scope entirely.
type plainOnly struct {
	n uint64
}

func (p *plainOnly) bump() { p.n++ }
