package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// ReservedAccessor restricts who may call mem.Physical.ReservedBase: the
// reserved region is the ATUM trace buffer, and the invariant that makes
// captured traces trustworthy is that only the collector writes it and
// only the kernel's frame accounting knows where it starts. A simulator
// or analysis package reading ReservedBase is almost always about to
// peek at (or scribble on) trace memory behind the collector's back.
//
// The pass is type-aware: the callee must resolve to the ReservedBase
// method declared on internal/mem.Physical, so an unrelated method that
// happens to share the name is out of scope.
var ReservedAccessor = &Analyzer{
	Name: "reservedaccessor",
	Doc:  "only the tracing layers (internal/atum, internal/kernel, internal/mem) may call ReservedBase",
	Run:  runReservedAccessor,
}

// reservedAllowed lists package directories permitted to call the
// accessor: the collector, the kernel frame accounting, and the memory
// package that defines it.
var reservedAllowed = map[string]bool{
	"internal/atum":   true,
	"internal/kernel": true,
	"internal/mem":    true,
}

func runReservedAccessor(p *Pass) {
	if reservedAllowed[p.Dir] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Name() != "ReservedBase" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() == nil || !isNamedType(sig.Recv().Type(), "internal/mem", "Physical") {
				return true
			}
			p.Reportf(call.Pos(), "call to ReservedBase outside the tracing layers (%s); go through atum.Collector instead",
				strings.Join(allowedList(), ", "))
			return true
		})
	}
}

func allowedList() []string {
	return []string{"internal/atum", "internal/kernel", "internal/mem"}
}
