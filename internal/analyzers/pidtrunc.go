package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// PIDTrunc flags uint8(x) conversions where x is PID-shaped and nothing
// in the enclosing function bounds it first. Trace records carry an
// 8-bit PID; converting a wider PID (a flag value, a loop index) without
// a range check silently wraps at 256 and attributes references to the
// wrong process. A conversion is considered guarded when the operand is
// masked (x & 0xFF) or the function compares a PID-shaped value against
// the 8-bit limit before converting.
var PIDTrunc = &Analyzer{
	Name: "pidtrunc",
	Doc:  "uint8 conversions of PID values require a bounds check or explicit mask",
	Run:  runPIDTrunc,
}

func runPIDTrunc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guarded := hasPIDGuard(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "uint8" {
					return true
				}
				arg := call.Args[0]
				if !isPIDExpr(arg) || isMasked(arg) || guarded {
					return true
				}
				p.Reportf(call.Pos(), "uint8 conversion of PID value truncates silently; bounds-check or mask it first")
				return true
			})
		}
	}
}

// isPIDExpr reports whether the expression names a PID: an identifier or
// selector whose terminal name contains "pid" case-insensitively.
// Masked expressions recurse into their operand.
func isPIDExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "pid")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "pid")
	case *ast.StarExpr:
		return isPIDExpr(e.X)
	case *ast.ParenExpr:
		return isPIDExpr(e.X)
	case *ast.BinaryExpr:
		return isPIDExpr(e.X) || isPIDExpr(e.Y)
	}
	return false
}

// isMasked reports whether the operand is explicitly masked to 8 bits.
func isMasked(e ast.Expr) bool {
	if pe, ok := e.(*ast.ParenExpr); ok {
		return isMasked(pe.X)
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.AND {
		return false
	}
	return is8BitLimit(b.X) || is8BitLimit(b.Y)
}

// hasPIDGuard reports whether the function body compares a PID-shaped
// expression against the 8-bit limit anywhere (a bounds check like
// `if pid > 255 { ... }` or `pid <= math.MaxUint8`).
func hasPIDGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if (isPIDExpr(b.X) && is8BitLimit(b.Y)) || (isPIDExpr(b.Y) && is8BitLimit(b.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// is8BitLimit matches the literals and names used as 8-bit bounds:
// 255, 256, 0xFF, 0x100, math.MaxUint8.
func is8BitLimit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		switch strings.ToLower(e.Value) {
		case "255", "256", "0xff", "0x100":
			return true
		}
	case *ast.SelectorExpr:
		return e.Sel.Name == "MaxUint8"
	}
	return false
}
