package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PIDTrunc flags uint8(x) conversions where x is PID-shaped and nothing
// in the enclosing function bounds it first. Trace records carry an
// 8-bit PID; converting a wider PID (a flag value, a loop index) without
// a range check silently wraps at 256 and attributes references to the
// wrong process. A conversion is considered guarded when the operand is
// masked (x & 0xFF) or the function compares a PID-shaped value against
// the 8-bit limit before converting.
//
// The pass is type-aware: only genuine conversions to a uint8-underlying
// type are considered (a call to a function named uint8 is not), and a
// conversion whose operand is already 8 bits wide is harmless and
// skipped — truncation requires a wider integer coming in.
var PIDTrunc = &Analyzer{
	Name: "pidtrunc",
	Doc:  "uint8 conversions of PID values require a bounds check or explicit mask",
	Run:  runPIDTrunc,
}

func runPIDTrunc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guarded := hasPIDGuard(fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if !p.isUint8Conversion(call) {
					return true
				}
				arg := call.Args[0]
				if p.isNarrowAlready(arg) {
					return true // converting an 8-bit value loses nothing
				}
				if !isPIDExpr(arg) || isMasked(arg) || guarded {
					return true
				}
				p.Reportf(call.Pos(), "uint8 conversion of PID value truncates silently; bounds-check or mask it first")
				return true
			})
		}
	}
}

// isUint8Conversion reports whether the call is a type conversion to a
// type whose underlying type is uint8. With full type information the
// conversion-ness is exact; without it (a fixture that does not check)
// the bare name uint8 is accepted.
func (p *Pass) isUint8Conversion(call *ast.CallExpr) bool {
	if p.Info != nil {
		if tv, ok := p.Info.Types[call.Fun]; ok {
			if !tv.IsType() {
				return false
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			return ok && (b.Kind() == types.Uint8)
		}
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "uint8"
}

// isNarrowAlready reports whether the operand's type is already no wider
// than 8 bits, making the conversion lossless.
func (p *Pass) isNarrowAlready(arg ast.Expr) bool {
	t := p.typeOf(arg)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint8, types.Int8, types.Bool:
		return true
	}
	return false
}

// isPIDExpr reports whether the expression names a PID: an identifier or
// selector whose terminal name contains "pid" case-insensitively.
// Masked expressions recurse into their operand.
func isPIDExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "pid")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "pid")
	case *ast.StarExpr:
		return isPIDExpr(e.X)
	case *ast.ParenExpr:
		return isPIDExpr(e.X)
	case *ast.BinaryExpr:
		return isPIDExpr(e.X) || isPIDExpr(e.Y)
	}
	return false
}

// isMasked reports whether the operand is explicitly masked to 8 bits.
func isMasked(e ast.Expr) bool {
	if pe, ok := e.(*ast.ParenExpr); ok {
		return isMasked(pe.X)
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.AND {
		return false
	}
	return is8BitLimit(b.X) || is8BitLimit(b.Y)
}

// hasPIDGuard reports whether the function body compares a PID-shaped
// expression against the 8-bit limit anywhere (a bounds check like
// `if pid > 255 { ... }` or `pid <= math.MaxUint8`).
func hasPIDGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if (isPIDExpr(b.X) && is8BitLimit(b.Y)) || (isPIDExpr(b.Y) && is8BitLimit(b.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// is8BitLimit matches the literals and names used as 8-bit bounds:
// 255, 256, 0xFF, 0x100, math.MaxUint8.
func is8BitLimit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		switch strings.ToLower(e.Value) {
		case "255", "256", "0xff", "0x100":
			return true
		}
	case *ast.SelectorExpr:
		return e.Sel.Name == "MaxUint8"
	}
	return false
}
