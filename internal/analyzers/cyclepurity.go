package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CyclePurity proves the "telemetry never charges simulated cycles"
// invariant statically: no function reachable on the static call graph
// from internal/obs may write micro.Machine.Cycles — neither a direct
// assignment (m.Cycles += n, m.Cycles++) nor a call to
// Machine.ChargeCycles. PR 5 pins this dynamically
// (TestMetricsOffMeasurementPath compares DilationCycles against
// Recorded×CostPerRecord); this pass pins it at vet time, so a future
// obs hook that reaches back into the machine fails the build gate, not
// a measurement.
//
// The call graph covers direct calls (identifiers and selectors that
// resolve to a *types.Func); calls through function values are not
// resolved, which is safe here because obs deliberately holds no
// function-typed hooks — if one appears, this doc is the reminder that
// the pass must grow with it.
var CyclePurity = &Analyzer{
	Name:      "cyclepurity",
	Doc:       "no function reachable from internal/obs may write Machine.Cycles or call ChargeCycles",
	RunModule: runCyclePurity,
}

// obsDir is the package whose reachable set must stay cycle-pure.
const obsDir = "internal/obs"

func runCyclePurity(p *ModulePass) {
	// Collect every function declaration in the module, keyed by its
	// type object, together with the Info of its declaring package
	// (needed to resolve calls inside its body).
	type fnDecl struct {
		decl *ast.FuncDecl
		pkg  *Package
	}
	decls := map[*types.Func]fnDecl{}
	var roots []*types.Func
	for _, pkg := range p.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj] = fnDecl{fd, pkg}
				if pkg.Dir == obsDir {
					roots = append(roots, obj)
				}
			}
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })

	// BFS over direct call edges, remembering one parent per function so
	// a finding can show the path from obs.
	parent := map[*types.Func]*types.Func{}
	seen := map[*types.Func]bool{}
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(fd.pkg.Info, call)
			if callee == nil {
				return true
			}
			if _, declared := decls[callee]; !declared || seen[callee] {
				return true
			}
			seen[callee] = true
			parent[callee] = fn
			queue = append(queue, callee)
			return true
		})
	}

	// Scan every reachable body for cycle writes.
	reachable := make([]*types.Func, 0, len(seen))
	for fn := range seen {
		reachable = append(reachable, fn)
	}
	sort.Slice(reachable, func(i, j int) bool { return reachable[i].Pos() < reachable[j].Pos() })
	for _, fn := range reachable {
		fd := decls[fn]
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && isCyclesField(fd.pkg.Info, sel) {
						p.Reportf(n.Pos(), "write to Machine.Cycles reachable from %s (%s)", obsDir, pathTo(fn, parent))
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && isCyclesField(fd.pkg.Info, sel) {
					p.Reportf(n.Pos(), "write to Machine.Cycles reachable from %s (%s)", obsDir, pathTo(fn, parent))
				}
			case *ast.CallExpr:
				if callee := calleeFunc(fd.pkg.Info, n); callee != nil && isChargeCycles(callee) {
					p.Reportf(n.Pos(), "call to Machine.ChargeCycles reachable from %s (%s)", obsDir, pathTo(fn, parent))
				}
			}
			return true
		})
	}
}

// isCyclesField reports whether the selector selects the Cycles field
// of internal/micro.Machine.
func isCyclesField(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Cycles" {
		return false
	}
	v := fieldVarOf(info, sel)
	if v == nil || v.Pkg() == nil {
		return false
	}
	return pathHasSuffix(v.Pkg().Path(), "internal/micro")
}

// isChargeCycles reports whether fn is the ChargeCycles method of
// internal/micro.Machine.
func isChargeCycles(fn *types.Func) bool {
	if fn.Name() != "ChargeCycles" || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/micro") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && isNamedType(sig.Recv().Type(), "internal/micro", "Machine")
}

// pathTo renders the call chain from an obs root to fn.
func pathTo(fn *types.Func, parent map[*types.Func]*types.Func) string {
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, f.Name())
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return "path: " + strings.Join(chain, " -> ")
}
