package analyzers

import (
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedBy enforces lock annotations: a struct field whose declaration
// carries a `// guarded by <mu>` comment (where <mu> names a sibling
// mutex field) may only be accessed inside a function that locks that
// mutex on the same receiver chain. This is the second invariant class
// PR 5 repaired at runtime: SpillService's sinkErr/closed state is
// meaningful only under its mutex, and a new accessor that forgets the
// lock compiles silently today.
//
// The check is lexical within a function, not flow-sensitive: a
// function that contains `x.mu.Lock()` (or RLock) anywhere is treated
// as holding the lock for all its accesses through base expression x.
// That is the same contract clang's GUARDED_BY thread-safety analysis
// enforces at -Wthread-safety's default strictness, and it is exactly
// right for the short lock-scoped accessor shapes this codebase uses.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` are only accessed in functions that lock <mu>",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runGuardedBy(p *Pass) {
	if p.Info == nil {
		return
	}
	// Collect annotations: field object -> guard field name.
	guards := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fd := range st.Fields.List {
				for _, name := range fd.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fd := range st.Fields.List {
				mu := annotationGuard(fd)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					p.Reportf(fd.Pos(), "guarded-by annotation names %q, which is not a sibling field", mu)
					continue
				}
				for _, name := range fd.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Check every access against the locks its enclosing function takes.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locked := lockedGuards(p.Info, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v := fieldVarOf(p.Info, sel)
				if v == nil {
					return true
				}
				mu, guarded := guards[v]
				if !guarded {
					return true
				}
				key := types.ExprString(ast.Unparen(sel.X)) + "." + mu
				if !locked[key] {
					p.Reportf(sel.Pos(), "access to %s.%s outside %s.Lock() (field is guarded by %s)",
						types.ExprString(ast.Unparen(sel.X)), sel.Sel.Name, key, mu)
				}
				return true
			})
		}
	}
}

// annotationGuard extracts the guard name from a field's doc or line
// comment.
func annotationGuard(fd *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fd.Doc, fd.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockedGuards returns the set of "<base>.<mu>" chains the function
// body locks via Lock or RLock calls.
func lockedGuards(info *types.Info, body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		locked[types.ExprString(ast.Unparen(sel.X))] = true
		return true
	})
	return locked
}
