package analyzers

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// wantRe matches the expectation comments in fixtures:  // want "regex"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// dirRe matches the package-directory directive used by analyzers with
// allowlists:  // vet:dir internal/cache
var dirRe = regexp.MustCompile(`// vet:dir (\S+)`)

// loadTestModule loads the real module once per test binary: fixtures
// type-check against it, so an import of atum/internal/trace in a
// fixture resolves to the genuine Record type.
var loadTestModule = sync.OnceValues(func() (*Module, error) {
	return LoadModule(filepath.Join("..", ".."))
})

// TestGolden runs each analyzer over its fixture directory. Every
// finding must match a same-line `// want "regex"` comment and every
// want comment must be hit — the analysistest contract, re-implemented
// over the stdlib parser and type checker.
func TestGolden(t *testing.T) {
	mod, err := loadTestModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			files, err := filepath.Glob(filepath.Join("testdata", "src", a.Name, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("no fixtures for %s: %v", a.Name, err)
			}
			for _, path := range files {
				runGoldenFile(t, mod, a, path)
			}
		})
	}
}

func runGoldenFile(t *testing.T, mod *Module, a *Analyzer, path string) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := "testpkg"
	if m := dirRe.FindSubmatch(src); m != nil {
		dir = string(m[1])
	}
	type want struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[int][]*want{} // line -> expectations
	for i, line := range strings.Split(string(src), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			wants[i+1] = append(wants[i+1], &want{re: re})
		}
	}

	f, err := parser.ParseFile(mod.Fset, path, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	pkg := mod.CheckExtra(dir, []*ast.File{f})
	var findings []Finding
	if a.Run != nil {
		a.Run(&Pass{
			Fset: mod.Fset, Dir: pkg.Dir, Files: pkg.Files,
			Pkg: pkg.Types, Info: pkg.Info,
			findings: &findings, analyzer: a.Name,
		})
	}
	if a.RunModule != nil {
		a.RunModule(&ModulePass{
			Fset: mod.Fset, Pkgs: []*Package{pkg},
			findings: &findings, analyzer: a.Name,
		})
	}

	for _, fd := range findings {
		matched := false
		for _, w := range wants[fd.Pos.Line] {
			if !w.hit && w.re.MatchString(fd.Msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", path, fd)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected finding matching %q, got none", path, line, w.re)
			}
		}
	}
}

// TestRepoClean gates the codebase on its own analyzers: the whole
// module must produce zero findings. The engine runs per-package passes
// concurrently, so the CI -race run of this test doubles as the race
// gate on the analyzer engine itself.
func TestRepoClean(t *testing.T) {
	mod, err := loadTestModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunModule(mod, All()) {
		t.Errorf("%s", f)
	}
}
