package kernel

import (
	"fmt"
	"strings"
	"testing"

	"atum/internal/micro"
)

func TestExitStatus(t *testing.T) {
	s := boot(t, DefaultConfig(), asm(t, `
	.org	0x200
start:	movl	#42, r1
	chmk	#0
`))
	st, err := s.ExitStatus(s.Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st != 42 {
		t.Errorf("exit status = %d, want 42", st)
	}
}

func TestKilledStatus(t *testing.T) {
	s := boot(t, DefaultConfig(), asm(t, `
	.org	0x200
start:	clrl	r1
	movl	(r1), r2	; null deref
	chmk	#0
`))
	st, _ := s.ExitStatus(s.Procs[0])
	if st != KilledStatus {
		t.Errorf("killed status = %#x, want %#x", st, KilledStatus)
	}
}

func TestNapSleepsAndWakes(t *testing.T) {
	// A napper and a spinner: the napper sleeps 3 ticks, the spinner
	// burns CPU; both must finish, and the napper's nap must span
	// several of the spinner's quanta (its output comes last).
	napper := `
	.org	0x200
start:	movl	#8, r1
	chmk	#5		; nap(8 ticks)
	moval	m, r1
	movl	#1, r2
	chmk	#1
	chmk	#0
m:	.ascii	"N"
`
	spinner := `
	.org	0x200
start:	movl	#8, r6
loop:	movl	#400, r7
spin:	sobgtr	r7, spin
	moval	m, r1
	movl	#1, r2
	chmk	#1
	sobgtr	r6, loop
	chmk	#0
m:	.ascii	"S"
`
	cfg := DefaultConfig()
	cfg.ICRCycles = 3000
	cfg.QuantumTicks = 1
	s := boot(t, cfg, asm(t, napper), asm(t, spinner))
	got := s.Console()
	if len(got) != 9 {
		t.Fatalf("console = %q", got)
	}
	if strings.IndexByte(got, 'N') < 2 {
		t.Errorf("napper did not sleep: %q", got)
	}
}

func TestNapAllProcessesIdle(t *testing.T) {
	// Every process naps simultaneously: the kernel must idle through
	// the quiet period rather than halting, then finish.
	src := `
	.org	0x200
start:	movl	#2, r1
	chmk	#5
	moval	m, r1
	movl	#1, r2
	chmk	#1
	chmk	#0
m:	.ascii	"z"
`
	s := boot(t, DefaultConfig(), asm(t, src), asm(t, src))
	if got := s.Console(); got != "zz" {
		t.Errorf("console = %q", got)
	}
}

func TestPipeTransfersData(t *testing.T) {
	writer := `
	.org	0x200
start:	moval	msg, r1
	movl	#16, r2
wr:	chmk	#6		; pipewrite
	tstl	r0
	beql	wr		; full: retry (kernel blocks us anyway)
	addl2	r0, r1
	subl2	r0, r2
	tstl	r2
	bgtr	wr
	chmk	#0
msg:	.ascii	"pipes-carry-data"
`
	reader := `
	.org	0x200
start:	movl	#16, r6		; bytes expected
	moval	buf, r7
rd:	movl	r7, r1
	movl	r6, r2
	chmk	#7		; piperead (blocks until data)
	addl2	r0, r7
	subl2	r0, r6
	tstl	r6
	bgtr	rd
	moval	buf, r1
	movl	#16, r2
	chmk	#1		; echo to console
	chmk	#0
buf:	.space	16
`
	s := boot(t, DefaultConfig(), asm(t, writer), asm(t, reader))
	if got := s.Console(); got != "pipes-carry-data" {
		t.Errorf("console = %q", got)
	}
}

func TestPipeBlockingBackpressure(t *testing.T) {
	// Writer pushes 600 bytes through the 256-byte pipe; reader drains
	// slowly. Blocking (state 4/5) must engage, and every byte arrives
	// in order.
	writer := `
	.org	0x200
start:	movl	#600, r6	; total bytes
	clrl	r7		; rolling value
wloop:	movb	r7, ch
	moval	ch, r1
	movl	#1, r2
wr:	chmk	#6
	tstl	r0
	beql	wr
	incl	r7
	bicl2	#0xffffff80, r7	; keep 0..127
	sobgtr	r6, wloop
	chmk	#0
ch:	.byte	0
`
	reader := `
	.org	0x200
start:	movl	#600, r6
	clrl	r7		; expected value
	clrl	r8		; error count
rloop:	moval	ch, r1
	movl	#1, r2
	chmk	#7
	movzbl	ch, r3
	cmpl	r3, r7
	beql	ok
	incl	r8
ok:	incl	r7
	bicl2	#0xffffff80, r7
	sobgtr	r6, rloop
	tstl	r8
	bneq	bad
	moval	okm, r1
	movl	#2, r2
	chmk	#1
bad:	chmk	#0
ch:	.byte	0
okm:	.ascii	"OK"
`
	s := boot(t, DefaultConfig(), asm(t, writer), asm(t, reader))
	if got := s.Console(); got != "OK" {
		t.Errorf("console = %q (data corrupted or lost)", got)
	}
}

func TestPageStealingUnderPressure(t *testing.T) {
	// Machine with very little memory; one process touches far more
	// pages than fit. The kernel must steal+swap rather than halt, the
	// workload must still compute correctly, and swap traffic must be
	// visible.
	src := `
	.org	0x200
start:	movl	#120, r1
	chmk	#2		; sbrk(120 pages) ~ 60KB
	movl	r0, r7
	; write a value into each page
	movl	#120, r6
	movl	r7, r8
	clrl	r9
w1:	movl	r9, (r8)
	addl2	#512, r8
	incl	r9
	sobgtr	r6, w1
	; read them all back and check (forces swap-ins)
	movl	#120, r6
	movl	r7, r8
	clrl	r9
	clrl	r10		; errors
r1l:	cmpl	(r8), r9
	beql	r1ok
	incl	r10
r1ok:	addl2	#512, r8
	incl	r9
	sobgtr	r6, r1l
	tstl	r10
	bneq	fail
	moval	okm, r1
	movl	#2, r2
	chmk	#1
fail:	chmk	#0
okm:	.ascii	"OK"
`
	cfg := DefaultConfig()
	cfg.Machine.MemSize = 1 << 20
	cfg.Machine.ReservedSize = 64 << 10
	cfg.Machine.TBEntries = 64
	cfg.FreeFrameCap = 60 // the workload needs 120+: stealing is forced
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("pagestress", asm(t, src), 128); err != nil {
		t.Fatal(err)
	}
	if err := sys.Finalize(); err != nil {
		t.Fatal(err)
	}
	free, _ := sys.FreeFrames()
	if free >= 120 {
		t.Fatalf("pressure knob broken: %d free frames", free)
	}
	reason, err := sys.Run(200_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sys.M.State())
	}
	if reason != micro.StopHalt {
		t.Fatalf("stopped: %v", reason)
	}
	if got := sys.Console(); got != "OK" {
		t.Errorf("console = %q (swapped data corrupted)", got)
	}
	reads, writes := sys.SwapActivity()
	if reads == 0 || writes == 0 {
		t.Errorf("no swap traffic: reads=%d writes=%d", reads, writes)
	}
}

func TestRusageSyscallAndAccounting(t *testing.T) {
	// The program forces one page fault (stack touch), makes a known
	// number of syscalls, then asks the kernel for its own accounting
	// and prints the fault count.
	src := `
	.org	0x200
start:	movl	sp, r1
	subl2	#0x1000, r1
	movl	#1, (r1)	; one demand-zero stack fault
	chmk	#3		; yield (syscall 2 incl. this? count below)
	moval	buf, r1
	chmk	#8		; rusage -> buf
	movl	buf+4, r0	; faults
	addl2	#0x30, r0
	movb	r0, ch
	moval	ch, r1
	movl	#1, r2
	chmk	#1
	chmk	#0
	.align	4
buf:	.space	12
ch:	.byte	0
`
	s := boot(t, DefaultConfig(), asm(t, src))
	if got := s.Console(); got != "1" {
		t.Errorf("fault count via rusage = %q, want \"1\"", got)
	}
	// Go-side accessor agrees.
	calls, faults, switches, err := s.Rusage(s.Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	// yield + rusage + write + exit = 4 syscalls.
	if calls != 4 {
		t.Errorf("syscalls = %d, want 4", calls)
	}
	if faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
	if switches < 2 { // initial dispatch + after the yield
		t.Errorf("switches = %d, want >= 2", switches)
	}
}

func TestMOVC3RestartAcrossPageFault(t *testing.T) {
	// MOVC3 copies a 1.5-page block into untouched heap: the destination
	// pages fault mid-copy, the pager demand-zeroes them, and the FPD
	// machinery resumes the copy instead of restarting it. The copied
	// data must be intact.
	src := `
	.org	0x200
start:	movl	#4, r1
	chmk	#2		; sbrk(4 pages) -> r0 (pages stay... mapped eagerly)
	movl	r0, r7
	; build a 768-byte source pattern on page boundary in static data
	moval	pat, r2
	movl	#768, r3
	clrl	r4
pf:	movb	r4, (r2)+
	incl	r4
	sobgtr	r3, pf
	; copy into the stack region far below SP: pages are unmapped and
	; demand-zero on first touch, so the copy faults midway.
	movl	sp, r8
	subl2	#0x1800, r8	; 12 pages down
	movc3	#768, pat, (r8)
	; verify
	movl	#768, r3
	movl	r8, r2
	clrl	r4
	clrl	r9
pv:	movzbl	(r2)+, r5
	cmpl	r5, r4
	beql	pv1
	incl	r9
pv1:	incl	r4
	bicl2	#0xffffff00, r4
	sobgtr	r3, pv
	tstl	r9
	bneq	bad
	moval	okm, r1
	movl	#2, r2
	chmk	#1
bad:	chmk	#0
okm:	.ascii	"OK"
	.align	4
pat:	.space	768
`
	cfg := DefaultConfig()
	cfg.MaxStackPages = 64
	cfg.InitialStackPages = 1
	s := boot(t, cfg, asm(t, src))
	if got := s.Console(); got != "OK" {
		t.Errorf("console = %q (MOVC3 restart corrupted the copy)", got)
	}
	if s.M.MMU.Stats.Faults == 0 {
		t.Error("no faults occurred; test exercised nothing")
	}
}

func TestCMPC3RestartAcrossPageFault(t *testing.T) {
	// Same idea for the compare: faulting mid-compare must not change
	// the verdict.
	src := `
	.org	0x200
start:	movl	sp, r8
	subl2	#0x1800, r8	; unmapped stack page
	movc3	#600, pat, (r8)	; populate via copy (faults, fills)
	cmpc3	#600, pat, (r8)	; then compare; should be equal
	bneq	bad
	moval	okm, r1
	movl	#2, r2
	chmk	#1
bad:	chmk	#0
okm:	.ascii	"OK"
	.align	4
pat:	.space	600
`
	s := boot(t, DefaultConfig(), asm(t, src))
	if got := s.Console(); got != "OK" {
		t.Errorf("console = %q", got)
	}
}

func TestMemoryPressureWithMultiprogramming(t *testing.T) {
	// Two pagestress-like processes on a small machine: page stealing
	// crosses process boundaries, and both must still compute correctly.
	mk := func(pages int) string {
		return fmt.Sprintf(`
	.org	0x200
start:	movl	#%d, r1
	chmk	#2
	movl	r0, r7
	movl	#%d, r6
	movl	r7, r8
	clrl	r9
w:	movl	r9, (r8)
	addl2	#512, r8
	incl	r9
	sobgtr	r6, w
	movl	#%d, r6
	movl	r7, r8
	clrl	r9
v:	cmpl	(r8), r9
	bneq	bad
	addl2	#512, r8
	incl	r9
	sobgtr	r6, v
	moval	ok, r1
	movl	#1, r2
	chmk	#1
bad:	chmk	#0
ok:	.ascii	"Y"
`, pages, pages, pages)
	}
	cfg := DefaultConfig()
	cfg.Machine.MemSize = 1 << 20
	cfg.Machine.ReservedSize = 64 << 10
	cfg.Machine.TBEntries = 64
	cfg.FreeFrameCap = 70 // both processes need 120 pages total
	// Short quantum so the processes genuinely overlap: kernel time does
	// not consume quantum, and with the default 50k-cycle quantum the
	// first process would run to exit (and reclaim) before the second
	// ever allocated.
	cfg.ICRCycles = 2000
	cfg.QuantumTicks = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sys.Spawn("ps", asm(t, mk(60)), 80); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Finalize(); err != nil {
		t.Fatal(err)
	}
	reason, err := sys.Run(500_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sys.M.State())
	}
	if reason != micro.StopHalt {
		t.Fatalf("stopped: %v", reason)
	}
	if got := sys.Console(); got != "YY" {
		t.Errorf("console = %q, want YY (cross-process steal corrupted data)", got)
	}
	reads, writes := sys.SwapActivity()
	if reads == 0 || writes == 0 {
		t.Errorf("no swap under pressure: r=%d w=%d", reads, writes)
	}
}

func TestKernelClockNotPreemptedDuringIdle(t *testing.T) {
	// Regression: with everyone napping, clock interrupts land in the
	// kernel's idle loop; they must not corrupt any process context.
	src := `
	.org	0x200
start:	movl	#5, r1
	chmk	#5
	chmk	#4		; getpid -> r0
	addl2	#0x30, r0
	movb	r0, m
	moval	m, r1
	movl	#1, r2
	chmk	#1
	chmk	#0
m:	.byte	0
`
	cfg := DefaultConfig()
	cfg.ICRCycles = 2000
	s := boot(t, cfg, asm(t, src), asm(t, src), asm(t, src))
	got := s.Console()
	if len(got) != 3 {
		t.Fatalf("console = %q", got)
	}
	for _, want := range []string{"1", "2", "3"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing pid %s in %q (context corrupted?)", want, got)
		}
	}
}
