package kernel_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"atum/internal/atum"
	"atum/internal/cache"
	"atum/internal/kernel"
	"atum/internal/sweep"
	"atum/internal/trace"
)

// collectSim accumulates the records a pipeline feeds it (copying
// element values, so the pipeline's buffer reuse is safe).
type collectSim struct{ recs []trace.Record }

func (c *collectSim) Feed(chunk []trace.Record) error {
	c.recs = append(c.recs, chunk...)
	return nil
}
func (c *collectSim) Result() ([]trace.Record, error) { return c.recs, nil }

// TestSpillStreamPipelineLive is the end-to-end tentpole test: a live
// capture whose spill service tees every segment straight into the
// streaming pipeline must feed the simulators the exact record stream a
// monolithic capture of the same workload produces — and the
// incremental cache results must equal a batch replay of that stream.
// No trace file is ever re-read.
func TestSpillStreamPipelineLive(t *testing.T) {
	want := captureMonolithic(t)
	if len(want) == 0 {
		t.Fatal("monolithic capture is empty")
	}
	cfg := cache.Config{
		Label: "live", SizeBytes: 4 << 10, BlockBytes: 16, Assoc: 2,
		Replacement: cache.LRU, WritePolicy: cache.WriteBack,
		WriteAllocate: true, PIDTags: true,
	}
	opts := cache.RunOptions{IncludePTE: true}
	wantRes, err := cache.RunUnified(want, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, codec := range []uint16{trace.CodecRaw, trace.CodecDelta} {
		p := sweep.NewPipeline(2)
		col := &collectSim{}
		collectRecs := sweep.AddSim[[]trace.Record](p, "collect", col)
		sim, err := cache.NewUnifiedSim(cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		collectRes := sweep.AddSim[cache.Result](p, cfg.Name(), sim)

		sys := spillSystem(t)
		var sink bytes.Buffer
		svc, err := kernel.StartSpill(sys, &sink, kernel.SpillConfig{
			Options:      atum.DefaultOptions(),
			SegmentBytes: 4 << 10, // several segments' worth of workload
			Codec:        codec,
			OnSegment:    p.OnSegment(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}

		got, err := collectRecs()
		if err != nil {
			t.Fatalf("codec=%d: pipeline error: %v", codec, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("codec=%d: streamed %d records differ from monolithic %d", codec, len(got), len(want))
		}
		if fed := p.RecordsFed(); fed != svc.SpilledRecords() || fed != uint64(len(want)) {
			t.Fatalf("codec=%d: pipeline fed %d records, service spilled %d, monolithic %d",
				codec, fed, svc.SpilledRecords(), len(want))
		}
		res, err := collectRes()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("codec=%d: streamed cache result %+v != batch %+v", codec, res, wantRes)
		}
	}
}

// TestSpillCloseWhileSegmentInFlight is the regression test for the
// concurrent-Close accounting race: while the first Close's final spill
// is still delivering a segment (sink write + OnSegment observer), a
// second Close used to return immediately with the segment's records
// neither spilled nor lost — Recorded != SpilledRecords + LostRecords.
// Every returning Close must instead block until the drain finishes and
// observe final accounting. Run under -race (the CI job does).
func TestSpillCloseWhileSegmentInFlight(t *testing.T) {
	sys := spillSystem(t)

	entered := make(chan struct{}) // the tee is holding the final segment
	release := make(chan struct{}) // lets the tee finish
	var teeOnce sync.Once
	var teeRecords uint64
	var sink bytes.Buffer
	svc, err := kernel.StartSpill(sys, &sink, kernel.SpillConfig{
		Options: atum.DefaultOptions(),
		// One segment: the whole capture stays buffered until Close's
		// final drain, so the only tee call is the one Close delivers.
		Codec: trace.CodecRaw,
		OnSegment: func(s trace.StreamSegment) {
			teeRecords += s.Info.Records
			teeOnce.Do(func() {
				close(entered)
				<-release
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}

	type view struct {
		err           error
		recorded      uint64
		spilled, lost uint64
	}
	snap := func(err error) view {
		return view{
			err:      err,
			recorded: svc.Collector().Recorded,
			spilled:  svc.SpilledRecords(),
			lost:     svc.LostRecords(),
		}
	}
	first := make(chan view, 1)
	second := make(chan view, 1)
	go func() { first <- snap(svc.Close()) }()
	<-entered // the first Close is mid-segment, blocked in the tee
	go func() { second <- snap(svc.Close()) }()
	// Give a buggy second Close every chance to return early while the
	// segment is still in flight.
	time.Sleep(50 * time.Millisecond)
	select {
	case v := <-second:
		t.Fatalf("second Close returned while the final segment was in flight: %+v", v)
	default:
	}
	close(release)

	for _, v := range []view{<-first, <-second} {
		if v.err != nil {
			t.Fatalf("Close: %v", v.err)
		}
		if v.recorded == 0 {
			t.Fatal("nothing recorded")
		}
		if v.recorded != v.spilled+v.lost {
			t.Errorf("accounting hole at Close return: Recorded=%d but Spilled=%d + Lost=%d",
				v.recorded, v.spilled, v.lost)
		}
	}
	if teeRecords != svc.SpilledRecords() {
		t.Errorf("tee observed %d records, service spilled %d", teeRecords, svc.SpilledRecords())
	}
	// The stream on disk is complete: it decodes to exactly the spilled
	// records.
	rd, err := trace.OpenReaderAt(bytes.NewReader(sink.Bytes()), int64(sink.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != svc.SpilledRecords() {
		t.Errorf("stream decodes to %d records, service spilled %d", len(got), svc.SpilledRecords())
	}
}
