package kernel_test

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/trace"
	"atum/internal/vax"
)

// smpSystem boots an ncpu-core machine multiprogrammed heavily enough
// that every core has work and the scheduler migrates processes: six
// processes alternating the two spill-test programs.
func smpSystem(t *testing.T, ncpu int) *kernel.System {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 4 << 20
	cfg.Machine.ReservedSize = 256 << 10
	cfg.CPUs = ncpu
	sys, err := kernel.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []string{spillLoopSrc, spillStoreSrc}
	for i := 0; i < 6; i++ {
		prog, err := vax.Assemble(srcs[i%2])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Spawn(fmt.Sprintf("w%d", i), prog, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Finalize(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// runSMPCapture boots an ncpu system with per-CPU spill services, runs
// it to a clean halt, and returns the closed services with their
// per-CPU streams.
func runSMPCapture(t *testing.T, ncpu int) ([]*kernel.SpillService, []*bytes.Buffer) {
	t.Helper()
	sys := smpSystem(t, ncpu)
	sinks := make([]*bytes.Buffer, ncpu)
	writers := make([]io.Writer, ncpu)
	for i := range sinks {
		sinks[i] = new(bytes.Buffer)
		writers[i] = sinks[i]
	}
	svcs, err := kernel.StartSpillCPUs(sys, writers, kernel.SpillConfig{
		SegmentBytes: 8 << 10,
		Codec:        trace.CodecDelta,
		Meta:         "smp-test",
		Seq:          new(trace.SeqCounter),
	})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := sys.Run(2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if stop != micro.StopHalt {
		t.Fatalf("system stopped on %v, want halt", stop)
	}
	for c, svc := range svcs {
		if err := svc.Close(); err != nil {
			t.Fatalf("cpu %d: Close: %v", c, err)
		}
	}
	return svcs, sinks
}

// TestSMPBootDeterminism: an N-core boot is a pure function of its
// config — every process exits cleanly, and a re-run reproduces the
// console, the exit statuses, and each core's cycle count exactly.
func TestSMPBootDeterminism(t *testing.T) {
	for _, ncpu := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("cpus=%d", ncpu), func(t *testing.T) {
			type outcome struct {
				console  string
				statuses []uint32
				cycles   []uint64
			}
			run := func() outcome {
				sys := smpSystem(t, ncpu)
				stop, err := sys.Run(2_000_000_000)
				if err != nil {
					t.Fatal(err)
				}
				if stop != micro.StopHalt {
					t.Fatalf("stopped on %v, want halt", stop)
				}
				var o outcome
				o.console = sys.Console()
				for _, p := range sys.Procs {
					st, err := sys.ExitStatus(p)
					if err != nil {
						t.Fatal(err)
					}
					if st == kernel.KilledStatus {
						t.Fatalf("process %q was killed", p.Name)
					}
					o.statuses = append(o.statuses, st)
				}
				for _, c := range sys.Cores {
					o.cycles = append(o.cycles, c.Cycles)
				}
				return o
			}
			first, second := run(), run()
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("re-run diverged:\n  first:  %+v\n  second: %+v", first, second)
			}
		})
	}
}

// TestSMPPerCPUSpillAccounting: with one spill service per core, each
// core's books must balance — Recorded == Spilled + Lost, nothing
// dropped, nothing lost — and the merged stream must carry exactly the
// records every core captured, attributable back to its core.
func TestSMPPerCPUSpillAccounting(t *testing.T) {
	for _, ncpu := range []int{2, 4} {
		t.Run(fmt.Sprintf("cpus=%d", ncpu), func(t *testing.T) {
			svcs, sinks := runSMPCapture(t, ncpu)
			files := make([]*trace.File, ncpu)
			var total uint64
			for c, svc := range svcs {
				col := svc.Collector()
				if got := svc.SpilledRecords() + svc.LostRecords(); col.Recorded != got {
					t.Errorf("cpu %d: Recorded=%d but Spilled+Lost=%d", c, col.Recorded, got)
				}
				if svc.LostRecords() != 0 || col.Dropped != 0 || svc.SinkErr() != nil {
					t.Errorf("cpu %d: capture degraded: lost=%d dropped=%d sinkErr=%v",
						c, svc.LostRecords(), col.Dropped, svc.SinkErr())
				}
				if svc.SpilledRecords() == 0 {
					t.Errorf("cpu %d: spilled nothing; core never ran traced work", c)
				}
				total += svc.SpilledRecords()
				f, err := trace.OpenReaderAt(bytes.NewReader(sinks[c].Bytes()), int64(sinks[c].Len()))
				if err != nil {
					t.Fatalf("cpu %d: %v", c, err)
				}
				files[c] = f
			}

			var merged bytes.Buffer
			if err := trace.MergeCPUs(&merged, "smp-test merged", files...); err != nil {
				t.Fatal(err)
			}
			mf, err := trace.OpenReaderAt(bytes.NewReader(merged.Bytes()), int64(merged.Len()))
			if err != nil {
				t.Fatal(err)
			}
			if !mf.SeqStamped() {
				t.Fatal("merged stream is not sequence-stamped")
			}
			if mf.NumRecords() != total {
				t.Fatalf("merged stream has %d records, cores spilled %d", mf.NumRecords(), total)
			}
			for c := range svcs {
				a, err := mf.ArenaCPU(2, c)
				if err != nil {
					t.Fatalf("cpu %d: %v", c, err)
				}
				want, err := files[c].Records(2)
				if err != nil {
					t.Fatal(err)
				}
				if got := a.Flatten(); !reflect.DeepEqual(got, want) {
					t.Fatalf("cpu %d: merged per-core replay (%d records) differs from its own stream (%d)",
						c, len(got), len(want))
				}
			}
		})
	}
}

// TestSMPMigrationVisibleInTrace: the scheduler migrates processes
// across cores, and the per-CPU streams record it — at least one user
// PID's references appear on more than one core.
func TestSMPMigrationVisibleInTrace(t *testing.T) {
	_, sinks := runSMPCapture(t, 2)
	cpus := make(map[uint8]map[int]bool)
	for c, sink := range sinks {
		f, err := trace.OpenReaderAt(bytes.NewReader(sink.Bytes()), int64(sink.Len()))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := f.Records(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if !r.User {
				continue
			}
			if cpus[r.PID] == nil {
				cpus[r.PID] = make(map[int]bool)
			}
			cpus[r.PID][c] = true
		}
	}
	migrated := 0
	for _, on := range cpus {
		if len(on) > 1 {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatalf("no PID ran on more than one core (per-PID cpu sets: %v)", cpus)
	}
}

// TestSMPSpillPollingRace: the monitoring surface of every per-CPU
// spill service is safe to poll from another goroutine mid-capture.
// Run with -race; the assertions are in the detector.
func TestSMPSpillPollingRace(t *testing.T) {
	sys := smpSystem(t, 2)
	sinks := []io.Writer{new(bytes.Buffer), new(bytes.Buffer)}
	svcs, err := kernel.StartSpillCPUs(sys, sinks, kernel.SpillConfig{
		SegmentBytes: 8 << 10,
		Codec:        trace.CodecDelta,
		Meta:         "smp-race",
		Seq:          new(trace.SeqCounter),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, svc := range svcs {
				_ = svc.SpilledRecords()
				_ = svc.LostRecords()
				_ = svc.Segments()
				_ = svc.SinkErr()
			}
		}
	}()
	if _, err := sys.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	for c, svc := range svcs {
		if err := svc.Close(); err != nil {
			t.Fatalf("cpu %d: %v", c, err)
		}
		col := svc.Collector()
		if got := svc.SpilledRecords() + svc.LostRecords(); col.Recorded != got {
			t.Errorf("cpu %d: Recorded=%d but Spilled+Lost=%d", c, col.Recorded, got)
		}
	}
}
