package kernel

// Source is the kernel, written in the simulated machine's own assembly
// language. It must execute on the simulated CPU — that is the point of
// ATUM: operating-system references (scheduler, pager, system calls,
// interrupt handlers) appear in the captured trace because the kernel is
// real code running above the patched microcode, not Go code reaching in
// from outside.
//
// Layout contract with the Go-side builder (see kernel.go): the builder
// reads the symbol table of this program to wire SCB vectors and to poke
// the configuration and process-table cells before starting the machine.
//
// The kernel is symmetric-multiprocessor capable: every CPU executes
// this same image from kstart. Shared state (the process table, frame
// pool, pipe, swap allocator) is guarded by two spinlocks built on the
// interlocked branch-on-bit instructions:
//
//   - klock guards the scheduler and memory manager: process-state
//     claims and context hand-offs, the free-frame stack, the frame
//     stealer, and swap-block allocation.
//   - piplock guards the pipe (head/tail/count/buffer).
//
// Lock order is piplock -> klock (a pipe copy may page-fault into the
// frame allocator); no path acquires piplock while holding klock.
// Spinlock holders never sleep: klock is only taken at IPL 31 or from
// fault/syscall paths that cannot be preempted (the clock handler never
// takes a lock and never preempts kernel mode).
//
// Per-CPU state (current process, quantum, scheduler scratch) lives in
// the percpu page: one page-aligned block of cells that the builder
// maps, through each CPU's private system page table, to a different
// physical frame. The assembly refers to plain symbols; which frame a
// reference lands in depends only on which CPU executes it.
//
// Conventions:
//   - system calls: CHMK #n with args in r1.., result in r0; r1-r5 are
//     caller-saved. Codes: 0 exit(status), 1 write(buf,len),
//     2 sbrk(npages), 3 yield, 4 getpid, 5 nap(ticks),
//     6 pipewrite(buf,len), 7 piperead(buf,maxlen),
//     8 rusage(buf) -> {syscalls, faults, switches} longwords,
//     9 uptime() -> clock ticks since boot.
//     Blocking calls (pipe full/empty) suspend the process and rewind
//     the saved PC so the two-byte "chmk #n" re-executes on wakeup.
//   - process states: 0 free, 1 runnable, 2 dead, 3 napping,
//     4 pipe-write wait, 5 pipe-read wait, 6 running (claimed by a
//     CPU). A process is claimable only in state 1, and only under
//     klock, so no two CPUs ever run the same process; its context is
//     parked in its PCB before its state becomes anything claimable or
//     wakeable again, so a claim can always ldpctx safely.
//   - the system page table identity-maps all usable RAM, so the kernel
//     reaches any physical frame f at virtual 0x80000000 + 512*f.
//   - memory: frames come from a free stack; when it runs dry the pager
//     steals a dynamically mapped frame (fowner/fvpn bookkeeping), swaps
//     it to disk, and marks the victim PTE with the swap flag (bit 30)
//     and block number. Frames whose owner is running on another CPU
//     are skipped (stealing under a live context loses updates); the
//     quantum guarantees owners park, so the retry loop terminates.
//     Exit reclaims a process's frames via its page tables.
//     Builder-mapped frames (kernel, page tables, images, initial
//     stacks) have no owner entry and are never stolen.
const Source = `
; ---------------------------------------------------------------------
; atum-sim kernel (SMP)
; ---------------------------------------------------------------------
	.org	0x80000000

; ---- boot ----------------------------------------------------------
; Every CPU starts here: program the private interval timer, then join
; the scheduler with no live context.
kstart:	movl	icrval, r0
	mtpr	r0, #26		; ICR: microcycles per clock tick
	mtpr	#0x40, #24	; ICCS: run
	brw	pick		; select the first process

; ---- scheduler ------------------------------------------------------
; resched: pick the next process for this CPU. The interrupted context
; is saved (svpctx) only when the decision is to run a *different*
; process; re-dispatching the interrupted process — the common case
; under preemption with nothing else runnable — takes a fast path with
; no PCB traffic, no TB flush and no switch marker, since the reference
; stream never changes hands. ctxlive tracks whether a live context
; still sits on this CPU's kernel stack (resched entry) or was parked
; into its PCB / never existed (boot, kill, post-block).
;
; The whole decision runs at IPL 31 under klock: claims (state 1 -> 6)
; and hand-offs (park, then state 6 -> 1) are atomic across CPUs, so
; the running process's registers are always either live on exactly one
; CPU or parked in its PCB — never both.
resched: movl	#1, ctxlive
	movl	r1, savr1	; the scan below clobbers r1/r2; a deferred
	movl	r2, savr2	; svpctx must park the process's own values
pick:	mtpr	#31, #18	; block the clock: the scan must not race
				; a tick waking processes mid-decision
pklk:	bbssi	#0, klock, pklk
	movl	nproc, r2	; attempts remaining
	movl	curproc, r1
pickl:	incl	r1
	cmpl	r1, nproc
	blss	pick1
	clrl	r1
pick1:	cmpl	procstate[r1], #1
	beql	found
	decl	r2
	bgtr	pickl
	; nothing else runnable on the machine. If this CPU interrupted a
	; process (still state 6, claimed by us), resume it directly —
	; its context never left our kernel stack.
	tstl	ctxlive
	beql	pick1a
	brw	fastgo
	; no context: is anyone waiting (napping, on the pipe) or running
	; on another CPU? Then spin through an interrupt window; a tick
	; or a sibling's hand-off will make someone runnable.
pick1a:	clrl	r1
pick2:	cmpl	r1, nproc
	bgequ	pick3
	cmpl	procstate[r1], #2
	bgtr	idle		; state 3/4/5/6
	incl	r1
	brb	pick2
pick3:	clrl	klock
	halt			; every process is dead: workload finished
idle:	clrl	klock
	mtpr	#0, #18		; open a one-instruction interrupt window
	nop			; (a pending tick is taken here)
	brw	pick		; rescan at IPL 31
found:	movl	#6, procstate[r1] ; claim: ours alone from here on
	incl	procswtch[r1]	; dispatch count (fast or full path)
	movl	quantum, qleft
	tstl	ctxlive
	beql	fndld
	; park the interrupted process with its own r1/r2 back in place,
	; then — only then — publish it runnable for the other CPUs.
	movl	r1, savidx	; keep the pick across the context save
	movl	savr1, r1
	movl	savr2, r2
	svpctx
	movl	curproc, r1
	movl	#1, procstate[r1]
	movl	savidx, r1
fndld:	clrl	ctxlive
	movl	r1, curproc
	clrl	klock
	mtpr	procpcb[r1], #16 ; PCBB
	ldpctx
	rei
	; same process resumed with its context still live on this CPU's
	; kernel stack: restore its r1/r2 and drop straight back in.
fastgo:	movl	curproc, r1
	incl	procswtch[r1]
	movl	quantum, qleft
	clrl	ctxlive
	movl	savr1, r1
	movl	savr2, r2
	clrl	klock
	rei

; ---- block: park the current process off-CPU -------------------------
; entry: r3 = new state (3 napping, 4 pipe-write wait, 5 pipe-read
; wait); the saved exception frame is still on the kernel stack and the
; user's registers are otherwise intact (they are about to be parked).
; The state is published only after svpctx, so a waker can never make
; the process claimable while its registers are still live on this CPU;
; a wake that happens in between is re-issued by the clock rescue.
; After parking, this CPU continues on its private idle stack.
block:	mtpr	#31, #18	; hold interrupts across the hand-off
blklk:	bbssi	#0, klock, blklk
	svpctx			; park registers, PC/PSL, MMU state
	movl	curproc, r4
	movl	r3, procstate[r4]
	cmpl	r3, #3
	beql	blk_go		; nappers are the clock's job anyway
	movl	#1, pipersc	; pipe waiter parked: arm the clock rescue
				; (after the state store, so a rescue that
				; consumes the flag always sees the state)
blk_go:	movl	idlesp, sp	; off the parked process's kernel stack
	clrl	klock
	brw	pick

; ---- interval timer -------------------------------------------------
; Every CPU's private timer drives preemption of its own user-mode
; execution (the kernel, including the idle loop, is never preempted).
; CPU 0's timer additionally owns the machine-wide tick work: uptime,
; napper wake-up, and the pipe wake rescue — a blocked pipe process
; whose wake raced its own parking (the waker saw it still running and
; skipped it) is re-woken here, so a lost wake-up costs at most one
; tick, never a hang.
h_clock: pushr	#0x0e		; r1-r3
	tstl	cpuid
	bneq	ck_d		; machine-wide work is CPU 0's alone
	incl	ticks		; system uptime, in clock ticks
	clrl	r1
ck_l:	cmpl	r1, nproc
	bgequ	ck_p
	cmpl	procstate[r1], #3
	bneq	ck_n
	decl	procnap[r1]
	bgtr	ck_n
	movl	#1, procstate[r1]
ck_n:	incl	r1
	brb	ck_l
ck_p:	tstl	pipersc		; rescue only when a pipe waiter parked
	beql	ck_d		; since the last one: the flag keeps the
	clrl	pipersc		; common tick cheap enough that the handler
				; fits the tick interval even at ~20x
				; dilation (a waiter re-arms it, so a wake
				; this scan misses is re-issued next tick)
	cmpl	pipecnt, #256	; lock-free reads: a stale value just
	bgequ	ck_p2		; defers the wake to the next tick
	bsbw	wake4
ck_p2:	tstl	pipecnt
	bleq	ck_d
	bsbw	wake5
ck_d:	movl	16(sp), r2	; interrupted PSL (12 saved bytes + PC)
	ashl	#-24, r2, r2
	bicl2	#0xfffffffc, r2
	beql	ck_rei		; kernel interrupted: no preemption
	decl	qleft
	bgtr	ck_rei
	popr	#0x0e
	brw	resched
ck_rei:	popr	#0x0e
	rei

; ---- software interrupt / ignored traps -----------------------------
h_soft:	rei

; ---- system calls ----------------------------------------------------
; entry: (sp)=code, then PC, PSL
h_chmk:	movl	curproc, r0	; account the call
	incl	proccalls[r0]
	movl	(sp)+, r0
	casel	r0, #0, #9
chtab:	.word	sys_exit-chtab
	.word	sys_write-chtab
	.word	sys_sbrk-chtab
	.word	sys_yield-chtab
	.word	sys_getpid-chtab
	.word	sys_nap-chtab
	.word	sys_pipewrite-chtab
	.word	sys_piperead-chtab
	.word	sys_rusage-chtab
	.word	sys_uptime-chtab
	brw	kill		; bad syscall code

; exit(r1=status)
sys_exit:
	movl	curproc, r2
	movl	r1, procexit[r2]
	brw	kill_common

; write(r1=buf, r2=len): copy user bytes to the console
sys_write:
	pushl	r3
wloop:	tstl	r2
	bleq	wdone
	movzbl	(r1)+, r3
	mtpr	r3, #35		; TXDB
	decl	r2
	brb	wloop
wdone:	movl	(sp)+, r3
	clrl	r0
	rei

; sbrk(r1=npages): extend the heap; returns old break VA in r0
sys_sbrk:
	pushr	#0x7c		; save r2-r6
	movl	curproc, r2
	movl	procbrk[r2], r3	; current break vpn
	ashl	#9, r3, r0	; old break VA
	tstl	r1
	bleq	sbdone
	addl3	r1, r3, r4	; requested end vpn
	mfpr	#9, r5		; P0LR
	cmpl	r4, r5
	bgtru	sb_fail		; beyond the program region: kill
sbloop:	bsbw	getframe	; r4 = frame (takes and releases klock)
	bsbw	zeroframe	; zero it (clobbers r5, r6); ours alone —
				; fowner is still clear, so no stealer
				; will pick it, and the lock is dropped
	bisl3	#0xa0000000, r4, r5 ; PTE: valid | user-rw | pfn
	mfpr	#8, r6		; P0BR (system va of the page table)
	movl	r5, (r6)[r3]
	ashl	#9, r3, r6
	movl	r6, fvpn[r4]
	movl	curproc, r6	; frame bookkeeping for the stealer;
	incl	r6		; fowner is the publish and goes last
	movl	r6, fowner[r4]
	incl	r3
	sobgtr	r1, sbloop
sbdone:	movl	curproc, r2
	movl	r3, procbrk[r2]
	popr	#0x7c
	rei
sb_fail: popr	#0x7c
	brw	kill

sys_yield:
	clrl	r0
	brw	resched

sys_getpid:
	movl	curproc, r0
	movl	procpid[r0], r0
	rei

; rusage(r1=buf): copy {syscalls, faults, switches-in} longwords to the
; user buffer — the kernel reporting on itself, with a copyout loop that
; itself lands in the trace.
sys_rusage:
	movl	curproc, r2
	movl	proccalls[r2], r3
	movl	r3, (r1)+
	movl	procfaults[r2], r3
	movl	r3, (r1)+
	movl	procswtch[r2], r3
	movl	r3, (r1)+
	clrl	r0
	rei

; uptime() -> r0 = clock ticks since boot (wall time on the real
; machine; on a traced machine the same work spans ~20x more of them —
; time dilation as seen from inside).
sys_uptime:
	movl	ticks, r0
	rei

; nap(r1=ticks): sleep for that many clock ticks
sys_nap:
	tstl	r1
	bleq	napz
	movl	curproc, r3
	movl	r1, procnap[r3]
	clrl	r0
	movl	#3, r3
	brw	block
napz:	clrl	r0
	rei

; pipewrite(r1=buf, r2=len) -> r0 = bytes written; blocks while full.
; The user buffer is touched page by page *before* piplock is taken: a
; page fault (or a kill on a bad address) must happen lock-free. After
; the touch the pages stay resident — this process is state 6 and the
; stealer skips running owners — so the copy loop under piplock cannot
; fault.
sys_pipewrite:
	tstl	r2
	bgtr	pw_s
	clrl	r0
	rei
pw_s:	pushr	#0x18		; r3, r4
	movl	r1, r3
	addl3	r1, r2, r4	; end (exclusive)
pwt:	movzbl	(r3), r0	; touch (fault lands here, no lock held)
	addl2	#512, r3
	cmpl	r3, r4
	blss	pwt
	movzbl	-1(r4), r0	; last byte's page
	popr	#0x18
pwlk:	bbssi	#0, piplock, pwlk
	cmpl	pipecnt, #256
	blss	pw_go
	clrl	piplock		; release before parking
	subl2	#2, (sp)	; rewind saved PC: re-execute "chmk #6"
	movl	#4, r3
	brw	block
pw_go:	clrl	r0
pw_l:	tstl	r2
	bleq	pw_d
	cmpl	pipecnt, #256
	bgequ	pw_d
	movzbl	(r1)+, r3
	movl	pipetail, r4
	moval	pipebuf, r5
	movb	r3, (r5)[r4]
	incl	r4
	bicl2	#0xffffff00, r4
	movl	r4, pipetail
	incl	pipecnt
	incl	r0
	decl	r2
	brb	pw_l
pw_d:	clrl	piplock
	bsbw	wake5		; data available: wake blocked readers
	rei

; piperead(r1=buf, r2=maxlen) -> r0 = bytes read; blocks while empty.
; Same pre-touch discipline as pipewrite (the copyout writes, but a
; read touch is enough to make the page resident and writable: user
; pages are mapped user-rw).
sys_piperead:
	tstl	r2
	bgtr	pr_s
	clrl	r0
	rei
pr_s:	pushr	#0x18		; r3, r4
	movl	r1, r3
	addl3	r1, r2, r4
prt:	movzbl	(r3), r0
	addl2	#512, r3
	cmpl	r3, r4
	blss	prt
	movzbl	-1(r4), r0
	popr	#0x18
prlk:	bbssi	#0, piplock, prlk
	tstl	pipecnt
	bgtr	pr_go
	clrl	piplock
	subl2	#2, (sp)	; rewind saved PC: re-execute "chmk #7"
	movl	#5, r3
	brw	block
pr_go:	clrl	r0
pr_l:	tstl	r2
	bleq	pr_d
	tstl	pipecnt
	bleq	pr_d
	movl	pipehead, r4
	moval	pipebuf, r5
	movzbl	(r5)[r4], r3
	movb	r3, (r1)+
	incl	r4
	bicl2	#0xffffff00, r4
	movl	r4, pipehead
	decl	pipecnt
	incl	r0
	decl	r2
	brb	pr_l
pr_d:	clrl	piplock
	bsbw	wake4		; space available: wake blocked writers
	rei

; wake4/wake5: make every process in pipe-wait state runnable. The
; 4->1 / 5->1 stores need no lock: a parked pipe-waiter has no other
; writers (claims take 1->6 under klock only), and concurrent wakers
; all store the same value.
wake4:	clrl	r1
w4l:	cmpl	r1, nproc
	bgequ	w4d
	cmpl	procstate[r1], #4
	bneq	w4n
	movl	#1, procstate[r1]
w4n:	incl	r1
	brb	w4l
w4d:	rsb

wake5:	clrl	r1
w5l:	cmpl	r1, nproc
	bgequ	w5d
	cmpl	procstate[r1], #5
	bneq	w5n
	movl	#1, procstate[r1]
w5n:	incl	r1
	brb	w5l
w5d:	rsb

; ---- kill current process and reschedule ----------------------------
kill:	movl	curproc, r1
	movl	#0xffffffff, procexit[r1]
kill_common:
	mtpr	#31, #18	; reclaim mutates the shared frame pool
kllk:	bbssi	#0, klock, kllk
	bsbw	reclaim		; free the address space
	movl	curproc, r1
	movl	#2, procstate[r1] ; dead
	movl	idlesp, sp	; off the dead process's kernel stack
	clrl	klock
	brw	pick

; reclaim: free every resident frame of the current process by walking
; its page tables. Swapped pages just lose their PTEs (their disk blocks
; leak; the swap device is unbounded). Caller holds klock (the free
; stack and fowner are shared). Clobbers r1-r3, r5-r7.
reclaim: mfpr	#8, r5		; P0BR
	mfpr	#9, r6		; P0LR
	movl	#1, r3		; vpn 0 is the guard page (kernel frame 0)
rc_p0:	cmpl	r3, r6
	bgequ	rc_p1
	movl	(r5)[r3], r7
	bgeq	rc_n0		; PTE valid bit is bit 31
	bicl3	#0xffe00000, r7, r7
	bsbw	freeframe
rc_n0:	clrl	(r5)[r3]
	incl	r3
	brb	rc_p0
rc_p1:	mfpr	#10, r5		; P1BR
	mfpr	#11, r6		; P1LR (first mapped vpn)
	movl	r6, r3
rc_l1:	cmpl	r3, #0x200000
	bgequ	rc_done
	movl	(r5)[r3], r7
	bgeq	rc_n1
	bicl3	#0xffe00000, r7, r7
	bsbw	freeframe
rc_n1:	clrl	(r5)[r3]
	incl	r3
	brb	rc_l1
rc_done: mtpr	#0, #57		; TBIA (broadcast: siblings drop stale
	rsb			; translations of the freed pages too)

; freeframe: return frame r7 to the free stack. Caller holds klock.
; Clobbers r2.
freeframe: movl	freecnt, r2
	movl	r7, freestk[r2]
	incl	freecnt
	clrl	fowner[r7]
	rsb

; ---- page fault (translation not valid) ------------------------------
; entry: (sp)=info, 4(sp)=va, then PC, PSL
h_tnv:	pushr	#0x7f		; save r0-r6
	movl	curproc, r1	; account the fault
	incl	procfaults[r1]
	movl	32(sp), r1	; faulting va (28 saved bytes + info)
	ashl	#-30, r1, r2
	bicl2	#0xfffffffc, r2	; region (0=P0 1=P1 2=S0)
	ashl	#-9, r1, r3
	bicl2	#0xffe00000, r3	; vpn within region
	tstl	r2
	beql	tnv_p0
	cmpl	r2, #1
	beql	tnv_p1
	halt			; fault in system space: kernel bug
tnv_p0:	mfpr	#9, r4		; P0LR
	cmpl	r3, r4
	bgequ	tnv_kill	; beyond the program region
	movl	#8, r2		; P0BR processor-register number
	brb	tnv_map
tnv_p1:	mfpr	#11, r4		; P1LR
	cmpl	r3, r4
	blssu	tnv_kill	; below the stack window
	movl	#10, r2		; P1BR processor-register number
tnv_map:
	bsbw	getframe	; r4 = new frame (takes and releases klock)
	mfpr	r2, r5		; page-table base
	movl	(r5)[r3], r6	; prior PTE
	bbs	#30, r6, tnv_in	; swapped-out page: read it back
	bsbw	zeroframe	; demand-zero (clobbers r5, r6)
	brb	tnv_fin
tnv_in:	bicl2	#0xffe00000, r6	; swap block number
	mtpr	r6, #40		; DISKBLK
	ashl	#9, r4, r5
	mtpr	r5, #41		; DISKADDR
	mtpr	#2, #42		; disk read
tnv_fin:
	mfpr	r2, r5		; reload page-table base
	bisl3	#0xa0000000, r4, r6 ; PTE: valid | user-rw | pfn
	movl	r6, (r5)[r3]
	bicl3	#0x1ff, r1, r6	; frame bookkeeping: PTE and fvpn first,
	movl	r6, fvpn[r4]	; fowner last — fowner is what a stealer
	movl	curproc, r6	; keys on, so a frame becomes visible
	incl	r6		; only fully described
	movl	r6, fowner[r4]
	popr	#0x7f
	addl2	#8, sp		; discard info+va
	rei			; restart the faulting instruction
tnv_kill:
	popr	#0x7f
	addl2	#8, sp
	brw	kill

; ---- access violation: kill the offender -----------------------------
h_acv:	addl2	#8, sp		; info, va
	brw	kill

; ---- arithmetic trap (divide by zero etc.): kill ---------------------
h_arith: addl2	#4, sp		; type code
	brw	kill

; ---- reserved/privileged instruction: kill ---------------------------
h_resv:	brw	kill

; ---- frame allocation -------------------------------------------------
; getframe: produce a free frame number in r4. Takes klock itself (and
; releases it before returning). Takes from the free stack when
; possible; otherwise steals a dynamically mapped frame: writes the
; victim page to a fresh swap block, marks the victim PTE swapped, and
; broadcast-flushes the TBs. Victims whose owner is running on another
; CPU are skipped — swapping a page under a live context would lose its
; in-flight stores — but our own frames are fair game (we are here, not
; touching them). If every owned frame has a running owner the scan
; drops the lock and retries: preemption parks the owners within a
; quantum. Halts only if nothing is owned at all (true OOM).
; Clobbers only r4 (steal path saves r5-r9).
getframe:
gflk:	bbssi	#0, klock, gflk
	decl	freecnt
	blss	gf_steal
	movl	freecnt, r4
	movl	freestk[r4], r4
	clrl	klock
	rsb
gf_steal:
	clrl	freecnt		; undo the decrement
	pushr	#0x03e0		; r5-r9
gs_rs:	movl	stealhand, r4
	movl	nframes, r5	; attempts
	clrl	r9		; saw an owned-but-running frame
gs_l:	incl	r4
	cmpl	r4, nframes
	blss	gs_1
	clrl	r4
gs_1:	movl	fowner[r4], r8
	beql	gs_nx		; unowned: builder frame or free
	decl	r8		; owner process index
	cmpl	r8, curproc
	beql	gs_f		; our own frame: steal it
	cmpl	procstate[r8], #6
	bneq	gs_f		; parked owner: steal it
	movl	#1, r9		; running elsewhere: skip
gs_nx:	sobgtr	r5, gs_l
	tstl	r9
	beql	gs_oom
	clrl	klock		; let the running owners park, retry
gs_w:	bbssi	#0, klock, gs_w
	brb	gs_rs
gs_oom:	halt			; nothing stealable: out of memory
gs_f:	movl	r4, stealhand
	movl	disknext, r6	; allocate a swap block
	incl	disknext
	mtpr	r6, #40		; DISKBLK
	ashl	#9, r4, r7
	mtpr	r7, #41		; DISKADDR
	mtpr	#1, #42		; disk write (swap out)
	movl	fowner[r4], r8
	decl	r8		; victim process index
	clrl	fowner[r4]
	movl	fvpn[r4], r9	; victim VA
	movl	procpcb[r8], r5
	addl2	#0x80000000, r5	; victim PCB via S0
	ashl	#-30, r9, r7
	bicl2	#0xfffffffc, r7
	tstl	r7
	beql	gs_p0
	movl	80(r5), r5	; PCB.P1BR
	brb	gs_pte
gs_p0:	movl	72(r5), r5	; PCB.P0BR
gs_pte:	ashl	#-9, r9, r7
	bicl2	#0xffe00000, r7	; victim vpn
	bisl3	#0x40000000, r6, r9 ; swapped PTE: flag | block
	movl	r9, (r5)[r7]
	mtpr	#0, #57		; TBIA: every CPU drops the translation
	popr	#0x03e0
	clrl	klock
	rsb

; zeroframe: clear the 512-byte frame r4 via its system mapping.
; clobbers r5, r6.
zeroframe: ashl	#9, r4, r5
	addl2	#0x80000000, r5
	movl	#128, r6
zfl:	clrl	(r5)+
	sobgtr	r6, zfl
	rsb

; ---- per-CPU data -----------------------------------------------------
; One page, mapped to a private physical frame through each CPU's own
; system page table: the same virtual cell names a different location
; on every CPU. The builder initialises each CPU's copy.
	.align	512
percpu:
cpuid:	.long	0		; this CPU's identity (builder)
curproc: .long	0		; process this CPU is running
qleft:	.long	0		; quantum ticks remaining
ctxlive: .long	0		; interrupted context on kstack, not yet saved
savr1:	.long	0		; r1/r2 at resched entry (scan scratch)
savr2:	.long	0
savidx:	.long	0		; picked process across a deferred svpctx
idlesp:	.long	0		; top of this CPU's private idle/boot stack
	.align	512
percpuend:

; ---- shared kernel data -----------------------------------------------
klock:	.long	0		; scheduler + memory-manager spinlock
piplock: .long	0		; pipe spinlock
icrval:	.long	0		; microcycles per clock tick (builder)
quantum: .long	0		; ticks per scheduling quantum (builder)
nproc:	.long	0
ticks:	.long	0
nframes: .long	0		; usable frames (builder)
stealhand: .long 0
disknext: .long	0		; next free swap block
procstate: .space 4*16		; see state table above
procpcb:   .space 4*16		; physical PCB addresses
procpid:   .space 4*16
procbrk:   .space 4*16		; next heap vpn per process
procnap:   .space 4*16		; remaining nap ticks
procexit:  .space 4*16		; exit status (-1 = killed)
proccalls: .space 4*16		; system calls made
procfaults: .space 4*16		; page faults taken
procswtch: .space 4*16		; times scheduled in
pipehead: .long	0
pipetail: .long	0
pipecnt: .long	0
pipersc: .long	0		; a pipe waiter parked; clock rescue armed
pipebuf: .space	256
freecnt: .long	0
freestk: .space 4*16384		; free frame stack (frame numbers)
fowner:	.space	4*16384		; frame -> owning process index + 1
fvpn:	.space	4*16384		; frame -> mapped VA (page aligned)
kend:
`
