package kernel

// Source is the kernel, written in the simulated machine's own assembly
// language. It must execute on the simulated CPU — that is the point of
// ATUM: operating-system references (scheduler, pager, system calls,
// interrupt handlers) appear in the captured trace because the kernel is
// real code running above the patched microcode, not Go code reaching in
// from outside.
//
// Layout contract with the Go-side builder (see kernel.go): the builder
// reads the symbol table of this program to wire SCB vectors and to poke
// the configuration and process-table cells before starting the machine.
//
// Conventions:
//   - system calls: CHMK #n with args in r1.., result in r0; r1-r5 are
//     caller-saved. Codes: 0 exit(status), 1 write(buf,len),
//     2 sbrk(npages), 3 yield, 4 getpid, 5 nap(ticks),
//     6 pipewrite(buf,len), 7 piperead(buf,maxlen),
//     8 rusage(buf) -> {syscalls, faults, switches} longwords,
//     9 uptime() -> clock ticks since boot.
//     Blocking calls (pipe full/empty) suspend the process and rewind
//     the saved PC so the two-byte "chmk #n" re-executes on wakeup.
//   - process states: 0 free, 1 runnable, 2 dead, 3 napping,
//     4 pipe-write wait, 5 pipe-read wait.
//   - the system page table identity-maps all usable RAM, so the kernel
//     reaches any physical frame f at virtual 0x80000000 + 512*f.
//   - memory: frames come from a free stack; when it runs dry the pager
//     steals a dynamically mapped frame (fowner/fvpn bookkeeping), swaps
//     it to disk, and marks the victim PTE with the swap flag (bit 30)
//     and block number. Exit reclaims a process's frames via its page
//     tables. Builder-mapped frames (kernel, page tables, images,
//     initial stacks) have no owner entry and are never stolen.
const Source = `
; ---------------------------------------------------------------------
; atum-sim kernel
; ---------------------------------------------------------------------
	.org	0x80000000

; ---- boot ----------------------------------------------------------
kstart:	movl	icrval, r0
	mtpr	r0, #26		; ICR: microcycles per clock tick
	mtpr	#0x40, #24	; ICCS: run
	brw	pick		; select the first process

; ---- scheduler ------------------------------------------------------
; resched: pick the next runnable process. The interrupted context is
; saved (svpctx) only when the decision is to run a *different* process;
; re-dispatching the interrupted process — the common case under
; preemption with one runnable process — takes a fast path with no PCB
; traffic, no TB flush and no switch marker, since the reference stream
; never changes hands. ctxlive tracks whether a live context still sits
; on the kernel stack (resched entry) or was parked into its PCB /
; never existed (idle loop, boot, kill).
resched: movl	#1, ctxlive
	movl	r1, savr1	; the scan below clobbers r1/r2; a deferred
	movl	r2, savr2	; svpctx must park the process's own values
pick:	mtpr	#31, #18	; block the clock: the scan must not race
				; a tick waking processes mid-decision
	movl	nproc, r2	; attempts remaining
	movl	curproc, r1
pickl:	incl	r1
	cmpl	r1, nproc
	blss	pick1
	clrl	r1
pick1:	cmpl	procstate[r1], #1
	beql	found
	decl	r2
	bgtr	pickl
	; nothing runnable now: is anyone waiting (napping or on the pipe)?
	; A live context stays on the kernel stack across the idle loop —
	; the idle loop and the clock handler are stack-neutral, so if the
	; waiter that wakes is the interrupted process itself, the fast
	; path below resumes it without ever having parked it.
	clrl	r1
pick2:	cmpl	r1, nproc
	bgequ	pick3
	cmpl	procstate[r1], #2
	bgtr	idle		; state 3/4/5
	incl	r1
	brb	pick2
pick3:	halt			; every process is dead: workload finished
idle:	mtpr	#0, #18		; open a one-instruction interrupt window
	nop			; (a pending tick is taken here)
	brw	pick		; rescan at IPL 31
found:	incl	procswtch[r1]	; dispatch count (fast or full path)
	movl	quantum, qleft
	cmpl	r1, curproc
	bneq	fndsw
	tstl	ctxlive
	bneq	fndgo
fndsw:	tstl	ctxlive
	beql	fndld
	movl	r1, savidx	; keep the pick across the context save
	movl	savr1, r1
	movl	savr2, r2
	svpctx			; park the outgoing context
	movl	savidx, r1
fndld:	clrl	ctxlive
	movl	r1, curproc
	mtpr	procpcb[r1], #16 ; PCBB
	ldpctx
	rei
	; same process re-picked with its context still live on the kernel
	; stack: resume it directly, with its own r1/r2 back in place.
fndgo:	clrl	ctxlive
	movl	savr1, r1
	movl	savr2, r2
	rei

; ---- interval timer -------------------------------------------------
; Wakes nappers each tick; preempts only user-mode execution (the
; kernel, including the idle loop, is never preempted).
h_clock: pushr	#0x0e		; r1-r3
	incl	ticks		; system uptime, in clock ticks
	clrl	r1
ck_l:	cmpl	r1, nproc
	bgequ	ck_d
	cmpl	procstate[r1], #3
	bneq	ck_n
	decl	procnap[r1]
	bgtr	ck_n
	movl	#1, procstate[r1]
ck_n:	incl	r1
	brb	ck_l
ck_d:	movl	16(sp), r2	; interrupted PSL (12 saved bytes + PC)
	ashl	#-24, r2, r2
	bicl2	#0xfffffffc, r2
	beql	ck_rei		; kernel interrupted: no preemption
	decl	qleft
	bgtr	ck_rei
	popr	#0x0e
	brw	resched
ck_rei:	popr	#0x0e
	rei

; ---- software interrupt / ignored traps -----------------------------
h_soft:	rei

; ---- system calls ----------------------------------------------------
; entry: (sp)=code, then PC, PSL
h_chmk:	movl	curproc, r0	; account the call
	incl	proccalls[r0]
	movl	(sp)+, r0
	casel	r0, #0, #9
chtab:	.word	sys_exit-chtab
	.word	sys_write-chtab
	.word	sys_sbrk-chtab
	.word	sys_yield-chtab
	.word	sys_getpid-chtab
	.word	sys_nap-chtab
	.word	sys_pipewrite-chtab
	.word	sys_piperead-chtab
	.word	sys_rusage-chtab
	.word	sys_uptime-chtab
	brw	kill		; bad syscall code

; exit(r1=status)
sys_exit:
	movl	curproc, r2
	movl	r1, procexit[r2]
	brw	kill_common

; write(r1=buf, r2=len): copy user bytes to the console
sys_write:
	pushl	r3
wloop:	tstl	r2
	bleq	wdone
	movzbl	(r1)+, r3
	mtpr	r3, #35		; TXDB
	decl	r2
	brb	wloop
wdone:	movl	(sp)+, r3
	clrl	r0
	rei

; sbrk(r1=npages): extend the heap; returns old break VA in r0
sys_sbrk:
	pushr	#0x7c		; save r2-r6
	movl	curproc, r2
	movl	procbrk[r2], r3	; current break vpn
	ashl	#9, r3, r0	; old break VA
	tstl	r1
	bleq	sbdone
	addl3	r1, r3, r4	; requested end vpn
	mfpr	#9, r5		; P0LR
	cmpl	r4, r5
	bgtru	sb_fail		; beyond the program region: kill
sbloop:	bsbw	getframe	; r4 = frame
	bsbw	zeroframe	; zero it (clobbers r5, r6)
	bisl3	#0xa0000000, r4, r5 ; PTE: valid | user-rw | pfn
	mfpr	#8, r6		; P0BR (system va of the page table)
	movl	r5, (r6)[r3]
	movl	curproc, r6	; frame bookkeeping for the stealer
	incl	r6
	movl	r6, fowner[r4]
	ashl	#9, r3, r6
	movl	r6, fvpn[r4]
	incl	r3
	sobgtr	r1, sbloop
sbdone:	movl	curproc, r2
	movl	r3, procbrk[r2]
	popr	#0x7c
	rei
sb_fail: popr	#0x7c
	brw	kill

sys_yield:
	clrl	r0
	brw	resched

sys_getpid:
	movl	curproc, r0
	movl	procpid[r0], r0
	rei

; rusage(r1=buf): copy {syscalls, faults, switches-in} longwords to the
; user buffer — the kernel reporting on itself, with a copyout loop that
; itself lands in the trace.
sys_rusage:
	movl	curproc, r2
	movl	proccalls[r2], r3
	movl	r3, (r1)+
	movl	procfaults[r2], r3
	movl	r3, (r1)+
	movl	procswtch[r2], r3
	movl	r3, (r1)+
	clrl	r0
	rei

; uptime() -> r0 = clock ticks since boot (wall time on the real
; machine; on a traced machine the same work spans ~20x more of them —
; time dilation as seen from inside).
sys_uptime:
	movl	ticks, r0
	rei

; nap(r1=ticks): sleep for that many clock ticks
sys_nap:
	tstl	r1
	bleq	napz
	movl	curproc, r3
	movl	r1, procnap[r3]
	movl	#3, procstate[r3]
	clrl	r0
	brw	resched
napz:	clrl	r0
	rei

; pipewrite(r1=buf, r2=len) -> r0 = bytes written; blocks while full
sys_pipewrite:
	tstl	r2
	bleq	pwz
	cmpl	pipecnt, #256
	blss	pw_go
	subl2	#2, (sp)	; rewind saved PC: re-execute "chmk #6"
	movl	curproc, r3
	movl	#4, procstate[r3]
	brw	resched
pw_go:	clrl	r0
pw_l:	tstl	r2
	bleq	pw_d
	cmpl	pipecnt, #256
	bgequ	pw_d
	movzbl	(r1)+, r3
	movl	pipetail, r4
	moval	pipebuf, r5
	movb	r3, (r5)[r4]
	incl	r4
	bicl2	#0xffffff00, r4
	movl	r4, pipetail
	incl	pipecnt
	incl	r0
	decl	r2
	brb	pw_l
pw_d:	bsbw	wake5		; data available: wake blocked readers
	rei
pwz:	clrl	r0
	rei

; piperead(r1=buf, r2=maxlen) -> r0 = bytes read; blocks while empty
sys_piperead:
	tstl	r2
	bleq	prz
	tstl	pipecnt
	bgtr	pr_go
	subl2	#2, (sp)	; rewind saved PC: re-execute "chmk #7"
	movl	curproc, r3
	movl	#5, procstate[r3]
	brw	resched
pr_go:	clrl	r0
pr_l:	tstl	r2
	bleq	pr_d
	tstl	pipecnt
	bleq	pr_d
	movl	pipehead, r4
	moval	pipebuf, r5
	movzbl	(r5)[r4], r3
	movb	r3, (r1)+
	incl	r4
	bicl2	#0xffffff00, r4
	movl	r4, pipehead
	decl	pipecnt
	incl	r0
	decl	r2
	brb	pr_l
pr_d:	bsbw	wake4		; space available: wake blocked writers
	rei
prz:	clrl	r0
	rei

; wake4/wake5: make every process in pipe-wait state runnable
wake4:	clrl	r1
w4l:	cmpl	r1, nproc
	bgequ	w4d
	cmpl	procstate[r1], #4
	bneq	w4n
	movl	#1, procstate[r1]
w4n:	incl	r1
	brb	w4l
w4d:	rsb

wake5:	clrl	r1
w5l:	cmpl	r1, nproc
	bgequ	w5d
	cmpl	procstate[r1], #5
	bneq	w5n
	movl	#1, procstate[r1]
w5n:	incl	r1
	brb	w5l
w5d:	rsb

; ---- kill current process and reschedule ----------------------------
kill:	movl	curproc, r1
	movl	#0xffffffff, procexit[r1]
kill_common:
	bsbw	reclaim		; free the address space
	movl	curproc, r1
	movl	#2, procstate[r1] ; dead
	brw	pick

; reclaim: free every resident frame of the current process by walking
; its page tables. Swapped pages just lose their PTEs (their disk blocks
; leak; the swap device is unbounded). Clobbers r1-r3, r5-r7.
reclaim: mfpr	#8, r5		; P0BR
	mfpr	#9, r6		; P0LR
	movl	#1, r3		; vpn 0 is the guard page (kernel frame 0)
rc_p0:	cmpl	r3, r6
	bgequ	rc_p1
	movl	(r5)[r3], r7
	bgeq	rc_n0		; PTE valid bit is bit 31
	bicl3	#0xffe00000, r7, r7
	bsbw	freeframe
rc_n0:	clrl	(r5)[r3]
	incl	r3
	brb	rc_p0
rc_p1:	mfpr	#10, r5		; P1BR
	mfpr	#11, r6		; P1LR (first mapped vpn)
	movl	r6, r3
rc_l1:	cmpl	r3, #0x200000
	bgequ	rc_done
	movl	(r5)[r3], r7
	bgeq	rc_n1
	bicl3	#0xffe00000, r7, r7
	bsbw	freeframe
rc_n1:	clrl	(r5)[r3]
	incl	r3
	brb	rc_l1
rc_done: mtpr	#0, #57		; TBIA
	rsb

; freeframe: return frame r7 to the free stack. Clobbers r2.
freeframe: movl	freecnt, r2
	movl	r7, freestk[r2]
	incl	freecnt
	clrl	fowner[r7]
	rsb

; ---- page fault (translation not valid) ------------------------------
; entry: (sp)=info, 4(sp)=va, then PC, PSL
h_tnv:	pushr	#0x7f		; save r0-r6
	movl	curproc, r1	; account the fault
	incl	procfaults[r1]
	movl	32(sp), r1	; faulting va (28 saved bytes + info)
	ashl	#-30, r1, r2
	bicl2	#0xfffffffc, r2	; region (0=P0 1=P1 2=S0)
	ashl	#-9, r1, r3
	bicl2	#0xffe00000, r3	; vpn within region
	tstl	r2
	beql	tnv_p0
	cmpl	r2, #1
	beql	tnv_p1
	halt			; fault in system space: kernel bug
tnv_p0:	mfpr	#9, r4		; P0LR
	cmpl	r3, r4
	bgequ	tnv_kill	; beyond the program region
	movl	#8, r2		; P0BR processor-register number
	brb	tnv_map
tnv_p1:	mfpr	#11, r4		; P1LR
	cmpl	r3, r4
	blssu	tnv_kill	; below the stack window
	movl	#10, r2		; P1BR processor-register number
tnv_map:
	bsbw	getframe	; r4 = new frame (may steal + swap out)
	mfpr	r2, r5		; page-table base
	movl	(r5)[r3], r6	; prior PTE
	bbs	#30, r6, tnv_in	; swapped-out page: read it back
	bsbw	zeroframe	; demand-zero (clobbers r5, r6)
	brb	tnv_fin
tnv_in:	bicl2	#0xffe00000, r6	; swap block number
	mtpr	r6, #40		; DISKBLK
	ashl	#9, r4, r5
	mtpr	r5, #41		; DISKADDR
	mtpr	#2, #42		; disk read
tnv_fin:
	mfpr	r2, r5		; reload page-table base
	bisl3	#0xa0000000, r4, r6 ; PTE: valid | user-rw | pfn
	movl	r6, (r5)[r3]
	movl	curproc, r6	; frame bookkeeping
	incl	r6
	movl	r6, fowner[r4]
	bicl3	#0x1ff, r1, r6
	movl	r6, fvpn[r4]
	popr	#0x7f
	addl2	#8, sp		; discard info+va
	rei			; restart the faulting instruction
tnv_kill:
	popr	#0x7f
	addl2	#8, sp
	brw	kill

; ---- access violation: kill the offender -----------------------------
h_acv:	addl2	#8, sp		; info, va
	brw	kill

; ---- arithmetic trap (divide by zero etc.): kill ---------------------
h_arith: addl2	#4, sp		; type code
	brw	kill

; ---- reserved/privileged instruction: kill ---------------------------
h_resv:	brw	kill

; ---- frame allocation -------------------------------------------------
; getframe: produce a free frame number in r4. Takes from the free stack
; when possible; otherwise steals a dynamically mapped frame: writes the
; victim page to a fresh swap block, marks the victim PTE swapped, and
; flushes the TB. Halts only if nothing is stealable (true OOM).
; Clobbers only r4 (steal path saves r5-r9).
getframe: decl	freecnt
	blss	gf_steal
	movl	freecnt, r4
	movl	freestk[r4], r4
	rsb
gf_steal:
	clrl	freecnt		; undo the decrement
	pushr	#0x03e0		; r5-r9
	movl	stealhand, r4
	movl	nframes, r5	; attempts
gs_l:	incl	r4
	cmpl	r4, nframes
	blss	gs_1
	clrl	r4
gs_1:	tstl	fowner[r4]
	bneq	gs_f
	sobgtr	r5, gs_l
	halt			; nothing stealable: out of memory
gs_f:	movl	r4, stealhand
	movl	disknext, r6	; allocate a swap block
	incl	disknext
	mtpr	r6, #40		; DISKBLK
	ashl	#9, r4, r7
	mtpr	r7, #41		; DISKADDR
	mtpr	#1, #42		; disk write (swap out)
	movl	fowner[r4], r8
	decl	r8		; victim process index
	clrl	fowner[r4]
	movl	fvpn[r4], r9	; victim VA
	movl	procpcb[r8], r5
	addl2	#0x80000000, r5	; victim PCB via S0
	ashl	#-30, r9, r7
	bicl2	#0xfffffffc, r7
	tstl	r7
	beql	gs_p0
	movl	80(r5), r5	; PCB.P1BR
	brb	gs_pte
gs_p0:	movl	72(r5), r5	; PCB.P0BR
gs_pte:	ashl	#-9, r9, r7
	bicl2	#0xffe00000, r7	; victim vpn
	bisl3	#0x40000000, r6, r9 ; swapped PTE: flag | block
	movl	r9, (r5)[r7]
	mtpr	#0, #57		; TBIA: drop any cached translation
	popr	#0x03e0
	rsb

; zeroframe: clear the 512-byte frame r4 via its system mapping.
; clobbers r5, r6.
zeroframe: ashl	#9, r4, r5
	addl2	#0x80000000, r5
	movl	#128, r6
zfl:	clrl	(r5)+
	sobgtr	r6, zfl
	rsb

; ---- kernel data ------------------------------------------------------
	.align	4
icrval:	.long	0		; microcycles per clock tick (builder)
quantum: .long	0		; ticks per scheduling quantum (builder)
qleft:	.long	0
ctxlive: .long	0		; interrupted context on kstack, not yet saved
savr1:	.long	0		; r1/r2 at resched entry (scan scratch)
savr2:	.long	0
savidx:	.long	0		; picked process across a deferred svpctx
nproc:	.long	0
curproc: .long	0
ticks:	.long	0
nframes: .long	0		; usable frames (builder)
stealhand: .long 0
disknext: .long	0		; next free swap block
procstate: .space 4*16		; see state table above
procpcb:   .space 4*16		; physical PCB addresses
procpid:   .space 4*16
procbrk:   .space 4*16		; next heap vpn per process
procnap:   .space 4*16		; remaining nap ticks
procexit:  .space 4*16		; exit status (-1 = killed)
proccalls: .space 4*16		; system calls made
procfaults: .space 4*16		; page faults taken
procswtch: .space 4*16		; times scheduled in
pipehead: .long	0
pipetail: .long	0
pipecnt: .long	0
pipebuf: .space	256
freecnt: .long	0
freestk: .space 4*16384		; free frame stack (frame numbers)
fowner:	.space	4*16384		; frame -> owning process index + 1
fvpn:	.space	4*16384		; frame -> mapped VA (page aligned)
kend:
`
