package kernel_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/vax"
)

// Two small programs that multiprogram against each other: enough
// references to fill several 4KB segments, with context switches and
// page activity in the stream. (This package cannot use
// internal/workload — workload imports kernel.)
const spillLoopSrc = `
	.org	0x200
start:	movl	#600, r6
loop:	addl3	r6, r7, r8
	movl	r8, scratch
	movl	scratch, r9
	sobgtr	r6, loop
	moval	msg, r1
	movl	#2, r2
	chmk	#1
	chmk	#0
msg:	.ascii	"a\n"
scratch: .long	0
`

const spillStoreSrc = `
	.org	0x200
start:	movl	#400, r6
	moval	buf, r2
loop:	movl	r6, (r2)
	addl3	(r2), r7, r8
	sobgtr	r6, loop
	chmk	#0
buf:	.long	0
`

func spillSystem(t *testing.T) *kernel.System {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 4 << 20
	cfg.Machine.ReservedSize = 256 << 10
	sys, err := kernel.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{spillLoopSrc, spillStoreSrc} {
		prog, err := vax.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Spawn("w", prog, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Finalize(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// captureMonolithic traces the workload into one big buffer.
func captureMonolithic(t *testing.T) []trace.Record {
	t.Helper()
	sys := spillSystem(t)
	cap, err := atum.Run(sys.M, atum.DefaultOptions(), func() error {
		_, err := sys.Run(50_000_000)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return cap.All()
}

// TestSpillStitchingDeterminism is the acceptance-criteria test: a
// workload captured through N spilled segments must decode to records
// byte-identical to the same workload captured into one sufficiently
// large buffer, for N ∈ {1, 3, 8}. Extraction models the paper's
// freeze/dump/resume — it takes no machine time — so splitting the
// capture must not perturb execution at all.
func TestSpillStitchingDeterminism(t *testing.T) {
	want := captureMonolithic(t)
	if len(want) == 0 {
		t.Fatal("monolithic capture is empty")
	}
	wantBytes := encodeAll(t, want)

	for _, n := range []int{1, 3, 8} {
		for _, codec := range []uint16{trace.CodecRaw, trace.CodecDelta} {
			t.Run(fmt.Sprintf("n=%d codec=%d", n, codec), func(t *testing.T) {
				// Size the per-segment buffer so the capture spills exactly
				// n-1 times, the final partial segment closing the stream.
				per := (len(want) + n - 1) / n
				sys := spillSystem(t)
				var sink bytes.Buffer
				svc, err := kernel.StartSpill(sys, &sink, kernel.SpillConfig{
					Options:      atum.DefaultOptions(),
					SegmentBytes: uint32(per) * trace.RecordBytes,
					Codec:        codec,
					Meta:         "spill-test",
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(50_000_000); err != nil {
					t.Fatal(err)
				}
				if err := svc.Close(); err != nil {
					t.Fatal(err)
				}
				if svc.SinkErr() != nil || svc.Collector().Dropped != 0 {
					t.Fatalf("spill capture degraded: sinkErr=%v dropped=%d",
						svc.SinkErr(), svc.Collector().Dropped)
				}
				if svc.Segments() != uint32(n) {
					t.Fatalf("wrote %d segments, want %d", svc.Segments(), n)
				}

				// Read the spill output back through the random-access
				// fast path: the kernel's own stream exercises the
				// parallel segment decode end to end.
				rd, err := trace.OpenReaderAt(bytes.NewReader(sink.Bytes()), int64(sink.Len()))
				if err != nil {
					t.Fatal(err)
				}
				got, err := rd.Records(4)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("stitched %d records differ from monolithic %d", len(got), len(want))
				}
				if !bytes.Equal(encodeAll(t, got), wantBytes) {
					t.Fatal("stitched records not byte-identical to monolithic capture")
				}
				if got, want := svc.SpilledRecords(), uint64(len(want)); got != want {
					t.Fatalf("SpilledRecords=%d, want %d", got, want)
				}
				if rd.Meta() != "spill-test" {
					t.Fatalf("meta %q", rd.Meta())
				}
				var dil uint64
				for _, s := range rd.Segments() {
					dil += s.DilationCycles
				}
				if dil != svc.Collector().DilationCycles {
					t.Fatalf("per-segment dilation cycles sum to %d, collector charged %d",
						dil, svc.Collector().DilationCycles)
				}
			})
		}
	}
}

// encodeAll packs records to their raw 8-byte form for byte-level
// comparison.
func encodeAll(t *testing.T, recs []trace.Record) []byte {
	t.Helper()
	out := make([]byte, 0, len(recs)*trace.RecordBytes)
	var b [trace.RecordBytes]byte
	for _, r := range recs {
		r.Encode(b[:])
		out = append(out, b[:]...)
	}
	return out
}

// TestSpillSinkStallDegradesToCountedDrops: when the sink fails
// mid-capture, the service pauses the collector, counts subsequent
// events as drops, and still leaves a valid (truncated but well-formed)
// stream behind.
func TestSpillSinkStallDegradesToCountedDrops(t *testing.T) {
	sys := spillSystem(t)
	sink := &stallingSink{limit: 8 << 10} // fail after 8KB reach the sink
	svc, err := kernel.StartSpill(sys, sink, kernel.SpillConfig{
		Options:      atum.DefaultOptions(),
		SegmentBytes: 4 << 10,
		Codec:        trace.CodecRaw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	err = svc.Close()
	if err == nil || svc.SinkErr() == nil {
		t.Fatal("sink stall not reported")
	}
	col := svc.Collector()
	if col.Dropped == 0 {
		t.Error("no events counted as dropped after the sink stalled")
	}
	if svc.SpilledRecords() == 0 {
		t.Error("nothing reached the sink before the stall")
	}
	if svc.LostRecords() == 0 {
		t.Error("the failed segment's records were not accounted as lost")
	}
	// The bytes that did reach the sink form a valid stream: every
	// complete segment before the stall decodes.
	rd, err := trace.OpenReaderAt(bytes.NewReader(sink.data.Bytes()), int64(sink.data.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Records(2)
	if err != nil {
		t.Fatalf("pre-stall stream does not decode cleanly: %v", err)
	}
	if uint64(len(got)) != svc.SpilledRecords() {
		t.Fatalf("decoded %d records, service spilled %d", len(got), svc.SpilledRecords())
	}
}

// stallingSink accepts limit bytes, then fails every write — a disk
// filling up under the capture.
type stallingSink struct {
	data  bytes.Buffer
	limit int
}

func (s *stallingSink) Write(p []byte) (int, error) {
	if s.data.Len()+len(p) > s.limit {
		return 0, fmt.Errorf("sink full")
	}
	return s.data.Write(p)
}

// TestSpillRejectsOwnedCallbacks: the spill service owns the collector
// callbacks; handing it options with callbacks set is an error.
func TestSpillRejectsOwnedCallbacks(t *testing.T) {
	sys := spillSystem(t)
	opts := atum.DefaultOptions()
	opts.OnFull = func(*atum.Collector) {}
	if _, err := kernel.StartSpill(sys, &bytes.Buffer{}, kernel.SpillConfig{Options: opts}); err == nil {
		t.Fatal("OnFull accepted")
	}
}
