// Package kernel boots and operates the simulated machine's operating
// system: a small multiprogramming kernel (written in the machine's own
// assembly, see Source) with preemptive round-robin scheduling, demand
// paging, per-process address spaces and a handful of system calls.
//
// The Go code here plays the role of the console front-end processor and
// bootstrap linker: it assembles the kernel, lays out physical memory
// (system page table, SCB, PCBs, per-process page tables, program
// images), pokes the kernel's configuration cells, and starts the CPU at
// the kernel entry point. From that moment everything that happens —
// scheduling, page faults, system calls — is instructions executing on
// the simulated CPU, visible to ATUM's microcode patches.
package kernel

import (
	"fmt"

	"atum/internal/mem"
	"atum/internal/micro"
	"atum/internal/mmu"
	"atum/internal/vax"
)

// KVBase is the base of system virtual space.
const KVBase uint32 = 0x80000000

// MaxProcs matches the kernel's static process-table size.
const MaxProcs = 16

// Config parameterises a system.
type Config struct {
	Machine micro.Config

	// CPUs is the number of processors sharing the machine's memory
	// (0 or 1 builds the classic uniprocessor). Every CPU runs the same
	// kernel image from kstart with a private interval timer, a private
	// kernel stack, and a private copy of the percpu page mapped through
	// its own system page table; everything else — process table, frame
	// pool, pipe, console, swap device — is shared, with the kernel's
	// spinlocks arbitrating access.
	CPUs int

	// ICRCycles is the interval-timer period in microcycles; QuantumTicks
	// is the number of ticks per scheduling quantum. The product is the
	// preemption interval.
	ICRCycles    uint32
	QuantumTicks uint32

	// MaxStackPages bounds each process's demand-grown user stack.
	MaxStackPages uint32
	// InitialStackPages are mapped eagerly at the top of P1.
	InitialStackPages uint32

	// FreeFrameCap, when nonzero, limits how many frames Finalize puts
	// on the kernel's free list — the rest of RAM is simply never
	// offered. This is the memory-pressure knob for paging studies: a
	// small cap forces the stealer and swap device to carry the
	// workload's working set.
	FreeFrameCap uint32
}

// DefaultConfig runs the standard machine with a 10k-cycle clock tick and
// a 5-tick quantum.
func DefaultConfig() Config {
	return Config{
		Machine:           micro.DefaultConfig(),
		ICRCycles:         10_000,
		QuantumTicks:      5,
		MaxStackPages:     64,
		InitialStackPages: 2,
	}
}

// Proc describes one loaded process.
type Proc struct {
	PID   uint8
	Name  string
	Index int

	PCBPA   uint32 // physical PCB address
	Entry   uint32 // initial PC
	HeapVPN uint32 // first heap page (initial break)
}

// ProcState is the kernel's view of a process slot.
type ProcState uint32

const (
	ProcFree      ProcState = 0
	ProcRunnable  ProcState = 1
	ProcDead      ProcState = 2
	ProcNapping   ProcState = 3
	ProcPipeWrite ProcState = 4
	ProcPipeRead  ProcState = 5
	// ProcRunning marks a process claimed by a CPU: between a scheduler's
	// claim (1 -> 6, under the kernel spinlock) and the process parking
	// itself again, no other CPU may dispatch it and the frame stealer
	// will not take its pages.
	ProcRunning ProcState = 6
)

// KilledStatus is the exit status recorded for processes the kernel
// killed (faults, bad system calls) rather than processes that exited.
const KilledStatus uint32 = 0xFFFFFFFF

// System is a booted (or bootable) machine+kernel+processes assembly.
type System struct {
	// M is the boot processor. Cores lists every processor, Cores[0] == M;
	// on a uniprocessor it has one entry. All cores share one physical
	// memory and one swap device but have private architectural state
	// (registers, TB, interval timer) and private ATUM microstores — a
	// collector installs on one core and sees that core's references.
	M      *micro.Machine
	Cores  []*micro.Machine
	Kernel *vax.Program
	Procs  []*Proc

	cfg       Config
	allocPA   uint32
	percpuPA  uint32   // physical address of the percpu page in the image
	percpu    []uint32 // per-CPU physical address of its percpu page copy
	finalized bool
}

// NewSystem assembles and loads the kernel and prepares the machine. Call
// Spawn for each process, then Finalize, then Run.
func NewSystem(cfg Config) (*System, error) {
	kprog, err := vax.Assemble(Source)
	if err != nil {
		return nil, fmt.Errorf("kernel: assembling: %w", err)
	}
	if kprog.Origin != KVBase {
		return nil, fmt.Errorf("kernel: origin %#x, want %#x", kprog.Origin, KVBase)
	}
	m, err := micro.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	s := &System{M: m, Kernel: kprog, cfg: cfg}

	// Kernel image at physical 0.
	if err := m.Mem.LoadBytes(0, kprog.Bytes); err != nil {
		return nil, fmt.Errorf("kernel: image: %w", err)
	}
	s.allocPA = pageAlign(uint32(len(kprog.Bytes)))

	// System control block: all vectors default to the kill handler,
	// specific ones point at their kernel routines.
	scbPA, err := s.alloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	def := kprog.MustSymbol("h_resv")
	for v := uint32(0); v < mem.PageSize; v += 4 {
		if err := m.Mem.Store32(scbPA+v, def); err != nil {
			return nil, err
		}
	}
	vectors := map[uint16]string{
		vax.VecTranslationNotValid: "h_tnv",
		vax.VecAccessViolation:     "h_acv",
		vax.VecCHMK:                "h_chmk",
		vax.VecArithmetic:          "h_arith",
		vax.VecReserved:            "h_resv",
		vax.VecIntervalTimer:       "h_clock",
		vax.VecSoftware1:           "h_soft",
		vax.VecTraceTrap:           "h_soft",
		vax.VecBreakpoint:          "h_resv",
	}
	for vec, sym := range vectors {
		if err := m.Mem.Store32(scbPA+uint32(vec), kprog.MustSymbol(sym)); err != nil {
			return nil, err
		}
	}
	m.SCBB = scbPA

	// System page table: identity-map every usable frame (trace region
	// excluded) with kernel-only protection.
	frames := m.Mem.ReservedBase() / mem.PageSize
	sptPA, err := s.alloc(pageAlign(frames * 4))
	if err != nil {
		return nil, err
	}
	for f := uint32(0); f < frames; f++ {
		if err := m.Mem.Store32(sptPA+4*f, mmu.MakePTE(f, mmu.ProtKW)); err != nil {
			return nil, err
		}
	}
	m.MMU.SBR = sptPA
	m.MMU.SLR = frames
	m.MMU.MapEn = true

	// Boot kernel stack.
	bootStk, err := s.alloc(2 * mem.PageSize)
	if err != nil {
		return nil, err
	}
	m.CPU.KSP = KVBase + bootStk + 2*mem.PageSize
	m.CPU.R[vax.SP] = m.CPU.KSP

	// Start in kernel mode at IPL 31 (clock blocked until the kernel
	// lowers it by dispatching the first process).
	m.CPU.PSL = uint32(vax.ModeKernel)<<vax.PSLCurModShift | 31<<vax.PSLIPLShift
	m.CPU.R[vax.PC] = kprog.MustSymbol("kstart")

	s.Cores = []*micro.Machine{m}
	s.percpuPA = s.kernPA("percpu")
	s.percpu = []uint32{s.percpuPA}

	// Additional processors: each shares the memory, SCB and kernel image
	// but gets its own system page table (a copy of CPU 0's, with the
	// percpu page remapped to a private frame), its own boot/idle kernel
	// stack, and its own interval timer programmed by kstart.
	ncpu := cfg.CPUs
	if ncpu <= 0 {
		ncpu = 1
	}
	if ncpu > MaxProcs {
		return nil, fmt.Errorf("kernel: %d CPUs exceeds the supported maximum %d", ncpu, MaxProcs)
	}
	for c := 1; c < ncpu; c++ {
		mc := micro.NewOnMemory(cfg.Machine, m)
		mc.CPUID = uint8(c)
		mc.SCBB = scbPA

		sptc, err := s.alloc(pageAlign(frames * 4))
		if err != nil {
			return nil, err
		}
		spt, err := m.Mem.Bytes(sptPA, frames*4)
		if err != nil {
			return nil, err
		}
		if err := m.Mem.LoadBytes(sptc, spt); err != nil {
			return nil, err
		}
		pcpPA, err := s.alloc(mem.PageSize)
		if err != nil {
			return nil, err
		}
		pcp, err := m.Mem.Bytes(s.percpuPA, mem.PageSize)
		if err != nil {
			return nil, err
		}
		if err := m.Mem.LoadBytes(pcpPA, pcp); err != nil {
			return nil, err
		}
		pte := mmu.MakePTE(pcpPA/mem.PageSize, mmu.ProtKW)
		if err := m.Mem.Store32(sptc+4*(s.percpuPA/mem.PageSize), pte); err != nil {
			return nil, err
		}
		mc.MMU.SBR = sptc
		mc.MMU.SLR = frames
		mc.MMU.MapEn = true

		stk, err := s.alloc(2 * mem.PageSize)
		if err != nil {
			return nil, err
		}
		mc.CPU.KSP = KVBase + stk + 2*mem.PageSize
		mc.CPU.R[vax.SP] = mc.CPU.KSP
		mc.CPU.PSL = uint32(vax.ModeKernel)<<vax.PSLCurModShift | 31<<vax.PSLIPLShift
		mc.CPU.R[vax.PC] = kprog.MustSymbol("kstart")

		s.percpu = append(s.percpu, pcpPA)
		s.Cores = append(s.Cores, mc)
	}
	// TB shootdown bus: TBIA/TBIS on any core broadcasts to all siblings.
	for _, a := range s.Cores {
		for _, b := range s.Cores {
			if a != b {
				a.TBPeers = append(a.TBPeers, b.MMU)
			}
		}
	}

	// Configuration cells.
	if err := s.pokeSym("icrval", cfg.ICRCycles); err != nil {
		return nil, err
	}
	if err := s.pokeSym("quantum", cfg.QuantumTicks); err != nil {
		return nil, err
	}
	for c := range s.Cores {
		if err := s.pokePercpu("cpuid", c, uint32(c)); err != nil {
			return nil, err
		}
		if err := s.pokePercpu("qleft", c, cfg.QuantumTicks); err != nil {
			return nil, err
		}
		if err := s.pokePercpu("idlesp", c, s.Cores[c].CPU.KSP); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// alloc grabs page-aligned physical memory during system construction.
func (s *System) alloc(n uint32) (uint32, error) {
	n = pageAlign(n)
	pa := s.allocPA
	if pa+n > s.M.Mem.ReservedBase() {
		return 0, fmt.Errorf("kernel: out of physical memory at %#x (+%#x)", pa, n)
	}
	s.allocPA += n
	return pa, nil
}

func pageAlign(n uint32) uint32 {
	return (n + mem.PageSize - 1) &^ (mem.PageSize - 1)
}

// kernPA converts a kernel symbol to its physical address.
func (s *System) kernPA(sym string) uint32 { return s.Kernel.MustSymbol(sym) - KVBase }

func (s *System) pokeSym(sym string, v uint32) error {
	return s.M.Mem.Store32(s.kernPA(sym), v)
}

// pokeArr writes kernel array cell sym[idx].
func (s *System) pokeArr(sym string, idx int, v uint32) error {
	return s.M.Mem.Store32(s.kernPA(sym)+4*uint32(idx), v)
}

// peekArr reads kernel array cell sym[idx].
func (s *System) peekArr(sym string, idx int) (uint32, error) {
	return s.M.Mem.Load32(s.kernPA(sym) + 4*uint32(idx))
}

// percpuAddr locates percpu cell sym in the physical frame backing that
// page on the given CPU (CPU 0's lives in the kernel image itself).
func (s *System) percpuAddr(sym string, cpu int) uint32 {
	return s.percpu[cpu] + (s.kernPA(sym) - s.percpuPA)
}

// pokePercpu writes a percpu cell on one CPU.
func (s *System) pokePercpu(sym string, cpu int, v uint32) error {
	return s.M.Mem.Store32(s.percpuAddr(sym, cpu), v)
}

// peekPercpu reads a percpu cell on one CPU.
func (s *System) peekPercpu(sym string, cpu int) (uint32, error) {
	return s.M.Mem.Load32(s.percpuAddr(sym, cpu))
}

// Spawn loads a program image as a new process. maxHeapPages bounds the
// demand/sbrk heap beyond the image. The program's entry point is its
// "start" symbol, or its origin if absent.
func (s *System) Spawn(name string, prog *vax.Program, maxHeapPages uint32) (*Proc, error) {
	if s.finalized {
		return nil, fmt.Errorf("kernel: Spawn after Finalize")
	}
	idx := len(s.Procs)
	if idx >= MaxProcs {
		return nil, fmt.Errorf("kernel: process table full (%d)", MaxProcs)
	}
	if prog.Origin < mem.PageSize {
		return nil, fmt.Errorf("kernel: program %q origin %#x overlaps the null guard page", name, prog.Origin)
	}
	if prog.End() >= 0x40000000 {
		return nil, fmt.Errorf("kernel: program %q does not fit in P0", name)
	}

	imageEndVPN := (prog.End() + mem.PageSize - 1) / mem.PageSize
	p0Pages := imageEndVPN + maxHeapPages

	// P0 page table.
	p0ptPA, err := s.alloc(p0Pages * 4)
	if err != nil {
		return nil, err
	}
	// Null guard: valid, kernel-only, so user dereferences of page 0 die
	// with ACV instead of being demand-zeroed.
	if err := s.M.Mem.Store32(p0ptPA, mmu.MakePTE(0, mmu.ProtKW)); err != nil {
		return nil, err
	}
	// Image pages: eagerly mapped and loaded.
	for vpn := prog.Origin / mem.PageSize; vpn < imageEndVPN; vpn++ {
		framePA, err := s.alloc(mem.PageSize)
		if err != nil {
			return nil, err
		}
		// Copy the portion of the image overlapping this page.
		pageVA := vpn * mem.PageSize
		lo, hi := pageVA, pageVA+mem.PageSize
		if lo < prog.Origin {
			lo = prog.Origin
		}
		if hi > prog.End() {
			hi = prog.End()
		}
		if lo < hi {
			src := prog.Bytes[lo-prog.Origin : hi-prog.Origin]
			if err := s.M.Mem.LoadBytes(framePA+(lo-pageVA), src); err != nil {
				return nil, err
			}
		}
		pte := mmu.MakePTE(framePA/mem.PageSize, mmu.ProtUW)
		if err := s.M.Mem.Store32(p0ptPA+4*vpn, pte); err != nil {
			return nil, err
		}
	}
	// Heap PTEs stay invalid (zero): demand-zero or sbrk fills them.

	// P1: stack window at the top of the control region.
	maxStack := s.cfg.MaxStackPages
	if maxStack == 0 {
		maxStack = 64
	}
	p1LR := uint32(mmu.RegionPages) - maxStack
	p1ptPA, err := s.alloc(maxStack * 4)
	if err != nil {
		return nil, err
	}
	init := s.cfg.InitialStackPages
	if init == 0 {
		init = 1
	}
	if init > maxStack {
		init = maxStack
	}
	for i := uint32(0); i < init; i++ {
		framePA, err := s.alloc(mem.PageSize)
		if err != nil {
			return nil, err
		}
		vpn := uint32(mmu.RegionPages) - 1 - i // from the top down
		pte := mmu.MakePTE(framePA/mem.PageSize, mmu.ProtUW)
		if err := s.M.Mem.Store32(p1ptPA+4*(vpn-p1LR), pte); err != nil {
			return nil, err
		}
	}
	p1BR := KVBase + p1ptPA - 4*p1LR

	// Kernel stack for this process.
	kstkPA, err := s.alloc(2 * mem.PageSize)
	if err != nil {
		return nil, err
	}
	ksp := KVBase + kstkPA + 2*mem.PageSize

	// PCB.
	pcbPA, err := s.alloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	pid := uint8(idx + 1)
	entry := prog.Origin
	if v, ok := prog.Symbol("start"); ok {
		entry = v
	}
	pcb := map[int]uint32{
		micro.PCBKSP:  ksp,
		micro.PCBUSP:  0x80000000, // top of P1; first push predecrements
		micro.PCBAP:   0x80000000,
		micro.PCBFP:   0x80000000,
		micro.PCBPC:   entry,
		micro.PCBPSL:  uint32(vax.ModeUser)<<vax.PSLCurModShift | uint32(vax.ModeUser)<<vax.PSLPrvModShift,
		micro.PCBP0BR: KVBase + p0ptPA,
		micro.PCBP0LR: p0Pages,
		micro.PCBP1BR: p1BR,
		micro.PCBP1LR: p1LR,
		micro.PCBPID:  uint32(pid),
	}
	for slot, v := range pcb {
		if err := s.M.Mem.Store32(pcbPA+4*uint32(slot), v); err != nil {
			return nil, err
		}
	}

	// Kernel process-table entries.
	if err := s.pokeArr("procstate", idx, uint32(ProcRunnable)); err != nil {
		return nil, err
	}
	if err := s.pokeArr("procpcb", idx, pcbPA); err != nil {
		return nil, err
	}
	if err := s.pokeArr("procpid", idx, uint32(pid)); err != nil {
		return nil, err
	}
	if err := s.pokeArr("procbrk", idx, imageEndVPN); err != nil {
		return nil, err
	}

	p := &Proc{PID: pid, Name: name, Index: idx, PCBPA: pcbPA, Entry: entry, HeapVPN: imageEndVPN}
	s.Procs = append(s.Procs, p)
	return p, nil
}

// Finalize seeds the free-frame list with all remaining usable frames and
// publishes the process count. Must be called once, after all Spawns.
func (s *System) Finalize() error {
	if s.finalized {
		return fmt.Errorf("kernel: double Finalize")
	}
	if len(s.Procs) == 0 {
		return fmt.Errorf("kernel: no processes spawned")
	}
	s.finalized = true

	if err := s.pokeSym("nproc", uint32(len(s.Procs))); err != nil {
		return err
	}
	// curproc is percpu: every CPU's first scan starts just past the last
	// slot, i.e. at process 0, and the claim lock spreads the early picks
	// across the cores.
	for c := range s.Cores {
		if err := s.pokePercpu("curproc", c, uint32(len(s.Procs)-1)); err != nil {
			return err
		}
	}

	first := s.allocPA / mem.PageSize
	limit := s.M.Mem.ReservedBase() / mem.PageSize
	n := 0
	for f := first; f < limit; f++ {
		if s.cfg.FreeFrameCap != 0 && uint32(n) >= s.cfg.FreeFrameCap {
			break
		}
		if err := s.pokeArr("freestk", n, f); err != nil {
			return err
		}
		n++
	}
	if err := s.pokeSym("nframes", limit); err != nil {
		return err
	}
	return s.pokeSym("freecnt", uint32(n))
}

// ExitStatus reports the exit status recorded by exit(2), or
// KilledStatus for processes the kernel killed. Only meaningful once the
// process is dead.
func (s *System) ExitStatus(p *Proc) (uint32, error) {
	return s.peekArr("procexit", p.Index)
}

// SwapActivity reports paging traffic to the swap device.
func (s *System) SwapActivity() (reads, writes uint64) {
	return s.M.DiskStats()
}

// Rusage reports the kernel's per-process accounting: system calls
// made, page faults taken, and times scheduled in.
func (s *System) Rusage(p *Proc) (syscalls, faults, switches uint32, err error) {
	if syscalls, err = s.peekArr("proccalls", p.Index); err != nil {
		return
	}
	if faults, err = s.peekArr("procfaults", p.Index); err != nil {
		return
	}
	switches, err = s.peekArr("procswtch", p.Index)
	return
}

// Run boots (or continues) the system for at most maxInstrs instructions
// across all cores (0 = unlimited). It returns when the kernel halts —
// all processes have exited and every CPU executed HALT — or the budget
// is exhausted.
//
// On a multiprocessor the cores are interleaved by a deterministic
// rule: each step executes the non-halted core with the smallest cycle
// count (ties to the lowest CPU id), the discrete-event equivalent of
// cores running at the same clock rate. One instruction at a time on
// one goroutine makes memory sequentially consistent and every
// instruction atomic — the model the kernel's interlocked-instruction
// spinlocks assume — and makes an N-core run a pure function of the
// configuration, so captures replay bit-for-bit.
func (s *System) Run(maxInstrs uint64) (micro.StopReason, error) {
	if !s.finalized {
		return 0, fmt.Errorf("kernel: Run before Finalize")
	}
	if len(s.Cores) == 1 {
		return s.M.Run(maxInstrs)
	}
	var start uint64
	for _, c := range s.Cores {
		start += c.Instrs
	}
	for {
		var next *micro.Machine
		var executed uint64
		for _, c := range s.Cores {
			executed += c.Instrs
			if c.Halted() {
				continue
			}
			if next == nil || c.Cycles < next.Cycles {
				next = c
			}
		}
		if next == nil {
			return micro.StopHalt, nil
		}
		for _, c := range s.Cores {
			if c.TakeStopRequest() {
				return micro.StopRequested, nil
			}
		}
		if maxInstrs > 0 && executed-start >= maxInstrs {
			return micro.StopInstrLimit, nil
		}
		if err := next.Step(); err != nil {
			return micro.StopHalt, err
		}
	}
}

// NumCPUs reports how many processors the system was built with.
func (s *System) NumCPUs() int { return len(s.Cores) }

// Console returns everything processes have written.
func (s *System) Console() string { return string(s.M.Mem.Console()) }

// State reports a process slot's kernel state.
func (s *System) State(p *Proc) (ProcState, error) {
	v, err := s.peekArr("procstate", p.Index)
	return ProcState(v), err
}

// FreeFrames reports how many frames remain on the kernel's free list.
func (s *System) FreeFrames() (uint32, error) {
	v, err := s.M.Mem.Load32(s.kernPA("freecnt"))
	return v, err
}
