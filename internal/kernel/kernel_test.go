package kernel

import (
	"fmt"
	"strings"
	"testing"

	"atum/internal/micro"
	"atum/internal/vax"
)

func asm(t *testing.T, src string) *vax.Program {
	t.Helper()
	p, err := vax.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// boot builds a system with the given programs, finalizes and runs it.
func boot(t *testing.T, cfg Config, progs ...*vax.Program) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if _, err := s.Spawn("p", p, 32); err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	reason, err := s.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, s.M.State())
	}
	if reason != micro.StopHalt {
		t.Fatalf("run stopped early: %v\n%s", reason, s.M.State())
	}
	return s
}

const helloSrc = `
	.org	0x200
start:	moval	msg, r1
	movl	#6, r2
	chmk	#1		; write
	chmk	#0		; exit
msg:	.ascii	"hello\n"
`

func TestSingleProcessHello(t *testing.T) {
	s := boot(t, DefaultConfig(), asm(t, helloSrc))
	if got := s.Console(); got != "hello\n" {
		t.Errorf("console = %q, want %q", got, "hello\n")
	}
	st, err := s.State(s.Procs[0])
	if err != nil {
		t.Fatal(err)
	}
	if st != ProcDead {
		t.Errorf("process state = %d, want dead", st)
	}
}

func TestGetpid(t *testing.T) {
	// Each process prints 'A'+pid once.
	src := `
	.org	0x200
start:	chmk	#4		; getpid -> r0
	addl2	#0x40, r0	; 'A'-1+pid
	movb	r0, ch
	moval	ch, r1
	movl	#1, r2
	chmk	#1
	chmk	#0
ch:	.byte	0
`
	s := boot(t, DefaultConfig(), asm(t, src), asm(t, src), asm(t, src))
	got := s.Console()
	if len(got) != 3 {
		t.Fatalf("console = %q, want 3 chars", got)
	}
	for _, c := range []string{"A", "B", "C"} {
		if !strings.Contains(got, c) {
			t.Errorf("console %q missing %s", got, c)
		}
	}
}

func TestYieldInterleaving(t *testing.T) {
	// Two processes alternate voluntarily; output must interleave.
	mk := func(ch byte) string {
		return `
	.org	0x200
start:	movl	#5, r6
loop:	movb	#` + fmt.Sprintf("%d", '0'+ch) + `, ch
	moval	ch, r1
	movl	#1, r2
	chmk	#1
	chmk	#3		; yield
	sobgtr	r6, loop
	chmk	#0
ch:	.byte	0
`
	}
	s := boot(t, DefaultConfig(), asm(t, mk(1)), asm(t, mk(2)))
	got := s.Console()
	if len(got) != 10 {
		t.Fatalf("console = %q, want 10 chars", got)
	}
	// With strict alternation via yield the streams interleave exactly.
	if !strings.Contains(got, "12") && !strings.Contains(got, "21") {
		t.Errorf("no interleaving in %q", got)
	}
}

func TestPreemptiveScheduling(t *testing.T) {
	// CPU-bound processes with no yields; a short quantum must interleave
	// their outputs.
	mk := func(ch byte) string {
		return `
	.org	0x200
start:	movl	#40, r6
loop:	movl	#300, r7
spin:	sobgtr	r7, spin	; burn cycles
	movb	#` + fmt.Sprintf("%d", '0'+ch) + `, ch
	moval	ch, r1
	movl	#1, r2
	chmk	#1
	sobgtr	r6, loop
	chmk	#0
ch:	.byte	0
`
	}
	cfg := DefaultConfig()
	cfg.ICRCycles = 2000
	cfg.QuantumTicks = 2
	s := boot(t, cfg, asm(t, mk(1)), asm(t, mk(2)))
	got := s.Console()
	if len(got) != 80 {
		t.Fatalf("console length = %d, want 80", len(got))
	}
	// Preemption means neither process's output is contiguous.
	if strings.Contains(got, strings.Repeat("1", 40)) || strings.Contains(got, strings.Repeat("2", 40)) {
		t.Errorf("no preemption visible: %q", got)
	}
}

func TestDemandZeroStackGrowth(t *testing.T) {
	// Touch stack pages well below the initially mapped top.
	src := `
	.org	0x200
start:	movl	#20, r6		; 20 pushes of 512 bytes apart
	movl	sp, r1
loop:	subl2	#512, r1
	movl	r6, (r1)	; touch a new stack page (faults, demand-zero)
	sobgtr	r6, loop
	moval	ok, r1
	movl	#3, r2
	chmk	#1
	chmk	#0
ok:	.ascii	"ok\n"
`
	cfg := DefaultConfig()
	cfg.MaxStackPages = 64
	s := boot(t, cfg, asm(t, src))
	if got := s.Console(); got != "ok\n" {
		t.Errorf("console = %q", got)
	}
	if s.M.MMU.Stats.Faults == 0 {
		t.Error("no page faults occurred; demand paging untested")
	}
}

func TestStackOverflowKilled(t *testing.T) {
	// Run past the P1 window: the process dies, the system still halts.
	src := `
	.org	0x200
start:	movl	sp, r1
loop:	subl2	#512, r1
	movl	#1, (r1)
	brb	loop		; runs off the bottom of the stack window
`
	cfg := DefaultConfig()
	cfg.MaxStackPages = 8
	s := boot(t, cfg, asm(t, src))
	st, _ := s.State(s.Procs[0])
	if st != ProcDead {
		t.Errorf("runaway process not killed: state=%d", st)
	}
}

func TestSbrk(t *testing.T) {
	src := `
	.org	0x200
start:	movl	#4, r1
	chmk	#2		; sbrk(4 pages) -> r0 = old break
	movl	r0, r7
	; write a marker into each new page, read it back
	movl	#4, r6
	movl	r7, r8
fill:	movl	#0x5a5a5a5a, (r8)
	addl2	#512, r8
	sobgtr	r6, fill
	movl	(r7), r9
	cmpl	r9, #0x5a5a5a5a
	bneq	bad
	moval	ok, r1
	movl	#3, r2
	chmk	#1
bad:	chmk	#0
ok:	.ascii	"ok\n"
`
	s := boot(t, DefaultConfig(), asm(t, src))
	if got := s.Console(); got != "ok\n" {
		t.Errorf("console = %q", got)
	}
}

func TestNullDereferenceKilled(t *testing.T) {
	src := `
	.org	0x200
start:	clrl	r1
	movl	(r1), r2	; *NULL -> ACV -> killed
	moval	no, r1
	movl	#2, r2
	chmk	#1		; must not run
	chmk	#0
no:	.ascii	"no"
`
	s := boot(t, DefaultConfig(), asm(t, src))
	if got := s.Console(); got != "" {
		t.Errorf("console = %q, want empty", got)
	}
	st, _ := s.State(s.Procs[0])
	if st != ProcDead {
		t.Errorf("state = %d, want dead", st)
	}
}

func TestBadSyscallKilledOthersContinue(t *testing.T) {
	bad := `
	.org	0x200
start:	chmk	#99
	chmk	#0
`
	good := `
	.org	0x200
start:	moval	m, r1
	movl	#2, r2
	chmk	#1
	chmk	#0
m:	.ascii	"ok"
`
	s := boot(t, DefaultConfig(), asm(t, bad), asm(t, good))
	if got := s.Console(); got != "ok" {
		t.Errorf("console = %q, want \"ok\"", got)
	}
}

func TestDivideByZeroKilled(t *testing.T) {
	src := `
	.org	0x200
start:	divl3	#0, #7, r0
	chmk	#0
`
	s := boot(t, DefaultConfig(), asm(t, src))
	st, _ := s.State(s.Procs[0])
	if st != ProcDead {
		t.Errorf("state = %d, want dead", st)
	}
}

func TestFreeFramesAccounting(t *testing.T) {
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("hello", asm(t, helloSrc), 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	before, err := s.FreeFrames()
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("no free frames after boot")
	}
	if _, err := s.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	after, _ := s.FreeFrames()
	// Exit reclaims the dead process's resident frames (image, stack,
	// and anything demand-mapped), so the pool must grow.
	if after <= before {
		t.Errorf("exit did not reclaim frames: %d -> %d", before, after)
	}
}

func TestSpawnValidation(t *testing.T) {
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Origin in guard page.
	if _, err := s.Spawn("bad", asm(t, "\t.org 0\nstart: halt\n"), 4); err == nil {
		t.Error("spawn with origin 0 should fail")
	}
	// Run before finalize.
	if _, err := s.Run(1); err == nil {
		t.Error("Run before Finalize should fail")
	}
	// Finalize with no processes.
	if err := s.Finalize(); err == nil {
		t.Error("Finalize with no processes should fail")
	}
}

func TestKernelReferencesVisible(t *testing.T) {
	// Hook the machine and verify that kernel-mode references occur while
	// user processes run — the property ATUM exists to expose.
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Spawn("hello", asm(t, helloSrc), 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	var kernel, user, ptes, switches uint64
	s.M.AddHook(micro.EvIFetch, func(_ *micro.Machine, a micro.Access) {
		if a.Mode == vax.ModeUser {
			user++
		} else {
			kernel++
		}
	})
	s.M.AddHook(micro.EvPTERead, func(_ *micro.Machine, a micro.Access) { ptes++ })
	s.M.AddHook(micro.EvCtxSwitch, func(_ *micro.Machine, a micro.Access) { switches++ })
	if _, err := s.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if kernel == 0 || user == 0 {
		t.Errorf("kernel=%d user=%d ifetches; both should be nonzero", kernel, user)
	}
	if ptes == 0 {
		t.Error("no PTE reads observed")
	}
	if switches == 0 {
		t.Error("no context switch observed (LDPCTX at minimum)")
	}
}
