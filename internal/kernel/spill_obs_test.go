package kernel_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/obs"
	"atum/internal/trace"
)

// TestSpillPollDuringCapture is the counter-race regression test: a
// monitoring goroutine hammers the service's accessors while the
// capture loop spills segments. Before the counters became atomics
// (and the error/closed state moved behind a mutex) this failed under
// -race; now it must pass, and the polled values must be monotonically
// consistent with the final totals.
func TestSpillPollDuringCapture(t *testing.T) {
	sys := spillSystem(t)
	var sink bytes.Buffer
	svc, err := kernel.StartSpill(sys, &sink, kernel.SpillConfig{
		Options:      atum.DefaultOptions(),
		SegmentBytes: 4 << 10,
		Codec:        trace.CodecDelta,
		Meta:         "poll-test",
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	var polls uint64
	var maxSeen uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			rec := svc.SpilledRecords()
			if rec < maxSeen {
				t.Errorf("SpilledRecords went backwards: %d after %d", rec, maxSeen)
				return
			}
			maxSeen = rec
			svc.LostRecords()
			svc.Segments()
			svc.SinkErr()
			if polls++; polls == 1 {
				close(started)
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	// Don't start the machine until the poller is live, so the polling
	// genuinely overlaps the capture instead of racing its startup.
	<-started

	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	if polls == 0 {
		t.Fatal("poller never ran")
	}
	if maxSeen > svc.SpilledRecords() {
		t.Fatalf("polled %d spilled records, final total %d", maxSeen, svc.SpilledRecords())
	}
	if svc.Segments() == 0 || svc.SpilledRecords() == 0 {
		t.Fatalf("capture did not spill: %d segments, %d records", svc.Segments(), svc.SpilledRecords())
	}
}

// firstLastSink fails with a distinctive error on the first rejected
// write and a different one afterwards, so tests can tell whether a
// caller reports the first failure or a later (flush-time) one.
type firstLastSink struct {
	data   bytes.Buffer
	limit  int
	failed bool
}

func (s *firstLastSink) Write(p []byte) (int, error) {
	if s.data.Len()+len(p) > s.limit {
		if !s.failed {
			s.failed = true
			return 0, fmt.Errorf("first sink failure")
		}
		return 0, fmt.Errorf("later sink failure")
	}
	return s.data.Write(p)
}

// TestSpillCloseAfterSinkFailure pins the Close contract when the sink
// has failed mid-capture: Close reports the *first* sink error (not the
// flush error that follows it), a second Close is an idempotent replay
// of the same error, the patches come off (no references are even
// counted as dropped afterwards), and every recorded record is
// accounted for: Recorded == SpilledRecords + LostRecords.
func TestSpillCloseAfterSinkFailure(t *testing.T) {
	sys := spillSystem(t)
	sink := &firstLastSink{limit: 8 << 10}
	svc, err := kernel.StartSpill(sys, sink, kernel.SpillConfig{
		Options:      atum.DefaultOptions(),
		SegmentBytes: 4 << 10,
		Codec:        trace.CodecRaw,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First leg: run in small slices until the sink fails and the
	// collector pauses (the workload must not halt first).
	for i := 0; svc.SinkErr() == nil; i++ {
		if i > 10_000 {
			t.Fatal("sink never failed; shrink the limit")
		}
		reason, err := sys.Run(1000)
		if err != nil {
			t.Fatal(err)
		}
		if reason == micro.StopHalt {
			t.Fatal("workload halted before the sink failed")
		}
	}
	// The recovery a monitor might attempt: resume capture. The buffer
	// partially refills; those records can never reach the dead sink
	// and must surface in LostRecords at Close, not silently vanish.
	col := svc.Collector()
	col.Resume()
	for i := 0; col.BufferedRecords() == 0; i++ {
		if i > 1000 {
			t.Fatal("test needs records in the buffer at Close")
		}
		if _, err := sys.Run(10); err != nil {
			t.Fatal(err)
		}
	}

	err = svc.Close()
	if err == nil {
		t.Fatal("Close after sink failure reported success")
	}
	if !strings.Contains(err.Error(), "first sink failure") {
		t.Errorf("Close reported %q, want the first sink error", err)
	}
	if again := svc.Close(); again == nil || again.Error() != err.Error() {
		t.Errorf("second Close = %v, want the same %v", again, err)
	}

	if got, want := svc.SpilledRecords()+svc.LostRecords(), col.Recorded; got != want {
		t.Errorf("Spilled(%d) + Lost(%d) = %d, want Recorded = %d: records vanished unaccounted",
			svc.SpilledRecords(), svc.LostRecords(), got, want)
	}

	// Patches are uninstalled: further execution must not move the
	// collector's counters, not even the dropped count.
	recorded, dropped := col.Recorded, col.Dropped
	sys.Run(1_000_000)
	if col.Recorded != recorded || col.Dropped != dropped {
		t.Errorf("collector still hooked after Close: recorded %d->%d dropped %d->%d",
			recorded, col.Recorded, dropped, col.Dropped)
	}

	// What did reach the sink is still a valid stream.
	rd, err := trace.OpenReaderAt(bytes.NewReader(sink.data.Bytes()), int64(sink.data.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Records(2)
	if err != nil {
		t.Fatalf("pre-failure stream does not decode: %v", err)
	}
	if uint64(len(got)) != svc.SpilledRecords() {
		t.Fatalf("decoded %d records, service spilled %d", len(got), svc.SpilledRecords())
	}
}

// TestSpillMetricsRegistry checks the service's live telemetry against
// its own accessors: a dedicated registry sees the same segments,
// records, bytes and latency observations the service reports, and the
// exposition contains every required metric name.
func TestSpillMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	sys := spillSystem(t)
	var sink bytes.Buffer
	svc, err := kernel.StartSpill(sys, &sink, kernel.SpillConfig{
		Options:      atum.DefaultOptions(),
		SegmentBytes: 4 << 10,
		Codec:        trace.CodecDelta,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := reg.Counter("atum_spill_segments_total").Value(), uint64(svc.Segments()); got != want {
		t.Errorf("segments metric %d, accessor %d", got, want)
	}
	if got, want := reg.Counter("atum_spill_records_total").Value(), svc.SpilledRecords(); got != want {
		t.Errorf("records metric %d, accessor %d", got, want)
	}
	if got, want := reg.Counter("atum_spill_bytes_total").Value(), uint64(sink.Len()); got != want {
		t.Errorf("bytes metric %d, sink holds %d", got, want)
	}
	if got := reg.Histogram("atum_spill_latency_seconds", obs.DefSecondsBuckets).Count(); got != uint64(svc.Segments()) {
		t.Errorf("latency histogram has %d observations, want %d", got, svc.Segments())
	}
	// The collector instrumented into the same registry.
	if got, want := reg.Counter("atum_capture_records_total").Value(), svc.Collector().Recorded; got != want {
		t.Errorf("capture records metric %d, collector recorded %d", got, want)
	}
	text := reg.String()
	for _, name := range []string{
		"atum_spill_segments_total", "atum_spill_records_total",
		"atum_spill_bytes_total", "atum_spill_lost_records_total",
		"atum_spill_sink_stalls_total", "atum_spill_latency_seconds_count",
		"atum_capture_records_total", "atum_capture_watermark_fires_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
