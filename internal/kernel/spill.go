// Spill service: the OS half of long captures. The real ATUM system
// paired the microcode patches with an operating-system procedure that
// fielded the buffer-full condition, froze the machine, dumped the
// reserved region to stable storage and resumed — turning a few
// megabytes of reserved memory into arbitrarily long traces. StartSpill
// is that procedure: it installs a collector with a watermark armed,
// and every time the watermark interrupt fires it extracts the segment
// and appends it to a segmented trace stream (internal/trace
// SegmentWriter). If the sink stalls, capture degrades gracefully to
// counted-drop mode instead of corrupting the stream.
//
// The service's counters are part of the observability contract: a
// monitoring goroutine may poll SpilledRecords/LostRecords/SinkErr (or
// scrape the obs registry) while the capture loop spills, so every
// counter is an atomic and the error/closed state sits behind a mutex.
package kernel

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"atum/internal/atum"
	"atum/internal/micro"
	"atum/internal/obs"
	"atum/internal/trace"
)

// SpillConfig parameterises a streaming capture.
type SpillConfig struct {
	// Options configures the underlying collector. OnWatermark and
	// OnFull are owned by the spill service and must be nil.
	Options atum.Options

	// SegmentBytes bounds the reserved buffer used per segment (the
	// collector's BufBytes). Zero uses Options.BufBytes, or the whole
	// reserved region.
	SegmentBytes uint32

	// Watermark overrides the spill threshold; zero defaults to 1.0 —
	// spill exactly at capacity, which is loss-free because extraction
	// (like the paper's freeze/dump) takes no machine time.
	Watermark float64

	// Codec selects the stream codec (trace.CodecRaw or CodecDelta).
	Codec uint16

	// Encoding selects the per-segment payload encoding
	// (trace.SegEncRaw or trace.SegEncFlate). Flate trades spill-path
	// CPU for sink bytes — the paper's actual bottleneck was getting
	// records off the machine, and compression stretches the same sink
	// bandwidth severalfold over the delta codec alone.
	Encoding uint8

	// Meta is the stream's provenance string.
	Meta string

	// CPU stamps every segment of this service with a processor id; it
	// only takes effect with Seq set (uniprocessor streams carry no
	// per-segment identity). StartSpillCPUs fills it per core.
	CPU uint16

	// Seq, when non-nil, switches the stream to the sequence-stamped v3
	// container: every spilled segment draws the next machine-wide
	// sequence mark at the moment it is written. All services of one
	// SMP capture share a single counter, so the marks are the global
	// spill order and trace.MergeCPUs can interleave the per-CPU
	// streams deterministically.
	Seq *trace.SeqCounter

	// OnSegment, when set, observes every segment immediately after it
	// reaches the sink — the splice point for the streaming analysis
	// pipeline (sweep.Pipeline.OnSegment), which decodes and simulates
	// each segment while the capture continues. The callback is purely
	// observational: it runs on the spill path and cannot fail the
	// capture, and the segment payload is only valid during the call.
	OnSegment func(trace.StreamSegment)

	// Metrics selects the registry the service instruments into; nil
	// means obs.Default().
	Metrics *obs.Registry
}

// spillMetrics are the service's live telemetry: segments and records
// that reached the sink, bytes written, per-spill latency, records lost
// to a failed sink, and how many times the sink stalled.
type spillMetrics struct {
	segments   *obs.Counter
	records    *obs.Counter
	bytes      *obs.Counter
	compressed *obs.Counter
	lost       *obs.Counter
	dropped    *obs.Counter
	stalls     *obs.Counter
	latency    *obs.Histogram
}

func newSpillMetrics(r *obs.Registry) spillMetrics {
	if r == nil {
		r = obs.Default()
	}
	return spillMetrics{
		segments: r.Counter("atum_spill_segments_total"),
		records:  r.Counter("atum_spill_records_total"),
		bytes:    r.Counter("atum_spill_bytes_total"),
		// Stored payload bytes of segments that actually compressed;
		// against atum_spill_bytes_total this reads out the on-disk win.
		compressed: r.Counter("atum_spill_compressed_bytes_total"),
		lost:       r.Counter("atum_spill_lost_records_total"),
		dropped:    r.Counter("atum_spill_dropped_total"),
		stalls:     r.Counter("atum_spill_sink_stalls_total"),
		latency:    r.Histogram("atum_spill_latency_seconds", obs.DefSecondsBuckets),
	}
}

// countingWriter charges every byte that reaches the sink to the
// registry before passing it through.
type countingWriter struct {
	w io.Writer
	n *obs.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(uint64(n))
	return n, err
}

// SpillService owns an installed collector streaming to a sink.
type SpillService struct {
	col *atum.Collector
	sw  *trace.SegmentWriter
	cpu uint16
	seq *trace.SeqCounter // nil for unstamped (uniprocessor) streams

	// spilled/lost/segments are polled by monitors while the capture
	// loop writes them: atomics, never plain fields.
	spilled  atomic.Uint64
	lost     atomic.Uint64 // records captured but never written (sink failure)
	segments atomic.Uint32

	mu      sync.Mutex
	sinkErr error // guarded by mu
	closed  bool  // guarded by mu

	// spillMu serializes segment extraction/write bodies with Close's
	// final drain, so a watermark spill in flight (and its OnSegment
	// observer) finishes before the stream is footered — and so a second
	// Close cannot observe counters mid-update.
	spillMu sync.Mutex
	// done is closed when the first Close finishes; later Closes block
	// on it so *every* returning Close sees final accounting
	// (Recorded == SpilledRecords + LostRecords) and a complete stream.
	done chan struct{}

	met spillMetrics
}

// StartSpill installs ATUM on the system's machine and arranges for
// every watermark crossing to append one segment to w. The caller runs
// the workload, then calls Close to flush the final partial segment and
// uninstall the patches.
func StartSpill(sys *System, w io.Writer, cfg SpillConfig) (*SpillService, error) {
	return startSpillOn(sys.M, w, cfg)
}

// StartSpillCPUs starts one spill service per core of an SMP system,
// each streaming to the matching sink. The reserved region is divided
// into equal per-CPU slices (each core's microcode writes only its own
// slice), and all services share one sequence counter, so the per-CPU
// streams carry globally ordered sequence marks and trace.MergeCPUs can
// reassemble the machine-wide spill order afterwards. Callers close
// every returned service, even on a partial-start error.
func StartSpillCPUs(sys *System, sinks []io.Writer, cfg SpillConfig) ([]*SpillService, error) {
	n := sys.NumCPUs()
	if len(sinks) != n {
		return nil, fmt.Errorf("kernel: %d spill sinks for %d CPUs", len(sinks), n)
	}
	if cfg.Seq == nil {
		cfg.Seq = new(trace.SeqCounter)
	}
	reserved := sys.M.Mem.ReservedSize()
	slice := reserved / uint32(n)
	slice -= slice % trace.RecordBytes
	if slice == 0 {
		return nil, fmt.Errorf("kernel: %d-byte reserved region cannot hold %d per-CPU buffers", reserved, n)
	}
	if cfg.SegmentBytes == 0 || cfg.SegmentBytes > slice {
		cfg.SegmentBytes = slice
	}
	svcs := make([]*SpillService, 0, n)
	for c, m := range sys.Cores {
		ccfg := cfg
		ccfg.CPU = uint16(c)
		ccfg.Options.BufOffset = uint32(c) * slice
		ccfg.Options.BufBytes = ccfg.SegmentBytes
		s, err := startSpillOn(m, sinks[c], ccfg)
		if err != nil {
			for _, prev := range svcs {
				prev.Close()
			}
			return nil, fmt.Errorf("kernel: spill service for CPU %d: %w", c, err)
		}
		svcs = append(svcs, s)
	}
	return svcs, nil
}

func startSpillOn(m *micro.Machine, w io.Writer, cfg SpillConfig) (*SpillService, error) {
	if cfg.Options.OnWatermark != nil || cfg.Options.OnFull != nil {
		return nil, fmt.Errorf("kernel: spill service owns the collector callbacks")
	}
	met := newSpillMetrics(cfg.Metrics)
	cw := &countingWriter{w: w, n: met.bytes}
	var sw *trace.SegmentWriter
	var err error
	if cfg.Seq != nil {
		sw, err = trace.NewSegmentWriterV3(cw, cfg.Codec, cfg.Meta)
	} else {
		sw, err = trace.NewSegmentWriter(cw, cfg.Codec, cfg.Meta)
	}
	if err != nil {
		return nil, err
	}
	if err := sw.SetEncoding(cfg.Encoding); err != nil {
		return nil, err
	}
	if cfg.OnSegment != nil {
		sw.Tee(cfg.OnSegment)
	}
	s := &SpillService{sw: sw, cpu: cfg.CPU, seq: cfg.Seq, met: met, done: make(chan struct{})}
	opts := cfg.Options
	if opts.Metrics == nil {
		opts.Metrics = cfg.Metrics
	}
	if cfg.SegmentBytes != 0 {
		opts.BufBytes = cfg.SegmentBytes
	}
	opts.Watermark = cfg.Watermark
	if opts.Watermark == 0 {
		opts.Watermark = 1.0
	}
	opts.OnWatermark = func(c *atum.Collector) { s.spill(c) }
	// If the sink has stalled the watermark spill stops draining; the
	// buffer then runs to capacity and OnFull keeps the collector
	// paused, counting drops — the degraded mode the stream's
	// per-segment Dropped field reports once the sink recovers.
	opts.OnFull = func(c *atum.Collector) {
		if s.SinkErr() == nil {
			s.spill(c)
		}
	}
	col, err := atum.Install(m, opts)
	if err != nil {
		return nil, err
	}
	s.col = col
	return s, nil
}

// spill extracts the buffered segment and appends it to the stream.
// On a sink error the records are abandoned (counted via the service's
// accounting, not silently) and the collector is left paused so
// subsequent events are counted as dropped rather than half-written.
func (s *SpillService) spill(c *atum.Collector) {
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	s.spillLocked(c)
}

func (s *SpillService) spillLocked(c *atum.Collector) {
	recs, st, err := c.ExtractSegment()
	if err != nil {
		// Extraction reads simulated RAM; failure means the machine is
		// torn down — treat it like a sink failure.
		s.fail(c, err)
		return
	}
	if err := s.SinkErr(); err != nil {
		s.addLost(uint64(len(recs)))
		s.fail(c, err)
		return
	}
	if len(recs) == 0 && st == (atum.SegmentStats{}) {
		// Nothing happened since the last spill (a capture ending exactly
		// on a watermark boundary): no segment to write.
		return
	}
	start := time.Now()
	var info trace.SegmentInfo
	if s.seq != nil {
		info, err = s.sw.WriteSegmentSeq(recs, st.Dropped, st.DilationCycles, s.cpu, s.seq.Next())
	} else {
		info, err = s.sw.WriteSegment(recs, st.Dropped, st.DilationCycles)
	}
	if err != nil {
		s.addLost(uint64(len(recs)))
		s.fail(c, err)
		return
	}
	s.met.latency.Observe(time.Since(start).Seconds())
	if info.Encoding != trace.SegEncRaw {
		s.met.compressed.Add(info.PayloadBytes)
	}
	s.segments.Add(1)
	s.met.segments.Inc()
	s.met.dropped.Add(st.Dropped)
	s.spilled.Add(uint64(len(recs)))
	s.met.records.Add(uint64(len(recs)))
}

// addLost charges records that will never reach the sink.
func (s *SpillService) addLost(n uint64) {
	if n == 0 {
		return
	}
	s.lost.Add(n)
	s.met.lost.Add(n)
}

// fail records the first sink error (later failures keep the original
// diagnosis) and pauses the collector.
func (s *SpillService) fail(c *atum.Collector, err error) {
	s.mu.Lock()
	if s.sinkErr == nil {
		s.sinkErr = err
		s.met.stalls.Inc()
	}
	s.mu.Unlock()
	c.Pause()
}

// Close flushes the final partial segment, closes the stream and
// uninstalls the patches. The stream on disk is complete and valid
// whether or not the sink ever failed; SinkErr reports if capture
// degraded along the way. Close is idempotent, and a concurrent or
// repeated Close *blocks* until the first closer has fully drained: by
// the time any Close returns, every segment (and OnSegment callback)
// has been delivered and Recorded == SpilledRecords + LostRecords
// holds. After a sink failure, Close returns the first sink error —
// not the flush error that usually follows it — and records still in
// the reserved buffer are counted as lost, preserving the same
// identity.
func (s *SpillService) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Another closer got here first. Returning its stale view (the
		// old behaviour) let a caller observe the service with the final
		// segment still in flight — records neither spilled nor lost.
		// Wait for the drain instead.
		<-s.done
		return s.SinkErr()
	}
	s.closed = true
	s.mu.Unlock()
	defer close(s.done)
	// The final drain runs under spillMu so a watermark spill already in
	// flight completes (sink write, counters, OnSegment) before the
	// footer is written.
	s.spillMu.Lock()
	if s.SinkErr() == nil {
		s.spillLocked(s.col)
	} else {
		// The sink is gone: whatever the buffer still holds can never be
		// written. Account it as lost rather than letting it vanish.
		s.addLost(uint64(s.col.BufferedRecords()))
	}
	s.col.Uninstall()
	err := s.sw.Close()
	s.spillMu.Unlock()
	if err != nil {
		s.mu.Lock()
		if s.sinkErr == nil {
			s.sinkErr = err
		}
		s.mu.Unlock()
	}
	return s.SinkErr()
}

// Collector exposes the underlying collector (statistics, pause/resume).
func (s *SpillService) Collector() *atum.Collector { return s.col }

// Segments returns how many segments have been written to the sink.
// Safe to call from a polling goroutine during capture.
func (s *SpillService) Segments() uint32 { return s.segments.Load() }

// SpilledRecords returns how many records reached the sink. Safe to
// call from a polling goroutine during capture.
func (s *SpillService) SpilledRecords() uint64 { return s.spilled.Load() }

// LostRecords returns how many captured records a failed sink swallowed
// (distinct from the collector's Dropped, which counts events never
// captured at all). Safe to call from a polling goroutine.
func (s *SpillService) LostRecords() uint64 { return s.lost.Load() }

// SinkErr returns the first sink failure, if any. Safe to call from a
// polling goroutine.
func (s *SpillService) SinkErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinkErr
}
