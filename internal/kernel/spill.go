// Spill service: the OS half of long captures. The real ATUM system
// paired the microcode patches with an operating-system procedure that
// fielded the buffer-full condition, froze the machine, dumped the
// reserved region to stable storage and resumed — turning a few
// megabytes of reserved memory into arbitrarily long traces. StartSpill
// is that procedure: it installs a collector with a watermark armed,
// and every time the watermark interrupt fires it extracts the segment
// and appends it to a segmented trace stream (internal/trace
// SegmentWriter). If the sink stalls, capture degrades gracefully to
// counted-drop mode instead of corrupting the stream.
package kernel

import (
	"fmt"
	"io"

	"atum/internal/atum"
	"atum/internal/trace"
)

// SpillConfig parameterises a streaming capture.
type SpillConfig struct {
	// Options configures the underlying collector. OnWatermark and
	// OnFull are owned by the spill service and must be nil.
	Options atum.Options

	// SegmentBytes bounds the reserved buffer used per segment (the
	// collector's BufBytes). Zero uses Options.BufBytes, or the whole
	// reserved region.
	SegmentBytes uint32

	// Watermark overrides the spill threshold; zero defaults to 1.0 —
	// spill exactly at capacity, which is loss-free because extraction
	// (like the paper's freeze/dump) takes no machine time.
	Watermark float64

	// Codec selects the stream codec (trace.CodecRaw or CodecDelta).
	Codec uint16

	// Meta is the stream's provenance string.
	Meta string
}

// SpillService owns an installed collector streaming to a sink.
type SpillService struct {
	col     *atum.Collector
	sw      *trace.SegmentWriter
	spilled uint64
	lost    uint64 // records extracted but never written (sink failure)
	sinkErr error
	closed  bool
}

// StartSpill installs ATUM on the system's machine and arranges for
// every watermark crossing to append one segment to w. The caller runs
// the workload, then calls Close to flush the final partial segment and
// uninstall the patches.
func StartSpill(sys *System, w io.Writer, cfg SpillConfig) (*SpillService, error) {
	if cfg.Options.OnWatermark != nil || cfg.Options.OnFull != nil {
		return nil, fmt.Errorf("kernel: spill service owns the collector callbacks")
	}
	sw, err := trace.NewSegmentWriter(w, cfg.Codec, cfg.Meta)
	if err != nil {
		return nil, err
	}
	s := &SpillService{sw: sw}
	opts := cfg.Options
	if cfg.SegmentBytes != 0 {
		opts.BufBytes = cfg.SegmentBytes
	}
	opts.Watermark = cfg.Watermark
	if opts.Watermark == 0 {
		opts.Watermark = 1.0
	}
	opts.OnWatermark = func(c *atum.Collector) { s.spill(c) }
	// If the sink has stalled the watermark spill stops draining; the
	// buffer then runs to capacity and OnFull keeps the collector
	// paused, counting drops — the degraded mode the stream's
	// per-segment Dropped field reports once the sink recovers.
	opts.OnFull = func(c *atum.Collector) {
		if s.sinkErr == nil {
			s.spill(c)
		}
	}
	col, err := atum.Install(sys.M, opts)
	if err != nil {
		return nil, err
	}
	s.col = col
	return s, nil
}

// spill extracts the buffered segment and appends it to the stream.
// On a sink error the records are abandoned (counted via the service's
// accounting, not silently) and the collector is left paused so
// subsequent events are counted as dropped rather than half-written.
func (s *SpillService) spill(c *atum.Collector) {
	recs, st, err := c.ExtractSegment()
	if err != nil {
		// Extraction reads simulated RAM; failure means the machine is
		// torn down — treat it like a sink failure.
		s.fail(c, err)
		return
	}
	if s.sinkErr != nil {
		s.lost += uint64(len(recs))
		s.fail(c, s.sinkErr)
		return
	}
	if len(recs) == 0 && st == (atum.SegmentStats{}) {
		// Nothing happened since the last spill (a capture ending exactly
		// on a watermark boundary): no segment to write.
		return
	}
	if err := s.sw.WriteSegment(recs, st.Dropped, st.DilationCycles); err != nil {
		s.lost += uint64(len(recs))
		s.fail(c, err)
		return
	}
	s.spilled += uint64(len(recs))
}

func (s *SpillService) fail(c *atum.Collector, err error) {
	if s.sinkErr == nil {
		s.sinkErr = err
	}
	c.Pause()
}

// Close flushes the final partial segment, closes the stream and
// uninstalls the patches. The stream on disk is complete and valid
// whether or not the sink ever failed; SinkErr reports if capture
// degraded along the way.
func (s *SpillService) Close() error {
	if s.closed {
		return s.sinkErr
	}
	s.closed = true
	if s.sinkErr == nil {
		s.spill(s.col)
	}
	s.col.Uninstall()
	if err := s.sw.Close(); err != nil && s.sinkErr == nil {
		s.sinkErr = err
	}
	return s.sinkErr
}

// Collector exposes the underlying collector (statistics, pause/resume).
func (s *SpillService) Collector() *atum.Collector { return s.col }

// Segments returns how many segments have been written to the sink.
func (s *SpillService) Segments() uint32 { return s.sw.Segments() }

// SpilledRecords returns how many records reached the sink.
func (s *SpillService) SpilledRecords() uint64 { return s.spilled }

// LostRecords returns how many extracted records a failed sink
// swallowed (distinct from the collector's Dropped, which counts events
// never captured at all).
func (s *SpillService) LostRecords() uint64 { return s.lost }

// SinkErr returns the first sink failure, if any.
func (s *SpillService) SinkErr() error { return s.sinkErr }
