package asmcheck

import (
	"encoding/binary"

	"atum/internal/vax"
)

// edgeKind classifies a control-flow edge for diagnostics.
type edgeKind uint8

const (
	edgeBranch edgeKind = iota // branch / jump
	edgeCall                   // jsb / bsbb / bsbw / calls
	edgeFall                   // fall-through to the next instruction
	edgeCase                   // casel dispatch-table entry
)

func (k edgeKind) String() string {
	switch k {
	case edgeBranch:
		return "branch"
	case edgeCall:
		return "call"
	case edgeFall:
		return "fall-through"
	case edgeCase:
		return "case"
	}
	return "?"
}

type edge struct {
	from uint32 // address of the transferring instruction
	to   uint32
	kind edgeKind
}

// dataRef is a non-control operand whose effective address is statically
// computable (absolute or PC-relative).
type dataRef struct {
	from  uint32
	addr  uint32
	width uint32
	write bool
}

type decodeFault struct {
	addr  uint32
	block uint32
	err   error
}

// cfg is the decoded control-flow graph of a program: the set of
// reachable instructions grouped into basic blocks, the edges between
// them, and the statically-computable data references.
type cfg struct {
	prog     *vax.Program
	org, end uint32

	instrs  map[uint32]vax.Decoded
	blockOf map[uint32]uint32 // instruction address -> enclosing block start

	// interior marks image bytes that are the non-first byte of some
	// decoded instruction; a control transfer into such a byte splits an
	// instruction.
	interior []bool
	// dataBytes marks image bytes that are reachable non-instruction
	// data: CALLS entry masks and casel dispatch tables.
	dataBytes []bool

	edges    []edge
	dataRefs []dataRef
	faults   []decodeFault
	fallOff  []uint32 // instructions whose fall-through leaves the image

	subEntries map[uint32]bool // jsb/bsbb/bsbw targets (rsb-return routines)
	terminal   map[uint32]bool // chmk codes that do not return
	entries    []uint32        // resolved entry points (abstract-interpretation roots)
}

// succInfo describes one instruction's control-flow behaviour.
type succInfo struct {
	branches []uint32 // definite transfer targets
	calls    []uint32 // definite call targets (traversal resumes after)
	caseEdge []uint32 // casel table targets
	falls    bool     // execution can continue at the next instruction
	jsbLike  bool     // calls are jsb/bsb (rsb-returning) rather than calls
	maskSkip uint32   // bytes of non-instruction data the targets skip (calls entry mask)
	ctlOps   map[int]bool
}

func buildCFG(p *vax.Program, opts Options) *cfg {
	c := &cfg{
		prog:       p,
		org:        p.Origin,
		end:        p.Origin + uint32(len(p.Bytes)),
		instrs:     map[uint32]vax.Decoded{},
		blockOf:    map[uint32]uint32{},
		interior:   make([]bool, len(p.Bytes)),
		dataBytes:  make([]bool, len(p.Bytes)),
		subEntries: map[uint32]bool{},
		terminal:   map[uint32]bool{},
	}
	for _, code := range opts.terminalSyscalls() {
		c.terminal[code] = true
	}

	worklist := opts.entryAddrs(p)
	c.entries = append([]uint32(nil), worklist...)
	queued := map[uint32]bool{}
	for _, a := range worklist {
		queued[a] = true
	}

	for len(worklist) > 0 {
		block := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		addr := block
		for {
			if addr < c.org || addr >= c.end {
				// Only a fall-through can walk here; transfers out of the
				// image are reported from their edges.
				break
			}
			if _, done := c.instrs[addr]; done {
				break // merged into an already-decoded run
			}
			d, err := vax.DecodeBytes(p.Bytes[addr-c.org:], addr)
			if err != nil {
				c.faults = append(c.faults, decodeFault{addr: addr, block: block, err: err})
				break
			}
			c.instrs[addr] = d
			c.blockOf[addr] = block
			for i := 1; i < d.Len && int(addr-c.org)+i < len(c.interior); i++ {
				c.interior[addr-c.org+int32OK(i)] = true
			}

			s := c.classify(d)
			push := func(t uint32, entrySkip uint32) {
				t += entrySkip
				if t >= c.org && t < c.end && !queued[t] {
					queued[t] = true
					worklist = append(worklist, t)
				}
			}
			for _, t := range s.branches {
				c.edges = append(c.edges, edge{from: addr, to: t, kind: edgeBranch})
				push(t, 0)
			}
			for _, t := range s.caseEdge {
				c.edges = append(c.edges, edge{from: addr, to: t, kind: edgeCase})
				push(t, 0)
			}
			for _, t := range s.calls {
				c.edges = append(c.edges, edge{from: addr, to: t, kind: edgeCall})
				if s.jsbLike {
					if t >= c.org && t < c.end {
						c.subEntries[t] = true
					}
					push(t, 0)
				} else {
					// CALLS target: a 2-byte entry mask precedes the code.
					for i := uint32(0); i < s.maskSkip && t+i >= c.org && t+i < c.end; i++ {
						c.dataBytes[t+i-c.org] = true
					}
					push(t, s.maskSkip)
				}
			}
			c.collectDataRefs(d, s.ctlOps)

			if !s.falls {
				break
			}
			next := addr + uint32(d.Len)
			if len(s.caseEdge) > 0 {
				// casel falls through past its dispatch table.
				next = c.caseFallAddr(d)
			}
			if next >= c.end {
				c.fallOff = append(c.fallOff, addr)
				break
			}
			addr = next
		}
	}
	return c
}

func int32OK(i int) uint32 { return uint32(i) }

// classify determines the successors of one decoded instruction.
func (c *cfg) classify(d vax.Decoded) succInfo {
	s := succInfo{falls: true, ctlOps: map[int]bool{}}
	op := d.Info.Opcode
	switch op {
	case vax.OpBRB, vax.OpBRW:
		s.falls = false
		s.ctlOps[0] = true
		if t, ok := d.OperandTarget(0); ok {
			s.branches = append(s.branches, t)
		}
	case vax.OpJMP:
		s.falls = false
		s.ctlOps[0] = true
		if t, ok := c.directTarget(d, 0); ok {
			s.branches = append(s.branches, t)
		}
	case vax.OpBSBB, vax.OpBSBW:
		s.jsbLike = true
		s.ctlOps[0] = true
		if t, ok := d.OperandTarget(0); ok {
			s.calls = append(s.calls, t)
		}
	case vax.OpJSB:
		s.jsbLike = true
		s.ctlOps[0] = true
		if t, ok := c.directTarget(d, 0); ok {
			s.calls = append(s.calls, t)
		}
	case vax.OpCALLS:
		s.maskSkip = 2
		s.ctlOps[1] = true
		if t, ok := c.directTarget(d, 1); ok {
			s.calls = append(s.calls, t)
		}
	case vax.OpRET, vax.OpRSB, vax.OpREI, vax.OpHALT:
		s.falls = false
	case vax.OpCHMK:
		if code, ok := constOperand(d, 0); ok && c.terminal[code] {
			s.falls = false
		}
	case vax.OpCASEL:
		s.caseEdge, s.falls = c.caseTargets(d)
	default:
		for i, spec := range d.Info.Operands {
			if spec.Access == vax.AccBranch {
				s.ctlOps[i] = true
				if t, ok := d.OperandTarget(i); ok {
					s.branches = append(s.branches, t)
				}
			}
		}
	}
	return s
}

// directTarget resolves an address-access control operand (jmp/jsb/calls
// destination). Deferred modes are pointer loads — the final target is
// dynamic — so only plain PC-relative and absolute modes resolve.
func (c *cfg) directTarget(d vax.Decoded, idx int) (uint32, bool) {
	op := d.Operands[idx]
	switch op.Mode {
	case vax.ModeAbsolute, vax.ModeByteDisp, vax.ModeWordDisp, vax.ModeLongDisp:
		if op.Mode != vax.ModeAbsolute && op.Reg != vax.PC {
			return 0, false
		}
		return d.OperandTarget(idx)
	}
	return 0, false
}

// constOperand extracts a constant operand value (short literal or
// immediate).
func constOperand(d vax.Decoded, idx int) (uint32, bool) {
	op := d.Operands[idx]
	switch op.Mode {
	case vax.ModeLiteral:
		return uint32(op.Lit), true
	case vax.ModeImmediate:
		return op.Imm, true
	}
	return 0, false
}

// caseTargets expands a casel dispatch table when base and limit are
// constants. Each table entry is a word displacement relative to the
// start of the table; out-of-range selectors continue past the table.
func (c *cfg) caseTargets(d vax.Decoded) (targets []uint32, falls bool) {
	_, baseOK := constOperand(d, 1)
	limit, limitOK := constOperand(d, 2)
	if !baseOK || !limitOK || limit > 4096 {
		// Dynamic dispatch: successors unknown; suppress fall-through
		// analysis rather than guess.
		return nil, false
	}
	table := d.Addr + uint32(d.Len)
	for i := uint32(0); i <= limit; i++ {
		off := table + 2*i
		if off+2 > c.end || off < c.org {
			break
		}
		disp := int16(binary.LittleEndian.Uint16(c.prog.Bytes[off-c.org:]))
		targets = append(targets, table+uint32(int32(disp)))
		// The table itself is data, not instructions.
		c.dataBytes[off-c.org] = true
		if off+1 < c.end {
			c.dataBytes[off+1-c.org] = true
		}
	}
	return targets, true
}

// caseFallAddr is where execution continues when a casel selector is out
// of range: just past the dispatch table.
func (c *cfg) caseFallAddr(d vax.Decoded) uint32 {
	limit, _ := constOperand(d, 2)
	return d.Addr + uint32(d.Len) + 2*(limit+1)
}

// collectDataRefs records statically-computable effective addresses of
// non-control operands, used by the protected-write and dead-code rules.
func (c *cfg) collectDataRefs(d vax.Decoded, ctlOps map[int]bool) {
	for i, spec := range d.Info.Operands {
		if ctlOps[i] || spec.Access == vax.AccBranch {
			continue
		}
		t, ok := d.OperandTarget(i)
		if !ok {
			continue
		}
		write := spec.Access == vax.AccWrite || spec.Access == vax.AccModify
		// The block-move microinstructions write through their
		// address-access destination operand.
		if (d.Info.Opcode == vax.OpMOVC3 && i == 2) || (d.Info.Opcode == vax.OpMOVC5 && i == 4) {
			write = true
		}
		c.dataRefs = append(c.dataRefs, dataRef{
			from:  d.Addr,
			addr:  t,
			width: uint32(spec.Width),
			write: write,
		})
	}
}
