package asmcheck

import (
	"fmt"
	"math/bits"
	"sort"

	"atum/internal/vax"
)

// checkStackBalance verifies push/pop discipline along every path of
// each jsb/bsb-entered routine: the net stack depth at every rsb must be
// zero, and join points must agree on depth. Routines containing stack
// manipulation the pass cannot model (dynamic pushr masks, direct moves
// into sp) are skipped silently rather than guessed at.
func (c *cfg) checkStackBalance() []Diag {
	entries := make([]uint32, 0, len(c.subEntries))
	for e := range c.subEntries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	var out []Diag
	for _, entry := range entries {
		out = append(out, c.analyzeRoutine(entry)...)
	}
	return out
}

func (c *cfg) analyzeRoutine(entry uint32) []Diag {
	type item struct {
		addr  uint32
		depth int
	}
	depth := map[uint32]int{entry: 0}
	work := []item{{entry, 0}}
	var diags []Diag
	reportedJoin := false

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		d, ok := c.instrs[it.addr]
		if !ok {
			continue // undecoded (fault already reported elsewhere)
		}
		delta, analyzable := stackDelta(d)
		if !analyzable {
			return nil // abandon: this routine does raw sp surgery
		}
		after := it.depth + delta

		if d.Info.Opcode == vax.OpRSB {
			if after != 0 {
				diags = append(diags, Diag{
					Rule: RuleStackBalance, Sev: SevWarn,
					Addr: it.addr, Block: c.blockOf[it.addr],
					Msg: fmt.Sprintf("rsb with net stack imbalance of %+d bytes on some path from routine %#x", after, entry),
				})
			}
			continue
		}

		s := c.classify(d)
		var succs []uint32
		succs = append(succs, s.branches...)
		succs = append(succs, s.caseEdge...)
		if s.falls {
			next := it.addr + uint32(d.Len)
			if len(s.caseEdge) > 0 {
				next = c.caseFallAddr(d)
			}
			succs = append(succs, next)
		}
		for _, t := range succs {
			if t < c.org || t >= c.end {
				continue
			}
			if prev, seen := depth[t]; seen {
				if prev != after && !reportedJoin {
					reportedJoin = true
					diags = append(diags, Diag{
						Rule: RuleStackBalance, Sev: SevWarn,
						Addr: t, Block: c.blockOf[t],
						Msg: fmt.Sprintf("paths join at %#x with different stack depths (%d vs %d bytes) in routine %#x", t, prev, after, entry),
					})
				}
				continue
			}
			depth[t] = after
			work = append(work, item{t, after})
		}
	}
	return diags
}

// stackDelta returns the net change in pushed-byte depth one instruction
// causes, from before it executes to after it (for calls: after the
// matching ret). ok=false means the effect is not statically modelable.
func stackDelta(d vax.Decoded) (delta int, ok bool) {
	switch d.Info.Opcode {
	case vax.OpPUSHL, vax.OpPUSHAB, vax.OpPUSHAL:
		return 4, true
	case vax.OpPUSHR:
		m, c := constOperand(d, 0)
		if !c {
			return 0, false
		}
		return 4 * bits.OnesCount32(m&0x7FFF), true
	case vax.OpPOPR:
		m, c := constOperand(d, 0)
		if !c {
			return 0, false
		}
		return -4 * bits.OnesCount32(m&0x7FFF), true
	case vax.OpCALLS:
		// RET removes the frame and the n longwords of arguments the
		// caller pushed, so across the call depth drops by 4n.
		n, c := constOperand(d, 0)
		if !c {
			return 0, false
		}
		return -4 * int(n), true
	case vax.OpBSBB, vax.OpBSBW, vax.OpJSB:
		return 0, true // callee assumed balanced (checked separately)
	}

	delta = 0
	for i, spec := range d.Info.Operands {
		op := d.Operands[i]
		w := int(spec.Width)
		switch {
		case op.Mode == vax.ModeAutoInc && op.Reg == vax.SP:
			delta -= w
		case op.Mode == vax.ModeAutoDec && op.Reg == vax.SP:
			delta += w
		case op.Mode == vax.ModeAutoIncDeferred && op.Reg == vax.SP:
			delta -= 4
		case op.Mode == vax.ModeRegister && int(op.Reg) == vax.SP &&
			(spec.Access == vax.AccWrite || spec.Access == vax.AccModify):
			// Arithmetic directly on sp: model the immediate forms of
			// add/sub, refuse anything else.
			switch d.Info.Opcode {
			case vax.OpADDL2:
				if k, c := constOperand(d, 0); c {
					delta -= int(k)
					continue
				}
			case vax.OpSUBL2:
				if k, c := constOperand(d, 0); c {
					delta += int(k)
					continue
				}
			}
			return 0, false
		}
	}
	return delta, true
}
