package asmcheck

import (
	"fmt"
	"math/bits"
	"sort"

	"atum/internal/vax"
)

// checkStackBalance verifies push/pop discipline along every path of
// each jsb/bsb-entered routine: the net stack depth at every rsb must be
// zero, and join points must agree on depth. The analysis is
// interprocedural: each routine gets a net-depth summary (memoized,
// callee-first), and a jsb/bsb inside a routine applies its callee's
// summary instead of assuming balance — so a routine that inherits a
// leak from a subroutine it calls is flagged at its own rsb, not just
// deep in the callee. Routines containing stack manipulation the pass
// cannot model (dynamic pushr masks, direct moves into sp) are skipped
// silently rather than guessed at.
func (c *cfg) checkStackBalance() []Diag {
	entries := make([]uint32, 0, len(c.subEntries))
	for e := range c.subEntries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	sums := &summaries{c: c, memo: map[uint32]routineSummary{}, busy: map[uint32]bool{}}
	var out []Diag
	for _, entry := range entries {
		out = append(out, c.analyzeRoutine(entry, sums)...)
	}
	return out
}

// routineSummary is the net stack delta a routine applies by the time
// it returns. ok=false means no consistent summary exists (the body is
// unmodelable, rsb depths disagree, or no rsb is reachable) and callers
// fall back to assuming balance.
type routineSummary struct {
	net int
	ok  bool
}

// summaries memoizes per-routine net deltas. busy breaks jsb recursion:
// a self-recursive routine is assumed balanced across the back edge,
// which keeps the analysis terminating and errs toward silence.
type summaries struct {
	c    *cfg
	memo map[uint32]routineSummary
	busy map[uint32]bool
}

// net returns the summary delta for the routine at entry.
func (s *summaries) net(entry uint32) (int, bool) {
	if r, done := s.memo[entry]; done {
		return r.net, r.ok
	}
	if s.busy[entry] {
		return 0, false
	}
	s.busy[entry] = true
	r := s.c.summarizeRoutine(entry, s)
	s.busy[entry] = false
	s.memo[entry] = r
	return r.net, r.ok
}

// rsbExit is one rsb reached inside a routine and the depth on arrival.
type rsbExit struct {
	addr  uint32
	depth int
}

// depthJoin is a merge point reached with disagreeing depths.
type depthJoin struct {
	addr       uint32
	prev, next int
}

// walkRoutine explores the routine at entry with a per-instruction
// depth map, applying callee summaries at jsb/bsb sites. ok=false means
// the routine does sp surgery the pass cannot model.
func (c *cfg) walkRoutine(entry uint32, sums *summaries) (exits []rsbExit, joins []depthJoin, ok bool) {
	type item struct {
		addr  uint32
		depth int
	}
	depth := map[uint32]int{entry: 0}
	work := []item{{entry, 0}}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		d, decoded := c.instrs[it.addr]
		if !decoded {
			continue // undecoded (fault already reported elsewhere)
		}
		delta, analyzable := c.stackDelta(d, sums)
		if !analyzable {
			return nil, nil, false // abandon: this routine does raw sp surgery
		}
		after := it.depth + delta

		if d.Info.Opcode == vax.OpRSB {
			exits = append(exits, rsbExit{it.addr, after})
			continue
		}

		s := c.classify(d)
		var succs []uint32
		succs = append(succs, s.branches...)
		succs = append(succs, s.caseEdge...)
		if s.falls {
			next := it.addr + uint32(d.Len)
			if len(s.caseEdge) > 0 {
				next = c.caseFallAddr(d)
			}
			succs = append(succs, next)
		}
		for _, t := range succs {
			if t < c.org || t >= c.end {
				continue
			}
			if prev, seen := depth[t]; seen {
				if prev != after {
					joins = append(joins, depthJoin{t, prev, after})
				}
				continue
			}
			depth[t] = after
			work = append(work, item{t, after})
		}
	}
	return exits, joins, true
}

// summarizeRoutine computes a routine's net-delta summary: the depth
// every reachable rsb agrees on.
func (c *cfg) summarizeRoutine(entry uint32, sums *summaries) routineSummary {
	exits, joins, ok := c.walkRoutine(entry, sums)
	if !ok || len(joins) > 0 || len(exits) == 0 {
		return routineSummary{}
	}
	net := exits[0].depth
	for _, e := range exits[1:] {
		if e.depth != net {
			return routineSummary{}
		}
	}
	return routineSummary{net: net, ok: true}
}

// analyzeRoutine emits the diagnostics for one routine.
func (c *cfg) analyzeRoutine(entry uint32, sums *summaries) []Diag {
	exits, joins, ok := c.walkRoutine(entry, sums)
	if !ok {
		return nil
	}
	var diags []Diag
	for _, e := range exits {
		if e.depth != 0 {
			diags = append(diags, Diag{
				Rule: RuleStackBalance, Sev: SevWarn,
				Addr: e.addr, Block: c.blockOf[e.addr],
				Msg: fmt.Sprintf("rsb with net stack imbalance of %+d bytes on some path from routine %#x", e.depth, entry),
			})
		}
	}
	if len(joins) > 0 {
		j := joins[0]
		diags = append(diags, Diag{
			Rule: RuleStackBalance, Sev: SevWarn,
			Addr: j.addr, Block: c.blockOf[j.addr],
			Msg: fmt.Sprintf("paths join at %#x with different stack depths (%d vs %d bytes) in routine %#x", j.addr, j.prev, j.next, entry),
		})
	}
	return diags
}

// stackDelta returns the net change in pushed-byte depth one instruction
// causes, from before it executes to after it (for calls: after the
// matching return). ok=false means the effect is not statically
// modelable.
func (c *cfg) stackDelta(d vax.Decoded, sums *summaries) (delta int, ok bool) {
	switch d.Info.Opcode {
	case vax.OpPUSHL, vax.OpPUSHAB, vax.OpPUSHAL:
		return 4, true
	case vax.OpPUSHR:
		m, k := constOperand(d, 0)
		if !k {
			return 0, false
		}
		return 4 * bits.OnesCount32(m&0x7FFF), true
	case vax.OpPOPR:
		m, k := constOperand(d, 0)
		if !k {
			return 0, false
		}
		return -4 * bits.OnesCount32(m&0x7FFF), true
	case vax.OpCALLS:
		// RET removes the frame and the n longwords of arguments the
		// caller pushed, so across the call depth drops by 4n.
		n, k := constOperand(d, 0)
		if !k {
			return 0, false
		}
		return -4 * int(n), true
	case vax.OpBSBB, vax.OpBSBW, vax.OpJSB:
		// Across the call, the stack moves by whatever the callee leaks:
		// its summary when one exists, else assume balance (the callee's
		// own analysis reports its internal problems).
		if t, resolved := c.callTarget(d); resolved && c.subEntries[t] {
			if net, known := sums.net(t); known {
				return net, true
			}
		}
		return 0, true
	}

	delta = 0
	for i, spec := range d.Info.Operands {
		op := d.Operands[i]
		w := int(spec.Width)
		switch {
		case op.Mode == vax.ModeAutoInc && op.Reg == vax.SP:
			delta -= w
		case op.Mode == vax.ModeAutoDec && op.Reg == vax.SP:
			delta += w
		case op.Mode == vax.ModeAutoIncDeferred && op.Reg == vax.SP:
			delta -= 4
		case op.Mode == vax.ModeRegister && int(op.Reg) == vax.SP &&
			(spec.Access == vax.AccWrite || spec.Access == vax.AccModify):
			// Arithmetic directly on sp: model the immediate forms of
			// add/sub, refuse anything else.
			switch d.Info.Opcode {
			case vax.OpADDL2:
				if k, c := constOperand(d, 0); c {
					delta -= int(k)
					continue
				}
			case vax.OpSUBL2:
				if k, c := constOperand(d, 0); c {
					delta += int(k)
					continue
				}
			}
			return 0, false
		}
	}
	return delta, true
}

// callTarget resolves the destination of a jsb/bsb instruction.
func (c *cfg) callTarget(d vax.Decoded) (uint32, bool) {
	switch d.Info.Opcode {
	case vax.OpBSBB, vax.OpBSBW:
		return d.OperandTarget(0)
	case vax.OpJSB:
		return c.directTarget(d, 0)
	}
	return 0, false
}
