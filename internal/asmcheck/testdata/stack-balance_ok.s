; asmcheck: bare
	.org	0x200
start:	jsb	tidy
	halt
tidy:	pushr	#0x06		; r1, r2
	movl	#5, r1
	pushl	r1
	movl	(sp)+, r2
	popr	#0x06
	rsb
