; asmcheck: bare
; The per-routine pass assumed every jsb callee balanced, so only
; inner's rsb was flagged. The interprocedural summary propagates
; inner's +4 leak across the jsb, flagging outer's rsb too.
	.org	0x200
start:	jsb	outer
	halt
outer:	jsb	inner
oret:	rsb			; inherits inner's +4 leak
inner:	pushl	r0		; never popped
iret:	rsb
