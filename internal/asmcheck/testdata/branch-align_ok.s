; asmcheck: bare
	.org	0x200
start:	brb	next
	halt
next:	movl	#1, r0
	halt
