; asmcheck: bare
; asmcheck: protect trace:0x10000:0x1000
	.org	0x200
start:	movl	r1, @#0x8000	; store outside the protected range
	halt
