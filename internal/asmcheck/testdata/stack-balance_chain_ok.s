; asmcheck: bare
; A balanced callee chain: the summaries are all zero and nothing in
; the chain is flagged.
	.org	0x200
start:	jsb	outer
	halt
outer:	jsb	inner
	rsb
inner:	pushl	r0
	movl	(sp)+, r0
	rsb
