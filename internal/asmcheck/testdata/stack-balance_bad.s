; asmcheck: bare
	.org	0x200
start:	jsb	leaky
	halt
leaky:	pushl	r0		; never popped
	rsb
