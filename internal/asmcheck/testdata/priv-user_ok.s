; asmcheck: user
	.org	0x200
start:	movl	#1, r0
	chmk	#0
