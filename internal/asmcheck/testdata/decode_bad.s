; asmcheck: bare
	.org	0x200
start:	clrl	r0
	.byte	0x57		; reserved opcode on the execution path
