; asmcheck: bare
	.org	0x200
start:	halt
orphan:	movl	#1, r0		; never branched to, never referenced
	brb	orphan
