; asmcheck: user
	.org	0x200
start:	mtpr	r0, #18		; privileged on a user path
	chmk	#0
