; asmcheck: bare
	.org	0x200
start:	nop
	halt
