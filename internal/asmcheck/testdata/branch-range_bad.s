; asmcheck: bare
	.org	0x200
start:	clrl	r0
	brw	0x1000		; far outside the image
