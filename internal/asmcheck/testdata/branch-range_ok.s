; asmcheck: bare
	.org	0x200
start:	clrl	r0
loop:	incl	r0
	cmpl	r0, #10
	blss	loop
	halt
