; asmcheck: bare
; asmcheck: protect trace:0x10000:0x1000
; The CFG-only pass resolved just absolute and PC-relative writes; this
; store goes through a register that provably holds a protected address
; and only the constant-propagating interpreter sees it.
	.org	0x200
start:	moval	@#0x10008, r1
	movl	r0, (r1)	; computed store into the trace buffer
	clrl	r2
	movl	r0, 0x10010(r2)	; displacement off a known-zero base
	halt
