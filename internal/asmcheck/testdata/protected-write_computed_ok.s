; asmcheck: bare
; asmcheck: protect trace:0x10000:0x1000
; Register-held addresses that stay outside the protected range, and
; writes through registers the interpreter cannot pin down, are clean.
	.org	0x200
start:	moval	@#0xff00, r1
	movl	r0, (r1)	; below the protected base
	movl	r0, 0x80(r1)	; 0xff80+4 still short of 0x10000
	jsb	sub
	movl	r0, (r1)	; r1 unknown after the call: no claim
	halt
sub:	movl	#1, r1		; callees may retarget registers freely
	rsb
