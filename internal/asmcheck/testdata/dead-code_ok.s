; asmcheck: bare
	.org	0x200
start:	movl	val, r0
	brb	fin
fin:	halt
	.align	4
val:	.long	7
