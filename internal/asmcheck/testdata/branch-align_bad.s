; asmcheck: bare
	.org	0x200
start:	movl	#1, r0
	brb	mid
	halt
mid	=	start + 1	; lands inside the movl above
