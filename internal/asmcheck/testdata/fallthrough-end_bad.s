; asmcheck: bare
	.org	0x200
start:	movl	#1, r0
	incl	r0		; no halt/exit: runs off the image
