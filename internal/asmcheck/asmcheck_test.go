package asmcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"atum/internal/vax"
)

// parseProfile reads "; asmcheck:" directives from a fixture header:
//
//	; asmcheck: user | bare
//	; asmcheck: protect name:base:size
func parseProfile(t *testing.T, src string) Options {
	t.Helper()
	opts := BareProgram()
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "; asmcheck:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "user":
			opts.UserMode = true
			opts.TerminalSyscalls = nil
		case "bare":
		default:
			if r, ok := strings.CutPrefix(fields[0], "protect"); ok && r == "" && len(fields) == 2 {
				parts := strings.Split(fields[1], ":")
				if len(parts) != 3 {
					t.Fatalf("bad protect directive %q", line)
				}
				base, err1 := strconv.ParseUint(parts[1], 0, 32)
				size, err2 := strconv.ParseUint(parts[2], 0, 32)
				if err1 != nil || err2 != nil {
					t.Fatalf("bad protect directive %q", line)
				}
				opts.Protected = append(opts.Protected, Range{Name: parts[0], Base: uint32(base), Size: uint32(size)})
			} else {
				t.Fatalf("unknown asmcheck directive %q", line)
			}
		}
	}
	return opts
}

func checkFile(t *testing.T, path string) []Diag {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := vax.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return Check(prog, parseProfile(t, string(src)))
}

// TestFixtureCorpus: every *_bad.s fixture triggers the rule its name
// carries; every *_ok.s fixture is completely clean. Together the bad
// fixtures must cover all eight rules. Names are
// <rule>[_variant]_<bad|ok>.s: the rule is everything before the first
// underscore, the kind everything after the last, so one rule can keep
// several fixtures (protected-write_computed_bad.s).
func TestFixtureCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	triggered := map[string]bool{}
	for _, f := range files {
		base := strings.TrimSuffix(filepath.Base(f), ".s")
		first := strings.Index(base, "_")
		if first < 0 {
			t.Fatalf("fixture %s: name must be <rule>[_variant]_<bad|ok>.s", f)
		}
		rule, kind := base[:first], base[strings.LastIndex(base, "_")+1:]
		diags := checkFile(t, f)
		switch kind {
		case "bad":
			found := false
			for _, d := range diags {
				if d.Rule == rule {
					found = true
					triggered[rule] = true
				}
			}
			if !found {
				t.Errorf("%s: rule %q not triggered; got %v", f, rule, diags)
			}
		case "ok":
			if len(diags) != 0 {
				t.Errorf("%s: expected clean, got %v", f, diags)
			}
		default:
			t.Fatalf("fixture %s: unknown kind %q", f, kind)
		}
	}
	all := []string{RuleBranchRange, RuleBranchAlign, RuleDecode, RuleDeadCode,
		RulePrivUser, RuleProtectedWrite, RuleFallthrough, RuleStackBalance}
	for _, r := range all {
		if !triggered[r] {
			t.Errorf("no fixture triggers rule %q", r)
		}
	}
}

// TestExampleProgramsClean: every assembly example ships lint-clean.
func TestExampleProgramsClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "asm", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs: %v", err)
	}
	for _, f := range files {
		if diags := checkFile(t, f); len(diags) != 0 {
			t.Errorf("%s: %v", f, diags)
		}
	}
}

// TestDiagFormat pins the diagnostic rendering drivers grep on.
func TestDiagFormat(t *testing.T) {
	d := Diag{Rule: RulePrivUser, Sev: SevError, Addr: 0x204, Block: 0x200, Msg: "m"}
	want := "error[priv-user] 00000204 (block 00000200): m"
	if d.String() != want {
		t.Errorf("got %q want %q", d.String(), want)
	}
	if !HasErrors([]Diag{d}) || HasErrors([]Diag{{Sev: SevWarn}}) {
		t.Error("HasErrors misclassifies")
	}
}

// TestCaselDispatch: the CFG expands constant-bounded casel dispatch
// tables (the kernel's syscall dispatch shape) — the handlers are
// reachable and the table itself is not decoded as instructions.
func TestCaselDispatch(t *testing.T) {
	src := `
	.org	0x200
start:	clrl	r0
	casel	r0, #0, #1
ctab:	.word	h0 - ctab
	.word	h1 - ctab
	halt			; out-of-range fall-through
h0:	movl	#10, r1
	halt
h1:	movl	#11, r1
	halt
`
	prog, err := vax.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(prog, BareProgram())
	if len(diags) != 0 {
		t.Errorf("casel program flagged: %v", diags)
	}
}

// TestEntryOptions: explicit entries override the start symbol.
func TestEntryOptions(t *testing.T) {
	src := `
	.org	0x200
start:	halt
alt:	movl	#1, r0
	halt
`
	prog, err := vax.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := BareProgram()
	opts.Entries = []string{"start", "alt"}
	if diags := Check(prog, opts); len(diags) != 0 {
		t.Errorf("multi-entry program flagged: %v", diags)
	}
	// With only the default entry, alt is dead code.
	diags := Check(prog, BareProgram())
	found := false
	for _, d := range diags {
		if d.Rule == RuleDeadCode {
			found = true
		}
	}
	if !found {
		t.Errorf("expected dead-code for alt, got %v", diags)
	}
}

func ExampleCheck() {
	prog, _ := vax.Assemble("\t.org 0x200\nstart:\tpushl r0\n")
	for _, d := range Check(prog, BareProgram()) {
		fmt.Println(d)
	}
	// Output:
	// error[fallthrough-end] 00000200 (block 00000200): execution falls off the end of the image (missing halt/exit/loop)
}
