package asmcheck

import (
	"fmt"
	"sort"

	"atum/internal/vax"
)

// This file implements constant-propagating abstract interpretation
// over register values. The CFG passes resolve only operands whose
// effective address is in the instruction stream itself (absolute and
// PC-relative); a store through a register —
//
//	moval	@#0x10008, r1
//	movl	r0, (r1)
//
// — was invisible to them even when the register provably holds a
// protected address. The interpreter tracks each general register as
// either a known 32-bit constant or unknown (top), propagates states
// across branches with a merge that keeps a value only when every
// incoming path agrees, and evaluates the effective address of every
// write operand in the register-based modes the static passes cannot
// see. Findings merge into the same protected-write rule.

// absVal is one register's abstract value: a known constant or top.
type absVal struct {
	known bool
	v     uint32
}

// absState is the abstract machine state: one value per general
// register. SP and PC are never tracked (SP moves with every push, PC
// is handled by the decoder's own PC arithmetic).
type absState [16]absVal

// merge meets two states: a register survives only if both sides know
// it and agree. The second result reports whether a changed.
func (a absState) merge(b absState) (absState, bool) {
	changed := false
	for i := range a {
		if a[i].known && (!b[i].known || b[i].v != a[i].v) {
			a[i] = absVal{}
			changed = true
		}
	}
	return a, changed
}

// checkComputedWrites runs the interpreter from the program entry
// points and reports write operands whose computed effective address
// aliases a protected range.
func (c *cfg) checkComputedWrites(ranges []Range) []Diag {
	if len(ranges) == 0 {
		return nil
	}

	states := map[uint32]absState{}
	var work []uint32
	push := func(a uint32, s absState) {
		if _, ok := c.instrs[a]; !ok {
			return
		}
		if cur, seen := states[a]; seen {
			merged, changed := cur.merge(s)
			if !changed {
				return
			}
			states[a] = merged
			work = append(work, a)
			return
		}
		states[a] = s
		work = append(work, a)
	}
	for _, e := range c.entries {
		push(e, absState{})
	}

	// Propagate to a fixpoint first; diagnostics are emitted afterwards
	// from the final states, so a constant one path carries is never
	// reported before a join from another path invalidates it.
	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		d := c.instrs[addr]
		s := states[addr]

		next := transfer(d, s)
		si := c.classify(d)
		for _, t := range si.branches {
			push(t, next)
		}
		for _, t := range si.caseEdge {
			push(t, next)
		}
		isCall := len(si.calls) > 0
		for _, t := range si.calls {
			// The callee starts from scratch: its entry state is unknown
			// because other call sites may reach it too.
			push(t+si.maskSkip, absState{})
		}
		if si.falls {
			n := addr + uint32(d.Len)
			if len(si.caseEdge) > 0 {
				n = c.caseFallAddr(d)
			}
			st := next
			if isCall || d.Info.Opcode == vax.OpCHMK {
				// Past a call or syscall every register is clobbered.
				st = absState{}
			}
			push(n, st)
		}
	}

	// Emit from the fixpoint states.
	addrs := make([]uint32, 0, len(states))
	for a := range states {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var out []Diag
	for _, addr := range addrs {
		d := c.instrs[addr]
		s := states[addr]
		for i, spec := range d.Info.Operands {
			if spec.Access != vax.AccWrite && spec.Access != vax.AccModify {
				continue
			}
			op := d.Operands[i]
			ea, ok := evalEA(op, spec, s)
			if !ok {
				continue
			}
			w := uint32(spec.Width)
			if w == 0 {
				w = 1
			}
			for _, pr := range ranges {
				if !pr.contains(ea, w) {
					continue
				}
				out = append(out, Diag{
					Rule: RuleProtectedWrite, Sev: SevError,
					Addr: addr, Block: c.blockOf[addr],
					Msg: fmt.Sprintf("computed write through %s to %#x aliases protected range %q [%#x,%#x)",
						op, ea, pr.Name, pr.Base, pr.Base+pr.Size),
				})
			}
		}
	}
	return out
}

// evalEA computes the effective address of a register-based memory
// operand under the abstract state. Absolute and PC-relative modes are
// deliberately excluded — the static dataRefs pass already resolves
// those — as are the deferred modes, whose final address is a loaded
// pointer the interpreter does not model.
func evalEA(op vax.Operand, spec vax.OperandSpec, s absState) (uint32, bool) {
	w := uint32(spec.Width)
	if w == 0 {
		w = 1
	}
	var base uint32
	switch op.Mode {
	case vax.ModeRegDeferred:
		if !s[op.Reg].known {
			return 0, false
		}
		base = s[op.Reg].v
	case vax.ModeByteDisp, vax.ModeWordDisp, vax.ModeLongDisp:
		if op.Reg == vax.PC || !s[op.Reg].known {
			return 0, false
		}
		base = s[op.Reg].v + uint32(op.Disp)
	case vax.ModeAutoInc:
		if op.Reg == vax.PC || !s[op.Reg].known {
			return 0, false
		}
		base = s[op.Reg].v
	case vax.ModeAutoDec:
		if !s[op.Reg].known {
			return 0, false
		}
		base = s[op.Reg].v - w
	default:
		return 0, false
	}
	if op.Indexed {
		if !s[op.Xreg].known {
			return 0, false
		}
		base += s[op.Xreg].v * w
	}
	return base, true
}

// transfer applies one instruction's effect to the abstract state.
func transfer(d vax.Decoded, s absState) absState {
	pre := s

	// Autoincrement/autodecrement move their base register by the
	// operand width; keeping the adjusted constant would be possible,
	// but forgetting it is sound and avoids modelling evaluation order.
	for i := range d.Info.Operands {
		op := d.Operands[i]
		switch op.Mode {
		case vax.ModeAutoInc, vax.ModeAutoIncDeferred, vax.ModeAutoDec:
			if op.Reg < vax.PC {
				s[op.Reg] = absVal{}
			}
		}
	}
	// Every register destination becomes unknown; the modelled opcodes
	// below overwrite that with a computed value.
	for i, spec := range d.Info.Operands {
		op := d.Operands[i]
		if op.Mode == vax.ModeRegister && (spec.Access == vax.AccWrite || spec.Access == vax.AccModify) {
			s[op.Reg] = absVal{}
		}
	}
	set := func(idx int, v absVal) {
		op := d.Operands[idx]
		// SP is never tracked: stack discipline has its own pass.
		if op.Mode == vax.ModeRegister && op.Reg < vax.SP {
			s[op.Reg] = v
		}
	}
	src := func(idx int) absVal {
		if k, ok := constOperand(d, idx); ok {
			return absVal{known: true, v: k}
		}
		op := d.Operands[idx]
		if op.Mode == vax.ModeRegister && !op.Indexed {
			return pre[op.Reg]
		}
		return absVal{}
	}

	switch d.Info.Opcode {
	case vax.OpMOVL:
		set(1, src(0))
	case vax.OpMOVZBL:
		if v := src(0); v.known {
			set(1, absVal{known: true, v: v.v & 0xFF})
		}
	case vax.OpMOVZWL:
		if v := src(0); v.known {
			set(1, absVal{known: true, v: v.v & 0xFFFF})
		}
	case vax.OpCLRL:
		set(0, absVal{known: true})
	case vax.OpMOVAL, vax.OpMOVAB:
		// The address of a statically-resolvable operand is a constant
		// the program can later dereference — exactly the pattern this
		// pass exists to catch.
		if t, ok := d.OperandTarget(0); ok {
			set(1, absVal{known: true, v: t})
		}
	case vax.OpMCOML:
		if v := src(0); v.known {
			set(1, absVal{known: true, v: ^v.v})
		}
	case vax.OpADDL2:
		if a, b := src(0), pre1(d, pre); a.known && b.known {
			set(1, absVal{known: true, v: b.v + a.v})
		}
	case vax.OpSUBL2:
		if a, b := src(0), pre1(d, pre); a.known && b.known {
			set(1, absVal{known: true, v: b.v - a.v})
		}
	case vax.OpADDL3:
		if a, b := src(0), src(1); a.known && b.known {
			set(2, absVal{known: true, v: a.v + b.v})
		}
	case vax.OpSUBL3:
		if a, b := src(0), src(1); a.known && b.known {
			set(2, absVal{known: true, v: b.v - a.v})
		}
	case vax.OpMOVC3, vax.OpMOVC5:
		// The block-move microinstructions leave their cursor state in
		// r0-r5.
		for r := vax.R0; r <= vax.R5; r++ {
			s[r] = absVal{}
		}
	}
	return s
}

// pre1 reads the pre-state of a modify destination in operand slot 1
// (the addl2/subl2 shape) when it is a plain register.
func pre1(d vax.Decoded, pre absState) absVal {
	op := d.Operands[1]
	if op.Mode == vax.ModeRegister && !op.Indexed {
		return pre[op.Reg]
	}
	return absVal{}
}
