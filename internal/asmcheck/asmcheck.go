// Package asmcheck statically verifies assembled programs for the
// simulated machine before they run: it decodes the image back through
// the shared opcode table, builds a basic-block control-flow graph by
// recursive traversal from the entry points, and applies rule-based
// passes over the graph. The rules target exactly the failure modes a
// buggy workload (or a buggy microcode patch interacting with one)
// produces long before miss rates look wrong: wild branches, execution
// running into data, privileged opcodes on user paths, stores aliasing
// the reserved ATUM trace region, and unbalanced stack discipline.
//
// Each diagnostic carries a stable rule ID, a severity, the offending
// address and its enclosing basic block, so drivers (vasm -lint,
// atum-vet asm) can sort, filter and gate on them.
package asmcheck

import (
	"fmt"
	"sort"

	"atum/internal/vax"
)

// Rule IDs, one per pass. Fixture corpora in testdata/ keep one
// triggering and one clean program per rule.
const (
	RuleBranchRange    = "branch-range"    // control transfer outside the image
	RuleBranchAlign    = "branch-align"    // control transfer into the middle of an instruction
	RuleDecode         = "decode"          // reachable bytes do not decode
	RuleDeadCode       = "dead-code"       // labeled, unreferenced, unreachable region
	RulePrivUser       = "priv-user"       // privileged instruction on a user-mode path
	RuleProtectedWrite = "protected-write" // write aliases a protected range (trace buffer, page tables)
	RuleFallthrough    = "fallthrough-end" // execution can fall off the end of the image
	RuleStackBalance   = "stack-balance"   // jsb/rsb routine with unbalanced stack discipline
)

// Severity classifies a diagnostic.
type Severity uint8

const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Diag is one finding.
type Diag struct {
	Rule  string
	Sev   Severity
	Addr  uint32 // offending instruction or label address
	Block uint32 // enclosing basic-block start (Addr itself for labels)
	Msg   string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s[%s] %08x (block %08x): %s", d.Sev, d.Rule, d.Addr, d.Block, d.Msg)
}

// Range is a named address range writes may not touch.
type Range struct {
	Name string
	Base uint32
	Size uint32
}

func (r Range) contains(addr, width uint32) bool {
	return addr < r.Base+r.Size && addr+width > r.Base
}

// Options configures a check run.
type Options struct {
	// Entries names the entry-point symbols; unresolvable names are
	// ignored. If none resolve and EntryAddrs is empty, the "start"
	// symbol (or failing that the origin) is used.
	Entries []string
	// EntryAddrs adds entry points by address.
	EntryAddrs []uint32

	// UserMode marks the program as entered in user mode: reachable
	// privileged instructions become errors.
	UserMode bool

	// Protected lists ranges that no statically-computable write may
	// alias — the reserved ATUM trace buffer and page-table pages.
	Protected []Range

	// TerminalSyscalls are chmk codes that never return (process exit).
	// Nil means {0}, the kernel's exit call.
	TerminalSyscalls []uint32
}

// UserProgram returns the default profile for workload programs: entered
// at "start" in user mode, chmk #0 terminates.
func UserProgram() Options { return Options{UserMode: true} }

// BareProgram returns the profile for vasm -run style programs: kernel
// mode (halt is the normal stop), no syscalls terminate.
func BareProgram() Options {
	return Options{TerminalSyscalls: []uint32{^uint32(0)}}
}

func (o Options) terminalSyscalls() []uint32 {
	if o.TerminalSyscalls == nil {
		return []uint32{0}
	}
	return o.TerminalSyscalls
}

func (o Options) entryAddrs(p *vax.Program) []uint32 {
	var out []uint32
	seen := map[uint32]bool{}
	add := func(a uint32) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, name := range o.Entries {
		if v, ok := p.Symbol(name); ok {
			add(v)
		}
	}
	for _, a := range o.EntryAddrs {
		add(a)
	}
	if len(out) == 0 {
		if v, ok := p.Symbol("start"); ok {
			add(v)
		} else {
			add(p.Origin)
		}
	}
	return out
}

// Check runs every pass over the program and returns the findings,
// sorted by address then rule.
func Check(p *vax.Program, opts Options) []Diag {
	if len(p.Bytes) == 0 {
		return nil
	}
	c := buildCFG(p, opts)
	var diags []Diag
	diags = append(diags, c.checkEdges()...)
	diags = append(diags, c.checkDecode()...)
	diags = append(diags, c.checkFallthrough()...)
	if opts.UserMode {
		diags = append(diags, c.checkPrivileged()...)
	}
	diags = append(diags, c.checkProtectedWrites(opts.Protected)...)
	diags = append(diags, c.checkComputedWrites(opts.Protected)...)
	diags = append(diags, c.checkDeadCode()...)
	diags = append(diags, c.checkStackBalance()...)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Addr != diags[j].Addr {
			return diags[i].Addr < diags[j].Addr
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Msg < diags[j].Msg
	})
	return diags
}

// HasErrors reports whether any diagnostic is error-severity.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// checkEdges applies branch-range and branch-align to every definite
// control-flow edge.
func (c *cfg) checkEdges() []Diag {
	var out []Diag
	for _, e := range c.edges {
		if e.kind == edgeFall {
			continue
		}
		if e.to < c.org || e.to >= c.end {
			out = append(out, Diag{
				Rule: RuleBranchRange, Sev: SevError,
				Addr: e.from, Block: c.blockOf[e.from],
				Msg: fmt.Sprintf("%s target %#x outside the image [%#x,%#x)", e.kind, e.to, c.org, c.end),
			})
			continue
		}
		if c.interior[e.to-c.org] {
			out = append(out, Diag{
				Rule: RuleBranchAlign, Sev: SevError,
				Addr: e.from, Block: c.blockOf[e.from],
				Msg: fmt.Sprintf("%s target %#x lands inside another instruction", e.kind, e.to),
			})
		}
	}
	return out
}

func (c *cfg) checkDecode() []Diag {
	var out []Diag
	for _, f := range c.faults {
		out = append(out, Diag{
			Rule: RuleDecode, Sev: SevError,
			Addr: f.addr, Block: f.block,
			Msg: fmt.Sprintf("reachable bytes do not decode: %v", f.err),
		})
	}
	return out
}

func (c *cfg) checkFallthrough() []Diag {
	var out []Diag
	for _, a := range c.fallOff {
		out = append(out, Diag{
			Rule: RuleFallthrough, Sev: SevError,
			Addr: a, Block: c.blockOf[a],
			Msg: "execution falls off the end of the image (missing halt/exit/loop)",
		})
	}
	return out
}

func (c *cfg) checkPrivileged() []Diag {
	var out []Diag
	for addr, d := range c.instrs {
		if d.Info.Priv {
			out = append(out, Diag{
				Rule: RulePrivUser, Sev: SevError,
				Addr: addr, Block: c.blockOf[addr],
				Msg: fmt.Sprintf("privileged instruction %s reachable from a user-mode entry (faults at run time)", d.Info.Name),
			})
		}
	}
	return out
}

func (c *cfg) checkProtectedWrites(ranges []Range) []Diag {
	if len(ranges) == 0 {
		return nil
	}
	var out []Diag
	for _, r := range c.dataRefs {
		if !r.write {
			continue
		}
		w := r.width
		if w == 0 {
			w = 1
		}
		for _, pr := range ranges {
			if pr.contains(r.addr, w) {
				out = append(out, Diag{
					Rule: RuleProtectedWrite, Sev: SevError,
					Addr: r.from, Block: c.blockOf[r.from],
					Msg: fmt.Sprintf("write to %#x aliases protected range %q [%#x,%#x)", r.addr, pr.Name, pr.Base, pr.Base+pr.Size),
				})
			}
		}
	}
	return out
}

// checkDeadCode flags labeled regions that are unreachable from the
// entry points and unreferenced by any statically-computable data
// operand. A region is flagged only when it decodes plausibly as code,
// but unreferenced data is reported too (as such) since it is equally
// dead weight.
func (c *cfg) checkDeadCode() []Diag {
	syms := c.prog.SymbolsSorted()
	// Addresses of symbols inside the image, in order.
	var addrs []uint32
	var names []string
	for _, n := range syms {
		v := c.prog.Symbols[n]
		if v >= c.org && v < c.end {
			addrs = append(addrs, v)
			names = append(names, n)
		}
	}
	covered := func(a uint32) bool {
		if _, ok := c.instrs[a]; ok {
			return true
		}
		return c.interior[a-c.org] || c.dataBytes[a-c.org]
	}
	referenced := func(lo, hi uint32) bool {
		for _, r := range c.dataRefs {
			if r.addr >= lo && r.addr < hi {
				return true
			}
		}
		return false
	}
	var out []Diag
	for i, a := range addrs {
		if covered(a) {
			continue
		}
		next := c.end
		if i+1 < len(addrs) {
			next = addrs[i+1]
		}
		if referenced(a, next) {
			continue
		}
		kind := "data"
		if looksLikeCode(c.prog, a, next) {
			kind = "code"
		}
		out = append(out, Diag{
			Rule: RuleDeadCode, Sev: SevWarn,
			Addr: a, Block: a,
			Msg: fmt.Sprintf("label %q: unreachable, unreferenced %s", names[i], kind),
		})
	}
	return out
}

// looksLikeCode reports whether [a, next) linearly decodes as a plausible
// instruction run: no decode errors before a terminating control
// transfer or the region boundary.
func looksLikeCode(p *vax.Program, a, next uint32) bool {
	addr := a
	n := 0
	for addr < next {
		d, err := vax.DecodeBytes(p.Bytes[addr-p.Origin:], addr)
		if err != nil {
			return false
		}
		n++
		switch d.Info.Opcode {
		case vax.OpRET, vax.OpRSB, vax.OpREI, vax.OpHALT, vax.OpBRB, vax.OpBRW, vax.OpJMP:
			return true
		}
		addr += uint32(d.Len)
	}
	return n > 0
}
