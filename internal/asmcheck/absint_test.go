package asmcheck

import (
	"strings"
	"testing"

	"atum/internal/vax"
)

func assemble(t *testing.T, src string) *vax.Program {
	t.Helper()
	prog, err := vax.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

var traceRange = []Range{{Name: "trace", Base: 0x10000, Size: 0x1000}}

// TestComputedWriteCaught: a store through a register holding a
// protected address is flagged by the interpreter even though no
// operand names the address statically.
func TestComputedWriteCaught(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	moval	@#0x10008, r1
	movl	r0, (r1)
	halt
`)
	opts := BareProgram()
	opts.Protected = traceRange
	diags := Check(prog, opts)
	found := false
	for _, d := range diags {
		if d.Rule == RuleProtectedWrite && strings.Contains(d.Msg, "computed write") {
			found = true
			if !strings.Contains(d.Msg, "0x10008") {
				t.Errorf("diag does not name the computed address: %s", d.Msg)
			}
		}
	}
	if !found {
		t.Errorf("computed store not flagged: %v", diags)
	}
}

// TestComputedWriteMerge: a register that holds different values on two
// joining paths is unknown at the join — the interpreter must not pick
// one path's constant and cry wolf.
func TestComputedWriteMerge(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	tstl	r0
	beql	other
	moval	@#0x8000, r1
	brb	store
other:	moval	@#0x9000, r1
store:	movl	r0, (r1)
	halt
`)
	opts := BareProgram()
	opts.Protected = traceRange
	for _, d := range Check(prog, opts) {
		t.Errorf("merge of two safe constants flagged: %v", d)
	}

	// Same shape, both arms protected — still unflagged, because the
	// merged value is unknown; the interpreter trades recall for zero
	// false positives, and this pins the conservative choice.
	prog = assemble(t, `
	.org	0x200
start:	tstl	r0
	beql	other
	moval	@#0x10008, r1
	brb	store
other:	moval	@#0x10010, r1
store:	movl	r0, (r1)
	halt
`)
	for _, d := range Check(prog, opts) {
		if d.Rule == RuleProtectedWrite {
			t.Errorf("join state should be unknown, got %v", d)
		}
	}
}

// TestComputedWriteArithmetic: constants survive the modelled ALU ops,
// so an address built by arithmetic is still caught.
func TestComputedWriteArithmetic(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	movl	#0x8000, r2
	addl2	#0x8010, r2
	movl	r0, (r2)
	halt
`)
	opts := BareProgram()
	opts.Protected = traceRange
	found := false
	for _, d := range Check(prog, opts) {
		if d.Rule == RuleProtectedWrite && strings.Contains(d.Msg, "0x10010") {
			found = true
		}
	}
	if !found {
		t.Error("address built with addl2 not caught")
	}
}

// TestComputedWriteClobberedByCall: a call clobbers every register, so
// a pre-call constant must not survive to a post-call store.
func TestComputedWriteClobberedByCall(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	moval	@#0x10008, r1
	jsb	fix
	movl	r0, (r1)
	halt
fix:	moval	@#0x8000, r1
	rsb
`)
	opts := BareProgram()
	opts.Protected = traceRange
	for _, d := range Check(prog, opts) {
		if d.Rule == RuleProtectedWrite {
			t.Errorf("post-call store flagged despite clobber: %v", d)
		}
	}
}

// TestStackBalanceInterprocedural: a routine that inherits a leak from
// a callee is flagged at its own rsb — the summary crosses the jsb.
func TestStackBalanceInterprocedural(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	jsb	outer
	halt
outer:	jsb	inner
oret:	rsb
inner:	pushl	r0
iret:	rsb
`)
	oret, ok1 := prog.Symbol("oret")
	iret, ok2 := prog.Symbol("iret")
	if !ok1 || !ok2 {
		t.Fatal("fixture labels missing")
	}
	var gotOuter, gotInner bool
	for _, d := range Check(prog, BareProgram()) {
		if d.Rule != RuleStackBalance {
			t.Errorf("unexpected diag: %v", d)
			continue
		}
		switch d.Addr {
		case oret:
			gotOuter = true
		case iret:
			gotInner = true
		}
	}
	if !gotInner {
		t.Error("inner leak not flagged at its rsb")
	}
	if !gotOuter {
		t.Error("outer rsb does not inherit the callee leak (summary not applied)")
	}
}

// TestStackBalanceRecursion: a self-recursive routine is assumed
// balanced across the back edge rather than looping the analysis.
func TestStackBalanceRecursion(t *testing.T) {
	prog := assemble(t, `
	.org	0x200
start:	jsb	rec
	halt
rec:	tstl	r0
	beql	done
	decl	r0
	jsb	rec
done:	rsb
`)
	if diags := Check(prog, BareProgram()); len(diags) != 0 {
		t.Errorf("balanced recursive routine flagged: %v", diags)
	}
}
