package monitor

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"atum/internal/kernel"
	"atum/internal/trace"
	"atum/internal/workload"
)

func newMon(t *testing.T, loads ...string) (*Monitor, *bytes.Buffer) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Machine.MemSize = 4 << 20
	cfg.Machine.ReservedSize = 256 << 10
	sys, err := workload.BootMix(cfg, loads...)
	if err != nil {
		t.Fatal(err)
	}
	out := &bytes.Buffer{}
	return New(sys, out), out
}

func TestStepAndWhere(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("step")
	s := out.String()
	if !strings.Contains(s, "[kernel pid=0]") {
		t.Errorf("step output: %q", s)
	}
	if !strings.Contains(s, "<kstart") && !strings.Contains(s, "<") {
		t.Errorf("no kernel symbol annotation: %q", s)
	}
	out.Reset()
	m.Exec("step 100")
	if !strings.Contains(out.String(), "pid=") {
		t.Errorf("step 100 output: %q", out.String())
	}
}

func TestRunToCompletion(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("run")
	s := out.String()
	if !strings.Contains(s, "halted after") {
		t.Errorf("run output: %q", s)
	}
	if !strings.Contains(s, `console: "303\n"`) {
		t.Errorf("console not echoed: %q", s)
	}
	out.Reset()
	m.Exec("procs")
	if !strings.Contains(out.String(), "dead") {
		t.Errorf("procs output: %q", out.String())
	}
}

func TestBreakpointAtSyscallHandler(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("break h_chmk")
	if !strings.Contains(out.String(), "breakpoint set") {
		t.Fatalf("break: %q", out.String())
	}
	out.Reset()
	m.Exec("run")
	s := out.String()
	if !strings.Contains(s, "breakpoint at") {
		t.Fatalf("breakpoint not hit: %q", s)
	}
	if !strings.Contains(s, "<h_chmk>") {
		t.Errorf("where did not show h_chmk: %q", s)
	}
	// List and delete.
	out.Reset()
	m.Exec("break")
	if !strings.Contains(out.String(), "0x") {
		t.Errorf("break list: %q", out.String())
	}
	out.Reset()
	m.Exec("delete all")
	m.Exec("break")
	if !strings.Contains(out.String(), "no breakpoints") {
		t.Errorf("delete all: %q", out.String())
	}
}

func TestExamineAndDisassemble(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("examine kstart 4")
	s := out.String()
	if !strings.Contains(s, "80000000:") {
		t.Errorf("examine: %q", s)
	}
	out.Reset()
	m.Exec("dis kstart 3")
	s = out.String()
	if !strings.Contains(s, "movl") && !strings.Contains(s, "mtpr") {
		t.Errorf("dis: %q", s)
	}
	out.Reset()
	m.Exec("sym h_tnv")
	if !strings.Contains(out.String(), "h_tnv = 0x8") {
		t.Errorf("sym: %q", out.String())
	}
	out.Reset()
	m.Exec("sym nosuchthing")
	if !strings.Contains(out.String(), "undefined") {
		t.Errorf("sym miss: %q", out.String())
	}
}

func TestTracingLifecycle(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("trace on")
	if !strings.Contains(out.String(), "ATUM installed") {
		t.Fatalf("trace on: %q", out.String())
	}
	out.Reset()
	m.Exec("run 5000")
	m.Exec("records 5")
	s := out.String()
	if !strings.Contains(s, "ifetch") && !strings.Contains(s, "dread") {
		t.Errorf("records: %q", s)
	}
	out.Reset()
	m.Exec("stats")
	s = out.String()
	if !strings.Contains(s, "mmu:") || !strings.Contains(s, "records:") {
		t.Errorf("stats: %q", s)
	}
	out.Reset()
	m.Exec("trace off")
	if !strings.Contains(out.String(), "removed") {
		t.Errorf("trace off: %q", out.String())
	}
	if len(m.Captured()) == 0 {
		t.Error("no records captured")
	}
}

// TestTracingSegmentedSpill runs live tracing with a deliberately tiny
// buffer so the watermark fires many times mid-run: each crossing must
// spill into the monitor's capture log and resume, and the stitched
// result must match a capture with a buffer big enough to never spill.
func TestTracingSegmentedSpill(t *testing.T) {
	capture := func(on string) (*Monitor, []trace.Record, string) {
		m, out := newMon(t, "sieve")
		m.Exec(on)
		if !strings.Contains(out.String(), "ATUM installed") {
			t.Fatalf("%q: %q", on, out.String())
		}
		m.Exec("run")
		out.Reset()
		m.Exec("trace")
		return m, m.Captured(), out.String()
	}

	// 2KB buffer = 256 records per segment; sieve generates far more.
	seg, segRecs, segStatus := capture("trace on 2")
	if seg.spills == 0 {
		t.Fatalf("tiny buffer never spilled; status %q", segStatus)
	}
	if !strings.Contains(segStatus, fmt.Sprintf("%d spills", seg.spills)) {
		t.Errorf("status does not report spills: %q", segStatus)
	}
	if seg.collector.Dropped != 0 {
		t.Errorf("spilling capture dropped %d records", seg.collector.Dropped)
	}

	// Reference: the whole reserved region per segment. Sieve overflows
	// even that, so it spills too — just far less often; what matters is
	// that the stitched captures are identical at any segment size.
	mono, monoRecs, _ := capture("trace on")
	if mono.spills >= seg.spills {
		t.Errorf("spill counts not ordered: %d (2KB) vs %d (full region)",
			seg.spills, mono.spills)
	}
	if len(segRecs) == 0 || !reflect.DeepEqual(segRecs, monoRecs) {
		t.Fatalf("segmented capture diverged: %d records vs %d reference",
			len(segRecs), len(monoRecs))
	}

	out := &bytes.Buffer{}
	seg.out = out
	seg.Exec("trace off")
	if !strings.Contains(out.String(), "0 dropped") {
		t.Errorf("trace off summary: %q", out.String())
	}
}

func TestWatchKernelCell(t *testing.T) {
	m, out := newMon(t, "sieve")
	// curproc changes the first time the scheduler picks a process...
	// it starts at nproc-1=0 and picks 0 again for a single process, so
	// watch qleft instead: the scheduler writes it on the first dispatch.
	m.Exec("watch qleft 100000")
	s := out.String()
	if !strings.Contains(s, "watch hit after") {
		t.Fatalf("watch output: %q", s)
	}
	out.Reset()
	m.Exec("watch 0x999999999") // unparseable as 32-bit... parses as uint64 then truncates? ensure error or read fail
	if out.Len() == 0 {
		t.Error("watch with bad address printed nothing")
	}
	out.Reset()
	m.Exec("watch")
	if !strings.Contains(out.String(), "usage") {
		t.Errorf("usage: %q", out.String())
	}
}

func TestWatchNoChange(t *testing.T) {
	m, out := newMon(t, "sieve")
	// The kernel never touches its own entry point instruction bytes.
	m.Exec("watch kstart 500")
	if !strings.Contains(out.String(), "no change within 500") {
		t.Errorf("watch output: %q", out.String())
	}
}

func TestLintCommand(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("lint")
	if !strings.Contains(out.String(), "no records") {
		t.Errorf("lint without tracing: %q", out.String())
	}
	out.Reset()
	m.Exec("trace on")
	m.Exec("run")
	out.Reset()
	m.Exec("lint")
	if !strings.Contains(out.String(), "well-formed") {
		t.Errorf("lint: %q", out.String())
	}
}

func TestRunWithBudgetAndErrors(t *testing.T) {
	m, out := newMon(t, "sort")
	m.Exec("run 50")
	if !strings.Contains(out.String(), "budget reached") {
		t.Errorf("budget: %q", out.String())
	}
	out.Reset()
	m.Exec("bogus")
	if !strings.Contains(out.String(), "unknown command") {
		t.Errorf("unknown: %q", out.String())
	}
	out.Reset()
	m.Exec("examine not_a_symbol")
	if !strings.Contains(out.String(), "not an address") {
		t.Errorf("resolve error: %q", out.String())
	}
	out.Reset()
	m.Exec("help")
	if !strings.Contains(out.String(), "breakpoint") {
		t.Errorf("help: %q", out.String())
	}
}

func TestReplLoop(t *testing.T) {
	m, out := newMon(t, "sieve")
	in := strings.NewReader("step\nregs\nquit\n")
	if err := m.Run(in); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dbg>") || !strings.Contains(s, "r6=") {
		t.Errorf("repl transcript: %q", s)
	}
}

func TestStatusCommand(t *testing.T) {
	m, out := newMon(t, "sieve")
	m.Exec("status")
	s := out.String()
	if !strings.Contains(s, "machine: instrs=") || !strings.Contains(s, "trace: off") {
		t.Errorf("status before tracing: %q", s)
	}

	// Once tracing is on and instructions run, the live registry must
	// show capture counters through the same path -metrics-addr serves.
	out.Reset()
	m.Exec("trace on")
	m.Exec("run 5000")
	out.Reset()
	m.Exec("status")
	s = out.String()
	if !strings.Contains(s, "trace: on") {
		t.Errorf("status while tracing: %q", s)
	}
	if !strings.Contains(s, "atum_capture_records_total") {
		t.Errorf("status output missing live registry counters: %q", s)
	}
	// Keep 'status' discoverable.
	out.Reset()
	m.Exec("help")
	if !strings.Contains(out.String(), "status") {
		t.Errorf("help does not mention status: %q", out.String())
	}
}
