// Package monitor implements the interactive machine monitor behind
// cmd/atum-dbg: a console-processor-style debugger for the simulated
// machine. It speaks a small command language (step, breakpoints,
// memory/register examination, disassembly, live ATUM tracing) over any
// reader/writer pair, which keeps it unit-testable.
package monitor

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"atum/internal/atum"
	"atum/internal/kernel"
	"atum/internal/obs"
	"atum/internal/trace"
	"atum/internal/vax"
)

// Monitor drives one system interactively.
type Monitor struct {
	sys *kernel.System

	out io.Writer

	breaks map[uint32]bool

	collector *atum.Collector
	captured  []trace.Record
	// spills counts watermark extractions since tracing started: the
	// number of times the live buffer filled and was drained in place.
	spills int

	// consoleMark tracks how much simulated-console output has already
	// been echoed to the user.
	consoleMark int
}

// New wraps a booted (finalized) system.
func New(sys *kernel.System, out io.Writer) *Monitor {
	return &Monitor{sys: sys, out: out, breaks: map[uint32]bool{}}
}

// Run reads commands until EOF or "quit".
func (m *Monitor) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintf(m.out, "atum-dbg: %d process(es) loaded; 'help' for commands\n", len(m.sys.Procs))
	for {
		fmt.Fprintf(m.out, "dbg> ")
		if !sc.Scan() {
			fmt.Fprintln(m.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "q" {
			return nil
		}
		m.Exec(line)
	}
}

// Exec runs a single command line.
func (m *Monitor) Exec(line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help", "h", "?":
		m.help()
	case "step", "s":
		m.step(args)
	case "run", "c", "continue":
		m.run(args)
	case "regs", "r":
		m.regs()
	case "break", "b":
		m.breakCmd(args)
	case "delete":
		m.deleteCmd(args)
	case "examine", "x":
		m.examine(args)
	case "dis", "d":
		m.dis(args)
	case "sym":
		m.sym(args)
	case "where", "w":
		m.where()
	case "procs":
		m.procs()
	case "watch":
		m.watch(args)
	case "trace":
		m.trace(args)
	case "records":
		m.records(args)
	case "lint":
		m.lint()
	case "stats":
		m.stats()
	case "status":
		m.status()
	default:
		fmt.Fprintf(m.out, "unknown command %q; try 'help'\n", cmd)
	}
}

func (m *Monitor) help() {
	fmt.Fprint(m.out, `commands:
  step [n]          execute n instructions (default 1), show state
  run [n]           run until halt, breakpoint, or n instructions
  break <addr|sym>  set a breakpoint; break (no args) lists them
  delete <addr|sym|all>
  regs              register dump
  where             current PC, disassembled
  examine <a> [n]   hex-dump n longwords at address/symbol (default 8)
  dis <a> [n]       disassemble n instructions (default 8)
  sym <name>        look up a kernel symbol
  watch <a> [n]     run (up to n instructions) until the longword at the
                    address/symbol changes
  procs             process table
  trace on [bufKB]  install the ATUM collector; with bufKB, use a small
                    buffer that spills (segmented) whenever it fills
  trace off         remove the collector, keeping captured records
  records [n]       show the last n captured trace records (default 10)
  lint              check captured records for structural violations
  stats             machine and trace statistics
  status            one-line machine state plus the live metrics registry
  quit
`)
}

// resolve parses an address: hex/decimal number or kernel symbol.
func (m *Monitor) resolve(s string) (uint32, error) {
	if v, ok := m.sys.Kernel.Symbol(s); ok {
		return v, nil
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0, fmt.Errorf("not an address or kernel symbol: %q", s)
	}
	return uint32(v), nil
}

func (m *Monitor) step(args []string) {
	n := 1
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
			n = v
		}
	}
	for i := 0; i < n; i++ {
		if m.sys.M.Halted() {
			fmt.Fprintln(m.out, "machine halted")
			break
		}
		if err := m.sys.M.Step(); err != nil {
			fmt.Fprintf(m.out, "machine check: %v\n", err)
			break
		}
	}
	m.flushConsole()
	m.where()
}

func (m *Monitor) run(args []string) {
	budget := uint64(0)
	if len(args) > 0 {
		if v, err := strconv.ParseUint(args[0], 0, 64); err == nil {
			budget = v
		}
	}
	executed := uint64(0)
	for {
		if m.sys.M.Halted() {
			fmt.Fprintf(m.out, "halted after %d instructions\n", executed)
			break
		}
		if budget > 0 && executed >= budget {
			fmt.Fprintf(m.out, "budget reached (%d instructions)\n", executed)
			break
		}
		if err := m.sys.M.Step(); err != nil {
			fmt.Fprintf(m.out, "machine check: %v\n", err)
			break
		}
		executed++
		if m.breaks[m.sys.M.CPU.R[vax.PC]] {
			fmt.Fprintf(m.out, "breakpoint at %#x after %d instructions\n",
				m.sys.M.CPU.R[vax.PC], executed)
			break
		}
	}
	m.flushConsole()
	m.where()
}

func (m *Monitor) flushConsole() {
	c := m.sys.Console()
	if len(c) > m.consoleMark {
		fmt.Fprintf(m.out, "console: %q\n", c[m.consoleMark:])
		m.consoleMark = len(c)
	}
}

func (m *Monitor) regs() {
	fmt.Fprintln(m.out, m.sys.M.State())
	c := &m.sys.M.CPU
	fmt.Fprintf(m.out, "r6=%08x r7=%08x r8=%08x r9=%08x r10=%08x r11=%08x\n",
		c.R[6], c.R[7], c.R[8], c.R[9], c.R[10], c.R[11])
}

func (m *Monitor) breakCmd(args []string) {
	if len(args) == 0 {
		if len(m.breaks) == 0 {
			fmt.Fprintln(m.out, "no breakpoints")
			return
		}
		addrs := make([]uint32, 0, len(m.breaks))
		for a := range m.breaks {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(m.out, "  %#x\n", a)
		}
		return
	}
	a, err := m.resolve(args[0])
	if err != nil {
		fmt.Fprintln(m.out, err)
		return
	}
	m.breaks[a] = true
	fmt.Fprintf(m.out, "breakpoint set at %#x\n", a)
}

func (m *Monitor) deleteCmd(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(m.out, "usage: delete <addr|sym|all>")
		return
	}
	if args[0] == "all" {
		m.breaks = map[uint32]bool{}
		fmt.Fprintln(m.out, "all breakpoints deleted")
		return
	}
	a, err := m.resolve(args[0])
	if err != nil {
		fmt.Fprintln(m.out, err)
		return
	}
	delete(m.breaks, a)
	fmt.Fprintf(m.out, "deleted %#x\n", a)
}

func (m *Monitor) examine(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(m.out, "usage: examine <addr|sym> [nlongs]")
		return
	}
	a, err := m.resolve(args[0])
	if err != nil {
		fmt.Fprintln(m.out, err)
		return
	}
	n := 8
	if len(args) > 1 {
		if v, err := strconv.Atoi(args[1]); err == nil && v > 0 {
			n = v
		}
	}
	for i := 0; i < n; i++ {
		va := a + uint32(4*i)
		if i%4 == 0 {
			if i > 0 {
				fmt.Fprintln(m.out)
			}
			fmt.Fprintf(m.out, "%08x:", va)
		}
		v, err := m.sys.M.DebugRead(va, 4)
		if err != nil {
			fmt.Fprintf(m.out, " ????????")
			continue
		}
		fmt.Fprintf(m.out, " %08x", v)
	}
	fmt.Fprintln(m.out)
}

func (m *Monitor) dis(args []string) {
	a := m.sys.M.CPU.R[vax.PC]
	if len(args) > 0 {
		v, err := m.resolve(args[0])
		if err != nil {
			fmt.Fprintln(m.out, err)
			return
		}
		a = v
	}
	n := 8
	if len(args) > 1 {
		if v, err := strconv.Atoi(args[1]); err == nil && v > 0 {
			n = v
		}
	}
	// Read a window of bytes through the debug path.
	buf := make([]byte, 16*n)
	for i := range buf {
		v, err := m.sys.M.DebugRead(a+uint32(i), 1)
		if err != nil {
			buf = buf[:i]
			break
		}
		buf[i] = byte(v)
	}
	lines := vax.Disassemble(buf, a)
	if len(lines) > n {
		lines = lines[:n]
	}
	for _, l := range lines {
		fmt.Fprintln(m.out, l)
	}
}

func (m *Monitor) sym(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(m.out, "usage: sym <name>")
		return
	}
	if v, ok := m.sys.Kernel.Symbol(args[0]); ok {
		fmt.Fprintf(m.out, "%s = %#x\n", args[0], v)
	} else {
		fmt.Fprintf(m.out, "undefined: %s\n", args[0])
	}
}

func (m *Monitor) where() {
	pc := m.sys.M.CPU.R[vax.PC]
	buf := make([]byte, 16)
	for i := range buf {
		v, err := m.sys.M.DebugRead(pc+uint32(i), 1)
		if err != nil {
			buf = buf[:i]
			break
		}
		buf[i] = byte(v)
	}
	mode := "user"
	if vax.CurMode(m.sys.M.CPU.PSL) == vax.ModeKernel {
		mode = "kernel"
	}
	loc := m.nearestSymbol(pc)
	if len(buf) > 0 {
		if d, err := vax.DecodeBytes(buf, pc); err == nil {
			fmt.Fprintf(m.out, "[%s pid=%d] %08x%s:\t%s\n", mode, m.sys.M.CurPID, pc, loc, d)
			return
		}
	}
	fmt.Fprintf(m.out, "[%s pid=%d] pc=%08x%s (undecodable)\n", mode, m.sys.M.CurPID, pc, loc)
}

// nearestSymbol renders " <sym+off>" for kernel addresses.
func (m *Monitor) nearestSymbol(pc uint32) string {
	if pc < kernel.KVBase {
		return ""
	}
	bestName, bestVal := "", uint32(0)
	for name, v := range m.sys.Kernel.Symbols {
		if v <= pc && v >= bestVal {
			bestName, bestVal = name, v
		}
	}
	if bestName == "" {
		return ""
	}
	if off := pc - bestVal; off != 0 {
		return fmt.Sprintf(" <%s+%d>", bestName, off)
	}
	return fmt.Sprintf(" <%s>", bestName)
}

func (m *Monitor) procs() {
	for _, p := range m.sys.Procs {
		st, err := m.sys.State(p)
		if err != nil {
			fmt.Fprintf(m.out, "pid %d: %v\n", p.PID, err)
			continue
		}
		status := map[kernel.ProcState]string{
			kernel.ProcFree: "free", kernel.ProcRunnable: "runnable",
			kernel.ProcDead: "dead", kernel.ProcNapping: "napping",
			kernel.ProcPipeWrite: "pipe-write", kernel.ProcPipeRead: "pipe-read",
		}[st]
		extra := ""
		if st == kernel.ProcDead {
			ex, _ := m.sys.ExitStatus(p)
			extra = fmt.Sprintf(" exit=%#x", ex)
		}
		fmt.Fprintf(m.out, "pid %-2d %-12s %s%s\n", p.PID, p.Name, status, extra)
	}
}

// watch executes until the longword at the given location changes value
// (a poor man's hardware watchpoint: the monitor re-reads after every
// instruction, which is exactly what a console processor would do).
func (m *Monitor) watch(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(m.out, "usage: watch <addr|sym> [maxInstructions]")
		return
	}
	a, err := m.resolve(args[0])
	if err != nil {
		fmt.Fprintln(m.out, err)
		return
	}
	budget := uint64(1_000_000)
	if len(args) > 1 {
		if v, err := strconv.ParseUint(args[1], 0, 64); err == nil && v > 0 {
			budget = v
		}
	}
	old, err := m.sys.M.DebugRead(a, 4)
	if err != nil {
		fmt.Fprintf(m.out, "cannot read %#x: %v\n", a, err)
		return
	}
	for n := uint64(0); n < budget; n++ {
		if m.sys.M.Halted() {
			fmt.Fprintln(m.out, "machine halted")
			m.flushConsole()
			return
		}
		if err := m.sys.M.Step(); err != nil {
			fmt.Fprintf(m.out, "machine check: %v\n", err)
			return
		}
		now, err := m.sys.M.DebugRead(a, 4)
		if err != nil {
			fmt.Fprintf(m.out, "location became unreadable: %v\n", err)
			return
		}
		if now != old {
			fmt.Fprintf(m.out, "watch hit after %d instructions: [%#x] %#x -> %#x\n",
				n+1, a, old, now)
			m.flushConsole()
			m.where()
			return
		}
	}
	fmt.Fprintf(m.out, "no change within %d instructions\n", budget)
	m.flushConsole()
}

func (m *Monitor) trace(args []string) {
	if len(args) == 0 {
		state := "off"
		if m.collector != nil {
			state = fmt.Sprintf("on (%d buffered, %d captured, %d spills)",
				m.collector.BufferedRecords(), len(m.captured), m.spills)
		}
		fmt.Fprintf(m.out, "trace: %s\n", state)
		return
	}
	switch args[0] {
	case "on":
		if m.collector != nil {
			fmt.Fprintln(m.out, "already tracing")
			return
		}
		opts := atum.DefaultOptions()
		if len(args) > 1 {
			kb, err := strconv.ParseUint(args[1], 0, 32)
			if err != nil || kb == 0 {
				fmt.Fprintf(m.out, "bad buffer size %q (KB)\n", args[1])
				return
			}
			opts.BufBytes = uint32(kb) << 10
		}
		// Segmented live tracing: spill the buffer into the monitor's
		// capture log every time it reaches capacity, exactly like the
		// kernel spill service — extraction takes no machine time, so
		// the watermark crossing is loss-free and the run resumes.
		opts.Watermark = 1.0
		opts.OnWatermark = func(c *atum.Collector) {
			recs, _, err := c.ExtractSegment()
			if err == nil {
				m.captured = append(m.captured, recs...)
				m.spills++
			}
		}
		col, err := atum.Install(m.sys.M, opts)
		if err != nil {
			fmt.Fprintln(m.out, err)
			return
		}
		m.collector = col
		fmt.Fprintln(m.out, "ATUM installed")
	case "off":
		if m.collector == nil {
			fmt.Fprintln(m.out, "not tracing")
			return
		}
		recs, err := m.collector.Extract()
		if err == nil {
			m.captured = append(m.captured, recs...)
		}
		dropped := m.collector.Dropped
		m.collector.Uninstall()
		m.collector = nil
		fmt.Fprintf(m.out, "ATUM removed; %d records captured in total (%d spills, %d dropped)\n",
			len(m.captured), m.spills, dropped)
	default:
		fmt.Fprintln(m.out, "usage: trace on|off")
	}
}

// Captured returns everything collected so far (draining the buffer).
func (m *Monitor) Captured() []trace.Record {
	if m.collector != nil {
		recs, err := m.collector.Extract()
		if err == nil {
			m.captured = append(m.captured, recs...)
		}
	}
	return m.captured
}

func (m *Monitor) records(args []string) {
	n := 10
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil && v > 0 {
			n = v
		}
	}
	recs := m.Captured()
	if len(recs) == 0 {
		fmt.Fprintln(m.out, "no records (is tracing on?)")
		return
	}
	start := len(recs) - n
	if start < 0 {
		start = 0
	}
	for _, r := range recs[start:] {
		fmt.Fprintln(m.out, r)
	}
}

func (m *Monitor) lint() {
	recs := m.Captured()
	if len(recs) == 0 {
		fmt.Fprintln(m.out, "no records (is tracing on?)")
		return
	}
	violations := trace.Lint(recs)
	if len(violations) == 0 {
		fmt.Fprintf(m.out, "lint: %d records, well-formed\n", len(recs))
		return
	}
	for _, v := range violations {
		fmt.Fprintln(m.out, "lint:", v)
	}
}

func (m *Monitor) stats() {
	mach := m.sys.M
	fmt.Fprintf(m.out, "instructions: %d  cycles: %d  pid: %d\n",
		mach.Instrs, mach.Cycles, mach.CurPID)
	st := mach.MMU.Stats
	fmt.Fprintf(m.out, "mmu: accesses=%d tb-hits=%d tb-misses=%d pte-reads=%d faults=%d\n",
		st.Accesses, st.TBHits, st.TBMisses, st.PTEReads, st.Faults)
	r, w := mach.DiskStats()
	fmt.Fprintf(m.out, "swap: reads=%d writes=%d\n", r, w)
	if len(m.Captured()) > 0 || m.collector != nil {
		fmt.Fprint(m.out, trace.Summarize(m.Captured()))
	}
}

// status prints a one-line machine summary followed by the process-wide
// metrics registry — the same counters -metrics-addr serves over HTTP,
// so a debugger session can inspect capture/spill/decode telemetry
// without standing up the server.
func (m *Monitor) status() {
	mach := m.sys.M
	tracing := "off"
	if m.collector != nil {
		tracing = fmt.Sprintf("on (%d buffered, %d dropped)",
			m.collector.BufferedRecords(), m.collector.Dropped)
	}
	fmt.Fprintf(m.out, "machine: instrs=%d cycles=%d pid=%d halted=%v  trace: %s\n",
		mach.Instrs, mach.Cycles, mach.CurPID, mach.Halted(), tracing)
	// When a streaming pipeline is attached to the capture, summarise its
	// progress on one line ahead of the raw registry dump. Peek, don't
	// create: a session without a pipeline should not grow stream metrics.
	if segs, ok := obs.Default().PeekCounter("atum_stream_segments_total"); ok {
		recs, _ := obs.Default().PeekCounter("atum_stream_records_total")
		rate, _ := obs.Default().PeekGauge("atum_stream_replay_rate_recs_per_sec")
		fmt.Fprintf(m.out, "stream: segments=%d records=%d rate=%.0f recs/s\n", segs, recs, rate)
	}
	text := obs.Default().String()
	if text == "" {
		fmt.Fprintln(m.out, "metrics: registry empty (nothing instrumented yet)")
		return
	}
	fmt.Fprint(m.out, text)
}
