// Package par is the ordered worker pool underneath both ends of the
// replay pipeline: the sweep engine fans simulator configurations out
// over it (internal/sweep) and the trace reader fans segment decodes
// out over it (internal/trace). It is a leaf package — no imports
// beyond the runtime — precisely so both layers can share it without a
// dependency cycle.
//
// The contract is determinism: every job runs to completion, results
// come back in index order, and the error reported is the lowest-index
// one, so any workers value produces output identical to workers == 1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Occupancy, when non-nil, is told how many worker goroutines are live:
// +1 as each pool worker starts, -1 as it exits. It is the observability
// layer's window into pool utilisation without this package importing
// anything — internal/trace wires it to an obs gauge at init, before
// any pool can run, so there is no write/read race. The serial
// workers==1 path reports no occupancy: it runs inline on the caller.
var Occupancy func(delta int)

// Resolve maps a workers argument to an actual pool size: values <= 0
// mean "all available cores" (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(0..n-1) over a pool of at most workers goroutines and
// returns the results in index order. Every job runs to completion (no
// mid-run cancellation), and the error returned is the lowest-index
// one — so both results and errors are independent of scheduling, and
// any workers value produces output identical to workers == 1 (which
// runs inline, no goroutines: the serial reference path).
func Map[T any](workers, n int, fn func(int) (T, error)) ([]T, error) {
	if n == 0 {
		return []T{}, nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := range out {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	occupancy := Occupancy
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if occupancy != nil {
				occupancy(+1)
				defer occupancy(-1)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
