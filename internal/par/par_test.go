package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 200} {
		out, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Jobs 3, 7 and 40 fail; whatever the scheduling, the reported
	// error must be job 3's, and every job must still have run.
	var ran atomic.Int64
	_, err := Map(8, 50, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 || i == 7 || i == 40 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "job 3 failed" {
		t.Fatalf("error = %v, want job 3's", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("%d jobs ran, want all 50", ran.Load())
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map over zero jobs: %v, %v", out, err)
	}
}
