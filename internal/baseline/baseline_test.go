package baseline

import (
	"testing"

	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/trace"
	"atum/internal/workload"
)

func factory(t *testing.T, names ...string) Factory {
	t.Helper()
	return func() (*micro.Machine, func() error, error) {
		cfg := kernel.DefaultConfig()
		cfg.Machine.MemSize = 4 << 20
		cfg.Machine.ReservedSize = 256 << 10
		sys, err := workload.BootMix(cfg, names...)
		if err != nil {
			return nil, nil, err
		}
		return sys.M, func() error {
			_, err := sys.Run(500_000_000)
			return err
		}, nil
	}
}

func TestCompareTechniques(t *testing.T) {
	outcomes, err := Compare(factory(t, "sieve"),
		Atum{}, Inline{}, TrapDriven{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	byName := map[string]Outcome{}
	for _, o := range outcomes {
		byName[o.Name] = o
		if o.Records == 0 {
			t.Errorf("%s captured nothing", o.Name)
		}
		if o.Dilation() <= 1 {
			t.Errorf("%s dilation %.2f <= 1", o.Name, o.Dilation())
		}
	}

	a, inl, trap := byName["ATUM"], byName["instrumentation"], byName["trap-driven"]

	// Completeness: only ATUM sees the kernel and the page tables.
	if !a.SawKernel || !a.SawPTE {
		t.Errorf("ATUM incomplete: %+v", a)
	}
	if inl.SawKernel || inl.SawPTE {
		t.Errorf("instrumentation should not see kernel/PTE refs: %+v", inl)
	}
	if trap.SawKernel || trap.SawPTE {
		t.Errorf("trap-driven should not see kernel/PTE refs: %+v", trap)
	}

	// Slowdown ordering: instrumentation <= ATUM << trap-driven.
	if !(trap.Dilation() > 4*a.Dilation()) {
		t.Errorf("trap-driven (%.1fx) should be far above ATUM (%.1fx)",
			trap.Dilation(), a.Dilation())
	}
	if inl.Dilation() > a.Dilation() {
		t.Errorf("instrumentation (%.1fx) should not exceed ATUM (%.1fx)",
			inl.Dilation(), a.Dilation())
	}
}

func TestMultiprogrammingVisibility(t *testing.T) {
	outcomes, err := Compare(factory(t, "sieve", "list"), Atum{}, Inline{})
	if err != nil {
		t.Fatal(err)
	}
	var a, inl Outcome
	for _, o := range outcomes {
		if o.Name == "ATUM" {
			a = o
		} else {
			inl = o
		}
	}
	if !a.SawMultiprog {
		t.Error("ATUM missed multiprogramming")
	}
	// Instrumentation sees both PIDs' user refs (it is "linked into"
	// both programs) but no switch markers; SawMultiprog via PIDs is
	// acceptable — what it must never see is the kernel.
	if inl.SawKernel {
		t.Error("instrumentation saw kernel refs")
	}
}

func TestInlineSessionRecordsAreUserOnly(t *testing.T) {
	m, run, err := factory(t, "strops")()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Inline{}.Install(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	recs := sess.Records()
	sess.Uninstall()
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		if !r.User {
			t.Fatalf("non-user record captured: %v", r)
		}
		if r.Kind != trace.KindIFetch && r.Kind != trace.KindDRead && r.Kind != trace.KindDWrite {
			t.Fatalf("unexpected kind: %v", r)
		}
	}
}

func TestTrapDrivenUninstallRestoresMicrostore(t *testing.T) {
	m, run, err := factory(t, "sieve")()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := TrapDriven{}.Install(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
	sess.Uninstall()
	// Stock names restored.
	if got := m.Microstore.Lookup(0xD0).Name; got != "movl" {
		t.Errorf("microstore not restored: %q", got)
	}
}
