// Package baseline implements the trace-collection techniques ATUM was
// compared against, over the same simulated machine, so that slowdown
// and capture completeness are measured rather than quoted:
//
//   - Inline software instrumentation (Pixie/ATOM-style): tracing code
//     compiled into the user program. Captures user references only —
//     the kernel is not instrumented — and costs a few instructions per
//     reference. (Address perturbation from code expansion is not
//     modelled; the technique is given its best case.)
//   - Trap-driven single-stepping (T-bit tracing): every user
//     instruction takes a trace-trap exception into a software handler
//     that decodes the instruction to recover its references. Costs
//     hundreds to thousands of cycles per instruction; kernel-mode
//     execution is not single-stepped.
//   - ATUM itself, adapted to the same interface for comparison runs.
package baseline

import (
	"fmt"

	"atum/internal/atum"
	"atum/internal/micro"
	"atum/internal/trace"
	"atum/internal/vax"
)

// Technique is a trace-collection method installable on a machine.
type Technique interface {
	Name() string
	// Install patches the machine and returns the live session.
	Install(m *micro.Machine) (Session, error)
}

// Session is an installed technique.
type Session interface {
	// Records returns everything captured so far.
	Records() []trace.Record
	// Uninstall removes the technique's patches.
	Uninstall()
}

// ---- inline software instrumentation ----

// Inline models compile/link-time instrumentation.
type Inline struct {
	// CostPerRef is the microcycle cost of the inserted tracing code per
	// captured reference (default 12 — about three inserted
	// instructions).
	CostPerRef uint32
}

func (Inline) Name() string { return "instrumentation" }

type inlineSession struct {
	recs    []trace.Record
	removes []func()
}

func (s *inlineSession) Records() []trace.Record { return s.recs }
func (s *inlineSession) Uninstall() {
	for _, rm := range s.removes {
		rm()
	}
}

// Install hooks user-mode references only: instrumentation lives inside
// the user program, so kernel execution, PTE traffic and context-switch
// activity are invisible to it.
func (t Inline) Install(m *micro.Machine) (Session, error) {
	cost := t.CostPerRef
	if cost == 0 {
		cost = 12
	}
	s := &inlineSession{}
	hook := func(mm *micro.Machine, a micro.Access) {
		if a.Mode != vax.ModeUser {
			return
		}
		mm.ChargeCycles(cost)
		s.recs = append(s.recs, trace.Record{
			Kind:  eventKind(a.Ev),
			Addr:  a.VA,
			Width: a.Width,
			PID:   a.PID,
			User:  true,
		})
	}
	for _, ev := range []micro.Event{micro.EvIFetch, micro.EvDRead, micro.EvDWrite} {
		s.removes = append(s.removes, m.AddHook(ev, hook))
	}
	return s, nil
}

// ---- trap-driven (T-bit) tracing ----

// TrapDriven models single-step tracing: a trace-trap per user
// instruction into a handler that software-decodes the instruction.
type TrapDriven struct {
	// BaseCost is the per-instruction exception+handler overhead;
	// PerOperand is the added software-decode cost per operand
	// specifier. Defaults 1200 and 400 put the technique two orders of
	// magnitude above ATUM, matching contemporary reports of 100-1000x.
	BaseCost   uint32
	PerOperand uint32
}

func (TrapDriven) Name() string { return "trap-driven" }

type trapSession struct {
	recs     []trace.Record
	removes  []func()
	restores []func()
}

func (s *trapSession) Records() []trace.Record { return s.recs }
func (s *trapSession) Uninstall() {
	for _, rm := range s.removes {
		rm()
	}
	for _, r := range s.restores {
		r()
	}
}

// Install wraps every microroutine: the wrap charges the trap+decode
// cost for user-mode instructions (the microstore is how a T-bit
// mechanism would be modelled below the architecture), and hooks record
// the user references the handler would reconstruct.
func (t TrapDriven) Install(m *micro.Machine) (Session, error) {
	base := t.BaseCost
	if base == 0 {
		base = 1200
	}
	per := t.PerOperand
	if per == 0 {
		per = 400
	}
	s := &trapSession{}
	for op := 0; op < 256; op++ {
		info := vax.Instructions[op]
		if info == nil {
			continue
		}
		nops := uint32(len(info.Operands))
		restore, err := m.Microstore.Wrap(byte(op), info.Name+"+tbit", 0,
			func(mm *micro.Machine, old *micro.Microroutine) {
				if vax.CurMode(mm.CPU.PSL) == vax.ModeUser {
					mm.ChargeCycles(base + per*nops)
				}
				old.Exec(mm)
			})
		if err != nil {
			s.Uninstall()
			return nil, fmt.Errorf("baseline: wrapping %s: %w", info.Name, err)
		}
		s.restores = append(s.restores, restore)
	}
	hook := func(mm *micro.Machine, a micro.Access) {
		if a.Mode != vax.ModeUser {
			return
		}
		s.recs = append(s.recs, trace.Record{
			Kind:  eventKind(a.Ev),
			Addr:  a.VA,
			Width: a.Width,
			PID:   a.PID,
			User:  true,
		})
	}
	for _, ev := range []micro.Event{micro.EvIFetch, micro.EvDRead, micro.EvDWrite} {
		s.removes = append(s.removes, m.AddHook(ev, hook))
	}
	return s, nil
}

// ---- ATUM adapter ----

// Atum adapts the real collector to the Technique interface.
type Atum struct {
	Opts atum.Options
}

func (Atum) Name() string { return "ATUM" }

type atumSession struct {
	col  *atum.Collector
	recs []trace.Record
}

func (s *atumSession) Records() []trace.Record {
	more, err := s.col.Extract()
	if err == nil {
		s.recs = append(s.recs, more...)
	}
	return s.recs
}

func (s *atumSession) Uninstall() { s.col.Uninstall() }

// Install attaches the real ATUM collector, draining full buffers into
// the session as samples complete.
func (t Atum) Install(m *micro.Machine) (Session, error) {
	opts := t.Opts
	if opts.CostPerRecord == 0 {
		opts = atum.DefaultOptions()
	}
	s := &atumSession{}
	opts.OnFull = func(c *atum.Collector) {
		recs, err := c.Extract()
		if err != nil {
			panic(err)
		}
		s.recs = append(s.recs, recs...)
	}
	col, err := atum.Install(m, opts)
	if err != nil {
		return nil, err
	}
	s.col = col
	return s, nil
}

func eventKind(ev micro.Event) trace.Kind {
	switch ev {
	case micro.EvIFetch:
		return trace.KindIFetch
	case micro.EvDRead:
		return trace.KindDRead
	case micro.EvDWrite:
		return trace.KindDWrite
	case micro.EvPTERead:
		return trace.KindPTERead
	case micro.EvPTEWrite:
		return trace.KindPTEWrite
	case micro.EvCtxSwitch:
		return trace.KindCtxSwitch
	default:
		return trace.KindException
	}
}

// ---- comparison harness ----

// Outcome is one technique's measured result on a workload.
type Outcome struct {
	Name         string
	BaseCycles   uint64 // untraced cycles for the identical run
	TracedCycles uint64
	Records      int

	SawKernel    bool // any kernel-mode reference captured
	SawPTE       bool // any page-table reference captured
	SawMultiprog bool // context-switch markers (or >1 PID) captured
}

// Dilation returns the measured slowdown factor.
func (o Outcome) Dilation() float64 {
	if o.BaseCycles == 0 {
		return 0
	}
	return float64(o.TracedCycles) / float64(o.BaseCycles)
}

// Factory builds a fresh, deterministic machine and its workload runner.
type Factory func() (*micro.Machine, func() error, error)

// Compare measures each technique against the bare machine on the same
// workload. The factory must produce identical machines each call.
func Compare(factory Factory, techs ...Technique) ([]Outcome, error) {
	mBase, runBase, err := factory()
	if err != nil {
		return nil, err
	}
	if err := runBase(); err != nil {
		return nil, err
	}
	base := mBase.Cycles

	var out []Outcome
	for _, tech := range techs {
		m, run, err := factory()
		if err != nil {
			return nil, err
		}
		sess, err := tech.Install(m)
		if err != nil {
			return nil, err
		}
		if err := run(); err != nil {
			return nil, err
		}
		recs := sess.Records()
		sess.Uninstall()

		o := Outcome{
			Name:         tech.Name(),
			BaseCycles:   base,
			TracedCycles: m.Cycles,
			Records:      len(recs),
		}
		pids := map[uint8]bool{}
		for _, r := range recs {
			if r.Kind.IsMemRef() && !r.User {
				o.SawKernel = true
			}
			if r.Kind == trace.KindPTERead || r.Kind == trace.KindPTEWrite {
				o.SawPTE = true
			}
			if r.Kind == trace.KindCtxSwitch {
				o.SawMultiprog = true
			}
			pids[r.PID] = true
		}
		if len(pids) > 1 {
			o.SawMultiprog = true
		}
		out = append(out, o)
	}
	return out, nil
}
