package findings

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestStringPerPlane pins the rendered form of each plane to the exact
// strings the pre-unification tools printed: tooling and tests match on
// these, so they are part of the schema.
func TestStringPerPlane(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{
			Finding{Plane: PlaneTrace, Check: "ifetch-align", Record: RecordIndex(9),
				Count: 3, Severity: "error", Message: "ifetch not an aligned longword: 00000002 w4"},
			"record 9: [ifetch-align] ifetch not an aligned longword: 00000002 w4 (3 occurrence(s))",
		},
		{
			Finding{Plane: PlaneAsm, Check: "wild-branch", File: "prog.s",
				Addr: "0x200", Block: "0x1f0", Severity: "error", Message: "branch to unmapped address"},
			"prog.s: error[wild-branch] 0x200 (block 0x1f0): branch to unmapped address",
		},
		{
			Finding{Plane: PlaneGo, Check: "traceopen", File: "x.go", Line: 4, Col: 7,
				Severity: "error", Message: "use trace.Open"},
			"x.go:4:7: use trace.Open [traceopen]",
		},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	fs := []Finding{
		{Plane: PlaneGo, File: "b.go", Line: 1, Check: "x"},
		{Plane: PlaneGo, File: "a.go", Line: 9, Check: "x"},
		{Plane: PlaneGo, File: "a.go", Line: 2, Col: 5, Check: "y"},
		{Plane: PlaneGo, File: "a.go", Line: 2, Col: 5, Check: "x"},
		{Plane: PlaneTrace, Record: RecordIndex(7), Check: "kind"},
		{Plane: PlaneTrace, Record: RecordIndex(2), Check: "width"},
	}
	Sort(fs)
	got := make([]string, len(fs))
	for i, f := range fs {
		got[i] = f.File + "/" + f.Check
	}
	want := []string{"/width", "/kind", "a.go/x", "a.go/y", "a.go/x", "b.go/x"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after Sort, position %d = %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
	// Sorting again must be a no-op (stability + total order on the keys).
	before := make([]Finding, len(fs))
	copy(before, fs)
	Sort(fs)
	for i := range fs {
		if fs[i] != before[i] {
			t.Fatalf("Sort not idempotent at %d", i)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("nil findings render %q, want []", got)
	}

	buf.Reset()
	fs := []Finding{{Plane: PlaneTrace, Check: "kind", Record: RecordIndex(0), Count: 2, Severity: "error", Message: "m"}}
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	var back []Finding
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Record == nil || *back[0].Record != 0 || back[0].Count != 2 {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
	// Record 0 must survive the encode: it is a pointer precisely so
	// omitempty cannot drop the first record index.
	if !strings.Contains(buf.String(), `"record": 0`) {
		t.Fatalf("record 0 missing from JSON: %s", buf.String())
	}
	// Planes that never set Record must omit it.
	buf.Reset()
	if err := WriteJSON(&buf, []Finding{{Plane: PlaneGo, Check: "c", Severity: "error", Message: "m"}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"record"`) {
		t.Fatalf("go-plane finding leaked record field: %s", buf.String())
	}
}
