// Package findings defines the one diagnostic record every static and
// dynamic checker in this repository emits: the Go analyzers
// (internal/analyzers), the assembly verifier (internal/asmcheck) and
// the trace linter (trace.Lint) all render into a Finding, so atum-vet
// -json, the atum-serve lint endpoint and CI artifacts share a single
// schema instead of three near-identical ones.
//
// A finding is identified by its (Plane, Check) pair, both stable IDs:
// Plane names the checker family ("go", "asm", "trace") and Check the
// individual rule — an analyzer name, an asmcheck rule ID or a
// trace.Lint class. Tooling matches on these identifiers, never on
// message prose.
package findings

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Plane values. Every producer uses one of these constants so consumers
// can switch on them.
const (
	PlaneGo    = "go"    // internal/analyzers over the Go module
	PlaneAsm   = "asm"   // internal/asmcheck over assembly programs
	PlaneTrace = "trace" // trace.Lint over captured records
)

// Finding is one diagnostic in the shared schema. The location fields
// are per-plane: Go findings carry File/Line/Col, asm findings carry
// File/Addr/Block, trace findings carry Record (the first offending
// record index) and Count (how many records hit the same class — the
// linter's flood cap aggregates per class).
type Finding struct {
	Plane    string  `json:"plane"`
	Check    string  `json:"check"`
	File     string  `json:"file,omitempty"`
	Line     int     `json:"line,omitempty"`
	Col      int     `json:"col,omitempty"`
	Addr     string  `json:"addr,omitempty"`
	Block    string  `json:"block,omitempty"`
	Record   *uint64 `json:"record,omitempty"`
	Count    uint64  `json:"count,omitempty"`
	Severity string  `json:"severity"`
	Message  string  `json:"message"`
}

// RecordIndex is a convenience for building trace-plane findings: it
// returns a pointer to idx (the Record field is a pointer so record 0
// survives omitempty on the other planes).
func RecordIndex(idx uint64) *uint64 { return &idx }

// String renders the finding in its plane's traditional textual form —
// the exact strings the pre-unification tools printed, so a consumer
// that renders findings (atum-stats -check, the CLI lint output) is
// byte-identical to the plane's native renderer.
func (f Finding) String() string {
	switch f.Plane {
	case PlaneTrace:
		rec := uint64(0)
		if f.Record != nil {
			rec = *f.Record
		}
		return fmt.Sprintf("record %d: [%s] %s (%d occurrence(s))", rec, f.Check, f.Message, f.Count)
	case PlaneAsm:
		return fmt.Sprintf("%s: %s[%s] %s (block %s): %s", f.File, f.Severity, f.Check, f.Addr, f.Block, f.Message)
	default: // PlaneGo and anything future
		return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Check)
	}
}

// Sort orders findings deterministically: by file, line, column, then
// the plane-specific positions (address, record index), then check ID
// and message. All producers sort before emitting, so concatenated
// artifacts diff cleanly.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		ar, br := recOrZero(a.Record), recOrZero(b.Record)
		if ar != br {
			return ar < br
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

func recOrZero(p *uint64) uint64 {
	if p == nil {
		return 0
	}
	return *p
}

// WriteJSON emits the findings as an indented JSON array; nil renders
// as [] so "no findings" is a valid document, not null.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
