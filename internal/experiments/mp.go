// Multiprocessor experiments: the paper captured ATUM traces on a
// multiprocessor VAX 8350 by giving each processor its own reserved
// buffer and merging the per-CPU dumps afterwards (section 4.4 —
// "tracing multiprocessors is no harder than tracing one processor,
// because each processor traces itself"). These experiments reproduce
// that methodology on the simulated SMP machine: each core's microcode
// spills sequence-stamped segments into its own stream, trace.MergeCPUs
// reassembles the machine-wide interleave, and the M* experiments ask
// the questions only a multiprocessor trace can answer — how sharing
// one cache across cores changes miss traffic, what cross-CPU process
// migration does to translation buffers, and how the OS/user mix
// differs per core.
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"atum/internal/analysis"
	"atum/internal/cache"
	"atum/internal/kernel"
	"atum/internal/micro"
	"atum/internal/tlbsim"
	"atum/internal/trace"
	"atum/internal/workload"
)

// mpMix is the workload mix for the multiprocessor experiments: enough
// runnable processes that every core stays busy and processes migrate
// between cores as quanta expire, including a pipe-coupled pair whose
// blocking keeps the scheduler moving work across CPUs.
var mpMix = []string{"sort", "sieve", "hash", "producer", "consumer"}

// mpSegmentBytes bounds each spilled segment so every core emits many
// segments and the merged stream genuinely interleaves CPUs.
const mpSegmentBytes = 32 << 10

// mpCapture memoizes one SMP capture per CPU count: the per-CPU stream
// images and their sequence-ordered merge. Experiments share these —
// the capture itself is deterministic, so memoization is invisible in
// the reports.
type mpCapture struct {
	once   sync.Once
	perCPU [][]byte
	merged []byte
	err    error
}

var mpCaptures sync.Map // int (ncpu) -> *mpCapture

// captureMP boots mpMix on an ncpu machine, streams every core's
// trace through its own spill service (one shared sequence counter),
// and merges the per-CPU streams. Results are memoized per CPU count.
func captureMP(ncpu int) (*mpCapture, error) {
	v, _ := mpCaptures.LoadOrStore(ncpu, &mpCapture{})
	c := v.(*mpCapture)
	c.once.Do(func() { c.perCPU, c.merged, c.err = runMPCapture(ncpu) })
	return c, c.err
}

func runMPCapture(ncpu int) (perCPU [][]byte, merged []byte, err error) {
	cfg := sysConfig()
	cfg.CPUs = ncpu
	sys, err := workload.BootMix(cfg, mpMix...)
	if err != nil {
		return nil, nil, err
	}
	bufs := make([]*bytes.Buffer, ncpu)
	sinks := make([]io.Writer, ncpu)
	for i := range bufs {
		bufs[i] = new(bytes.Buffer)
		sinks[i] = bufs[i]
	}
	svcs, err := kernel.StartSpillCPUs(sys, sinks, kernel.SpillConfig{
		SegmentBytes: mpSegmentBytes,
		Codec:        trace.CodecDelta,
		Meta:         fmt.Sprintf("experiment=MP cpus=%d", ncpu),
		Seq:          new(trace.SeqCounter),
	})
	if err != nil {
		return nil, nil, err
	}
	reason, runErr := sys.Run(2_000_000_000)
	for _, s := range svcs {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if runErr != nil {
		return nil, nil, runErr
	}
	if err != nil {
		return nil, nil, err
	}
	if reason != micro.StopHalt {
		return nil, nil, fmt.Errorf("experiments: %d-CPU mix did not finish: %v", ncpu, reason)
	}
	files := make([]*trace.File, ncpu)
	perCPU = make([][]byte, ncpu)
	for i, b := range bufs {
		perCPU[i] = b.Bytes()
		files[i], err = trace.OpenReaderAt(bytes.NewReader(perCPU[i]), int64(len(perCPU[i])))
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: CPU %d stream: %w", i, err)
		}
	}
	var mbuf bytes.Buffer
	if err := trace.MergeCPUs(&mbuf, fmt.Sprintf("experiment=MP cpus=%d merged", ncpu), files...); err != nil {
		return nil, nil, err
	}
	return perCPU, mbuf.Bytes(), nil
}

// mpMerged opens the memoized merged stream for one CPU count.
func mpMerged(ncpu int) (*trace.File, error) {
	c, err := captureMP(ncpu)
	if err != nil {
		return nil, err
	}
	return trace.OpenReaderAt(bytes.NewReader(c.merged), int64(len(c.merged)))
}

// mpCPUCounts are the machine sizes the M* experiments sweep.
var mpCPUCounts = []int{1, 2, 4}

// ---- M1: sharing-induced misses ----

// M1SharingMisses replays the same multiprocessor capture two ways
// through one cache geometry: the merged machine-wide interleave models
// all cores sharing a single cache (cross-CPU interference evicts live
// lines), while summing per-core replays models private per-CPU caches
// (each migration re-fetches the process's working set from scratch).
// The gap between the two is the sharing/migration miss traffic that a
// uniprocessor trace simply cannot exhibit.
func M1SharingMisses(o Options) (*Report, error) {
	tb := &analysis.Table{
		Title: "Shared vs private caches over one SMP capture (same geometry)",
		Headers: []string{"cpus", "refs", "shared-cache misses", "miss rate",
			"sum of private misses", "miss rate", "sharing-induced"},
	}
	opts := cache.RunOptions{IncludePTE: true}
	cfgs := []cache.Config{baseCacheCfg()}
	for _, n := range mpCPUCounts {
		f, err := mpMerged(n)
		if err != nil {
			return nil, err
		}
		shared, err := f.Arena(o.DecodeWorkers)
		if err != nil {
			return nil, err
		}
		res, err := o.sweepCaches(shared, cfgs, opts)
		if err != nil {
			return nil, err
		}
		var private cache.Stats
		for c := 0; c < n; c++ {
			a, err := f.ArenaCPU(o.DecodeWorkers, c)
			if err != nil {
				return nil, err
			}
			pres, err := o.sweepCaches(a, cfgs, opts)
			if err != nil {
				return nil, err
			}
			private.Accesses += pres[0].Stats.Accesses
			private.Misses += pres[0].Stats.Misses
		}
		sh := res[0].Stats
		delta := "0.0%"
		if private.Misses != 0 {
			delta = analysis.F(100*(float64(sh.Misses)-float64(private.Misses))/float64(private.Misses), 1) + "%"
		}
		tb.AddRow(analysis.N(uint64(n)), analysis.N(sh.Accesses),
			analysis.N(sh.Misses), analysis.F(100*sh.MissRate(), 2)+"%",
			analysis.N(private.Misses), analysis.F(100*private.MissRate(), 2)+"%",
			delta)
	}
	return &Report{
		ID:     "M1",
		Title:  "Multiprocessor: sharing-induced cache misses",
		Tables: []*analysis.Table{tb},
		Notes: []string{
			"the merged stream replays the global interleave (one cache shared by all",
			"cores); the per-CPU replays model private per-core caches. The shared",
			"cache consistently misses more: cores' reference streams interleave at",
			"segment granularity and evict each other's live lines — interference",
			"that exists only on a multiprocessor, which is why the paper insisted on",
			"per-processor buffers merged into one trace rather than sampling one CPU.",
		},
	}, nil
}

// ---- M2: translation buffers under migration ----

// M2MigrationTB measures what cross-CPU process migration does to
// per-core translation buffers: each core's TB only ever sees the
// quanta scheduled onto that core, so a migrating process re-walks its
// page tables on every new CPU. The migrated-PIDs column counts user
// processes whose references appear on more than one CPU — direct
// evidence, from segment attribution alone, that the capture really
// did move processes between cores.
func M2MigrationTB(o Options) (*Report, error) {
	tb := &analysis.Table{
		Title: "Per-core TB replay of one SMP capture (64-entry split TB per core)",
		Headers: []string{"cpus", "migrated pids", "tb misses (all cores)",
			"miss rate", "vs 1 cpu"},
	}
	tcfg := tlbsim.Config{
		Entries:       64,
		Assoc:         1,
		SplitSystem:   true,
		FlushOnSwitch: true,
		IncludeSystem: true,
		WalkRefs:      true,
	}
	var base uint64
	for _, n := range mpCPUCounts {
		f, err := mpMerged(n)
		if err != nil {
			return nil, err
		}
		var total tlbsim.Stats
		pidCPUs := map[uint8]map[int]bool{}
		for c := 0; c < n; c++ {
			a, err := f.ArenaCPU(o.DecodeWorkers, c)
			if err != nil {
				return nil, err
			}
			st, err := o.sweepTBs(a, []tlbsim.Config{tcfg})
			if err != nil {
				return nil, err
			}
			total.Accesses += st[0].Accesses
			total.Misses += st[0].Misses
			if err := a.EachChunk(func(recs []trace.Record) error {
				for _, r := range recs {
					if r.User {
						if pidCPUs[r.PID] == nil {
							pidCPUs[r.PID] = map[int]bool{}
						}
						pidCPUs[r.PID][c] = true
					}
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		migrated := 0
		for _, cpus := range pidCPUs {
			if len(cpus) > 1 {
				migrated++
			}
		}
		if n == 1 {
			base = total.Misses
		}
		vs := "1.00x"
		if base != 0 {
			vs = analysis.F(float64(total.Misses)/float64(base), 2) + "x"
		}
		tb.AddRow(analysis.N(uint64(n)), analysis.N(uint64(migrated)),
			analysis.N(total.Misses), analysis.F(100*total.MissRate(), 2)+"%",
			vs)
	}
	return &Report{
		ID:     "M2",
		Title:  "Multiprocessor: translation buffers under cross-CPU migration",
		Tables: []*analysis.Table{tb},
		Notes: []string{
			"each core's TB replays only that core's segments of the merged capture.",
			"Migration cuts both ways: with cores scarce, processes bounce between",
			"them and every arrival flushes and re-walks (the 2-CPU spike), while",
			"with a core per process each TB multiplexes almost nothing and the",
			"flush/refill traffic of time-sharing nearly vanishes — the migrated-pids",
			"column, recovered purely from segment attribution, shows the processes",
			"really did move.",
		},
	}, nil
}

// ---- M3: per-core OS/user mix ----

// M3PerCoreMix breaks the machine-wide OS-vs-user story (F1) down per
// processor on the 4-CPU capture — visible only because every segment
// of the merged stream says which CPU produced it. The striking shape:
// the extra cores' system share is dominated by the scheduler's idle
// scan once the short mix drains, so "OS overhead" on a multiprocessor
// is mostly the cost of having nothing to run.
func M3PerCoreMix(o Options) (*Report, error) {
	const ncpu = 4
	tb := &analysis.Table{
		Title: fmt.Sprintf("Per-core reference mix (%d-CPU capture of %v)", ncpu, mpMix),
		Headers: []string{"cpu", "segments", "mem refs", "%system",
			"ctx switches", "distinct pids"},
	}
	f, err := mpMerged(ncpu)
	if err != nil {
		return nil, err
	}
	segsOn := make([]uint64, ncpu)
	for _, s := range f.Segments() {
		segsOn[s.CPU]++
	}
	for c := 0; c < ncpu; c++ {
		a, err := f.ArenaCPU(o.DecodeWorkers, c)
		if err != nil {
			return nil, err
		}
		sum := trace.SummarizeSource(a)
		tb.AddRow(analysis.N(uint64(c)), analysis.N(segsOn[c]),
			analysis.N(sum.MemRefs), analysis.F(sum.PercentSystem(), 1),
			analysis.N(sum.CtxSwitches), analysis.N(uint64(sum.DistinctPIDs)))
	}
	return &Report{
		ID:     "M3",
		Title:  "Multiprocessor: per-core OS/user mix",
		Tables: []*analysis.Table{tb},
		Notes: []string{
			"per-CPU attribution comes from the v3 segment stamps alone — the same",
			"merged artifact replays as the whole machine, any single core, or this",
			"per-core breakdown, without recapturing. The high system shares off",
			"CPU 0 are the idle scheduler scan: cores that run out of work trace",
			"their own waiting, exactly as ATUM would have seen on a real 8350.",
		},
	}, nil
}
