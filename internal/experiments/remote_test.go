package experiments

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"atum/internal/cache"
	"atum/internal/serve"
	"atum/internal/tlbsim"
	"atum/internal/trace"
)

// TestRemoteOptionIdenticalReports pins the -remote contract: routing
// the experiment sweeps through an atum-serve daemon returns the exact
// result structs a local run produces, for every sweep family and for
// both the batch and streaming engines.
func TestRemoteOptionIdenticalReports(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Options{}))
	defer ts.Close()

	recs := make([]trace.Record, 0, 20_000)
	pid := uint8(1)
	for i := 0; len(recs) < cap(recs); i++ {
		if i%311 == 0 {
			pid = 1 + pid%2
			recs = append(recs, trace.Record{Kind: trace.KindCtxSwitch, PID: pid, Extra: uint16(pid)})
			continue
		}
		r := trace.Record{Kind: trace.KindIFetch, Addr: uint32(0x2000 + (i%777)*4), Width: 4, User: true, PID: pid}
		if i%3 == 0 {
			r.Kind, r.Addr = trace.KindDRead, uint32(0x60000+(i%211)*8)
		}
		recs = append(recs, r)
	}
	src := trace.Records(recs)

	ccfgs := []cache.Config{
		{SizeBytes: 1 << 10, BlockBytes: 16, Assoc: 1, Replacement: cache.LRU, WriteAllocate: true, PIDTags: true},
		{SizeBytes: 4 << 10, BlockBytes: 16, Assoc: 2, Replacement: cache.LRU, WriteAllocate: true, PIDTags: true},
	}
	hcfgs := []cache.HierarchyConfig{{L1: ccfgs[0], L2: ccfgs[1]}}
	tcfgs := []tlbsim.Config{{Entries: 16, Assoc: 2, PIDTags: true, IncludeSystem: true}}
	run := cache.RunOptions{IncludePTE: true}

	local := Options{}
	wantC, err := local.sweepCaches(src, ccfgs, run)
	if err != nil {
		t.Fatal(err)
	}
	wantH, err := local.sweepHierarchies(src, hcfgs, run)
	if err != nil {
		t.Fatal(err)
	}
	wantT, err := local.sweepTBs(src, tcfgs)
	if err != nil {
		t.Fatal(err)
	}

	for _, stream := range []bool{false, true} {
		remote := Options{Remote: ts.URL, Stream: stream}
		gotC, err := remote.sweepCaches(src, ccfgs, run)
		if err != nil {
			t.Fatalf("stream=%v remote caches: %v", stream, err)
		}
		if !reflect.DeepEqual(gotC, wantC) {
			t.Errorf("stream=%v: remote cache sweep differs from local", stream)
		}
		gotH, err := remote.sweepHierarchies(src, hcfgs, run)
		if err != nil {
			t.Fatalf("stream=%v remote hierarchies: %v", stream, err)
		}
		if !reflect.DeepEqual(gotH, wantH) {
			t.Errorf("stream=%v: remote hierarchy sweep differs from local", stream)
		}
		gotT, err := remote.sweepTBs(src, tcfgs)
		if err != nil {
			t.Fatalf("stream=%v remote TBs: %v", stream, err)
		}
		if !reflect.DeepEqual(gotT, wantT) {
			t.Errorf("stream=%v: remote TB sweep differs from local", stream)
		}
	}
}
