package experiments

import (
	"fmt"
	"strings"
	"testing"

	"atum/internal/trace"
	"atum/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"t1", "t2", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "t3", "a1", "a2", "a3", "a4", "a5", "a6", "m1", "m2", "m3"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Run == nil {
			t.Errorf("%s has nil runner", e.ID)
		}
	}
}

// TestAllExperimentsRun executes the complete suite — it is fast (the
// standard-mix capture is memoized) and guards every table and figure
// against regressions in any layer below.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(Options{})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID == "" || rep.Title == "" {
				t.Error("report missing identity")
			}
			if len(rep.Tables) == 0 {
				t.Fatal("report has no tables")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %q is empty", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Errorf("table %q: row width %d != header width %d",
							tb.Title, len(row), len(tb.Headers))
					}
				}
			}
			if s := rep.String(); len(s) < 100 {
				t.Errorf("report renders suspiciously short: %q", s)
			}
		})
	}
}

func TestCaptureMixProducesCompleteTrace(t *testing.T) {
	recs, err := captureMix(sysConfig(), "sieve")
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(recs)
	if s.SystemRefs == 0 || s.UserRefs == 0 || s.CtxSwitches == 0 {
		t.Errorf("incomplete capture: %+v", s)
	}
}

func TestStandardMixTraceMemoized(t *testing.T) {
	a, err := standardMixTrace()
	if err != nil {
		t.Fatal(err)
	}
	b, err := standardMixTrace()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("standard mix trace not memoized")
	}
}

// TestF1Shape verifies the headline result end to end: in the size band
// where the kernel working set rivals the cache (512B-4KB — the size
// class of the paper's machines scaled to our miniature workloads),
// full-system miss rates exceed user-only, and the peak understatement
// is large.
func TestF1Shape(t *testing.T) {
	r, err := F1OSImpact(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) < 5 {
		t.Fatalf("too few rows: %d", len(tb.Rows))
	}
	band := map[string]bool{"512B": true, "1KB": true, "2KB": true, "4KB": true}
	maxRatio := 0.0
	for _, row := range tb.Rows {
		if !band[row[0]] {
			continue
		}
		u := parsePct(t, row[1])
		f := parsePct(t, row[2])
		if f <= u {
			t.Errorf("size %s: full %.3f%% <= user %.3f%%", row[0], f, u)
		}
		if u > 0 && f/u > maxRatio {
			maxRatio = f / u
		}
	}
	if maxRatio < 1.5 {
		t.Errorf("peak OS-impact ratio %.2f, want >= 1.5", maxRatio)
	}
}

// TestA2Shape verifies the delta codec compresses the real mix trace.
func TestA2Shape(t *testing.T) {
	r, err := A2Codec(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := r.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatal("want raw+delta rows")
	}
	if !strings.HasPrefix(rows[1][0], "delta") {
		t.Fatal("row order")
	}
	var ratio float64
	if _, err := sscan(rows[1][3], &ratio); err != nil {
		t.Fatal(err)
	}
	if ratio < 2 {
		t.Errorf("delta ratio %.2f, want >= 2 on real traces", ratio)
	}
}

// TestF6Shape verifies the working-set dominance property.
func TestF6Shape(t *testing.T) {
	r, err := F6WorkingSet(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		var u, f float64
		if _, err := sscan(row[1], &u); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &f); err != nil {
			t.Fatal(err)
		}
		if f <= u {
			t.Errorf("tau %s: full W %.1f <= user W %.1f", row[0], f, u)
		}
	}
}

// TestA5Fidelity pins the trace-driven-validity result: walk-aware
// replay must match the hardware TB within a few percent, while naive
// replay understates substantially.
func TestA5Fidelity(t *testing.T) {
	r, err := A5TraceDrivenFidelity(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Tables[0].Rows {
		naive := parsePct(t, row[3])
		aware := parsePct(t, row[5])
		if naive > -10 {
			t.Errorf("%s: naive replay delta %.1f%%, expected substantial undercount", row[0], naive)
		}
		if aware < -5 || aware > 5 {
			t.Errorf("%s: walk-aware replay delta %.1f%%, want within ±5%%", row[0], aware)
		}
	}
}

func TestReportString(t *testing.T) {
	r, err := A2Codec(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "== A2:") || !strings.Contains(s, "codec") {
		t.Errorf("report render:\n%s", s)
	}
}

func TestWorkloadNamesStable(t *testing.T) {
	// T2 depends on the full workload suite; pin its composition.
	if len(workload.All) < 8 {
		t.Errorf("workload suite shrank: %d", len(workload.All))
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscan(strings.TrimSuffix(s, "%"), &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestStreamOptionIdenticalReports: running a sweep-backed experiment
// with Options.Stream must render the exact same report as the batch
// path — the pipeline is a different execution strategy, not a
// different simulation. One experiment per simulator family: unified
// caches (F3), translation buffers (F5), hierarchies (F7).
func TestStreamOptionIdenticalReports(t *testing.T) {
	for _, tc := range []struct {
		id  string
		run func(Options) (*Report, error)
	}{
		{"f3", F3BlockSize},
		{"f5", F5TLB},
		{"f7", F7Hierarchy},
	} {
		batch, err := tc.run(Options{})
		if err != nil {
			t.Fatalf("%s batch: %v", tc.id, err)
		}
		streamed, err := tc.run(Options{Stream: true})
		if err != nil {
			t.Fatalf("%s stream: %v", tc.id, err)
		}
		if streamed.String() != batch.String() {
			t.Errorf("%s: streamed report differs from batch:\n--- batch ---\n%s\n--- stream ---\n%s",
				tc.id, batch, streamed)
		}
	}
}
